(* Checkpoint/restore (Hsgc_checkpoint + Coprocessor.Snapshot + the
   Hsgc_core.Resume driver): container integrity under mutation, exact
   snapshot round-trips mid-collection, and the load-bearing property —
   resume equivalence. A run killed at any cycle and resumed from its
   latest snapshot must end in the same final state (verify result,
   total cycles, per-core counters, trace digest) as a run that was
   never interrupted, for every default workload across the core grid,
   with or without fault injection, under sequential or BSP stepping. *)

module Coprocessor = Hsgc_coproc.Coprocessor
module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify
module Tracer = Hsgc_obs.Tracer
module Injector = Hsgc_fault.Injector
module Checkpoint = Hsgc_checkpoint.Checkpoint
module Resume = Hsgc_core.Resume
module Interrupt = Hsgc_core.Chaos.Interrupt

let tmpdir () = Filename.temp_dir "hsgc-test-ckpt" ""

let rm_rf dir =
  (match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
      entries
  | exception Sys_error _ -> ());
  try Sys.rmdir dir with Sys_error _ -> ()

let with_tmpdir f =
  let dir = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Container: CRCs, mutation, fingerprint                              *)
(* ------------------------------------------------------------------ *)

(* A checkpoint taken mid-collection, so every section carries real
   machine state (not just initial zeros). *)
let write_midrun_checkpoint ~dir =
  let w = Workloads.db in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:42 w in
  let cfg = Coprocessor.config ~n_cores:8 () in
  let sim = Coprocessor.start cfg heap in
  for _ = 1 to 400 do
    if not (Coprocessor.halted sim) then Coprocessor.step sim
  done;
  let meta =
    {
      Resume.workload = w.Workloads.name;
      scale = 0.05;
      seed = 42;
      partitions = 1;
      obs_on = false;
      obs_capacity = 0;
      obs_interval = 0;
      prof_on = false;
    }
  in
  let path = Filename.concat dir "mid.ckpt" in
  Resume.save sim meta ~path;
  path

(* Satellite: snapshot-integrity mutation. Flip one byte in every
   section payload; every flip must be refused, and the refusal must
   name the mutated section. *)
let test_mutation_every_section_caught () =
  with_tmpdir @@ fun dir ->
  let path = write_midrun_checkpoint ~dir in
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let ranges = Checkpoint.payload_ranges path in
  if List.length ranges < 12 then
    Alcotest.failf "expected >= 12 sections, found %d (%s)"
      (List.length ranges)
      (String.concat ", " (List.map (fun (n, _, _) -> n) ranges));
  List.iter
    (fun (name, off, len) ->
      if len = 0 then Alcotest.failf "section %S has an empty payload" name;
      (* Flip the first, middle and last byte of the payload — CRC-32
         catches any single-byte change wherever it lands. *)
      List.iter
        (fun i ->
          let b = Bytes.of_string raw in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
          match Checkpoint.of_string (Bytes.to_string b) with
          | _ ->
            Alcotest.failf "flip at byte %d of section %S went undetected" i
              name
          | exception Checkpoint.Corrupt _ -> ())
        [ off; off + (len / 2); off + len - 1 ])
    ranges;
  (* Structural damage is refused too: bad magic, truncation. *)
  (match Checkpoint.of_string ("XXXX" ^ raw) with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception Checkpoint.Corrupt _ -> ());
  match Checkpoint.of_string (String.sub raw 0 (String.length raw - 7)) with
  | _ -> Alcotest.fail "truncated snapshot accepted"
  | exception Checkpoint.Corrupt _ -> ()

let test_mutation_names_section () =
  with_tmpdir @@ fun dir ->
  let path = write_midrun_checkpoint ~dir in
  let raw = In_channel.with_open_bin path In_channel.input_all in
  List.iter
    (fun (name, off, len) ->
      let i = off + (len / 2) in
      let b = Bytes.of_string raw in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      match Checkpoint.of_string (Bytes.to_string b) with
      | _ -> Alcotest.failf "flip in %S undetected" name
      | exception Checkpoint.Corrupt msg ->
        let quoted = Printf.sprintf "%S" name in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        if not (contains msg quoted) then
          Alcotest.failf "corrupt %S reported as %S — does not name the section"
            name msg)
    (Checkpoint.payload_ranges path)

let test_fingerprint_mismatch_refused () =
  with_tmpdir @@ fun dir ->
  let w = Workloads.compress in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:1 w in
  let sim = Coprocessor.start (Coprocessor.config ~n_cores:4 ()) heap in
  for _ = 1 to 100 do
    Coprocessor.step sim
  done;
  let meta =
    {
      Resume.workload = w.Workloads.name;
      scale = 0.05;
      seed = 1;
      partitions = 1;
      obs_on = false;
      obs_capacity = 0;
      obs_interval = 0;
      prof_on = false;
    }
  in
  let path = Filename.concat dir "other-build.ckpt" in
  Resume.save ~fingerprint:"deadbeef-other-build" sim meta ~path;
  (match Resume.resume ~path () with
  | _ -> Alcotest.fail "snapshot from a different build accepted"
  | exception Checkpoint.Corrupt _ -> ());
  (* The explicit-override escape hatch still works. *)
  match Resume.resume ~fingerprint:"deadbeef-other-build" ~path () with
  | (_ : Resume.resumed) -> ()
  | exception Checkpoint.Corrupt msg ->
    Alcotest.failf "override fingerprint refused: %s" msg

let test_sanitizer_incompatible () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:1 Workloads.compress in
  let cfg =
    Coprocessor.config ~sanitize:Hsgc_sanitizer.Sanitizer.Check ~n_cores:4 ()
  in
  let sim = Coprocessor.start cfg heap in
  match Coprocessor.Snapshot.save sim ~fingerprint:"x" with
  | _ -> Alcotest.fail "snapshot of a sanitized machine accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Driver: boundary placement, latest, zero-cost off path              *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_boundaries_exact () =
  with_tmpdir @@ fun dir ->
  let w = Workloads.db in
  let every = 1000 in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:42 w in
  let sim = Coprocessor.start (Coprocessor.config ~n_cores:8 ()) heap in
  let meta =
    {
      Resume.workload = w.Workloads.name;
      scale = 0.05;
      seed = 42;
      partitions = 1;
      obs_on = false;
      obs_capacity = 0;
      obs_interval = 0;
      prof_on = false;
    }
  in
  (match Resume.drive ~every ~dir ~partitions:1 ~meta sim with
  | Resume.Finished _ -> ()
  | Resume.Stopped _ -> Alcotest.fail "run stopped without a stop condition");
  let files = Sys.readdir dir in
  Array.sort compare files;
  if Array.length files = 0 then Alcotest.fail "no checkpoints written";
  Array.iter
    (fun f ->
      match Scanf.sscanf f "ckpt-%d.ckpt" (fun c -> c) with
      | c ->
        if c mod every <> 0 then
          Alcotest.failf "checkpoint %s is off the %d-cycle boundary" f every
      | exception Scanf.Scan_failure _ ->
        Alcotest.failf "unexpected file %s" f)
    files;
  (* latest picks the highest cycle. *)
  match Resume.latest ~dir with
  | None -> Alcotest.fail "latest found nothing"
  | Some p ->
    Alcotest.(check string)
      "latest is the last file"
      (Filename.concat dir files.(Array.length files - 1))
      p

let test_drive_off_matches_collect () =
  (* With checkpointing off, the driver must be the plain stepping loop:
     same stats as Coprocessor.collect on an identical heap. *)
  let w = Workloads.javacc in
  let build () = Workloads.build_heap ~scale:0.05 ~seed:4 w in
  let cfg = Coprocessor.config ~n_cores:8 () in
  let reference = Coprocessor.collect cfg (build ()) in
  let sim = Coprocessor.start cfg (build ()) in
  let meta =
    {
      Resume.workload = w.Workloads.name;
      scale = 0.05;
      seed = 4;
      partitions = 1;
      obs_on = false;
      obs_capacity = 0;
      obs_interval = 0;
      prof_on = false;
    }
  in
  match Resume.drive ~partitions:1 ~meta sim with
  | Resume.Stopped _ -> Alcotest.fail "stopped without a stop condition"
  | Resume.Finished (stats, None) ->
    Test_kernel.check_stats_equal "drive-off vs collect" reference stats
  | Resume.Finished (_, Some _) ->
    Alcotest.fail "sequential drive reported BSP stats"

(* ------------------------------------------------------------------ *)
(* Resume equivalence                                                  *)
(* ------------------------------------------------------------------ *)

let check_point_result (r : Interrupt.point_result) ctx =
  if not r.Interrupt.equivalent then
    Alcotest.failf "%s: resumed run diverged: %s" ctx
      (Option.value r.Interrupt.mismatch ~default:"?");
  if r.Interrupt.corrupt_caught <> r.Interrupt.corrupt_flips then
    Alcotest.failf "%s: %d/%d corrupt flips caught" ctx
      r.Interrupt.corrupt_caught r.Interrupt.corrupt_flips;
  if r.Interrupt.checkpoints < 1 then
    Alcotest.failf "%s: no checkpoints written before the kill" ctx

(* Every default workload across the core grid, sequential and BSP
   stepping: kill at a deterministic random cycle, resume, demand the
   final state is indistinguishable from an uninterrupted run's. *)
let test_resume_equivalence_grid () =
  List.iter
    (fun w ->
      List.iter
        (fun n_cores ->
          let p =
            {
              Interrupt.workload = w.Workloads.name;
              n_cores;
              partitions = min 4 n_cores;
              seed = 42;
              draw = 0;
            }
          in
          let r = Interrupt.run_point ~scale:0.05 p in
          check_point_result r
            (Printf.sprintf "%s at %d cores" w.Workloads.name n_cores))
        [ 1; 4; 16 ])
    Workloads.all

(* Resume must also replay the fault injector's RNG mid-stream and the
   scan-unit sub-object machinery: a delay-faulted, scan-unit-enabled
   run killed mid-flight still ends bit-identical. *)
let test_resume_with_faults_and_scan_unit () =
  with_tmpdir @@ fun dir ->
  let w = Workloads.db in
  let scale = 0.05 and seed = 3 in
  let faults = Injector.delay_class ~seed:5 ~intensity:0.3 () in
  let cfg = Coprocessor.config ~faults ~scan_unit:8 ~n_cores:8 () in
  let capacity = 1 lsl 15 and interval = 64 in
  let mk_obs () =
    let o = Tracer.create ~capacity ~interval ~n_cores:8 () in
    Tracer.enable o;
    o
  in
  let base_stats, base_digest =
    let heap = Workloads.build_heap ~scale ~seed w in
    let obs = mk_obs () in
    let s = Coprocessor.collect ~obs cfg heap in
    (s, Tracer.digest obs)
  in
  let total = base_stats.Coprocessor.total_cycles in
  let meta =
    {
      Resume.workload = w.Workloads.name;
      scale;
      seed;
      partitions = 1;
      obs_on = true;
      obs_capacity = capacity;
      obs_interval = interval;
      prof_on = false;
    }
  in
  let stop_at = total / 3 in
  let killed =
    let heap = Workloads.build_heap ~scale ~seed w in
    let sim = Coprocessor.start ~obs:(mk_obs ()) cfg heap in
    Resume.drive ~every:(max 1 (stop_at / 2)) ~dir ~stop_at ~partitions:1 ~meta
      sim
  in
  match killed with
  | Resume.Finished _ -> Alcotest.fail "run finished before its stop point"
  | Resume.Stopped { checkpoint = None; _ } ->
    Alcotest.fail "no final checkpoint"
  | Resume.Stopped { checkpoint = Some path; _ } -> (
    let r = Resume.resume ~path () in
    match Resume.drive ~partitions:1 ~meta:r.Resume.meta r.Resume.sim with
    | Resume.Stopped _ -> Alcotest.fail "resumed run stopped"
    | Resume.Finished (stats, _) ->
      Alcotest.(check int) "total cycles" total stats.Coprocessor.total_cycles;
      if stats.Coprocessor.per_core <> base_stats.Coprocessor.per_core then
        Alcotest.fail "per-core counters differ after faulted resume";
      Alcotest.(check int)
        "faults injected" base_stats.Coprocessor.faults_injected
        stats.Coprocessor.faults_injected;
      Alcotest.(check string)
        "trace digest" base_digest
        (Tracer.digest (Option.get r.Resume.obs));
      match Verify.check_collection ~pre:r.Resume.pre r.Resume.heap with
      | Ok () -> ()
      | Error f ->
        Alcotest.failf "resumed heap failed verification: %a" Verify.pp_failure
          f)

(* qcheck leg: random workload, seed, kill draw and partition count. *)
let qcheck_resume_equivalence =
  QCheck.Test.make
    ~name:
      "a run killed at a random cycle and resumed from its latest checkpoint \
       ends bit-identical to an uninterrupted run"
    ~count:12
    (QCheck.make
       ~print:(fun (wi, seed, draw, parts) ->
         Printf.sprintf "workload=%d seed=%d draw=%d partitions=%d" wi seed
           draw parts)
       QCheck.Gen.(
         let* wi = int_range 0 (List.length Workloads.all - 1) in
         let* seed = int_range 0 1000 in
         let* draw = int_range 0 5 in
         let* parts = oneofl [ 1; 2; 4 ] in
         return (wi, seed, draw, parts)))
    (fun (wi, seed, draw, parts) ->
      let w = List.nth Workloads.all wi in
      let r =
        Interrupt.run_point ~scale:0.03
          {
            Interrupt.workload = w.Workloads.name;
            n_cores = 4;
            partitions = parts;
            seed;
            draw;
          }
      in
      r.Interrupt.equivalent
      && r.Interrupt.corrupt_caught = r.Interrupt.corrupt_flips)

let suite =
  [
    Alcotest.test_case "mutation: every section flip caught" `Quick
      test_mutation_every_section_caught;
    Alcotest.test_case "mutation: refusal names the section" `Quick
      test_mutation_names_section;
    Alcotest.test_case "fingerprint mismatch refused" `Quick
      test_fingerprint_mismatch_refused;
    Alcotest.test_case "sanitizer incompatible with snapshots" `Quick
      test_sanitizer_incompatible;
    Alcotest.test_case "checkpoints land exactly on boundaries" `Quick
      test_checkpoint_boundaries_exact;
    Alcotest.test_case "driver with checkpointing off = plain collect" `Quick
      test_drive_off_matches_collect;
    Alcotest.test_case "resume equivalence: workloads x {1,4,16} cores" `Quick
      test_resume_equivalence_grid;
    Alcotest.test_case "resume with faults and scan-unit" `Quick
      test_resume_with_faults_and_scan_unit;
    QCheck_alcotest.to_alcotest qcheck_resume_equivalence;
  ]
