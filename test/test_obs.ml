(* Tests for the observability layer: metrics registry, event tracer,
   stall-attribution profiler, Perfetto export, and the accounting
   identities the profiler guarantees against the live coprocessor. *)

module Metrics = Hsgc_obs.Metrics
module Tracer = Hsgc_obs.Tracer
module Profiler = Hsgc_obs.Profiler
module Perfetto = Hsgc_obs.Perfetto
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Workloads = Hsgc_objgraph.Workloads
module Injector = Hsgc_fault.Injector

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.hist m "latency" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 7; 8; 100 ];
  Alcotest.(check int) "count" 8 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 125 (Metrics.hist_sum h);
  Alcotest.(check int) "max" 100 (Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "mean" (125.0 /. 8.0) (Metrics.hist_mean h);
  (* Percentiles are conservative bucket upper bounds, clamped at the
     true maximum: p100's observation (100) lives in bucket 7 (64..127)
     but the bound is tightened to the recorded max. *)
  Alcotest.(check int) "p100 clamped to max" 100 (Metrics.hist_percentile h 100);
  Alcotest.(check int) "p1 is the zero bucket" 0 (Metrics.hist_percentile h 1);
  (* p50: 4th of 8 observations, value 3, bucket 2 (2..3). *)
  Alcotest.(check int) "p50" 3 (Metrics.hist_percentile h 50)

let test_metrics_registry_order () =
  let m = Metrics.create () in
  let _a = Metrics.hist m "a" in
  let _b = Metrics.hist m "b" in
  let c1 = Metrics.counter m "c1" in
  Metrics.bump c1 5;
  Alcotest.(check (list string))
    "hists in registration order" [ "a"; "b" ]
    (List.map Metrics.hist_name (Metrics.all_hists m));
  Alcotest.(check int) "counter value" 5
    (Metrics.counter_value (List.hd (Metrics.all_counters m)))

let test_metrics_negative_clamped () =
  let m = Metrics.create () in
  let h = Metrics.hist m "h" in
  Metrics.observe h (-7);
  Alcotest.(check int) "clamped to zero" 0 (Metrics.hist_max h);
  Alcotest.(check int) "counted" 1 (Metrics.hist_count h)

(* ------------------------------------------------------------------ *)
(* Tracer primitives                                                   *)
(* ------------------------------------------------------------------ *)

let events t =
  let acc = ref [] in
  Tracer.iter t (fun ~cycle ~code ~core ~a ~b ->
      acc := (cycle, code, core, a, b) :: !acc);
  List.rev !acc

let test_phase_spans () =
  let t = Tracer.create ~n_cores:1 () in
  Tracer.enable t;
  Tracer.set_phase t ~core:0 ~phase:Tracer.phase_roots ~cycle:0;
  Tracer.set_phase t ~core:0 ~phase:Tracer.phase_roots ~cycle:5;
  (* same phase: no event *)
  Tracer.set_phase t ~core:0 ~phase:Tracer.phase_scan ~cycle:10;
  Tracer.finish t ~cycle:25;
  match events t with
  | [ (c1, k1, _, p1, d1); (c2, k2, _, p2, d2) ] ->
    Alcotest.(check int) "first span closes at the change" 0 c1;
    Alcotest.(check int) "phase code" Tracer.ev_phase k1;
    Alcotest.(check int) "roots phase" Tracer.phase_roots p1;
    Alcotest.(check int) "roots duration" 10 d1;
    Alcotest.(check int) "second span start" 10 c2;
    Alcotest.(check int) "phase code" Tracer.ev_phase k2;
    Alcotest.(check int) "scan phase" Tracer.phase_scan p2;
    Alcotest.(check int) "scan duration closed by finish" 15 d2
  | evs -> Alcotest.failf "expected 2 phase events, got %d" (List.length evs)

let test_stall_run_merging () =
  let t = Tracer.create ~n_cores:2 () in
  Tracer.enable t;
  (* Three contiguous same-kind singles merge; a gap or a kind change
     flushes. *)
  Tracer.stall_run t ~core:0 ~kind:0 ~cycle:10 ~span:1;
  Tracer.stall_run t ~core:0 ~kind:0 ~cycle:11 ~span:1;
  Tracer.stall_run t ~core:0 ~kind:0 ~cycle:12 ~span:1;
  Tracer.stall_run t ~core:0 ~kind:3 ~cycle:13 ~span:2;
  Tracer.stall_run t ~core:0 ~kind:3 ~cycle:20 ~span:1;
  Tracer.finish t ~cycle:30;
  let stalls =
    List.filter (fun (_, k, _, _, _) -> k = Tracer.ev_stall) (events t)
  in
  match stalls with
  | [ (10, _, 0, 0, 3); (13, _, 0, 3, 2); (20, _, 0, 3, 1) ] -> ()
  | evs ->
    Alcotest.failf "unexpected stall runs: %s"
      (String.concat "; "
         (List.map
            (fun (c, _, core, a, b) -> Printf.sprintf "(%d,c%d,k%d,%d)" c core a b)
            evs))

let test_ring_overflow_keeps_oldest () =
  let t = Tracer.create ~capacity:4 ~n_cores:1 () in
  Tracer.enable t;
  for i = 0 to 9 do
    Tracer.stall_run t ~core:0 ~kind:(i mod 7) ~cycle:(2 * i) ~span:1
  done;
  Tracer.finish t ~cycle:100;
  Alcotest.(check int) "bounded" 4 (Tracer.length t);
  Alcotest.(check bool) "drops counted" true (Tracer.dropped t > 0);
  match events t with
  | (c, _, _, _, _) :: _ -> Alcotest.(check int) "oldest kept" 0 c
  | [] -> Alcotest.fail "no events"

let test_serialize_excludes_skips () =
  let t = Tracer.create ~n_cores:1 () in
  Tracer.enable t;
  Tracer.skip_span t ~cycle:5 ~span:100;
  Tracer.stall_run t ~core:0 ~kind:1 ~cycle:200 ~span:3;
  Tracer.finish t ~cycle:300;
  let plain = Tracer.serialize t in
  let with_skips = Tracer.serialize ~include_skips:true t in
  Alcotest.(check bool) "skip absent by default" false
    (contains ~sub:(Printf.sprintf "5 %d" Tracer.ev_skip) plain);
  Alcotest.(check bool) "skip present on request" true
    (String.length with_skips > String.length plain);
  Alcotest.(check bool) "digests differ" true
    (Tracer.digest t <> Tracer.digest ~include_skips:true t)

let test_disabled_records_nothing () =
  let t = Tracer.disabled in
  Alcotest.(check bool) "off" false t.Tracer.on;
  Alcotest.(check int) "empty" 0 (Tracer.length t);
  let p = Profiler.disabled in
  Alcotest.(check bool) "profiler off" false p.Profiler.on

(* ------------------------------------------------------------------ *)
(* Profiler unit behavior                                              *)
(* ------------------------------------------------------------------ *)

let test_profiler_close_pads_idle () =
  (* Mirrors the machine contract: the halt cycle itself is attributed
     (a core halting at cycle h has h+1 cycles credited), and close pads
     total - 1 - h idle cycles for the post-halt tail. *)
  let p = Profiler.create ~n_cores:2 () in
  Profiler.enable p;
  Profiler.add p ~core:0 ~bucket:Profiler.bucket_busy 10;
  Profiler.note_halt p ~core:0 ~cycle:9;
  Profiler.add p ~core:1 ~bucket:3 25;
  Profiler.note_halt p ~core:1 ~cycle:24;
  Profiler.close p ~total:26;
  Profiler.close p ~total:26;
  (* idempotent *)
  Alcotest.(check int) "core 0 padded" 26 (Profiler.row_sum p ~core:0);
  Alcotest.(check int) "core 1 padded" 26 (Profiler.row_sum p ~core:1);
  Alcotest.(check int) "core 0 idle" 16
    (Profiler.get p ~core:0 ~bucket:Profiler.bucket_idle);
  Alcotest.(check int) "core 1 idle" 1
    (Profiler.get p ~core:1 ~bucket:Profiler.bucket_idle)

(* ------------------------------------------------------------------ *)
(* Live-coprocessor identities                                         *)
(* ------------------------------------------------------------------ *)

let instrumented_run ?faults ~workload ~n_cores ~skip () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:11 workload in
  let obs = Tracer.create ~n_cores () in
  Tracer.enable obs;
  let prof = Profiler.create ~n_cores () in
  Profiler.enable prof;
  let stats =
    Coprocessor.collect ~obs ~prof
      (Coprocessor.config ?faults ~skip ~n_cores ())
      heap
  in
  (stats, obs, prof)

let check_identities (stats : Coprocessor.gc_stats) prof =
  let total = stats.Coprocessor.total_cycles in
  let n = Profiler.n_cores prof in
  for c = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "core %d attribution closes to total cycles" c)
      total
      (Profiler.row_sum prof ~core:c)
  done;
  List.iteri
    (fun i s ->
      let counters =
        Array.fold_left
          (fun acc pc -> acc + Counters.get pc s)
          0 stats.Coprocessor.per_core
      in
      Alcotest.(check int)
        (Printf.sprintf "%s column equals counters" (Counters.stall_name s))
        counters
        (Profiler.column prof ~bucket:(i + 1)))
    Counters.all_stalls

let test_accounting_closes () =
  List.iter
    (fun n_cores ->
      let stats, _, prof =
        instrumented_run ~workload:Workloads.javac ~n_cores ~skip:true ()
      in
      check_identities stats prof)
    [ 1; 4; 16 ]

let test_profile_skip_naive_identical () =
  let _, _, prof_skip =
    instrumented_run ~workload:Workloads.db ~n_cores:4 ~skip:true ()
  in
  let _, _, prof_naive =
    instrumented_run ~workload:Workloads.db ~n_cores:4 ~skip:false ()
  in
  for c = 0 to 3 do
    for b = 0 to Profiler.n_buckets - 1 do
      Alcotest.(check int)
        (Printf.sprintf "core %d %s identical skip vs naive" c
           (Profiler.bucket_name b))
        (Profiler.get prof_naive ~core:c ~bucket:b)
        (Profiler.get prof_skip ~core:c ~bucket:b)
    done
  done

let test_trace_deterministic () =
  let _, obs1, _ =
    instrumented_run ~workload:Workloads.cup ~n_cores:4 ~skip:true ()
  in
  let _, obs2, _ =
    instrumented_run ~workload:Workloads.cup ~n_cores:4 ~skip:true ()
  in
  Alcotest.(check string) "same seed, same event stream"
    (Tracer.serialize ~include_skips:true obs1)
    (Tracer.serialize ~include_skips:true obs2)

let test_trace_skip_invariant () =
  (* Kernel skip spans aside, the event stream is a property of the
     simulated machine, not of the stepping strategy. *)
  let _, obs_skip, _ =
    instrumented_run ~workload:Workloads.db ~n_cores:4 ~skip:true ()
  in
  let _, obs_naive, _ =
    instrumented_run ~workload:Workloads.db ~n_cores:4 ~skip:false ()
  in
  Alcotest.(check string) "digest identical skip vs naive"
    (Tracer.digest obs_naive) (Tracer.digest obs_skip)

let test_tracer_does_not_perturb () =
  let stats, _, _ =
    instrumented_run ~workload:Workloads.javacc ~n_cores:8 ~skip:true ()
  in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:11 Workloads.javacc in
  let plain = Coprocessor.collect (Coprocessor.config ~n_cores:8 ()) heap in
  Alcotest.(check int) "cycle count identical with instruments attached"
    plain.Coprocessor.total_cycles stats.Coprocessor.total_cycles

let test_metrics_populated () =
  let _, obs, _ =
    instrumented_run ~workload:Workloads.javac ~n_cores:4 ~skip:true ()
  in
  let m = Tracer.metrics obs in
  let find name =
    List.find (fun h -> Metrics.hist_name h = name) (Metrics.all_hists m)
  in
  Alcotest.(check bool) "scan-lock holds observed" true
    (Metrics.hist_count (find "scan-lock hold cycles") > 0);
  Alcotest.(check bool) "object latencies observed" true
    (Metrics.hist_count (find "per-object scan latency") > 0);
  Alcotest.(check bool) "body loads observed" true
    (Metrics.hist_count (find "body-load latency") > 0);
  Alcotest.(check bool) "latencies are positive cycles" true
    (Metrics.hist_percentile (find "body-load latency") 1 >= 1)

let test_small_tracer_on_real_run () =
  (* A deliberately tiny ring on a real collection: bounded, counted,
     and every surviving event stamped inside the run. (Events carry
     their span's *start* cycle but land in the ring in close order, so
     global timestamp monotonicity is not a property of the stream.) *)
  let heap = Workloads.build_heap ~scale:0.05 ~seed:11 Workloads.db in
  let obs = Tracer.create ~capacity:256 ~n_cores:4 () in
  Tracer.enable obs;
  let stats =
    Coprocessor.collect ~obs (Coprocessor.config ~n_cores:4 ()) heap
  in
  Alcotest.(check int) "bounded" 256 (Tracer.length obs);
  Alcotest.(check bool) "drops counted" true (Tracer.dropped obs > 0);
  let ok = ref true in
  Tracer.iter obs (fun ~cycle ~code:_ ~core:_ ~a:_ ~b:_ ->
      if cycle < 0 || cycle > stats.Coprocessor.total_cycles then ok := false);
  Alcotest.(check bool) "timestamps within the run" true !ok

let test_perfetto_export () =
  let _, obs, _ =
    instrumented_run ~workload:Workloads.cup ~n_cores:2 ~skip:true ()
  in
  let json = Perfetto.to_string obs in
  Alcotest.(check bool) "object form" true
    (String.length json > 2 && json.[0] = '{');
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true
        (contains ~sub json))
    [
      "\"traceEvents\"";
      "\"displayTimeUnit\"";
      "core 0";
      "core 1 waits";
      "gray backlog";
      "FIFO depth";
      "\"ph\":\"X\"";
      "\"ph\":\"C\"";
    ];
  (* Crude structural check: braces and brackets balance. *)
  let depth = ref 0 and square = ref 0 and in_str = ref false in
  String.iter
    (fun c ->
      if !in_str then (if c = '"' then in_str := false)
      else
        match c with
        | '"' -> in_str := true
        | '{' -> incr depth
        | '}' -> decr depth
        | '[' -> incr square
        | ']' -> decr square
        | _ -> ())
    json;
  Alcotest.(check int) "braces balanced" 0 !depth;
  Alcotest.(check int) "brackets balanced" 0 !square

(* ------------------------------------------------------------------ *)
(* Property: the accounting identity under random configuration        *)
(* ------------------------------------------------------------------ *)

let qcheck_accounting =
  QCheck.Test.make ~count:12
    ~name:
      "per-core attribution sums to cycles and stall columns equal \
       counters (any workload/cores/faults/stepping)"
    QCheck.(
      quad (int_range 1 16) (int_range 0 7) bool (int_range 0 1000))
    (fun (n_cores, widx, skip, fseed) ->
      let workload = List.nth Workloads.all widx in
      let faults =
        if fseed mod 3 = 0 then None
        else
          Some
            (Injector.delay_class ~seed:fseed
               ~intensity:(0.01 *. float_of_int (1 + (fseed mod 20)))
               ())
      in
      let heap = Workloads.build_heap ~scale:0.03 ~seed:5 workload in
      let prof = Profiler.create ~n_cores () in
      Profiler.enable prof;
      let stats =
        Coprocessor.collect ~prof
          (Coprocessor.config ?faults ~skip ~n_cores ())
          heap
      in
      let total = stats.Coprocessor.total_cycles in
      let rows_ok =
        List.for_all
          (fun c -> Profiler.row_sum prof ~core:c = total)
          (List.init n_cores (fun c -> c))
      in
      let cols_ok =
        List.for_all
          (fun (i, s) ->
            Profiler.column prof ~bucket:(i + 1)
            = Array.fold_left
                (fun acc pc -> acc + Counters.get pc s)
                0 stats.Coprocessor.per_core)
          (List.mapi (fun i s -> (i, s)) Counters.all_stalls)
      in
      if not rows_ok then
        QCheck.Test.fail_reportf "row sums broken (%s, %d cores, skip=%b)"
          workload.Workloads.name n_cores skip;
      if not cols_ok then
        QCheck.Test.fail_reportf "stall columns broken (%s, %d cores, skip=%b)"
          workload.Workloads.name n_cores skip;
      true)

let suite =
  [
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics registry order" `Quick
      test_metrics_registry_order;
    Alcotest.test_case "metrics clamps negatives" `Quick
      test_metrics_negative_clamped;
    Alcotest.test_case "phase spans" `Quick test_phase_spans;
    Alcotest.test_case "stall-run merging" `Quick test_stall_run_merging;
    Alcotest.test_case "ring overflow keeps oldest" `Quick
      test_ring_overflow_keeps_oldest;
    Alcotest.test_case "serialize excludes skip spans" `Quick
      test_serialize_excludes_skips;
    Alcotest.test_case "disabled instruments record nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "profiler close pads idle" `Quick
      test_profiler_close_pads_idle;
    Alcotest.test_case "accounting closes at 1/4/16 cores" `Quick
      test_accounting_closes;
    Alcotest.test_case "profile identical skip vs naive" `Quick
      test_profile_skip_naive_identical;
    Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "trace digest skip-invariant" `Quick
      test_trace_skip_invariant;
    Alcotest.test_case "tracer does not perturb the machine" `Quick
      test_tracer_does_not_perturb;
    Alcotest.test_case "metrics populated by a real run" `Quick
      test_metrics_populated;
    Alcotest.test_case "tiny ring on a real run" `Quick
      test_small_tracer_on_real_run;
    Alcotest.test_case "perfetto export" `Quick test_perfetto_export;
    QCheck_alcotest.to_alcotest qcheck_accounting;
  ]
