(* Tests for the on-chip header FIFO. *)

module Fifo = Hsgc_memsim.Header_fifo

let test_push_pop_order () =
  let f = Fifo.create ~capacity:4 () in
  Alcotest.(check bool) "push a" true (Fifo.push f 100);
  Alcotest.(check bool) "push b" true (Fifo.push f 200);
  Alcotest.(check bool) "pop a" true (Fifo.try_pop f 100);
  Alcotest.(check bool) "pop b" true (Fifo.try_pop f 200);
  Alcotest.(check int) "empty" 0 (Fifo.length f)

let test_pop_mismatch () =
  let f = Fifo.create ~capacity:4 () in
  ignore (Fifo.push f 100);
  Alcotest.(check bool) "wrong address misses" false (Fifo.try_pop f 999);
  Alcotest.(check int) "entry kept" 1 (Fifo.length f);
  Alcotest.(check int) "miss counted" 1 (Fifo.misses f)

let test_pop_empty () =
  let f = Fifo.create ~capacity:4 () in
  Alcotest.(check bool) "empty misses" false (Fifo.try_pop f 1)

let test_overflow () =
  let f = Fifo.create ~capacity:2 () in
  Alcotest.(check bool) "1" true (Fifo.push f 1);
  Alcotest.(check bool) "2" true (Fifo.push f 2);
  Alcotest.(check bool) "3 rejected" false (Fifo.push f 3);
  Alcotest.(check int) "overflow counted" 1 (Fifo.overflows f);
  (* Dropped entry is skipped: reads arrive in write order 1,2,3. *)
  Alcotest.(check bool) "pop 1" true (Fifo.try_pop f 1);
  Alcotest.(check bool) "pop 2" true (Fifo.try_pop f 2);
  Alcotest.(check bool) "3 was dropped" false (Fifo.try_pop f 3)

let test_wraparound () =
  let f = Fifo.create ~capacity:3 () in
  for round = 0 to 9 do
    Alcotest.(check bool) "push" true (Fifo.push f round);
    Alcotest.(check bool) "pop" true (Fifo.try_pop f round)
  done;
  Alcotest.(check int) "hits" 10 (Fifo.hits f)

let test_clear () =
  let f = Fifo.create ~capacity:4 () in
  ignore (Fifo.push f 5);
  ignore (Fifo.push f 6);
  Fifo.clear f;
  Alcotest.(check int) "emptied" 0 (Fifo.length f);
  Alcotest.(check bool) "stale entry gone" false (Fifo.try_pop f 5)

let test_capacity () =
  let f = Fifo.create ~capacity:7 () in
  Alcotest.(check int) "capacity" 7 (Fifo.capacity f);
  Alcotest.check_raises "zero capacity" (Invalid_argument "Header_fifo.create")
    (fun () -> ignore (Fifo.create ~capacity:0 ()))

(* Property: with reads in write order, a pop hits iff the push was
   accepted; dropped pushes are skipped without disturbing later pops. *)
let qcheck_write_order_reads =
  QCheck.Test.make ~name:"fifo pops follow push order with drops skipped"
    ~count:300
    QCheck.(pair (int_range 1 8) (small_list small_nat))
    (fun (cap, addrs) ->
      let addrs = List.mapi (fun i a -> a + (i * 1000)) addrs in
      let f = Fifo.create ~capacity:cap () in
      let accepted = List.map (fun a -> (a, Fifo.push f a)) addrs in
      List.for_all (fun (a, was_pushed) -> Fifo.try_pop f a = was_pushed) accepted)

let suite =
  [
    Alcotest.test_case "push/pop order" `Quick test_push_pop_order;
    Alcotest.test_case "pop mismatch" `Quick test_pop_mismatch;
    Alcotest.test_case "pop empty" `Quick test_pop_empty;
    Alcotest.test_case "overflow" `Quick test_overflow;
    Alcotest.test_case "ring wraparound" `Quick test_wraparound;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "capacity" `Quick test_capacity;
    QCheck_alcotest.to_alcotest qcheck_write_order_reads;
  ]
