(* Tests for the memory interface and access scheduler. *)

module Memsys = Hsgc_memsim.Memsys

let config ?(header_load_latency = 4) ?(body_load_latency = 2)
    ?(store_latency = 1) ?(bandwidth = 2) ?(fifo_capacity = 8)
    ?(header_cache_entries = 0) () =
  {
    Memsys.header_load_latency;
    body_load_latency;
    store_latency;
    bandwidth;
    fifo_capacity;
    header_cache_entries;
  }

let test_load_latencies () =
  let m = Memsys.create (config ()) in
  Memsys.begin_cycle m ~now:10;
  Alcotest.(check (option int)) "header load" (Some 14)
    (Memsys.try_accept_load m ~now:10 ~header:true ~addr:1);
  Alcotest.(check (option int)) "body load" (Some 12)
    (Memsys.try_accept_load m ~now:10 ~header:false ~addr:2)

let test_store_latency () =
  let m = Memsys.create (config ()) in
  Memsys.begin_cycle m ~now:5;
  Alcotest.(check (option int)) "store commit" (Some 6)
    (Memsys.try_accept_store m ~now:5 ~header:false ~addr:1)

let test_bandwidth_limit () =
  let m = Memsys.create (config ~bandwidth:2 ()) in
  Memsys.begin_cycle m ~now:0;
  Alcotest.(check bool) "1st" true
    (Memsys.try_accept_load m ~now:0 ~header:false ~addr:1 <> None);
  Alcotest.(check bool) "2nd" true
    (Memsys.try_accept_load m ~now:0 ~header:false ~addr:2 <> None);
  Alcotest.(check (option int)) "3rd rejected" None
    (Memsys.try_accept_load m ~now:0 ~header:false ~addr:3);
  Alcotest.(check int) "rejection counted" 1 (Memsys.rejected_bandwidth m);
  (* Budget resets with the cycle. *)
  Memsys.begin_cycle m ~now:1;
  Alcotest.(check bool) "next cycle accepts" true
    (Memsys.try_accept_load m ~now:1 ~header:false ~addr:3 <> None)

let test_comparator_holds_header_load () =
  let m = Memsys.create (config ~store_latency:3 ()) in
  Memsys.begin_cycle m ~now:0;
  (* Header store to addr 7 commits at cycle 3. *)
  Alcotest.(check (option int)) "store" (Some 3)
    (Memsys.try_accept_store m ~now:0 ~header:true ~addr:7);
  Memsys.begin_cycle m ~now:1;
  Alcotest.(check (option int)) "load held" None
    (Memsys.try_accept_load m ~now:1 ~header:true ~addr:7);
  Alcotest.(check int) "order rejection counted" 1 (Memsys.rejected_order m);
  (* Loads to other addresses are unaffected. *)
  Alcotest.(check bool) "other addr fine" true
    (Memsys.try_accept_load m ~now:1 ~header:true ~addr:8 <> None);
  (* After commit the load proceeds. *)
  Memsys.begin_cycle m ~now:3;
  Alcotest.(check bool) "after commit" true
    (Memsys.try_accept_load m ~now:3 ~header:true ~addr:7 <> None)

let test_body_loads_not_ordered () =
  let m = Memsys.create (config ~store_latency:3 ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_store m ~now:0 ~header:false ~addr:7);
  Memsys.begin_cycle m ~now:1;
  (* Body accesses need no ordering (single reader/writer per word). *)
  Alcotest.(check bool) "body load not held" true
    (Memsys.try_accept_load m ~now:1 ~header:false ~addr:7 <> None)

let test_counters () =
  let m = Memsys.create (config ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_load m ~now:0 ~header:false ~addr:1);
  ignore (Memsys.try_accept_store m ~now:0 ~header:false ~addr:2);
  Alcotest.(check int) "loads" 1 (Memsys.loads m);
  Alcotest.(check int) "stores" 1 (Memsys.stores m);
  Memsys.reset_stats m;
  Alcotest.(check int) "reset" 0 (Memsys.loads m)

let test_fifo_attached () =
  let m = Memsys.create (config ~fifo_capacity:3 ()) in
  let f = Memsys.fifo m in
  Alcotest.(check int) "fifo capacity" 3 (Hsgc_memsim.Header_fifo.capacity f)

let test_invalid_config () =
  Alcotest.check_raises "zero latency"
    (Invalid_argument "Memsys.create: store_latency must be >= 1 (got 0)")
    (fun () -> ignore (Memsys.create (config ~store_latency:0 ())));
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Memsys.create: bandwidth must be >= 1 (got 0)")
    (fun () -> ignore (Memsys.create (config ~bandwidth:0 ())));
  Alcotest.check_raises "zero fifo"
    (Invalid_argument "Memsys.create: fifo_capacity must be >= 1 (got 0)")
    (fun () -> ignore (Memsys.create (config ~fifo_capacity:0 ())));
  Alcotest.check_raises "negative cache"
    (Invalid_argument "Memsys.create: header_cache_entries must be >= 0 (got -1)")
    (fun () -> ignore (Memsys.create (config ~header_cache_entries:(-1) ())));
  Alcotest.(check bool)
    "validate ok" true
    (Memsys.validate_config (config ()) = Ok ())

let test_header_cache_hit () =
  let m = Memsys.create (config ~header_cache_entries:16 ()) in
  Memsys.begin_cycle m ~now:0;
  (* first access misses and fills *)
  Alcotest.(check (option int)) "miss costs full latency" (Some 4)
    (Memsys.try_accept_load m ~now:0 ~header:true ~addr:33);
  Alcotest.(check int) "miss counted" 1 (Memsys.header_cache_misses m);
  Memsys.begin_cycle m ~now:5;
  Alcotest.(check (option int)) "hit costs one cycle" (Some 6)
    (Memsys.try_accept_load m ~now:5 ~header:true ~addr:33);
  Alcotest.(check int) "hit counted" 1 (Memsys.header_cache_hits m)

let test_header_cache_store_updates () =
  let m = Memsys.create (config ~header_cache_entries:16 ~store_latency:5 ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_store m ~now:0 ~header:true ~addr:7);
  Memsys.begin_cycle m ~now:1;
  (* Without the cache this load would be held by the comparator; the
     store updated the cache, so the load hits and proceeds. *)
  Alcotest.(check (option int)) "hit despite pending store" (Some 2)
    (Memsys.try_accept_load m ~now:1 ~header:true ~addr:7);
  Alcotest.(check int) "no order rejection" 0 (Memsys.rejected_order m)

let test_header_cache_conflict_eviction () =
  let m = Memsys.create (config ~header_cache_entries:4 ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_load m ~now:0 ~header:true ~addr:5);
  (* addr 9 maps to the same slot (5 mod 4 = 9 mod 4): evicts. *)
  ignore (Memsys.try_accept_load m ~now:0 ~header:true ~addr:9);
  Memsys.begin_cycle m ~now:10;
  Alcotest.(check (option int)) "5 was evicted, full latency" (Some 14)
    (Memsys.try_accept_load m ~now:10 ~header:true ~addr:5)

let test_header_cache_disabled_by_default () =
  let m = Memsys.create (config ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_load m ~now:0 ~header:true ~addr:5);
  Memsys.begin_cycle m ~now:10;
  Alcotest.(check (option int)) "no caching" (Some 14)
    (Memsys.try_accept_load m ~now:10 ~header:true ~addr:5);
  Alcotest.(check int) "no hits" 0 (Memsys.header_cache_hits m)

let test_body_loads_not_cached () =
  let m = Memsys.create (config ~header_cache_entries:16 ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_load m ~now:0 ~header:false ~addr:5);
  Memsys.begin_cycle m ~now:10;
  Alcotest.(check (option int)) "body load unaffected" (Some 12)
    (Memsys.try_accept_load m ~now:10 ~header:false ~addr:5)

let test_pending_store_sweep () =
  (* Regression: committed header stores used to pile up in the pending
     table forever. The periodic sweep in [begin_cycle] must drop every
     entry whose commit time has passed. *)
  let m = Memsys.create (config ~bandwidth:200 ()) in
  Memsys.begin_cycle m ~now:0;
  for addr = 1 to 100 do
    ignore (Memsys.try_accept_store m ~now:0 ~header:true ~addr)
  done;
  Alcotest.(check int) "all pending" 100 (Memsys.pending_store_count m);
  (* Jump far past both every commit time and the sweep period. *)
  Memsys.begin_cycle m ~now:5000;
  Alcotest.(check int) "sweep drained the table" 0
    (Memsys.pending_store_count m)

let test_store_commit_time () =
  let m = Memsys.create (config ~store_latency:3 ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_store m ~now:0 ~header:true ~addr:7);
  Memsys.begin_cycle m ~now:1;
  Alcotest.(check (option int)) "pending store visible" (Some 3)
    (Memsys.store_commit_time m ~addr:7);
  Alcotest.(check (option int)) "other addr clear" None
    (Memsys.store_commit_time m ~addr:8);
  Memsys.begin_cycle m ~now:3;
  Alcotest.(check (option int)) "committed store no longer blocks" None
    (Memsys.store_commit_time m ~addr:7)

let test_reset_clears_everything () =
  let m = Memsys.create (config ~header_cache_entries:16 ~store_latency:5 ()) in
  Memsys.begin_cycle m ~now:0;
  ignore (Memsys.try_accept_load m ~now:0 ~header:true ~addr:33);
  ignore (Memsys.try_accept_store m ~now:0 ~header:true ~addr:7);
  Memsys.begin_cycle m ~now:1;
  ignore (Memsys.try_accept_load m ~now:1 ~header:true ~addr:7);
  Memsys.reset m;
  Alcotest.(check int) "loads zero" 0 (Memsys.loads m);
  Alcotest.(check int) "stores zero" 0 (Memsys.stores m);
  Alcotest.(check int) "order rejections zero" 0 (Memsys.rejected_order m);
  Alcotest.(check int) "pending stores cleared" 0 (Memsys.pending_store_count m);
  Memsys.begin_cycle m ~now:0;
  (* The header cache was flushed: addr 33 misses again at full latency,
     and the comparator no longer remembers the store to addr 7. *)
  Alcotest.(check (option int)) "cache flushed, full latency" (Some 4)
    (Memsys.try_accept_load m ~now:0 ~header:true ~addr:33);
  Alcotest.(check bool) "comparator state cleared" true
    (Memsys.try_accept_load m ~now:0 ~header:true ~addr:7 <> None)

let test_with_extra_latency () =
  let c = Memsys.with_extra_latency (config ()) 20 in
  Alcotest.(check int) "header" 24 c.Memsys.header_load_latency;
  Alcotest.(check int) "body" 22 c.Memsys.body_load_latency;
  Alcotest.(check int) "store" 21 c.Memsys.store_latency

let suite =
  [
    Alcotest.test_case "load latencies" `Quick test_load_latencies;
    Alcotest.test_case "store latency" `Quick test_store_latency;
    Alcotest.test_case "bandwidth limit" `Quick test_bandwidth_limit;
    Alcotest.test_case "comparator holds header load" `Quick
      test_comparator_holds_header_load;
    Alcotest.test_case "body loads not ordered" `Quick test_body_loads_not_ordered;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "fifo attached" `Quick test_fifo_attached;
    Alcotest.test_case "invalid config" `Quick test_invalid_config;
    Alcotest.test_case "pending-store sweep" `Quick test_pending_store_sweep;
    Alcotest.test_case "store commit time" `Quick test_store_commit_time;
    Alcotest.test_case "reset clears everything" `Quick
      test_reset_clears_everything;
    Alcotest.test_case "with_extra_latency" `Quick test_with_extra_latency;
    Alcotest.test_case "header cache hit" `Quick test_header_cache_hit;
    Alcotest.test_case "header cache store-update" `Quick
      test_header_cache_store_updates;
    Alcotest.test_case "header cache eviction" `Quick
      test_header_cache_conflict_eviction;
    Alcotest.test_case "header cache off by default" `Quick
      test_header_cache_disabled_by_default;
    Alcotest.test_case "body loads not cached" `Quick test_body_loads_not_cached;
  ]
