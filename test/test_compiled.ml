(* Tests for the compiled stepping engine: the third engine next to
   naive and event-driven skipping, with instrumentation branches
   resolved at instantiation and batched retirement of
   already-determined completions.

   The engine's contract is the same equivalence invariant the skip
   kernel carries, checked three ways instead of two: every reported
   simulation statistic — total cycles, per-core stall/work counters,
   memory-system and FIFO counters, the verified post-heap — must be
   bit-identical to naive stepping; only wall time and the
   executed/skipped split may differ. Fault injection and attached
   instruments force the general engine (the compiled fast path resolves
   those hooks away), so those configurations double as fallback
   coverage: requesting [compiled] must never change any statistic. *)

module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Memsys = Hsgc_memsim.Memsys
module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify
module Checkpoint = Hsgc_checkpoint.Checkpoint
module Tracer = Hsgc_obs.Tracer

(* Everything in gc_stats except the kernel-observability fields
   (executed/skipped split and wall time) must be bit-identical. *)
let check_stats_equal ctx ~ref_name ~other_name (a : Coprocessor.gc_stats)
    (b : Coprocessor.gc_stats) =
  let chk name x y =
    if x <> y then
      Alcotest.failf "%s: %s differs (%s %d, %s %d)" ctx name ref_name x
        other_name y
  in
  chk "total_cycles" a.Coprocessor.total_cycles b.Coprocessor.total_cycles;
  chk "root_cycles" a.Coprocessor.root_cycles b.Coprocessor.root_cycles;
  chk "empty_worklist_cycles" a.Coprocessor.empty_worklist_cycles
    b.Coprocessor.empty_worklist_cycles;
  chk "live_objects" a.Coprocessor.live_objects b.Coprocessor.live_objects;
  chk "live_words" a.Coprocessor.live_words b.Coprocessor.live_words;
  chk "fifo_hits" a.Coprocessor.fifo_hits b.Coprocessor.fifo_hits;
  chk "fifo_misses" a.Coprocessor.fifo_misses b.Coprocessor.fifo_misses;
  chk "fifo_overflows" a.Coprocessor.fifo_overflows
    b.Coprocessor.fifo_overflows;
  chk "mem_loads" a.Coprocessor.mem_loads b.Coprocessor.mem_loads;
  chk "mem_stores" a.Coprocessor.mem_stores b.Coprocessor.mem_stores;
  chk "mem_rejected_bandwidth" a.Coprocessor.mem_rejected_bandwidth
    b.Coprocessor.mem_rejected_bandwidth;
  chk "mem_rejected_order" a.Coprocessor.mem_rejected_order
    b.Coprocessor.mem_rejected_order;
  chk "header_cache_hits" a.Coprocessor.header_cache_hits
    b.Coprocessor.header_cache_hits;
  chk "header_cache_misses" a.Coprocessor.header_cache_misses
    b.Coprocessor.header_cache_misses;
  chk "faults_injected" a.Coprocessor.faults_injected
    b.Coprocessor.faults_injected;
  chk "corruptions_injected" a.Coprocessor.corruptions_injected
    b.Coprocessor.corruptions_injected;
  Array.iteri
    (fun i ca ->
      let cb = b.Coprocessor.per_core.(i) in
      List.iter
        (fun s ->
          if Counters.get ca s <> Counters.get cb s then
            Alcotest.failf "%s: core %d %s stalls differ (%s %d, %s %d)" ctx i
              (Counters.stall_name s) ref_name (Counters.get ca s) other_name
              (Counters.get cb s))
        Counters.all_stalls;
      if ca.Counters.busy_cycles <> cb.Counters.busy_cycles then
        Alcotest.failf "%s: core %d busy_cycles differ" ctx i;
      if ca.Counters.objects_scanned <> cb.Counters.objects_scanned then
        Alcotest.failf "%s: core %d objects_scanned differ" ctx i;
      if ca.Counters.objects_evacuated <> cb.Counters.objects_evacuated then
        Alcotest.failf "%s: core %d objects_evacuated differ" ctx i;
      if ca.Counters.words_copied <> cb.Counters.words_copied then
        Alcotest.failf "%s: core %d words_copied differ" ctx i)
    a.Coprocessor.per_core;
  if
    b.Coprocessor.executed_cycles + b.Coprocessor.skipped_cycles
    <> b.Coprocessor.total_cycles
  then Alcotest.failf "%s: executed + skipped <> total" ctx

(* Run the same prebuilt configuration under all three engines and check
   the full three-way parity: compiled vs naive and skip vs naive (the
   latter so a three-way test failure names the engine that moved), plus
   canonical post-heap equality. *)
let check_three ctx ~mem ?scan_unit ?faults ~n_cores build =
  let run label cfg =
    let heap = build () in
    let stats = Coprocessor.collect cfg heap in
    ignore label;
    (stats, Verify.snapshot heap)
  in
  let naive, snap_naive =
    run "naive"
      (Coprocessor.config ~mem ?scan_unit ?faults ~skip:false ~n_cores ())
  in
  let skip, _ =
    run "skip" (Coprocessor.config ~mem ?scan_unit ?faults ~skip:true ~n_cores ())
  in
  let compiled, snap_compiled =
    run "compiled"
      (Coprocessor.config ~mem ?scan_unit ?faults ~compiled:true ~n_cores ())
  in
  check_stats_equal ctx ~ref_name:"naive" ~other_name:"skip" naive skip;
  check_stats_equal ctx ~ref_name:"naive" ~other_name:"compiled" naive
    compiled;
  if not (Verify.equal_snapshot snap_naive snap_compiled) then
    Alcotest.failf "%s: compiled post-heap differs from naive post-heap" ctx

(* ------------------------------------------------------------------ *)
(* Workload grid: 8 workloads x {1,4,16} cores                         *)
(* ------------------------------------------------------------------ *)

let test_compiled_equivalent_on_workloads () =
  List.iter
    (fun w ->
      List.iter
        (fun n_cores ->
          check_three
            (Printf.sprintf "%s at %d cores" w.Workloads.name n_cores)
            ~mem:Memsys.default_config ~n_cores (fun () ->
              Workloads.build_heap ~scale:0.03 ~seed:7 w))
        [ 1; 4; 16 ])
    Workloads.all

let test_compiled_equivalent_latency_bound () =
  (* +20-cycle latency is where batched retirement does the most work:
     long quiescent spans, the single-core exclusive interpreter, deep
     sleep/jump arithmetic. *)
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  List.iter
    (fun n_cores ->
      check_three
        (Printf.sprintf "latency-bound db at %d cores" n_cores)
        ~mem ~n_cores (fun () ->
          Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.db))
    [ 1; 4; 16 ]

(* ------------------------------------------------------------------ *)
(* Random graphs and machine configurations                            *)
(* ------------------------------------------------------------------ *)

let gen_plan_of rng n =
  let plan = Plan.create () in
  let ids =
    Array.init n (fun _ ->
        Plan.obj plan
          ~pi:(Hsgc_util.Rng.int rng 4)
          ~delta:(Hsgc_util.Rng.int rng 5))
  in
  Array.iter
    (fun id ->
      for slot = 0 to Plan.pi_of plan id - 1 do
        if Hsgc_util.Rng.int rng 100 < 70 then
          Plan.link plan ~parent:id ~slot ~child:ids.(Hsgc_util.Rng.int rng n)
      done)
    ids;
  for _ = 1 to 1 + Hsgc_util.Rng.int rng 3 do
    Plan.add_root plan ids.(Hsgc_util.Rng.int rng n)
  done;
  plan

let qcheck_compiled_equivalent =
  QCheck.Test.make
    ~name:
      "compiled engine is bit-identical to naive and skip on random graphs \
       and configs"
    ~count:60
    (QCheck.make
       ~print:(fun ((n, s), (nc, ca, el, bw, ff)) ->
         Printf.sprintf
           "graph(n=%d seed=%d) cores=%d cache=%d lat+%d bw=%d fifo=%d" n s nc
           ca el bw ff)
       QCheck.Gen.(
         let gen_plan =
           let* n = int_range 1 60 in
           let* seed = small_nat in
           return (n, seed)
         in
         (* No [scan_unit] dimension: the compiled engine statically
            rejects sub-object scanning ([start] raises), a validated
            incompatibility like the sanitizer — covered by the CLI
            tests, not this grid. *)
         let gen_config =
           let* n_cores = int_range 1 16 in
           let* cache = oneofl [ 0; 8; 1024 ] in
           let* extra_latency = oneofl [ 0; 3; 20 ] in
           let* bandwidth = oneofl [ 1; 4; 8 ] in
           let* fifo = oneofl [ 2; 64; 32768 ] in
           return (n_cores, cache, extra_latency, bandwidth, fifo)
         in
         pair gen_plan gen_config))
    (fun ((n, seed), (n_cores, cache, extra_latency, bandwidth, fifo)) ->
      let plan = gen_plan_of (Hsgc_util.Rng.create (seed + 1)) n in
      let mem =
        Memsys.with_extra_latency
          {
            Memsys.default_config with
            Memsys.bandwidth;
            fifo_capacity = fifo;
            header_cache_entries = cache;
          }
          extra_latency
      in
      check_three "random config" ~mem ~n_cores (fun () ->
          Plan.materialize plan);
      true)

let qcheck_compiled_with_faults =
  QCheck.Test.make
    ~name:
      "requesting the compiled engine under delay-class faults falls back \
       bit-identically (1..16 cores)"
    ~count:40
    (QCheck.make
       ~print:(fun ((n, s), (nc, intensity)) ->
         Printf.sprintf "graph(n=%d seed=%d) cores=%d intensity=%.2f" n s nc
           intensity)
       QCheck.Gen.(
         let gen_plan =
           let* n = int_range 1 50 in
           let* seed = small_nat in
           return (n, seed)
         in
         let gen_config =
           let* n_cores = int_range 1 16 in
           let* intensity = oneofl [ 0.1; 0.4; 0.8 ] in
           return (n_cores, intensity)
         in
         pair gen_plan gen_config))
    (fun ((n, seed), (n_cores, intensity)) ->
      (* Fault injection disqualifies the compiled fast path (the
         injector's per-retry fault stream needs per-cycle stepping), so
         a [compiled:true] config with faults runs the general engine —
         and must still match naive stepping on every statistic,
         including the injected-fault counts drawn from the RNG
         stream. *)
      let plan = gen_plan_of (Hsgc_util.Rng.create (seed + 1)) n in
      let faults =
        Hsgc_fault.Injector.delay_class ~seed:(seed + 3) ~intensity ()
      in
      check_three "delay faults" ~mem:Memsys.default_config ~faults ~n_cores
        (fun () -> Plan.materialize plan);
      true)

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume under the compiled engine                         *)
(* ------------------------------------------------------------------ *)

let test_compiled_checkpoint_resume () =
  (* Snapshot a compiled run mid-flight (which must flush the engine's
     transient scheduling state — parked spinners, deferred watchdog
     progress — to the canonical representation), resume it onto a fresh
     machine, and demand the resumed run end bit-identical to a
     straight-through compiled run and to naive stepping. *)
  let w = Workloads.db in
  let scale = 0.05 and seed = 11 in
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  let cfg = Coprocessor.config ~mem ~compiled:true ~n_cores:8 () in
  let straight_heap = Workloads.build_heap ~scale ~seed w in
  let straight = Coprocessor.collect cfg straight_heap in
  let naive_heap = Workloads.build_heap ~scale ~seed w in
  let naive =
    Coprocessor.collect
      (Coprocessor.config ~mem ~skip:false ~n_cores:8 ())
      naive_heap
  in
  check_stats_equal "straight-through" ~ref_name:"naive"
    ~other_name:"compiled" naive straight;
  (* Interrupted leg: save roughly mid-run, at whatever cycle boundary
     the stepped loop lands on. *)
  let heap1 = Workloads.build_heap ~scale ~seed w in
  let sim1 = Coprocessor.start cfg heap1 in
  let target = straight.Coprocessor.total_cycles / 2 in
  while (not (Coprocessor.halted sim1)) && Coprocessor.now sim1 < target do
    Coprocessor.step sim1
  done;
  if Coprocessor.halted sim1 then
    Alcotest.fail "run halted before the checkpoint target";
  let snap =
    Checkpoint.of_string
      (Checkpoint.to_string (Coprocessor.Snapshot.save sim1 ~fingerprint:"t"))
  in
  let heap2 = Workloads.build_heap ~scale ~seed w in
  let sim2 = Coprocessor.start cfg heap2 in
  Coprocessor.Snapshot.restore sim2 snap;
  while not (Coprocessor.halted sim2) do
    Coprocessor.step sim2
  done;
  let resumed = Coprocessor.finalize sim2 in
  check_stats_equal "resumed" ~ref_name:"straight" ~other_name:"resumed"
    straight resumed;
  if
    not
      (Verify.equal_snapshot
         (Verify.snapshot straight_heap)
         (Verify.snapshot heap2))
  then Alcotest.fail "resumed compiled post-heap differs from straight-through"

(* ------------------------------------------------------------------ *)
(* Golden-trace guard: tracer attachment forces the general engine     *)
(* ------------------------------------------------------------------ *)

let test_compiled_trace_digest_matches () =
  (* An attached tracer disqualifies the compiled fast path (batching
     would swallow the per-cycle events), so a traced compiled-config
     run must produce the exact event stream — skip-span events
     included — of a traced skip-engine run: the same byte-stable
     digests the golden corpus pins. *)
  let w = Workloads.cup in
  let digest compiled =
    let heap = Workloads.build_heap ~scale:0.05 ~seed:7 w in
    let obs = Tracer.create ~n_cores:4 () in
    Tracer.enable obs;
    let stats =
      Coprocessor.collect ~obs (Coprocessor.config ~compiled ~n_cores:4 ()) heap
    in
    (Tracer.digest obs, stats.Coprocessor.total_cycles)
  in
  let d_skip, c_skip = digest false in
  let d_compiled, c_compiled = digest true in
  Alcotest.(check int) "cycle counts equal" c_skip c_compiled;
  Alcotest.(check string) "trace digests equal" d_skip d_compiled

let suite =
  [
    Alcotest.test_case "compiled equivalent on workload grid" `Slow
      test_compiled_equivalent_on_workloads;
    Alcotest.test_case "compiled equivalent latency-bound" `Quick
      test_compiled_equivalent_latency_bound;
    QCheck_alcotest.to_alcotest qcheck_compiled_equivalent;
    QCheck_alcotest.to_alcotest qcheck_compiled_with_faults;
    Alcotest.test_case "compiled checkpoint/resume bit-identical" `Quick
      test_compiled_checkpoint_resume;
    Alcotest.test_case "traced compiled run matches naive digest" `Quick
      test_compiled_trace_digest_matches;
  ]
