(* Fault-injection harness: injector determinism, watchdog semantics,
   graceful-degradation policies, and the two campaign-level properties
   the chaos harness is built on — delay faults are metamorphic-safe,
   corruption faults are always detected. *)

module Injector = Hsgc_fault.Injector
module Kernel = Hsgc_sim.Kernel
module Domain_pool = Hsgc_sim.Domain_pool
module Chaos = Hsgc_core.Chaos
module Workloads = Hsgc_objgraph.Workloads

(* --- injector ---------------------------------------------------------- *)

let test_disabled_neutral () =
  let t = Injector.disabled in
  Alcotest.(check bool) "disabled" false (Injector.enabled t);
  for _ = 1 to 100 do
    Alcotest.(check int) "no delay" 0 (Injector.extra_delay t);
    Alcotest.(check bool) "no drop" false (Injector.drop_push t);
    Alcotest.(check bool) "no invalidate" false (Injector.invalidate_cache t);
    Alcotest.(check bool) "no busy" false (Injector.spurious_busy t);
    Alcotest.(check int) "body identity" 12345 (Injector.corrupt_body t 12345);
    Alcotest.(check int) "header identity" 678 (Injector.corrupt_header t 678)
  done;
  Alcotest.(check int) "no faults counted" 0 (Injector.total t)

let test_zero_probability_never_fires () =
  let t = Injector.create { Injector.default_spec with seed = 7 } in
  Alcotest.(check bool) "enabled" true (Injector.enabled t);
  for i = 1 to 500 do
    assert (Injector.extra_delay t = 0);
    assert (not (Injector.drop_push t));
    assert (Injector.corrupt_body t i = i)
  done;
  Alcotest.(check int) "still zero faults" 0 (Injector.total t)

let test_deterministic_replay () =
  let draw spec =
    let t = Injector.create spec in
    let xs = ref [] in
    for i = 1 to 200 do
      xs :=
        ( Injector.extra_delay t,
          Injector.drop_push t,
          Injector.corrupt_body t i,
          Injector.corrupt_header t i )
        :: !xs
    done;
    (!xs, Injector.counts t)
  in
  let spec = Injector.delay_class ~seed:11 ~intensity:0.4 () in
  let a, ca = draw spec and b, cb = draw spec in
  Alcotest.(check bool) "same draw sequence" true (a = b);
  Alcotest.(check bool) "same counts" true (ca = cb);
  let c, _ = draw { spec with Injector.seed = 12 } in
  Alcotest.(check bool) "different seed, different sequence" true (a <> c)

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let test_corruption_is_single_bit () =
  let t =
    Injector.create (Injector.corruption_class ~seed:3 ~intensity:1.0 ())
  in
  for i = 0 to 999 do
    let w = i * 73 in
    let body = Injector.corrupt_body t w in
    if body <> w then begin
      Alcotest.(check int) "body: exactly one bit" 1 (popcount (body lxor w));
      (* The xor is a power of two; <= 2^61 keeps the flip inside the 62
         usable word bits (2^62 would be the OCaml int sign bit). *)
      Alcotest.(check bool) "body: bit below 62" true (body lxor w <= 1 lsl 61)
    end;
    let hdr = Injector.corrupt_header t w in
    if hdr <> w then begin
      Alcotest.(check int) "header: exactly one bit" 1 (popcount (hdr lxor w));
      (* Confined to the decoded fields (state/pi/delta = bits 0..41) so
         every header corruption is semantically visible. *)
      Alcotest.(check bool) "header: bit below 42" true (hdr lxor w <= 1 lsl 41)
    end
  done;
  let c = Injector.counts t in
  Alcotest.(check bool) "intensity 1.0 clamped but still fires" true
    (c.Injector.body_corruptions > 500);
  Alcotest.(check int) "corruptions = body + header"
    (c.Injector.body_corruptions + c.Injector.header_corruptions)
    (Injector.corruptions t)

(* --- watchdog ---------------------------------------------------------- *)

let test_watchdog_budget () =
  let w = Kernel.Watchdog.create ~budget:100 ~window:1_000_000 () in
  for now = 0 to 99 do
    Alcotest.(check bool)
      (Printf.sprintf "no trip at %d" now)
      true
      (Kernel.Watchdog.observe w ~now ~progressed:true = None)
  done;
  (match Kernel.Watchdog.observe w ~now:100 ~progressed:true with
  | Some (Kernel.Watchdog.Budget_exceeded { budget }) ->
    Alcotest.(check int) "budget" 100 budget
  | _ -> Alcotest.fail "expected Budget_exceeded at the budget cycle")

let test_watchdog_no_progress () =
  let w = Kernel.Watchdog.create ~window:10 () in
  (* Progress resets the quiet counter... *)
  for now = 0 to 8 do
    assert (Kernel.Watchdog.observe w ~now ~progressed:false = None)
  done;
  assert (Kernel.Watchdog.observe w ~now:9 ~progressed:true = None);
  for now = 10 to 18 do
    assert (Kernel.Watchdog.observe w ~now ~progressed:false = None)
  done;
  (* ...and the 10th consecutive quiet cycle trips. *)
  match Kernel.Watchdog.observe w ~now:19 ~progressed:false with
  | Some (Kernel.Watchdog.No_progress { window; since }) ->
    Alcotest.(check int) "window" 10 window;
    Alcotest.(check int) "last progress at 9" 9 since
  | _ -> Alcotest.fail "expected No_progress after window quiet cycles"

let test_watchdog_validates () =
  Alcotest.check_raises "window 0 rejected"
    (Invalid_argument "Kernel.Watchdog.create: window must be >= 1")
    (fun () -> ignore (Kernel.Watchdog.create ~window:0 ()));
  Alcotest.check_raises "budget 0 rejected"
    (Invalid_argument "Kernel.Watchdog.create: budget must be >= 1")
    (fun () -> ignore (Kernel.Watchdog.create ~budget:0 ~window:5 ()))

(* --- graceful degradation (Domain_pool policies) ----------------------- *)

exception Boom of int

let test_policy_skip_isolates () =
  let f ~attempt:_ x = if x mod 3 = 0 then raise (Boom x) else x * 10 in
  List.iter
    (fun jobs ->
      let out =
        Domain_pool.map_list_policy ~on_error:Domain_pool.Skip ~jobs f
          [ 1; 2; 3; 4; 5; 6; 7 ]
      in
      let show = function
        | Domain_pool.Done v -> string_of_int v
        | Domain_pool.Failed { error = Boom x; _ } -> Printf.sprintf "boom%d" x
        | Domain_pool.Failed _ -> "?"
      in
      Alcotest.(check (list string))
        (Printf.sprintf "ordering kept at jobs=%d" jobs)
        [ "10"; "20"; "boom3"; "40"; "50"; "boom6"; "70" ]
        (List.map show out))
    [ 1; 4 ]

let test_policy_retry_reseeds () =
  (* Succeeds only at attempt 2: Retry 2 must reach it, Retry 1 must not. *)
  let f ~attempt x = if attempt < 2 then raise (Boom attempt) else x + attempt in
  (match
     Domain_pool.map_list_policy ~on_error:(Domain_pool.Retry 2) ~jobs:1 f [ 5 ]
   with
  | [ Domain_pool.Done 7 ] -> ()
  | _ -> Alcotest.fail "Retry 2 should succeed at attempt 2");
  match
    Domain_pool.map_list_policy ~on_error:(Domain_pool.Retry 1) ~jobs:1 f [ 5 ]
  with
  | [ Domain_pool.Failed { attempts = 2; error = Boom 1 } ] -> ()
  | _ -> Alcotest.fail "Retry 1 should record the attempt-1 failure"

let test_policy_fail_raises_earliest () =
  let f ~attempt:_ x = if x >= 4 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match
        Domain_pool.map_list_policy ~on_error:Domain_pool.Fail ~jobs f
          [ 1; 5; 2; 4; 3 ]
      with
      | exception Boom 5 -> ()
      | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
      | _ -> Alcotest.fail "expected Boom 5 (earliest failing input)")
    [ 1; 4 ]

(* Property (c): when nothing fails, every policy at every jobs level is
   byte-identical to the plain sequential map — graceful degradation is
   free when not needed. *)
let qcheck_policy_identity_when_clean =
  QCheck.Test.make ~name:"policies are identity when no point fails" ~count:30
    QCheck.(small_list small_int)
    (fun xs ->
      let expect = List.map (fun x -> (x * 37) land 1023) xs in
      List.for_all
        (fun on_error ->
          List.for_all
            (fun jobs ->
              Domain_pool.map_list_policy ~on_error ~jobs
                (fun ~attempt x ->
                  (* A fresh attempt index would change the result: the
                     identity property also pins attempt = 0. *)
                  ((x * 37) + attempt) land 1023)
                xs
              = List.map (fun v -> Domain_pool.Done v) expect)
            [ 1; 3 ])
        [ Domain_pool.Fail; Domain_pool.Skip; Domain_pool.Retry 2 ])

(* --- campaign properties ----------------------------------------------- *)

let scale = 0.05 (* --quick scale: every workload a few hundred objects *)

let gen_point klass intensities =
  QCheck.Gen.(
    let* w = oneofl Workloads.all in
    let* intensity = oneofl intensities in
    let* n_cores = int_range 1 16 in
    let* seed = int_range 0 1000 in
    return { Chaos.klass; intensity; workload = w.Workloads.name; n_cores; seed })

let print_point (p : Chaos.point) =
  Printf.sprintf "%s i=%g w=%s n=%d seed=%d"
    (match p.Chaos.klass with `Delay -> "delay" | `Corruption -> "corruption")
    p.Chaos.intensity p.Chaos.workload p.Chaos.n_cores p.Chaos.seed

(* Property (b): delay-class faults are metamorphic-safe — the run
   terminates within the watchdog budget and verifies cleanly (snapshot
   isomorphism + Cheney oracle), at any core count 1..16. *)
let qcheck_delay_faults_are_safe =
  QCheck.Test.make ~name:"delay campaigns terminate and verify (1..16 cores)"
    ~count:25
    (QCheck.make ~print:print_point
       (gen_point `Delay [ 0.02; 0.1; 0.3; 0.6 ]))
    (fun p ->
      let r = Chaos.run_point ~scale p in
      match r.Chaos.classification with
      | Chaos.Clean -> r.Chaos.terminated
      | c ->
        QCheck.Test.fail_reportf "delay point not clean: %s"
          (match c with
          | Chaos.Hung msg -> "hung: " ^ msg
          | Chaos.Detected msg -> "detected?!: " ^ msg
          | Chaos.Silent n -> Printf.sprintf "silent?! (%d)" n
          | Chaos.Clean -> assert false))

(* Property (a): every corruption-class fault that actually fires is
   caught — by the verifier or a structured simulator error — never
   silently absorbed into a passing run. *)
let qcheck_corruption_always_detected =
  QCheck.Test.make ~name:"corruption faults are never silently absorbed"
    ~count:30
    (QCheck.make ~print:print_point
       (gen_point `Corruption [ 0.005; 0.02; 0.1 ]))
    (fun p ->
      let r = Chaos.run_point ~scale p in
      match r.Chaos.classification with
      | Chaos.Silent n ->
        QCheck.Test.fail_reportf "%d corruption(s) passed verification" n
      | Chaos.Clean -> r.Chaos.corruptions = 0
      | Chaos.Detected _ -> r.Chaos.corruptions > 0 || not r.Chaos.terminated
      | Chaos.Hung msg -> QCheck.Test.fail_reportf "corruption point hung: %s" msg)

let suite =
  [
    Alcotest.test_case "disabled injector is neutral" `Quick
      test_disabled_neutral;
    Alcotest.test_case "zero probabilities never fire" `Quick
      test_zero_probability_never_fires;
    Alcotest.test_case "same spec replays the same faults" `Quick
      test_deterministic_replay;
    Alcotest.test_case "corruptions flip exactly one meaningful bit" `Quick
      test_corruption_is_single_bit;
    Alcotest.test_case "watchdog: budget trips at the budget cycle" `Quick
      test_watchdog_budget;
    Alcotest.test_case "watchdog: quiet window trips, progress resets" `Quick
      test_watchdog_no_progress;
    Alcotest.test_case "watchdog: rejects non-positive bounds" `Quick
      test_watchdog_validates;
    Alcotest.test_case "policy Skip isolates failures, keeps order" `Quick
      test_policy_skip_isolates;
    Alcotest.test_case "policy Retry re-runs with fresh attempt index" `Quick
      test_policy_retry_reseeds;
    Alcotest.test_case "policy Fail raises the earliest input's error" `Quick
      test_policy_fail_raises_earliest;
    QCheck_alcotest.to_alcotest qcheck_policy_identity_when_clean;
    QCheck_alcotest.to_alcotest qcheck_delay_faults_are_safe;
    QCheck_alcotest.to_alcotest qcheck_corruption_always_detected;
  ]
