(* The banked variant machine (Hsgc_coproc.Banked): the banking
   partition plan, then the load-bearing property — the differential
   semantic-equivalence contract against the dense machine, on the full
   workload grid and on random graphs under delay-class faults. Plus
   the banked driver's own guarantees: byte-determinism at every lane
   count, quantum invariance of the final heap, and sanitizer silence
   in strict mode. *)

module Partition = Hsgc_sim.Partition
module Coprocessor = Hsgc_coproc.Coprocessor
module Banked = Hsgc_coproc.Banked
module Memsys = Hsgc_memsim.Memsys
module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify
module Heap = Hsgc_heap.Heap
module Injector = Hsgc_fault.Injector

(* ------------------------------------------------------------------ *)
(* Banking partition plan                                              *)
(* ------------------------------------------------------------------ *)

let test_banking_validate () =
  let ok ~n_cores ~n_partitions =
    match Partition.validate_banked ~n_cores ~n_partitions with
    | Ok () -> ()
    | Error msg ->
      Alcotest.failf "validate_banked rejected %d/%d: %s" n_cores n_partitions
        msg
  in
  let err ~n_cores ~n_partitions =
    match Partition.validate_banked ~n_cores ~n_partitions with
    | Error _ -> ()
    | Ok () ->
      Alcotest.failf "validate_banked accepted %d cores / %d banks" n_cores
        n_partitions
  in
  (* 1 core: only the single-bank limit case is valid. *)
  ok ~n_cores:1 ~n_partitions:1;
  err ~n_cores:1 ~n_partitions:2;
  (* more banks than cores is always rejected *)
  err ~n_cores:8 ~n_partitions:9;
  err ~n_cores:4 ~n_partitions:16;
  (* non-dividing counts are rejected; dividing ones accepted *)
  err ~n_cores:8 ~n_partitions:3;
  err ~n_cores:6 ~n_partitions:4;
  err ~n_cores:16 ~n_partitions:5;
  ok ~n_cores:8 ~n_partitions:4;
  ok ~n_cores:6 ~n_partitions:3;
  ok ~n_cores:16 ~n_partitions:16;
  (* degenerate counts *)
  err ~n_cores:0 ~n_partitions:1;
  err ~n_cores:8 ~n_partitions:0;
  (* the rejection message proposes the nearest valid count *)
  (match Partition.validate_banked ~n_cores:8 ~n_partitions:3 with
  | Error msg ->
    if not (String.length msg > 0) then Alcotest.fail "empty error message"
  | Ok () -> Alcotest.fail "8/3 accepted")

let test_banking_plan () =
  let p = Partition.banking ~n_cores:8 ~n_partitions:4 in
  Alcotest.(check int) "cores" 8 (Partition.n_cores p);
  Alcotest.(check int) "banks" 4 (Partition.n_partitions p);
  (match Partition.kind p with
  | Partition.Banked -> ()
  | Partition.Dense -> Alcotest.fail "banking plan is Dense");
  for q = 0 to 3 do
    let lo, hi = Partition.range p ~partition:q in
    Alcotest.(check int) (Printf.sprintf "bank %d size" q) 2 (hi - lo)
  done;
  (* The only cross-bank interface is the header FIFO. *)
  Alcotest.(check (list string))
    "interfaces" [ "header-fifo" ]
    (List.map Partition.interface_name (Partition.interfaces p));
  Alcotest.(check (list string))
    "single bank shares nothing" []
    (List.map Partition.interface_name
       (Partition.interfaces (Partition.banking ~n_cores:4 ~n_partitions:1)));
  (* Invalid pairs raise. *)
  (match Partition.banking ~n_cores:8 ~n_partitions:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "banking 8/3 did not raise");
  (* The auto default always validates and divides. *)
  List.iter
    (fun n_cores ->
      let b = Partition.default_banked_partitions ~n_cores in
      match Partition.validate_banked ~n_cores ~n_partitions:b with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "default_banked_partitions %d -> %d: %s" n_cores b msg)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 12; 16; 24; 32 ]

(* ------------------------------------------------------------------ *)
(* The differential equivalence grid                                   *)
(* ------------------------------------------------------------------ *)

let check_comparison ctx (r : Banked.comparison) =
  if not (Banked.equivalent r.Banked.c_equiv) then
    Alcotest.failf "%s: equivalence contract violated: %s" ctx
      (Format.asprintf "%a" Banked.pp_equivalence r.Banked.c_equiv);
  let s = r.Banked.c_bstats in
  (* A heap with no live objects converges before the first superstep. *)
  if s.Banked.supersteps <= 0 && r.Banked.c_banked.Coprocessor.live_objects > 0
  then Alcotest.failf "%s: no supersteps" ctx;
  if s.Banked.remote_requests <> s.Banked.fixups_applied then
    Alcotest.failf "%s: %d remote requests but %d fixups" ctx
      s.Banked.remote_requests s.Banked.fixups_applied;
  (* The modeled critical path decomposes exactly. *)
  if
    r.Banked.c_banked.Coprocessor.total_cycles
    <> s.Banked.max_bank_cycles + s.Banked.arb_cycles + s.Banked.stitch_cycles
  then Alcotest.failf "%s: total_cycles does not decompose" ctx

let test_equivalence_grid () =
  List.iter
    (fun w ->
      List.iter
        (fun n_cores ->
          List.iter
            (fun banks ->
              if n_cores mod banks = 0 then
                let ctx =
                  Printf.sprintf "%s cores=%d banks=%d" w.Workloads.name
                    n_cores banks
                in
                let cfg = Coprocessor.config ~n_cores () in
                check_comparison ctx
                  (Banked.differential ~lanes:2 ~banks cfg (fun () ->
                       Workloads.build_heap ~scale:0.02 ~seed:11 w)))
            [ 2; 4; 8 ])
        [ 2; 4; 8; 16 ])
    Workloads.all

(* Random graphs, memory configs, bank counts and delay intensities —
   the qcheck leg of the equivalence grid. *)
let qcheck_banked_equivalence =
  QCheck.Test.make
    ~name:
      "banked machine is semantically equivalent to the dense machine on \
       random graphs, configs and bank counts"
    ~count:40
    (QCheck.make
       ~print:(fun ((n, s), (nc, banks, el, bw, intensity)) ->
         Printf.sprintf
           "graph(n=%d seed=%d) cores=%d banks=%d lat+%d bw=%d fault=%g" n s
           nc banks el bw intensity)
       QCheck.Gen.(
         let gen_graph =
           let* n = int_range 1 60 in
           let* seed = small_nat in
           return (n, seed)
         in
         let gen_config =
           let* n_cores = int_range 1 16 in
           let divisors =
             List.filter (fun b -> n_cores mod b = 0)
               [ 1; 2; 3; 4; 5; 6; 7; 8; 12; 16 ]
           in
           let* banks = oneofl divisors in
           let* extra_latency = oneofl [ 0; 3; 20 ] in
           let* bandwidth = oneofl [ 1; 4; 8 ] in
           let* intensity = oneofl [ 0.0; 0.1; 0.8 ] in
           return (n_cores, banks, extra_latency, bandwidth, intensity)
         in
         pair gen_graph gen_config))
    (fun ((n, seed), (n_cores, banks, extra_latency, bandwidth, intensity)) ->
      let build () =
        let rng = Hsgc_util.Rng.create (seed + 1) in
        let plan = Plan.create () in
        let ids =
          Array.init n (fun _ ->
              Plan.obj plan
                ~pi:(Hsgc_util.Rng.int rng 4)
                ~delta:(Hsgc_util.Rng.int rng 5))
        in
        Array.iter
          (fun id ->
            for slot = 0 to Plan.pi_of plan id - 1 do
              if Hsgc_util.Rng.int rng 100 < 70 then
                Plan.link plan ~parent:id ~slot
                  ~child:ids.(Hsgc_util.Rng.int rng n)
            done)
          ids;
        for _ = 1 to 1 + Hsgc_util.Rng.int rng 3 do
          Plan.add_root plan ids.(Hsgc_util.Rng.int rng n)
        done;
        Plan.materialize plan
      in
      let mem =
        Memsys.with_extra_latency
          { Memsys.default_config with Memsys.bandwidth }
          extra_latency
      in
      let faults =
        if intensity = 0.0 then None
        else Some (Injector.delay_class ~seed:(seed + 3) ~intensity ())
      in
      let cfg = Coprocessor.config ~mem ?faults ~n_cores () in
      check_comparison "random banked" (Banked.differential ~banks cfg build);
      true)

(* ------------------------------------------------------------------ *)
(* Determinism: lanes and repetition change nothing but wall time      *)
(* ------------------------------------------------------------------ *)

let strip_wall (g : Coprocessor.gc_stats) =
  { g with Coprocessor.wall_seconds = 0. }

let strip_stats (s : Banked.stats) =
  {
    s with
    Banked.lanes = 0;
    per_bank = Array.map strip_wall s.Banked.per_bank;
  }

let test_determinism () =
  let w = Workloads.db in
  let cfg = Coprocessor.config ~n_cores:8 () in
  let run lanes =
    let heap = Workloads.build_heap ~scale:0.03 ~seed:7 w in
    let g, s = Banked.collect ~lanes ~banks:4 cfg heap in
    (strip_wall g, strip_stats s, Verify.snapshot heap)
  in
  let g1, s1, p1 = run 1 in
  List.iter
    (fun lanes ->
      let g, s, p = run lanes in
      if g <> g1 then
        Alcotest.failf "gc_stats differ at %d lanes vs 1" lanes;
      if s <> s1 then
        Alcotest.failf "banked stats differ at %d lanes vs 1" lanes;
      if not (Verify.equal_snapshot p p1) then
        Alcotest.failf "heap snapshots differ at %d lanes vs 1" lanes)
    [ 1; 2; 8 ]

(* Any quantum yields the same final heap and live-set statistics;
   only the arbitration interleave's cycle accounting may shift. *)
let test_quantum_invariance () =
  let cfg = Coprocessor.config ~n_cores:8 () in
  let run quantum =
    let heap = Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.javac in
    let g, _ = Banked.collect ~lanes:1 ~quantum ~banks:4 cfg heap in
    (g, Verify.snapshot heap)
  in
  let g1, p1 = run 1 in
  List.iter
    (fun q ->
      let g, p = run q in
      if not (Verify.equal_snapshot p p1) then
        Alcotest.failf "heap differs at quantum %d" q;
      Alcotest.(check int)
        (Printf.sprintf "live objects at quantum %d" q)
        g1.Coprocessor.live_objects g.Coprocessor.live_objects;
      Alcotest.(check int)
        (Printf.sprintf "live words at quantum %d" q)
        g1.Coprocessor.live_words g.Coprocessor.live_words)
    [ 7; 64; 512; 100000 ]

(* ------------------------------------------------------------------ *)
(* Sanitizer silence in strict mode                                    *)
(* ------------------------------------------------------------------ *)

(* Strict mode raises on the first finding, so completing the default
   grid is the silence assertion. *)
let test_sanitizer_silence () =
  List.iter
    (fun w ->
      List.iter
        (fun banks ->
          let cfg =
            Coprocessor.config ~sanitize:Hsgc_sanitizer.Sanitizer.Strict
              ~n_cores:8 ()
          in
          let heap = Workloads.build_heap ~scale:0.02 ~seed:5 w in
          let g, _ = Banked.collect ~lanes:2 ~banks cfg heap in
          Alcotest.(check int)
            (Printf.sprintf "%s banks=%d findings" w.Workloads.name banks)
            0
            (List.length g.Coprocessor.sanitizer_findings))
        [ 2; 4; 8 ])
    [ Workloads.db; Workloads.compress; Workloads.jflex ]

(* ------------------------------------------------------------------ *)
(* Config rejection and degenerate heaps                               *)
(* ------------------------------------------------------------------ *)

let test_config_rejection () =
  let heap = Workloads.build_heap ~scale:0.02 ~seed:1 Workloads.db in
  let reject cfg ~banks =
    match Banked.collect ~banks cfg heap with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "Banked.collect accepted an invalid config"
  in
  reject (Coprocessor.config ~n_cores:8 ()) ~banks:3;
  reject (Coprocessor.config ~n_cores:8 ~compiled:true ()) ~banks:2;
  reject (Coprocessor.config ~n_cores:8 ~scan_unit:4 ()) ~banks:2;
  (match Banked.collect ~quantum:0 ~banks:2 (Coprocessor.config ~n_cores:8 ()) heap with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantum 0 accepted");
  (* A bank cannot be snapshotted. *)
  let view = Workloads.build_heap ~scale:0.01 ~seed:1 Workloads.db in
  let remote = Coprocessor.remote_create ~bank:0 ~lo:0 ~hi:max_int in
  let sim = Coprocessor.start ~remote (Coprocessor.config ~n_cores:2 ()) view in
  match Coprocessor.Snapshot.save sim ~fingerprint:"test" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "banked bank snapshot accepted"

let test_empty_and_tiny_heaps () =
  (* A single-object heap across many banks: most banks own an empty
     home range and park immediately. *)
  let build () =
    let plan = Plan.create () in
    let id = Plan.obj plan ~pi:0 ~delta:3 in
    Plan.add_root plan id;
    Plan.materialize plan
  in
  let cfg = Coprocessor.config ~n_cores:8 () in
  check_comparison "single object" (Banked.differential ~banks:8 cfg build);
  (* An unreachable-population heap: everything dies, nothing crosses. *)
  let build_dead () =
    let plan = Plan.create () in
    for _ = 1 to 20 do
      ignore (Plan.obj plan ~pi:2 ~delta:1)
    done;
    Plan.materialize plan
  in
  check_comparison "all dead" (Banked.differential ~banks:4 cfg build_dead)

let suite =
  [
    Alcotest.test_case "banked partition validation" `Quick
      test_banking_validate;
    Alcotest.test_case "banking plan shape and interfaces" `Quick
      test_banking_plan;
    Alcotest.test_case "equivalence grid: workloads x cores x banks" `Quick
      test_equivalence_grid;
    QCheck_alcotest.to_alcotest qcheck_banked_equivalence;
    Alcotest.test_case "byte-determinism across lane counts" `Quick
      test_determinism;
    Alcotest.test_case "quantum invariance of the final heap" `Quick
      test_quantum_invariance;
    Alcotest.test_case "sanitizer silence in strict mode" `Quick
      test_sanitizer_silence;
    Alcotest.test_case "config rejection" `Quick test_config_rejection;
    Alcotest.test_case "degenerate heaps" `Quick test_empty_and_tiny_heaps;
  ]
