(* Tests for the bounded model checker (lib/model): canonicalization
   properties (qcheck), verification of the correct protocol under every
   reduction combination, the mutant catalog end to end (model violation
   + counterexample replay through the real sync block), and the
   liveness demos. *)

module Proto = Hsgc_model.Proto
module Canon = Hsgc_model.Canon
module Explore = Hsgc_model.Explore
module Replay = Hsgc_model.Replay
module Mutation = Hsgc_model.Mutation
module Diag = Hsgc_sanitizer.Diag

let graph name ~objects =
  match Proto.graph_of_string name ~objects with
  | Ok g -> g
  | Error m -> Alcotest.fail m

let cfg ?(mutation = Proto.Correct) ?(por = true) ?(symmetry = true) name
    ~objects ~cores =
  {
    (Explore.default_config ~graph:(graph name ~objects) ~n_cores:cores) with
    Explore.mutation;
    por;
    symmetry;
  }

(* --- random reachable states for the canon properties --------------- *)

(* A tiny deterministic LCG so the walk is a pure function of the
   qcheck-drawn seed (no hidden global randomness). *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* Walk [steps] random enabled transitions of the correct protocol from
   the initial state: every state produced is reachable, so the canon
   layer is exercised on exactly the population the explorer feeds it. *)
let random_state ~graph:gn ~objects ~cores ~steps ~seed =
  let g = graph gn ~objects in
  let next = lcg seed in
  let st = ref (Proto.initial g ~n_cores:cores) in
  (try
     for _ = 1 to steps do
       let en =
         List.filter_map
           (fun c ->
             match Proto.enabled g Proto.Correct !st ~core:c with
             | Some a -> Some (c, a)
             | None -> None)
           (List.init cores Fun.id)
       in
       match en with
       | [] -> raise Exit
       | _ -> (
         let c, a = List.nth en (next (List.length en)) in
         match Proto.apply g Proto.Correct !st ~core:c a with
         | Ok s -> st := s
         | Error _ -> raise Exit)
     done
   with Exit -> ());
  !st

let random_perm ~cores ~seed =
  let next = lcg (seed lxor 0x2A2A2A) in
  let p = Array.init cores Fun.id in
  for i = cores - 1 downto 1 do
    let j = next (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let state_gen =
  QCheck.make
    ~print:(fun (gn, objects, cores, steps, seed) ->
      Printf.sprintf "%s objects=%d cores=%d steps=%d seed=%d" gn objects
        cores steps seed)
    QCheck.Gen.(
      let* gn = oneofl [ "diamond"; "chain"; "fork"; "twin"; "garbage" ] in
      let* objects = int_range 3 6 in
      let* cores = int_range 2 4 in
      let* steps = int_range 0 60 in
      let* seed = int_range 0 1_000_000 in
      return (gn, objects, cores, steps, seed))

let qcheck_key_symmetric =
  QCheck.Test.make
    ~name:"canonical key is invariant under any core renaming" ~count:300
    state_gen
    (fun (gn, objects, cores, steps, seed) ->
      let st = random_state ~graph:gn ~objects ~cores ~steps ~seed in
      let perm = random_perm ~cores ~seed in
      Canon.key (Canon.apply_perm st perm) = Canon.key st)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"decode inverts encode (keys never merge states)"
    ~count:300 state_gen
    (fun (gn, objects, cores, steps, seed) ->
      let st = random_state ~graph:gn ~objects ~cores ~steps ~seed in
      Canon.decode (Canon.encode st) = st)

let qcheck_canon_idempotent =
  QCheck.Test.make
    ~name:"canon is idempotent and key-equal states are canon-equal"
    ~count:300 state_gen
    (fun (gn, objects, cores, steps, seed) ->
      let st = random_state ~graph:gn ~objects ~cores ~steps ~seed in
      let perm = random_perm ~cores ~seed in
      let twin = Canon.apply_perm st perm in
      Canon.canon (Canon.canon st) = Canon.canon st
      && Canon.decode (Canon.key st) = Canon.canon st
      && Canon.canon twin = Canon.canon st)

(* --- verification of the correct protocol --------------------------- *)

let stats_of name o =
  match o with
  | Explore.Verified s -> s
  | _ -> Alcotest.failf "%s: expected verified, got %s" name
           (Explore.outcome_name o)

(* All four reduction combinations agree, POR leaves the state count
   untouched (sleep sets prune transitions, never states), and the DFS
   actually sleeps something. *)
let test_verified_all_reductions () =
  List.iter
    (fun (gn, objects, cores) ->
      let run ~por ~symmetry =
        stats_of
          (Printf.sprintf "%s%d/%dc por=%b sym=%b" gn objects cores por
             symmetry)
          (Explore.run (cfg gn ~objects ~cores ~por ~symmetry))
      in
      let ps = run ~por:true ~symmetry:true
      and s = run ~por:false ~symmetry:true
      and p = run ~por:true ~symmetry:false
      and n = run ~por:false ~symmetry:false in
      Alcotest.(check int)
        (gn ^ ": states identical por on/off (sym)")
        s.Explore.states ps.Explore.states;
      Alcotest.(check int)
        (gn ^ ": states identical por on/off (no sym)")
        n.Explore.states p.Explore.states;
      Alcotest.(check bool)
        (gn ^ ": symmetry shrinks the table")
        true
        (ps.Explore.states < p.Explore.states);
      Alcotest.(check bool)
        (gn ^ ": sleep sets prune transitions")
        true
        (ps.Explore.slept > 0 && ps.Explore.transitions < s.Explore.transitions))
    [ ("diamond", 4, 2); ("twin", 4, 2); ("chain", 4, 3) ]

let test_verified_three_cores () =
  List.iter
    (fun (gn, objects) ->
      let s =
        stats_of gn (Explore.run (cfg gn ~objects ~cores:3))
      in
      Alcotest.(check bool)
        (gn ^ ": explored a nontrivial space")
        true (s.Explore.states > 100 && s.Explore.finals >= 1))
    [ ("diamond", 4); ("twin", 4); ("fork", 5); ("garbage", 4) ]

let test_out_of_bounds_inconclusive () =
  match
    Explore.run
      { (cfg "diamond" ~objects:4 ~cores:3) with Explore.max_states = 50 }
  with
  | Explore.Out_of_bounds s ->
    Alcotest.(check int) "stopped at the bound" 50 s.Explore.states
  | o -> Alcotest.failf "expected out-of-bounds, got %s" (Explore.outcome_name o)

(* --- the mutant catalog, end to end --------------------------------- *)

(* Every safety mutant model-checks to its expected violation, and the
   counterexample schedule replayed through the real sync block +
   sanitizer is independently flagged with the expected dynamic check —
   the checker and the sanitizer corroborate each other. *)
let test_mutants_flagged () =
  List.iter
    (fun (e : Mutation.entry) ->
      let c =
        cfg e.Mutation.graph ~objects:4 ~cores:2 ~mutation:e.Mutation.mutation
      in
      match Explore.run c with
      | Explore.Violation (v, sched, _) ->
        Alcotest.(check string)
          (e.Mutation.name ^ ": model check")
          (Proto.check_name e.Mutation.model_check)
          (Proto.check_name v.Proto.vcheck);
        Alcotest.(check bool)
          (e.Mutation.name ^ ": counterexample is non-empty")
          true (sched <> []);
        let res = Replay.run c sched in
        let expected = Option.get e.Mutation.dynamic_check in
        if not (Replay.hits res expected) then
          Alcotest.failf "%s: replay found %s, expected %s" e.Mutation.name
            (String.concat "," res.Replay.checks)
            (Diag.check_name expected)
      | o ->
        Alcotest.failf "%s: expected a violation, got %s" e.Mutation.name
          (Explore.outcome_name o))
    Mutation.catalog

(* Reductions must not mask bugs: the same violations surface with POR
   and symmetry enabled (shorter schedules may differ, the check not). *)
let test_mutants_flagged_without_reductions () =
  List.iter
    (fun (e : Mutation.entry) ->
      let c =
        cfg e.Mutation.graph ~objects:4 ~cores:2 ~mutation:e.Mutation.mutation
          ~por:false ~symmetry:false
      in
      match Explore.run c with
      | Explore.Violation (v, _, _) ->
        Alcotest.(check string)
          (e.Mutation.name ^ ": same check without reductions")
          (Proto.check_name e.Mutation.model_check)
          (Proto.check_name v.Proto.vcheck)
      | o ->
        Alcotest.failf "%s: expected a violation, got %s" e.Mutation.name
          (Explore.outcome_name o))
    Mutation.catalog

let test_liveness_demos () =
  (match
     Explore.run
       (cfg "diamond" ~objects:4 ~cores:2 ~mutation:Proto.Lost_core)
   with
  | Explore.Deadlock (sched, _) ->
    Alcotest.(check bool) "deadlock schedule non-empty" true (sched <> [])
  | o -> Alcotest.failf "lost core: expected deadlock, got %s"
           (Explore.outcome_name o));
  match
    Explore.run
      (cfg "diamond" ~objects:4 ~cores:2 ~mutation:Proto.Stuck_child)
  with
  | Explore.Livelock (sched, _) ->
    Alcotest.(check bool) "livelock schedule non-empty" true (sched <> [])
  | o ->
    Alcotest.failf "stuck child: expected livelock, got %s"
      (Explore.outcome_name o)

(* The false-positive direction: a fair schedule of the correct protocol
   replayed through the sync block + sanitizer stays silent. *)
let test_baseline_replay_silent () =
  List.iter
    (fun (gn, objects, cores) ->
      let c = cfg gn ~objects ~cores in
      let sched = Explore.fair_schedule c in
      Alcotest.(check bool) (gn ^ ": fair schedule reaches work") true
        (List.length sched > 5);
      let res = Replay.run c sched in
      if res.Replay.flagged then
        Alcotest.failf "%s: correct replay flagged %s" gn
          (String.concat "," res.Replay.checks))
    [ ("diamond", 4, 3); ("twin", 4, 2); ("chain", 5, 3) ]

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_key_symmetric;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_canon_idempotent;
    Alcotest.test_case "correct protocol verified under all reductions" `Quick
      test_verified_all_reductions;
    Alcotest.test_case "correct protocol verified at 3 cores" `Quick
      test_verified_three_cores;
    Alcotest.test_case "state bound exhaustion is inconclusive, not verified"
      `Quick test_out_of_bounds_inconclusive;
    Alcotest.test_case "all 10 mutants: violation + corroborating replay"
      `Quick test_mutants_flagged;
    Alcotest.test_case "reductions do not mask any mutant" `Quick
      test_mutants_flagged_without_reductions;
    Alcotest.test_case "liveness demos: deadlock and livelock" `Quick
      test_liveness_demos;
    Alcotest.test_case "fair replay of the correct protocol is silent" `Quick
      test_baseline_replay_silent;
  ]
