(* Tests for the software-scheme baseline simulations. *)

module Engine = Hsgc_baselines.Engine
module Cost_model = Hsgc_baselines.Cost_model
module Plan = Hsgc_objgraph.Plan
module Graph_gen = Hsgc_objgraph.Graph_gen
module Workloads = Hsgc_objgraph.Workloads
module Rng = Hsgc_util.Rng

let chain_plan n =
  let p = Plan.create () in
  let head, _ = Graph_gen.chain p ~n ~pi:1 ~delta:2 in
  Plan.add_root p head;
  p

let wide_plan () =
  let p = Plan.create () in
  let rng = Rng.create 3 in
  let hub = Graph_gen.layered p rng ~widths:[| 16; 256; 2048 |] ~delta:4 in
  Plan.add_root p hub;
  p

let test_all_objects_processed () =
  let plan = wide_plan () in
  let live = 1 + 16 + 256 + 2048 in
  List.iter
    (fun scheme ->
      List.iter
        (fun workers ->
          let r = Engine.simulate ~plan ~workers scheme in
          Alcotest.(check int)
            (Printf.sprintf "%s/%d objects" (Engine.scheme_name scheme) workers)
            live r.Engine.objects)
        [ 1; 3; 8 ])
    Engine.all_schemes

let test_garbage_not_processed () =
  let p = chain_plan 50 in
  Graph_gen.garbage p (Rng.create 9) ~n:30 ~max_pi:2 ~max_delta:3;
  let r = Engine.simulate ~plan:p ~workers:4 Engine.Work_stealing in
  Alcotest.(check int) "only live objects" 50 r.Engine.objects

let test_deterministic () =
  let plan = wide_plan () in
  let run () =
    (Engine.simulate ~plan ~workers:8 (Engine.Chunked 16)).Engine.total_cycles
  in
  Alcotest.(check int) "deterministic" (run ()) (run ())

let test_single_worker_equals_busy () =
  (* With one worker there is no idling; total = busy + sync. *)
  let plan = chain_plan 100 in
  let r = Engine.simulate ~plan ~workers:1 Engine.Fine_grained_software in
  Alcotest.(check int) "total = busy + sync + idle"
    r.Engine.total_cycles
    (r.Engine.busy_cycles + r.Engine.sync_cycles + r.Engine.idle_cycles)

let test_busy_independent_of_workers () =
  let plan = wide_plan () in
  let busy w =
    (Engine.simulate ~plan ~workers:w Engine.Hardware_fine_grained).Engine.busy_cycles
  in
  Alcotest.(check int) "busy work conserved" (busy 1) (busy 8)

let test_fine_grained_software_is_prohibitive () =
  let plan = wide_plan () in
  let r1 = Engine.simulate ~plan ~workers:1 Engine.Fine_grained_software in
  let r16 = Engine.simulate ~plan ~workers:16 Engine.Fine_grained_software in
  Alcotest.(check bool) "sync dominates" true
    (r1.Engine.sync_cycles > r1.Engine.busy_cycles);
  Alcotest.(check bool) "no meaningful speedup at 16 workers" true
    (Engine.speedup r1 r16 < 2.0)

let test_hardware_scales () =
  let plan = wide_plan () in
  let r1 = Engine.simulate ~plan ~workers:1 Engine.Hardware_fine_grained in
  let r8 = Engine.simulate ~plan ~workers:8 Engine.Hardware_fine_grained in
  Alcotest.(check bool) "hardware scheme scales" true (Engine.speedup r1 r8 > 5.0)

let test_hardware_beats_software () =
  let plan = wide_plan () in
  let at scheme =
    (Engine.simulate ~plan ~workers:8 scheme).Engine.total_cycles
  in
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        (Printf.sprintf "hw faster than %s" (Engine.scheme_name scheme))
        true
        (at Engine.Hardware_fine_grained <= at scheme))
    [
      Engine.Fine_grained_software;
      Engine.Chunked 32;
      Engine.Work_packets 16;
      Engine.Work_stealing;
    ]

let test_chain_defeats_everyone () =
  let plan = chain_plan 400 in
  List.iter
    (fun scheme ->
      let r1 = Engine.simulate ~plan ~workers:1 scheme in
      let r16 = Engine.simulate ~plan ~workers:16 scheme in
      Alcotest.(check bool)
        (Printf.sprintf "%s gains nothing on a chain" (Engine.scheme_name scheme))
        true
        (Engine.speedup r1 r16 < 1.5))
    Engine.all_schemes

let test_task_pushing_scales () =
  let plan = wide_plan () in
  let r1 = Engine.simulate ~plan ~workers:1 Engine.Task_pushing in
  let r8 = Engine.simulate ~plan ~workers:8 Engine.Task_pushing in
  Alcotest.(check bool) "pushing scales" true (Engine.speedup r1 r8 > 4.0);
  (* and beats the chunked shared pool, as Wu & Li designed it to *)
  let chunked = Engine.simulate ~plan ~workers:8 (Engine.Chunked 32) in
  Alcotest.(check bool) "pushing beats chunked" true
    (r8.Engine.total_cycles < chunked.Engine.total_cycles)

let test_stealing_beats_shared_pool_software () =
  let plan = wide_plan () in
  let steal = Engine.simulate ~plan ~workers:16 Engine.Work_stealing in
  let pool = Engine.simulate ~plan ~workers:16 Engine.Fine_grained_software in
  Alcotest.(check bool) "stealing beats the shared pool" true
    (steal.Engine.total_cycles < pool.Engine.total_cycles);
  Alcotest.(check bool) "steals happened" true (steal.Engine.steals > 0)

let test_cost_scaling_matters () =
  let plan = wide_plan () in
  let cheap = Cost_model.scaled Cost_model.default 0.1 in
  let r_exp = Engine.simulate ~plan ~workers:8 Engine.Fine_grained_software in
  let r_cheap =
    Engine.simulate ~costs:cheap ~plan ~workers:8 Engine.Fine_grained_software
  in
  Alcotest.(check bool) "cheaper sync shortens collections" true
    (r_cheap.Engine.total_cycles < r_exp.Engine.total_cycles)

let test_free_hardware_costs () =
  Alcotest.(check int) "cas free" 0 Cost_model.free_hardware.Cost_model.cas;
  Alcotest.(check int) "scaled default" 15
    (Cost_model.scaled Cost_model.default 0.5).Cost_model.cas

let test_workload_plans_run () =
  List.iter
    (fun w ->
      let plan = w.Workloads.build ~scale:0.02 ~seed:3 in
      let r = Engine.simulate ~plan ~workers:4 Engine.Work_stealing in
      Alcotest.(check bool)
        (w.Workloads.name ^ " processed")
        true
        (r.Engine.objects > 0))
    Workloads.all

let test_invalid_workers () =
  let plan = chain_plan 3 in
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Engine.simulate: workers") (fun () ->
      ignore (Engine.simulate ~plan ~workers:0 Engine.Work_stealing))

(* Random graphs: every scheme must process exactly the live objects. *)
let gen_random_plan =
  QCheck.Gen.(
    let* n = int_range 1 80 in
    let* seed = small_nat in
    return (n, seed))

let build_random_plan (n, seed) =
  let rng = Rng.create (seed + 17) in
  let p = Plan.create () in
  let ids =
    Array.init n (fun _ -> Plan.obj p ~pi:(Rng.int rng 4) ~delta:(Rng.int rng 4))
  in
  Array.iter
    (fun id ->
      for slot = 0 to Plan.pi_of p id - 1 do
        if Rng.int rng 100 < 60 then
          Plan.link p ~parent:id ~slot ~child:ids.(Rng.int rng n)
      done)
    ids;
  Plan.add_root p ids.(0);
  if n > 1 then Plan.add_root p ids.(n / 2);
  p

(* Count reachable objects independently of the engine. *)
let live_count p =
  let n = Plan.n_objects p in
  let seen = Array.make n false in
  let rec visit id =
    if id >= 0 && not seen.(id) then begin
      seen.(id) <- true;
      for s = 0 to Plan.pi_of p id - 1 do
        visit (Plan.child_of p id s)
      done
    end
  in
  Array.iter visit (Plan.roots p);
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let qcheck_all_schemes_process_live =
  QCheck.Test.make ~name:"every scheme processes exactly the live objects"
    ~count:80
    (QCheck.make
       ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
       gen_random_plan)
    (fun param ->
      let plan = build_random_plan param in
      let live = live_count plan in
      List.for_all
        (fun scheme ->
          List.for_all
            (fun workers ->
              let r = Engine.simulate ~plan ~workers scheme in
              r.Engine.objects = live
              && r.Engine.total_cycles
                 >= r.Engine.busy_cycles / max 1 workers)
            [ 1; 3; 7 ])
        Engine.all_schemes)

let suite =
  [
    Alcotest.test_case "all objects processed" `Quick test_all_objects_processed;
    Alcotest.test_case "garbage not processed" `Quick test_garbage_not_processed;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "time accounting" `Quick test_single_worker_equals_busy;
    Alcotest.test_case "busy conserved" `Quick test_busy_independent_of_workers;
    Alcotest.test_case "sw fine-grained prohibitive" `Quick
      test_fine_grained_software_is_prohibitive;
    Alcotest.test_case "hardware scales" `Quick test_hardware_scales;
    Alcotest.test_case "hardware beats software" `Quick test_hardware_beats_software;
    Alcotest.test_case "chain defeats everyone" `Quick test_chain_defeats_everyone;
    Alcotest.test_case "task pushing scales" `Quick test_task_pushing_scales;
    Alcotest.test_case "stealing beats shared pool" `Quick
      test_stealing_beats_shared_pool_software;
    Alcotest.test_case "cost scaling" `Quick test_cost_scaling_matters;
    Alcotest.test_case "cost model values" `Quick test_free_hardware_costs;
    Alcotest.test_case "workload plans run" `Quick test_workload_plans_run;
    Alcotest.test_case "invalid workers" `Quick test_invalid_workers;
    QCheck_alcotest.to_alcotest qcheck_all_schemes_process_live;
  ]
