(* Tests for the shared simulation kernel (Hsgc_sim): clock accounting,
   the event wheel, the domain pool, and — the load-bearing property —
   that idle-cycle skipping and domain-parallel sweeps leave every
   simulation statistic bit-identical to naive stepping. *)

module Kernel = Hsgc_sim.Kernel
module Wheel = Hsgc_sim.Wheel
module Domain_pool = Hsgc_sim.Domain_pool
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Concurrent = Hsgc_coproc.Concurrent
module Memsys = Hsgc_memsim.Memsys
module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify
module Experiment = Hsgc_core.Experiment
module Report = Hsgc_core.Report

(* ------------------------------------------------------------------ *)
(* Kernel clock                                                        *)
(* ------------------------------------------------------------------ *)

let test_clock_accounting () =
  let k = Kernel.create () in
  Alcotest.(check int) "starts at 0" 0 (Kernel.now k);
  Kernel.tick k;
  Kernel.tick k;
  Alcotest.(check int) "two ticks" 2 (Kernel.now k);
  let span = Kernel.fast_forward k ~target:10 in
  Alcotest.(check int) "skipped span" 8 span;
  Alcotest.(check int) "now at target" 10 (Kernel.now k);
  Alcotest.(check int) "executed" 2 (Kernel.executed_cycles k);
  Alcotest.(check int) "skipped" 8 (Kernel.skipped_cycles k);
  Alcotest.(check int) "now = executed + skipped" (Kernel.now k)
    (Kernel.executed_cycles k + Kernel.skipped_cycles k);
  Alcotest.(check int) "backward target is a no-op" 0
    (Kernel.fast_forward k ~target:5);
  Alcotest.(check int) "now unchanged" 10 (Kernel.now k)

let test_clock_helpers () =
  Alcotest.(check (option int)) "min_wake both" (Some 3)
    (Kernel.min_wake (Some 7) (Some 3));
  Alcotest.(check (option int)) "min_wake left" (Some 7)
    (Kernel.min_wake (Some 7) None);
  Alcotest.(check (option int)) "min_wake none" None (Kernel.min_wake None None);
  Alcotest.(check int) "bound none" 9 (Kernel.bound ~horizon:None 9);
  Alcotest.(check int) "bound caps" 4 (Kernel.bound ~horizon:(Some 4) 9);
  Alcotest.(check int) "bound above" 9 (Kernel.bound ~horizon:(Some 12) 9)

(* ------------------------------------------------------------------ *)
(* Event wheel                                                         *)
(* ------------------------------------------------------------------ *)

let test_wheel_ordering () =
  let w = Wheel.create () in
  Alcotest.(check bool) "fresh wheel empty" true (Wheel.is_empty w);
  List.iter
    (fun (t, v) -> Wheel.push w ~time:t v)
    [ (5, "e"); (1, "a"); (9, "x"); (3, "c"); (1, "b") ];
  Alcotest.(check int) "size" 5 (Wheel.size w);
  Alcotest.(check (option int)) "min_time" (Some 1) (Wheel.min_time w);
  let times = ref [] in
  while not (Wheel.is_empty w) do
    let t, _ = Wheel.pop_exn w in
    times := t :: !times
  done;
  Alcotest.(check (list int)) "times nondecreasing" [ 1; 1; 3; 5; 9 ]
    (List.rev !times)

let qcheck_wheel_sorts =
  QCheck.Test.make ~name:"wheel pops in nondecreasing time order" ~count:100
    QCheck.(small_list small_nat)
    (fun times ->
      let w = Wheel.create () in
      List.iteri (fun i t -> Wheel.push w ~time:t i) times;
      let rec drain prev =
        if Wheel.is_empty w then true
        else
          let t, _ = Wheel.pop_exn w in
          t >= prev && drain t
      in
      Wheel.size w = List.length times && drain min_int)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_map () =
  let xs = List.init 23 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals List.map" jobs)
        (List.map f xs)
        (Domain_pool.map_list ~jobs f xs))
    [ 1; 2; 4; 8; 40 ]

exception Boom of int

let test_pool_exception () =
  (* The earliest-index failure is the one re-raised, regardless of
     completion order. *)
  let xs = List.init 12 (fun i -> i) in
  let f x = if x mod 3 = 2 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Domain_pool.map_list ~jobs f xs with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d reports earliest failure" jobs)
          2 i)
    [ 1; 3 ]

(* ------------------------------------------------------------------ *)
(* Idle-cycle skipping: exact equivalence with naive stepping          *)
(* ------------------------------------------------------------------ *)

(* Everything in gc_stats except the kernel-observability fields
   (executed/skipped split and wall time) must be bit-identical. *)
let check_stats_equal ctx (a : Coprocessor.gc_stats)
    (b : Coprocessor.gc_stats) =
  let chk name x y =
    if x <> y then
      Alcotest.failf "%s: %s differs (naive %d, skip %d)" ctx name x y
  in
  chk "total_cycles" a.Coprocessor.total_cycles b.Coprocessor.total_cycles;
  chk "root_cycles" a.Coprocessor.root_cycles b.Coprocessor.root_cycles;
  chk "empty_worklist_cycles" a.Coprocessor.empty_worklist_cycles
    b.Coprocessor.empty_worklist_cycles;
  chk "live_objects" a.Coprocessor.live_objects b.Coprocessor.live_objects;
  chk "live_words" a.Coprocessor.live_words b.Coprocessor.live_words;
  chk "fifo_hits" a.Coprocessor.fifo_hits b.Coprocessor.fifo_hits;
  chk "fifo_misses" a.Coprocessor.fifo_misses b.Coprocessor.fifo_misses;
  chk "fifo_overflows" a.Coprocessor.fifo_overflows
    b.Coprocessor.fifo_overflows;
  chk "mem_loads" a.Coprocessor.mem_loads b.Coprocessor.mem_loads;
  chk "mem_stores" a.Coprocessor.mem_stores b.Coprocessor.mem_stores;
  chk "mem_rejected_bandwidth" a.Coprocessor.mem_rejected_bandwidth
    b.Coprocessor.mem_rejected_bandwidth;
  chk "mem_rejected_order" a.Coprocessor.mem_rejected_order
    b.Coprocessor.mem_rejected_order;
  chk "header_cache_hits" a.Coprocessor.header_cache_hits
    b.Coprocessor.header_cache_hits;
  chk "header_cache_misses" a.Coprocessor.header_cache_misses
    b.Coprocessor.header_cache_misses;
  chk "faults_injected" a.Coprocessor.faults_injected
    b.Coprocessor.faults_injected;
  chk "corruptions_injected" a.Coprocessor.corruptions_injected
    b.Coprocessor.corruptions_injected;
  Array.iteri
    (fun i ca ->
      let cb = b.Coprocessor.per_core.(i) in
      List.iter
        (fun s ->
          if Counters.get ca s <> Counters.get cb s then
            Alcotest.failf "%s: core %d %s stalls differ (naive %d, skip %d)"
              ctx i (Counters.stall_name s) (Counters.get ca s)
              (Counters.get cb s))
        Counters.all_stalls;
      if ca.Counters.busy_cycles <> cb.Counters.busy_cycles then
        Alcotest.failf "%s: core %d busy_cycles differ" ctx i;
      if ca.Counters.objects_scanned <> cb.Counters.objects_scanned then
        Alcotest.failf "%s: core %d objects_scanned differ" ctx i;
      if ca.Counters.objects_evacuated <> cb.Counters.objects_evacuated then
        Alcotest.failf "%s: core %d objects_evacuated differ" ctx i;
      if ca.Counters.words_copied <> cb.Counters.words_copied then
        Alcotest.failf "%s: core %d words_copied differ" ctx i)
    a.Coprocessor.per_core;
  (* The split itself must account for every cycle. *)
  if
    b.Coprocessor.executed_cycles + b.Coprocessor.skipped_cycles
    <> b.Coprocessor.total_cycles
  then Alcotest.failf "%s: executed + skipped <> total" ctx

let collect_both ~mem ?scan_unit ~n_cores plan =
  let run skip =
    let heap = Plan.materialize plan in
    let stats =
      Coprocessor.collect
        (Coprocessor.config ~mem ?scan_unit ~skip ~n_cores ())
        heap
    in
    (stats, Verify.snapshot heap)
  in
  let naive, snap_naive = run false in
  let skip, snap_skip = run true in
  (naive, skip, snap_naive, snap_skip)

let qcheck_skip_equivalent =
  QCheck.Test.make
    ~name:"idle-cycle skipping is cycle-exact on random graphs and configs"
    ~count:60
    (QCheck.make
       ~print:(fun ((n, s), (nc, su, ca, el, bw, ff)) ->
         Printf.sprintf
           "graph(n=%d seed=%d) cores=%d unit=%s cache=%d lat+%d bw=%d fifo=%d"
           n s nc
           (match su with None -> "-" | Some u -> string_of_int u)
           ca el bw ff)
       QCheck.Gen.(
         let gen_plan =
           let* n = int_range 1 60 in
           let* seed = small_nat in
           return (n, seed)
         in
         let gen_config =
           let* n_cores = int_range 1 16 in
           let* scan_unit = oneofl [ None; Some 1; Some 4; Some 32 ] in
           let* cache = oneofl [ 0; 8; 1024 ] in
           let* extra_latency = oneofl [ 0; 3; 20 ] in
           let* bandwidth = oneofl [ 1; 4; 8 ] in
           let* fifo = oneofl [ 2; 64; 32768 ] in
           return (n_cores, scan_unit, cache, extra_latency, bandwidth, fifo)
         in
         pair gen_plan gen_config))
    (fun ((n, seed), (n_cores, scan_unit, cache, extra_latency, bandwidth, fifo))
    ->
      let rng = Hsgc_util.Rng.create (seed + 1) in
      let plan = Plan.create () in
      let ids =
        Array.init n (fun _ ->
            Plan.obj plan
              ~pi:(Hsgc_util.Rng.int rng 4)
              ~delta:(Hsgc_util.Rng.int rng 5))
      in
      Array.iter
        (fun id ->
          for slot = 0 to Plan.pi_of plan id - 1 do
            if Hsgc_util.Rng.int rng 100 < 70 then
              Plan.link plan ~parent:id ~slot
                ~child:ids.(Hsgc_util.Rng.int rng n)
          done)
        ids;
      for _ = 1 to 1 + Hsgc_util.Rng.int rng 3 do
        Plan.add_root plan ids.(Hsgc_util.Rng.int rng n)
      done;
      let mem =
        Memsys.with_extra_latency
          {
            Memsys.default_config with
            Memsys.bandwidth;
            fifo_capacity = fifo;
            header_cache_entries = cache;
          }
          extra_latency
      in
      let naive, skip, snap_naive, snap_skip =
        collect_both ~mem ?scan_unit ~n_cores plan
      in
      check_stats_equal "random config" naive skip;
      Verify.equal_snapshot snap_naive snap_skip)

let test_skip_equivalent_on_workloads () =
  List.iter
    (fun w ->
      List.iter
        (fun n_cores ->
          let run skip =
            let heap = Workloads.build_heap ~scale:0.03 ~seed:7 w in
            Coprocessor.collect (Coprocessor.config ~skip ~n_cores ()) heap
          in
          check_stats_equal
            (Printf.sprintf "%s at %d cores" w.Workloads.name n_cores)
            (run false) (run true))
        [ 1; 4; 16 ])
    Workloads.all

let test_skip_equivalent_latency_bound () =
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  List.iter
    (fun n_cores ->
      let run skip =
        let heap = Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.db in
        Coprocessor.collect (Coprocessor.config ~mem ~skip ~n_cores ()) heap
      in
      check_stats_equal
        (Printf.sprintf "latency-bound db at %d cores" n_cores)
        (run false) (run true))
    [ 1; 8 ]

let test_skipping_actually_skips () =
  (* With +20-cycle latency and a single core, most cycles are spent
     waiting on one in-flight transfer: the kernel must fast-forward a
     large share of them. *)
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  let heap = Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.db in
  let stats =
    Coprocessor.collect (Coprocessor.config ~mem ~n_cores:1 ()) heap
  in
  Alcotest.(check bool) "skipped a majority of cycles" true
    (stats.Coprocessor.skipped_cycles * 2 > stats.Coprocessor.total_cycles);
  let heap = Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.db in
  let off =
    Coprocessor.collect (Coprocessor.config ~mem ~skip:false ~n_cores:1 ()) heap
  in
  Alcotest.(check int) "skip off skips nothing" 0 off.Coprocessor.skipped_cycles;
  Alcotest.(check int) "skip off executes everything"
    off.Coprocessor.total_cycles off.Coprocessor.executed_cycles

let test_concurrent_skip_equivalent () =
  (* The concurrent engine caps every skip at the next mutator operation,
     so mutator interleavings — and with them every statistic — must be
     identical with skipping on and off. *)
  let run skip =
    let heap = Workloads.build_heap ~scale:0.05 ~seed:11 Workloads.jlisp in
    let cfg = Concurrent.default_config ~n_cores:4 () in
    let cfg =
      { cfg with Concurrent.gc = { cfg.Concurrent.gc with Coprocessor.skip } }
    in
    let stats = Concurrent.collect cfg heap in
    ( stats.Concurrent.gc.Coprocessor.total_cycles,
      stats.Concurrent.pause_cycles,
      stats.Concurrent.barrier_evacuations,
      stats.Concurrent.mutator_reads,
      stats.Concurrent.mutator_allocs,
      stats.Concurrent.mutator_wait_cycles )
  in
  let t_off, p_off, e_off, r_off, a_off, w_off = run false in
  let t_on, p_on, e_on, r_on, a_on, w_on = run true in
  Alcotest.(check int) "total cycles" t_off t_on;
  Alcotest.(check int) "pause cycles" p_off p_on;
  Alcotest.(check int) "barrier evacuations" e_off e_on;
  Alcotest.(check int) "mutator reads" r_off r_on;
  Alcotest.(check int) "mutator allocs" a_off a_on;
  Alcotest.(check int) "mutator waits" w_off w_on

(* ------------------------------------------------------------------ *)
(* Domain-parallel sweeps: determinism across jobs levels              *)
(* ------------------------------------------------------------------ *)

let check_measurements_equal ctx (a : Experiment.measurement)
    (b : Experiment.measurement) =
  (* Every field except wall_s (host time, noisy by nature). *)
  let chkf name x y =
    if x <> y then Alcotest.failf "%s: %s differs" ctx name
  in
  if a.Experiment.workload <> b.Experiment.workload then
    Alcotest.failf "%s: workload differs" ctx;
  chkf "n_cores" (float_of_int a.Experiment.n_cores)
    (float_of_int b.Experiment.n_cores);
  chkf "cycles" a.Experiment.cycles b.Experiment.cycles;
  chkf "empty_frac" a.Experiment.empty_frac b.Experiment.empty_frac;
  chkf "root_cycles" a.Experiment.root_cycles b.Experiment.root_cycles;
  chkf "live_objects" a.Experiment.live_objects b.Experiment.live_objects;
  chkf "live_words" a.Experiment.live_words b.Experiment.live_words;
  chkf "fifo_overflows" a.Experiment.fifo_overflows
    b.Experiment.fifo_overflows;
  chkf "fifo_hits" a.Experiment.fifo_hits b.Experiment.fifo_hits;
  chkf "mem_rejected_bandwidth" a.Experiment.mem_rejected_bandwidth
    b.Experiment.mem_rejected_bandwidth;
  chkf "skipped_cycles" a.Experiment.skipped_cycles
    b.Experiment.skipped_cycles;
  List.iter
    (fun s ->
      chkf
        (Counters.stall_name s)
        (float_of_int (Counters.get a.Experiment.stalls_mean_core s))
        (float_of_int (Counters.get b.Experiment.stalls_mean_core s)))
    Counters.all_stalls

let test_sweep_jobs_deterministic () =
  let sweep jobs =
    Experiment.sweep ~scale:0.03 ~seeds:[| 42; 1042 |] ~jobs Workloads.javacc
  in
  let seq = sweep 1 and par = sweep 4 in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      check_measurements_equal
        (Printf.sprintf "javacc at %d cores" a.Experiment.n_cores)
        a b)
    seq par

let test_run_sweeps_jobs_byte_identical () =
  let render jobs =
    let d = Report.run_sweeps ~scale:0.02 ~seeds:[| 42 |] ~jobs () in
    Report.figure5 d ^ Report.table1 d ^ Report.table2 d
  in
  let seq = render 1 in
  Alcotest.(check string) "jobs=3 renders byte-identical artifacts" seq
    (render 3)

let suite =
  [
    Alcotest.test_case "clock accounting" `Quick test_clock_accounting;
    Alcotest.test_case "clock helpers" `Quick test_clock_helpers;
    Alcotest.test_case "wheel ordering" `Quick test_wheel_ordering;
    QCheck_alcotest.to_alcotest qcheck_wheel_sorts;
    Alcotest.test_case "pool matches List.map" `Quick test_pool_matches_map;
    Alcotest.test_case "pool exception determinism" `Quick test_pool_exception;
    QCheck_alcotest.to_alcotest qcheck_skip_equivalent;
    Alcotest.test_case "skip equivalent on workloads" `Slow
      test_skip_equivalent_on_workloads;
    Alcotest.test_case "skip equivalent latency-bound" `Quick
      test_skip_equivalent_latency_bound;
    Alcotest.test_case "skipping actually skips" `Quick
      test_skipping_actually_skips;
    Alcotest.test_case "concurrent skip equivalent" `Quick
      test_concurrent_skip_equivalent;
    Alcotest.test_case "sweep jobs deterministic" `Quick
      test_sweep_jobs_deterministic;
    Alcotest.test_case "run_sweeps jobs byte-identical" `Slow
      test_run_sweeps_jobs_byte_identical;
  ]
