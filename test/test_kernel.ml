(* Tests for the shared simulation kernel (Hsgc_sim): clock accounting,
   the event wheel, the domain pool, and — the load-bearing property —
   that idle-cycle skipping and domain-parallel sweeps leave every
   simulation statistic bit-identical to naive stepping. *)

module Kernel = Hsgc_sim.Kernel
module Wheel = Hsgc_sim.Wheel
module Wake_queue = Hsgc_sim.Wake_queue
module Domain_pool = Hsgc_sim.Domain_pool
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Concurrent = Hsgc_coproc.Concurrent
module Memsys = Hsgc_memsim.Memsys
module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify
module Experiment = Hsgc_core.Experiment
module Report = Hsgc_core.Report

(* ------------------------------------------------------------------ *)
(* Kernel clock                                                        *)
(* ------------------------------------------------------------------ *)

let test_clock_accounting () =
  let k = Kernel.create () in
  Alcotest.(check int) "starts at 0" 0 (Kernel.now k);
  Kernel.tick k;
  Kernel.tick k;
  Alcotest.(check int) "two ticks" 2 (Kernel.now k);
  let span = Kernel.fast_forward k ~target:10 in
  Alcotest.(check int) "skipped span" 8 span;
  Alcotest.(check int) "now at target" 10 (Kernel.now k);
  Alcotest.(check int) "executed" 2 (Kernel.executed_cycles k);
  Alcotest.(check int) "skipped" 8 (Kernel.skipped_cycles k);
  Alcotest.(check int) "now = executed + skipped" (Kernel.now k)
    (Kernel.executed_cycles k + Kernel.skipped_cycles k);
  Alcotest.(check int) "backward target is a no-op" 0
    (Kernel.fast_forward k ~target:5);
  Alcotest.(check int) "now unchanged" 10 (Kernel.now k)

let test_clock_helpers () =
  Alcotest.(check (option int)) "min_wake both" (Some 3)
    (Wake_queue.min_wake (Some 7) (Some 3));
  Alcotest.(check (option int)) "min_wake left" (Some 7)
    (Wake_queue.min_wake (Some 7) None);
  Alcotest.(check (option int)) "min_wake none" None
    (Wake_queue.min_wake None None);
  Alcotest.(check int) "bound none" 9 (Wake_queue.bound ~horizon:None 9);
  Alcotest.(check int) "bound caps" 4 (Wake_queue.bound ~horizon:(Some 4) 9);
  Alcotest.(check int) "bound above" 9 (Wake_queue.bound ~horizon:(Some 12) 9)

(* ------------------------------------------------------------------ *)
(* Event wheel                                                         *)
(* ------------------------------------------------------------------ *)

let test_wheel_ordering () =
  let w = Wheel.create () in
  Alcotest.(check bool) "fresh wheel empty" true (Wheel.is_empty w);
  List.iter
    (fun (t, v) -> Wheel.push w ~time:t v)
    [ (5, "e"); (1, "a"); (9, "x"); (3, "c"); (1, "b") ];
  Alcotest.(check int) "size" 5 (Wheel.size w);
  Alcotest.(check (option int)) "min_time" (Some 1) (Wheel.min_time w);
  let times = ref [] in
  while not (Wheel.is_empty w) do
    let t, _ = Wheel.pop_exn w in
    times := t :: !times
  done;
  Alcotest.(check (list int)) "times nondecreasing" [ 1; 1; 3; 5; 9 ]
    (List.rev !times)

let qcheck_wheel_sorts =
  QCheck.Test.make ~name:"wheel pops in nondecreasing time order" ~count:100
    QCheck.(small_list small_nat)
    (fun times ->
      let w = Wheel.create () in
      List.iteri (fun i t -> Wheel.push w ~time:t i) times;
      let rec drain prev =
        if Wheel.is_empty w then true
        else
          let t, _ = Wheel.pop_exn w in
          t >= prev && drain t
      in
      Wheel.size w = List.length times && drain min_int)

let qcheck_wheel_interleaved =
  QCheck.Test.make
    ~name:"wheel matches a sorted model under random push/pop interleavings"
    ~count:200
    QCheck.(small_list (pair bool small_nat))
    (fun ops ->
      (* [true] = pop (when non-empty), [false] = push. The model is a
         sorted multiset of times; every pop must yield its head. *)
      let w = Wheel.create () in
      let model = ref [] in
      let ok = ref true in
      List.iteri
        (fun i (is_pop, time) ->
          if is_pop then begin
            if not (Wheel.is_empty w) then begin
              let t, _ = Wheel.pop_exn w in
              match !model with
              | [] -> ok := false
              | m :: rest ->
                if t <> m then ok := false;
                model := rest
            end
          end
          else begin
            Wheel.push w ~time i;
            model := List.sort compare (time :: !model)
          end)
        ops;
      !ok && Wheel.size w = List.length !model)

let test_wheel_growth () =
  (* The backing arrays start at capacity 64; pushing 1000 entries in
     reverse time order exercises the growth path and worst-case
     sift-ups, and the drain must still be perfectly sorted. *)
  let w = Wheel.create () in
  let n = 1000 in
  for i = n downto 1 do
    Wheel.push w ~time:i i
  done;
  Alcotest.(check int) "size after growth" n (Wheel.size w);
  for i = 1 to n do
    let t, v = Wheel.pop_exn w in
    if t <> i || v <> i then
      Alcotest.failf "pop %d returned (%d, %d)" i t v
  done;
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

(* ------------------------------------------------------------------ *)
(* Wake queue: both regimes, lazy invalidation                         *)
(* ------------------------------------------------------------------ *)

let test_wakeq_scan_regime () =
  let q = Wake_queue.create ~n:4 in
  Alcotest.(check int) "no heap below the threshold" 0
    (Wake_queue.heap_entries q);
  Alcotest.(check int) "fresh queue: nothing armed" max_int
    (Wake_queue.next_after q ~now:0);
  Wake_queue.arm q ~id:0 ~time:9;
  Wake_queue.arm q ~id:1 ~time:5;
  Wake_queue.arm q ~id:0 ~time:3;
  (* re-arm supersedes *)
  Alcotest.(check int) "still no heap" 0 (Wake_queue.heap_entries q);
  Alcotest.(check int) "min over armed wakes" 3
    (Wake_queue.next_after q ~now:0);
  Alcotest.(check int) "strictly-future filter" 5
    (Wake_queue.next_after q ~now:3);
  Alcotest.(check int) "wake_of sees the re-arm" 3 (Wake_queue.wake_of q ~id:0);
  Alcotest.(check int) "pending counts future wakes" 2
    (Wake_queue.pending q ~now:0);
  Wake_queue.disarm q ~id:1;
  Alcotest.(check int) "disarmed wakes are invisible" max_int
    (Wake_queue.next_after q ~now:3)

let test_wakeq_lazy_invalidation () =
  (* Heap regime: populations beyond [scan_threshold] keep a min-heap
     with lazy deletion — re-arms and disarms leave stale entries behind
     that [next_after] prunes when they surface. *)
  let n = Wake_queue.scan_threshold + 10 in
  let q = Wake_queue.create ~n in
  Wake_queue.arm q ~id:3 ~time:50;
  Wake_queue.arm q ~id:3 ~time:20;
  Wake_queue.arm q ~id:7 ~time:30;
  Alcotest.(check int) "superseded entry lingers in the heap" 3
    (Wake_queue.heap_entries q);
  Alcotest.(check int) "armed array wins over stale entries" 20
    (Wake_queue.next_after q ~now:0);
  Wake_queue.disarm q ~id:3;
  Alcotest.(check int) "disarm is lazy: next_after skips the ghost" 30
    (Wake_queue.next_after q ~now:0);
  Alcotest.(check bool) "pruning discarded the ghost" true
    (Wake_queue.heap_entries q <= 2);
  Alcotest.(check int) "past and stale wakes both invisible" max_int
    (Wake_queue.next_after q ~now:30);
  Alcotest.(check int) "fully pruned" 0 (Wake_queue.heap_entries q)

let qcheck_wakeq_matches_model =
  QCheck.Test.make
    ~name:"wake queue next_after matches a brute-force scan in both regimes"
    ~count:150
    QCheck.(
      pair (oneofl [ 8; 100 ])
        (small_list (pair (int_bound 7) (int_bound 40))))
    (fun (n, ops) ->
      (* ids 0..7 armed/disarmed arbitrarily; time 0 means disarm. With
         n=8 the queue scans, with n=100 it runs the lazy heap — both
         must agree with the obvious model at every step. *)
      let q = Wake_queue.create ~n in
      let model = Array.make n max_int in
      List.for_all
        (fun (id, time) ->
          if time = 0 then begin
            Wake_queue.disarm q ~id;
            model.(id) <- max_int
          end
          else begin
            Wake_queue.arm q ~id ~time;
            model.(id) <- time
          end;
          (* Query at now=0 only: the heap regime prunes entries at or
             before the queried [now] for good (legal because the
             kernel's clock is monotonic), so a model test must not
             rewind time. *)
          let expect =
            Array.fold_left
              (fun acc w -> if w < acc then w else acc)
              max_int model
          in
          Wake_queue.next_after q ~now:0 = expect)
        ops)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_map () =
  let xs = List.init 23 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals List.map" jobs)
        (List.map f xs)
        (Domain_pool.map_list ~jobs f xs))
    [ 1; 2; 4; 8; 40 ]

exception Boom of int

let test_pool_exception () =
  (* The earliest-index failure is the one re-raised, regardless of
     completion order. *)
  let xs = List.init 12 (fun i -> i) in
  let f x = if x mod 3 = 2 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Domain_pool.map_list ~jobs f xs with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d reports earliest failure" jobs)
          2 i)
    [ 1; 3 ]

(* ------------------------------------------------------------------ *)
(* Idle-cycle skipping: exact equivalence with naive stepping          *)
(* ------------------------------------------------------------------ *)

(* Everything in gc_stats except the kernel-observability fields
   (executed/skipped split and wall time) must be bit-identical. *)
let check_stats_equal ctx (a : Coprocessor.gc_stats)
    (b : Coprocessor.gc_stats) =
  let chk name x y =
    if x <> y then
      Alcotest.failf "%s: %s differs (naive %d, skip %d)" ctx name x y
  in
  chk "total_cycles" a.Coprocessor.total_cycles b.Coprocessor.total_cycles;
  chk "root_cycles" a.Coprocessor.root_cycles b.Coprocessor.root_cycles;
  chk "empty_worklist_cycles" a.Coprocessor.empty_worklist_cycles
    b.Coprocessor.empty_worklist_cycles;
  chk "live_objects" a.Coprocessor.live_objects b.Coprocessor.live_objects;
  chk "live_words" a.Coprocessor.live_words b.Coprocessor.live_words;
  chk "fifo_hits" a.Coprocessor.fifo_hits b.Coprocessor.fifo_hits;
  chk "fifo_misses" a.Coprocessor.fifo_misses b.Coprocessor.fifo_misses;
  chk "fifo_overflows" a.Coprocessor.fifo_overflows
    b.Coprocessor.fifo_overflows;
  chk "mem_loads" a.Coprocessor.mem_loads b.Coprocessor.mem_loads;
  chk "mem_stores" a.Coprocessor.mem_stores b.Coprocessor.mem_stores;
  chk "mem_rejected_bandwidth" a.Coprocessor.mem_rejected_bandwidth
    b.Coprocessor.mem_rejected_bandwidth;
  chk "mem_rejected_order" a.Coprocessor.mem_rejected_order
    b.Coprocessor.mem_rejected_order;
  chk "header_cache_hits" a.Coprocessor.header_cache_hits
    b.Coprocessor.header_cache_hits;
  chk "header_cache_misses" a.Coprocessor.header_cache_misses
    b.Coprocessor.header_cache_misses;
  chk "faults_injected" a.Coprocessor.faults_injected
    b.Coprocessor.faults_injected;
  chk "corruptions_injected" a.Coprocessor.corruptions_injected
    b.Coprocessor.corruptions_injected;
  Array.iteri
    (fun i ca ->
      let cb = b.Coprocessor.per_core.(i) in
      List.iter
        (fun s ->
          if Counters.get ca s <> Counters.get cb s then
            Alcotest.failf "%s: core %d %s stalls differ (naive %d, skip %d)"
              ctx i (Counters.stall_name s) (Counters.get ca s)
              (Counters.get cb s))
        Counters.all_stalls;
      if ca.Counters.busy_cycles <> cb.Counters.busy_cycles then
        Alcotest.failf "%s: core %d busy_cycles differ" ctx i;
      if ca.Counters.objects_scanned <> cb.Counters.objects_scanned then
        Alcotest.failf "%s: core %d objects_scanned differ" ctx i;
      if ca.Counters.objects_evacuated <> cb.Counters.objects_evacuated then
        Alcotest.failf "%s: core %d objects_evacuated differ" ctx i;
      if ca.Counters.words_copied <> cb.Counters.words_copied then
        Alcotest.failf "%s: core %d words_copied differ" ctx i)
    a.Coprocessor.per_core;
  (* The split itself must account for every cycle. *)
  if
    b.Coprocessor.executed_cycles + b.Coprocessor.skipped_cycles
    <> b.Coprocessor.total_cycles
  then Alcotest.failf "%s: executed + skipped <> total" ctx

let collect_both ~mem ?scan_unit ~n_cores plan =
  let run skip =
    let heap = Plan.materialize plan in
    let stats =
      Coprocessor.collect
        (Coprocessor.config ~mem ?scan_unit ~skip ~n_cores ())
        heap
    in
    (stats, Verify.snapshot heap)
  in
  let naive, snap_naive = run false in
  let skip, snap_skip = run true in
  (naive, skip, snap_naive, snap_skip)

let qcheck_skip_equivalent =
  QCheck.Test.make
    ~name:"idle-cycle skipping is cycle-exact on random graphs and configs"
    ~count:60
    (QCheck.make
       ~print:(fun ((n, s), (nc, su, ca, el, bw, ff)) ->
         Printf.sprintf
           "graph(n=%d seed=%d) cores=%d unit=%s cache=%d lat+%d bw=%d fifo=%d"
           n s nc
           (match su with None -> "-" | Some u -> string_of_int u)
           ca el bw ff)
       QCheck.Gen.(
         let gen_plan =
           let* n = int_range 1 60 in
           let* seed = small_nat in
           return (n, seed)
         in
         let gen_config =
           let* n_cores = int_range 1 16 in
           let* scan_unit = oneofl [ None; Some 1; Some 4; Some 32 ] in
           let* cache = oneofl [ 0; 8; 1024 ] in
           let* extra_latency = oneofl [ 0; 3; 20 ] in
           let* bandwidth = oneofl [ 1; 4; 8 ] in
           let* fifo = oneofl [ 2; 64; 32768 ] in
           return (n_cores, scan_unit, cache, extra_latency, bandwidth, fifo)
         in
         pair gen_plan gen_config))
    (fun ((n, seed), (n_cores, scan_unit, cache, extra_latency, bandwidth, fifo))
    ->
      let rng = Hsgc_util.Rng.create (seed + 1) in
      let plan = Plan.create () in
      let ids =
        Array.init n (fun _ ->
            Plan.obj plan
              ~pi:(Hsgc_util.Rng.int rng 4)
              ~delta:(Hsgc_util.Rng.int rng 5))
      in
      Array.iter
        (fun id ->
          for slot = 0 to Plan.pi_of plan id - 1 do
            if Hsgc_util.Rng.int rng 100 < 70 then
              Plan.link plan ~parent:id ~slot
                ~child:ids.(Hsgc_util.Rng.int rng n)
          done)
        ids;
      for _ = 1 to 1 + Hsgc_util.Rng.int rng 3 do
        Plan.add_root plan ids.(Hsgc_util.Rng.int rng n)
      done;
      let mem =
        Memsys.with_extra_latency
          {
            Memsys.default_config with
            Memsys.bandwidth;
            fifo_capacity = fifo;
            header_cache_entries = cache;
          }
          extra_latency
      in
      let naive, skip, snap_naive, snap_skip =
        collect_both ~mem ?scan_unit ~n_cores plan
      in
      check_stats_equal "random config" naive skip;
      Verify.equal_snapshot snap_naive snap_skip)

let test_skip_equivalent_on_workloads () =
  List.iter
    (fun w ->
      List.iter
        (fun n_cores ->
          let run skip =
            let heap = Workloads.build_heap ~scale:0.03 ~seed:7 w in
            Coprocessor.collect (Coprocessor.config ~skip ~n_cores ()) heap
          in
          check_stats_equal
            (Printf.sprintf "%s at %d cores" w.Workloads.name n_cores)
            (run false) (run true))
        [ 1; 4; 16 ])
    Workloads.all

let test_skip_equivalent_latency_bound () =
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  List.iter
    (fun n_cores ->
      let run skip =
        let heap = Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.db in
        Coprocessor.collect (Coprocessor.config ~mem ~skip ~n_cores ()) heap
      in
      check_stats_equal
        (Printf.sprintf "latency-bound db at %d cores" n_cores)
        (run false) (run true))
    [ 1; 8 ]

let test_skipping_actually_skips () =
  (* With +20-cycle latency and a single core, most cycles are spent
     waiting on one in-flight transfer: the kernel must fast-forward a
     large share of them. *)
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  let heap = Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.db in
  let stats =
    Coprocessor.collect (Coprocessor.config ~mem ~n_cores:1 ()) heap
  in
  Alcotest.(check bool) "skipped a majority of cycles" true
    (stats.Coprocessor.skipped_cycles * 2 > stats.Coprocessor.total_cycles);
  let heap = Workloads.build_heap ~scale:0.03 ~seed:7 Workloads.db in
  let off =
    Coprocessor.collect (Coprocessor.config ~mem ~skip:false ~n_cores:1 ()) heap
  in
  Alcotest.(check int) "skip off skips nothing" 0 off.Coprocessor.skipped_cycles;
  Alcotest.(check int) "skip off executes everything"
    off.Coprocessor.total_cycles off.Coprocessor.executed_cycles

let qcheck_skip_equivalent_with_faults =
  QCheck.Test.make
    ~name:
      "idle-cycle skipping stays cycle-exact under delay-class faults \
       (1..16 cores)"
    ~count:40
    (QCheck.make
       ~print:(fun ((n, s), (nc, intensity)) ->
         Printf.sprintf "graph(n=%d seed=%d) cores=%d intensity=%.2f" n s nc
           intensity)
       QCheck.Gen.(
         let gen_plan =
           let* n = int_range 1 50 in
           let* seed = small_nat in
           return (n, seed)
         in
         let gen_config =
           let* n_cores = int_range 1 16 in
           let* intensity = oneofl [ 0.1; 0.4; 0.8 ] in
           return (n_cores, intensity)
         in
         pair gen_plan gen_config))
    (fun ((n, seed), (n_cores, intensity)) ->
      (* Delay-class faults perturb timing only (spurious busy / extra
         latency), but they draw from a per-retry fault stream — so the
         event-driven scheduler must keep every retrying core awake, or
         the draws (and with them every statistic) diverge from naive
         stepping. This is the property that pins down [next_wake]'s
         no-overshoot contract under fault injection. *)
      let rng = Hsgc_util.Rng.create (seed + 1) in
      let plan = Plan.create () in
      let ids =
        Array.init n (fun _ ->
            Plan.obj plan
              ~pi:(Hsgc_util.Rng.int rng 4)
              ~delta:(Hsgc_util.Rng.int rng 5))
      in
      Array.iter
        (fun id ->
          for slot = 0 to Plan.pi_of plan id - 1 do
            if Hsgc_util.Rng.int rng 100 < 70 then
              Plan.link plan ~parent:id ~slot
                ~child:ids.(Hsgc_util.Rng.int rng n)
          done)
        ids;
      for _ = 1 to 1 + Hsgc_util.Rng.int rng 3 do
        Plan.add_root plan ids.(Hsgc_util.Rng.int rng n)
      done;
      let faults =
        Hsgc_fault.Injector.delay_class ~seed:(seed + 3) ~intensity ()
      in
      let run skip =
        let heap = Plan.materialize plan in
        let stats =
          Coprocessor.collect
            (Coprocessor.config ~faults ~skip ~n_cores ())
            heap
        in
        (stats, Verify.snapshot heap)
      in
      let naive, snap_naive = run false in
      let skip, snap_skip = run true in
      check_stats_equal "delay faults" naive skip;
      Verify.equal_snapshot snap_naive snap_skip)

let test_pieces_accounting_closes () =
  (* Sub-object mode: every split frame's outstanding-piece count lives
     in the flat [pieces] array. The balance must go back to zero by the
     time the machine halts — a piece leak would leave it positive, a
     double-retire would go negative (and trip the internal guard). *)
  let heap = Workloads.build_heap ~scale:0.04 ~seed:3 Workloads.db in
  let sim =
    Coprocessor.start (Coprocessor.config ~scan_unit:1 ~n_cores:4 ()) heap
  in
  let saw_outstanding = ref false in
  let steps = ref 0 in
  while not (Coprocessor.halted sim) do
    Coprocessor.step sim;
    incr steps;
    if !steps land 63 = 0 then begin
      let p = Coprocessor.pieces_outstanding sim in
      if p < 0 then Alcotest.failf "negative outstanding pieces (%d)" p;
      if p > 0 then saw_outstanding := true
    end
  done;
  Alcotest.(check int) "all pieces retired at halt" 0
    (Coprocessor.pieces_outstanding sim);
  Alcotest.(check bool) "sub-object mode actually split objects" true
    !saw_outstanding;
  ignore (Coprocessor.finalize sim)

let test_hot_loop_allocation_free () =
  (* The stepping loop is allocation-free in steady state; what remains
     is per-collection setup (core records, counters, the wake queue),
     amortized here over a run long enough to make any per-cycle or
     per-acceptance allocation stand out by orders of magnitude. *)
  let heap = Workloads.build_heap ~scale:0.2 ~seed:5 Workloads.javacc in
  let cfg = Coprocessor.config ~n_cores:2 () in
  let w0 = Gc.minor_words () in
  let stats = Coprocessor.collect cfg heap in
  let w1 = Gc.minor_words () in
  let per_cycle =
    (w1 -. w0) /. float_of_int stats.Coprocessor.executed_cycles
  in
  if per_cycle > 0.05 then
    Alcotest.failf
      "hot loop allocates %.4f minor words per executed cycle (budget 0.05)"
      per_cycle

let test_concurrent_skip_equivalent () =
  (* The concurrent engine caps every skip at the next mutator operation,
     so mutator interleavings — and with them every statistic — must be
     identical with skipping on and off. *)
  let run skip =
    let heap = Workloads.build_heap ~scale:0.05 ~seed:11 Workloads.jlisp in
    let cfg = Concurrent.default_config ~n_cores:4 () in
    let cfg =
      { cfg with Concurrent.gc = { cfg.Concurrent.gc with Coprocessor.skip } }
    in
    let stats = Concurrent.collect cfg heap in
    ( stats.Concurrent.gc.Coprocessor.total_cycles,
      stats.Concurrent.pause_cycles,
      stats.Concurrent.barrier_evacuations,
      stats.Concurrent.mutator_reads,
      stats.Concurrent.mutator_allocs,
      stats.Concurrent.mutator_wait_cycles )
  in
  let t_off, p_off, e_off, r_off, a_off, w_off = run false in
  let t_on, p_on, e_on, r_on, a_on, w_on = run true in
  Alcotest.(check int) "total cycles" t_off t_on;
  Alcotest.(check int) "pause cycles" p_off p_on;
  Alcotest.(check int) "barrier evacuations" e_off e_on;
  Alcotest.(check int) "mutator reads" r_off r_on;
  Alcotest.(check int) "mutator allocs" a_off a_on;
  Alcotest.(check int) "mutator waits" w_off w_on

(* ------------------------------------------------------------------ *)
(* Domain-parallel sweeps: determinism across jobs levels              *)
(* ------------------------------------------------------------------ *)

let check_measurements_equal ctx (a : Experiment.measurement)
    (b : Experiment.measurement) =
  (* Every field except wall_s (host time, noisy by nature). *)
  let chkf name x y =
    if x <> y then Alcotest.failf "%s: %s differs" ctx name
  in
  if a.Experiment.workload <> b.Experiment.workload then
    Alcotest.failf "%s: workload differs" ctx;
  chkf "n_cores" (float_of_int a.Experiment.n_cores)
    (float_of_int b.Experiment.n_cores);
  chkf "cycles" a.Experiment.cycles b.Experiment.cycles;
  chkf "empty_frac" a.Experiment.empty_frac b.Experiment.empty_frac;
  chkf "root_cycles" a.Experiment.root_cycles b.Experiment.root_cycles;
  chkf "live_objects" a.Experiment.live_objects b.Experiment.live_objects;
  chkf "live_words" a.Experiment.live_words b.Experiment.live_words;
  chkf "fifo_overflows" a.Experiment.fifo_overflows
    b.Experiment.fifo_overflows;
  chkf "fifo_hits" a.Experiment.fifo_hits b.Experiment.fifo_hits;
  chkf "mem_rejected_bandwidth" a.Experiment.mem_rejected_bandwidth
    b.Experiment.mem_rejected_bandwidth;
  chkf "skipped_cycles" a.Experiment.skipped_cycles
    b.Experiment.skipped_cycles;
  List.iter
    (fun s ->
      chkf
        (Counters.stall_name s)
        (float_of_int (Counters.get a.Experiment.stalls_mean_core s))
        (float_of_int (Counters.get b.Experiment.stalls_mean_core s)))
    Counters.all_stalls

let test_sweep_jobs_deterministic () =
  let sweep jobs =
    Experiment.sweep ~scale:0.03 ~seeds:[| 42; 1042 |] ~jobs Workloads.javacc
  in
  let seq = sweep 1 and par = sweep 4 in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      check_measurements_equal
        (Printf.sprintf "javacc at %d cores" a.Experiment.n_cores)
        a b)
    seq par

let test_run_sweeps_jobs_byte_identical () =
  let render jobs =
    let d = Report.run_sweeps ~scale:0.02 ~seeds:[| 42 |] ~jobs () in
    Report.figure5 d ^ Report.table1 d ^ Report.table2 d
  in
  let seq = render 1 in
  Alcotest.(check string) "jobs=3 renders byte-identical artifacts" seq
    (render 3)

let suite =
  [
    Alcotest.test_case "clock accounting" `Quick test_clock_accounting;
    Alcotest.test_case "clock helpers" `Quick test_clock_helpers;
    Alcotest.test_case "wheel ordering" `Quick test_wheel_ordering;
    QCheck_alcotest.to_alcotest qcheck_wheel_sorts;
    QCheck_alcotest.to_alcotest qcheck_wheel_interleaved;
    Alcotest.test_case "wheel growth path" `Quick test_wheel_growth;
    Alcotest.test_case "wake queue scan regime" `Quick test_wakeq_scan_regime;
    Alcotest.test_case "wake queue lazy invalidation" `Quick
      test_wakeq_lazy_invalidation;
    QCheck_alcotest.to_alcotest qcheck_wakeq_matches_model;
    Alcotest.test_case "pool matches List.map" `Quick test_pool_matches_map;
    Alcotest.test_case "pool exception determinism" `Quick test_pool_exception;
    QCheck_alcotest.to_alcotest qcheck_skip_equivalent;
    QCheck_alcotest.to_alcotest qcheck_skip_equivalent_with_faults;
    Alcotest.test_case "pieces accounting closes to zero" `Quick
      test_pieces_accounting_closes;
    Alcotest.test_case "hot loop is allocation-free" `Quick
      test_hot_loop_allocation_free;
    Alcotest.test_case "skip equivalent on workloads" `Slow
      test_skip_equivalent_on_workloads;
    Alcotest.test_case "skip equivalent latency-bound" `Quick
      test_skip_equivalent_latency_bound;
    Alcotest.test_case "skipping actually skips" `Quick
      test_skipping_actually_skips;
    Alcotest.test_case "concurrent skip equivalent" `Quick
      test_concurrent_skip_equivalent;
    Alcotest.test_case "sweep jobs deterministic" `Quick
      test_sweep_jobs_deterministic;
    Alcotest.test_case "run_sweeps jobs byte-identical" `Slow
      test_run_sweeps_jobs_byte_identical;
  ]
