(* Tests for the graph shape builders. *)

module Plan = Hsgc_objgraph.Plan
module Graph_gen = Hsgc_objgraph.Graph_gen
module Rng = Hsgc_util.Rng

(* Count reachable objects from a given id. *)
let reachable_count plan root =
  let n = Plan.n_objects plan in
  let seen = Array.make n false in
  let rec visit id acc =
    if id < 0 || seen.(id) then acc
    else begin
      seen.(id) <- true;
      let acc = ref (acc + 1) in
      for s = 0 to Plan.pi_of plan id - 1 do
        acc := visit (Plan.child_of plan id s) !acc
      done;
      !acc
    end
  in
  visit root 0

let test_chain () =
  let p = Plan.create () in
  let head, tail = Graph_gen.chain p ~n:10 ~pi:1 ~delta:2 in
  Alcotest.(check int) "10 objects" 10 (Plan.n_objects p);
  Alcotest.(check int) "all reachable from head" 10 (reachable_count p head);
  Alcotest.(check int) "tail terminates" (-1) (Plan.child_of p tail 0);
  (* walk the chain *)
  let rec walk id len =
    match Plan.child_of p id 0 with -1 -> len | next -> walk next (len + 1)
  in
  Alcotest.(check int) "length" 10 (walk head 1)

let test_chain_single () =
  let p = Plan.create () in
  let head, tail = Graph_gen.chain p ~n:1 ~pi:1 ~delta:0 in
  Alcotest.(check int) "head = tail" head tail

let test_chain_with_payload () =
  let p = Plan.create () in
  let head, _ =
    Graph_gen.chain_with_payload p ~n:6 ~node_delta:1 ~payload_pi:0
      ~payload_delta:2 ()
  in
  Alcotest.(check int) "nodes + payloads" 12 (Plan.n_objects p);
  Alcotest.(check int) "all reachable" 12 (reachable_count p head)

let test_chain_with_payload_every () =
  let p = Plan.create () in
  let head, _ =
    Graph_gen.chain_with_payload p ~n:6 ~every:3 ~node_delta:0 ~payload_pi:0
      ~payload_delta:1 ()
  in
  Alcotest.(check int) "6 nodes + 2 payloads" 8 (Plan.n_objects p);
  Alcotest.(check int) "all reachable" 8 (reachable_count p head)

let test_star () =
  let p = Plan.create () in
  let hub, children = Graph_gen.star p ~fanout:5 ~child_pi:0 ~child_delta:1 in
  Alcotest.(check int) "5 children" 5 (Array.length children);
  Alcotest.(check int) "hub pi" 5 (Plan.pi_of p hub);
  Alcotest.(check int) "all reachable" 6 (reachable_count p hub)

let test_layered_coverage () =
  let p = Plan.create () in
  let rng = Rng.create 1 in
  let hub = Graph_gen.layered p rng ~widths:[| 3; 12; 24 |] ~delta:1 in
  (* hub + 3 + 12 + 24 objects, all reachable *)
  Alcotest.(check int) "all objects" 40 (Plan.n_objects p);
  Alcotest.(check int) "full coverage" 40 (reachable_count p hub)

let test_layered_leaves () =
  let p = Plan.create () in
  let rng = Rng.create 1 in
  let _ = Graph_gen.layered p rng ~widths:[| 2; 4 |] ~delta:3 in
  (* Last layer objects have pi = 0. *)
  let leaves = ref 0 in
  Plan.iter_objects p (fun id ->
      if Plan.pi_of p id = 0 then incr leaves);
  Alcotest.(check int) "4 leaves" 4 !leaves

let test_random_tree () =
  let p = Plan.create () in
  let rng = Rng.create 2 in
  let root =
    Graph_gen.random_tree p rng ~n:50 ~max_fanout:3 ~delta_min:1 ~delta_max:4 ()
  in
  Alcotest.(check int) "50 nodes" 50 (Plan.n_objects p);
  Alcotest.(check int) "tree fully reachable" 50 (reachable_count p root);
  (* It is a tree: each node except the root has exactly one parent. *)
  let indeg = Array.make 50 0 in
  Plan.iter_objects p (fun id ->
      for s = 0 to Plan.pi_of p id - 1 do
        let c = Plan.child_of p id s in
        if c >= 0 then indeg.(c) <- indeg.(c) + 1
      done);
  Alcotest.(check int) "root has no parent" 0 indeg.(root);
  Plan.iter_objects p (fun id ->
      if id <> root then Alcotest.(check int) "single parent" 1 indeg.(id))

let test_random_tree_reserved_slots () =
  let p = Plan.create () in
  let rng = Rng.create 3 in
  let root =
    Graph_gen.random_tree p rng ~n:40 ~max_fanout:3 ~reserve_slots:1
      ~delta_min:0 ~delta_max:0 ()
  in
  (* The last slot of every node is never used by the tree. *)
  Plan.iter_objects p (fun id ->
      if id >= root && id < root + 40 then begin
        let pi = Plan.pi_of p id in
        Alcotest.(check int) "reserved slot free" (-1) (Plan.child_of p id (pi - 1))
      end)

let test_caterpillar () =
  let p = Plan.create () in
  let rng = Rng.create 4 in
  let head = Graph_gen.caterpillar p rng ~backbone:5 ~tuft:4 ~delta:1 in
  (* 5 backbone nodes, each with a 4-node tuft. *)
  Alcotest.(check int) "objects" (5 * 5) (Plan.n_objects p);
  Alcotest.(check int) "fully reachable" 25 (reachable_count p head)

let test_zipf_pool_skew () =
  let p = Plan.create () in
  let rng = Rng.create 5 in
  let clients =
    Array.init 2000 (fun _ -> (Plan.obj p ~pi:1 ~delta:0, 0))
  in
  let pool = Graph_gen.zipf_pool p rng ~clients ~pool:10 ~s:1.5 in
  Alcotest.(check int) "pool created" 10 (Array.length pool);
  let indeg = Hashtbl.create 10 in
  Array.iter (fun (c, s) ->
      let target = Plan.child_of p c s in
      Alcotest.(check bool) "client linked" true (target >= 0);
      Hashtbl.replace indeg target
        (1 + Option.value ~default:0 (Hashtbl.find_opt indeg target)))
    clients;
  let counts =
    Array.map (fun id -> Option.value ~default:0 (Hashtbl.find_opt indeg id)) pool
  in
  let hottest = Array.fold_left max 0 counts in
  Alcotest.(check bool) "top symbol dominates (>25%)" true (hottest > 500)

let test_garbage_unreachable () =
  let p = Plan.create () in
  let rng = Rng.create 6 in
  let root = Plan.obj p ~pi:0 ~delta:1 in
  Plan.add_root p root;
  Graph_gen.garbage p rng ~n:30 ~max_pi:2 ~max_delta:4;
  Alcotest.(check int) "31 objects total" 31 (Plan.n_objects p);
  Alcotest.(check int) "live words only the root" 3 (Plan.live_words p)

let test_invalid_args () =
  let p = Plan.create () in
  Alcotest.check_raises "chain n=0"
    (Invalid_argument "Graph_gen.chain: n must be positive") (fun () ->
      ignore (Graph_gen.chain p ~n:0 ~pi:1 ~delta:0));
  Alcotest.check_raises "chain pi=0"
    (Invalid_argument "Graph_gen.chain: pi must be >= 1") (fun () ->
      ignore (Graph_gen.chain p ~n:3 ~pi:0 ~delta:0))

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "chain single" `Quick test_chain_single;
    Alcotest.test_case "chain with payload" `Quick test_chain_with_payload;
    Alcotest.test_case "payload every k" `Quick test_chain_with_payload_every;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "layered coverage" `Quick test_layered_coverage;
    Alcotest.test_case "layered leaves" `Quick test_layered_leaves;
    Alcotest.test_case "random tree" `Quick test_random_tree;
    Alcotest.test_case "random tree reserved slots" `Quick
      test_random_tree_reserved_slots;
    Alcotest.test_case "caterpillar" `Quick test_caterpillar;
    Alcotest.test_case "zipf pool skew" `Quick test_zipf_pool_skew;
    Alcotest.test_case "garbage unreachable" `Quick test_garbage_unreachable;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
  ]
