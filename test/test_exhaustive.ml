(* Bounded-exhaustive verification: enumerate EVERY object graph within a
   small bound (all π/δ combinations, all edge assignments including
   self-loops, cycles and sharing) and check the coprocessor against the
   sequential oracle on each one. Random testing samples this space;
   here we cover it. *)

module Plan = Hsgc_objgraph.Plan
module Verify = Hsgc_heap.Verify
module Coprocessor = Hsgc_coproc.Coprocessor
module Cheney_seq = Hsgc_core.Cheney_seq

(* Integer exponentiation: radix^k stays exact where float ** loses
   integers past 2^53 and mis-decodes high digits. *)
let ipow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

(* Enumerate every assignment of [slots] pointer slots over targets
   [-1 (null), 0, .., n-1] as an integer in mixed radix (n+1)^slots. *)
let assignment ~n ~slots code =
  Array.init slots (fun i -> (code / ipow (n + 1) i) mod (n + 1) - 1)

let build ~shapes ~edges =
  let plan = Plan.create () in
  let ids =
    Array.map (fun (pi, delta) -> Plan.obj plan ~pi ~delta) shapes
  in
  let k = ref 0 in
  Array.iteri
    (fun obj (pi, _) ->
      for slot = 0 to pi - 1 do
        let target = edges.(!k) in
        incr k;
        if target >= 0 then
          Plan.link plan ~parent:ids.(obj) ~slot ~child:ids.(target)
      done)
    shapes;
  Plan.add_root plan ids.(0);
  plan

let check_one ~shapes ~edges ~n_cores =
  let plan = build ~shapes ~edges in
  let oracle_heap = Plan.materialize plan in
  ignore (Cheney_seq.collect oracle_heap);
  let oracle_snap = Verify.snapshot oracle_heap in
  let heap = Plan.materialize plan in
  let pre = Verify.snapshot heap in
  ignore (Coprocessor.collect (Coprocessor.config ~n_cores ()) heap);
  (match Verify.check_collection ~pre heap with
  | Ok () -> ()
  | Error f ->
    Alcotest.failf "invariant (%d cores): %a" n_cores Verify.pp_failure f);
  if not (Verify.equal_snapshot oracle_snap (Verify.snapshot heap)) then
    Alcotest.failf "oracle mismatch at %d cores" n_cores

(* Every 2-object graph: π ∈ {0,1,2}, δ ∈ {0,1} per object, every edge
   assignment. 36 shape pairs × up to 3^4 assignments. *)
let test_all_two_object_graphs () =
  let shapes_of o = (o mod 3, o / 3 mod 2) in
  let count = ref 0 in
  for s0 = 0 to 5 do
    for s1 = 0 to 5 do
      let shapes = [| shapes_of s0; shapes_of s1 |] in
      let slots = fst shapes.(0) + fst shapes.(1) in
      let codes = ipow 3 slots in
      for code = 0 to codes - 1 do
        let edges = assignment ~n:2 ~slots code in
        check_one ~shapes ~edges ~n_cores:3;
        incr count
      done
    done
  done;
  (* 36 shape pairs, 3^slots assignments each: 676 distinct graphs. *)
  Alcotest.(check int) "complete enumeration" 676 !count

(* Every 3-object graph with π ∈ {0,1}, δ = 0: 8 shape triples × up to
   4^3 assignments, at two core counts. *)
let test_all_three_object_graphs () =
  let count = ref 0 in
  for mask = 0 to 7 do
    let shapes = Array.init 3 (fun i -> ((mask lsr i) land 1, 0)) in
    let slots = Array.fold_left (fun acc (pi, _) -> acc + pi) 0 shapes in
    let codes = ipow 4 slots in
    for code = 0 to codes - 1 do
      let edges = assignment ~n:3 ~slots code in
      List.iter (fun n_cores -> check_one ~shapes ~edges ~n_cores) [ 1; 4 ];
      incr count
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "covered %d graphs" !count)
    true (!count > 100)

(* The same 2-object enumeration under sub-object splitting with the
   smallest unit, which maximally exercises the piece machinery. *)
let test_two_object_graphs_with_unit_1 () =
  let shapes_of o = (o mod 3, o / 3 mod 2) in
  for s0 = 0 to 5 do
    for s1 = 0 to 5 do
      let shapes = [| shapes_of s0; shapes_of s1 |] in
      let slots = fst shapes.(0) + fst shapes.(1) in
      let codes = ipow 3 slots in
      for code = 0 to codes - 1 do
        let edges = assignment ~n:2 ~slots code in
        let plan = build ~shapes ~edges in
        let oracle_heap = Plan.materialize plan in
        ignore (Cheney_seq.collect oracle_heap);
        let oracle_snap = Verify.snapshot oracle_heap in
        let heap = Plan.materialize plan in
        let pre = Verify.snapshot heap in
        ignore
          (Coprocessor.collect (Coprocessor.config ~scan_unit:1 ~n_cores:2 ()) heap);
        (match Verify.check_collection ~pre heap with
        | Ok () -> ()
        | Error f -> Alcotest.failf "unit-1 invariant: %a" Verify.pp_failure f);
        if not (Verify.equal_snapshot oracle_snap (Verify.snapshot heap)) then
          Alcotest.fail "unit-1 oracle mismatch"
      done
    done
  done

(* The decoder must be exact arithmetic: re-encode the decoded digits
   and recover the code, including codes past 2^53 where the former
   float-powers decoder started rounding radix^i and splitting digits
   wrong. *)
let test_assignment_roundtrip () =
  let reencode ~n digits =
    Array.fold_right (fun d acc -> (acc * (n + 1)) + (d + 1)) digits 0
  in
  List.iter
    (fun (n, slots, code) ->
      let digits = assignment ~n ~slots code in
      Array.iter
        (fun d ->
          if d < -1 || d >= n then
            Alcotest.failf "digit %d out of range for n=%d" d n)
        digits;
      Alcotest.(check int)
        (Printf.sprintf "n=%d slots=%d code=%d" n slots code)
        code (reencode ~n digits))
    [
      (2, 4, 0); (2, 4, 80); (3, 3, 63); (2, 35, 0);
      (* 3^35 - 1 > 2^53: every digit is 2, the float decoder breaks. *)
      (2, 35, ipow 3 35 - 1);
      (2, 39, (ipow 3 38 * 2) + 5);
      (9, 18, ipow 10 18 - 123_456_789);
    ]

let suite =
  [
    Alcotest.test_case "mixed-radix decode is exact past 2^53" `Quick
      test_assignment_roundtrip;
    Alcotest.test_case "all 2-object graphs" `Slow test_all_two_object_graphs;
    Alcotest.test_case "all 3-object graphs" `Slow test_all_three_object_graphs;
    Alcotest.test_case "all 2-object graphs, scan-unit 1" `Slow
      test_two_object_graphs_with_unit_1;
  ]
