(* Tests for the streaming statistics accumulator. *)

module Stats_acc = Hsgc_util.Stats_acc

let feq msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let test_empty () =
  let t = Stats_acc.create () in
  Alcotest.(check int) "count" 0 (Stats_acc.count t);
  feq "mean" 0.0 (Stats_acc.mean t);
  feq "variance" 0.0 (Stats_acc.variance t);
  Alcotest.(check bool) "min is +inf" true (Stats_acc.min_value t = infinity);
  Alcotest.(check bool) "max is -inf" true (Stats_acc.max_value t = neg_infinity)

let test_single () =
  let t = Stats_acc.create () in
  Stats_acc.add t 4.0;
  Alcotest.(check int) "count" 1 (Stats_acc.count t);
  feq "mean" 4.0 (Stats_acc.mean t);
  feq "variance" 0.0 (Stats_acc.variance t);
  feq "min" 4.0 (Stats_acc.min_value t);
  feq "max" 4.0 (Stats_acc.max_value t)

let test_known_series () =
  let t = Stats_acc.create () in
  List.iter (Stats_acc.add t) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  feq "mean" 5.0 (Stats_acc.mean t);
  (* Sample variance of this classic series is 32/7. *)
  feq "variance" (32.0 /. 7.0) (Stats_acc.variance t);
  feq "total" 40.0 (Stats_acc.total t);
  feq "min" 2.0 (Stats_acc.min_value t);
  feq "max" 9.0 (Stats_acc.max_value t)

let test_add_int () =
  let t = Stats_acc.create () in
  Stats_acc.add_int t 3;
  Stats_acc.add_int t 5;
  feq "mean" 4.0 (Stats_acc.mean t)

let test_merge_matches_bulk () =
  let a = Stats_acc.create () and b = Stats_acc.create () in
  let all = Stats_acc.create () in
  List.iter
    (fun x ->
      Stats_acc.add a x;
      Stats_acc.add all x)
    [ 1.0; 2.0; 3.0 ];
  List.iter
    (fun x ->
      Stats_acc.add b x;
      Stats_acc.add all x)
    [ 10.0; 20.0; 30.0; 40.0 ];
  let m = Stats_acc.merge a b in
  Alcotest.(check int) "count" (Stats_acc.count all) (Stats_acc.count m);
  feq "mean" (Stats_acc.mean all) (Stats_acc.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Stats_acc.variance all)
    (Stats_acc.variance m);
  feq "min" (Stats_acc.min_value all) (Stats_acc.min_value m);
  feq "max" (Stats_acc.max_value all) (Stats_acc.max_value m)

let test_merge_empty () =
  let a = Stats_acc.create () in
  Stats_acc.add a 5.0;
  let e = Stats_acc.create () in
  let m1 = Stats_acc.merge a e and m2 = Stats_acc.merge e a in
  feq "merge right empty" 5.0 (Stats_acc.mean m1);
  feq "merge left empty" 5.0 (Stats_acc.mean m2)

let test_stddev () =
  let t = Stats_acc.create () in
  List.iter (Stats_acc.add t) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  feq "stddev = sqrt variance" (sqrt (32.0 /. 7.0)) (Stats_acc.stddev t)

let test_pp () =
  let t = Stats_acc.create () in
  Stats_acc.add t 1.0;
  let s = Format.asprintf "%a" Stats_acc.pp t in
  Alcotest.(check bool) "pp mentions n=1" true
    (String.length s > 0
    && (try String.sub s 0 3 = "n=1" with Invalid_argument _ -> false))

let qcheck_merge_consistent =
  QCheck.Test.make ~name:"merge equals bulk accumulation" ~count:200
    QCheck.(pair (list (float_range (-1e3) 1e3)) (list (float_range (-1e3) 1e3)))
    (fun (xs, ys) ->
      let a = Stats_acc.create () and b = Stats_acc.create () in
      let all = Stats_acc.create () in
      List.iter
        (fun x ->
          Stats_acc.add a x;
          Stats_acc.add all x)
        xs;
      List.iter
        (fun y ->
          Stats_acc.add b y;
          Stats_acc.add all y)
        ys;
      let m = Stats_acc.merge a b in
      Stats_acc.count m = Stats_acc.count all
      && abs_float (Stats_acc.mean m -. Stats_acc.mean all) < 1e-6
      && abs_float (Stats_acc.variance m -. Stats_acc.variance all) < 1e-3)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single sample" `Quick test_single;
    Alcotest.test_case "known series" `Quick test_known_series;
    Alcotest.test_case "add_int" `Quick test_add_int;
    Alcotest.test_case "merge matches bulk" `Quick test_merge_matches_bulk;
    Alcotest.test_case "merge with empty" `Quick test_merge_empty;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest qcheck_merge_consistent;
  ]
