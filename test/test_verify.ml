(* Tests for snapshots and post-collection verification. *)

module Heap = Hsgc_heap.Heap
module Header = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace
module Verify = Hsgc_heap.Verify
module Cheney_seq = Hsgc_core.Cheney_seq

let alloc_exn heap ~pi ~delta =
  match Heap.alloc heap ~pi ~delta with
  | Some a -> a
  | None -> Alcotest.fail "allocation failed"

(* Two heaps with the same abstract graph built in different allocation
   orders. *)
let build_pair () =
  let build order =
    let heap = Heap.create ~semispace_words:100 in
    let mk (pi, delta) = alloc_exn heap ~pi ~delta in
    match order with
    | `Forward ->
      let r = mk (2, 1) in
      let a = mk (1, 0) in
      let b = mk (0, 2) in
      Heap.set_pointer heap r 0 a;
      Heap.set_pointer heap r 1 b;
      Heap.set_pointer heap a 0 b;
      Heap.set_data heap r 0 7;
      Heap.set_data heap b 0 8;
      Heap.set_data heap b 1 9;
      Heap.set_roots heap [| r |];
      heap
    | `Backward ->
      let b = mk (0, 2) in
      let a = mk (1, 0) in
      let r = mk (2, 1) in
      Heap.set_pointer heap r 0 a;
      Heap.set_pointer heap r 1 b;
      Heap.set_pointer heap a 0 b;
      Heap.set_data heap r 0 7;
      Heap.set_data heap b 0 8;
      Heap.set_data heap b 1 9;
      Heap.set_roots heap [| r |];
      heap
  in
  (build `Forward, build `Backward)

let test_snapshot_address_independent () =
  let h1, h2 = build_pair () in
  let s1 = Verify.snapshot h1 and s2 = Verify.snapshot h2 in
  Alcotest.(check bool) "isomorphic graphs have equal snapshots" true
    (Verify.equal_snapshot s1 s2)

let test_snapshot_detects_data_change () =
  let h1, h2 = build_pair () in
  let s1 = Verify.snapshot h1 in
  (* mutate one data word in h2's b object *)
  Heap.iter_objects h2 (Heap.from_space h2) (fun o ->
      if Heap.obj_delta h2 o = 2 then Heap.set_data h2 o 0 999);
  let s2 = Verify.snapshot h2 in
  Alcotest.(check bool) "data change detected" false (Verify.equal_snapshot s1 s2)

let test_snapshot_detects_shape_change () =
  let h1, h2 = build_pair () in
  let s1 = Verify.snapshot h1 in
  (* re-point r slot 0 at b instead of a: a becomes unreachable *)
  Heap.iter_objects h2 (Heap.from_space h2) (fun o ->
      if Heap.obj_pi h2 o = 2 then
        Heap.set_pointer h2 o 0 (Heap.get_pointer h2 o 1));
  let s2 = Verify.snapshot h2 in
  Alcotest.(check bool) "shape change detected" false (Verify.equal_snapshot s1 s2)

let test_snapshot_root_order_matters () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:0 ~delta:0 in
  let b = alloc_exn heap ~pi:0 ~delta:1 in
  Heap.set_roots heap [| a; b |];
  let s1 = Verify.snapshot heap in
  Heap.set_roots heap [| b; a |];
  let s2 = Verify.snapshot heap in
  Alcotest.(check bool) "root order is part of the graph" false
    (Verify.equal_snapshot s1 s2)

let test_check_collection_ok () =
  let h, _ = build_pair () in
  let pre = Verify.snapshot h in
  ignore (Cheney_seq.collect h);
  match Verify.check_collection ~pre h with
  | Ok () -> ()
  | Error f -> Alcotest.failf "unexpected failure: %a" Verify.pp_failure f

let expect_failure ~pre heap msg =
  match Verify.check_collection ~pre heap with
  | Ok () -> Alcotest.failf "expected %s failure" msg
  | Error _ -> ()

let test_check_detects_corrupted_copy () =
  let h, _ = build_pair () in
  let pre = Verify.snapshot h in
  ignore (Cheney_seq.collect h);
  (* corrupt a data word in the new space *)
  let space = Heap.from_space h in
  Heap.iter_objects h space (fun o ->
      if Heap.obj_delta h o = 2 then Heap.set_data h o 1 31337);
  expect_failure ~pre h "graph-mismatch"

let test_check_detects_non_black () =
  let h, _ = build_pair () in
  let pre = Verify.snapshot h in
  ignore (Cheney_seq.collect h);
  let space = Heap.from_space h in
  let first = space.Semispace.base in
  Heap.set_header0 h first (Header.with_state (Heap.header0 h first) Header.Gray);
  expect_failure ~pre h "bad-state"

let test_check_detects_dangling () =
  let h, _ = build_pair () in
  let pre = Verify.snapshot h in
  ignore (Cheney_seq.collect h);
  let space = Heap.from_space h in
  (* point some pointer slot back into the old space *)
  Heap.iter_objects h space (fun o ->
      if Heap.obj_pi h o = 2 then
        Heap.set_pointer h o 0 (Heap.to_space h).Semispace.base);
  expect_failure ~pre h "dangling-pointer"

let test_check_detects_gap () =
  let h, _ = build_pair () in
  let pre = Verify.snapshot h in
  ignore (Cheney_seq.collect h);
  (* pretend more words are used than the live data *)
  let space = Heap.from_space h in
  space.Semispace.free <- space.Semispace.free + 2;
  expect_failure ~pre h "not-compacted"

let test_empty_heap_snapshot () =
  let h = Heap.create ~semispace_words:50 in
  let s = Verify.snapshot h in
  Alcotest.(check int) "no objects" 0 (Array.length s.Verify.objects);
  let pre = s in
  ignore (Cheney_seq.collect h);
  match Verify.check_collection ~pre h with
  | Ok () -> ()
  | Error f -> Alcotest.failf "empty heap should verify: %a" Verify.pp_failure f

let suite =
  [
    Alcotest.test_case "snapshot address independent" `Quick
      test_snapshot_address_independent;
    Alcotest.test_case "snapshot detects data change" `Quick
      test_snapshot_detects_data_change;
    Alcotest.test_case "snapshot detects shape change" `Quick
      test_snapshot_detects_shape_change;
    Alcotest.test_case "snapshot root order" `Quick test_snapshot_root_order_matters;
    Alcotest.test_case "check_collection ok" `Quick test_check_collection_ok;
    Alcotest.test_case "detects corrupted copy" `Quick test_check_detects_corrupted_copy;
    Alcotest.test_case "detects non-black object" `Quick test_check_detects_non_black;
    Alcotest.test_case "detects dangling pointer" `Quick test_check_detects_dangling;
    Alcotest.test_case "detects compaction gap" `Quick test_check_detects_gap;
    Alcotest.test_case "empty heap" `Quick test_empty_heap_snapshot;
  ]
