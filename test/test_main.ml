(* Aggregated test runner for the whole library. *)

let () =
  Alcotest.run "hsgc"
    [
      ("rng", Test_rng.suite);
      ("stats-acc", Test_stats_acc.suite);
      ("table", Test_table.suite);
      ("header", Test_header.suite);
      ("semispace", Test_semispace.suite);
      ("heap", Test_heap.suite);
      ("verify", Test_verify.suite);
      ("header-fifo", Test_fifo.suite);
      ("memsys", Test_memsys.suite);
      ("port", Test_port.suite);
      ("sync-block", Test_sync_block.suite);
      ("plan", Test_plan.suite);
      ("graph-gen", Test_graph_gen.suite);
      ("workloads", Test_workloads.suite);
      ("mutator", Test_mutator.suite);
      ("cheney-seq", Test_cheney_seq.suite);
      ("baselines", Test_baselines.suite);
      ("swgc", Test_swgc.suite);
      ("coprocessor", Test_coprocessor.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("golden", Test_golden.suite);
      ("concurrent", Test_concurrent.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("experiment", Test_experiment.suite);
      ("kernel", Test_kernel.suite);
      ("compiled", Test_compiled.suite);
      ("bsp", Test_bsp.suite);
      ("banked", Test_banked.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("fault", Test_fault.suite);
      ("sanitizer", Test_sanitizer.suite);
      ("mutations", Mutations.suite);
      ("model", Test_model.suite);
    ]
