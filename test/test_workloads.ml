(* Tests for the eight named workloads. *)

module Workloads = Hsgc_objgraph.Workloads
module Plan = Hsgc_objgraph.Plan
module Heap = Hsgc_heap.Heap
module Verify = Hsgc_heap.Verify
module Cheney_seq = Hsgc_core.Cheney_seq

let test_names_unique () =
  let names = List.map (fun w -> w.Workloads.name) Workloads.all in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "eight distinct workloads" 8 (List.length sorted)

let test_find () =
  Alcotest.(check bool) "db found" true (Workloads.find "db" <> None);
  Alcotest.(check bool) "unknown rejected" true (Workloads.find "nope" = None);
  match Workloads.find "javac" with
  | Some w -> Alcotest.(check string) "name" "javac" w.Workloads.name
  | None -> Alcotest.fail "javac missing"

let test_all_build_and_collect () =
  List.iter
    (fun w ->
      let plan = w.Workloads.build ~scale:0.02 ~seed:11 in
      Alcotest.(check bool)
        (w.Workloads.name ^ " has objects")
        true
        (Plan.n_objects plan > 0);
      Alcotest.(check bool)
        (w.Workloads.name ^ " has roots")
        true
        (Plan.n_roots plan > 0);
      Alcotest.(check bool)
        (w.Workloads.name ^ " live <= total")
        true
        (Plan.live_words plan <= Plan.size_words plan);
      (* every workload includes garbage *)
      Alcotest.(check bool)
        (w.Workloads.name ^ " has garbage")
        true
        (Plan.live_words plan < Plan.size_words plan);
      let heap = Plan.materialize plan in
      let pre = Verify.snapshot heap in
      ignore (Cheney_seq.collect heap);
      match Verify.check_collection ~pre heap with
      | Ok () -> ()
      | Error f ->
        Alcotest.failf "%s: %a" w.Workloads.name Verify.pp_failure f)
    Workloads.all

let test_deterministic_in_seed () =
  let snap seed =
    let heap = Workloads.build_heap ~scale:0.02 ~seed Workloads.javacc in
    Verify.snapshot heap
  in
  Alcotest.(check bool) "same seed same graph" true
    (Verify.equal_snapshot (snap 5) (snap 5));
  Alcotest.(check bool) "different seed different graph" false
    (Verify.equal_snapshot (snap 5) (snap 6))

let test_scale_grows () =
  let objs scale =
    Plan.n_objects (Workloads.db.Workloads.build ~scale ~seed:1)
  in
  Alcotest.(check bool) "scale 0.2 > scale 0.05" true (objs 0.2 > objs 0.05)

let test_shapes () =
  (* Structural signatures that drive the paper's per-benchmark behavior. *)
  let plan name =
    (Option.get (Workloads.find name)).Workloads.build ~scale:0.05 ~seed:7
  in
  (* search: live graph is a pure chain — max pi of live objects is 1 *)
  let p = plan "search" in
  let max_live_pi = ref 0 in
  let seen = Array.make (Plan.n_objects p) false in
  let rec visit id =
    if id >= 0 && not seen.(id) then begin
      seen.(id) <- true;
      max_live_pi := max !max_live_pi (Plan.pi_of p id);
      for s = 0 to Plan.pi_of p id - 1 do
        visit (Plan.child_of p id s)
      done
    end
  in
  Array.iter visit (Plan.roots p);
  Alcotest.(check int) "search live graph is linear" 1 !max_live_pi;
  (* compress: contains a handful of large arrays *)
  let p = plan "compress" in
  let big = ref 0 in
  Plan.iter_objects p (fun id -> if Plan.delta_of p id > 50 then incr big);
  Alcotest.(check bool) "compress has large arrays" true (!big >= 3);
  (* cup: three-ish layers, tens of thousands of leaves at full scale;
     at scale 0.05 still wide *)
  let p = plan "cup" in
  Alcotest.(check bool) "cup is wide" true (Plan.n_objects p > 2000)

let test_build_heap_defaults () =
  let heap = Workloads.build_heap ~scale:0.02 Workloads.jlisp in
  Alcotest.(check bool) "heap populated" true (Heap.root_count heap > 0)

let suite =
  [
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "all build and collect" `Slow test_all_build_and_collect;
    Alcotest.test_case "deterministic in seed" `Quick test_deterministic_in_seed;
    Alcotest.test_case "scale grows" `Quick test_scale_grows;
    Alcotest.test_case "shape signatures" `Quick test_shapes;
    Alcotest.test_case "build_heap defaults" `Quick test_build_heap_defaults;
  ]
