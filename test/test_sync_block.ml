(* Tests for the synchronization block. *)

module SB = Hsgc_hwsync.Sync_block
module Diag = Hsgc_sanitizer.Diag
module Hooks = Hsgc_sanitizer.Hooks
module San = Hsgc_sanitizer.Sanitizer

let create = SB.create ?hooks:None

(* Protocol violations now raise [Diag.Violation] with cycle/core/lockset
   context; the context fields vary, so expectations match the check
   kind rather than the whole record. *)
let expect_violation name check f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a %s violation" name (Diag.check_name check)
  | exception Diag.Violation d ->
    Alcotest.(check string) name (Diag.check_name check) (Diag.check_name d.Diag.check)

let test_scan_free_registers () =
  let sb = create ~n_cores:4 () in
  SB.set_scan sb 100;
  SB.set_free sb 200;
  Alcotest.(check int) "scan" 100 (SB.scan sb);
  Alcotest.(check int) "free" 200 (SB.free sb)

let test_scan_lock_exclusion () =
  let sb = create ~n_cores:4 () in
  Alcotest.(check bool) "core0 acquires" true (SB.try_lock_scan sb ~core:0);
  Alcotest.(check bool) "core1 blocked" false (SB.try_lock_scan sb ~core:1);
  Alcotest.(check (option int)) "owner" (Some 0) (SB.scan_lock_owner sb);
  SB.unlock_scan sb ~core:0;
  Alcotest.(check bool) "core1 acquires after release" true
    (SB.try_lock_scan sb ~core:1)

let test_advance_scan_requires_lock () =
  let sb = create ~n_cores:2 () in
  SB.set_scan sb 10;
  expect_violation "advance without lock" Diag.Scan_protocol (fun () ->
      SB.advance_scan sb ~core:0 5);
  ignore (SB.try_lock_scan sb ~core:0);
  SB.advance_scan sb ~core:0 5;
  Alcotest.(check int) "advanced" 15 (SB.scan sb)

let test_free_lock_and_claim () =
  let sb = create ~n_cores:2 () in
  SB.set_free sb 50;
  ignore (SB.try_lock_free sb ~core:1);
  Alcotest.(check int) "claim returns old free" 50 (SB.claim_free sb ~core:1 8);
  Alcotest.(check int) "free advanced" 58 (SB.free sb);
  Alcotest.(check bool) "other core blocked" false (SB.try_lock_free sb ~core:0);
  SB.unlock_free sb ~core:1;
  Alcotest.(check bool) "acquirable again" true (SB.try_lock_free sb ~core:0)

let test_claim_free_requires_lock () =
  let sb = create ~n_cores:2 () in
  expect_violation "claim without lock" Diag.Free_protocol (fun () ->
      ignore (SB.claim_free sb ~core:0 4))

let test_lock_reentry_rejected () =
  let sb = create ~n_cores:2 () in
  ignore (SB.try_lock_scan sb ~core:0);
  expect_violation "scan re-entry" Diag.Lock_state (fun () ->
      ignore (SB.try_lock_scan sb ~core:0))

let test_lock_order_enforced () =
  let sb = create ~n_cores:2 () in
  (* Holding a header lock forbids acquiring scan (scan < header). *)
  ignore (SB.try_lock_header sb ~core:0 ~addr:42);
  expect_violation "header then scan" Diag.Lock_order (fun () ->
      ignore (SB.try_lock_scan sb ~core:0));
  SB.unlock_header sb ~core:0;
  (* Holding free forbids acquiring a header (header < free). *)
  ignore (SB.try_lock_free sb ~core:0);
  expect_violation "free then header" Diag.Lock_order (fun () ->
      ignore (SB.try_lock_header sb ~core:0 ~addr:1))

let test_lock_order_scan_after_free () =
  let sb = create ~n_cores:2 () in
  (* The full ordering also forbids scan while holding free. *)
  ignore (SB.try_lock_free sb ~core:1);
  expect_violation "free then scan" Diag.Lock_order (fun () ->
      ignore (SB.try_lock_scan sb ~core:1))

let test_violation_carries_context () =
  let hooks = Hooks.create () in
  let sb = SB.create ~hooks ~n_cores:2 () in
  hooks.Hooks.cycle <- 1234;
  ignore (SB.try_lock_header sb ~core:1 ~addr:42);
  match SB.try_lock_scan sb ~core:1 with
  | _ -> Alcotest.fail "expected a violation"
  | exception Diag.Violation d ->
    Alcotest.(check int) "cycle recorded" 1234 d.Diag.cycle;
    Alcotest.(check int) "core recorded" 1 d.Diag.core;
    Alcotest.(check string) "lockset rendered" "{hdr:42}" d.Diag.locks

let test_header_lock_conflict () =
  let sb = create ~n_cores:4 () in
  Alcotest.(check bool) "core0 locks 42" true (SB.try_lock_header sb ~core:0 ~addr:42);
  Alcotest.(check bool) "core1 blocked on 42" false
    (SB.try_lock_header sb ~core:1 ~addr:42);
  Alcotest.(check bool) "core1 locks 43" true (SB.try_lock_header sb ~core:1 ~addr:43);
  Alcotest.(check (option int)) "core0 register" (Some 42)
    (SB.header_lock_of sb ~core:0);
  SB.unlock_header sb ~core:0;
  Alcotest.(check bool) "42 free again" true (SB.try_lock_header sb ~core:2 ~addr:42)

let test_header_lock_one_per_core () =
  let sb = create ~n_cores:2 () in
  ignore (SB.try_lock_header sb ~core:0 ~addr:1);
  expect_violation "second header lock" Diag.Lock_state (fun () ->
      ignore (SB.try_lock_header sb ~core:0 ~addr:2))

let test_header_lock_null_rejected () =
  let sb = create ~n_cores:2 () in
  expect_violation "null header" Diag.Null_header (fun () ->
      ignore (SB.try_lock_header sb ~core:0 ~addr:0))

let test_busy_bits () =
  let sb = create ~n_cores:3 () in
  Alcotest.(check bool) "none busy" false (SB.any_busy sb);
  SB.set_busy sb ~core:1 true;
  Alcotest.(check bool) "any busy" true (SB.any_busy sb);
  Alcotest.(check bool) "busy 1" true (SB.busy sb ~core:1);
  Alcotest.(check bool) "others clear except 1" true (SB.none_busy_except sb ~core:1);
  Alcotest.(check bool) "not clear from 0's view" false
    (SB.none_busy_except sb ~core:0);
  SB.set_busy sb ~core:1 false;
  Alcotest.(check bool) "cleared" false (SB.any_busy sb)

let test_barrier_all_arrive () =
  let sb = create ~n_cores:3 () in
  Alcotest.(check bool) "0 waits" false (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 waits" false (SB.barrier_arrive sb ~core:1);
  (* Last arrival opens the barrier and passes immediately. *)
  Alcotest.(check bool) "2 passes" true (SB.barrier_arrive sb ~core:2);
  Alcotest.(check bool) "0 passes" true (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 passes" true (SB.barrier_arrive sb ~core:1)

let test_barrier_reusable () =
  let sb = create ~n_cores:2 () in
  (* round 1 *)
  ignore (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 opens round 1" true (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 passes round 1" true (SB.barrier_arrive sb ~core:0);
  (* round 2 *)
  Alcotest.(check bool) "0 waits round 2" false (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 opens round 2" true (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 passes round 2" true (SB.barrier_arrive sb ~core:0)

let test_barrier_early_rearrival () =
  let sb = create ~n_cores:2 () in
  ignore (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 opens" true (SB.barrier_arrive sb ~core:1);
  (* Core 1 races ahead to the next barrier before core 0 passed the
     first: it must wait for the drain. *)
  Alcotest.(check bool) "1 early re-arrival waits" false
    (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 passes first barrier" true (SB.barrier_arrive sb ~core:0);
  (* Now the next round can form. *)
  Alcotest.(check bool) "1 waits in round 2" false (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 opens round 2" true (SB.barrier_arrive sb ~core:0)

let test_single_core_barrier () =
  let sb = create ~n_cores:1 () in
  Alcotest.(check bool) "sole core passes" true (SB.barrier_arrive sb ~core:0)

let test_assert_no_locks () =
  let sb = create ~n_cores:2 () in
  SB.assert_no_locks sb ~core:0;
  ignore (SB.try_lock_scan sb ~core:0);
  expect_violation "holds scan" Diag.Locks_at_barrier (fun () ->
      SB.assert_no_locks sb ~core:0)

let test_bad_core_index () =
  let sb = create ~n_cores:2 () in
  Alcotest.check_raises "core out of range"
    (Invalid_argument "Sync_block: bad core index") (fun () ->
      ignore (SB.try_lock_scan sb ~core:5))

(* With a sanitizer attached, the paper's same-cycle release→re-acquire
   handoff (static priority: a lock released by a lower-index core is
   acquirable by a higher-index core in the same cycle) must stay
   silent — it is the protocol working as designed. *)
let test_same_cycle_handoff_silent () =
  let hooks = Hooks.create () in
  let sb = SB.create ~hooks ~n_cores:2 () in
  let san = San.create ~mode:San.Check ~mem_words:64 ~n_cores:2 ~header_words:2 hooks in
  hooks.Hooks.cycle <- 7;
  (* Registers as at the start of a scan loop: gray region [8, 32). *)
  SB.set_scan sb 8;
  SB.set_free sb 32;
  (* Same cycle: core 0 releases, core 1 acquires — scan lock... *)
  Alcotest.(check bool) "core0 takes scan" true (SB.try_lock_scan sb ~core:0);
  SB.advance_scan sb ~core:0 4;
  SB.unlock_scan sb ~core:0;
  Alcotest.(check bool) "core1 takes scan same cycle" true
    (SB.try_lock_scan sb ~core:1);
  SB.advance_scan sb ~core:1 4;
  SB.unlock_scan sb ~core:1;
  (* ... the free lock ... *)
  ignore (SB.try_lock_free sb ~core:0);
  ignore (SB.claim_free sb ~core:0 4);
  SB.unlock_free sb ~core:0;
  Alcotest.(check bool) "core1 takes free same cycle" true
    (SB.try_lock_free sb ~core:1);
  ignore (SB.claim_free sb ~core:1 4);
  SB.unlock_free sb ~core:1;
  (* ... and a header lock on the same address. *)
  ignore (SB.try_lock_header sb ~core:0 ~addr:10);
  SB.unlock_header sb ~core:0;
  Alcotest.(check bool) "core1 locks same header same cycle" true
    (SB.try_lock_header sb ~core:1 ~addr:10);
  SB.unlock_header sb ~core:1;
  Alcotest.(check bool) "sanitizer silent" true (San.is_silent san);
  Alcotest.(check int) "no findings" 0 (San.total san)

(* The sanitizer's own mirror of the lock-order rule: driving the hook
   record directly (as the mutation harness does) flags an out-of-order
   acquisition even when the sync block itself is bypassed. *)
let test_sanitizer_flags_lock_order () =
  let hooks = Hooks.create () in
  let san = San.create ~mode:San.Check ~mem_words:64 ~n_cores:2 ~header_words:2 hooks in
  hooks.Hooks.lock_acquired ~lock:Hooks.header_lock ~core:0 ~addr:8;
  hooks.Hooks.lock_acquired ~lock:Hooks.scan_lock ~core:0 ~addr:(-1);
  Alcotest.(check bool) "flagged" false (San.is_silent san);
  match San.findings san with
  | d :: _ ->
    Alcotest.(check string) "lock-order" (Diag.check_name Diag.Lock_order)
      (Diag.check_name d.Diag.check)
  | [] -> Alcotest.fail "no finding recorded"

let suite =
  [
    Alcotest.test_case "scan/free registers" `Quick test_scan_free_registers;
    Alcotest.test_case "scan lock exclusion" `Quick test_scan_lock_exclusion;
    Alcotest.test_case "advance requires lock" `Quick test_advance_scan_requires_lock;
    Alcotest.test_case "free lock and claim" `Quick test_free_lock_and_claim;
    Alcotest.test_case "claim requires lock" `Quick test_claim_free_requires_lock;
    Alcotest.test_case "lock re-entry rejected" `Quick test_lock_reentry_rejected;
    Alcotest.test_case "lock order enforced" `Quick test_lock_order_enforced;
    Alcotest.test_case "lock order scan after free" `Quick
      test_lock_order_scan_after_free;
    Alcotest.test_case "violation carries context" `Quick
      test_violation_carries_context;
    Alcotest.test_case "header lock conflict" `Quick test_header_lock_conflict;
    Alcotest.test_case "one header lock per core" `Quick test_header_lock_one_per_core;
    Alcotest.test_case "null header rejected" `Quick test_header_lock_null_rejected;
    Alcotest.test_case "busy bits" `Quick test_busy_bits;
    Alcotest.test_case "barrier all arrive" `Quick test_barrier_all_arrive;
    Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
    Alcotest.test_case "barrier early re-arrival" `Quick test_barrier_early_rearrival;
    Alcotest.test_case "single-core barrier" `Quick test_single_core_barrier;
    Alcotest.test_case "assert_no_locks" `Quick test_assert_no_locks;
    Alcotest.test_case "bad core index" `Quick test_bad_core_index;
    Alcotest.test_case "same-cycle handoff silent" `Quick
      test_same_cycle_handoff_silent;
    Alcotest.test_case "sanitizer flags lock order" `Quick
      test_sanitizer_flags_lock_order;
  ]
