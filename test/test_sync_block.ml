(* Tests for the synchronization block. *)

module SB = Hsgc_hwsync.Sync_block

let test_scan_free_registers () =
  let sb = SB.create ~n_cores:4 in
  SB.set_scan sb 100;
  SB.set_free sb 200;
  Alcotest.(check int) "scan" 100 (SB.scan sb);
  Alcotest.(check int) "free" 200 (SB.free sb)

let test_scan_lock_exclusion () =
  let sb = SB.create ~n_cores:4 in
  Alcotest.(check bool) "core0 acquires" true (SB.try_lock_scan sb ~core:0);
  Alcotest.(check bool) "core1 blocked" false (SB.try_lock_scan sb ~core:1);
  Alcotest.(check (option int)) "owner" (Some 0) (SB.scan_lock_owner sb);
  SB.unlock_scan sb ~core:0;
  Alcotest.(check bool) "core1 acquires after release" true
    (SB.try_lock_scan sb ~core:1)

let test_advance_scan_requires_lock () =
  let sb = SB.create ~n_cores:2 in
  SB.set_scan sb 10;
  Alcotest.check_raises "advance without lock"
    (Invalid_argument "Sync_block: advance_scan without lock") (fun () ->
      SB.advance_scan sb ~core:0 5);
  ignore (SB.try_lock_scan sb ~core:0);
  SB.advance_scan sb ~core:0 5;
  Alcotest.(check int) "advanced" 15 (SB.scan sb)

let test_free_lock_and_claim () =
  let sb = SB.create ~n_cores:2 in
  SB.set_free sb 50;
  ignore (SB.try_lock_free sb ~core:1);
  Alcotest.(check int) "claim returns old free" 50 (SB.claim_free sb ~core:1 8);
  Alcotest.(check int) "free advanced" 58 (SB.free sb);
  Alcotest.(check bool) "other core blocked" false (SB.try_lock_free sb ~core:0);
  SB.unlock_free sb ~core:1;
  Alcotest.(check bool) "acquirable again" true (SB.try_lock_free sb ~core:0)

let test_lock_reentry_rejected () =
  let sb = SB.create ~n_cores:2 in
  ignore (SB.try_lock_scan sb ~core:0);
  Alcotest.check_raises "scan re-entry"
    (Invalid_argument "Sync_block: scan lock re-entry") (fun () ->
      ignore (SB.try_lock_scan sb ~core:0))

let test_lock_order_enforced () =
  let sb = SB.create ~n_cores:2 in
  (* Holding a header lock forbids acquiring scan (scan < header). *)
  ignore (SB.try_lock_header sb ~core:0 ~addr:42);
  Alcotest.check_raises "header then scan"
    (Invalid_argument "Sync_block: lock-order violation acquiring scan")
    (fun () -> ignore (SB.try_lock_scan sb ~core:0));
  SB.unlock_header sb ~core:0;
  (* Holding free forbids acquiring a header (header < free). *)
  ignore (SB.try_lock_free sb ~core:0);
  Alcotest.check_raises "free then header"
    (Invalid_argument "Sync_block: lock-order violation acquiring header after free")
    (fun () -> ignore (SB.try_lock_header sb ~core:0 ~addr:1))

let test_header_lock_conflict () =
  let sb = SB.create ~n_cores:4 in
  Alcotest.(check bool) "core0 locks 42" true (SB.try_lock_header sb ~core:0 ~addr:42);
  Alcotest.(check bool) "core1 blocked on 42" false
    (SB.try_lock_header sb ~core:1 ~addr:42);
  Alcotest.(check bool) "core1 locks 43" true (SB.try_lock_header sb ~core:1 ~addr:43);
  Alcotest.(check (option int)) "core0 register" (Some 42)
    (SB.header_lock_of sb ~core:0);
  SB.unlock_header sb ~core:0;
  Alcotest.(check bool) "42 free again" true (SB.try_lock_header sb ~core:2 ~addr:42)

let test_header_lock_one_per_core () =
  let sb = SB.create ~n_cores:2 in
  ignore (SB.try_lock_header sb ~core:0 ~addr:1);
  Alcotest.check_raises "second header lock"
    (Invalid_argument "Sync_block: header lock re-entry (one header lock per core)")
    (fun () -> ignore (SB.try_lock_header sb ~core:0 ~addr:2))

let test_header_lock_null_rejected () =
  let sb = SB.create ~n_cores:2 in
  Alcotest.check_raises "null header"
    (Invalid_argument "Sync_block: cannot lock the null header") (fun () ->
      ignore (SB.try_lock_header sb ~core:0 ~addr:0))

let test_busy_bits () =
  let sb = SB.create ~n_cores:3 in
  Alcotest.(check bool) "none busy" false (SB.any_busy sb);
  SB.set_busy sb ~core:1 true;
  Alcotest.(check bool) "any busy" true (SB.any_busy sb);
  Alcotest.(check bool) "busy 1" true (SB.busy sb ~core:1);
  Alcotest.(check bool) "others clear except 1" true (SB.none_busy_except sb ~core:1);
  Alcotest.(check bool) "not clear from 0's view" false
    (SB.none_busy_except sb ~core:0);
  SB.set_busy sb ~core:1 false;
  Alcotest.(check bool) "cleared" false (SB.any_busy sb)

let test_barrier_all_arrive () =
  let sb = SB.create ~n_cores:3 in
  Alcotest.(check bool) "0 waits" false (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 waits" false (SB.barrier_arrive sb ~core:1);
  (* Last arrival opens the barrier and passes immediately. *)
  Alcotest.(check bool) "2 passes" true (SB.barrier_arrive sb ~core:2);
  Alcotest.(check bool) "0 passes" true (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 passes" true (SB.barrier_arrive sb ~core:1)

let test_barrier_reusable () =
  let sb = SB.create ~n_cores:2 in
  (* round 1 *)
  ignore (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 opens round 1" true (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 passes round 1" true (SB.barrier_arrive sb ~core:0);
  (* round 2 *)
  Alcotest.(check bool) "0 waits round 2" false (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 opens round 2" true (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 passes round 2" true (SB.barrier_arrive sb ~core:0)

let test_barrier_early_rearrival () =
  let sb = SB.create ~n_cores:2 in
  ignore (SB.barrier_arrive sb ~core:0);
  Alcotest.(check bool) "1 opens" true (SB.barrier_arrive sb ~core:1);
  (* Core 1 races ahead to the next barrier before core 0 passed the
     first: it must wait for the drain. *)
  Alcotest.(check bool) "1 early re-arrival waits" false
    (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 passes first barrier" true (SB.barrier_arrive sb ~core:0);
  (* Now the next round can form. *)
  Alcotest.(check bool) "1 waits in round 2" false (SB.barrier_arrive sb ~core:1);
  Alcotest.(check bool) "0 opens round 2" true (SB.barrier_arrive sb ~core:0)

let test_single_core_barrier () =
  let sb = SB.create ~n_cores:1 in
  Alcotest.(check bool) "sole core passes" true (SB.barrier_arrive sb ~core:0)

let test_assert_no_locks () =
  let sb = SB.create ~n_cores:2 in
  SB.assert_no_locks sb ~core:0;
  ignore (SB.try_lock_scan sb ~core:0);
  Alcotest.check_raises "holds scan" (Failure "core still holds scan lock")
    (fun () -> SB.assert_no_locks sb ~core:0)

let test_bad_core_index () =
  let sb = SB.create ~n_cores:2 in
  Alcotest.check_raises "core out of range"
    (Invalid_argument "Sync_block: bad core index") (fun () ->
      ignore (SB.try_lock_scan sb ~core:5))

let suite =
  [
    Alcotest.test_case "scan/free registers" `Quick test_scan_free_registers;
    Alcotest.test_case "scan lock exclusion" `Quick test_scan_lock_exclusion;
    Alcotest.test_case "advance requires lock" `Quick test_advance_scan_requires_lock;
    Alcotest.test_case "free lock and claim" `Quick test_free_lock_and_claim;
    Alcotest.test_case "lock re-entry rejected" `Quick test_lock_reentry_rejected;
    Alcotest.test_case "lock order enforced" `Quick test_lock_order_enforced;
    Alcotest.test_case "header lock conflict" `Quick test_header_lock_conflict;
    Alcotest.test_case "one header lock per core" `Quick test_header_lock_one_per_core;
    Alcotest.test_case "null header rejected" `Quick test_header_lock_null_rejected;
    Alcotest.test_case "busy bits" `Quick test_busy_bits;
    Alcotest.test_case "barrier all arrive" `Quick test_barrier_all_arrive;
    Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
    Alcotest.test_case "barrier early re-arrival" `Quick test_barrier_early_rearrival;
    Alcotest.test_case "single-core barrier" `Quick test_single_core_barrier;
    Alcotest.test_case "assert_no_locks" `Quick test_assert_no_locks;
    Alcotest.test_case "bad core index" `Quick test_bad_core_index;
  ]
