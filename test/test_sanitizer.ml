(* Tests for the machine sanitizer proper: modes, deduplication, strict
   aborts, detach, and the qcheck silence property over real
   collections (1–16 cores, every built-in workload, with and without
   delay-class fault injection). *)

module Diag = Hsgc_sanitizer.Diag
module Hooks = Hsgc_sanitizer.Hooks
module San = Hsgc_sanitizer.Sanitizer
module Coprocessor = Hsgc_coproc.Coprocessor
module Workloads = Hsgc_objgraph.Workloads
module Injector = Hsgc_fault.Injector

let make ?(mode = San.Check) ?(n_cores = 4) () =
  let hooks = Hooks.create () in
  let san = San.create ~mode ~mem_words:128 ~n_cores ~header_words:2 hooks in
  (hooks, san)

let test_modes () =
  Alcotest.(check string) "off" "off" (San.mode_to_string San.Off);
  Alcotest.(check string) "check" "check" (San.mode_to_string San.Check);
  Alcotest.(check string) "strict" "strict" (San.mode_to_string San.Strict);
  List.iter
    (fun (s, expect) ->
      let got = Option.map San.mode_to_string (San.mode_of_string s) in
      Alcotest.(check (option string)) s expect got)
    [
      ("off", Some "off"); ("check", Some "check"); ("on", Some "check");
      ("strict", Some "strict"); ("bogus", None);
    ]

let test_off_mode_inert () =
  let hooks, san = make ~mode:San.Off () in
  Alcotest.(check bool) "hooks stay off" false hooks.Hooks.on;
  (* The nop closures are still installed; firing them finds nothing. *)
  hooks.Hooks.word_written ~core:0 ~base:8 ~addr:8;
  Alcotest.(check bool) "silent" true (San.is_silent san)

let test_dedup_and_total () =
  let hooks, san = make () in
  (* The same unprotected store, reported three times: every repeat
     counts toward the total but only one finding is kept. *)
  for _ = 1 to 3 do
    hooks.Hooks.word_written ~core:0 ~base:8 ~addr:8
  done;
  Alcotest.(check int) "total counts repeats" 3 (San.total san);
  Alcotest.(check int) "kept deduplicated" 1 (List.length (San.findings san));
  (* A different address is a different finding. *)
  hooks.Hooks.word_written ~core:0 ~base:16 ~addr:16;
  Alcotest.(check int) "second site kept" 2 (List.length (San.findings san))

let test_kept_is_capped () =
  let hooks, san = make () in
  for addr = 0 to 99 do
    hooks.Hooks.word_written ~core:0 ~base:addr ~addr
  done;
  Alcotest.(check int) "all counted" 100 (San.total san);
  Alcotest.(check int) "kept capped at 64" 64 (List.length (San.findings san))

let test_strict_raises () =
  let hooks, _ = make ~mode:San.Strict () in
  match hooks.Hooks.word_written ~core:0 ~base:8 ~addr:8 with
  | () -> Alcotest.fail "strict mode did not raise"
  | exception Diag.Violation d ->
    Alcotest.(check string) "check kind"
      (Diag.check_name Diag.Unprotected_header)
      (Diag.check_name d.Diag.check)

let test_detach () =
  let hooks, san = make () in
  Alcotest.(check bool) "attached" true hooks.Hooks.on;
  San.detach san;
  Alcotest.(check bool) "detached" false hooks.Hooks.on

let test_out_of_range_access () =
  let hooks, san = make () in
  hooks.Hooks.word_written ~core:0 ~base:4096 ~addr:4096;
  match San.findings san with
  | [ d ] ->
    Alcotest.(check string) "mem-protocol"
      (Diag.check_name Diag.Mem_protocol)
      (Diag.check_name d.Diag.check)
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

let test_too_many_cores_rejected () =
  Alcotest.check_raises "251 cores"
    (Invalid_argument "Sanitizer.create: too many cores") (fun () ->
      ignore
        (San.create ~mode:San.Check ~mem_words:8 ~n_cores:251 ~header_words:2
           (Hooks.create ())))

let test_stats_report_findings () =
  (* End to end through the coprocessor: a clean collection reports an
     empty findings list and a zero total in its gc_stats. *)
  let w = Option.get (Workloads.find "jlisp") in
  let heap = Workloads.build_heap ~scale:0.1 ~seed:3 w in
  let stats =
    Coprocessor.collect
      (Coprocessor.config ~sanitize:San.Check ~n_cores:4 ())
      heap
  in
  Alcotest.(check int) "no findings" 0 (List.length stats.Coprocessor.sanitizer_findings);
  Alcotest.(check int) "zero total" 0 stats.Coprocessor.sanitizer_total

(* The silence property: on every built-in workload, at any core count
   1–16, with or without delay-class fault injection, a collection under
   strict sanitizing completes without a single finding — and verifies.
   Delay faults only move cycles around; if one ever surfaces as a
   protocol violation the sanitizer has a false positive. *)
let silence_property =
  let open QCheck in
  let gen =
    Gen.(
      quad (int_range 1 16)
        (int_range 0 (List.length Workloads.all - 1))
        (oneof [ return None; map (fun i -> Some i) (int_range 0 2) ])
        (int_range 0 1000))
  in
  let arb =
    make
      ~print:(fun (cores, wi, delay, seed) ->
        Printf.sprintf "cores=%d workload=%s delay=%s seed=%d" cores
          (List.nth Workloads.all wi).Workloads.name
          (match delay with
          | None -> "none"
          | Some i -> string_of_float (List.nth [ 0.01; 0.05; 0.1 ] i))
          seed)
      gen
  in
  Test.make ~count:40 ~name:"sanitizer silent on legal executions" arb
    (fun (n_cores, wi, delay, seed) ->
      let w = List.nth Workloads.all wi in
      let faults =
        Option.map
          (fun i ->
            Injector.of_class `Delay ~seed
              ~intensity:(List.nth [ 0.01; 0.05; 0.1 ] i)
              ())
          delay
      in
      let heap = Workloads.build_heap ~scale:0.04 ~seed w in
      let stats =
        Coprocessor.collect
          (Coprocessor.config ?faults ~sanitize:San.Strict ~n_cores ())
          heap
      in
      stats.Coprocessor.sanitizer_total = 0)

let suite =
  [
    Alcotest.test_case "mode strings" `Quick test_modes;
    Alcotest.test_case "off mode inert" `Quick test_off_mode_inert;
    Alcotest.test_case "dedup and total" `Quick test_dedup_and_total;
    Alcotest.test_case "kept list capped" `Quick test_kept_is_capped;
    Alcotest.test_case "strict raises" `Quick test_strict_raises;
    Alcotest.test_case "detach" `Quick test_detach;
    Alcotest.test_case "out-of-range access" `Quick test_out_of_range_access;
    Alcotest.test_case "too many cores rejected" `Quick
      test_too_many_cores_rejected;
    Alcotest.test_case "clean stats" `Quick test_stats_report_findings;
    QCheck_alcotest.to_alcotest silence_property;
  ]
