(* Tests for concurrent collection (mutator running during the cycle). *)

module Heap = Hsgc_heap.Heap
module Verify = Hsgc_heap.Verify
module Coprocessor = Hsgc_coproc.Coprocessor
module Concurrent = Hsgc_coproc.Concurrent
module Workloads = Hsgc_objgraph.Workloads

let config ?(n_cores = 4) ?(mutator_period = 3) ?(alloc_percent = 30) ?(seed = 7)
    () =
  {
    (Concurrent.default_config ~n_cores ()) with
    Concurrent.mutator_period;
    alloc_percent;
    seed;
  }

(* Run one concurrent cycle and check all its invariants:
   - the pre-existing graph (from the original roots) is isomorphic;
   - the new space is wall-to-wall well-formed;
   - every mutator-allocated object survived with the exact contents
     written. *)
let collect_checked ?n_cores ?alloc_percent ?seed heap =
  let orig_roots = Array.length heap.Heap.roots in
  let pre = Verify.snapshot heap in
  let stats = Concurrent.collect (config ?n_cores ?alloc_percent ?seed ()) heap in
  let all_roots = heap.Heap.roots in
  Heap.set_roots heap (Array.sub all_roots 0 orig_roots);
  let iso = Verify.equal_snapshot pre (Verify.snapshot heap) in
  Heap.set_roots heap all_roots;
  if not iso then Alcotest.fail "pre-existing graph not isomorphic";
  (match Verify.check_space heap with
  | Ok () -> ()
  | Error f -> Alcotest.failf "space: %a" Verify.pp_failure f);
  (match Concurrent.check_new_objects heap stats with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "new objects: %s" msg);
  stats

let test_basic_invariants () =
  let heap = Workloads.build_heap ~scale:0.1 ~seed:3 Workloads.javacc in
  let stats = collect_checked heap in
  Alcotest.(check bool) "mutator did work" true
    (stats.Concurrent.mutator_reads + stats.Concurrent.mutator_allocs > 0);
  Alcotest.(check int) "allocation count matches records"
    stats.Concurrent.mutator_allocs
    (List.length stats.Concurrent.new_objects)

let test_all_core_counts () =
  List.iter
    (fun n_cores ->
      let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.db in
      ignore (collect_checked ~n_cores heap))
    [ 1; 2; 4; 8; 16 ]

let test_pause_is_root_phase_only () =
  let heap = Workloads.build_heap ~scale:0.2 ~seed:3 Workloads.db in
  let stats = collect_checked heap in
  Alcotest.(check bool) "pause is tiny vs the whole cycle" true
    (stats.Concurrent.pause_cycles * 20 < stats.Concurrent.gc.Coprocessor.total_cycles);
  Alcotest.(check bool) "pause covers the root phase" true
    (stats.Concurrent.pause_cycles >= stats.Concurrent.gc.Coprocessor.root_cycles)

let test_allocations_survive_next_cycle () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:9 Workloads.jlisp in
  let stats = collect_checked heap in
  let allocated = stats.Concurrent.mutator_allocs in
  (* The register file was appended to the roots, so a follow-up
     stop-the-world collection must keep every register-reachable new
     object alive and verify cleanly. *)
  let pre = Verify.snapshot heap in
  let gc2 = Coprocessor.collect (Coprocessor.config ~n_cores:4 ()) heap in
  (match Verify.check_collection ~pre heap with
  | Ok () -> ()
  | Error f -> Alcotest.failf "follow-up STW cycle: %a" Verify.pp_failure f);
  Alcotest.(check bool) "next cycle sees a live heap" true
    (gc2.Coprocessor.live_objects > 0);
  Alcotest.(check bool) "some allocation happened" true (allocated > 0)

let test_heavy_allocation () =
  let heap = Workloads.build_heap ~scale:0.1 ~seed:11 Workloads.javacc in
  let stats = collect_checked ~alloc_percent:90 heap in
  Alcotest.(check bool) "many allocations" true (stats.Concurrent.mutator_allocs > 20)

let test_read_only_mutator () =
  let heap = Workloads.build_heap ~scale:0.1 ~seed:13 Workloads.javacc in
  let stats = collect_checked ~alloc_percent:0 heap in
  Alcotest.(check int) "no allocations" 0 stats.Concurrent.mutator_allocs;
  Alcotest.(check bool) "reads happened" true (stats.Concurrent.mutator_reads > 0)

let test_deterministic () =
  let run () =
    let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.db in
    let stats = Concurrent.collect (config ()) heap in
    ( stats.Concurrent.gc.Coprocessor.total_cycles,
      stats.Concurrent.mutator_allocs,
      stats.Concurrent.barrier_evacuations )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_barrier_evacuations_possible () =
  (* With a slow coprocessor (1 core) and a hot mutator, reads should
     catch gray objects and trigger barrier evacuations. *)
  let heap = Workloads.build_heap ~scale:0.2 ~seed:3 Workloads.db in
  let cfg =
    { (config ~n_cores:1 ~alloc_percent:0 ()) with Concurrent.mutator_period = 1 }
  in
  let orig_roots = Array.length heap.Heap.roots in
  let pre = Verify.snapshot heap in
  let stats = Concurrent.collect cfg heap in
  let all_roots = heap.Heap.roots in
  Heap.set_roots heap (Array.sub all_roots 0 orig_roots);
  Alcotest.(check bool) "still isomorphic" true
    (Verify.equal_snapshot pre (Verify.snapshot heap));
  Heap.set_roots heap all_roots;
  Alcotest.(check bool) "read barrier fired" true
    (stats.Concurrent.barrier_evacuations > 0)

let test_with_scan_unit () =
  (* Concurrent mode composes with sub-object work distribution. *)
  let heap = Workloads.build_heap ~scale:0.1 ~seed:3 Workloads.compress in
  let orig_roots = Array.length heap.Heap.roots in
  let pre = Verify.snapshot heap in
  let cfg =
    {
      (Concurrent.default_config ~n_cores:8 ()) with
      Concurrent.gc = Coprocessor.config ~scan_unit:16 ~n_cores:8 ();
    }
  in
  let stats = Concurrent.collect cfg heap in
  let all = heap.Heap.roots in
  Heap.set_roots heap (Array.sub all 0 orig_roots);
  Alcotest.(check bool) "isomorphic with pieces + mutator" true
    (Verify.equal_snapshot pre (Verify.snapshot heap));
  Heap.set_roots heap all;
  (match Verify.check_space heap with
  | Ok () -> ()
  | Error f -> Alcotest.failf "space: %a" Verify.pp_failure f);
  match Concurrent.check_new_objects heap stats with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_with_header_cache () =
  let heap = Workloads.build_heap ~scale:0.1 ~seed:3 Workloads.javac in
  let mem =
    Hsgc_memsim.Memsys.with_header_cache Hsgc_memsim.Memsys.default_config 512
  in
  let cfg =
    {
      (Concurrent.default_config ~n_cores:8 ()) with
      Concurrent.gc = Coprocessor.config ~mem ~n_cores:8 ();
    }
  in
  let orig_roots = Array.length heap.Heap.roots in
  let pre = Verify.snapshot heap in
  ignore (Concurrent.collect cfg heap);
  let all = heap.Heap.roots in
  Heap.set_roots heap (Array.sub all 0 orig_roots);
  Alcotest.(check bool) "isomorphic with cache + mutator" true
    (Verify.equal_snapshot pre (Verify.snapshot heap));
  Heap.set_roots heap all

let test_invalid_config () =
  let heap = Workloads.build_heap ~scale:0.02 ~seed:1 Workloads.jlisp in
  Alcotest.check_raises "bad period"
    (Invalid_argument "Concurrent.collect: period") (fun () ->
      ignore
        (Concurrent.collect
           { (Concurrent.default_config ()) with Concurrent.mutator_period = 0 }
           heap))

let suite =
  [
    Alcotest.test_case "basic invariants" `Quick test_basic_invariants;
    Alcotest.test_case "all core counts" `Quick test_all_core_counts;
    Alcotest.test_case "pause = root phase" `Quick test_pause_is_root_phase_only;
    Alcotest.test_case "allocations survive next cycle" `Quick
      test_allocations_survive_next_cycle;
    Alcotest.test_case "heavy allocation" `Quick test_heavy_allocation;
    Alcotest.test_case "read-only mutator" `Quick test_read_only_mutator;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "barrier evacuations" `Quick test_barrier_evacuations_possible;
    Alcotest.test_case "composes with scan-unit" `Quick test_with_scan_unit;
    Alcotest.test_case "composes with header cache" `Quick test_with_header_cache;
    Alcotest.test_case "invalid config" `Quick test_invalid_config;
  ]
