(* Tests for the semispace bump allocator. *)

module Semispace = Hsgc_heap.Semispace

let test_create () =
  let s = Semispace.create ~base:10 ~words:100 in
  Alcotest.(check int) "words" 100 (Semispace.words s);
  Alcotest.(check int) "used" 0 (Semispace.used s);
  Alcotest.(check int) "available" 100 (Semispace.available s)

let test_bump_sequence () =
  let s = Semispace.create ~base:10 ~words:100 in
  Alcotest.(check (option int)) "first" (Some 10) (Semispace.bump s 30);
  Alcotest.(check (option int)) "second" (Some 40) (Semispace.bump s 20);
  Alcotest.(check int) "used" 50 (Semispace.used s);
  Alcotest.(check int) "available" 50 (Semispace.available s)

let test_bump_exhaustion () =
  let s = Semispace.create ~base:0 ~words:10 in
  Alcotest.(check (option int)) "fits" (Some 0) (Semispace.bump s 10);
  Alcotest.(check (option int)) "full" None (Semispace.bump s 1);
  Alcotest.(check (option int)) "zero still fits" (Some 10) (Semispace.bump s 0)

let test_bump_too_big () =
  let s = Semispace.create ~base:0 ~words:10 in
  Alcotest.(check (option int)) "oversize" None (Semispace.bump s 11);
  Alcotest.(check int) "nothing consumed" 0 (Semispace.used s)

let test_reset () =
  let s = Semispace.create ~base:5 ~words:50 in
  ignore (Semispace.bump s 20);
  Semispace.reset s;
  Alcotest.(check int) "empty again" 0 (Semispace.used s);
  Alcotest.(check (option int)) "allocates from base" (Some 5) (Semispace.bump s 1)

let test_contains () =
  let s = Semispace.create ~base:10 ~words:5 in
  Alcotest.(check bool) "below" false (Semispace.contains s 9);
  Alcotest.(check bool) "base" true (Semispace.contains s 10);
  Alcotest.(check bool) "last" true (Semispace.contains s 14);
  Alcotest.(check bool) "limit" false (Semispace.contains s 15)

let test_invalid () =
  Alcotest.check_raises "negative words" (Invalid_argument "Semispace.create")
    (fun () -> ignore (Semispace.create ~base:0 ~words:(-1)));
  let s = Semispace.create ~base:0 ~words:10 in
  Alcotest.check_raises "negative bump" (Invalid_argument "Semispace.bump")
    (fun () -> ignore (Semispace.bump s (-1)))

let qcheck_bump_contiguous =
  QCheck.Test.make ~name:"bumps are contiguous and within bounds" ~count:300
    QCheck.(list (int_range 0 20))
    (fun sizes ->
      let s = Semispace.create ~base:3 ~words:100 in
      let expected = ref 3 in
      List.for_all
        (fun n ->
          match Semispace.bump s n with
          | Some a ->
            let ok = a = !expected && a + n <= 103 in
            expected := !expected + n;
            ok
          | None -> !expected + n > 103)
        sizes)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "bump sequence" `Quick test_bump_sequence;
    Alcotest.test_case "bump exhaustion" `Quick test_bump_exhaustion;
    Alcotest.test_case "bump too big" `Quick test_bump_too_big;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "invalid args" `Quick test_invalid;
    QCheck_alcotest.to_alcotest qcheck_bump_contiguous;
  ]
