(* Tests for the per-core memory buffers. *)

module Memsys = Hsgc_memsim.Memsys
module Port = Hsgc_memsim.Port

let mem () =
  Memsys.create
    {
      Memsys.header_load_latency = 3;
      body_load_latency = 2;
      store_latency = 1;
      bandwidth = 4;
      fifo_capacity = 8;
      header_cache_entries = 0;
    }

let test_load_lifecycle () =
  let m = mem () in
  let p = Port.create Port.Body_load in
  Alcotest.(check bool) "idle" true (Port.is_idle p);
  Memsys.begin_cycle m ~now:0;
  Alcotest.(check bool) "issue" true (Port.issue p m ~now:0 ~addr:42);
  Alcotest.(check bool) "busy after issue" false (Port.is_idle p);
  Alcotest.(check bool) "not ready yet" false (Port.load_ready p);
  Memsys.begin_cycle m ~now:1;
  Port.tick p m ~now:1;
  Alcotest.(check bool) "still in flight" false (Port.load_ready p);
  Memsys.begin_cycle m ~now:2;
  Port.tick p m ~now:2;
  Alcotest.(check bool) "ready at latency" true (Port.load_ready p);
  Port.consume p;
  Alcotest.(check bool) "idle after consume" true (Port.is_idle p)

let test_store_lifecycle () =
  let m = mem () in
  let p = Port.create Port.Header_store in
  Memsys.begin_cycle m ~now:0;
  Alcotest.(check bool) "issue" true (Port.issue p m ~now:0 ~addr:7);
  Alcotest.(check bool) "busy" false (Port.is_idle p);
  Memsys.begin_cycle m ~now:1;
  Port.tick p m ~now:1;
  Alcotest.(check bool) "idle after commit" true (Port.is_idle p)

let test_double_issue_rejected () =
  let m = mem () in
  let p = Port.create Port.Body_store in
  Memsys.begin_cycle m ~now:0;
  Alcotest.(check bool) "first" true (Port.issue p m ~now:0 ~addr:1);
  Alcotest.(check bool) "second rejected" false (Port.issue p m ~now:0 ~addr:2)

let test_bandwidth_retry () =
  (* Bandwidth 1: second port's request waits a cycle in the buffer. *)
  let m =
    Memsys.create
      {
        Memsys.header_load_latency = 3;
        body_load_latency = 2;
        store_latency = 1;
        bandwidth = 1;
        fifo_capacity = 8;
        header_cache_entries = 0;
      }
  in
  let p1 = Port.create Port.Body_load and p2 = Port.create Port.Body_load in
  Memsys.begin_cycle m ~now:0;
  Alcotest.(check bool) "p1 issue" true (Port.issue p1 m ~now:0 ~addr:1);
  Alcotest.(check bool) "p2 deposit accepted" true (Port.issue p2 m ~now:0 ~addr:2);
  (* p2 was deposited but memory rejected it this cycle; it retries. *)
  Memsys.begin_cycle m ~now:1;
  Port.tick p1 m ~now:1;
  Port.tick p2 m ~now:1;
  Memsys.begin_cycle m ~now:2;
  Port.tick p1 m ~now:2;
  Port.tick p2 m ~now:2;
  Alcotest.(check bool) "p1 ready at 2" true (Port.load_ready p1);
  Alcotest.(check bool) "p2 not yet (accepted at 1)" false (Port.load_ready p2);
  Memsys.begin_cycle m ~now:3;
  Port.tick p2 m ~now:3;
  Alcotest.(check bool) "p2 ready at 3" true (Port.load_ready p2)

let test_issue_immediate () =
  let p = Port.create Port.Header_load in
  Port.issue_immediate p;
  Alcotest.(check bool) "ready at once" true (Port.load_ready p);
  Port.consume p;
  Alcotest.(check bool) "idle" true (Port.is_idle p)

(* Buffer misuse raises a structured diagnostic carrying the port kind
   and owning core; expectations match the check kind, since the record
   also carries cycle/lockset context. *)
let expect_port_violation name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a port-protocol violation" name
  | exception Hsgc_sanitizer.Diag.Violation d ->
    Alcotest.(check string)
      name
      (Hsgc_sanitizer.Diag.check_name Hsgc_sanitizer.Diag.Port_protocol)
      (Hsgc_sanitizer.Diag.check_name d.Hsgc_sanitizer.Diag.check)

let test_issue_immediate_busy () =
  let m = mem () in
  let p = Port.create Port.Header_load in
  Memsys.begin_cycle m ~now:0;
  ignore (Port.issue p m ~now:0 ~addr:3);
  expect_port_violation "immediate on busy" (fun () -> Port.issue_immediate p)

let test_consume_not_ready () =
  let p = Port.create Port.Body_load in
  expect_port_violation "consume idle" (fun () -> Port.consume p)

let test_kind_predicates () =
  Alcotest.(check bool) "hl is load" true (Port.is_load Port.Header_load);
  Alcotest.(check bool) "hs not load" false (Port.is_load Port.Header_store);
  Alcotest.(check bool) "hl is header" true (Port.is_header Port.Header_load);
  Alcotest.(check bool) "bl not header" false (Port.is_header Port.Body_load)

let test_busy_addr () =
  let m = mem () in
  let p = Port.create Port.Body_load in
  Alcotest.(check (option int)) "idle none" None (Port.busy_addr p);
  Memsys.begin_cycle m ~now:0;
  ignore (Port.issue p m ~now:0 ~addr:55);
  Alcotest.(check (option int)) "in flight addr" (Some 55) (Port.busy_addr p)

let test_next_wake_in_flight () =
  (* No-overshoot contract: the published wake of an in-flight load is
     exactly its completion — nothing happens strictly before it, the
     data arrives exactly at it. *)
  let m = mem () in
  let p = Port.create Port.Body_load in
  Memsys.begin_cycle m ~now:0;
  ignore (Port.issue p m ~now:0 ~addr:42);
  match Port.next_wake p m ~now:0 with
  | None -> Alcotest.fail "in-flight load published no wake"
  | Some w ->
    Alcotest.(check bool) "wake is in the future" true (w > 0);
    for now = 1 to w - 1 do
      Memsys.begin_cycle m ~now;
      Port.tick p m ~now;
      if Port.load_ready p then
        Alcotest.failf "load completed at %d, before the published wake %d"
          now w
    done;
    Memsys.begin_cycle m ~now:w;
    Port.tick p m ~now:w;
    Alcotest.(check bool) "event exactly at the published wake" true
      (Port.load_ready p)

let test_next_wake_order_held () =
  (* A header load held by a pending header store to the same address
     publishes the store's commit cycle: acceptance is impossible before
     it and happens exactly at it. A slow store makes the window wide
     enough to mean something. *)
  let m =
    Memsys.create
      {
        Memsys.header_load_latency = 3;
        body_load_latency = 2;
        store_latency = 6;
        bandwidth = 4;
        fifo_capacity = 8;
        header_cache_entries = 0;
      }
  in
  let hs = Port.create Port.Header_store in
  let hl = Port.create Port.Header_load in
  Memsys.begin_cycle m ~now:0;
  ignore (Port.issue hs m ~now:0 ~addr:42);
  ignore (Port.issue hl m ~now:0 ~addr:42);
  Alcotest.(check bool) "load held by the comparator" true
    (Port.order_held hl m);
  match Port.next_wake hl m ~now:0 with
  | None -> Alcotest.fail "held header load published no wake"
  | Some w ->
    Alcotest.(check bool) "wake spans the store latency" true (w > 1);
    for now = 1 to w - 1 do
      Memsys.begin_cycle m ~now;
      Port.tick hs m ~now;
      Port.tick hl m ~now;
      if Port.in_flight_done hl <> min_int then
        Alcotest.failf "held load accepted at %d, before the published wake %d"
          now w
    done;
    Memsys.begin_cycle m ~now:w;
    Port.tick hs m ~now:w;
    Port.tick hl m ~now:w;
    Alcotest.(check bool) "accepted exactly at the published wake" true
      (Port.in_flight_done hl <> min_int)

let suite =
  [
    Alcotest.test_case "load lifecycle" `Quick test_load_lifecycle;
    Alcotest.test_case "store lifecycle" `Quick test_store_lifecycle;
    Alcotest.test_case "double issue rejected" `Quick test_double_issue_rejected;
    Alcotest.test_case "bandwidth retry" `Quick test_bandwidth_retry;
    Alcotest.test_case "issue_immediate" `Quick test_issue_immediate;
    Alcotest.test_case "issue_immediate busy" `Quick test_issue_immediate_busy;
    Alcotest.test_case "consume not ready" `Quick test_consume_not_ready;
    Alcotest.test_case "kind predicates" `Quick test_kind_predicates;
    Alcotest.test_case "busy_addr" `Quick test_busy_addr;
    Alcotest.test_case "next_wake: in-flight load" `Quick
      test_next_wake_in_flight;
    Alcotest.test_case "next_wake: order-held header load" `Quick
      test_next_wake_order_held;
  ]
