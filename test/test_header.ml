(* Tests for two-word header packing. *)

module Header = Hsgc_heap.Header

let state_t : Header.state Alcotest.testable =
  Alcotest.testable Header.pp_state Header.equal_state

let test_roundtrip_basic () =
  let w = Header.encode ~state:Gray ~pi:3 ~delta:7 in
  Alcotest.check state_t "state" Header.Gray (Header.state w);
  Alcotest.(check int) "pi" 3 (Header.pi w);
  Alcotest.(check int) "delta" 7 (Header.delta w)

let test_roundtrip_extremes () =
  List.iter
    (fun (pi, delta) ->
      let w = Header.encode ~state:White ~pi ~delta in
      Alcotest.(check int) "pi" pi (Header.pi w);
      Alcotest.(check int) "delta" delta (Header.delta w))
    [
      (0, 0);
      (Header.max_area, 0);
      (0, Header.max_area);
      (Header.max_area, Header.max_area);
    ]

let test_all_states () =
  List.iter
    (fun s ->
      let w = Header.encode ~state:s ~pi:1 ~delta:2 in
      Alcotest.check state_t "state roundtrip" s (Header.state w))
    [ Header.White; Header.Gray; Header.Black ]

let test_with_state () =
  let w = Header.encode ~state:White ~pi:5 ~delta:9 in
  let w' = Header.with_state w Header.Black in
  Alcotest.check state_t "new state" Header.Black (Header.state w');
  Alcotest.(check int) "pi preserved" 5 (Header.pi w');
  Alcotest.(check int) "delta preserved" 9 (Header.delta w')

let test_size () =
  Alcotest.(check int) "size_of" 12 (Header.size_of ~pi:4 ~delta:6);
  let w = Header.encode ~state:Gray ~pi:4 ~delta:6 in
  Alcotest.(check int) "size from word" 12 (Header.size w);
  Alcotest.(check int) "header_words" 2 Header.header_words

let test_out_of_range () =
  Alcotest.check_raises "pi too large"
    (Invalid_argument "Header.encode: pi out of range") (fun () ->
      ignore (Header.encode ~state:White ~pi:(Header.max_area + 1) ~delta:0));
  Alcotest.check_raises "negative delta"
    (Invalid_argument "Header.encode: delta out of range") (fun () ->
      ignore (Header.encode ~state:White ~pi:0 ~delta:(-1)))

let qcheck_roundtrip =
  let gen_state =
    QCheck.Gen.oneofl [ Header.White; Header.Gray; Header.Black ]
  in
  QCheck.Test.make ~name:"header encode/decode roundtrip" ~count:2_000
    QCheck.(
      triple
        (make ~print:(fun s -> Format.asprintf "%a" Header.pp_state s) gen_state)
        (int_range 0 Header.max_area)
        (int_range 0 Header.max_area))
    (fun (state, pi, delta) ->
      let w = Header.encode ~state ~pi ~delta in
      Header.equal_state (Header.state w) state
      && Header.pi w = pi && Header.delta w = delta
      && Header.size w = Header.header_words + pi + delta)

let qcheck_with_state_preserves =
  QCheck.Test.make ~name:"with_state preserves areas" ~count:1_000
    QCheck.(pair (int_range 0 Header.max_area) (int_range 0 Header.max_area))
    (fun (pi, delta) ->
      let w = Header.encode ~state:White ~pi ~delta in
      List.for_all
        (fun s ->
          let w' = Header.with_state w s in
          Header.pi w' = pi && Header.delta w' = delta
          && Header.equal_state (Header.state w') s)
        [ Header.White; Header.Gray; Header.Black ])

let suite =
  [
    Alcotest.test_case "roundtrip basic" `Quick test_roundtrip_basic;
    Alcotest.test_case "roundtrip extremes" `Quick test_roundtrip_extremes;
    Alcotest.test_case "all states" `Quick test_all_states;
    Alcotest.test_case "with_state" `Quick test_with_state;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "out of range rejected" `Quick test_out_of_range;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_with_state_preserves;
  ]
