(* Mutation validation for the machine sanitizer (docs/SANITIZER.md).

   Each mutant is a deliberately broken collector variant, expressed as
   a short script of protocol operations against a fresh synchronization
   block and sanitizer. The harness checks two directions:

   - every mutant is flagged with the expected check (no false
     negatives on the failure modes the sanitizer exists to catch);
   - the correct-protocol baseline, the default experiment
     configurations, and delay-class fault campaigns are all silent
     (no false positives on legal executions, including the paper's
     same-cycle release→acquire handoff under static priority).

   Scripts drive the hook record directly where the synchronization
   block itself would refuse the broken operation — the point of a
   mutant like "advance scan without the lock" is precisely that the
   sanitizer's independent mirror catches a collector whose own
   guard rails were mutated away. *)

module SB = Hsgc_hwsync.Sync_block
module Diag = Hsgc_sanitizer.Diag
module Hooks = Hsgc_sanitizer.Hooks
module San = Hsgc_sanitizer.Sanitizer
module Coprocessor = Hsgc_coproc.Coprocessor
module Workloads = Hsgc_objgraph.Workloads
module Injector = Hsgc_fault.Injector

let header_words = 2
let mem_words = 256

type rig = { sb : SB.t; hooks : Hooks.t; san : San.t }

let rig () =
  let hooks = Hooks.create () in
  let sb = SB.create ~hooks ~n_cores:4 () in
  let san = San.create ~mode:San.Check ~mem_words ~n_cores:4 ~header_words hooks in
  hooks.Hooks.cycle <- 0;
  { sb; hooks; san }

(* The correct protocol for evacuating one object: lock the child's
   header, claim tospace under the free lock, write the gray header and
   the forwarding pointer, unlock. Used verbatim by the baseline and
   perturbed by the mutants. *)
let evacuate_ok { sb; hooks; _ } ~core ~child =
  ignore (SB.try_lock_header sb ~core ~addr:child);
  ignore (SB.try_lock_free sb ~core);
  let new_addr = SB.claim_free sb ~core 8 in
  SB.unlock_free sb ~core;
  hooks.Hooks.word_written ~core ~base:new_addr ~addr:new_addr;
  hooks.Hooks.word_written ~core ~base:new_addr ~addr:(new_addr + 1);
  hooks.Hooks.word_written ~core ~base:child ~addr:child;
  hooks.Hooks.forward_installed ~core ~from_:child ~to_:new_addr;
  SB.unlock_header sb ~core;
  new_addr

(* Correct-protocol baseline: roots, a scan/evacuate round with a
   same-cycle scan-lock handoff between two cores, FIFO traffic, and a
   clean barrier. Must stay silent. *)
let baseline r =
  let { sb; hooks; _ } = r in
  SB.set_scan sb 16;
  SB.set_free sb 16;
  ignore (SB.try_lock_free sb ~core:0);
  let root = SB.claim_free sb ~core:0 8 in
  SB.unlock_free sb ~core:0;
  hooks.Hooks.word_written ~core:0 ~base:root ~addr:root;
  hooks.Hooks.word_written ~core:0 ~base:root ~addr:(root + 1);
  hooks.Hooks.fifo_pushed ~addr:root ~buffered:true;
  (* Core 1 grabs the gray object; core 0 re-acquires in the same cycle
     (static priority) — the handoff the sanitizer must not flag. *)
  ignore (SB.try_lock_scan sb ~core:1);
  hooks.Hooks.range_claimed ~core:1 ~lo:root ~hi:(root + header_words);
  hooks.Hooks.fifo_popped ~addr:root;
  hooks.Hooks.word_read ~core:1 ~base:root ~addr:root;
  SB.advance_scan sb ~core:1 8;
  SB.unlock_scan sb ~core:1;
  ignore (SB.try_lock_scan sb ~core:0);
  SB.unlock_scan sb ~core:0;
  hooks.Hooks.word_read ~core:1 ~base:root ~addr:(root + 1);
  ignore (evacuate_ok r ~core:1 ~child:40);
  hooks.Hooks.range_released ~core:1 ~lo:root ~hi:(root + header_words);
  for core = 0 to 3 do
    SB.assert_no_locks sb ~core;
    ignore (SB.barrier_arrive sb ~core)
  done

(* --- the mutant catalog ------------------------------------------- *)

(* 1. Evacuate without taking the child's header lock: the forwarding
   install has no ownership and the header store is unprotected. *)
let m_skip_header_lock r =
  let { sb; hooks; _ } = r in
  SB.set_free sb 16;
  ignore (SB.try_lock_free sb ~core:0);
  let new_addr = SB.claim_free sb ~core:0 8 in
  SB.unlock_free sb ~core:0;
  hooks.Hooks.word_written ~core:0 ~base:40 ~addr:40;
  hooks.Hooks.forward_installed ~core:0 ~from_:40 ~to_:new_addr

(* 2. Install forwarding while holding the *wrong* header lock. *)
let m_forward_without_ownership r =
  let { sb; hooks; _ } = r in
  ignore (SB.try_lock_header sb ~core:0 ~addr:48);
  hooks.Hooks.forward_installed ~core:0 ~from_:40 ~to_:96;
  SB.unlock_header sb ~core:0

(* 3. Double evacuation: two cores race to copy the same object and
   both install forwarding (the second one loses an object graph). *)
let m_double_evacuate r =
  let { sb; _ } = r in
  SB.set_free sb 16;
  ignore (evacuate_ok r ~core:0 ~child:40);
  ignore (evacuate_ok r ~core:1 ~child:40)

(* 4. Release the scan lock early, then keep advancing scan. *)
let m_release_scan_early r =
  let { sb; hooks; _ } = r in
  SB.set_scan sb 16;
  SB.set_free sb 64;
  ignore (SB.try_lock_scan sb ~core:0);
  SB.advance_scan sb ~core:0 8;
  SB.unlock_scan sb ~core:0;
  (* The mutated collector forgot it no longer holds the lock; its own
     guard was deleted, so only the hook-level mirror can notice. *)
  hooks.Hooks.scan_advanced ~core:0 ~scan_was:24 ~scan_now:32 ~free:64

(* 5. Reorder lock acquisition: header before scan (scan < header). *)
let m_reorder_locks r =
  let { sb; hooks; _ } = r in
  ignore (SB.try_lock_header sb ~core:0 ~addr:40);
  hooks.Hooks.lock_acquired ~lock:Hooks.scan_lock ~core:0 ~addr:(-1)

(* 6. Advance scan past free: the worklist tail overruns its head. *)
let m_scan_past_free r =
  let { sb; _ } = r in
  SB.set_scan sb 16;
  SB.set_free sb 20;
  ignore (SB.try_lock_scan sb ~core:0);
  SB.advance_scan sb ~core:0 8

(* 7. Header FIFO reordered: a mutated FIFO serves reads out of push
   order (the comparator array matched the wrong pending store). *)
let m_fifo_reorder r =
  let { hooks; _ } = r in
  hooks.Hooks.fifo_pushed ~addr:40 ~buffered:true;
  hooks.Hooks.fifo_pushed ~addr:48 ~buffered:true;
  hooks.Hooks.fifo_popped ~addr:48

(* 8. Unsynchronized payload store: a core blackens words of an object
   it neither claimed nor locked. *)
let m_unprotected_store r =
  let { hooks; _ } = r in
  hooks.Hooks.word_written ~core:2 ~base:40 ~addr:(40 + header_words + 1)

(* 9. Lockset race: two cores touch the same payload word, each under a
   lock, but never a common one — classic Eraser empty intersection. *)
let m_lockset_race r =
  let { sb; hooks; _ } = r in
  let addr = 40 + header_words + 1 in
  hooks.Hooks.range_claimed ~core:0 ~lo:40 ~hi:56;
  hooks.Hooks.word_written ~core:0 ~base:40 ~addr;
  ignore (SB.try_lock_header sb ~core:1 ~addr:40);
  (* Core 1 holds the frame's header lock, core 0 held a claim: the
     word's candidate set intersects to empty on a second core. *)
  hooks.Hooks.word_written ~core:1 ~base:40 ~addr;
  SB.unlock_header sb ~core:1

(* 10. Barrier runaway: a core loops back and passes the next barrier
   round while a peer has not arrived at the previous one. *)
let m_barrier_skew r =
  let { hooks; _ } = r in
  hooks.Hooks.barrier_passed ~core:0;
  hooks.Hooks.barrier_passed ~core:0;
  hooks.Hooks.barrier_passed ~core:0

(* 11. Banked-machine banking mutant: a bank-crossing evacuation that
   skips the header-FIFO arbitration step. The core holds its own
   bank's scan and free locks — perfectly legal for home-range work —
   but pokes the foreign object directly instead of posting the
   (slot, child) request to the arbitration interface. Its own bank's
   locks protect nothing in the foreign bank, so the foreign header
   store and the forwarding install are unowned; the sanitizer's
   mirror must flag them even though every lock the core *does* hold
   was acquired by the book. *)
let m_banked_bypass_arbitration r =
  let { sb; hooks; _ } = r in
  SB.set_free sb 16;
  ignore (SB.try_lock_scan sb ~core:0);
  ignore (SB.try_lock_free sb ~core:0);
  let new_addr = SB.claim_free sb ~core:0 8 in
  SB.unlock_free sb ~core:0;
  (* foreign bank's home range: this bank's sync block never covers it *)
  let foreign = 200 in
  hooks.Hooks.word_written ~core:0 ~base:foreign ~addr:foreign;
  hooks.Hooks.forward_installed ~core:0 ~from_:foreign ~to_:new_addr;
  SB.unlock_scan sb ~core:0

let mutants =
  [
    ("skip header lock", Diag.Forward_unlocked, m_skip_header_lock);
    ("forward without ownership", Diag.Forward_unlocked, m_forward_without_ownership);
    ("double evacuate", Diag.Forward_once, m_double_evacuate);
    ("release scan early", Diag.Scan_protocol, m_release_scan_early);
    ("reorder lock acquisition", Diag.Lock_order, m_reorder_locks);
    ("scan past free", Diag.Scan_protocol, m_scan_past_free);
    ("fifo reorder", Diag.Fifo_order, m_fifo_reorder);
    ("unprotected store", Diag.Unprotected_payload, m_unprotected_store);
    ("lockset race", Diag.Lockset_race, m_lockset_race);
    ("barrier skew", Diag.Barrier_skew, m_barrier_skew);
    ( "bank-crossing write skips FIFO arbitration",
      Diag.Forward_unlocked,
      m_banked_bypass_arbitration );
  ]

let test_baseline_silent () =
  let r = rig () in
  baseline r;
  if not (San.is_silent r.san) then
    Alcotest.failf "baseline flagged: %s"
      (String.concat "; " (List.map Diag.to_string (San.findings r.san)));
  Alcotest.(check int) "no findings" 0 (San.total r.san)

let test_mutant (name, expected, script) () =
  let r = rig () in
  (* Mutated collectors may also trip the sync block's own guards; the
     question here is only whether the sanitizer flagged the breakage. *)
  (try script r with Diag.Violation _ -> ());
  let names = List.map (fun d -> Diag.check_name d.Diag.check) (San.findings r.san) in
  if not (List.mem (Diag.check_name expected) names) then
    Alcotest.failf "mutant %S not flagged as %s (findings: %s)" name
      (Diag.check_name expected)
      (if names = [] then "none" else String.concat ", " names)

(* Every finding must carry usable context: the cycle the hooks were
   stamped with and a rendered lockset. *)
let test_findings_carry_context () =
  let r = rig () in
  r.hooks.Hooks.cycle <- 777;
  m_reorder_locks r;
  match San.findings r.san with
  | [] -> Alcotest.fail "expected a finding"
  | d :: _ ->
    Alcotest.(check int) "cycle" 777 d.Diag.cycle;
    Alcotest.(check bool) "lockset rendered" true
      (String.length d.Diag.locks >= 2 && d.Diag.locks.[0] = '{')

(* Real collections: the default configurations must be silent under
   strict mode, with and without delay-class fault injection (timing
   faults must never look like protocol violations). *)
let collect_sanitized ?faults ~workload ~n_cores () =
  let w = Option.get (Workloads.find workload) in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:11 w in
  let stats =
    Coprocessor.collect
      (Coprocessor.config ?faults ~sanitize:San.Strict ~n_cores ())
      heap
  in
  Alcotest.(check int)
    (Printf.sprintf "%s/%d silent" workload n_cores)
    0 stats.Coprocessor.sanitizer_total

let test_default_configs_silent () =
  List.iter
    (fun (workload, n_cores) -> collect_sanitized ~workload ~n_cores ())
    [ ("db", 1); ("db", 8); ("javac", 4); ("cup", 16); ("search", 2) ]

let test_delay_chaos_silent () =
  List.iter
    (fun (workload, n_cores, intensity, seed) ->
      let faults = Injector.of_class `Delay ~seed ~intensity () in
      collect_sanitized ~faults ~workload ~n_cores ())
    [
      ("db", 8, 0.01, 3); ("db", 8, 0.1, 4); ("javac", 4, 0.05, 5);
      ("cup", 16, 0.02, 6); ("search", 2, 0.1, 7);
    ]

let suite =
  Alcotest.test_case "baseline silent" `Quick test_baseline_silent
  :: List.map
       (fun ((name, _, _) as m) ->
         Alcotest.test_case ("mutant: " ^ name) `Quick (test_mutant m))
       mutants
  @ [
      Alcotest.test_case "findings carry context" `Quick
        test_findings_carry_context;
      Alcotest.test_case "default configs silent" `Quick
        test_default_configs_silent;
      Alcotest.test_case "delay-class chaos silent" `Quick
        test_delay_chaos_silent;
    ]
