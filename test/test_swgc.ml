(* Tests for the real Domains-based parallel copying collector. *)

module Parallel_copy = Hsgc_swgc.Parallel_copy
module Par = Hsgc_swgc.Par
module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Heap = Hsgc_heap.Heap
module Verify = Hsgc_heap.Verify
module Cheney_seq = Hsgc_core.Cheney_seq

let collect_ok ~domains heap =
  let pre = Verify.snapshot heap in
  let stats = Parallel_copy.collect ~domains heap in
  (match Verify.check_collection ~pre heap with
  | Ok () -> ()
  | Error f -> Alcotest.failf "verification: %a" Verify.pp_failure f);
  stats

let test_par_run () =
  let results = Par.run ~domains:4 (fun i -> i * i) in
  Alcotest.(check (array int)) "results in order" [| 0; 1; 4; 9 |] results

let test_par_run_single () =
  let results = Par.run ~domains:1 (fun i -> i + 10) in
  Alcotest.(check (array int)) "runs on caller" [| 10 |] results

let test_recommended_capped () =
  Alcotest.(check bool) "within [1,16]" true
    (let n = Par.recommended_domain_count () in
     n >= 1 && n <= 16)

let test_matches_oracle () =
  List.iter
    (fun w ->
      let oracle = Workloads.build_heap ~scale:0.02 ~seed:7 w in
      ignore (Cheney_seq.collect oracle);
      let oracle_snap = Verify.snapshot oracle in
      List.iter
        (fun domains ->
          let heap = Workloads.build_heap ~scale:0.02 ~seed:7 w in
          let _ = collect_ok ~domains heap in
          if not (Verify.equal_snapshot oracle_snap (Verify.snapshot heap)) then
            Alcotest.failf "%s at %d domains differs from oracle"
              w.Workloads.name domains)
        [ 1; 2; 4 ])
    Workloads.all

let test_stats_accounting () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:3 Workloads.db in
  let live = Heap.live_words heap in
  let stats = collect_ok ~domains:3 heap in
  Alcotest.(check int) "live words" live stats.Parallel_copy.live_words;
  Alcotest.(check int) "claims = objects" stats.Parallel_copy.live_objects
    stats.Parallel_copy.cas_claims;
  Alcotest.(check int) "per-domain scans sum to total"
    stats.Parallel_copy.live_objects
    (Array.fold_left ( + ) 0 stats.Parallel_copy.per_domain_objects);
  Alcotest.(check int) "per-domain array sized" 3
    (Array.length stats.Parallel_copy.per_domain_objects)

let test_cycles_and_sharing () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:2 ~delta:1 in
  let b = Plan.obj p ~pi:1 ~delta:0 in
  let c = Plan.obj p ~pi:1 ~delta:2 in
  Plan.link p ~parent:a ~slot:0 ~child:b;
  Plan.link p ~parent:a ~slot:1 ~child:c;
  Plan.link p ~parent:b ~slot:0 ~child:c;
  Plan.link p ~parent:c ~slot:0 ~child:a;
  Plan.add_root p a;
  let heap = Plan.materialize p in
  let stats = collect_ok ~domains:4 heap in
  Alcotest.(check int) "three objects, copied once each" 3
    stats.Parallel_copy.live_objects

let test_empty_roots () =
  let p = Plan.create () in
  ignore (Plan.obj p ~pi:0 ~delta:4);
  let heap = Plan.materialize p in
  let stats = collect_ok ~domains:2 heap in
  Alcotest.(check int) "nothing live" 0 stats.Parallel_copy.live_objects

let test_repeated_collections () =
  let heap = Workloads.build_heap ~scale:0.02 ~seed:9 Workloads.jlisp in
  for _ = 1 to 3 do
    ignore (collect_ok ~domains:2 heap)
  done

let test_invalid_domains () =
  let heap = Workloads.build_heap ~scale:0.02 ~seed:1 Workloads.jlisp in
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Parallel_copy.collect: domains") (fun () ->
      ignore (Parallel_copy.collect ~domains:0 heap))

let test_determinism_of_result () =
  (* Copy ORDER differs between runs, but the resulting graph must always
     be isomorphic to the input. *)
  let reference = Workloads.build_heap ~scale:0.05 ~seed:11 Workloads.javac in
  let pre = Verify.snapshot reference in
  for _ = 1 to 3 do
    let heap = Workloads.build_heap ~scale:0.05 ~seed:11 Workloads.javac in
    ignore (Parallel_copy.collect ~domains:4 heap);
    Alcotest.(check bool) "isomorphic to input" true
      (Verify.equal_snapshot pre (Verify.snapshot heap))
  done

let suite =
  [
    Alcotest.test_case "Par.run" `Quick test_par_run;
    Alcotest.test_case "Par.run single" `Quick test_par_run_single;
    Alcotest.test_case "recommended domains capped" `Quick test_recommended_capped;
    Alcotest.test_case "matches oracle (all workloads)" `Slow test_matches_oracle;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "cycles and sharing" `Quick test_cycles_and_sharing;
    Alcotest.test_case "empty roots" `Quick test_empty_roots;
    Alcotest.test_case "repeated collections" `Quick test_repeated_collections;
    Alcotest.test_case "invalid domains" `Quick test_invalid_domains;
    Alcotest.test_case "result always isomorphic" `Quick test_determinism_of_result;
  ]
