(* Tests for the experiment runner and report rendering. *)

module Experiment = Hsgc_core.Experiment
module Report = Hsgc_core.Report
module Workloads = Hsgc_objgraph.Workloads

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let small_sweep =
  lazy
    (Report.run_sweeps ~verify:true ~scale:0.02 ~seeds:[| 5 |] ~cores:[ 1; 2; 4 ] ())

let test_measure () =
  let m =
    Experiment.measure ~verify:true ~scale:0.02 ~seeds:[| 5 |]
      ~workload:Workloads.jlisp ~n_cores:2 ()
  in
  Alcotest.(check string) "workload name" "jlisp" m.Experiment.workload;
  Alcotest.(check int) "cores" 2 m.Experiment.n_cores;
  Alcotest.(check bool) "cycles positive" true (m.Experiment.cycles > 0.0);
  Alcotest.(check bool) "live objects positive" true (m.Experiment.live_objects > 0.0);
  Alcotest.(check bool) "empty fraction in [0,1]" true
    (m.Experiment.empty_frac >= 0.0 && m.Experiment.empty_frac <= 1.0)

let test_measure_multi_seed () =
  let m =
    Experiment.measure ~scale:0.02 ~seeds:[| 1; 2; 3 |] ~workload:Workloads.jlisp
      ~n_cores:1 ()
  in
  Alcotest.(check bool) "averaged cycles positive" true (m.Experiment.cycles > 0.0)

let test_sweep_and_speedups () =
  let points =
    Experiment.sweep ~scale:0.02 ~seeds:[| 5 |] ~cores:[ 1; 2; 4 ] Workloads.db
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  let sp = Experiment.speedups points in
  (match sp with
  | (1, s1) :: _ ->
    Alcotest.(check (float 1e-9)) "baseline speedup is 1" 1.0 s1
  | _ -> Alcotest.fail "first point should be 1 core");
  let _, s4 = List.nth sp 2 in
  Alcotest.(check bool) "db speeds up at 4 cores" true (s4 > 2.0)

let test_speedups_empty () =
  Alcotest.(check int) "no points, no speedups" 0
    (List.length (Experiment.speedups []))

let test_run_sweeps_structure () =
  let data = Lazy.force small_sweep in
  Alcotest.(check int) "eight workloads" 8 (List.length data);
  List.iter
    (fun (_, points) ->
      Alcotest.(check int) "three core counts" 3 (List.length points))
    data

let test_figure5_renders () =
  let s = Report.figure5 (Lazy.force small_sweep) in
  Alcotest.(check bool) "title" true (contains ~sub:"Figure 5" s);
  Alcotest.(check bool) "legend includes db" true (contains ~sub:"db" s);
  Alcotest.(check bool) "table header" true (contains ~sub:"Application" s)

let test_table1_renders () =
  let s = Report.table1 (Lazy.force small_sweep) in
  Alcotest.(check bool) "title" true (contains ~sub:"Table I" s);
  Alcotest.(check bool) "percent cells" true (contains ~sub:"%" s);
  Alcotest.(check bool) "all workloads" true
    (List.for_all
       (fun w -> contains ~sub:w.Workloads.name s)
       Workloads.all)

let test_table2_renders () =
  let s = Report.table2 ~n_cores:4 (Lazy.force small_sweep) in
  Alcotest.(check bool) "title" true (contains ~sub:"Table II" s);
  Alcotest.(check bool) "stall columns" true (contains ~sub:"Scan-lock stall" s)

let test_table2_missing_cores () =
  (* Requesting a core count absent from the sweep yields an empty table,
     not an exception. *)
  let s = Report.table2 ~n_cores:99 (Lazy.force small_sweep) in
  Alcotest.(check bool) "renders" true (contains ~sub:"Table II" s)

let test_fifo_summary_renders () =
  let s = Report.fifo_summary (Lazy.force small_sweep) in
  Alcotest.(check bool) "has header" true (contains ~sub:"FIFO" s)

let test_heap_size_invariance_renders () =
  let s = Report.heap_size_invariance ~scale:0.02 () in
  Alcotest.(check bool) "mentions heap factor" true (contains ~sub:"heap factor" s);
  (* the invariance itself: all four cycle counts equal *)
  let lines = String.split_on_char '\n' s in
  let cycles =
    List.filter_map
      (fun l ->
        match String.split_on_char 'x' l with
        | [ _; rest ] -> (
          match String.split_on_char ' ' (String.trim rest) with
          | c :: _ -> int_of_string_opt c
          | [] -> None)
        | _ -> None)
      lines
  in
  match cycles with
  | c :: rest ->
    List.iter (fun c' -> Alcotest.(check int) "cycles identical" c c') rest
  | [] -> Alcotest.fail "no data rows parsed"

let test_baselines_renders () =
  let s = Report.baselines ~scale:0.02 () in
  Alcotest.(check bool) "all schemes shown" true
    (contains ~sub:"sw-object" s && contains ~sub:"sw-steal" s
    && contains ~sub:"sw-push" s && contains ~sub:"hw-object" s)

let test_future_work_renders () =
  let s = Report.future_work ~scale:0.05 () in
  Alcotest.(check bool) "both ablations" true
    (contains ~sub:"32-word pieces" s && contains ~sub:"4096-entry cache" s)

let test_concurrent_pauses_renders () =
  let s = Report.concurrent_pauses ~scale:0.05 () in
  Alcotest.(check bool) "pause column" true (contains ~sub:"conc. pause" s);
  Alcotest.(check bool) "workloads" true
    (contains ~sub:"db" s && contains ~sub:"search" s)

let test_verification_failure_surfaces () =
  (* verify:true propagates broken collections as an exception — sanity
     check that the plumbing works by ensuring a correct run does not
     raise. *)
  let _ =
    Experiment.measure ~verify:true ~scale:0.02 ~seeds:[| 7 |]
      ~workload:Workloads.compress ~n_cores:3 ()
  in
  ()

let suite =
  [
    Alcotest.test_case "measure" `Quick test_measure;
    Alcotest.test_case "measure multi-seed" `Quick test_measure_multi_seed;
    Alcotest.test_case "sweep and speedups" `Quick test_sweep_and_speedups;
    Alcotest.test_case "speedups of empty list" `Quick test_speedups_empty;
    Alcotest.test_case "run_sweeps structure" `Slow test_run_sweeps_structure;
    Alcotest.test_case "figure5 renders" `Slow test_figure5_renders;
    Alcotest.test_case "table1 renders" `Slow test_table1_renders;
    Alcotest.test_case "table2 renders" `Slow test_table2_renders;
    Alcotest.test_case "table2 missing cores" `Slow test_table2_missing_cores;
    Alcotest.test_case "fifo summary renders" `Slow test_fifo_summary_renders;
    Alcotest.test_case "heap-size invariance" `Slow test_heap_size_invariance_renders;
    Alcotest.test_case "baselines renders" `Slow test_baselines_renders;
    Alcotest.test_case "future work renders" `Slow test_future_work_renders;
    Alcotest.test_case "concurrent pauses renders" `Slow
      test_concurrent_pauses_renders;
    Alcotest.test_case "verify plumbing" `Quick test_verification_failure_surfaces;
  ]
