(* Integration and property tests for the multi-core GC coprocessor:
   correctness against the sequential oracle, termination, determinism,
   and counter accounting. *)

module Heap = Hsgc_heap.Heap
module Header = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace
module Verify = Hsgc_heap.Verify
module Memsys = Hsgc_memsim.Memsys
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Cheney_seq = Hsgc_core.Cheney_seq

let alloc_exn heap ~pi ~delta =
  match Heap.alloc heap ~pi ~delta with
  | Some a -> a
  | None -> Alcotest.fail "allocation failed"

let collect_ok ?(n_cores = 4) ?mem heap =
  let pre = Verify.snapshot heap in
  let stats = Coprocessor.collect (Coprocessor.config ?mem ~n_cores ()) heap in
  (match Verify.check_collection ~pre heap with
  | Ok () -> ()
  | Error f -> Alcotest.failf "verification failed: %a" Verify.pp_failure f);
  stats

let test_empty_heap () =
  let heap = Heap.create ~semispace_words:50 in
  let stats = collect_ok heap in
  Alcotest.(check int) "nothing copied" 0 stats.Coprocessor.live_objects

let test_null_roots () =
  let heap = Heap.create ~semispace_words:50 in
  Heap.set_roots heap [| Heap.null; Heap.null; Heap.null |];
  let stats = collect_ok heap in
  Alcotest.(check int) "nothing copied" 0 stats.Coprocessor.live_objects

let test_single_object () =
  let heap = Heap.create ~semispace_words:50 in
  let a = alloc_exn heap ~pi:0 ~delta:3 in
  Heap.set_data heap a 0 11;
  Heap.set_data heap a 2 13;
  Heap.set_roots heap [| a |];
  let stats = collect_ok heap in
  Alcotest.(check int) "one object" 1 stats.Coprocessor.live_objects;
  Alcotest.(check int) "five words" 5 stats.Coprocessor.live_words

let test_header_only_object () =
  let heap = Heap.create ~semispace_words:50 in
  let a = alloc_exn heap ~pi:0 ~delta:0 in
  Heap.set_roots heap [| a |];
  let stats = collect_ok heap in
  Alcotest.(check int) "copied" 1 stats.Coprocessor.live_objects;
  Alcotest.(check int) "two words" 2 stats.Coprocessor.live_words

let test_self_pointer () =
  let heap = Heap.create ~semispace_words:50 in
  let a = alloc_exn heap ~pi:1 ~delta:1 in
  Heap.set_pointer heap a 0 a;
  Heap.set_data heap a 0 5;
  Heap.set_roots heap [| a |];
  let stats = collect_ok heap in
  Alcotest.(check int) "one object" 1 stats.Coprocessor.live_objects;
  (* The copy must point to itself. *)
  let space = Heap.from_space heap in
  let copy = space.Semispace.base in
  Alcotest.(check int) "self pointer rewritten" copy (Heap.get_pointer heap copy 0)

let test_cycle () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:1 ~delta:0 in
  let b = alloc_exn heap ~pi:1 ~delta:0 in
  let c = alloc_exn heap ~pi:1 ~delta:0 in
  Heap.set_pointer heap a 0 b;
  Heap.set_pointer heap b 0 c;
  Heap.set_pointer heap c 0 a;
  Heap.set_roots heap [| a |];
  let stats = collect_ok heap in
  Alcotest.(check int) "ring copied once" 3 stats.Coprocessor.live_objects

let test_shared_diamond () =
  let heap = Heap.create ~semispace_words:100 in
  let d = alloc_exn heap ~pi:0 ~delta:1 in
  let b = alloc_exn heap ~pi:1 ~delta:0 in
  let c = alloc_exn heap ~pi:1 ~delta:0 in
  let a = alloc_exn heap ~pi:2 ~delta:0 in
  Heap.set_pointer heap a 0 b;
  Heap.set_pointer heap a 1 c;
  Heap.set_pointer heap b 0 d;
  Heap.set_pointer heap c 0 d;
  Heap.set_roots heap [| a |];
  let stats = collect_ok heap in
  Alcotest.(check int) "shared child copied once" 4 stats.Coprocessor.live_objects;
  (* Both parents' copies point at the same copy of d. *)
  let space = Heap.from_space heap in
  let parents = ref [] in
  Heap.iter_objects heap space (fun o ->
      if Heap.obj_pi heap o = 1 then parents := Heap.get_pointer heap o 0 :: !parents);
  match !parents with
  | [ x; y ] -> Alcotest.(check int) "same copy" x y
  | l -> Alcotest.failf "expected two single-pointer objects, got %d" (List.length l)

let test_duplicate_roots () =
  let heap = Heap.create ~semispace_words:50 in
  let a = alloc_exn heap ~pi:0 ~delta:2 in
  Heap.set_roots heap [| a; a; a |];
  let stats = collect_ok heap in
  Alcotest.(check int) "copied once" 1 stats.Coprocessor.live_objects;
  (* All root slots agree on the copy. *)
  let r = heap.Heap.roots in
  Alcotest.(check int) "root 0 = root 1" r.(0) r.(1);
  Alcotest.(check int) "root 1 = root 2" r.(1) r.(2)

let test_garbage_not_copied () =
  let heap = Heap.create ~semispace_words:200 in
  let live = alloc_exn heap ~pi:0 ~delta:1 in
  for _ = 1 to 10 do
    ignore (alloc_exn heap ~pi:1 ~delta:3)
  done;
  Heap.set_roots heap [| live |];
  let stats = collect_ok heap in
  Alcotest.(check int) "only the root survives" 1 stats.Coprocessor.live_objects

let test_large_object () =
  let heap = Heap.create ~semispace_words:5000 in
  let big = alloc_exn heap ~pi:1 ~delta:2000 in
  let leaf = alloc_exn heap ~pi:0 ~delta:1 in
  Heap.set_pointer heap big 0 leaf;
  for i = 0 to 1999 do
    Heap.set_data heap big i (i * 3)
  done;
  Heap.set_roots heap [| big |];
  let stats = collect_ok heap in
  Alcotest.(check int) "both copied" 2 stats.Coprocessor.live_objects;
  Alcotest.(check int) "words" (2003 + 3) stats.Coprocessor.live_words

let test_heap_overflow () =
  (* Live data fits in fromspace but we shrink tospace artificially by
     filling the heap completely with live objects — tospace is the same
     size, so copying must succeed; instead build with factor 1 and add a
     root chain that fits exactly. Overflow is instead triggered via a
     heap whose tospace is smaller than the live set: construct by hand. *)
  let heap = Heap.create ~semispace_words:20 in
  (* 3 objects of size 6 = 18 words live; they fit. Now make tospace
     appear smaller by pre-consuming it is not possible through the API,
     so instead verify that a live set exceeding tospace raises. *)
  let a = alloc_exn heap ~pi:1 ~delta:3 in
  let b = alloc_exn heap ~pi:1 ~delta:3 in
  let c = alloc_exn heap ~pi:0 ~delta:4 in
  Heap.set_pointer heap a 0 b;
  Heap.set_pointer heap b 0 c;
  Heap.set_roots heap [| a |];
  (* 18 live words in a 20-word space: fine. *)
  ignore (collect_ok ~n_cores:2 heap);
  Alcotest.(check pass) "fits exactly-ish" () ()

let all_core_counts = [ 1; 2; 3; 4; 8; 16 ]

let test_matches_oracle_on_workloads () =
  List.iter
    (fun w ->
      (* Oracle snapshot *)
      let oracle_heap = Workloads.build_heap ~scale:0.02 ~seed:3 w in
      ignore (Cheney_seq.collect oracle_heap);
      let oracle_snap = Verify.snapshot oracle_heap in
      List.iter
        (fun n_cores ->
          let heap = Workloads.build_heap ~scale:0.02 ~seed:3 w in
          let _ = collect_ok ~n_cores heap in
          let snap = Verify.snapshot heap in
          if not (Verify.equal_snapshot oracle_snap snap) then
            Alcotest.failf "%s at %d cores differs from oracle" w.Workloads.name
              n_cores)
        all_core_counts)
    Workloads.all

let test_deterministic () =
  let run () =
    let heap = Workloads.build_heap ~scale:0.05 ~seed:9 Workloads.javac in
    let stats = Coprocessor.collect (Coprocessor.config ~n_cores:8 ()) heap in
    stats.Coprocessor.total_cycles
  in
  Alcotest.(check int) "same cycle count on identical input" (run ()) (run ())

let test_one_core_no_lock_stalls () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.db in
  let stats = collect_ok ~n_cores:1 heap in
  let c = stats.Coprocessor.per_core.(0) in
  Alcotest.(check int) "no scan-lock stalls" 0 c.Counters.scan_lock;
  Alcotest.(check int) "no free-lock stalls" 0 c.Counters.free_lock;
  Alcotest.(check int) "no header-lock stalls" 0 c.Counters.header_lock

let test_counter_accounting () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.javac in
  let stats = collect_ok ~n_cores:8 heap in
  let total = stats.Coprocessor.total_cycles in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "per-core stalls bounded by total" true
        (Counters.total_stalls c <= total))
    stats.Coprocessor.per_core;
  let sum = Coprocessor.stalls_total stats in
  Alcotest.(check bool) "objects scanned = objects evacuated" true
    (sum.Counters.objects_scanned = sum.Counters.objects_evacuated);
  Alcotest.(check int) "live accounting" stats.Coprocessor.live_objects
    sum.Counters.objects_evacuated

let test_fifo_accounting () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.db in
  let stats = collect_ok ~n_cores:4 heap in
  (* Every scanned object's header was obtained exactly once, from the
     FIFO or from memory. *)
  Alcotest.(check int) "hits + (misses consumed) covers all pickups"
    stats.Coprocessor.live_objects
    (stats.Coprocessor.fifo_hits + stats.Coprocessor.fifo_misses)

let test_speedup_monotone_direction () =
  let cycles n =
    let heap = Workloads.build_heap ~scale:0.1 ~seed:4 Workloads.db in
    (Coprocessor.collect (Coprocessor.config ~n_cores:n ()) heap)
      .Coprocessor.total_cycles
  in
  let c1 = cycles 1 and c4 = cycles 4 and c16 = cycles 16 in
  Alcotest.(check bool) "4 cores faster than 1" true (c4 < c1);
  Alcotest.(check bool) "16 cores faster than 4" true (c16 < c4);
  Alcotest.(check bool) "speedup at 4 cores is substantial" true
    (float_of_int c1 /. float_of_int c4 > 3.0)

let test_linear_graph_no_speedup () =
  let cycles n =
    let heap = Workloads.build_heap ~scale:0.1 ~seed:4 Workloads.search in
    (Coprocessor.collect (Coprocessor.config ~n_cores:n ()) heap)
      .Coprocessor.total_cycles
  in
  let c1 = cycles 1 and c16 = cycles 16 in
  Alcotest.(check bool) "linear graph speedup < 2" true
    (float_of_int c1 /. float_of_int c16 < 2.0)

let test_empty_worklist_metric () =
  let empty_frac w n =
    let heap = Workloads.build_heap ~scale:0.1 ~seed:4 w in
    let s = Coprocessor.collect (Coprocessor.config ~n_cores:n ()) heap in
    float_of_int s.Coprocessor.empty_worklist_cycles
    /. float_of_int s.Coprocessor.total_cycles
  in
  Alcotest.(check bool) "search starves at 8 cores" true
    (empty_frac Workloads.search 8 > 0.5);
  Alcotest.(check bool) "db does not starve at 8 cores" true
    (empty_frac Workloads.db 8 < 0.05)

let test_extra_latency_runs () =
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.jlisp in
  ignore (collect_ok ~n_cores:4 ~mem heap)

let test_tiny_fifo_still_correct () =
  let mem = { Memsys.default_config with Memsys.fifo_capacity = 2 } in
  List.iter
    (fun n_cores ->
      let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.cup in
      ignore (collect_ok ~n_cores ~mem heap))
    [ 1; 4; 16 ]

let test_tight_bandwidth_still_correct () =
  let mem = { Memsys.default_config with Memsys.bandwidth = 1 } in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.db in
  ignore (collect_ok ~n_cores:8 ~mem heap)

let test_scan_unit_matches_oracle () =
  (* Sub-object splitting must be observationally identical. *)
  List.iter
    (fun w ->
      let oracle = Workloads.build_heap ~scale:0.02 ~seed:3 w in
      ignore (Cheney_seq.collect oracle);
      let oracle_snap = Verify.snapshot oracle in
      List.iter
        (fun (n_cores, unit) ->
          let heap = Workloads.build_heap ~scale:0.02 ~seed:3 w in
          let pre = Verify.snapshot heap in
          let cfg = Coprocessor.config ~scan_unit:unit ~n_cores () in
          ignore (Coprocessor.collect cfg heap);
          (match Verify.check_collection ~pre heap with
          | Ok () -> ()
          | Error f ->
            Alcotest.failf "%s unit=%d cores=%d: %a" w.Workloads.name unit
              n_cores Verify.pp_failure f);
          if not (Verify.equal_snapshot oracle_snap (Verify.snapshot heap)) then
            Alcotest.failf "%s unit=%d cores=%d differs from oracle"
              w.Workloads.name unit n_cores)
        [ (1, 4); (4, 4); (16, 8); (3, 1) ])
    Workloads.all

let test_scan_unit_lifts_large_object_cap () =
  (* Three big arrays: object granularity caps the speedup at 3; piece
     granularity spreads each array over many cores. *)
  let plan () =
    let p = Plan.create () in
    let hub = Plan.obj p ~pi:3 ~delta:0 in
    for i = 0 to 2 do
      let arr = Plan.obj p ~pi:0 ~delta:3000 in
      Plan.link p ~parent:hub ~slot:i ~child:arr
    done;
    Plan.add_root p hub;
    p
  in
  let cycles ~scan_unit n_cores =
    let heap = Plan.materialize (plan ()) in
    let cfg = Coprocessor.config ?scan_unit ~n_cores () in
    (Coprocessor.collect cfg heap).Coprocessor.total_cycles
  in
  let base = cycles ~scan_unit:None 1 in
  let off8 = cycles ~scan_unit:None 8 in
  let on8 = cycles ~scan_unit:(Some 32) 8 in
  let sp_off = float_of_int base /. float_of_int off8 in
  let sp_on = float_of_int base /. float_of_int on8 in
  Alcotest.(check bool) "object granularity capped near 3" true (sp_off < 3.5);
  Alcotest.(check bool) "sub-object units break the cap" true (sp_on > 6.0)

let test_header_cache_correct_and_counted () =
  let mem = Memsys.with_header_cache Memsys.default_config 1024 in
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.javac in
  let stats = collect_ok ~n_cores:8 ~mem heap in
  Alcotest.(check bool) "cache hits recorded" true
    (stats.Coprocessor.header_cache_hits > 0)

let test_header_cache_relieves_contention () =
  (* javac's hot symbols: a cached header shortens both the load stall
     and the header-lock hold time. *)
  let run mem =
    let heap = Workloads.build_heap ~scale:0.3 ~seed:5 Workloads.javac in
    Coprocessor.collect (Coprocessor.config ~mem ~n_cores:16 ()) heap
  in
  let off = run Memsys.default_config in
  let on = run (Memsys.with_header_cache Memsys.default_config 4096) in
  Alcotest.(check bool) "cache speeds up javac at 16 cores" true
    (on.Coprocessor.total_cycles < off.Coprocessor.total_cycles)

let test_multi_cycle_gc () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.javacc in
  let cfg = Coprocessor.config ~n_cores:4 () in
  for _ = 1 to 4 do
    let pre = Verify.snapshot heap in
    ignore (Coprocessor.collect cfg heap);
    match Verify.check_collection ~pre heap with
    | Ok () -> ()
    | Error f -> Alcotest.failf "multi-cycle verification: %a" Verify.pp_failure f
  done

let test_alloc_after_gc () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:5 Workloads.jlisp in
  ignore (collect_ok ~n_cores:4 heap);
  (* Allocation continues in the new space. *)
  match Heap.alloc heap ~pi:1 ~delta:1 with
  | Some a ->
    Alcotest.(check bool) "allocated in current space" true
      (Semispace.contains (Heap.from_space heap) a)
  | None -> Alcotest.fail "allocation after GC failed"

(* Random-plan property test: coprocessor result is isomorphic to the
   oracle's at every core count, on arbitrary graphs (including cycles
   and sharing). *)
let gen_plan =
  QCheck.Gen.(
    let* n = int_range 1 60 in
    let* seed = small_nat in
    return (n, seed))

let build_random_plan (n, seed) =
  let rng = Hsgc_util.Rng.create (seed + 1) in
  let plan = Plan.create () in
  let ids =
    Array.init n (fun _ ->
        Plan.obj plan
          ~pi:(Hsgc_util.Rng.int rng 4)
          ~delta:(Hsgc_util.Rng.int rng 5))
  in
  (* Random edges, including back-edges (cycles) and self-loops. *)
  Array.iter
    (fun id ->
      for slot = 0 to Plan.pi_of plan id - 1 do
        if Hsgc_util.Rng.int rng 100 < 70 then
          Plan.link plan ~parent:id ~slot
            ~child:ids.(Hsgc_util.Rng.int rng n)
      done)
    ids;
  let n_roots = 1 + Hsgc_util.Rng.int rng 3 in
  for _ = 1 to n_roots do
    Plan.add_root plan ids.(Hsgc_util.Rng.int rng n)
  done;
  plan

let qcheck_matches_oracle =
  QCheck.Test.make ~name:"coprocessor isomorphic to oracle on random graphs"
    ~count:60
    (QCheck.make ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s) gen_plan)
    (fun param ->
      let plan = build_random_plan param in
      let oracle_heap = Plan.materialize plan in
      ignore (Cheney_seq.collect oracle_heap);
      let oracle_snap = Verify.snapshot oracle_heap in
      List.for_all
        (fun n_cores ->
          let heap = Plan.materialize plan in
          let pre = Verify.snapshot heap in
          ignore (Coprocessor.collect (Coprocessor.config ~n_cores ()) heap);
          (match Verify.check_collection ~pre heap with
          | Ok () -> ()
          | Error f ->
            QCheck.Test.fail_reportf "invariant: %a" Verify.pp_failure f);
          Verify.equal_snapshot oracle_snap (Verify.snapshot heap))
        [ 1; 2; 5; 16 ])

(* Random configuration matrix: any combination of core count, memory
   model, scan unit and header cache must stay observationally identical
   to the oracle. *)
let gen_config =
  QCheck.Gen.(
    let* n_cores = int_range 1 16 in
    let* scan_unit = oneofl [ None; Some 1; Some 4; Some 32 ] in
    let* cache = oneofl [ 0; 8; 1024 ] in
    let* extra_latency = oneofl [ 0; 3; 20 ] in
    let* bandwidth = oneofl [ 1; 4; 8 ] in
    let* fifo = oneofl [ 2; 64; 32768 ] in
    return (n_cores, scan_unit, cache, extra_latency, bandwidth, fifo))

let qcheck_config_matrix =
  QCheck.Test.make ~name:"any configuration matches the oracle" ~count:60
    (QCheck.make
       ~print:(fun ((n, s), (nc, su, ca, el, bw, ff)) ->
         Printf.sprintf
           "graph(n=%d seed=%d) cores=%d unit=%s cache=%d lat+%d bw=%d fifo=%d"
           n s nc
           (match su with None -> "-" | Some u -> string_of_int u)
           ca el bw ff)
       QCheck.Gen.(pair gen_plan gen_config))
    (fun (plan_param, (n_cores, scan_unit, cache, extra_latency, bandwidth, fifo)) ->
      let plan = build_random_plan plan_param in
      let oracle_heap = Plan.materialize plan in
      ignore (Cheney_seq.collect oracle_heap);
      let oracle_snap = Verify.snapshot oracle_heap in
      let mem =
        Memsys.with_extra_latency
          {
            Memsys.default_config with
            Memsys.bandwidth;
            fifo_capacity = fifo;
            header_cache_entries = cache;
          }
          extra_latency
      in
      let heap = Plan.materialize plan in
      let pre = Verify.snapshot heap in
      let cfg = Coprocessor.config ~mem ?scan_unit ~n_cores () in
      let stats = Coprocessor.collect cfg heap in
      (match Verify.check_collection ~pre heap with
      | Ok () -> ()
      | Error f -> QCheck.Test.fail_reportf "invariant: %a" Verify.pp_failure f);
      let sum = Coprocessor.stalls_total stats in
      Verify.equal_snapshot oracle_snap (Verify.snapshot heap)
      && sum.Counters.objects_scanned = sum.Counters.objects_evacuated
      && stats.Coprocessor.live_objects = sum.Counters.objects_evacuated)

let qcheck_terminates_within_bound =
  QCheck.Test.make ~name:"collection terminates within a generous cycle bound"
    ~count:40
    (QCheck.make ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s) gen_plan)
    (fun param ->
      let plan = build_random_plan param in
      let heap = Plan.materialize plan in
      let cfg =
        { (Coprocessor.config ~n_cores:8 ()) with Coprocessor.max_cycles = 500_000 }
      in
      let stats = Coprocessor.collect cfg heap in
      stats.Coprocessor.total_cycles < 500_000)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty_heap;
    Alcotest.test_case "null roots" `Quick test_null_roots;
    Alcotest.test_case "single object" `Quick test_single_object;
    Alcotest.test_case "header-only object" `Quick test_header_only_object;
    Alcotest.test_case "self pointer" `Quick test_self_pointer;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "shared diamond" `Quick test_shared_diamond;
    Alcotest.test_case "duplicate roots" `Quick test_duplicate_roots;
    Alcotest.test_case "garbage not copied" `Quick test_garbage_not_copied;
    Alcotest.test_case "large object" `Quick test_large_object;
    Alcotest.test_case "exact fit" `Quick test_heap_overflow;
    Alcotest.test_case "matches oracle on all workloads" `Slow
      test_matches_oracle_on_workloads;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "1 core has no lock stalls" `Quick test_one_core_no_lock_stalls;
    Alcotest.test_case "counter accounting" `Quick test_counter_accounting;
    Alcotest.test_case "fifo accounting" `Quick test_fifo_accounting;
    Alcotest.test_case "wide graph speeds up" `Slow test_speedup_monotone_direction;
    Alcotest.test_case "linear graph does not" `Slow test_linear_graph_no_speedup;
    Alcotest.test_case "empty-worklist metric" `Slow test_empty_worklist_metric;
    Alcotest.test_case "extra latency runs" `Quick test_extra_latency_runs;
    Alcotest.test_case "tiny FIFO still correct" `Quick test_tiny_fifo_still_correct;
    Alcotest.test_case "bandwidth 1 still correct" `Quick
      test_tight_bandwidth_still_correct;
    Alcotest.test_case "scan-unit matches oracle" `Slow
      test_scan_unit_matches_oracle;
    Alcotest.test_case "scan-unit lifts large-object cap" `Quick
      test_scan_unit_lifts_large_object_cap;
    Alcotest.test_case "header cache correct" `Quick
      test_header_cache_correct_and_counted;
    Alcotest.test_case "header cache relieves contention" `Slow
      test_header_cache_relieves_contention;
    Alcotest.test_case "multi-cycle GC" `Quick test_multi_cycle_gc;
    Alcotest.test_case "alloc after GC" `Quick test_alloc_after_gc;
    QCheck_alcotest.to_alcotest qcheck_matches_oracle;
    QCheck_alcotest.to_alcotest qcheck_config_matrix;
    QCheck_alcotest.to_alcotest qcheck_terminates_within_bound;
  ]
