(* Golden-trace corpus: every workload at 1/4/16 cores, seed 42, with
   the event tracer attached. Each run is fingerprinted by the values
   that are properties of the simulated machine — total cycles, live
   set, the per-core stall-counter vector, the event count and the
   event-stream digest — and compared byte-for-byte against a committed
   golden file. The fingerprint deliberately excludes anything that
   depends on the stepping strategy (executed/skipped split, wall
   clock), and the digest excludes kernel skip spans for the same
   reason, so a scheduling change does not invalidate the corpus but
   any drift in machine behavior does.

   To refresh after an intentional behavior change:
     tools/promote_goldens.sh
   (runs this suite with HSGC_PROMOTE_GOLDENS pointing at
   test/goldens/, which rewrites the files instead of comparing). *)

module Tracer = Hsgc_obs.Tracer
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Workloads = Hsgc_objgraph.Workloads

let scale = 0.05
let seed = 42
let core_counts = [ 1; 4; 16 ]

(* Parameterized over the collector so the BSP parity suite
   (test_bsp.ml) can fingerprint the exact same corpus configurations
   through Bsp.collect_par and compare byte-for-byte. *)
let fingerprint_with ~collect workload n_cores =
  let heap = Workloads.build_heap ~scale ~seed workload in
  let obs = Tracer.create ~n_cores () in
  Tracer.enable obs;
  let stats : Coprocessor.gc_stats =
    collect ~obs (Coprocessor.config ~n_cores ()) heap
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "workload %s cores %d seed %d scale %g\n"
       workload.Workloads.name n_cores seed scale);
  Buffer.add_string buf
    (Printf.sprintf "cycles %d\n" stats.Coprocessor.total_cycles);
  Buffer.add_string buf
    (Printf.sprintf "live %d objects %d words\n" stats.Coprocessor.live_objects
       stats.Coprocessor.live_words);
  Buffer.add_string buf
    (Printf.sprintf "fifo %d hits %d misses %d overflows\n"
       stats.Coprocessor.fifo_hits stats.Coprocessor.fifo_misses
       stats.Coprocessor.fifo_overflows);
  Array.iteri
    (fun c pc ->
      Buffer.add_string buf (Printf.sprintf "stalls core %d" c);
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf " %d" (Counters.get pc s)))
        Counters.all_stalls;
      Buffer.add_char buf '\n')
    stats.Coprocessor.per_core;
  Buffer.add_string buf
    (Printf.sprintf "events %d dropped %d\n" (Tracer.length obs)
       (Tracer.dropped obs));
  Buffer.add_string buf (Printf.sprintf "digest %s\n" (Tracer.digest obs));
  Buffer.contents buf

let fingerprint workload n_cores =
  fingerprint_with
    ~collect:(fun ~obs cfg heap -> Coprocessor.collect ~obs cfg heap)
    workload n_cores

let golden_basename workload n_cores =
  Printf.sprintf "%s_c%d.txt" workload.Workloads.name n_cores

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let check workload n_cores () =
  let got = fingerprint workload n_cores in
  let base = golden_basename workload n_cores in
  match Sys.getenv_opt "HSGC_PROMOTE_GOLDENS" with
  | Some dir -> write_file (Filename.concat dir base) got
  | None ->
    (* dune runtest runs with cwd = the sandboxed test directory (the
       goldens are declared deps there); the promote script's re-check
       runs from the repo root. *)
    let dir =
      if Sys.file_exists "goldens" then "goldens"
      else Filename.concat "test" "goldens"
    in
    let path = Filename.concat dir base in
    if not (Sys.file_exists path) then
      Alcotest.failf "golden %s missing — run tools/promote_goldens.sh" base;
    let want = read_file path in
    if got <> want then
      Alcotest.failf
        "golden mismatch for %s.\n\
         --- committed ---\n\
         %s--- this run ---\n\
         %sIf the behavior change is intentional, refresh with \
         tools/promote_goldens.sh."
        base want got

let suite =
  List.concat_map
    (fun w ->
      List.map
        (fun n ->
          Alcotest.test_case
            (Printf.sprintf "%s @ %d cores" w.Workloads.name n)
            `Quick (check w n))
        core_counts)
    Workloads.all
