(* Tests for ASCII table and chart rendering. *)

module Table = Hsgc_util.Table

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_render_basic () =
  let s =
    Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check bool) "has header" true (contains ~sub:"name" s);
  Alcotest.(check bool) "has rule" true (contains ~sub:"---" s);
  Alcotest.(check bool) "has row" true (contains ~sub:"alpha" s);
  (* every line has equal arity content; rows end with newline *)
  Alcotest.(check bool) "ends with newline" true (s.[String.length s - 1] = '\n')

let test_render_alignment () =
  let s =
    Table.render ~header:[ "w"; "n" ] ~rows:[ [ "a"; "5" ]; [ "bb"; "123" ] ]
  in
  let lines = String.split_on_char '\n' s in
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  match widths with
  | w :: rest ->
    List.iter (fun w' -> Alcotest.(check int) "equal line width" w w') rest
  | [] -> Alcotest.fail "no output"

let test_pct () =
  Alcotest.(check string) "pct" "98.58 %" (Table.pct 0.9858);
  Alcotest.(check string) "zero" "0.00 %" (Table.pct 0.0);
  Alcotest.(check string) "one" "100.00 %" (Table.pct 1.0)

let test_fixed () =
  Alcotest.(check string) "fixed 2" "3.14" (Table.fixed 2 3.14159);
  Alcotest.(check string) "fixed 0" "3" (Table.fixed 0 3.14159)

let test_count_with_pct () =
  Alcotest.(check string) "cell" "75023 (1.58 %)"
    (Table.count_with_pct ~total:4735060 75023);
  Alcotest.(check string) "zero total" "5 (0.00 %)"
    (Table.count_with_pct ~total:0 5)

let test_chart_renders () =
  let s =
    Table.Chart.render ~title:"T" ~x_label:"x" ~y_label:"y"
      [
        { Table.Chart.label = "a"; points = [ (1.0, 1.0); (2.0, 2.0) ] };
        { Table.Chart.label = "b"; points = [ (1.0, 2.0); (2.0, 1.0) ] };
      ]
  in
  Alcotest.(check bool) "title" true (contains ~sub:"T" s);
  Alcotest.(check bool) "legend a" true (contains ~sub:"*=a" s);
  Alcotest.(check bool) "legend b" true (contains ~sub:"+=b" s);
  Alcotest.(check bool) "axis" true (contains ~sub:"+--" s)

let test_chart_empty () =
  let s = Table.Chart.render ~title:"E" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "no data notice" true (contains ~sub:"no data" s)

let test_chart_single_point () =
  let s =
    Table.Chart.render ~title:"S" ~x_label:"x" ~y_label:"y"
      [ { Table.Chart.label = "p"; points = [ (1.0, 5.0) ] } ]
  in
  Alcotest.(check bool) "mark plotted" true (contains ~sub:"*" s)

let suite =
  [
    Alcotest.test_case "render basic" `Quick test_render_basic;
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "pct format" `Quick test_pct;
    Alcotest.test_case "fixed format" `Quick test_fixed;
    Alcotest.test_case "count_with_pct" `Quick test_count_with_pct;
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart empty" `Quick test_chart_empty;
    Alcotest.test_case "chart single point" `Quick test_chart_single_point;
  ]
