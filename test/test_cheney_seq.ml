(* Tests for the sequential reference collector. *)

module Heap = Hsgc_heap.Heap
module Semispace = Hsgc_heap.Semispace
module Verify = Hsgc_heap.Verify
module Cheney_seq = Hsgc_core.Cheney_seq

let alloc_exn heap ~pi ~delta =
  match Heap.alloc heap ~pi ~delta with
  | Some a -> a
  | None -> Alcotest.fail "allocation failed"

let test_empty () =
  let heap = Heap.create ~semispace_words:20 in
  let s = Cheney_seq.collect heap in
  Alcotest.(check int) "no objects" 0 s.Cheney_seq.live_objects;
  Alcotest.(check int) "no words" 0 s.Cheney_seq.live_words

let test_simple_graph () =
  let heap = Heap.create ~semispace_words:100 in
  let b = alloc_exn heap ~pi:0 ~delta:2 in
  let a = alloc_exn heap ~pi:1 ~delta:1 in
  Heap.set_pointer heap a 0 b;
  Heap.set_data heap a 0 77;
  Heap.set_data heap b 1 88;
  Heap.set_roots heap [| a |];
  let pre = Verify.snapshot heap in
  let s = Cheney_seq.collect heap in
  Alcotest.(check int) "two live" 2 s.Cheney_seq.live_objects;
  Alcotest.(check int) "words" (4 + 4) s.Cheney_seq.live_words;
  (match Verify.check_collection ~pre heap with
  | Ok () -> ()
  | Error f -> Alcotest.failf "%a" Verify.pp_failure f);
  (* Roots updated to the new space. *)
  Alcotest.(check bool) "root moved" true
    (Semispace.contains (Heap.from_space heap) heap.Heap.roots.(0))

let test_breadth_first_order () =
  (* Cheney copies in BFS order: root, then its children in slot order. *)
  let heap = Heap.create ~semispace_words:100 in
  let c1 = alloc_exn heap ~pi:0 ~delta:1 in
  let c2 = alloc_exn heap ~pi:0 ~delta:2 in
  let r = alloc_exn heap ~pi:2 ~delta:0 in
  Heap.set_pointer heap r 0 c1;
  Heap.set_pointer heap r 1 c2;
  Heap.set_roots heap [| r |];
  ignore (Cheney_seq.collect heap);
  let space = Heap.from_space heap in
  let order = ref [] in
  Heap.iter_objects heap space (fun o -> order := Heap.obj_delta heap o :: !order);
  (* r (delta 0) first, then c1 (1), then c2 (2). *)
  Alcotest.(check (list int)) "BFS copy order" [ 0; 1; 2 ] (List.rev !order)

let test_garbage_reclaimed () =
  let heap = Heap.create ~semispace_words:200 in
  let live = alloc_exn heap ~pi:0 ~delta:1 in
  for _ = 1 to 20 do
    ignore (alloc_exn heap ~pi:0 ~delta:2)
  done;
  Heap.set_roots heap [| live |];
  let s = Cheney_seq.collect heap in
  Alcotest.(check int) "one survivor" 1 s.Cheney_seq.live_objects;
  (* The freed space is available again. *)
  Alcotest.(check int) "space compacted" 3 (Semispace.used (Heap.from_space heap))

let test_overflow () =
  (* A live set larger than a semispace cannot happen through alloc, but
     a hostile tospace can be simulated by shrinking it. *)
  let heap = Heap.create ~semispace_words:30 in
  let a = alloc_exn heap ~pi:1 ~delta:10 in
  let b = alloc_exn heap ~pi:0 ~delta:10 in
  Heap.set_pointer heap a 0 b;
  Heap.set_roots heap [| a |];
  (* Shrink tospace so 25 live words cannot fit. *)
  let to_sp = Heap.to_space heap in
  let shrunk = Semispace.create ~base:to_sp.Semispace.base ~words:20 in
  if heap.Heap.a_is_current then heap.Heap.space_b <- shrunk
  else heap.Heap.space_a <- shrunk;
  Alcotest.check_raises "overflow raised" Cheney_seq.Heap_overflow (fun () ->
      ignore (Cheney_seq.collect heap))

let test_repeated_cycles () =
  let heap = Heap.create ~semispace_words:300 in
  let b = alloc_exn heap ~pi:1 ~delta:1 in
  let a = alloc_exn heap ~pi:1 ~delta:1 in
  Heap.set_pointer heap a 0 b;
  Heap.set_pointer heap b 0 a;
  Heap.set_roots heap [| a |];
  for i = 1 to 5 do
    let pre = Verify.snapshot heap in
    let s = Cheney_seq.collect heap in
    Alcotest.(check int) (Printf.sprintf "cycle %d live" i) 2 s.Cheney_seq.live_objects;
    match Verify.check_collection ~pre heap with
    | Ok () -> ()
    | Error f -> Alcotest.failf "cycle %d: %a" i Verify.pp_failure f
  done

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "simple graph" `Quick test_simple_graph;
    Alcotest.test_case "BFS copy order" `Quick test_breadth_first_order;
    Alcotest.test_case "garbage reclaimed" `Quick test_garbage_reclaimed;
    Alcotest.test_case "tospace overflow" `Quick test_overflow;
    Alcotest.test_case "repeated cycles" `Quick test_repeated_cycles;
  ]
