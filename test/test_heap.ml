(* Tests for the object heap. *)

module Heap = Hsgc_heap.Heap
module Header = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace

let alloc_exn heap ~pi ~delta =
  match Heap.alloc heap ~pi ~delta with
  | Some a -> a
  | None -> Alcotest.fail "allocation unexpectedly failed"

let test_null_reserved () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:1 ~delta:1 in
  Alcotest.(check bool) "first object is not at null" true (a <> Heap.null);
  Alcotest.(check int) "null is 0" 0 Heap.null

let test_alloc_layout () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:2 ~delta:3 in
  let b = alloc_exn heap ~pi:0 ~delta:0 in
  Alcotest.(check int) "objects contiguous" (a + 2 + 2 + 3) b;
  Alcotest.(check int) "pi" 2 (Heap.obj_pi heap a);
  Alcotest.(check int) "delta" 3 (Heap.obj_delta heap a);
  Alcotest.(check int) "size" 7 (Heap.obj_size heap a);
  Alcotest.(check bool) "white" true (Heap.obj_state heap a = Header.White)

let test_alloc_zeroed () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:2 ~delta:2 in
  Alcotest.(check int) "pointer slot null" Heap.null (Heap.get_pointer heap a 0);
  Alcotest.(check int) "data slot zero" 0 (Heap.get_data heap a 1);
  Alcotest.(check int) "header1 zero" 0 (Heap.header1 heap a)

let test_pointer_data_accessors () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:2 ~delta:2 in
  let b = alloc_exn heap ~pi:0 ~delta:1 in
  Heap.set_pointer heap a 1 b;
  Heap.set_data heap a 0 4242;
  Alcotest.(check int) "pointer readback" b (Heap.get_pointer heap a 1);
  Alcotest.(check int) "data readback" 4242 (Heap.get_data heap a 0);
  (* Pointer and data areas do not overlap. *)
  Alcotest.(check int) "slot 0 pointer untouched" Heap.null
    (Heap.get_pointer heap a 0);
  Alcotest.(check int) "data 1 untouched" 0 (Heap.get_data heap a 1)

let test_alloc_exhaustion () =
  let heap = Heap.create ~semispace_words:10 in
  (* size 2+0+4 = 6 fits; another 6 does not. *)
  Alcotest.(check bool) "first fits" true (Heap.alloc heap ~pi:0 ~delta:4 <> None);
  Alcotest.(check bool) "second rejected" true
    (Heap.alloc heap ~pi:0 ~delta:4 = None)

let test_flip () =
  let heap = Heap.create ~semispace_words:50 in
  let from0 = Heap.from_space heap and to0 = Heap.to_space heap in
  Alcotest.(check bool) "disjoint" true (from0.Semispace.base <> to0.Semispace.base);
  ignore (alloc_exn heap ~pi:0 ~delta:1);
  Heap.flip heap;
  Alcotest.(check bool) "roles swapped" true
    (Heap.from_space heap == to0 && Heap.to_space heap == from0);
  Alcotest.(check int) "new tospace reset" 0 (Semispace.used (Heap.to_space heap))

let test_roots () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:0 ~delta:1 in
  Alcotest.(check int) "no roots" 0 (Heap.root_count heap);
  Heap.add_root heap a;
  Alcotest.(check int) "one root" 1 (Heap.root_count heap);
  Heap.set_roots heap [| a; a |];
  Alcotest.(check int) "replaced" 2 (Heap.root_count heap)

let test_iter_objects () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:1 ~delta:0 in
  let b = alloc_exn heap ~pi:0 ~delta:5 in
  let c = alloc_exn heap ~pi:2 ~delta:2 in
  let seen = ref [] in
  Heap.iter_objects heap (Heap.from_space heap) (fun o -> seen := o :: !seen);
  Alcotest.(check (list int)) "address order" [ a; b; c ] (List.rev !seen)

let build_diamond heap =
  (* r -> a, b; a -> c; b -> c *)
  let c = alloc_exn heap ~pi:0 ~delta:1 in
  let a = alloc_exn heap ~pi:1 ~delta:0 in
  let b = alloc_exn heap ~pi:1 ~delta:0 in
  let r = alloc_exn heap ~pi:2 ~delta:0 in
  Heap.set_pointer heap a 0 c;
  Heap.set_pointer heap b 0 c;
  Heap.set_pointer heap r 0 a;
  Heap.set_pointer heap r 1 b;
  Heap.set_roots heap [| r |];
  (r, a, b, c)

let test_reachable_diamond () =
  let heap = Heap.create ~semispace_words:100 in
  let r, a, b, c = build_diamond heap in
  let garbage = alloc_exn heap ~pi:0 ~delta:3 in
  let reach = Heap.reachable heap in
  Alcotest.(check int) "four reachable" 4 (Hashtbl.length reach);
  List.iter
    (fun o -> Alcotest.(check bool) "reachable member" true (Hashtbl.mem reach o))
    [ r; a; b; c ];
  Alcotest.(check bool) "garbage excluded" false (Hashtbl.mem reach garbage)

let test_reachable_cycle () =
  let heap = Heap.create ~semispace_words:100 in
  let a = alloc_exn heap ~pi:1 ~delta:0 in
  let b = alloc_exn heap ~pi:1 ~delta:0 in
  Heap.set_pointer heap a 0 b;
  Heap.set_pointer heap b 0 a;
  Heap.set_roots heap [| a |];
  Alcotest.(check int) "cycle terminates" 2 (Hashtbl.length (Heap.reachable heap))

let test_live_words () =
  let heap = Heap.create ~semispace_words:100 in
  let _ = build_diamond heap in
  ignore (alloc_exn heap ~pi:0 ~delta:9);
  (* diamond footprint: c=3, a=3, b=3, r=4 *)
  Alcotest.(check int) "live words" 13 (Heap.live_words heap)

let test_null_roots_ignored () =
  let heap = Heap.create ~semispace_words:100 in
  Heap.set_roots heap [| Heap.null; Heap.null |];
  Alcotest.(check int) "nothing reachable" 0 (Hashtbl.length (Heap.reachable heap))

let qcheck_accessor_roundtrip =
  QCheck.Test.make ~name:"pointer/data slots are independent cells" ~count:200
    QCheck.(triple (int_range 0 6) (int_range 0 6) small_nat)
    (fun (pi, delta, seed) ->
      let heap = Heap.create ~semispace_words:200 in
      match Heap.alloc heap ~pi ~delta with
      | None -> false
      | Some a ->
        let target =
          match Heap.alloc heap ~pi:0 ~delta:0 with Some t -> t | None -> a
        in
        (* write a distinct value everywhere, then read everything back *)
        for i = 0 to pi - 1 do
          Heap.set_pointer heap a i (if i mod 2 = 0 then target else Heap.null)
        done;
        for i = 0 to delta - 1 do
          Heap.set_data heap a i (seed + (i * 31))
        done;
        let ok = ref true in
        for i = 0 to pi - 1 do
          let expected = if i mod 2 = 0 then target else Heap.null in
          if Heap.get_pointer heap a i <> expected then ok := false
        done;
        for i = 0 to delta - 1 do
          if Heap.get_data heap a i <> seed + (i * 31) then ok := false
        done;
        !ok && Heap.obj_pi heap a = pi && Heap.obj_delta heap a = delta)

let suite =
  [
    Alcotest.test_case "null reserved" `Quick test_null_reserved;
    Alcotest.test_case "alloc layout" `Quick test_alloc_layout;
    Alcotest.test_case "alloc zeroed" `Quick test_alloc_zeroed;
    Alcotest.test_case "pointer/data accessors" `Quick test_pointer_data_accessors;
    Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
    Alcotest.test_case "flip" `Quick test_flip;
    Alcotest.test_case "roots" `Quick test_roots;
    Alcotest.test_case "iter_objects" `Quick test_iter_objects;
    Alcotest.test_case "reachable diamond" `Quick test_reachable_diamond;
    Alcotest.test_case "reachable cycle" `Quick test_reachable_cycle;
    Alcotest.test_case "live words" `Quick test_live_words;
    Alcotest.test_case "null roots ignored" `Quick test_null_roots_ignored;
    QCheck_alcotest.to_alcotest qcheck_accessor_roundtrip;
  ]
