(* Tests for the deterministic SplitMix64 generator. *)

module Rng = Hsgc_util.Rng

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  let xa = Rng.int64 a in
  let xb = Rng.int64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Rng.int64 a);
  (* advancing a does not affect b *)
  let xa2 = Rng.int64 a and xb2 = Rng.int64 b in
  Alcotest.(check bool) "streams advanced separately" true (xa2 <> xb2 || xa2 = xb2)

let test_split_diverges () =
  let a = Rng.create 99 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check int) "split streams do not collide" 0 !same

let test_int_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
  done

let test_int_covers () =
  let r = Rng.create 5 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int r 8) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.float r 3.5 in
    if x < 0.0 || x >= 3.5 then Alcotest.failf "out of range: %f" x
  done

let test_bool_balanced () =
  let r = Rng.create 13 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "fair coin (%.3f)" frac)
    true
    (frac > 0.45 && frac < 0.55)

let test_choose () =
  let r = Rng.create 17 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.choose r arr in
    Alcotest.(check bool) "member" true (Array.mem x arr)
  done

let test_shuffle_permutation () =
  let r = Rng.create 19 in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" orig sorted

let test_shuffle_moves () =
  let r = Rng.create 23 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  Alcotest.(check bool) "not identity" true (arr <> Array.init 50 Fun.id)

let test_geometric () =
  let r = Rng.create 29 in
  let sum = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let x = Rng.geometric r ~p:0.5 in
    if x < 0 then Alcotest.fail "negative geometric draw";
    sum := !sum + x
  done;
  (* mean (1-p)/p = 1.0 *)
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean near 1.0 (%.3f)" mean)
    true
    (mean > 0.9 && mean < 1.1)

let test_geometric_p1 () =
  let r = Rng.create 31 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 always 0" 0 (Rng.geometric r ~p:1.0)
  done

let test_zipf_range () =
  let r = Rng.create 37 in
  for _ = 1 to 5_000 do
    let x = Rng.zipf r ~n:10 ~s:1.2 in
    if x < 0 || x >= 10 then Alcotest.failf "zipf out of range: %d" x
  done

let test_zipf_skew () =
  let r = Rng.create 41 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let x = Rng.zipf r ~n:10 ~s:1.5 in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "rank 1 beats rank 5" true (counts.(1) > counts.(5));
  Alcotest.(check bool)
    "rank 0 dominates (>30%)" true
    (counts.(0) > 6_000)

let test_zipf_single () =
  let r = Rng.create 43 in
  Alcotest.(check int) "n=1 always 0" 0 (Rng.zipf r ~n:1 ~s:1.0)

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"rng int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let x = Rng.int r bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let qcheck_deterministic =
  QCheck.Test.make ~name:"rng deterministic in seed" ~count:200 QCheck.small_int
    (fun seed ->
      let a = Rng.create seed and b = Rng.create seed in
      List.for_all
        (fun _ -> Rng.int64 a = Rng.int64 b)
        [ (); (); (); (); () ])

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers residues" `Quick test_int_covers;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    Alcotest.test_case "choose member" `Quick test_choose;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle moves elements" `Quick test_shuffle_moves;
    Alcotest.test_case "geometric mean" `Quick test_geometric;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
    Alcotest.test_case "zipf range" `Quick test_zipf_range;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf single" `Quick test_zipf_single;
    QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
    QCheck_alcotest.to_alcotest qcheck_deterministic;
  ]
