(* Tests for the mutator model. *)

module Mutator = Hsgc_objgraph.Mutator
module Workloads = Hsgc_objgraph.Workloads
module Heap = Hsgc_heap.Heap
module Verify = Hsgc_heap.Verify
module Rng = Hsgc_util.Rng
module Cheney_seq = Hsgc_core.Cheney_seq
module Coprocessor = Hsgc_coproc.Coprocessor

let test_churn_keeps_heap_collectable () =
  let heap = Workloads.build_heap ~scale:0.2 ~seed:1 Workloads.jlisp in
  let mut = Mutator.create heap (Rng.create 2) in
  (match Mutator.churn mut ~allocs:200 with
  | `Ok -> ()
  | `Heap_full -> Alcotest.fail "unexpected heap full");
  Alcotest.(check int) "allocation counted" 200 (Mutator.allocated mut);
  let pre = Verify.snapshot heap in
  ignore (Cheney_seq.collect heap);
  match Verify.check_collection ~pre heap with
  | Ok () -> ()
  | Error f -> Alcotest.failf "churned heap fails: %a" Verify.pp_failure f

let test_heap_full () =
  let heap = Heap.create ~semispace_words:64 in
  (match Heap.alloc heap ~pi:1 ~delta:1 with
  | Some a -> Heap.set_roots heap [| a |]
  | None -> Alcotest.fail "seed alloc");
  let mut = Mutator.create heap (Rng.create 3) in
  match Mutator.churn mut ~allocs:1_000 with
  | `Heap_full -> ()
  | `Ok -> Alcotest.fail "tiny heap should fill up"

let test_churn_across_gcs () =
  let heap = Workloads.build_heap ~scale:0.02 ~seed:4 Workloads.javacc in
  let mut = Mutator.create heap (Rng.create 5) in
  let cfg = Coprocessor.config ~n_cores:4 () in
  for _ = 1 to 3 do
    (match Mutator.churn mut ~allocs:300 with `Ok | `Heap_full -> ());
    let pre = Verify.snapshot heap in
    ignore (Coprocessor.collect cfg heap);
    match Verify.check_collection ~pre heap with
    | Ok () -> ()
    | Error f -> Alcotest.failf "cycle failed: %a" Verify.pp_failure f
  done

let test_churn_creates_garbage () =
  let heap = Workloads.build_heap ~scale:0.3 ~seed:6 Workloads.jlisp in
  let live_before = Heap.live_words heap in
  let used_before = Hsgc_heap.Semispace.used (Heap.from_space heap) in
  let mut = Mutator.create heap (Rng.create 7) in
  (match Mutator.churn mut ~allocs:500 with
  | `Ok -> ()
  | `Heap_full -> Alcotest.fail "heap too small for churn");
  let live_after = Heap.live_words heap in
  let used_after = Hsgc_heap.Semispace.used (Heap.from_space heap) in
  Alcotest.(check bool) "allocated words" true (used_after > used_before);
  (* Some of the new objects are garbage: live grows less than used. *)
  Alcotest.(check bool) "garbage produced" true
    (live_after - live_before < used_after - used_before)

let qcheck_churn_preserves_collectability =
  QCheck.Test.make ~name:"random churn never corrupts the heap" ~count:40
    QCheck.(pair small_nat (int_range 0 400))
    (fun (seed, allocs) ->
      let heap = Workloads.build_heap ~scale:0.1 ~seed:(seed + 1) Workloads.jlisp in
      let mut = Mutator.create heap (Rng.create (seed + 2)) in
      (match Mutator.churn mut ~allocs with `Ok | `Heap_full -> ());
      let pre = Verify.snapshot heap in
      ignore (Cheney_seq.collect heap);
      match Verify.check_collection ~pre heap with
      | Ok () -> true
      | Error f -> QCheck.Test.fail_reportf "%a" Verify.pp_failure f)

let suite =
  [
    Alcotest.test_case "churn keeps heap collectable" `Quick
      test_churn_keeps_heap_collectable;
    Alcotest.test_case "heap full detected" `Quick test_heap_full;
    Alcotest.test_case "churn across GCs" `Quick test_churn_across_gcs;
    Alcotest.test_case "churn creates garbage" `Quick test_churn_creates_garbage;
    QCheck_alcotest.to_alcotest qcheck_churn_preserves_collectability;
  ]
