(* Tests for the signal-trace module and its coprocessor hook. *)

module Trace = Hsgc_coproc.Trace
module Coprocessor = Hsgc_coproc.Coprocessor
module Workloads = Hsgc_objgraph.Workloads

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_interval_sampling () =
  let t = Trace.create ~interval:10 () in
  for cycle = 0 to 99 do
    Trace.record t ~cycle ~scan:cycle ~free:(cycle + 5) ~fifo_depth:1
      ~activity:".."
  done;
  Alcotest.(check int) "one sample per interval" 10 (Trace.length t);
  match Trace.samples t with
  | first :: _ ->
    Alcotest.(check int) "first at cycle 0" 0 first.Trace.cycle;
    Alcotest.(check int) "backlog computed" 5 first.Trace.backlog_words
  | [] -> Alcotest.fail "no samples"

let test_due () =
  let t = Trace.create ~interval:10 () in
  Alcotest.(check bool) "due at 0" true (Trace.due t ~cycle:0);
  Trace.record t ~cycle:0 ~scan:0 ~free:0 ~fifo_depth:0 ~activity:".";
  Alcotest.(check bool) "not due at 5" false (Trace.due t ~cycle:5);
  Alcotest.(check bool) "due at 10" true (Trace.due t ~cycle:10)

let test_capacity_thinning () =
  let t = Trace.create ~interval:1 ~capacity:16 () in
  for cycle = 0 to 999 do
    Trace.record t ~cycle ~scan:0 ~free:0 ~fifo_depth:0 ~activity:"."
  done;
  Alcotest.(check bool) "bounded" true (Trace.length t <= 16);
  Alcotest.(check bool) "interval grew" true (Trace.interval t > 1)

let test_timeline_renders () =
  let t = Trace.create ~interval:1 () in
  for cycle = 0 to 20 do
    Trace.record t ~cycle ~scan:cycle ~free:(2 * cycle) ~fifo_depth:3
      ~activity:(if cycle mod 2 = 0 then "ce" else ".k")
  done;
  let s = Trace.timeline ~width:10 t in
  Alcotest.(check bool) "has backlog row" true (contains ~sub:"backlog" s);
  Alcotest.(check bool) "has core rows" true
    (contains ~sub:"core 0" s && contains ~sub:"core 1" s);
  Alcotest.(check bool) "has legend" true (contains ~sub:"legend" s)

let test_timeline_empty () =
  let t = Trace.create () in
  Alcotest.(check string) "empty notice" "(no samples)\n" (Trace.timeline t)

let test_csv () =
  let t = Trace.create ~interval:5 () in
  Trace.record t ~cycle:0 ~scan:1 ~free:9 ~fifo_depth:2 ~activity:"cc";
  let csv = Trace.to_csv t in
  Alcotest.(check bool) "header" true
    (contains ~sub:"cycle,scan,free,backlog_words,fifo_depth,core_activity" csv);
  Alcotest.(check bool) "row" true (contains ~sub:"0,1,9,8,2,cc" csv)

let test_coprocessor_hook () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:3 Workloads.db in
  let trace = Trace.create ~interval:8 () in
  let stats =
    Coprocessor.collect ~trace (Coprocessor.config ~n_cores:4 ()) heap
  in
  Alcotest.(check bool) "samples recorded" true (Trace.length trace > 10);
  (match Trace.samples trace with
  | s :: _ ->
    Alcotest.(check int) "activity string matches core count" 4
      (String.length s.Trace.core_activity)
  | [] -> Alcotest.fail "no samples");
  (* The trace must not perturb the simulation. *)
  let heap2 = Workloads.build_heap ~scale:0.05 ~seed:3 Workloads.db in
  let stats2 = Coprocessor.collect (Coprocessor.config ~n_cores:4 ()) heap2 in
  Alcotest.(check int) "identical cycle count with and without trace"
    stats2.Coprocessor.total_cycles stats.Coprocessor.total_cycles

let test_linear_workload_shows_idle_cores () =
  let heap = Workloads.build_heap ~scale:0.1 ~seed:3 Workloads.search in
  let trace = Trace.create ~interval:4 () in
  ignore (Coprocessor.collect ~trace (Coprocessor.config ~n_cores:8 ()) heap);
  (* Most cores should be seeking work ('.') most of the time. *)
  let seeking = ref 0 and total = ref 0 in
  List.iter
    (fun s ->
      String.iter
        (fun c ->
          incr total;
          if c = '.' then incr seeking)
        s.Trace.core_activity)
    (Trace.samples trace);
  Alcotest.(check bool) "mostly idle on a chain" true
    (float_of_int !seeking > 0.5 *. float_of_int !total)

let suite =
  [
    Alcotest.test_case "interval sampling" `Quick test_interval_sampling;
    Alcotest.test_case "due" `Quick test_due;
    Alcotest.test_case "capacity thinning" `Quick test_capacity_thinning;
    Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
    Alcotest.test_case "timeline empty" `Quick test_timeline_empty;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "coprocessor hook" `Quick test_coprocessor_hook;
    Alcotest.test_case "idle cores visible on chain" `Quick
      test_linear_workload_shows_idle_cores;
  ]
