(* Tests for the signal-trace module and its coprocessor hook. *)

module Trace = Hsgc_coproc.Trace
module Coprocessor = Hsgc_coproc.Coprocessor
module Workloads = Hsgc_objgraph.Workloads

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_interval_sampling () =
  let t = Trace.create ~interval:10 () in
  for cycle = 0 to 99 do
    Trace.record t ~cycle ~scan:cycle ~free:(cycle + 5) ~fifo_depth:1
      ~activity:".."
  done;
  Alcotest.(check int) "one sample per interval" 10 (Trace.length t);
  match Trace.samples t with
  | first :: _ ->
    Alcotest.(check int) "first at cycle 0" 0 first.Trace.cycle;
    Alcotest.(check int) "backlog computed" 5 first.Trace.backlog_words
  | [] -> Alcotest.fail "no samples"

let test_due () =
  let t = Trace.create ~interval:10 () in
  Alcotest.(check bool) "due at 0" true (Trace.due t ~cycle:0);
  Trace.record t ~cycle:0 ~scan:0 ~free:0 ~fifo_depth:0 ~activity:".";
  Alcotest.(check bool) "not due at 5" false (Trace.due t ~cycle:5);
  Alcotest.(check bool) "due at 10" true (Trace.due t ~cycle:10)

let test_capacity_thinning () =
  let t = Trace.create ~interval:1 ~capacity:16 () in
  for cycle = 0 to 999 do
    Trace.record t ~cycle ~scan:0 ~free:0 ~fifo_depth:0 ~activity:"."
  done;
  Alcotest.(check bool) "bounded" true (Trace.length t <= 16);
  Alcotest.(check bool) "interval grew" true (Trace.interval t > 1)

let test_thinning_keeps_every_second_sample () =
  (* One controlled overflow: capacity 8, interval 1, cycles 0..7. The
     thinning must keep every second sample and double the interval. *)
  let t = Trace.create ~interval:1 ~capacity:8 () in
  for cycle = 0 to 7 do
    Trace.record t ~cycle ~scan:cycle ~free:(cycle * 2) ~fifo_depth:cycle
      ~activity:"."
  done;
  Alcotest.(check int) "interval doubled" 2 (Trace.interval t);
  Alcotest.(check (list int)) "every second sample retained" [ 0; 2; 4; 6 ]
    (List.map (fun s -> s.Trace.cycle) (Trace.samples t));
  (* The retained samples carry their original signals, not copies of
     their dropped neighbors. *)
  List.iter
    (fun s ->
      Alcotest.(check int) "scan preserved" s.Trace.cycle s.Trace.scan;
      Alcotest.(check int) "backlog preserved" s.Trace.cycle
        s.Trace.backlog_words)
    (Trace.samples t)

let test_thinning_converges_under_load () =
  (* Repeated overflows: the interval keeps doubling (a power of two),
     the sample count stays bounded, and the retained cycles stay
     strictly increasing with full-range coverage. *)
  let t = Trace.create ~interval:1 ~capacity:16 () in
  for cycle = 0 to 9999 do
    Trace.record t ~cycle ~scan:0 ~free:0 ~fifo_depth:0 ~activity:".";
    assert (Trace.length t <= 16)
  done;
  let iv = Trace.interval t in
  Alcotest.(check bool) "interval is a power of two" true
    (iv land (iv - 1) = 0);
  Alcotest.(check bool) "interval grew to cover the run" true (iv >= 512);
  let cycles = List.map (fun s -> s.Trace.cycle) (Trace.samples t) in
  Alcotest.(check int) "first sample survives every thinning" 0
    (List.hd cycles);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (increasing cycles);
  Alcotest.(check bool) "covers the tail" true
    (List.nth cycles (List.length cycles - 1) >= 9999 - (2 * iv))

let test_annotate_ordering () =
  let t = Trace.create () in
  Trace.annotate t ~cycle:50 "late";
  Trace.annotate t ~cycle:10 "early";
  Trace.annotate t ~cycle:30 "middle";
  Trace.annotate t ~cycle:10 "early-second";
  Alcotest.(check (list (pair int string)))
    "notes chronological, ties in insertion order"
    [ (10, "early"); (10, "early-second"); (30, "middle"); (50, "late") ]
    (Trace.notes t)

let test_timeline_renders () =
  let t = Trace.create ~interval:1 () in
  for cycle = 0 to 20 do
    Trace.record t ~cycle ~scan:cycle ~free:(2 * cycle) ~fifo_depth:3
      ~activity:(if cycle mod 2 = 0 then "ce" else ".k")
  done;
  let s = Trace.timeline ~width:10 t in
  Alcotest.(check bool) "has backlog row" true (contains ~sub:"backlog" s);
  Alcotest.(check bool) "has core rows" true
    (contains ~sub:"core 0" s && contains ~sub:"core 1" s);
  Alcotest.(check bool) "has legend" true (contains ~sub:"legend" s)

let test_timeline_empty () =
  let t = Trace.create () in
  Alcotest.(check string) "empty notice" "(no samples)\n" (Trace.timeline t)

let test_csv () =
  let t = Trace.create ~interval:5 () in
  Trace.record t ~cycle:0 ~scan:1 ~free:9 ~fifo_depth:2 ~activity:"cc";
  let csv = Trace.to_csv t in
  Alcotest.(check bool) "header" true
    (contains ~sub:"cycle,scan,free,backlog_words,fifo_depth,core_activity" csv);
  Alcotest.(check bool) "row" true (contains ~sub:"0,1,9,8,2,cc" csv)

let test_coprocessor_hook () =
  let heap = Workloads.build_heap ~scale:0.05 ~seed:3 Workloads.db in
  let trace = Trace.create ~interval:8 () in
  let stats =
    Coprocessor.collect ~trace (Coprocessor.config ~n_cores:4 ()) heap
  in
  Alcotest.(check bool) "samples recorded" true (Trace.length trace > 10);
  (match Trace.samples trace with
  | s :: _ ->
    Alcotest.(check int) "activity string matches core count" 4
      (String.length s.Trace.core_activity)
  | [] -> Alcotest.fail "no samples");
  (* The trace must not perturb the simulation. *)
  let heap2 = Workloads.build_heap ~scale:0.05 ~seed:3 Workloads.db in
  let stats2 = Coprocessor.collect (Coprocessor.config ~n_cores:4 ()) heap2 in
  Alcotest.(check int) "identical cycle count with and without trace"
    stats2.Coprocessor.total_cycles stats.Coprocessor.total_cycles

let test_linear_workload_shows_idle_cores () =
  let heap = Workloads.build_heap ~scale:0.1 ~seed:3 Workloads.search in
  let trace = Trace.create ~interval:4 () in
  ignore (Coprocessor.collect ~trace (Coprocessor.config ~n_cores:8 ()) heap);
  (* Most cores should be seeking work ('.') most of the time. *)
  let seeking = ref 0 and total = ref 0 in
  List.iter
    (fun s ->
      String.iter
        (fun c ->
          incr total;
          if c = '.' then incr seeking)
        s.Trace.core_activity)
    (Trace.samples trace);
  Alcotest.(check bool) "mostly idle on a chain" true
    (float_of_int !seeking > 0.5 *. float_of_int !total)

let suite =
  [
    Alcotest.test_case "interval sampling" `Quick test_interval_sampling;
    Alcotest.test_case "due" `Quick test_due;
    Alcotest.test_case "capacity thinning" `Quick test_capacity_thinning;
    Alcotest.test_case "thinning keeps every second sample" `Quick
      test_thinning_keeps_every_second_sample;
    Alcotest.test_case "thinning converges under load" `Quick
      test_thinning_converges_under_load;
    Alcotest.test_case "annotate/notes ordering" `Quick test_annotate_ordering;
    Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
    Alcotest.test_case "timeline empty" `Quick test_timeline_empty;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "coprocessor hook" `Quick test_coprocessor_hook;
    Alcotest.test_case "idle cores visible on chain" `Quick
      test_linear_workload_shows_idle_cores;
  ]
