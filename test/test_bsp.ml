(* The partitioned BSP kernel (Hsgc_coproc.Bsp) and its runtime pieces
   (Partition, Mailbox, Domain_pool.Pool): planner and protocol units,
   then the load-bearing property — three-way parity. Naive stepping,
   event-driven skipping, and the BSP superstep schedule must agree on
   every machine statistic, verify result, and trace digest at every
   core count, partition count, and fault intensity. *)

module Partition = Hsgc_sim.Partition
module Mailbox = Hsgc_sim.Mailbox
module Domain_pool = Hsgc_sim.Domain_pool
module Pool = Domain_pool.Pool
module Coprocessor = Hsgc_coproc.Coprocessor
module Bsp = Hsgc_coproc.Bsp
module Tracer = Hsgc_obs.Tracer
module Profiler = Hsgc_obs.Profiler
module Memsys = Hsgc_memsim.Memsys
module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify
module Injector = Hsgc_fault.Injector

(* ------------------------------------------------------------------ *)
(* Partition planner                                                   *)
(* ------------------------------------------------------------------ *)

let test_plan_shapes () =
  let p = Partition.plan ~n_cores:16 ~n_partitions:8 in
  Alcotest.(check int) "cores" 16 (Partition.n_cores p);
  Alcotest.(check int) "partitions" 8 (Partition.n_partitions p);
  for q = 0 to 7 do
    let lo, hi = Partition.range p ~partition:q in
    Alcotest.(check int) (Printf.sprintf "p%d size" q) 2 (hi - lo);
    for c = lo to hi - 1 do
      Alcotest.(check int)
        (Printf.sprintf "owner of core %d" c)
        q
        (Partition.owner_of p ~core:c)
    done
  done;
  (* Remainder spreads over the leading partitions. *)
  let p = Partition.plan ~n_cores:5 ~n_partitions:3 in
  let sizes =
    List.map
      (fun q ->
        let lo, hi = Partition.range p ~partition:q in
        hi - lo)
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "5 cores over 3" [ 2; 2; 1 ] sizes;
  (* Ownership is contiguous and covers every core exactly once. *)
  let owner = Partition.owner p in
  Alcotest.(check int) "owner array length" 5 (Array.length owner);
  Array.iteri
    (fun i q -> if i > 0 then assert (q >= owner.(i - 1)))
    owner

let test_plan_validate () =
  let err ~n_cores ~n_partitions =
    match Partition.validate ~n_cores ~n_partitions with
    | Error _ -> ()
    | Ok () ->
      Alcotest.failf "validate accepted cores=%d partitions=%d" n_cores
        n_partitions
  in
  err ~n_cores:4 ~n_partitions:0;
  err ~n_cores:4 ~n_partitions:(-3);
  err ~n_cores:4 ~n_partitions:5;
  err ~n_cores:0 ~n_partitions:1;
  (match Partition.validate ~n_cores:16 ~n_partitions:16 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "one core per partition rejected: %s" m);
  (match Partition.plan ~n_cores:4 ~n_partitions:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "plan must reject more partitions than cores");
  let d = Partition.default_partitions ~n_cores:4 in
  if d < 1 || d > 4 then Alcotest.failf "default_partitions out of range: %d" d;
  Alcotest.(check int) "single-core default" 1
    (Partition.default_partitions ~n_cores:1)

let test_plan_interfaces () =
  Alcotest.(check int) "single partition has no interfaces" 0
    (List.length (Partition.interfaces (Partition.plan ~n_cores:8 ~n_partitions:1)));
  let is = Partition.interfaces (Partition.plan ~n_cores:8 ~n_partitions:4) in
  Alcotest.(check (list string))
    "dense interface set"
    [ "sync-block"; "header-fifo"; "memory-bus" ]
    (List.map Partition.interface_name is);
  let s =
    Format.asprintf "%a" Partition.pp (Partition.plan ~n_cores:8 ~n_partitions:4)
  in
  if not (String.length s > 0) then Alcotest.fail "pp produced nothing"

(* ------------------------------------------------------------------ *)
(* Mailboxes                                                           *)
(* ------------------------------------------------------------------ *)

let test_mailbox_protocol () =
  let mb = Mailbox.create ~producers:4 in
  Alcotest.(check int) "producers" 4 (Mailbox.producers mb);
  Alcotest.(check (option int)) "empty take" None (Mailbox.take mb ~producer:2);
  Mailbox.post mb ~producer:2 42;
  Alcotest.(check (option int)) "peek" (Some 42) (Mailbox.peek mb ~producer:2);
  (match Mailbox.post mb ~producer:2 43 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double post must raise");
  Alcotest.(check (option int)) "take" (Some 42) (Mailbox.take mb ~producer:2);
  Alcotest.(check (option int)) "taken" None (Mailbox.take mb ~producer:2);
  (* Drain visits slots in ascending producer order. *)
  List.iter (fun p -> Mailbox.post mb ~producer:p (p * 10)) [ 3; 0; 2; 1 ];
  let seen = ref [] in
  Mailbox.drain mb (fun p v -> seen := (p, v) :: !seen);
  Alcotest.(check (list (pair int int)))
    "ascending drain"
    [ (0, 0); (1, 10); (2, 20); (3, 30) ]
    (List.rev !seen);
  let empty = ref 0 in
  Mailbox.drain mb (fun _ _ -> incr empty);
  Alcotest.(check int) "drain emptied every slot" 0 !empty

(* ------------------------------------------------------------------ *)
(* Persistent pool                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_run () =
  Pool.with_pool ~lanes:4 (fun pool ->
      Alcotest.(check int) "lanes" 4 (Pool.lanes pool);
      let hits = Array.make 4 0 in
      (* Reusable across rounds: same pool, fresh work each time. *)
      for _round = 1 to 3 do
        Pool.run pool (fun lane -> hits.(lane) <- hits.(lane) + 1)
      done;
      Alcotest.(check (list int)) "every lane ran every round" [ 3; 3; 3; 3 ]
        (Array.to_list hits);
      let r = ref 0 in
      Pool.run_on pool ~lane:0 (fun () -> r := 1);
      Alcotest.(check int) "lane 0 runs inline" 1 !r;
      Pool.run_on pool ~lane:3 (fun () -> r := 2);
      Alcotest.(check int) "worker lane result visible" 2 !r)

exception Lane_boom of int

let test_pool_exceptions () =
  Pool.with_pool ~lanes:4 (fun pool ->
      (* Lowest failing lane wins deterministically. *)
      (match
         Pool.run pool (fun lane ->
             if lane mod 2 = 1 then raise (Lane_boom lane))
       with
      | () -> Alcotest.fail "expected an exception"
      | exception Lane_boom l ->
        Alcotest.(check int) "lowest failing lane" 1 l);
      (* The pool survives a failed round. *)
      let ok = ref 0 in
      Pool.run pool (fun _ -> incr ok);
      (* [ok] is bumped by 4 lanes; leader increments are immediate,
         worker increments ordered by the mutex hand-off. *)
      Alcotest.(check int) "pool usable after failure" 4 !ok;
      (match Pool.run_on pool ~lane:2 (fun () -> raise (Lane_boom 2)) with
      | () -> Alcotest.fail "expected run_on to re-raise"
      | exception Lane_boom l -> Alcotest.(check int) "run_on re-raises" 2 l));
  (* with_pool shut the pool down. *)
  let pool = Pool.create ~lanes:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.run_on pool ~lane:1 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "post after shutdown must raise"

let test_resolve_jobs () =
  Alcotest.(check int) "explicit within limit" 3
    (Domain_pool.resolve_jobs ~limit:10 3);
  Alcotest.(check int) "explicit clamped" 4 (Domain_pool.resolve_jobs ~limit:4 99);
  let auto = Domain_pool.resolve_jobs ~limit:4 0 in
  if auto < 1 || auto > 4 then Alcotest.failf "auto out of range: %d" auto;
  Alcotest.(check int) "limit floor" 1 (Domain_pool.resolve_jobs ~limit:0 0);
  if Domain_pool.recommended_jobs () < 1 then
    Alcotest.fail "recommended_jobs must be >= 1"

(* ------------------------------------------------------------------ *)
(* Three-way parity: naive vs. skip vs. BSP-parallel                   *)
(* ------------------------------------------------------------------ *)

(* One run of each stepping strategy on a fresh identical heap, each
   with its own tracer so digests are comparable. The BSP run owns a
   real pool and a tiny hand-off threshold so worker dispatch is
   genuinely exercised, not just the leader fallback. *)
let collect_three ?faults ~mem ?scan_unit ~n_cores ~partitions build =
  let run_seq skip =
    let heap = build () in
    let obs = Tracer.create ~n_cores () in
    Tracer.enable obs;
    let stats =
      Coprocessor.collect ~obs
        (Coprocessor.config ~mem ?scan_unit ?faults ~skip ~n_cores ())
        heap
    in
    (stats, Verify.snapshot heap, Tracer.digest obs)
  in
  let run_bsp () =
    let heap = build () in
    let obs = Tracer.create ~n_cores () in
    Tracer.enable obs;
    let stats, bstats =
      Bsp.collect_par ~obs ~handoff_min:2 ~partitions
        (Coprocessor.config ~mem ?scan_unit ?faults ~skip:true ~n_cores ())
        heap
    in
    (stats, Verify.snapshot heap, Tracer.digest obs, bstats)
  in
  let naive = run_seq false in
  let skip = run_seq true in
  let bsp = run_bsp () in
  (naive, skip, bsp)

let check_three ctx ((naive, snap_n, dig_n), (skip, snap_s, dig_s),
                     (bsp, snap_b, dig_b, (bstats : Bsp.stats))) =
  Test_kernel.check_stats_equal (ctx ^ " naive/skip") naive skip;
  Test_kernel.check_stats_equal (ctx ^ " naive/bsp") naive bsp;
  if not (Verify.equal_snapshot snap_n snap_s) then
    Alcotest.failf "%s: naive/skip heap snapshots differ" ctx;
  if not (Verify.equal_snapshot snap_n snap_b) then
    Alcotest.failf "%s: naive/bsp heap snapshots differ" ctx;
  if not (String.equal dig_n dig_s) then
    Alcotest.failf "%s: naive/skip digests differ" ctx;
  if not (String.equal dig_n dig_b) then
    Alcotest.failf "%s: naive/bsp digests differ" ctx;
  if bstats.Bsp.supersteps <= 0 then
    Alcotest.failf "%s: BSP took no supersteps" ctx;
  (* Every superstep is either contended (one whole-machine step, which
     may itself fast-forward) or one exclusive span. *)
  if bstats.Bsp.supersteps <> bstats.Bsp.contended_steps + bstats.Bsp.exclusive_spans
  then Alcotest.failf "%s: superstep kinds do not sum" ctx;
  if bstats.Bsp.exclusive_cycles > bsp.Coprocessor.total_cycles then
    Alcotest.failf "%s: exclusive spans exceed the run" ctx;
  if bstats.Bsp.handoffs > bstats.Bsp.exclusive_spans then
    Alcotest.failf "%s: more hand-offs than spans" ctx

let test_three_way_on_workloads () =
  List.iter
    (fun w ->
      List.iter
        (fun n_cores ->
          List.iter
            (fun faults ->
              let ctx =
                Printf.sprintf "%s at %d cores%s" w.Workloads.name n_cores
                  (match faults with None -> "" | Some _ -> " with delay faults")
              in
              check_three ctx
                (collect_three ?faults ~mem:Memsys.default_config ~n_cores
                   ~partitions:(min 4 n_cores)
                   (fun () -> Workloads.build_heap ~scale:0.02 ~seed:11 w)))
            [ None; Some (Injector.delay_class ~seed:5 ~intensity:0.4 ()) ])
        [ 1; 4; 16 ])
    Workloads.all

(* Random graphs, configs, partition counts and delay intensities —
   the qcheck leg of the three-way grid. *)
let qcheck_three_way =
  QCheck.Test.make
    ~name:
      "BSP superstep schedule is bit-identical to naive and skip stepping \
       on random graphs, configs and partition counts"
    ~count:40
    (QCheck.make
       ~print:(fun ((n, s), (nc, parts, el, bw, intensity)) ->
         Printf.sprintf
           "graph(n=%d seed=%d) cores=%d partitions=%d lat+%d bw=%d fault=%g"
           n s nc parts el bw intensity)
       QCheck.Gen.(
         let gen_graph =
           let* n = int_range 1 60 in
           let* seed = small_nat in
           return (n, seed)
         in
         let gen_config =
           let* n_cores = int_range 1 16 in
           let* parts = int_range 1 n_cores in
           let* extra_latency = oneofl [ 0; 3; 20 ] in
           let* bandwidth = oneofl [ 1; 4; 8 ] in
           let* intensity = oneofl [ 0.0; 0.1; 0.8 ] in
           return (n_cores, parts, extra_latency, bandwidth, intensity)
         in
         pair gen_graph gen_config))
    (fun ((n, seed), (n_cores, partitions, extra_latency, bandwidth, intensity))
    ->
      let build () =
        let rng = Hsgc_util.Rng.create (seed + 1) in
        let plan = Plan.create () in
        let ids =
          Array.init n (fun _ ->
              Plan.obj plan
                ~pi:(Hsgc_util.Rng.int rng 4)
                ~delta:(Hsgc_util.Rng.int rng 5))
        in
        Array.iter
          (fun id ->
            for slot = 0 to Plan.pi_of plan id - 1 do
              if Hsgc_util.Rng.int rng 100 < 70 then
                Plan.link plan ~parent:id ~slot
                  ~child:ids.(Hsgc_util.Rng.int rng n)
            done)
          ids;
        for _ = 1 to 1 + Hsgc_util.Rng.int rng 3 do
          Plan.add_root plan ids.(Hsgc_util.Rng.int rng n)
        done;
        Plan.materialize plan
      in
      let mem =
        Memsys.with_extra_latency
          { Memsys.default_config with Memsys.bandwidth }
          extra_latency
      in
      let faults =
        if intensity = 0.0 then None
        else Some (Injector.delay_class ~seed:(seed + 3) ~intensity ())
      in
      check_three "random three-way"
        (collect_three ?faults ~mem ~n_cores ~partitions build);
      true)

(* ------------------------------------------------------------------ *)
(* Golden-corpus parity: full fingerprints, event counts included      *)
(* ------------------------------------------------------------------ *)

(* The BSP horizon never changes a fast-forward target (it is itself
   one of the armed wakes bounding them), so even the executed/skipped
   split and the raw event stream — not just the digest — must match
   the sequential kernel byte-for-byte on every corpus configuration.
   test_golden.ml pins the sequential fingerprints to the committed
   files; equality here extends that pin to the BSP kernel. *)
let test_golden_corpus_parity () =
  List.iter
    (fun w ->
      List.iter
        (fun n_cores ->
          let seq = Test_golden.fingerprint w n_cores in
          let par =
            Test_golden.fingerprint_with
              ~collect:(fun ~obs cfg heap ->
                fst
                  (Bsp.collect_par ~obs ~handoff_min:2
                     ~partitions:(min 8 n_cores) cfg heap))
              w n_cores
          in
          if not (String.equal seq par) then
            Alcotest.failf
              "BSP fingerprint diverges for %s @ %d cores.\n\
               --- sequential ---\n\
               %s--- bsp ---\n\
               %s"
              w.Workloads.name n_cores seq par)
        [ 1; 4; 16 ])
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Observation layers under BSP                                        *)
(* ------------------------------------------------------------------ *)

(* The profiler's accounting identity (every simulated cycle of every
   core lands in exactly one bucket) must survive the BSP schedule. *)
let test_profiler_identity_under_bsp () =
  let n_cores = 8 in
  let w = List.hd Workloads.all in
  let heap = Workloads.build_heap ~scale:0.02 ~seed:3 w in
  let prof = Profiler.create ~n_cores () in
  Profiler.enable prof;
  let stats, _ =
    Bsp.collect_par ~prof ~handoff_min:2 ~partitions:4
      (Coprocessor.config ~n_cores ()) heap
  in
  for core = 0 to n_cores - 1 do
    Alcotest.(check int)
      (Printf.sprintf "core %d bucket sum = total cycles" core)
      stats.Coprocessor.total_cycles
      (Profiler.row_sum prof ~core)
  done

(* The sanitizer observes the same machine under BSP stepping: a clean
   run stays clean, and findings-by-construction stay deterministic. *)
let test_sanitizer_under_bsp () =
  let n_cores = 8 in
  let w = List.hd Workloads.all in
  let heap = Workloads.build_heap ~scale:0.02 ~seed:3 w in
  let stats, _ =
    Bsp.collect_par ~handoff_min:2 ~partitions:4
      (Coprocessor.config ~sanitize:Hsgc_sanitizer.Sanitizer.Check ~n_cores ())
      heap
  in
  Alcotest.(check int) "clean machine, zero findings" 0
    stats.Coprocessor.sanitizer_total

(* Hand-offs must actually occur somewhere in the grid, or the pool
   path is dead code. A latency-bound single-partition-awake pattern:
   few cores, long memory latency, several partitions. *)
let test_handoffs_exercised () =
  let mem = Memsys.with_extra_latency Memsys.default_config 40 in
  let total_handoffs = ref 0 in
  List.iter
    (fun w ->
      let heap = Workloads.build_heap ~scale:0.02 ~seed:9 w in
      let _, (b : Bsp.stats) =
        Bsp.collect_par ~handoff_min:2 ~partitions:4
          (Coprocessor.config ~mem ~n_cores:4 ()) heap
      in
      total_handoffs := !total_handoffs + b.Bsp.handoffs)
    Workloads.all;
  if !total_handoffs = 0 then
    Alcotest.fail
      "no exclusive span was ever dispatched to a worker lane across the \
       latency-bound grid"

(* ------------------------------------------------------------------ *)
(* Watchdog under BSP                                                  *)
(* ------------------------------------------------------------------ *)

(* The watchdog must trip at the same cycle with the same full machine
   dump whether the machine is stepped sequentially or through the BSP
   schedule — the stall diagnosis is part of the machine's observable
   behaviour, so it falls under the parity contract too. *)
let diagnosis_of ctx f =
  match f () with
  | _ -> Alcotest.failf "%s: expected the watchdog to trip" ctx
  | exception Coprocessor.Stall_diagnosis d ->
    (d.Coprocessor.trip, Format.asprintf "%a" Coprocessor.pp_diagnosis d)

let test_watchdog_budget_under_bsp () =
  let w = Workloads.db in
  let build () = Workloads.build_heap ~scale:0.05 ~seed:7 w in
  let cfg = Coprocessor.config ~cycle_budget:500 ~n_cores:8 () in
  let trip, seq =
    diagnosis_of "sequential" (fun () -> Coprocessor.collect cfg (build ()))
  in
  (match trip with
  | Hsgc_sim.Kernel.Watchdog.Budget_exceeded { budget } ->
    Alcotest.(check int) "budget echoed" 500 budget
  | Hsgc_sim.Kernel.Watchdog.No_progress _ ->
    Alcotest.fail "expected a budget trip");
  List.iter
    (fun partitions ->
      let _, par =
        diagnosis_of
          (Printf.sprintf "%d partitions" partitions)
          (fun () ->
            Bsp.collect_par ~handoff_min:2 ~partitions cfg (build ()))
      in
      Alcotest.(check string)
        (Printf.sprintf "diagnosis at %d partitions" partitions)
        seq par)
    [ 2; 4; 8 ]

let test_watchdog_no_progress_under_bsp () =
  (* Naive stepping against a 400-cycle memory so the first header
     fetches leave the machine quiet far past the 64-cycle window. *)
  let mem = Memsys.with_extra_latency Memsys.default_config 400 in
  let cfg =
    Coprocessor.config ~mem ~skip:false ~stall_window:64 ~n_cores:4 ()
  in
  let build () = Workloads.build_heap ~scale:0.05 ~seed:7 Workloads.db in
  let trip, seq =
    diagnosis_of "sequential" (fun () -> Coprocessor.collect cfg (build ()))
  in
  (match trip with
  | Hsgc_sim.Kernel.Watchdog.No_progress { window; _ } ->
    Alcotest.(check int) "window echoed" 64 window
  | Hsgc_sim.Kernel.Watchdog.Budget_exceeded _ ->
    Alcotest.fail "expected a no-progress trip");
  List.iter
    (fun partitions ->
      let _, par =
        diagnosis_of
          (Printf.sprintf "%d partitions" partitions)
          (fun () ->
            Bsp.collect_par ~handoff_min:2 ~partitions cfg (build ()))
      in
      Alcotest.(check string)
        (Printf.sprintf "diagnosis at %d partitions" partitions)
        seq par)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Worker supervision: retry once, degrade, never abort                *)
(* ------------------------------------------------------------------ *)

exception Worker_crash

(* Latency-bound so spans are long enough to dispatch (the same shape
   test_handoffs_exercised relies on). *)
let supervised_run ?span_timeout_s ?fail_hook w =
  let mem = Memsys.with_extra_latency Memsys.default_config 40 in
  let cfg = Coprocessor.config ~mem ~n_cores:4 () in
  let heap = Workloads.build_heap ~scale:0.02 ~seed:9 w in
  let obs = Tracer.create ~n_cores:4 () in
  Tracer.enable obs;
  let stats, b =
    Bsp.collect_par ~obs ~handoff_min:2 ~partitions:4 ?span_timeout_s
      ?fail_hook cfg heap
  in
  (stats, Verify.snapshot heap, Tracer.digest obs, b)

(* A workload whose run genuinely dispatches spans to worker lanes —
   a fail_hook on a dispatch-free run would never fire. *)
let dispatching_workload () =
  match
    List.find_opt
      (fun w ->
        let _, _, _, (b : Bsp.stats) = supervised_run w in
        b.Bsp.handoffs > 0)
      Workloads.all
  with
  | Some w -> w
  | None -> Alcotest.fail "no workload dispatches under the latency-bound grid"

let test_supervision_retry_and_degrade () =
  let w = dispatching_workload () in
  let ref_stats, ref_snap, ref_dig, _ = supervised_run w in
  let armed = Atomic.make true in
  let hook _lane = if Atomic.exchange armed false then raise Worker_crash in
  let stats, snap, dig, (b : Bsp.stats) = supervised_run ~fail_hook:hook w in
  (* The crash cost a retry and the parallel path, never the result. *)
  Test_kernel.check_stats_equal "degraded run parity" ref_stats stats;
  if not (Verify.equal_snapshot ref_snap snap) then
    Alcotest.fail "degraded run heap snapshot differs";
  Alcotest.(check string) "degraded run digest" ref_dig dig;
  Alcotest.(check int) "span retried exactly once" 1 b.Bsp.retries;
  match b.Bsp.degraded with
  | Some _ -> ()
  | None -> Alcotest.fail "worker crash did not degrade the run"

let test_supervision_span_timeout () =
  let w = dispatching_workload () in
  let ref_stats, ref_snap, ref_dig, _ = supervised_run w in
  (* One worker span burns ~0.3 CPU-seconds before claiming the
     machine; a 20 ms supervision deadline poisons its lane. The hook
     runs before the atomic claim, so the leader's retry is safe and
     the abandoned worker's late claim attempt loses the CAS. *)
  let armed = Atomic.make true in
  let hook _lane =
    if Atomic.exchange armed false then begin
      let t0 = Sys.time () in
      while Sys.time () -. t0 < 0.3 do
        Domain.cpu_relax ()
      done
    end
  in
  let stats, snap, dig, (b : Bsp.stats) =
    supervised_run ~span_timeout_s:0.02 ~fail_hook:hook w
  in
  Test_kernel.check_stats_equal "timed-out run parity" ref_stats stats;
  if not (Verify.equal_snapshot ref_snap snap) then
    Alcotest.fail "timed-out run heap snapshot differs";
  Alcotest.(check string) "timed-out run digest" ref_dig dig;
  match b.Bsp.degraded with
  | Some _ -> ()
  | None -> Alcotest.fail "span timeout did not degrade the run"

let test_pool_try_wait () =
  Pool.with_pool ~lanes:3 (fun pool ->
      (* Done. *)
      let r = ref 0 in
      Pool.post pool ~lane:1 (fun () -> r := 7);
      (match Pool.try_wait pool ~lane:1 ~timeout_s:5.0 with
      | `Done -> Alcotest.(check int) "job ran" 7 !r
      | `Failed _ | `Timed_out -> Alcotest.fail "expected `Done");
      (* Failed: reported, not raised, and the lane stays usable. *)
      Pool.post pool ~lane:1 (fun () -> failwith "boom");
      (match Pool.try_wait pool ~lane:1 ~timeout_s:5.0 with
      | `Failed (Failure m) -> Alcotest.(check string) "exn carried" "boom" m
      | `Failed e -> Alcotest.failf "wrong exn: %s" (Printexc.to_string e)
      | `Done | `Timed_out -> Alcotest.fail "expected `Failed");
      Alcotest.(check bool) "failure does not poison" false
        (Pool.poisoned pool ~lane:1);
      Pool.post pool ~lane:1 (fun () -> r := 8);
      Pool.wait pool ~lane:1;
      Alcotest.(check int) "lane reusable after failure" 8 !r;
      (* Timed_out: the job is abandoned and the lane poisoned. *)
      let release = Atomic.make false in
      Pool.post pool ~lane:2 (fun () ->
          while not (Atomic.get release) do
            Domain.cpu_relax ()
          done);
      (match Pool.try_wait pool ~lane:2 ~timeout_s:0.02 with
      | `Timed_out -> ()
      | `Done | `Failed _ -> Alcotest.fail "expected `Timed_out");
      Alcotest.(check bool) "timeout poisons" true (Pool.poisoned pool ~lane:2);
      (match Pool.post pool ~lane:2 (fun () -> ()) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "post to a poisoned lane must raise");
      (* Let the abandoned job finish so the domain can exit. *)
      Atomic.set release true)

let suite =
  [
    Alcotest.test_case "partition planner shapes" `Quick test_plan_shapes;
    Alcotest.test_case "partition validation" `Quick test_plan_validate;
    Alcotest.test_case "interface set and pp" `Quick test_plan_interfaces;
    Alcotest.test_case "mailbox single-writer protocol" `Quick
      test_mailbox_protocol;
    Alcotest.test_case "pool run / run_on / reuse" `Quick test_pool_run;
    Alcotest.test_case "pool exception discipline" `Quick test_pool_exceptions;
    Alcotest.test_case "jobs resolution" `Quick test_resolve_jobs;
    Alcotest.test_case "three-way parity on all workloads" `Quick
      test_three_way_on_workloads;
    QCheck_alcotest.to_alcotest qcheck_three_way;
    Alcotest.test_case "golden-corpus fingerprint parity" `Quick
      test_golden_corpus_parity;
    Alcotest.test_case "profiler identity under BSP" `Quick
      test_profiler_identity_under_bsp;
    Alcotest.test_case "sanitizer under BSP" `Quick test_sanitizer_under_bsp;
    Alcotest.test_case "hand-offs exercised" `Quick test_handoffs_exercised;
    Alcotest.test_case "watchdog budget trips identically under BSP" `Quick
      test_watchdog_budget_under_bsp;
    Alcotest.test_case "watchdog no-progress trips identically under BSP"
      `Quick test_watchdog_no_progress_under_bsp;
    Alcotest.test_case "worker crash: retry once then degrade" `Quick
      test_supervision_retry_and_degrade;
    Alcotest.test_case "span timeout: poison lane and degrade" `Quick
      test_supervision_span_timeout;
    Alcotest.test_case "pool supervised wait" `Quick test_pool_try_wait;
  ]
