(* Tests for the workload plan and its materialization. *)

module Plan = Hsgc_objgraph.Plan
module Heap = Hsgc_heap.Heap
module Header = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace

let test_obj_and_sizes () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:2 ~delta:3 in
  let b = Plan.obj p ~pi:0 ~delta:0 in
  Alcotest.(check int) "ids dense" 0 a;
  Alcotest.(check int) "ids dense 2" 1 b;
  Alcotest.(check int) "n_objects" 2 (Plan.n_objects p);
  Alcotest.(check int) "size_words" (7 + 2) (Plan.size_words p);
  Alcotest.(check int) "pi_of" 2 (Plan.pi_of p a);
  Alcotest.(check int) "delta_of" 3 (Plan.delta_of p a)

let test_links () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:2 ~delta:0 in
  let b = Plan.obj p ~pi:0 ~delta:0 in
  Plan.link p ~parent:a ~slot:1 ~child:b;
  Alcotest.(check int) "linked" b (Plan.child_of p a 1);
  Alcotest.(check int) "unlinked is -1" (-1) (Plan.child_of p a 0)

let test_link_errors () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:1 ~delta:0 in
  Alcotest.check_raises "bad slot" (Invalid_argument "Plan.link: bad slot")
    (fun () -> Plan.link p ~parent:a ~slot:1 ~child:a);
  Alcotest.check_raises "bad id" (Invalid_argument "Plan: bad object id")
    (fun () -> Plan.link p ~parent:5 ~slot:0 ~child:a)

let test_roots () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:0 ~delta:0 in
  let b = Plan.obj p ~pi:0 ~delta:0 in
  Plan.add_root p a;
  Plan.add_root p b;
  Alcotest.(check (array int)) "roots in order" [| a; b |] (Plan.roots p);
  Alcotest.(check int) "n_roots" 2 (Plan.n_roots p)

let test_live_words () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:1 ~delta:1 in
  let b = Plan.obj p ~pi:0 ~delta:2 in
  let _garbage = Plan.obj p ~pi:0 ~delta:10 in
  Plan.link p ~parent:a ~slot:0 ~child:b;
  Plan.add_root p a;
  Alcotest.(check int) "live words exclude garbage" (4 + 4) (Plan.live_words p);
  Alcotest.(check int) "size words include garbage" (4 + 4 + 12) (Plan.size_words p)

let test_live_words_cycle () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:1 ~delta:0 in
  let b = Plan.obj p ~pi:1 ~delta:0 in
  Plan.link p ~parent:a ~slot:0 ~child:b;
  Plan.link p ~parent:b ~slot:0 ~child:a;
  Plan.add_root p a;
  Alcotest.(check int) "cycle counted once" 6 (Plan.live_words p)

let test_materialize_structure () =
  let p = Plan.create () in
  let a = Plan.obj p ~pi:1 ~delta:2 in
  let b = Plan.obj p ~pi:0 ~delta:1 in
  Plan.link p ~parent:a ~slot:0 ~child:b;
  Plan.add_root p a;
  let heap = Plan.materialize p in
  Alcotest.(check int) "one root" 1 (Heap.root_count heap);
  let ra = heap.Heap.roots.(0) in
  Alcotest.(check int) "root pi" 1 (Heap.obj_pi heap ra);
  let rb = Heap.get_pointer heap ra 0 in
  Alcotest.(check bool) "child linked" true (rb <> Heap.null);
  Alcotest.(check int) "child delta" 1 (Heap.obj_delta heap rb);
  (* Data filled deterministically. *)
  Alcotest.(check int) "data word" (Plan.data_word a 1) (Heap.get_data heap ra 1);
  Alcotest.(check int) "child data" (Plan.data_word b 0) (Heap.get_data heap rb 0)

let test_materialize_heap_factor () =
  let p = Plan.create () in
  ignore (Plan.obj p ~pi:0 ~delta:8);
  let h2 = Plan.materialize ~heap_factor:2.0 p in
  let h3 = Plan.materialize ~heap_factor:3.0 p in
  Alcotest.(check bool) "factor grows the space" true
    (Semispace.words (Heap.from_space h3) > Semispace.words (Heap.from_space h2));
  Alcotest.check_raises "factor below 1 rejected"
    (Invalid_argument "Plan.materialize: heap_factor < 1.0") (fun () ->
      ignore (Plan.materialize ~heap_factor:0.5 p))

let test_materialize_empty_plan () =
  let p = Plan.create () in
  let heap = Plan.materialize p in
  Alcotest.(check int) "no objects allocated" 0
    (Semispace.used (Heap.from_space heap))

let test_data_word_distinct () =
  (* Different (id, slot) pairs give different fill values in practice. *)
  let seen = Hashtbl.create 64 in
  let collisions = ref 0 in
  for id = 0 to 50 do
    for slot = 0 to 10 do
      let v = Plan.data_word id slot in
      if Hashtbl.mem seen v then incr collisions;
      Hashtbl.replace seen v ()
    done
  done;
  Alcotest.(check int) "no collisions in small range" 0 !collisions

let test_iter_objects () =
  let p = Plan.create () in
  let _ = Plan.obj p ~pi:0 ~delta:0 in
  let _ = Plan.obj p ~pi:0 ~delta:0 in
  let count = ref 0 in
  Plan.iter_objects p (fun _ -> incr count);
  Alcotest.(check int) "visits all" 2 !count

let suite =
  [
    Alcotest.test_case "obj and sizes" `Quick test_obj_and_sizes;
    Alcotest.test_case "links" `Quick test_links;
    Alcotest.test_case "link errors" `Quick test_link_errors;
    Alcotest.test_case "roots" `Quick test_roots;
    Alcotest.test_case "live words" `Quick test_live_words;
    Alcotest.test_case "live words with cycle" `Quick test_live_words_cycle;
    Alcotest.test_case "materialize structure" `Quick test_materialize_structure;
    Alcotest.test_case "materialize heap factor" `Quick test_materialize_heap_factor;
    Alcotest.test_case "materialize empty plan" `Quick test_materialize_empty_plan;
    Alcotest.test_case "data_word distinct" `Quick test_data_word_distinct;
    Alcotest.test_case "iter_objects" `Quick test_iter_objects;
  ]
