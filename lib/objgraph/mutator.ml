module Rng = Hsgc_util.Rng
module Heap = Hsgc_heap.Heap

type t = {
  heap : Heap.t;
  rng : Rng.t;
  mutable live : int array; (* cached addresses of some reachable objects *)
  mutable allocated : int;
}

let refresh_live t =
  let table = Heap.reachable t.heap in
  let arr = Array.make (Hashtbl.length table) Heap.null in
  let i = ref 0 in
  Hashtbl.iter
    (fun addr _ ->
      arr.(!i) <- addr;
      incr i)
    table;
  t.live <- arr

let create heap rng =
  let t = { heap; rng; live = [||]; allocated = 0 } in
  refresh_live t;
  t

let random_live t =
  if Array.length t.live = 0 then Heap.null else Rng.choose t.rng t.live

let churn t ~allocs =
  (* The cache goes stale after a collection (addresses moved); detect by
     checking that a cached entry is still inside the current space. *)
  let space = Heap.from_space t.heap in
  let stale =
    Array.length t.live > 0
    && not (Hsgc_heap.Semispace.contains space t.live.(0))
  in
  if stale || Array.length t.live = 0 then refresh_live t;
  let exception Full in
  try
    for _ = 1 to allocs do
      let pi = Rng.int t.rng 4 in
      let delta = Rng.int t.rng 8 in
      match Heap.alloc t.heap ~pi ~delta with
      | None -> raise Full
      | Some obj ->
        t.allocated <- t.allocated + 1;
        (* Fill data so copies are checkable. *)
        for i = 0 to delta - 1 do
          Heap.set_data t.heap obj i (Plan.data_word obj i)
        done;
        (* Link the new object's slots to random live objects. *)
        for i = 0 to pi - 1 do
          if Rng.bool t.rng then Heap.set_pointer t.heap obj i (random_live t)
        done;
        (* With some probability, publish the new object: either as a new
           root or by overwriting a pointer field of a live object (which
           may orphan a subtree — future garbage). *)
        let publish = Rng.int t.rng 100 in
        if publish < 5 then Heap.add_root t.heap obj
        else if publish < 60 then begin
          let target = random_live t in
          if target <> Heap.null then begin
            let tpi = Heap.obj_pi t.heap target in
            if tpi > 0 then
              Heap.set_pointer t.heap target (Rng.int t.rng tpi) obj
          end
        end
        (* else: the object stays unreachable — immediate garbage. *)
    done;
    `Ok
  with Full -> `Heap_full

let allocated t = t.allocated
