(** The eight synthetic workloads standing in for the paper's Java
    benchmarks.

    The original programs (SPECjvm98's {i compress} and {i db}, the
    {i javac}/{i javacc}/{i jflex} compiler tools, {i cup}, {i jlisp} and
    a {i search} kernel) cannot run here; what the paper's evaluation
    actually depends on is the {i shape} of each benchmark's live object
    graph. Each workload below reconstructs the property the paper
    reports for its namesake:

    - [compress], [search] — (nearly) linear graphs with no object-level
      parallelism: no speedup, worklist almost always empty at ≥ 4 cores;
    - [db] — wide, record-heavy graph: scales well, header-load heavy;
    - [javac] — AST with hot shared symbols: header-lock contention;
    - [cup] — huge flat live set whose gray backlog overflows the header
      FIFO: scan-lock stalls;
    - [javacc], [jlisp] — moderately wide trees: good scaling;
    - [jflex] — bounded-width graph: scaling saturates near 8 cores. *)

module Rng = Hsgc_util.Rng

type t = {
  name : string;
  description : string;
  build : scale:float -> seed:int -> Plan.t;
      (** [scale] multiplies object counts (1.0 ≈ tens of thousands of
          objects); [seed] drives every random choice. *)
}

val compress : t
val cup : t
val db : t
val javac : t
val javacc : t
val jflex : t
val jlisp : t
val search : t

val all : t list
(** In the paper's (alphabetical) table order. *)

val find : string -> t option
(** Look up by [name]. *)

val build_heap : ?scale:float -> ?seed:int -> t -> Hsgc_heap.Heap.t
(** Convenience: build the plan and materialize it with the default heap
    factor (2× the rule-of-thumb minimal heap). Default [scale] 1.0,
    [seed] 42. *)
