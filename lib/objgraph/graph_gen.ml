module Rng = Hsgc_util.Rng

let chain plan ~n ~pi ~delta =
  if n <= 0 then invalid_arg "Graph_gen.chain: n must be positive";
  if pi < 1 then invalid_arg "Graph_gen.chain: pi must be >= 1";
  let head = Plan.obj plan ~pi ~delta in
  let rec extend prev i =
    if i >= n then prev
    else begin
      let node = Plan.obj plan ~pi ~delta in
      Plan.link plan ~parent:prev ~slot:0 ~child:node;
      extend node (i + 1)
    end
  in
  let tail = extend head 1 in
  (head, tail)

let chain_with_payload plan ~n ?(every = 1) ~node_delta ~payload_pi ~payload_delta
    () =
  if n <= 0 || every <= 0 then invalid_arg "Graph_gen.chain_with_payload";
  let node i =
    let id = Plan.obj plan ~pi:2 ~delta:node_delta in
    if i mod every = 0 then begin
      let payload = Plan.obj plan ~pi:payload_pi ~delta:payload_delta in
      Plan.link plan ~parent:id ~slot:1 ~child:payload
    end;
    id
  in
  let head = node 0 in
  let rec extend prev i =
    if i >= n then prev
    else begin
      let next = node i in
      Plan.link plan ~parent:prev ~slot:0 ~child:next;
      extend next (i + 1)
    end
  in
  let tail = extend head 1 in
  (head, tail)

let star plan ~fanout ~child_pi ~child_delta =
  let hub = Plan.obj plan ~pi:fanout ~delta:0 in
  let children =
    Array.init fanout (fun slot ->
        let c = Plan.obj plan ~pi:child_pi ~delta:child_delta in
        Plan.link plan ~parent:hub ~slot ~child:c;
        c)
  in
  (hub, children)

let layered plan _rng ~widths ~delta =
  let n_layers = Array.length widths in
  if n_layers = 0 then invalid_arg "Graph_gen.layered";
  Array.iter (fun w -> if w <= 0 then invalid_arg "Graph_gen.layered: width") widths;
  (* Build bottom-up so a parent's π equals its block of children. *)
  let rec build i =
    let w = widths.(i) in
    if i = n_layers - 1 then Array.init w (fun _ -> Plan.obj plan ~pi:0 ~delta)
    else begin
      let children = build (i + 1) in
      let next_n = Array.length children in
      Array.init w (fun j ->
          (* Contiguous near-even partition of the next layer. *)
          let lo = j * next_n / w in
          let hi = (j + 1) * next_n / w in
          let parent = Plan.obj plan ~pi:(hi - lo) ~delta in
          for k = lo to hi - 1 do
            Plan.link plan ~parent ~slot:(k - lo) ~child:children.(k)
          done;
          parent)
    end
  in
  let top = build 0 in
  let hub = Plan.obj plan ~pi:(Array.length top) ~delta:0 in
  Array.iteri (fun slot c -> Plan.link plan ~parent:hub ~slot ~child:c) top;
  hub

let random_tree plan rng ~n ~max_fanout ?(reserve_slots = 0) ~delta_min ~delta_max
    () =
  if n <= 0 then invalid_arg "Graph_gen.random_tree";
  if max_fanout < 1 then invalid_arg "Graph_gen.random_tree: max_fanout";
  let new_node () =
    let pi = 1 + Rng.int rng max_fanout + reserve_slots in
    let delta = delta_min + Rng.int rng (delta_max - delta_min + 1) in
    Plan.obj plan ~pi ~delta
  in
  let root = new_node () in
  (* Nodes that still have a free pointer slot, as (id, next free slot). *)
  let open_nodes = ref [| (root, 0) |] in
  let open_count = ref 1 in
  let push id slot =
    if !open_count >= Array.length !open_nodes then begin
      let bigger = Array.make (2 * !open_count) (0, 0) in
      Array.blit !open_nodes 0 bigger 0 !open_count;
      open_nodes := bigger
    end;
    !open_nodes.(!open_count) <- (id, slot);
    incr open_count
  in
  for _ = 2 to n do
    if !open_count = 0 then
      (* Every slot used (can only happen for tiny n with fanout 1):
         attach nothing further. *)
      ()
    else begin
      let pick = Rng.int rng !open_count in
      let id, slot = !open_nodes.(pick) in
      (* Swap-remove, re-push if the parent still has slots. *)
      decr open_count;
      !open_nodes.(pick) <- !open_nodes.(!open_count);
      let child = new_node () in
      Plan.link plan ~parent:id ~slot ~child;
      (* The trailing [reserve_slots] slots stay free for the caller. *)
      if slot + 1 < Plan.pi_of plan id - reserve_slots then push id (slot + 1);
      push child 0
    end
  done;
  root

let caterpillar plan rng ~backbone ~tuft ~delta =
  if backbone <= 0 then invalid_arg "Graph_gen.caterpillar";
  (* Each backbone node: slot 0 = next, slot 1 = its tuft subtree. *)
  let rec subtree remaining =
    (* Small binary tree of [remaining] nodes. *)
    let pi = if remaining > 1 then 2 else 0 in
    let node = Plan.obj plan ~pi ~delta in
    if remaining > 1 then begin
      let left_n = 1 + Rng.int rng (remaining - 1) in
      let right_n = remaining - 1 - left_n in
      Plan.link plan ~parent:node ~slot:0 ~child:(subtree left_n);
      if right_n > 0 then Plan.link plan ~parent:node ~slot:1 ~child:(subtree right_n)
    end;
    node
  in
  let node () =
    let id = Plan.obj plan ~pi:2 ~delta in
    if tuft > 0 then Plan.link plan ~parent:id ~slot:1 ~child:(subtree tuft);
    id
  in
  let head = node () in
  let rec extend prev i =
    if i >= backbone then ()
    else begin
      let next = node () in
      Plan.link plan ~parent:prev ~slot:0 ~child:next;
      extend next (i + 1)
    end
  in
  extend head 1;
  head

let zipf_pool plan rng ~clients ~pool ~s =
  if pool <= 0 then invalid_arg "Graph_gen.zipf_pool";
  let pool_ids = Array.init pool (fun _ -> Plan.obj plan ~pi:0 ~delta:4) in
  Array.iter
    (fun (client, slot) ->
      let target = pool_ids.(Rng.zipf rng ~n:pool ~s) in
      Plan.link plan ~parent:client ~slot ~child:target)
    clients;
  pool_ids

let garbage plan rng ~n ~max_pi ~max_delta =
  let prev = ref (-1) in
  for _ = 1 to n do
    let pi = Rng.int rng (max_pi + 1) in
    let delta = Rng.int rng (max_delta + 1) in
    let id = Plan.obj plan ~pi ~delta in
    (* Garbage may reference other garbage: the collector must still not
       trace into it. *)
    if pi > 0 && !prev >= 0 && Rng.bool rng then
      Plan.link plan ~parent:id ~slot:0 ~child:!prev;
    prev := id
  done
