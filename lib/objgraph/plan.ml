module Heap = Hsgc_heap.Heap
module Semispace = Hsgc_heap.Semispace
module Header = Hsgc_heap.Header

type t = {
  mutable pis : int array;
  mutable deltas : int array;
  mutable children : int array array; (* per object: child id per slot, -1 = null *)
  mutable n : int;
  mutable rev_roots : int list;
  mutable n_roots : int;
  mutable words : int;
}

let create () =
  {
    pis = Array.make 16 0;
    deltas = Array.make 16 0;
    children = Array.make 16 [||];
    n = 0;
    rev_roots = [];
    n_roots = 0;
    words = 0;
  }

let grow t =
  let cap = Array.length t.pis in
  if t.n >= cap then begin
    let cap' = 2 * cap in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.pis <- extend t.pis 0;
    t.deltas <- extend t.deltas 0;
    t.children <- extend t.children [||]
  end

let obj t ~pi ~delta =
  if pi < 0 || delta < 0 then invalid_arg "Plan.obj";
  grow t;
  let id = t.n in
  t.pis.(id) <- pi;
  t.deltas.(id) <- delta;
  t.children.(id) <- Array.make pi (-1);
  t.n <- id + 1;
  t.words <- t.words + Header.size_of ~pi ~delta;
  id

let check_id t id = if id < 0 || id >= t.n then invalid_arg "Plan: bad object id"

let link t ~parent ~slot ~child =
  check_id t parent;
  check_id t child;
  if slot < 0 || slot >= t.pis.(parent) then invalid_arg "Plan.link: bad slot";
  t.children.(parent).(slot) <- child

let add_root t id =
  check_id t id;
  t.rev_roots <- id :: t.rev_roots;
  t.n_roots <- t.n_roots + 1

let n_objects t = t.n
let n_roots t = t.n_roots
let size_words t = t.words

let pi_of t id =
  check_id t id;
  t.pis.(id)

let delta_of t id =
  check_id t id;
  t.deltas.(id)

let child_of t id slot =
  check_id t id;
  t.children.(id).(slot)

let roots t = Array.of_list (List.rev t.rev_roots)

let iter_objects t f =
  for id = 0 to t.n - 1 do
    f id
  done

let live_words t =
  let seen = Array.make t.n false in
  let rec visit id acc =
    if id < 0 || seen.(id) then acc
    else begin
      seen.(id) <- true;
      let acc = acc + Header.size_of ~pi:t.pis.(id) ~delta:t.deltas.(id) in
      Array.fold_left (fun acc c -> visit c acc) acc t.children.(id)
    end
  in
  List.fold_left (fun acc id -> visit id acc) 0 t.rev_roots

(* A cheap integer mix so every data word is a distinct, reproducible
   function of (object, slot); copy bugs then break graph isomorphism. *)
let data_word id slot = (((id * 2654435761) lxor (slot * 40503)) + 77) land 0x3FFFFFFFFFFF

let materialize ?(heap_factor = 2.0) t =
  if heap_factor < 1.0 then invalid_arg "Plan.materialize: heap_factor < 1.0";
  let words =
    int_of_float (Float.ceil (float_of_int t.words *. heap_factor)) + 64
  in
  let heap = Heap.create ~semispace_words:words in
  let addr = Array.make (max t.n 1) Heap.null in
  for id = 0 to t.n - 1 do
    match Heap.alloc heap ~pi:t.pis.(id) ~delta:t.deltas.(id) with
    | None -> failwith "Plan.materialize: sized heap too small (bug)"
    | Some a ->
      addr.(id) <- a;
      for slot = 0 to t.deltas.(id) - 1 do
        Heap.set_data heap a slot (data_word id slot)
      done
  done;
  for id = 0 to t.n - 1 do
    Array.iteri
      (fun slot child ->
        if child >= 0 then Heap.set_pointer heap addr.(id) slot addr.(child))
      t.children.(id)
  done;
  Heap.set_roots heap (Array.map (fun id -> addr.(id)) (roots t));
  heap
