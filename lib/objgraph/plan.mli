(** A heap-independent object-graph blueprint.

    Workload generators build a [Plan] — objects identified by dense ids,
    pointer-slot edges, and root designations — and the plan is then
    materialized into any backend: the simulated object heap here, or the
    flat heap of the real Domains-based collector in [Hsgc_swgc]. This
    keeps every engine benchmarking the {i same} graph.

    Data words are filled with a deterministic function of (object id,
    slot), so a collector that corrupts or mis-copies a body is caught by
    the graph-isomorphism check. *)

type t

val create : unit -> t

val obj : t -> pi:int -> delta:int -> int
(** New object with π pointer slots and δ data words; returns its id. *)

val link : t -> parent:int -> slot:int -> child:int -> unit
(** Point [parent]'s pointer slot [slot] at [child]. Slots not linked
    remain null. *)

val add_root : t -> int -> unit

val n_objects : t -> int
val n_roots : t -> int

val size_words : t -> int
(** Total footprint of all objects (headers included). *)

val live_words : t -> int
(** Footprint of the subgraph reachable from the roots. *)

val pi_of : t -> int -> int
val delta_of : t -> int -> int
val child_of : t -> int -> int -> int
(** [child_of t id slot] is the linked child id, or [-1] for null. *)

val data_word : int -> int -> int
(** [data_word id slot] — the deterministic data-word fill value. *)

val roots : t -> int array

val iter_objects : t -> (int -> unit) -> unit

val materialize : ?heap_factor:float -> t -> Hsgc_heap.Heap.t
(** Build a fresh heap containing the plan's objects (in id order, so
    fromspace address order equals id order), with each semispace sized
    [heap_factor] × the plan's total footprint (default 2.0 — the paper's
    "twice the minimal heap size" rule of thumb) plus slack. Roots are
    installed in plan order. *)
