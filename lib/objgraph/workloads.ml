module Rng = Hsgc_util.Rng

type t = {
  name : string;
  description : string;
  build : scale:float -> seed:int -> Plan.t;
}

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

(* Roughly a quarter of allocated objects are dead at collection time in
   every workload: the collector must skip them. *)
let with_garbage plan rng ~live_objects =
  Graph_gen.garbage plan rng ~n:(live_objects / 4) ~max_pi:2 ~max_delta:6

let compress =
  {
    name = "compress";
    description =
      "linear compression pipeline: a width-2 chain of buffers plus a few \
       large arrays; almost no object-level parallelism";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let n = scaled scale 10_000 in
        (* Tiny nodes: the next-pointer discovery latency is most of a
           node's processing time, so the chain itself supports barely
           more than one core; the payload leaf feeds a second. *)
        let head, _tail =
          Graph_gen.chain_with_payload plan ~n ~every:2 ~node_delta:0 ~payload_pi:0
            ~payload_delta:1 ()
        in
        (* The compression tables: a handful of big flat arrays. *)
        let hub, _arrays =
          Graph_gen.star plan ~fanout:4 ~child_pi:0 ~child_delta:(scaled scale 1_500)
        in
        Plan.add_root plan head;
        Plan.add_root plan hub;
        with_garbage plan rng ~live_objects:(2 * n);
        plan);
  }

let search =
  {
    name = "search";
    description =
      "search kernel: one long singly linked path — the degenerate case \
       for object-level parallelism";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let n = scaled scale 20_000 in
        (* Bare cons-like nodes: nothing to overlap with the handoff. *)
        let head, _tail = Graph_gen.chain plan ~n ~pi:1 ~delta:0 in
        Plan.add_root plan head;
        with_garbage plan rng ~live_objects:n;
        plan);
  }

let db =
  {
    name = "db";
    description =
      "in-memory database: wide index fanning out to many records, each \
       with string fields; deep worklist, header-load heavy";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let indexes = 48 in
        let records_per_index = scaled scale 160 in
        let root = Plan.obj plan ~pi:indexes ~delta:2 in
        let records = ref [] in
        for i = 0 to indexes - 1 do
          let index = Plan.obj plan ~pi:records_per_index ~delta:1 in
          Plan.link plan ~parent:root ~slot:i ~child:index;
          for slot = 0 to records_per_index - 1 do
            let record = Plan.obj plan ~pi:3 ~delta:8 in
            Plan.link plan ~parent:index ~slot ~child:record;
            records := record :: !records;
            for field = 0 to 1 do
              let str = Plan.obj plan ~pi:0 ~delta:(4 + Rng.int rng 6) in
              Plan.link plan ~parent:record ~slot:field ~child:str
            done
          done
        done;
        (* Slot 2 of every record points into a small shared dictionary. *)
        let clients = Array.of_list (List.rev_map (fun r -> (r, 2)) !records) in
        ignore (Graph_gen.zipf_pool plan rng ~clients ~pool:256 ~s:0.8);
        Plan.add_root plan root;
        with_garbage plan rng ~live_objects:(indexes * records_per_index * 3);
        plan);
  }

let javac =
  {
    name = "javac";
    description =
      "compiler AST: random tree whose nodes all reference a small pool \
       of hot symbol objects — header-lock contention";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let n = scaled scale 25_000 in
        (* Every tree node carries a reserved trailing slot referencing a
           small, heavily skewed symbol pool: the few hottest symbols are
           locked by many cores at once. *)
        let root =
          Graph_gen.random_tree plan rng ~n ~max_fanout:3 ~reserve_slots:1
            ~delta_min:1 ~delta_max:3 ()
        in
        let clients =
          Array.init n (fun i ->
              let id = root + i in
              (id, Plan.pi_of plan id - 1))
        in
        ignore (Graph_gen.zipf_pool plan rng ~clients ~pool:8 ~s:1.6);
        Plan.add_root plan root;
        with_garbage plan rng ~live_objects:n;
        plan);
  }

let cup =
  {
    name = "cup";
    description =
      "parser-table generator: an extremely wide layered graph whose gray \
       backlog overflows the header FIFO — scan-lock critical sections \
       lengthen";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let w1 = scaled scale 240 in
        let w2 = scaled scale 22_000 in
        let w3 = scaled scale 44_000 in
        let hub = Graph_gen.layered plan rng ~widths:[| w1; w2; w3 |] ~delta:3 in
        Plan.add_root plan hub;
        with_garbage plan rng ~live_objects:(w2 + w3);
        plan);
  }

let javacc =
  {
    name = "javacc";
    description =
      "parser generator: caterpillar AST — a long backbone with small \
       subtrees, frontier width a couple dozen";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let backbone = scaled scale 1_500 in
        let head = Graph_gen.caterpillar plan rng ~backbone ~tuft:12 ~delta:3 in
        Plan.add_root plan head;
        with_garbage plan rng ~live_objects:(backbone * 13);
        plan);
  }

let jflex =
  {
    name = "jflex";
    description =
      "scanner generator: a bounded number of independent DFA-row chains \
       — parallelism saturates around eight cores";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let k = 5 in
        let n = scaled scale 6_000 in
        let hub = Plan.obj plan ~pi:k ~delta:0 in
        for i = 0 to k - 1 do
          (* Every second chain node carries a leaf payload: per-chain
             frontier ≈ 2 objects, so five chains feed 10-12 cores —
             scaling saturates between 8 and 16 cores. *)
          let head, _ =
            Graph_gen.chain_with_payload plan ~n ~every:2 ~node_delta:1
              ~payload_pi:0 ~payload_delta:2 ()
          in
          Plan.link plan ~parent:hub ~slot:i ~child:head
        done;
        Plan.add_root plan hub;
        with_garbage plan rng ~live_objects:(k * n * 2);
        plan);
  }

let jlisp =
  {
    name = "jlisp";
    description = "lisp interpreter: a small random cons-cell tree";
    build =
      (fun ~scale ~seed ->
        let plan = Plan.create () in
        let rng = Rng.create seed in
        let n = scaled scale 2_500 in
        let root =
          Graph_gen.random_tree plan rng ~n ~max_fanout:2 ~delta_min:0 ~delta_max:1
            ()
        in
        Plan.add_root plan root;
        with_garbage plan rng ~live_objects:n;
        plan);
  }

let all = [ compress; cup; db; javac; javacc; jflex; jlisp; search ]

let find name = List.find_opt (fun w -> w.name = name) all

let build_heap ?(scale = 1.0) ?(seed = 42) t =
  Plan.materialize (t.build ~scale ~seed)
