(** A mutator model: allocation and pointer churn between collections.

    The paper's benchmarks run a Java application whose allocation fills
    fromspace and triggers collection cycles; this module plays that role
    for multi-cycle experiments. Between collections it allocates new
    objects (linking some into the live graph and leaving some garbage),
    rewrites pointer fields, and occasionally drops root subtrees —
    exercising the collector across cycles where survivors carry Black
    headers from the previous cycle. *)

module Rng = Hsgc_util.Rng

type t

val create : Hsgc_heap.Heap.t -> Rng.t -> t
(** Attach a mutator to a heap (the heap may already be populated). *)

val churn : t -> allocs:int -> [ `Ok | `Heap_full ]
(** Allocate about [allocs] objects, mutating the graph along the way.
    Returns [`Heap_full] when an allocation no longer fits — time to
    collect (the churn performed so far remains valid). After a
    collection, simply call [churn] again: the mutator re-discovers the
    live graph from the roots. *)

val allocated : t -> int
(** Total objects allocated through this mutator. *)
