(** Reusable object-graph shape builders.

    All builders append to an existing {!Plan.t} and return the ids of
    the structure's entry points, so workloads compose shapes freely.
    Shapes are the levers that control the properties the paper ties to
    scaling behaviour:

    - {b frontier width} (how many gray objects can coexist) — chains
      starve the worklist, layered fans flood it;
    - {b sharing} (how many parents reference one child) — drives
      header-lock contention;
    - {b object size mix} — drives the body-load/store stall profile and
      the gray-backlog depth. *)

module Rng = Hsgc_util.Rng

val chain : Plan.t -> n:int -> pi:int -> delta:int -> int * int
(** Linked list of [n] objects (linked through slot 0); [(head, tail)].
    [pi] must be at least 1. *)

val chain_with_payload :
  Plan.t ->
  n:int ->
  ?every:int ->
  node_delta:int ->
  payload_pi:int ->
  payload_delta:int ->
  unit ->
  int * int
(** Chain whose nodes (π = 2: next, payload) carry a private leaf payload
    object on every [every]-th node (default 1 = all); [(head, tail)].
    The payload density controls how far past one core the chain can
    feed. *)

val star : Plan.t -> fanout:int -> child_pi:int -> child_delta:int -> int * int array
(** Hub with [fanout] children; [(hub, children)]. *)

val layered : Plan.t -> Rng.t -> widths:int array -> delta:int -> int
(** Breadth-first layered graph: layer [i] has [widths.(i)] objects; the
    objects of layer [i+1] are partitioned (near-evenly, contiguously)
    among the parents of layer [i], so every object has exactly one
    parent and π of a parent is its block size. The last layer consists
    of leaves (π = 0). Every object carries [delta] data words. Returns a
    root hub (π = widths.(0)) above layer 0. The gray backlog while
    scanning layer [i] approaches [widths.(i+1)] — layered graphs are how
    a workload floods (or overflows) the header FIFO. *)

val random_tree :
  Plan.t ->
  Rng.t ->
  n:int ->
  max_fanout:int ->
  ?reserve_slots:int ->
  delta_min:int ->
  delta_max:int ->
  unit ->
  int
(** Uniform random tree of [n] nodes: each new node attaches to a random
    node with a free pointer slot. π of each node is drawn in
    [1, max_fanout] plus [reserve_slots] (default 0) trailing slots that
    the tree never uses — callers can point them at shared objects; δ is
    uniform in [delta_min, delta_max]. Returns the root id; the tree
    occupies ids [root, root + n). *)

val caterpillar :
  Plan.t ->
  Rng.t ->
  backbone:int ->
  tuft:int ->
  delta:int ->
  int
(** A backbone chain of [backbone] nodes, each carrying a small binary
    subtree of about [tuft] nodes — a graph of bounded frontier width
    (≈ tuft), matching benchmarks that scale to a few cores only. *)

val zipf_pool :
  Plan.t -> Rng.t -> clients:(int * int) array -> pool:int -> s:float -> int array
(** Create [pool] shared objects and point each client's designated slot
    (given as an [(id, slot)] pair) at one of them, Zipf-distributed with
    exponent [s] — a few pool objects become reference hot spots. Returns
    the pool ids. *)

val garbage : Plan.t -> Rng.t -> n:int -> max_pi:int -> max_delta:int -> unit
(** [n] unreachable objects (possibly linking to each other), interleaved
    allocation noise that a correct collector must not copy. *)
