(** The synchronization block (SB) of the GC coprocessor (paper Section
    V-C).

    The SB holds the global synchronization state:

    - the [scan] and [free] registers, readable by every core in every
      cycle, each guarded by a dedicated lock;
    - one header-lock register per core — a core locks an object header by
      writing the header's address into its own register; the SB compares
      it against all other cores' registers in parallel and stalls the
      core on a match;
    - the [ScanState] register with one busy bit per core;
    - a barrier: a micro-instruction marked as synchronizing stalls its
      core until all cores have reached one.

    Contention resolution is a static prioritization: the lowest core
    index wins. Acquire/release cost no cycles when uncontended, and a
    lock released by one core can be re-acquired by another in the same
    clock cycle. The simulation obtains both properties by stepping cores
    in priority order within a cycle and resolving lock operations
    immediately.

    Lock ordering [scan < header < free] (paper Section IV) is asserted:
    a core acquiring [scan] must hold no other lock; a core acquiring a
    header lock must not hold [free]. Protocol violations raise
    {!Hsgc_sanitizer.Diag.Violation} carrying the cycle (stamped into the
    shared hook record by the coprocessor), core, and held lockset.

    When a sanitizer is attached (via the optional [hooks] record passed
    to {!create}) every successful lock transition, scan/free advance,
    register write and barrier pass is also reported to it; with no
    sanitizer the hooks are nops behind a single [hooks.on] branch. *)

(* The record is exposed so the simulator's per-cycle loop can read the
   registers (scan/free/busy bits) with direct field loads — without
   flambda each [val] accessor is a real cross-module call, and these
   reads happen several times per core per cycle. The fields model
   hardware registers: read them freely, but mutate only through the
   operations below, which enforce the locking protocol and priority
   rules. *)
type t = {
  n : int;
  bank : int;
      (** which sync-block bank this register file is, in a banked
          machine ({!Hsgc_coproc.Banked}): each bank is a complete
          private SB serving one partition of cores. [-1] (the
          default) is the paper's dense machine — one block shared by
          every core. A label only: it never changes protocol
          behavior, but stamps diagnostics so a banked stall dump
          names the bank. *)
  mutable scan : int;
  mutable free : int;
  mutable scan_owner : int;  (** -1 = unlocked *)
  mutable free_owner : int;  (** -1 = unlocked *)
  header_regs : int array;  (** 0 = no header locked by that core *)
  busy : bool array;
  arrived : bool array;  (** barrier arrival flags *)
  mutable release_count : int;
  mutable busy_count : int;
      (** population count of [busy] — flat shadow kept exact by
          [set_busy], turning the per-grab termination sweep into one
          int compare *)
  mutable arrived_count : int;  (** population count of [arrived] *)
  mutable hdr_locked_count : int;
      (** nonzero entries in [header_regs]: the header-lock comparator
          short-circuits when no lock is held anywhere *)
  hooks : Hsgc_sanitizer.Hooks.t;
  obs : Hsgc_obs.Tracer.t;
}

val create :
  ?hooks:Hsgc_sanitizer.Hooks.t ->
  ?obs:Hsgc_obs.Tracer.t ->
  ?bank:int ->
  n_cores:int -> unit -> t
(** [obs] (default disabled) feeds the tracer's lock hold-time
    histograms: every successful acquire stamps the cycle, every
    release observes the hold duration. [bank] (default [-1]) labels
    the register file as one bank of a banked machine. *)

val n_cores : t -> int
val bank : t -> int

(** {2 The scan and free registers} *)

val scan : t -> int
val free : t -> int
val set_scan : t -> int -> unit
(** Unsynchronized initialization (used by core 1 before the barrier). *)

val set_free : t -> int -> unit

val try_lock_scan : t -> core:int -> bool
(** Acquire the scan lock; [false] = already held by another core (the
    caller stalls this cycle). Re-acquiring a lock already held by the
    same core is an error (the microprogram never does it). *)

val unlock_scan : t -> core:int -> unit

val advance_scan : t -> core:int -> int -> unit
(** [advance_scan t ~core n] — add [n] to [scan]; the caller must hold the
    scan lock. *)

val try_lock_free : t -> core:int -> bool
val unlock_free : t -> core:int -> unit

val claim_free : t -> core:int -> int -> int
(** [claim_free t ~core n] — current [free], advancing it by [n]; the
    caller must hold the free lock. *)

val scan_lock_owner : t -> int option
val free_lock_owner : t -> int option

(** {2 Header locks} *)

val try_lock_header : t -> core:int -> addr:int -> bool
(** Write [addr] into the core's header-lock register unless another
    core's register already holds [addr]. A core can hold at most one
    header lock; acquiring while holding one is an error. *)

val unlock_header : t -> core:int -> unit

val header_lock_of : t -> core:int -> int option

val header_locked_by_any : t -> addr:int -> bool
(** Is [addr] currently in any core's header-lock register? (Used by the
    main processor's read barrier in concurrent mode.) *)

(** {2 Busy bits and termination} *)

val set_busy : t -> core:int -> bool -> unit
val busy : t -> core:int -> bool
val any_busy : t -> bool
val none_busy_except : t -> core:int -> bool
(** All busy bits clear, ignoring [core]'s own bit. *)

(** {2 Barrier} *)

val barrier_arrive : t -> core:int -> bool
(** Core reaches a synchronizing micro-instruction. Returns [true] once
    the barrier has opened (all cores arrived); until then the core calls
    this again every cycle and stalls. The barrier resets itself once all
    cores have passed. *)

(** {2 Event-driven scheduling} *)

val next_wake : t -> int option
(** Always [None]: the SB is combinational — locks, busy bits and the
    barrier change only in response to core actions in the same cycle,
    never on a self-scheduled future event. A core blocked on SB state
    (a lock, the barrier) must therefore stay awake and poll every
    cycle; only cores blocked on memory responses may sleep. *)

(** {2 Invariant checking} *)

val assert_no_locks : t -> core:int -> unit
(** Raise {!Hsgc_sanitizer.Diag.Violation} if the core holds any lock —
    used at barrier boundaries. *)

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the complete register file: scan/free, lock
    owners, header-lock registers, busy and barrier-arrival bits. *)
