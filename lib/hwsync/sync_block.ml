module Diag = Hsgc_sanitizer.Diag
module Hooks = Hsgc_sanitizer.Hooks
module Obs = Hsgc_obs.Tracer

type t = {
  n : int;
  mutable scan : int;
  mutable free : int;
  mutable scan_owner : int; (* -1 = unlocked *)
  mutable free_owner : int;
  header_regs : int array; (* 0 = no header locked by that core *)
  busy : bool array;
  arrived : bool array;
  mutable release_count : int;
  hooks : Hooks.t;
  obs : Obs.t;
}

let create ?hooks ?(obs = Obs.disabled) ~n_cores () =
  if n_cores <= 0 then invalid_arg "Sync_block.create";
  let hooks = match hooks with Some h -> h | None -> Hooks.create () in
  {
    n = n_cores;
    scan = 0;
    free = 0;
    scan_owner = -1;
    free_owner = -1;
    header_regs = Array.make n_cores 0;
    busy = Array.make n_cores false;
    arrived = Array.make n_cores false;
    release_count = 0;
    hooks;
    obs;
  }

let n_cores t = t.n

let locks_held t ~core =
  let b = Buffer.create 16 in
  Buffer.add_char b '{';
  let sep () = if Buffer.length b > 1 then Buffer.add_char b ',' in
  if t.scan_owner = core then (sep (); Buffer.add_string b "scan");
  if core >= 0 && core < t.n && t.header_regs.(core) <> 0 then begin
    sep ();
    Buffer.add_string b (Printf.sprintf "hdr:%d" t.header_regs.(core))
  end;
  if t.free_owner = core then (sep (); Buffer.add_string b "free");
  Buffer.add_char b '}';
  Buffer.contents b

let protocol_fail t ~core ?addr check detail =
  Diag.fail ~cycle:t.hooks.Hooks.cycle ~core ?addr ~locks:(locks_held t ~core)
    check detail

let scan t = t.scan
let free t = t.free

let set_scan t v =
  t.scan <- v;
  if t.hooks.Hooks.on then t.hooks.Hooks.reg_set ~scan:true ~value:v

let set_free t v =
  t.free <- v;
  if t.hooks.Hooks.on then t.hooks.Hooks.reg_set ~scan:false ~value:v

let check_core t core =
  if core < 0 || core >= t.n then invalid_arg "Sync_block: bad core index"

let try_lock_scan t ~core =
  check_core t core;
  if t.scan_owner = core then
    protocol_fail t ~core Diag.Lock_state "scan lock re-entry";
  (* Lock ordering scan < header < free: scan is the first lock taken. *)
  if t.header_regs.(core) <> 0 || t.free_owner = core then
    protocol_fail t ~core Diag.Lock_order
      "lock-order violation acquiring scan (scan < header < free)";
  if t.scan_owner = -1 then begin
    t.scan_owner <- core;
    if t.hooks.Hooks.on then
      t.hooks.Hooks.lock_acquired ~lock:Hooks.scan_lock ~core ~addr:(-1);
    if t.obs.Obs.on then Obs.lock_acquired t.obs ~lock:Obs.lock_scan ~core;
    true
  end
  else false

let unlock_scan t ~core =
  if t.scan_owner <> core then
    protocol_fail t ~core Diag.Lock_state "unlock_scan by non-owner";
  t.scan_owner <- -1;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.lock_released ~lock:Hooks.scan_lock ~core ~addr:(-1);
  if t.obs.Obs.on then Obs.lock_released t.obs ~lock:Obs.lock_scan ~core

let advance_scan t ~core n =
  if t.scan_owner <> core then
    protocol_fail t ~core Diag.Scan_protocol "advance_scan without lock";
  let was = t.scan in
  t.scan <- t.scan + n;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.scan_advanced ~core ~scan_was:was ~scan_now:t.scan
      ~free:t.free

let try_lock_free t ~core =
  check_core t core;
  if t.free_owner = core then
    protocol_fail t ~core Diag.Lock_state "free lock re-entry";
  if t.free_owner = -1 then begin
    t.free_owner <- core;
    if t.hooks.Hooks.on then
      t.hooks.Hooks.lock_acquired ~lock:Hooks.free_lock ~core ~addr:(-1);
    if t.obs.Obs.on then Obs.lock_acquired t.obs ~lock:Obs.lock_free ~core;
    true
  end
  else false

let unlock_free t ~core =
  if t.free_owner <> core then
    protocol_fail t ~core Diag.Lock_state "unlock_free by non-owner";
  t.free_owner <- -1;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.lock_released ~lock:Hooks.free_lock ~core ~addr:(-1);
  if t.obs.Obs.on then Obs.lock_released t.obs ~lock:Obs.lock_free ~core

let claim_free t ~core n =
  if t.free_owner <> core then
    protocol_fail t ~core Diag.Free_protocol "claim_free without lock";
  let addr = t.free in
  t.free <- t.free + n;
  if t.hooks.Hooks.on then t.hooks.Hooks.free_claimed ~core ~addr ~size:n;
  addr

let scan_lock_owner t = if t.scan_owner = -1 then None else Some t.scan_owner
let free_lock_owner t = if t.free_owner = -1 then None else Some t.free_owner

let try_lock_header t ~core ~addr =
  check_core t core;
  if addr = 0 then
    protocol_fail t ~core ~addr Diag.Null_header
      "cannot lock the null header";
  if t.header_regs.(core) <> 0 then
    protocol_fail t ~core ~addr Diag.Lock_state
      "header lock re-entry (one header lock per core)";
  if t.free_owner = core then
    protocol_fail t ~core ~addr Diag.Lock_order
      "lock-order violation acquiring header after free";
  let conflict = ref false in
  for other = 0 to t.n - 1 do
    if other <> core && t.header_regs.(other) = addr then conflict := true
  done;
  if !conflict then false
  else begin
    t.header_regs.(core) <- addr;
    if t.hooks.Hooks.on then
      t.hooks.Hooks.lock_acquired ~lock:Hooks.header_lock ~core ~addr;
    if t.obs.Obs.on then Obs.lock_acquired t.obs ~lock:Obs.lock_header ~core;
    true
  end

let unlock_header t ~core =
  if t.header_regs.(core) = 0 then
    protocol_fail t ~core Diag.Lock_state "unlock_header without lock";
  let addr = t.header_regs.(core) in
  t.header_regs.(core) <- 0;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.lock_released ~lock:Hooks.header_lock ~core ~addr;
  if t.obs.Obs.on then Obs.lock_released t.obs ~lock:Obs.lock_header ~core

let header_lock_of t ~core =
  let a = t.header_regs.(core) in
  if a = 0 then None else Some a

let header_locked_by_any t ~addr =
  let hit = ref false in
  for core = 0 to t.n - 1 do
    if t.header_regs.(core) = addr then hit := true
  done;
  !hit

let set_busy t ~core b =
  check_core t core;
  t.busy.(core) <- b

let busy t ~core = t.busy.(core)
let any_busy t = Array.exists Fun.id t.busy

let none_busy_except t ~core =
  let ok = ref true in
  for other = 0 to t.n - 1 do
    if other <> core && t.busy.(other) then ok := false
  done;
  !ok

let barrier_arrive t ~core =
  check_core t core;
  let passed =
    if t.release_count > 0 then
      if t.arrived.(core) then begin
        t.arrived.(core) <- false;
        t.release_count <- t.release_count - 1;
        true
      end
      else
        (* This core already passed and reached the next barrier; it must
           wait for the previous one to fully drain. *)
        false
    else begin
      if not t.arrived.(core) then t.arrived.(core) <- true;
      if Array.for_all Fun.id t.arrived then begin
        t.release_count <- t.n;
        t.arrived.(core) <- false;
        t.release_count <- t.release_count - 1;
        true
      end
      else false
    end
  in
  if passed && t.hooks.Hooks.on then t.hooks.Hooks.barrier_passed ~core;
  passed

(* The SB is combinational: locks, busy bits and the barrier all react
   to core actions within the same cycle and schedule nothing on their
   own. Under the event-driven kernel's contract that means it never
   publishes a wake — cores blocked on SB state must poll every cycle. *)
let next_wake (_ : t) : int option = None

let assert_no_locks t ~core =
  if t.scan_owner = core then
    protocol_fail t ~core Diag.Locks_at_barrier "core still holds scan lock";
  if t.free_owner = core then
    protocol_fail t ~core Diag.Locks_at_barrier "core still holds free lock";
  if t.header_regs.(core) <> 0 then
    protocol_fail t ~core
      ~addr:t.header_regs.(core)
      Diag.Locks_at_barrier "core still holds a header lock"

(* Checkpoint codec: the complete register file — scan/free, lock
   owners, per-core header-lock registers, busy bits, barrier arrival
   bits and the release counter. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int w t.scan;
  Codec.W.int w t.free;
  Codec.W.int w t.scan_owner;
  Codec.W.int w t.free_owner;
  Codec.W.int_array w t.header_regs;
  Codec.W.bool_array w t.busy;
  Codec.W.bool_array w t.arrived;
  Codec.W.int w t.release_count

let restore t r =
  t.scan <- Codec.R.int r;
  t.free <- Codec.R.int r;
  t.scan_owner <- Codec.R.int r;
  t.free_owner <- Codec.R.int r;
  Codec.R.int_array_into r t.header_regs ~what:"header-lock registers";
  Codec.R.bool_array_into r t.busy ~what:"busy bits";
  Codec.R.bool_array_into r t.arrived ~what:"barrier arrival bits";
  t.release_count <- Codec.R.int r
