module Diag = Hsgc_sanitizer.Diag
module Hooks = Hsgc_sanitizer.Hooks
module Obs = Hsgc_obs.Tracer

type t = {
  n : int;
  bank : int; (* -1 = the dense machine's single block *)
  mutable scan : int;
  mutable free : int;
  mutable scan_owner : int; (* -1 = unlocked *)
  mutable free_owner : int;
  header_regs : int array; (* 0 = no header locked by that core *)
  busy : bool array;
  arrived : bool array;
  mutable release_count : int;
  (* Flat population counts shadowing the three register arrays, kept
     exactly in sync by the mutators below. They turn the per-cycle
     O(n_cores) probes — barrier completeness, the termination check's
     busy sweep, the header-lock comparator when no lock is held — into
     single int compares, which the stepping engines run every cycle. *)
  mutable busy_count : int;
  mutable arrived_count : int;
  mutable hdr_locked_count : int;
  hooks : Hooks.t;
  obs : Obs.t;
}

let create ?hooks ?(obs = Obs.disabled) ?(bank = -1) ~n_cores () =
  if n_cores <= 0 then invalid_arg "Sync_block.create";
  let hooks = match hooks with Some h -> h | None -> Hooks.create () in
  {
    n = n_cores;
    bank;
    scan = 0;
    free = 0;
    scan_owner = -1;
    free_owner = -1;
    header_regs = Array.make n_cores 0;
    busy = Array.make n_cores false;
    arrived = Array.make n_cores false;
    release_count = 0;
    busy_count = 0;
    arrived_count = 0;
    hdr_locked_count = 0;
    hooks;
    obs;
  }

let n_cores t = t.n
let bank t = t.bank

let locks_held t ~core =
  let b = Buffer.create 16 in
  Buffer.add_char b '{';
  let sep () = if Buffer.length b > 1 then Buffer.add_char b ',' in
  if t.scan_owner = core then (sep (); Buffer.add_string b "scan");
  if core >= 0 && core < t.n && t.header_regs.(core) <> 0 then begin
    sep ();
    Buffer.add_string b (Printf.sprintf "hdr:%d" t.header_regs.(core))
  end;
  if t.free_owner = core then (sep (); Buffer.add_string b "free");
  Buffer.add_char b '}';
  Buffer.contents b

let protocol_fail t ~core ?addr check detail =
  Diag.fail ~cycle:t.hooks.Hooks.cycle ~core ?addr ~locks:(locks_held t ~core)
    check detail

let scan t = t.scan
let free t = t.free

let set_scan t v =
  t.scan <- v;
  if t.hooks.Hooks.on then t.hooks.Hooks.reg_set ~scan:true ~value:v

let set_free t v =
  t.free <- v;
  if t.hooks.Hooks.on then t.hooks.Hooks.reg_set ~scan:false ~value:v

let check_core t core =
  if core < 0 || core >= t.n then invalid_arg "Sync_block: bad core index"

let try_lock_scan t ~core =
  check_core t core;
  if t.scan_owner = core then
    protocol_fail t ~core Diag.Lock_state "scan lock re-entry";
  (* Lock ordering scan < header < free: scan is the first lock taken. *)
  if t.header_regs.(core) <> 0 || t.free_owner = core then
    protocol_fail t ~core Diag.Lock_order
      "lock-order violation acquiring scan (scan < header < free)";
  if t.scan_owner = -1 then begin
    t.scan_owner <- core;
    if t.hooks.Hooks.on then
      t.hooks.Hooks.lock_acquired ~lock:Hooks.scan_lock ~core ~addr:(-1);
    if t.obs.Obs.on then Obs.lock_acquired t.obs ~lock:Obs.lock_scan ~core;
    true
  end
  else false

let unlock_scan t ~core =
  if t.scan_owner <> core then
    protocol_fail t ~core Diag.Lock_state "unlock_scan by non-owner";
  t.scan_owner <- -1;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.lock_released ~lock:Hooks.scan_lock ~core ~addr:(-1);
  if t.obs.Obs.on then Obs.lock_released t.obs ~lock:Obs.lock_scan ~core

let advance_scan t ~core n =
  if t.scan_owner <> core then
    protocol_fail t ~core Diag.Scan_protocol "advance_scan without lock";
  let was = t.scan in
  t.scan <- t.scan + n;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.scan_advanced ~core ~scan_was:was ~scan_now:t.scan
      ~free:t.free

let try_lock_free t ~core =
  check_core t core;
  if t.free_owner = core then
    protocol_fail t ~core Diag.Lock_state "free lock re-entry";
  if t.free_owner = -1 then begin
    t.free_owner <- core;
    if t.hooks.Hooks.on then
      t.hooks.Hooks.lock_acquired ~lock:Hooks.free_lock ~core ~addr:(-1);
    if t.obs.Obs.on then Obs.lock_acquired t.obs ~lock:Obs.lock_free ~core;
    true
  end
  else false

let unlock_free t ~core =
  if t.free_owner <> core then
    protocol_fail t ~core Diag.Lock_state "unlock_free by non-owner";
  t.free_owner <- -1;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.lock_released ~lock:Hooks.free_lock ~core ~addr:(-1);
  if t.obs.Obs.on then Obs.lock_released t.obs ~lock:Obs.lock_free ~core

let claim_free t ~core n =
  if t.free_owner <> core then
    protocol_fail t ~core Diag.Free_protocol "claim_free without lock";
  let addr = t.free in
  t.free <- t.free + n;
  if t.hooks.Hooks.on then t.hooks.Hooks.free_claimed ~core ~addr ~size:n;
  addr

let scan_lock_owner t = if t.scan_owner = -1 then None else Some t.scan_owner
let free_lock_owner t = if t.free_owner = -1 then None else Some t.free_owner

let try_lock_header t ~core ~addr =
  check_core t core;
  if addr = 0 then
    protocol_fail t ~core ~addr Diag.Null_header
      "cannot lock the null header";
  if t.header_regs.(core) <> 0 then
    protocol_fail t ~core ~addr Diag.Lock_state
      "header lock re-entry (one header lock per core)";
  if t.free_owner = core then
    protocol_fail t ~core ~addr Diag.Lock_order
      "lock-order violation acquiring header after free";
  let conflict = ref false in
  (* With no header lock held anywhere the comparator cannot match; the
     count makes the common uncontended acquire O(1). *)
  if t.hdr_locked_count > 0 then
    for other = 0 to t.n - 1 do
      if other <> core && t.header_regs.(other) = addr then conflict := true
    done;
  if !conflict then false
  else begin
    t.header_regs.(core) <- addr;
    t.hdr_locked_count <- t.hdr_locked_count + 1;
    if t.hooks.Hooks.on then
      t.hooks.Hooks.lock_acquired ~lock:Hooks.header_lock ~core ~addr;
    if t.obs.Obs.on then Obs.lock_acquired t.obs ~lock:Obs.lock_header ~core;
    true
  end

let unlock_header t ~core =
  if t.header_regs.(core) = 0 then
    protocol_fail t ~core Diag.Lock_state "unlock_header without lock";
  let addr = t.header_regs.(core) in
  t.header_regs.(core) <- 0;
  t.hdr_locked_count <- t.hdr_locked_count - 1;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.lock_released ~lock:Hooks.header_lock ~core ~addr;
  if t.obs.Obs.on then Obs.lock_released t.obs ~lock:Obs.lock_header ~core

let header_lock_of t ~core =
  let a = t.header_regs.(core) in
  if a = 0 then None else Some a

let header_locked_by_any t ~addr =
  if t.hdr_locked_count = 0 then false
  else begin
    let hit = ref false in
    for core = 0 to t.n - 1 do
      if t.header_regs.(core) = addr then hit := true
    done;
    !hit
  end

let set_busy t ~core b =
  check_core t core;
  if t.busy.(core) <> b then begin
    t.busy.(core) <- b;
    t.busy_count <- t.busy_count + (if b then 1 else -1)
  end

let busy t ~core = t.busy.(core)
let any_busy t = t.busy_count > 0

(* The termination probe: all busy bits clear, ignoring the probing
   core's own. Runs under the scan lock at every object grab, so the
   count (instead of an O(n_cores) sweep) is on the hot path. *)
let none_busy_except t ~core =
  t.busy_count = 0 || (t.busy_count = 1 && t.busy.(core))

let barrier_arrive t ~core =
  check_core t core;
  let passed =
    if t.release_count > 0 then
      if t.arrived.(core) then begin
        t.arrived.(core) <- false;
        t.arrived_count <- t.arrived_count - 1;
        t.release_count <- t.release_count - 1;
        true
      end
      else
        (* This core already passed and reached the next barrier; it must
           wait for the previous one to fully drain. *)
        false
    else begin
      if not t.arrived.(core) then begin
        t.arrived.(core) <- true;
        t.arrived_count <- t.arrived_count + 1
      end;
      (* Completeness is the arrival count reaching the core count — the
         per-arrival O(n_cores) sweep this replaces ran every cycle for
         every waiting core. *)
      if t.arrived_count = t.n then begin
        t.release_count <- t.n;
        t.arrived.(core) <- false;
        t.arrived_count <- t.arrived_count - 1;
        t.release_count <- t.release_count - 1;
        true
      end
      else false
    end
  in
  if passed && t.hooks.Hooks.on then t.hooks.Hooks.barrier_passed ~core;
  passed

(* The SB is combinational: locks, busy bits and the barrier all react
   to core actions within the same cycle and schedule nothing on their
   own. Under the event-driven kernel's contract that means it never
   publishes a wake — cores blocked on SB state must poll every cycle. *)
let next_wake (_ : t) : int option = None

let assert_no_locks t ~core =
  if t.scan_owner = core then
    protocol_fail t ~core Diag.Locks_at_barrier "core still holds scan lock";
  if t.free_owner = core then
    protocol_fail t ~core Diag.Locks_at_barrier "core still holds free lock";
  if t.header_regs.(core) <> 0 then
    protocol_fail t ~core
      ~addr:t.header_regs.(core)
      Diag.Locks_at_barrier "core still holds a header lock"

(* Checkpoint codec: the complete register file — scan/free, lock
   owners, per-core header-lock registers, busy bits, barrier arrival
   bits and the release counter. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int w t.scan;
  Codec.W.int w t.free;
  Codec.W.int w t.scan_owner;
  Codec.W.int w t.free_owner;
  Codec.W.int_array w t.header_regs;
  Codec.W.bool_array w t.busy;
  Codec.W.bool_array w t.arrived;
  Codec.W.int w t.release_count

let restore t r =
  t.scan <- Codec.R.int r;
  t.free <- Codec.R.int r;
  t.scan_owner <- Codec.R.int r;
  t.free_owner <- Codec.R.int r;
  Codec.R.int_array_into r t.header_regs ~what:"header-lock registers";
  Codec.R.bool_array_into r t.busy ~what:"busy bits";
  Codec.R.bool_array_into r t.arrived ~what:"barrier arrival bits";
  t.release_count <- Codec.R.int r;
  (* The shadow counts are derived state: recompute from the restored
     arrays rather than trusting (or versioning) the snapshot. *)
  let count_true a =
    let n = ref 0 in
    Array.iter (fun b -> if b then incr n) a;
    !n
  in
  t.busy_count <- count_true t.busy;
  t.arrived_count <- count_true t.arrived;
  t.hdr_locked_count <- 0;
  Array.iter (fun a -> if a <> 0 then t.hdr_locked_count <- t.hdr_locked_count + 1) t.header_regs
