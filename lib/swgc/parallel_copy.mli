(** A real fine-grained parallel copying collector on OCaml 5 domains —
    the commodity-hardware counterpart of the simulated coprocessor.

    Same algorithm, same granularity: a single shared worklist of gray
    objects, work distributed object-by-object, tospace claimed through a
    shared allocation pointer. Where the coprocessor gets its three
    synchronization points for free from the synchronization block, this
    implementation pays for them with what commodity hardware offers:

    - {i every object evacuated once}: a CAS per object on a forwarding
      table (standing in for the CAS-on-header of production collectors);
    - {i exclusive tospace allocation}: [Atomic.fetch_and_add] on the
      free pointer;
    - {i every gray object scanned once}: a lock-free Treiber stack as
      the shared worklist, with an in-flight counter for termination.

    Fromspace is never written during a collection (forwarding pointers
    live in the side table), so the flat heap itself needs no atomics:
    every tospace word has exactly one writer, and the worklist hand-off
    provides the happens-before edge between an object's evacuator and
    its scanner.

    Limitation (documented, inherent to the side-table design): the heap
    must have been materialized from a {!Plan} (objects allocated in
    id order), because forwarding slots are found by binary search over
    the object base addresses. That covers every benchmark and example in
    this repository. *)

type stats = {
  domains : int;
  live_objects : int;
  live_words : int;
  elapsed_s : float;  (** wall-clock time of the parallel phase *)
  per_domain_objects : int array;  (** objects scanned by each domain *)
  cas_claims : int;  (** successful forwarding-table claims *)
  cas_races_lost : int;  (** claims that lost the race and had to wait *)
}

val collect : domains:int -> Hsgc_heap.Heap.t -> stats
(** Collect the heap with [domains] parallel workers: evacuate everything
    reachable, update the roots, flip — observationally identical to
    [Hsgc_core.Cheney_seq.collect] and to the coprocessor. Raises
    [Invalid_argument] if the heap's current space is not a wall-to-wall
    sequence of objects (see the limitation above) and [Failure] on
    tospace overflow. *)
