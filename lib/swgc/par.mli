(** Minimal fork/join over OCaml 5 domains.

    domainslib is not available in this environment; the collector only
    needs "run [n] workers to completion", which this provides. *)

val run : domains:int -> (int -> 'a) -> 'a array
(** [run ~domains f] runs [f i] for [i] in [0, domains) — [f 0] on the
    calling domain, the rest on fresh domains — and returns the results
    in index order after joining them all. *)

val recommended_domain_count : unit -> int
(** [Domain.recommended_domain_count], capped at 16 (the coprocessor's
    largest configuration). *)
