module Heap = Hsgc_heap.Heap
module Header = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace

type stats = {
  domains : int;
  live_objects : int;
  live_words : int;
  elapsed_s : float;
  per_domain_objects : int array;
  cas_claims : int;
  cas_races_lost : int;
}

(* Forwarding-table states. *)
let unclaimed = -1
let claiming = -2

(* Treiber stack: the single shared worklist of gray objects. *)
module Worklist = struct
  type t = (int * int) list Atomic.t

  let create () : t = Atomic.make []

  let rec push (t : t) item =
    let old = Atomic.get t in
    if not (Atomic.compare_and_set t old (item :: old)) then push t item

  let rec pop (t : t) =
    match Atomic.get t with
    | [] -> None
    | item :: rest as old ->
      if Atomic.compare_and_set t old rest then Some item else pop t
end

(* Sorted base addresses of the objects in the current space; index in
   this array is the object's forwarding-table slot. *)
let object_bases heap =
  let space = Heap.from_space heap in
  let acc = ref [] in
  let count = ref 0 in
  Heap.iter_objects heap space (fun addr ->
      if Heap.obj_size heap addr < Header.header_words then
        invalid_arg "Parallel_copy.collect: malformed object walk";
      acc := addr :: !acc;
      incr count);
  let arr = Array.make !count 0 in
  List.iteri (fun i addr -> arr.(!count - 1 - i) <- addr) !acc;
  arr

let index_of bases addr =
  let lo = ref 0 and hi = ref (Array.length bases - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if bases.(mid) = addr then begin
      found := mid;
      lo := !hi + 1
    end
    else if bases.(mid) < addr then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then
    invalid_arg
      (Printf.sprintf "Parallel_copy.collect: %d is not an object base" addr)
  else !found

let collect ~domains heap =
  if domains < 1 then invalid_arg "Parallel_copy.collect: domains";
  let bases = object_bases heap in
  let n = Array.length bases in
  let fwd = Array.init n (fun _ -> Atomic.make unclaimed) in
  let to_sp = Heap.to_space heap in
  let free = Atomic.make to_sp.Semispace.base in
  let limit = to_sp.Semispace.limit in
  let worklist = Worklist.create () in
  let pending = Atomic.make 0 in
  let mem = heap.Heap.mem in
  let claims = Array.make domains 0 in
  let races = Array.make domains 0 in
  let scanned = Array.make domains 0 in
  (* Claim [addr], returning its tospace address. The winner of the CAS
     allocates the frame and publishes the gray object on the worklist;
     losers wait for the winner's [Atomic.set]. *)
  let claim dom addr =
    let slot = index_of bases addr in
    let state = Atomic.get fwd.(slot) in
    if state >= 0 then state
    else if state = unclaimed && Atomic.compare_and_set fwd.(slot) unclaimed claiming
    then begin
      let size = Header.size mem.(addr) in
      let naddr = Atomic.fetch_and_add free size in
      if naddr + size > limit then failwith "Parallel_copy.collect: heap overflow";
      claims.(dom) <- claims.(dom) + 1;
      Atomic.incr pending;
      Atomic.set fwd.(slot) naddr;
      Worklist.push worklist (addr, naddr);
      naddr
    end
    else begin
      (* Lost the race (or the winner is mid-allocation): wait it out. *)
      races.(dom) <- races.(dom) + 1;
      let rec wait () =
        let v = Atomic.get fwd.(slot) in
        if v >= 0 then v
        else begin
          Domain.cpu_relax ();
          wait ()
        end
      in
      wait ()
    end
  in
  (* Scan one gray object: copy the body, translating pointer-area words
     (claiming unevacuated children), then blacken the copy. *)
  let scan dom src dst =
    let w0 = mem.(src) in
    let pi = Header.pi w0 and delta = Header.delta w0 in
    for i = 0 to pi - 1 do
      let child = mem.(src + Header.header_words + i) in
      let v = if child = Heap.null then Heap.null else claim dom child in
      mem.(dst + Header.header_words + i) <- v
    done;
    for i = pi to pi + delta - 1 do
      mem.(dst + Header.header_words + i) <- mem.(src + Header.header_words + i)
    done;
    mem.(dst) <- Header.encode ~state:Black ~pi ~delta;
    mem.(dst + 1) <- 0;
    scanned.(dom) <- scanned.(dom) + 1
  in
  (* Roots are claimed sequentially before the workers start (core 1 does
     the same in the coprocessor). *)
  let roots = heap.Heap.roots in
  Array.iteri
    (fun i r -> if r <> Heap.null then roots.(i) <- claim 0 r)
    roots;
  let worker dom =
    let rec loop () =
      match Worklist.pop worklist with
      | Some (src, dst) ->
        scan dom src dst;
        Atomic.decr pending;
        loop ()
      | None ->
        if Atomic.get pending = 0 then ()
        else begin
          Domain.cpu_relax ();
          loop ()
        end
    in
    loop ()
  in
  let t0 = Monotonic_clock.now () in
  ignore (Par.run ~domains worker);
  let elapsed_s =
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
  in
  to_sp.Semispace.free <- Atomic.get free;
  Heap.flip heap;
  {
    domains;
    live_objects = Array.fold_left ( + ) 0 claims;
    live_words = Semispace.used (Heap.from_space heap);
    elapsed_s;
    per_domain_objects = scanned;
    cas_claims = Array.fold_left ( + ) 0 claims;
    cas_races_lost = Array.fold_left ( + ) 0 races;
  }
