let run ~domains f =
  if domains < 1 then invalid_arg "Par.run: domains";
  let others =
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> f (i + 1)))
  in
  let own = f 0 in
  Array.append [| own |] (Array.map Domain.join others)

let recommended_domain_count () = min 16 (Domain.recommended_domain_count ())
