(** The shared simulation kernel: the clock every cycle-stepped engine
    runs on.

    The kernel owns the notion of "now", counts how many cycles were
    actually executed versus fast-forwarded, and measures simulation
    throughput (simulated cycles per wall-clock second).

    The headline optimisation is {b idle-cycle skipping}: when the engine
    reports that a cycle was {i quiescent} — no agent made a state
    transition, so every subsequent cycle would be a byte-identical replay
    until the next registered wake-up (a memory-port completion, a pending
    header-store commit, a mutator operation becoming due) — the engine
    calls {!fast_forward} to jump [now] directly to that wake-up instead
    of spinning one cycle at a time. The engine remains responsible for
    crediting per-cycle counters (stall breakdowns, busy cycles,
    worklist-empty cycles) in bulk for the skipped span, so all reported
    statistics are bit-identical to naive stepping. *)

(* The record is exposed so engines can read [now] with a direct field
   load in their per-cycle loops (without flambda, [Kernel.now] is a
   real cross-module call). Mutate only through {!tick} and
   {!fast_forward}, which keep the executed/skipped split consistent
   with [now]. *)
type t = {
  skip : bool;
  mutable now : int;
  mutable executed : int;
  mutable skipped : int;
  wall_start : int64;  (** CLOCK_MONOTONIC ns at creation *)
  obs : Hsgc_obs.Tracer.t;
}

val create : ?skip:bool -> ?obs:Hsgc_obs.Tracer.t -> unit -> t
(** A fresh clock at cycle 0. [skip] (default [true]) records whether the
    owning engine should attempt idle-cycle skipping; the kernel itself
    only accounts. Wall-clock measurement starts here. [obs] (default
    disabled) records every fast-forward as a kernel skip-span trace
    event. *)

val now : t -> int
(** The current simulated cycle. *)

val skip_enabled : t -> bool

val tick : t -> unit
(** One cycle was executed: [now] advances by 1. *)

val fast_forward : t -> target:int -> int
(** [fast_forward t ~target] jumps [now] to [target] and returns the
    number of cycles skipped ([target - now], or 0 when [target <= now]).
    The caller must guarantee the skipped cycles were quiescent and must
    credit their per-cycle statistics in bulk. *)

val retire : t -> executed:int -> skipped:int -> unit
(** Bulk retirement for batching engines: advance [now] by
    [executed + skipped] cycles whose per-cycle effects the caller has
    already credited in closed form. Unlike {!fast_forward} this also
    books executed cycles, and it emits no skip-span trace event — a
    batching engine must fall back to per-cycle stepping whenever a
    tracer is attached. Raises [Invalid_argument] on negative spans. *)

val executed_cycles : t -> int
(** Cycles actually stepped ([tick] calls). *)

val skipped_cycles : t -> int
(** Cycles fast-forwarded over. [now = executed + skipped]. *)

val wall_seconds : t -> float
(** Wall-clock seconds since [create], measured on the monotonic clock
    (immune to NTP steps) and clamped at 0. *)

val cycles_per_second : t -> float
(** Simulated cycles per wall-clock second ([now / wall_seconds]);
    the kernel's throughput figure of merit. *)

(** Wake-up arithmetic ([min_wake]/[bound]) lives in {!Wake_queue}
    alongside the event queue that consumes it. *)

(** {2 Watchdog}

    Liveness monitoring for cycle-stepped engines. The engine reports
    once per executed cycle whether the machine made global progress
    (any agent transition, any shared-register movement); the watchdog
    trips when a cycle budget is exhausted or when [window] consecutive
    executed cycles pass without progress — turning a deadlock
    regression (which otherwise spins forever in [collect]'s
    run-to-halt loop) into a structured, diagnosable failure. *)

module Watchdog : sig
  type trip =
    | Budget_exceeded of { budget : int }
        (** [now] reached the configured cycle budget. Fires whether or
            not the machine is progressing: the budget is a hard bound
            on total simulated cycles. *)
    | No_progress of { window : int; since : int }
        (** [window] consecutive executed cycles saw no progress;
            [since] is the cycle of the last progressing one. Skipped
            (fast-forwarded) cycles never count — by construction they
            end at a wake-up that produces a transition. *)

  type t

  val create : ?budget:int -> window:int -> unit -> t
  (** [budget] (default none) bounds total simulated cycles; [window]
      bounds consecutive executed cycles without progress. Both must be
      >= 1. *)

  val observe : t -> now:int -> progressed:bool -> trip option
  (** Call once per executed cycle, after determining whether the cycle
      made progress. [Some trip] means the engine should abort with a
      diagnosis dump. *)

  val pp_trip : Format.formatter -> trip -> unit
end

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the clock position and executed/skipped split.
    [wall_start] is host time and is deliberately left alone — wall
    figures of a resumed run describe the resumed process. [restore]
    raises {!Hsgc_util.Codec.Error} when the snapshot was taken under a
    different stepping mode. *)

val watchdog_encode : Watchdog.t -> Hsgc_util.Codec.W.t -> unit
val watchdog_restore : Watchdog.t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the watchdog's progress tracking, so a resumed
    run trips at exactly the cycle the uninterrupted one would. *)
