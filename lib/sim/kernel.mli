(** The shared simulation kernel: the clock every cycle-stepped engine
    runs on.

    The kernel owns the notion of "now", counts how many cycles were
    actually executed versus fast-forwarded, and measures simulation
    throughput (simulated cycles per wall-clock second).

    The headline optimisation is {b idle-cycle skipping}: when the engine
    reports that a cycle was {i quiescent} — no agent made a state
    transition, so every subsequent cycle would be a byte-identical replay
    until the next registered wake-up (a memory-port completion, a pending
    header-store commit, a mutator operation becoming due) — the engine
    calls {!fast_forward} to jump [now] directly to that wake-up instead
    of spinning one cycle at a time. The engine remains responsible for
    crediting per-cycle counters (stall breakdowns, busy cycles,
    worklist-empty cycles) in bulk for the skipped span, so all reported
    statistics are bit-identical to naive stepping. *)

type t

val create : ?skip:bool -> unit -> t
(** A fresh clock at cycle 0. [skip] (default [true]) records whether the
    owning engine should attempt idle-cycle skipping; the kernel itself
    only accounts. Wall-clock measurement starts here. *)

val now : t -> int
(** The current simulated cycle. *)

val skip_enabled : t -> bool

val tick : t -> unit
(** One cycle was executed: [now] advances by 1. *)

val fast_forward : t -> target:int -> int
(** [fast_forward t ~target] jumps [now] to [target] and returns the
    number of cycles skipped ([target - now], or 0 when [target <= now]).
    The caller must guarantee the skipped cycles were quiescent and must
    credit their per-cycle statistics in bulk. *)

val executed_cycles : t -> int
(** Cycles actually stepped ([tick] calls). *)

val skipped_cycles : t -> int
(** Cycles fast-forwarded over. [now = executed + skipped]. *)

val wall_seconds : t -> float
(** Wall-clock seconds since [create]. *)

val cycles_per_second : t -> float
(** Simulated cycles per wall-clock second ([now / wall_seconds]);
    the kernel's throughput figure of merit. *)

(** {2 Wake-up arithmetic} *)

val min_wake : int option -> int option -> int option
(** Earliest of two optional wake-up times. *)

val bound : horizon:int option -> int -> int
(** Cap a wake-up target by an external horizon (e.g. the next mutator
    operation in concurrent mode). *)
