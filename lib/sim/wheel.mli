(** The kernel's event wheel: a time-keyed priority queue.

    Engines register future events (task availability, wake-ups) with
    their simulated time; the wheel yields them earliest-first. Entries
    with equal times come out in an unspecified but deterministic order —
    deterministic because the structure is a plain binary heap with no
    randomisation, which is what makes whole-simulation runs repeatable
    and lets the domain-parallel sweep driver promise identical output at
    any [--jobs] level. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** Register [v] at [time]. *)

val min_time : 'a t -> int option
(** Time of the earliest entry, if any. *)

val pop_exn : 'a t -> int * 'a
(** Remove and return the earliest entry. Raises [Invalid_argument] on an
    empty wheel. *)
