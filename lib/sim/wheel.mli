(** The kernel's event wheel: a time-keyed priority queue.

    Engines register future events (task availability, wake-ups) with
    their simulated time; the wheel yields them earliest-first. Entries
    with equal times come out in an unspecified but deterministic order —
    deterministic because the structure is a plain binary heap with no
    randomisation, which is what makes whole-simulation runs repeatable
    and lets the domain-parallel sweep driver promise identical output at
    any [--jobs] level.

    Internally the heap keeps times and payloads in two parallel arrays,
    so pushing an immediate payload (e.g. a core index) allocates
    nothing — the wheel doubles as the event-driven kernel's wake queue
    (see {!Wake_queue}) without putting pressure on the minor heap. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** Register [v] at [time]. Allocation-free except when the backing
    arrays grow (capacity doubles, starting at 64). *)

val min_time : 'a t -> int option
(** Time of the earliest entry, if any. *)

val top_time : 'a t -> int
(** Time of the earliest entry, or [max_int] on an empty wheel — the
    allocation-free variant of {!min_time} for hot loops. *)

val top_exn : 'a t -> 'a
(** Payload of the earliest entry. Raises [Invalid_argument] on an empty
    wheel. *)

val drop_exn : 'a t -> unit
(** Remove the earliest entry without returning it (allocation-free).
    Raises [Invalid_argument] on an empty wheel. *)

val pop_exn : 'a t -> int * 'a
(** Remove and return the earliest entry. Raises [Invalid_argument] on an
    empty wheel. *)
