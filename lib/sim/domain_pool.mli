(** Domain-parallel experiment sweeps.

    Independent sweep points (one simulator instance each) are distributed
    over stdlib [Domain]s. Results are returned in input order regardless
    of which domain finished first, so any derived report is byte-identical
    at every [jobs] level. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f xs] = [List.map f xs], computed on up to [jobs]
    domains (the calling domain included). [f] must not share mutable
    state across calls. With [jobs <= 1] (or fewer than two items) no
    domain is spawned and the plain sequential map runs.

    If one or more applications raise, the exception of the earliest
    failed {i input} is re-raised after all domains have joined —
    deterministic even when a later input failed first in wall time. *)
