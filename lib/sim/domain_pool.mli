(** Shared parallel runtime.

    One pool implementation behind every parallel surface of the
    simulator: experiment sweeps and chaos campaigns ({!map_list},
    {!map_list_policy}) and the BSP kernel's superstep dispatch
    ({!Pool.run_on}). Results and re-raised exceptions are deterministic
    at every [jobs]/[lanes] level, so any derived report is
    byte-identical regardless of host parallelism. *)

(** {2 Persistent worker pool}

    [lanes - 1] worker domains parked on mutex/condvar cells, plus the
    calling domain as lane 0. Handing work to a lane blocks the caller
    until it completes, so at most one domain executes a given closure
    and the mutex hand-off orders memory in both directions: everything
    the caller wrote before dispatch is visible to the worker, and
    everything the worker wrote is visible to the caller on return.
    That makes it safe to hand a lane a closure over arbitrary mutable
    simulator state, as the BSP kernel does with whole machine
    partitions. *)
module Pool : sig
  type t

  val create : lanes:int -> t
  (** Spawn [lanes - 1] worker domains (so [lanes = 1] spawns none and
      every [run]/[run_on] degenerates to a plain call). *)

  val lanes : t -> int

  val run_on : t -> lane:int -> (unit -> unit) -> unit
  (** Execute the closure on the given lane ([0] = the calling domain,
      inline) and block until it finishes. An exception raised by the
      closure is re-raised here. *)

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f lane] on every lane concurrently — [f 0] on
      the calling domain — and returns once all lanes finish. If lanes
      fail, the exception of the lowest-numbered failing lane is
      re-raised after every lane has been reaped. *)

  val post : t -> lane:int -> (unit -> unit) -> unit
  (** Asynchronous half of {!run_on}: hand the closure to a worker lane
      ([>= 1]) without blocking. Each lane holds at most one
      outstanding job. *)

  val wait : t -> lane:int -> unit
  (** Block until the lane's outstanding job finishes; re-raises its
      exception. *)

  val try_wait :
    t -> lane:int -> timeout_s:float -> [ `Done | `Failed of exn | `Timed_out ]
  (** Supervised form of {!wait}: poll for completion with a wall-clock
      deadline. [`Failed e] reports the job's exception without raising
      it. [`Timed_out] {e abandons} the job — domains cannot be killed —
      and poisons the lane: it accepts no further work ({!post} raises)
      and {!shutdown} will not join its worker. The caller must stop
      sharing mutable state with the abandoned job. *)

  val poisoned : t -> lane:int -> bool
  (** Whether a supervised wait timed out on this lane ([false] for lane
      0 and out-of-range lanes). *)

  val shutdown : t -> unit
  (** Stop and join every worker. Idempotent; the pool is unusable
      afterwards. *)

  val with_pool : lanes:int -> (t -> 'a) -> 'a
  (** [create], run the function, [shutdown] (also on exception). *)
end

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default parallelism for
    [--jobs]/[--par-domains] when the user does not pick one. *)

val resolve_jobs : limit:int -> int -> int
(** Resolve a CLI-level jobs request: [<= 0] means auto
    ({!recommended_jobs}); the result is clamped to [1 .. limit]
    (the leg or partition count — more lanes than work is waste). *)

(** {2 One-shot parallel maps} *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f xs] = [List.map f xs], computed on up to [jobs]
    domains (the calling domain included). [f] must not share mutable
    state across calls. With [jobs <= 1] (or fewer than two items) no
    domain is spawned and the plain sequential map runs.

    If one or more applications raise, the exception of the earliest
    failed {i input} is re-raised after all domains have joined —
    deterministic even when a later input failed first in wall time. *)

(** {2 Graceful degradation}

    A long campaign should not lose every completed point because one
    point failed. [map_list_policy] isolates failures per point and
    lets the caller choose the policy. *)

type error_policy =
  | Fail  (** raise the earliest failed input's exception (= [map_list]) *)
  | Skip  (** record the failure, keep the rest of the sweep *)
  | Retry of int
      (** re-run a failed point up to [n] more times before recording
          it; each re-run sees a fresh [attempt] index so it can reseed
          deterministically *)

type 'b outcome = Done of 'b | Failed of { attempts : int; error : exn }

val map_list_policy :
  on_error:error_policy ->
  jobs:int ->
  (attempt:int -> 'a -> 'b) ->
  'a list ->
  'b outcome list
(** Like {!map_list} but exceptions are confined to their point.
    [f ~attempt x] receives the 0-based attempt number ([> 0] only under
    [Retry]). Results are in input order at every [jobs] level; when no
    application raises, the outcome list is [Done] of exactly
    [map_list ~jobs (f ~attempt:0) xs]. Under [Fail] a failure is
    re-raised only after all domains have joined. *)

val partition_outcomes :
  'b outcome list -> (int * 'b) list * (int * int * exn) list
(** Split outcomes into [(index, value)] successes and
    [(index, attempts, error)] failures, both in input order. *)
