(** Domain-parallel experiment sweeps.

    Independent sweep points (one simulator instance each) are distributed
    over stdlib [Domain]s. Results are returned in input order regardless
    of which domain finished first, so any derived report is byte-identical
    at every [jobs] level. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f xs] = [List.map f xs], computed on up to [jobs]
    domains (the calling domain included). [f] must not share mutable
    state across calls. With [jobs <= 1] (or fewer than two items) no
    domain is spawned and the plain sequential map runs.

    If one or more applications raise, the exception of the earliest
    failed {i input} is re-raised after all domains have joined —
    deterministic even when a later input failed first in wall time. *)

(** {2 Graceful degradation}

    A long campaign should not lose every completed point because one
    point failed. [map_list_policy] isolates failures per point and
    lets the caller choose the policy. *)

type error_policy =
  | Fail  (** raise the earliest failed input's exception (= [map_list]) *)
  | Skip  (** record the failure, keep the rest of the sweep *)
  | Retry of int
      (** re-run a failed point up to [n] more times before recording
          it; each re-run sees a fresh [attempt] index so it can reseed
          deterministically *)

type 'b outcome = Done of 'b | Failed of { attempts : int; error : exn }

val map_list_policy :
  on_error:error_policy ->
  jobs:int ->
  (attempt:int -> 'a -> 'b) ->
  'a list ->
  'b outcome list
(** Like {!map_list} but exceptions are confined to their point.
    [f ~attempt x] receives the 0-based attempt number ([> 0] only under
    [Retry]). Results are in input order at every [jobs] level; when no
    application raises, the outcome list is [Done] of exactly
    [map_list ~jobs (f ~attempt:0) xs]. Under [Fail] a failure is
    re-raised only after all domains have joined. *)

val partition_outcomes :
  'b outcome list -> (int * 'b) list * (int * int * exn) list
(** Split outcomes into [(index, value)] successes and
    [(index, attempts, error)] failures, both in input order. *)
