(** Single-writer superstep mailboxes.

    The BSP kernel exchanges cross-partition data only at superstep
    boundaries, through one slot per producer: within a superstep slot
    [p] is written by partition [p] alone (single-writer — {!post} on a
    full slot is a protocol violation and raises), and the consumer
    drains every slot at the barrier before the next superstep begins.
    Slots are [Atomic.t], so a post on a worker domain happens-before
    the consumer's {!take}/{!drain} at the barrier; the deterministic
    drain order (ascending producer id) is what keeps any merge of
    per-partition reports byte-identical run to run. *)

type 'a t

val create : producers:int -> 'a t
(** One empty slot per producer. *)

val producers : 'a t -> int

val post : 'a t -> producer:int -> 'a -> unit
(** Publish into the producer's slot. Raises [Invalid_argument] if the
    slot is already full — the previous superstep's value was not
    drained, or two writers raced on one slot. *)

val take : 'a t -> producer:int -> 'a option
(** Remove and return the slot's value, if any. *)

val peek : 'a t -> producer:int -> 'a option

val drain : 'a t -> (int -> 'a -> unit) -> unit
(** Empty every slot in ascending producer order, calling the function
    on each present value — the barrier-time merge step. *)
