type 'a t = { slots : 'a option Atomic.t array }

let create ~producers =
  if producers < 1 then invalid_arg "Mailbox.create: producers must be >= 1";
  { slots = Array.init producers (fun _ -> Atomic.make None) }

let producers t = Array.length t.slots

let post t ~producer v =
  let s = t.slots.(producer) in
  if not (Atomic.compare_and_set s None (Some v)) then
    invalid_arg "Mailbox.post: slot already full (single-writer protocol)"

let take t ~producer = Atomic.exchange t.slots.(producer) None

let peek t ~producer = Atomic.get t.slots.(producer)

let drain t f =
  for p = 0 to Array.length t.slots - 1 do
    match Atomic.exchange t.slots.(p) None with
    | Some v -> f p v
    | None -> ()
  done
