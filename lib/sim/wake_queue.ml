(* Keyed wake queue for event-driven component scheduling.

   Components (GC cores, in practice) arm a wake time when they go to
   sleep on a memory response. The [armed] array holds each component's
   *current* wake time and is the source of truth; how the earliest
   future wake is found depends on the population size:

   - small populations (up to [scan_threshold] ids — every realistic
     coprocessor) scan [armed] directly: a handful of loads, no heap
     maintenance at all on the arm path, which runs once per sleep;

   - large populations keep a Wheel min-heap of (time, id) entries on
     the side. Re-arming just pushes a fresh entry and overwrites
     [armed]; stale heap entries are discarded lazily when they surface
     at the top ([armed.(id) <> time] means the entry was superseded).
     Arm/disarm stay O(log n) with no deletion support needed in the
     heap, and — because the Wheel stores ints in parallel arrays —
     allocation-free in steady state. *)

let scan_threshold = 64

type t = {
  heap : int Wheel.t option; (* None = linear-scan regime *)
  armed : int array; (* per-id current wake time; max_int = disarmed *)
}

let create ~n =
  {
    heap = (if n <= scan_threshold then None else Some (Wheel.create ()));
    armed = Array.make n max_int;
  }

let arm t ~id ~time =
  t.armed.(id) <- time;
  match t.heap with None -> () | Some h -> Wheel.push h ~time id

let disarm t ~id = t.armed.(id) <- max_int

let wake_of t ~id = t.armed.(id)

let next_after t ~now =
  match t.heap with
  | None ->
    (* An armed time at or before [now] is stale by construction (the
       component was woken and stepped at that cycle), so the strictly-
       future filter doubles as staleness pruning. *)
    let armed = t.armed in
    let best = ref max_int in
    for i = 0 to Array.length armed - 1 do
      let w = Array.unsafe_get armed i in
      if w > now && w < !best then best := w
    done;
    !best
  | Some h ->
    (* Discard entries that are stale (superseded by a re-arm or disarm)
       or already due; return the earliest strictly-future armed wake,
       or max_int when none. *)
    let result = ref (-1) in
    while !result < 0 do
      let time = Wheel.top_time h in
      if time = max_int then result := max_int
      else
        let id = Wheel.top_exn h in
        if t.armed.(id) = time && time > now then result := time
        else Wheel.drop_exn h
    done;
    !result

let pending t ~now =
  let n = ref 0 in
  Array.iter (fun w -> if w > now && w < max_int then incr n) t.armed;
  !n

let heap_entries t = match t.heap with None -> 0 | Some h -> Wheel.size h

(* Wake-time combinators shared by the kernel's fast-forward logic.
   A wake of [None] means "no self-scheduled event": the component only
   reacts to external stimuli, so it never bounds a jump. *)

let min_wake a b =
  match (a, b) with
  | None, w | w, None -> w
  | Some x, Some y -> Some (min x y)

let bound ~horizon target =
  match horizon with None -> target | Some h -> min h target
