type t = {
  skip : bool;
  mutable now : int;
  mutable executed : int;
  mutable skipped : int;
  wall_start : float;
}

let create ?(skip = true) () =
  { skip; now = 0; executed = 0; skipped = 0; wall_start = Unix.gettimeofday () }

let now t = t.now
let skip_enabled t = t.skip

let tick t =
  t.now <- t.now + 1;
  t.executed <- t.executed + 1

let fast_forward t ~target =
  if target <= t.now then 0
  else begin
    let span = target - t.now in
    t.now <- target;
    t.skipped <- t.skipped + span;
    span
  end

let executed_cycles t = t.executed
let skipped_cycles t = t.skipped
let wall_seconds t = Unix.gettimeofday () -. t.wall_start

let cycles_per_second t =
  let w = wall_seconds t in
  if w <= 0.0 then 0.0 else float_of_int t.now /. w

let min_wake a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (min x y)

let bound ~horizon target =
  match horizon with None -> target | Some h -> min h target
