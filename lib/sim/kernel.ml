type t = {
  skip : bool;
  mutable now : int;
  mutable executed : int;
  mutable skipped : int;
  (* CLOCK_MONOTONIC nanoseconds. gettimeofday can step backwards under
     NTP adjustment and produced negative Mcycles/s in long sweeps. *)
  wall_start : int64;
  obs : Hsgc_obs.Tracer.t;
}

let create ?(skip = true) ?(obs = Hsgc_obs.Tracer.disabled) () =
  {
    skip;
    now = 0;
    executed = 0;
    skipped = 0;
    wall_start = Monotonic_clock.now ();
    obs;
  }

let now t = t.now
let skip_enabled t = t.skip

let tick t =
  t.now <- t.now + 1;
  t.executed <- t.executed + 1

let fast_forward t ~target =
  if target <= t.now then 0
  else begin
    let span = target - t.now in
    if t.obs.Hsgc_obs.Tracer.on then
      Hsgc_obs.Tracer.skip_span t.obs ~cycle:t.now ~span;
    t.now <- target;
    t.skipped <- t.skipped + span;
    span
  end

(* Bulk retirement for batching engines: a span whose per-cycle effects
   were computed in closed form advances the clock in one call, keeping
   [now = executed + skipped] without a tick per cycle. No skip-span
   trace event is emitted — batching engines run with observability
   detached (they fall back to per-cycle stepping when a tracer is
   attached), so there is no subscriber to keep stepping-invariant. *)
let retire t ~executed ~skipped =
  if executed < 0 || skipped < 0 then invalid_arg "Kernel.retire";
  t.now <- t.now + executed + skipped;
  t.executed <- t.executed + executed;
  t.skipped <- t.skipped + skipped

let executed_cycles t = t.executed
let skipped_cycles t = t.skipped

let wall_seconds t =
  let ns = Int64.sub (Monotonic_clock.now ()) t.wall_start in
  Float.max 0.0 (Int64.to_float ns *. 1e-9)

let cycles_per_second t =
  let w = wall_seconds t in
  if w <= 0.0 then 0.0 else float_of_int t.now /. w

module Watchdog = struct
  type trip =
    | Budget_exceeded of { budget : int }
    | No_progress of { window : int; since : int }

  type nonrec t = {
    budget : int option;
    window : int;
    mutable quiet : int;
    mutable last_progress : int;
  }

  let create ?budget ~window () =
    if window < 1 then invalid_arg "Kernel.Watchdog.create: window must be >= 1";
    (match budget with
    | Some b when b < 1 ->
      invalid_arg "Kernel.Watchdog.create: budget must be >= 1"
    | Some _ | None -> ());
    { budget; window; quiet = 0; last_progress = 0 }

  let observe w ~now ~progressed =
    match w.budget with
    | Some b when now >= b -> Some (Budget_exceeded { budget = b })
    | _ ->
      if progressed then begin
        w.quiet <- 0;
        w.last_progress <- now;
        None
      end
      else begin
        w.quiet <- w.quiet + 1;
        if w.quiet >= w.window then
          Some (No_progress { window = w.window; since = w.last_progress })
        else None
      end

  let pp_trip ppf = function
    | Budget_exceeded { budget } ->
      Format.fprintf ppf "cycle budget of %d exhausted" budget
    | No_progress { window; since } ->
      Format.fprintf ppf
        "no progress for %d executed cycles (last progress at cycle %d)"
        window since
end

(* Checkpoint codec: clock position and executed/skipped split.
   [wall_start] is host time and intentionally not restored — a resumed
   run's wall-clock figures describe the resumed process only. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.bool w t.skip;
  Codec.W.int w t.now;
  Codec.W.int w t.executed;
  Codec.W.int w t.skipped

let restore t r =
  let skip = Codec.R.bool r in
  if skip <> t.skip then
    raise (Codec.Error "stepping mode (skip) differs between snapshot and machine");
  t.now <- Codec.R.int r;
  t.executed <- Codec.R.int r;
  t.skipped <- Codec.R.int r

let watchdog_encode (d : Watchdog.t) w =
  Codec.W.int w d.Watchdog.quiet;
  Codec.W.int w d.Watchdog.last_progress

let watchdog_restore (d : Watchdog.t) r =
  d.Watchdog.quiet <- Codec.R.int r;
  d.Watchdog.last_progress <- Codec.R.int r
