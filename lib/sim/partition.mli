(** Static partition plan for the BSP kernel.

    A plan assigns each simulated GC core — and with it the core's four
    memory ports — to exactly one partition, as contiguous core-id
    blocks of near-equal size. The plan is computed once before the run
    (Manticore-style static partitioning): partitions never migrate, so
    partition ownership of any machine event is a single array load,
    and the superstep scheduler's awake-partition mask is one bit per
    partition.

    The plan also names the {e cross-partition interface set}: the
    shared structures through which partitions can observe each other.
    For this machine that set is dense — the synchronization block
    (scan/free registers, locks, barrier), the header FIFO, and the
    shared memory bus with its per-cycle bandwidth budget are all
    reachable from every core on any cycle — which is exactly why the
    superstep scheduler synchronizes conservatively (see
    docs/PARALLEL.md). *)

type t

val plan : n_cores:int -> n_partitions:int -> t
(** Contiguous near-equal blocks; the remainder cores go to the leading
    partitions. Raises [Invalid_argument] when {!validate} rejects the
    pair. *)

val validate : n_cores:int -> n_partitions:int -> (unit, string) result
(** [Error msg] when either count is [< 1], when there are more
    partitions than cores, or when the partition count exceeds
    {!max_partitions}. The message is suitable for a CLI error. *)

val max_partitions : int
(** Largest supported partition count (awake masks are one bit per
    partition in a native [int]). *)

val default_partitions : n_cores:int -> int
(** [Domain.recommended_domain_count ()] clamped to [1 .. n_cores] (and
    {!max_partitions}) — the [--par-domains] auto default. *)

val n_cores : t -> int
val n_partitions : t -> int

val owner : t -> int array
(** Core id -> owning partition, one entry per core. The array is the
    plan's own storage — treat it as read-only. *)

val owner_of : t -> core:int -> int
val range : t -> partition:int -> int * int
(** Core-id half-open interval [(lo, hi)] owned by the partition. *)

(** Cross-partition interfaces of the simulated machine. *)
type interface = Sync_block | Header_fifo | Memory_bus

val interface_name : interface -> string

val interfaces : t -> interface list
(** Empty for a single partition; all three otherwise (every one of
    these structures is shared by all cores in this machine). *)

val pp : Format.formatter -> t -> unit
