(** Static partition plan for the BSP kernel.

    A plan assigns each simulated GC core — and with it the core's four
    memory ports — to exactly one partition, as contiguous core-id
    blocks of near-equal size. The plan is computed once before the run
    (Manticore-style static partitioning): partitions never migrate, so
    partition ownership of any machine event is a single array load,
    and the superstep scheduler's awake-partition mask is one bit per
    partition.

    The plan also names the {e cross-partition interface set}: the
    shared structures through which partitions can observe each other.
    A {!plan} describes the paper's machine, whose set is dense — the
    synchronization block (scan/free registers, locks, barrier), the
    header FIFO, and the shared memory bus with its per-cycle bandwidth
    budget are all reachable from every core on any cycle — which is
    exactly why the superstep scheduler synchronizes conservatively
    (see docs/PARALLEL.md). A {!banking} plan describes the banked
    variant machine ({!Hsgc_coproc.Banked}): each partition owns a
    private sync-block bank and memory lane, and only the header FIFO
    arbitration step serializes partitions. *)

type t

(** The machine variant a plan describes. *)
type kind = Dense | Banked

val kind_name : kind -> string

val plan : n_cores:int -> n_partitions:int -> t
(** A {!Dense} plan: contiguous near-equal blocks; the remainder cores
    go to the leading partitions. Raises [Invalid_argument] when
    {!validate} rejects the pair. *)

val banking : n_cores:int -> n_partitions:int -> t
(** A {!Banked} plan: equal contiguous blocks (one per sync-block bank
    and memory lane). Raises [Invalid_argument] when {!validate_banked}
    rejects the pair. *)

val validate : n_cores:int -> n_partitions:int -> (unit, string) result
(** [Error msg] when either count is [< 1], when there are more
    partitions than cores, or when the partition count exceeds
    {!max_partitions}. The message is suitable for a CLI error. *)

val validate_banked : n_cores:int -> n_partitions:int -> (unit, string) result
(** {!validate} plus the banked-machine constraint: the partition count
    must divide the core count exactly (equal banks; covering it with
    one core per bank is the limit case). With 1 core only 1 bank is
    valid; more partitions than cores is always rejected. *)

val max_partitions : int
(** Largest supported partition count (awake masks are one bit per
    partition in a native [int]). *)

val default_partitions : n_cores:int -> int
(** [Domain.recommended_domain_count ()] clamped to [1 .. n_cores] (and
    {!max_partitions}) — the [--par-domains] auto default for dense
    plans. Banked plans must additionally divide the core count; use
    {!default_banked_partitions} there. *)

val default_banked_partitions : n_cores:int -> int
(** Largest divisor of [n_cores] that is [<= default_partitions] — the
    auto default for banked plans; always passes {!validate_banked}. *)

val n_cores : t -> int
val n_partitions : t -> int
val kind : t -> kind

val owner : t -> int array
(** Core id -> owning partition, one entry per core. The array is the
    plan's own storage — treat it as read-only. *)

val owner_of : t -> core:int -> int
val range : t -> partition:int -> int * int
(** Core-id half-open interval [(lo, hi)] owned by the partition. *)

(** Cross-partition interfaces of the simulated machine. *)
type interface = Sync_block | Header_fifo | Memory_bus

val interface_name : interface -> string

val interfaces : t -> interface list
(** Empty for a single partition. Dense plans share all three
    structures; banked plans share only the header FIFO (the
    per-superstep arbitration step). *)

val pp : Format.formatter -> t -> unit
