(** Keyed wake queue with lazy invalidation.

    The event-driven kernel's scheduling core: each component [id] that
    goes idle until a known future cycle {e arms} its wake time here,
    and the fast-forward logic asks for the earliest strictly-future
    wake with {!next_after}. The per-id [armed] array is the source of
    truth; populations beyond {!scan_threshold} additionally keep a
    {!Wheel} min-heap so [next_after] stays sublinear. Re-arming a
    component does not delete its old heap entry — [armed] records the
    current wake per id, and superseded entries are discarded lazily
    when they reach the top of the heap. Small populations (every
    realistic coprocessor) skip the heap entirely and scan [armed],
    which is both cheaper and allocation-free. Steady-state operation
    is allocation-free in either regime.

    Contract for components: a component's published wake time must
    never overshoot an enabled event — it is always legal to wake (and
    poll) a component early, never legal to skip past a cycle where it
    would have acted. Components waiting on a purely external event
    (another core releasing a lock, the mutator pushing work) must stay
    unarmed and be polled every cycle instead. *)

type t

val create : n:int -> t
(** Queue for component ids [0 .. n-1], all initially disarmed. *)

val arm : t -> id:int -> time:int -> unit
(** Set [id]'s wake to [time], superseding any earlier arm. *)

val disarm : t -> id:int -> unit
(** Clear [id]'s wake (e.g. the component was woken externally). *)

val wake_of : t -> id:int -> int
(** Current armed wake of [id], [max_int] when disarmed. *)

val next_after : t -> now:int -> int
(** Earliest armed wake strictly after [now], or [max_int] when nothing
    is armed. Prunes stale entries as a side effect. *)

val scan_threshold : int
(** Largest population handled by the linear-scan regime; [create ~n]
    with [n] beyond it adds the min-heap. *)

val pending : t -> now:int -> int
(** Number of components with a strictly-future armed wake. *)

val heap_entries : t -> int
(** Heap entries, stale ones included — 0 in the linear-scan regime
    (for tests of the lazy-invalidation path). *)

(** {2 Wake-time combinators}

    Shared helpers for combining optional wake times when computing a
    fast-forward target; previously private to [Kernel]. *)

val min_wake : int option -> int option -> int option
(** Earlier of two optional wakes ([None] = no self-scheduled event). *)

val bound : horizon:int option -> int -> int
(** Cap a wake-up target by an external horizon (e.g. the next mutator
    operation in concurrent mode). *)
