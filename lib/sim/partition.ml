type kind = Dense | Banked

type t = {
  cores : int;
  parts : int;
  owner : int array;
  ranges : (int * int) array;
  pkind : kind;
}

type interface = Sync_block | Header_fifo | Memory_bus

let interface_name = function
  | Sync_block -> "sync-block"
  | Header_fifo -> "header-fifo"
  | Memory_bus -> "memory-bus"

let kind_name = function Dense -> "dense" | Banked -> "banked"

(* Awake-partition masks are one bit per partition in a native int. *)
let max_partitions = Sys.int_size - 2

let validate ~n_cores ~n_partitions =
  if n_cores < 1 then
    Error (Printf.sprintf "core count must be >= 1 (got %d)" n_cores)
  else if n_partitions < 1 then
    Error (Printf.sprintf "partition count must be >= 1 (got %d)" n_partitions)
  else if n_partitions > n_cores then
    Error
      (Printf.sprintf "partition count (%d) exceeds the core count (%d)"
         n_partitions n_cores)
  else if n_partitions > max_partitions then
    Error
      (Printf.sprintf "partition count (%d) exceeds the supported maximum (%d)"
         n_partitions max_partitions)
  else Ok ()

let validate_banked ~n_cores ~n_partitions =
  match validate ~n_cores ~n_partitions with
  | Error _ as e -> e
  | Ok () ->
    if n_cores mod n_partitions <> 0 then
      Error
        (Printf.sprintf
           "banked mode requires the partition count to divide or cover the \
            core count: %d cores cannot be split into %d equal banks (try %d)"
           n_cores n_partitions
           (let rec down p = if n_cores mod p = 0 then p else down (p - 1) in
            down n_partitions))
    else Ok ()

let make ~kind ~n_cores ~n_partitions =
  (* Contiguous blocks of near-equal size, the remainder spread over the
     leading partitions: cores [lo, hi) belong to partition p. Contiguity
     matters — a partition owns a range of core ids and (with them) those
     cores' four memory ports, which is what makes the ownership check a
     single array load per core. In a banked plan the remainder is zero
     by validation, so every bank's machine is the same size. *)
  let base = n_cores / n_partitions and extra = n_cores mod n_partitions in
  let owner = Array.make n_cores 0 in
  let ranges = Array.make n_partitions (0, 0) in
  let lo = ref 0 in
  for p = 0 to n_partitions - 1 do
    let size = base + if p < extra then 1 else 0 in
    let hi = !lo + size in
    ranges.(p) <- (!lo, hi);
    for c = !lo to hi - 1 do
      owner.(c) <- p
    done;
    lo := hi
  done;
  { cores = n_cores; parts = n_partitions; owner; ranges; pkind = kind }

let plan ~n_cores ~n_partitions =
  (match validate ~n_cores ~n_partitions with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Partition.plan: " ^ msg));
  make ~kind:Dense ~n_cores ~n_partitions

let banking ~n_cores ~n_partitions =
  (match validate_banked ~n_cores ~n_partitions with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Partition.banking: " ^ msg));
  make ~kind:Banked ~n_cores ~n_partitions

let n_cores t = t.cores
let n_partitions t = t.parts
let owner t = t.owner
let owner_of t ~core = t.owner.(core)
let range t ~partition = t.ranges.(partition)
let kind t = t.pkind

let interfaces t =
  if t.parts <= 1 then []
  else
    match t.pkind with
    | Dense -> [ Sync_block; Header_fifo; Memory_bus ]
    | Banked ->
      (* Each bank owns a private sync block and a private memory
         arbitration lane; only cross-bank header traffic (routed
         through the per-superstep FIFO arbitration step) serializes
         partitions. *)
      [ Header_fifo ]

let default_partitions ~n_cores =
  max 1 (min n_cores (min max_partitions (Domain.recommended_domain_count ())))

let default_banked_partitions ~n_cores =
  (* Largest divisor of the core count not above the dense default: the
     auto choice always passes [validate_banked]. *)
  let cap = default_partitions ~n_cores in
  let rec down p = if n_cores mod p = 0 then p else down (p - 1) in
  down cap

let pp ppf t =
  Format.fprintf ppf "%d %s partition%s over %d core%s:" t.parts
    (kind_name t.pkind)
    (if t.parts = 1 then "" else "s")
    t.cores
    (if t.cores = 1 then "" else "s");
  Array.iteri
    (fun p (lo, hi) -> Format.fprintf ppf " p%d=[%d,%d)" p lo hi)
    t.ranges;
  match interfaces t with
  | [] -> Format.fprintf ppf "; no cross-partition interfaces"
  | is ->
    Format.fprintf ppf "; interfaces: %s"
      (String.concat ", " (List.map interface_name is))
