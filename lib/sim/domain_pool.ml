let map_list ~jobs f xs =
  let n = List.length xs in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some (match f input.(i) with v -> Ok v | exception e -> Error e));
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end
