type error_policy = Fail | Skip | Retry of int

type 'b outcome = Done of 'b | Failed of { attempts : int; error : exn }

let map_list ~jobs f xs =
  let n = List.length xs in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some (match f input.(i) with v -> Ok v | exception e -> Error e));
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

(* One sweep point under the error policy. Exceptions never escape: the
   retry loop hands [f] a fresh attempt index each time so the point can
   reseed deterministically, and exhaustion becomes a [Failed] outcome
   the caller can report without losing the rest of the sweep. *)
let run_point ~on_error f x =
  let max_attempts =
    match on_error with Retry n -> 1 + max 0 n | Fail | Skip -> 1
  in
  let rec go attempt =
    match f ~attempt x with
    | v -> Done v
    | exception e ->
      if attempt + 1 < max_attempts then go (attempt + 1)
      else Failed { attempts = attempt + 1; error = e }
  in
  go 0

let map_list_policy ~on_error ~jobs f xs =
  (* [run_point] never raises, so the plain pool machinery applies. *)
  let outcomes = map_list ~jobs (run_point ~on_error f) xs in
  (match on_error with
  | Fail ->
    (* Same contract as [map_list]: the earliest failed *input* wins,
       deterministically, after every domain has joined. *)
    List.iter
      (function Failed { error; _ } -> raise error | Done _ -> ())
      outcomes
  | Skip | Retry _ -> ());
  outcomes

let partition_outcomes outs =
  let rec go done_ failed i = function
    | [] -> (List.rev done_, List.rev failed)
    | Done v :: rest -> go ((i, v) :: done_) failed (i + 1) rest
    | Failed { attempts; error } :: rest ->
      go done_ ((i, attempts, error) :: failed) (i + 1) rest
  in
  go [] [] 0 outs
