(* Shared parallel runtime: one persistent domain pool implementation
   behind every parallel surface of the simulator — experiment sweeps,
   chaos campaigns, and the BSP kernel's superstep dispatch.

   A [Pool.t] owns [lanes - 1] worker domains parked on a per-lane
   mutex/condvar cell; lane 0 is always the calling domain. Work is
   handed to a specific lane ([run_on]) or to every lane at once
   ([run]); the caller blocks until the work completes, so at most one
   domain ever executes the closure and the mutex hand-off provides the
   happens-before edges in both directions (everything the leader wrote
   before [run_on] is visible to the worker, everything the worker
   wrote is visible to the leader after it returns). Exceptions raised
   by a lane are captured and re-raised on the caller — under [run],
   the lowest-numbered failing lane wins, deterministically. *)

module Pool = struct
  (* One cell per worker lane. [job]/[done_]/[failed] are only touched
     under [mutex]; the single condvar serves both directions because a
     worker waits only while [job = None] and the leader waits only
     while a job is outstanding — the two never wait at once. *)
  type cell = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable job : (unit -> unit) option;
    mutable busy : bool;  (* job posted and not yet reaped *)
    mutable done_ : bool;  (* job finished, result not yet reaped *)
    mutable failed : exn option;
    mutable stop : bool;
    mutable poisoned : bool;
        (* a supervised wait timed out and abandoned the outstanding
           job: the worker domain may still be running it, so the lane
           accepts no further work and shutdown must not join it *)
  }

  type t = {
    lanes : int;
    cells : cell array;  (* length [lanes - 1]; lane l lives in cell l-1 *)
    workers : unit Domain.t array;
    mutable closed : bool;
  }

  let lanes t = t.lanes

  let worker_loop cell =
    let rec loop () =
      Mutex.lock cell.mutex;
      while cell.job = None && not cell.stop do
        Condition.wait cell.cond cell.mutex
      done;
      match cell.job with
      | None ->
        (* stop requested with no pending job *)
        Mutex.unlock cell.mutex
      | Some f ->
        cell.job <- None;
        Mutex.unlock cell.mutex;
        let failed = match f () with () -> None | exception e -> Some e in
        Mutex.lock cell.mutex;
        cell.failed <- failed;
        cell.done_ <- true;
        Condition.broadcast cell.cond;
        Mutex.unlock cell.mutex;
        loop ()
    in
    loop ()

  let create ~lanes =
    if lanes < 1 then invalid_arg "Domain_pool.Pool.create: lanes must be >= 1";
    let cells =
      Array.init (lanes - 1) (fun _ ->
          {
            mutex = Mutex.create ();
            cond = Condition.create ();
            job = None;
            busy = false;
            done_ = false;
            failed = None;
            stop = false;
            poisoned = false;
          })
    in
    let workers = Array.map (fun c -> Domain.spawn (fun () -> worker_loop c)) cells in
    { lanes; cells; workers; closed = false }

  let check_open t op =
    if t.closed then invalid_arg (Printf.sprintf "Domain_pool.Pool.%s: pool is shut down" op)

  let post t ~lane f =
    check_open t "post";
    if lane < 1 || lane >= t.lanes then
      invalid_arg
        (Printf.sprintf "Domain_pool.Pool.post: lane %d out of range 1..%d" lane
           (t.lanes - 1));
    let c = t.cells.(lane - 1) in
    if c.poisoned then
      invalid_arg "Domain_pool.Pool.post: lane was poisoned by a timed-out job";
    Mutex.lock c.mutex;
    if c.busy then begin
      Mutex.unlock c.mutex;
      invalid_arg "Domain_pool.Pool.post: lane already has an outstanding job"
    end;
    c.busy <- true;
    c.done_ <- false;
    c.failed <- None;
    c.job <- Some f;
    Condition.broadcast c.cond;
    Mutex.unlock c.mutex

  let wait t ~lane =
    check_open t "wait";
    let c = t.cells.(lane - 1) in
    Mutex.lock c.mutex;
    if not c.busy then begin
      Mutex.unlock c.mutex;
      invalid_arg "Domain_pool.Pool.wait: lane has no outstanding job"
    end;
    while not c.done_ do
      Condition.wait c.cond c.mutex
    done;
    let failed = c.failed in
    c.busy <- false;
    c.done_ <- false;
    c.failed <- None;
    Mutex.unlock c.mutex;
    match failed with Some e -> raise e | None -> ()

  (* Supervised reap: poll for completion with a wall-clock deadline.
     The stdlib [Condition] has no timed wait, so the caller spins on
     [cpu_relax] between checks — acceptable because a supervising
     leader has nothing else to do, and the poll holds the mutex only
     for a field read per iteration. On timeout the job is {e
     abandoned}, not cancelled: OCaml domains cannot be killed, so the
     lane is poisoned (takes no further work, is not joined at
     shutdown) and the caller is expected to stop sharing state with
     it and degrade. *)
  let try_wait t ~lane ~timeout_s =
    check_open t "try_wait";
    let c = t.cells.(lane - 1) in
    Mutex.lock c.mutex;
    if not c.busy then begin
      Mutex.unlock c.mutex;
      invalid_arg "Domain_pool.Pool.try_wait: lane has no outstanding job"
    end;
    let deadline =
      Int64.add (Monotonic_clock.now ())
        (Int64.of_float (timeout_s *. 1e9))
    in
    let rec poll () =
      if c.done_ then begin
        let failed = c.failed in
        c.busy <- false;
        c.done_ <- false;
        c.failed <- None;
        Mutex.unlock c.mutex;
        match failed with Some e -> `Failed e | None -> `Done
      end
      else if Monotonic_clock.now () >= deadline then begin
        c.poisoned <- true;
        Mutex.unlock c.mutex;
        `Timed_out
      end
      else begin
        Mutex.unlock c.mutex;
        Domain.cpu_relax ();
        Mutex.lock c.mutex;
        poll ()
      end
    in
    poll ()

  let poisoned t ~lane =
    lane >= 1 && lane < t.lanes && t.cells.(lane - 1).poisoned

  let run_on t ~lane f =
    if lane = 0 then f ()
    else begin
      post t ~lane f;
      wait t ~lane
    end

  let run t f =
    check_open t "run";
    for lane = 1 to t.lanes - 1 do
      post t ~lane (fun () -> f lane)
    done;
    let leader_failed = match f 0 with () -> None | exception e -> Some e in
    (* Reap every lane before raising anything, so no worker is left
       running against state the caller is about to unwind. Lowest
       failing lane wins, leader (lane 0) first — deterministic
       regardless of wall-clock completion order. *)
    let first_failure = ref leader_failed in
    for lane = 1 to t.lanes - 1 do
      match wait t ~lane with
      | () -> ()
      | exception e -> if !first_failure = None then first_failure := Some e
    done;
    match !first_failure with Some e -> raise e | None -> ()

  let shutdown t =
    if not t.closed then begin
      t.closed <- true;
      Array.iter
        (fun c ->
          Mutex.lock c.mutex;
          c.stop <- true;
          Condition.broadcast c.cond;
          Mutex.unlock c.mutex)
        t.cells;
      (* A poisoned lane's worker may be stuck in an abandoned job and
         never observe [stop]; joining it would hang the shutdown. If it
         does finish, it sees [stop] on its next loop and exits on its
         own — the process just won't wait for it. *)
      Array.iteri
        (fun i w -> if not t.cells.(i).poisoned then Domain.join w)
        t.workers
    end

  let with_pool ~lanes f =
    let t = create ~lanes in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let recommended_jobs () = Domain.recommended_domain_count ()

let resolve_jobs ~limit jobs =
  let limit = max 1 limit in
  let j = if jobs <= 0 then recommended_jobs () else jobs in
  max 1 (min j limit)

type error_policy = Fail | Skip | Retry of int

type 'b outcome = Done of 'b | Failed of { attempts : int; error : exn }

let map_list ~jobs f xs =
  let n = List.length xs in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Every lane (the calling domain included) drains the shared index
       counter; per-point failures are confined to their slot so the
       lane closure itself never raises. *)
    let lane_body _lane =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some (match f input.(i) with v -> Ok v | exception e -> Error e));
          go ()
        end
      in
      go ()
    in
    Pool.with_pool ~lanes:jobs (fun pool -> Pool.run pool lane_body);
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

(* One sweep point under the error policy. Exceptions never escape: the
   retry loop hands [f] a fresh attempt index each time so the point can
   reseed deterministically, and exhaustion becomes a [Failed] outcome
   the caller can report without losing the rest of the sweep. *)
let run_point ~on_error f x =
  let max_attempts =
    match on_error with Retry n -> 1 + max 0 n | Fail | Skip -> 1
  in
  let rec go attempt =
    match f ~attempt x with
    | v -> Done v
    | exception e ->
      if attempt + 1 < max_attempts then go (attempt + 1)
      else Failed { attempts = attempt + 1; error = e }
  in
  go 0

let map_list_policy ~on_error ~jobs f xs =
  (* [run_point] never raises, so the plain pool machinery applies. *)
  let outcomes = map_list ~jobs (run_point ~on_error f) xs in
  (match on_error with
  | Fail ->
    (* Same contract as [map_list]: the earliest failed *input* wins,
       deterministically, after every domain has joined. *)
    List.iter
      (function Failed { error; _ } -> raise error | Done _ -> ())
      outcomes
  | Skip | Retry _ -> ());
  outcomes

let partition_outcomes outs =
  let rec go done_ failed i = function
    | [] -> (List.rev done_, List.rev failed)
    | Done v :: rest -> go ((i, v) :: done_) failed (i + 1) rest
    | Failed { attempts; error } :: rest ->
      go done_ ((i, attempts, error) :: failed) (i + 1) rest
  in
  go [] [] 0 outs
