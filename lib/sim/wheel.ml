(* A plain binary min-heap on the entry time.

   Times and payloads live in two parallel arrays rather than one array
   of pairs: pushing an immediate payload (an int, as the wake queue
   does every time a core goes to sleep) then allocates nothing, which
   keeps the simulation kernel's hot loop allocation-free. *)

type 'a t = {
  mutable times : int array;
  mutable vals : 'a array;
  mutable n : int;
}

let create () = { times = [||]; vals = [||]; n = 0 }

let size h = h.n
let is_empty h = h.n = 0

let swap h i j =
  let t = h.times.(i) in
  h.times.(i) <- h.times.(j);
  h.times.(j) <- t;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let push h ~time v =
  if h.n = Array.length h.times then begin
    let cap = max 64 (2 * h.n) in
    let times = Array.make cap time and vals = Array.make cap v in
    Array.blit h.times 0 times 0 h.n;
    Array.blit h.vals 0 vals 0 h.n;
    h.times <- times;
    h.vals <- vals
  end;
  h.times.(h.n) <- time;
  h.vals.(h.n) <- v;
  h.n <- h.n + 1;
  let i = ref (h.n - 1) in
  while !i > 0 && h.times.((!i - 1) / 2) > h.times.(!i) do
    let p = (!i - 1) / 2 in
    swap h p !i;
    i := p
  done

let min_time h = if h.n = 0 then None else Some h.times.(0)

(* Allocation-free variants for the hot path. *)
let top_time h = if h.n = 0 then max_int else h.times.(0)

let top_exn h =
  if h.n = 0 then invalid_arg "Wheel.top_exn: empty";
  h.vals.(0)

let drop_exn h =
  if h.n = 0 then invalid_arg "Wheel.drop_exn: empty";
  h.n <- h.n - 1;
  h.times.(0) <- h.times.(h.n);
  h.vals.(0) <- h.vals.(h.n);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.n && h.times.(l) < h.times.(!smallest) then smallest := l;
    if r < h.n && h.times.(r) < h.times.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap h !i !smallest;
      i := !smallest
    end
  done

let pop_exn h =
  if h.n = 0 then invalid_arg "Wheel.pop_exn: empty";
  let top = (h.times.(0), h.vals.(0)) in
  drop_exn h;
  top
