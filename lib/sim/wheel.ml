(* A plain binary min-heap on the entry time. *)

type 'a t = { mutable a : (int * 'a) array; mutable n : int }

let create () = { a = [||]; n = 0 }

let size h = h.n
let is_empty h = h.n = 0

let push h ~time v =
  let x = (time, v) in
  if h.n = Array.length h.a then begin
    let bigger = Array.make (max 64 (2 * h.n)) x in
    Array.blit h.a 0 bigger 0 h.n;
    h.a <- bigger
  end;
  h.a.(h.n) <- x;
  h.n <- h.n + 1;
  let i = ref (h.n - 1) in
  while !i > 0 && fst h.a.((!i - 1) / 2) > fst h.a.(!i) do
    let p = (!i - 1) / 2 in
    let tmp = h.a.(p) in
    h.a.(p) <- h.a.(!i);
    h.a.(!i) <- tmp;
    i := p
  done

let min_time h = if h.n = 0 then None else Some (fst h.a.(0))

let pop_exn h =
  if h.n = 0 then invalid_arg "Wheel.pop_exn: empty";
  let top = h.a.(0) in
  h.n <- h.n - 1;
  h.a.(0) <- h.a.(h.n);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.n && fst h.a.(l) < fst h.a.(!smallest) then smallest := l;
    if r < h.n && fst h.a.(r) < fst h.a.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = h.a.(!i) in
      h.a.(!i) <- h.a.(!smallest);
      h.a.(!smallest) <- tmp;
      i := !smallest
    end
  done;
  top
