(* Deterministic seeded fault injection. See the .mli for the model.

   Implementation notes:

   - [t] is [Off | On of state] so the disabled injector is a single
     immutable value and every hook starts with one constructor match;
     with faults off no RNG exists and no draw ever happens, which is
     what guarantees bit-identical behavior to a hook-free build.

   - Each mechanism only consumes randomness when its probability is
     positive. This keeps the substreams of a single-class plan stable:
     a delay-class campaign draws nothing for corruption decisions, so
     changing corruption parameters cannot perturb delay outcomes. *)

module Rng = Hsgc_util.Rng

type spec = {
  seed : int;
  delay_prob : float;
  delay_max : int;
  fifo_drop_prob : float;
  cache_invalidate_prob : float;
  busy_prob : float;
  corrupt_body_prob : float;
  corrupt_header_prob : float;
}

let default_spec =
  {
    seed = 0;
    delay_prob = 0.0;
    delay_max = 32;
    fifo_drop_prob = 0.0;
    cache_invalidate_prob = 0.0;
    busy_prob = 0.0;
    corrupt_body_prob = 0.0;
    corrupt_header_prob = 0.0;
  }

(* Probabilities near 1.0 would make spurious-busy reject essentially
   every acceptance attempt and livelock the machine by construction;
   0.95 keeps even hostile intensities terminating. *)
let clamp_prob p = Float.min 0.95 (Float.max 0.0 p)

let delay_class ?(seed = 1) ~intensity () =
  let p = clamp_prob intensity in
  {
    default_spec with
    seed;
    delay_prob = p;
    delay_max = 32;
    fifo_drop_prob = p;
    cache_invalidate_prob = p;
    busy_prob = p;
  }

let corruption_class ?(seed = 1) ~intensity () =
  let p = clamp_prob intensity in
  { default_spec with seed; corrupt_body_prob = p; corrupt_header_prob = p }

let pp_class ppf = function
  | `Delay -> Format.pp_print_string ppf "delay"
  | `Corruption -> Format.pp_print_string ppf "corruption"

let of_class = function
  | `Delay -> delay_class
  | `Corruption -> corruption_class

type counts = {
  delays : int;
  delay_cycles : int;
  fifo_drops : int;
  cache_invalidations : int;
  busies : int;
  body_corruptions : int;
  header_corruptions : int;
}

let zero_counts =
  {
    delays = 0;
    delay_cycles = 0;
    fifo_drops = 0;
    cache_invalidations = 0;
    busies = 0;
    body_corruptions = 0;
    header_corruptions = 0;
  }

type state = { spec : spec; rng : Rng.t; mutable c : counts }
type t = Off | On of state

let disabled = Off

let create spec =
  let spec = { spec with delay_max = max 1 spec.delay_max } in
  On { spec; rng = Rng.create spec.seed; c = zero_counts }

let enabled = function Off -> false | On _ -> true

(* A Bernoulli trial that draws only when it can fire. *)
let fires rng p = p > 0.0 && Rng.float rng 1.0 < p

let extra_delay = function
  | Off -> 0
  | On s ->
      if fires s.rng s.spec.delay_prob then begin
        let d = 1 + Rng.int s.rng s.spec.delay_max in
        s.c <- { s.c with delays = s.c.delays + 1;
                 delay_cycles = s.c.delay_cycles + d };
        d
      end
      else 0

let drop_push = function
  | Off -> false
  | On s ->
      let hit = fires s.rng s.spec.fifo_drop_prob in
      if hit then s.c <- { s.c with fifo_drops = s.c.fifo_drops + 1 };
      hit

let invalidate_cache = function
  | Off -> false
  | On s ->
      let hit = fires s.rng s.spec.cache_invalidate_prob in
      if hit then
        s.c <- { s.c with cache_invalidations = s.c.cache_invalidations + 1 };
      hit

(* Spurious-busy draws happen on *every* acceptance attempt, including
   the retry a Waiting port makes each cycle. When busy_prob is positive
   those retry cycles therefore consume randomness, and skipping them
   (sleeping the core, fast-forwarding the clock) would shift the fault
   stream and diverge from naive stepping. The event-driven scheduler
   asks this predicate before treating a waiting port as replayable. *)
let retry_draws = function
  | Off -> false
  | On s -> s.spec.busy_prob > 0.0

let spurious_busy = function
  | Off -> false
  | On s ->
      let hit = fires s.rng s.spec.busy_prob in
      if hit then s.c <- { s.c with busies = s.c.busies + 1 };
      hit

(* Body words may be pointers or payload; any of the 62 usable bits of a
   heap word is fair game. Headers are only corrupted in the decoded
   state/π/δ fields (bits 0..41) — flips above bit 41 land in padding
   the machine never reads, i.e. undetectable-by-construction, and would
   poison the detection-coverage denominator. *)
let body_bits = 62
let header_bits = 42

let corrupt_word s w bits =
  let bit = Rng.int s.rng bits in
  w lxor (1 lsl bit)

let corrupt_body t w =
  match t with
  | Off -> w
  | On s ->
      if fires s.rng s.spec.corrupt_body_prob then begin
        s.c <- { s.c with body_corruptions = s.c.body_corruptions + 1 };
        corrupt_word s w body_bits
      end
      else w

let corrupt_header t w =
  match t with
  | Off -> w
  | On s ->
      if fires s.rng s.spec.corrupt_header_prob then begin
        s.c <- { s.c with header_corruptions = s.c.header_corruptions + 1 };
        corrupt_word s w header_bits
      end
      else w

let counts = function Off -> zero_counts | On s -> s.c

let total t =
  let c = counts t in
  c.delays + c.fifo_drops + c.cache_invalidations + c.busies
  + c.body_corruptions + c.header_corruptions

let corruptions t =
  let c = counts t in
  c.body_corruptions + c.header_corruptions

let pp_counts ppf c =
  Format.fprintf ppf
    "delays=%d (+%d cyc) fifo-drops=%d cache-inv=%d busy=%d corrupt-body=%d \
     corrupt-hdr=%d"
    c.delays c.delay_cycles c.fifo_drops c.cache_invalidations c.busies
    c.body_corruptions c.header_corruptions

(* Checkpoint codec: the RNG stream position and the fault counts are
   the injector's entire mutable state (the spec is immutable and comes
   back through the run configuration). Restoring the stream position
   replays the exact fault sequence of the interrupted run. *)
module Codec = Hsgc_util.Codec

let encode t w =
  match t with
  | Off -> Codec.W.bool w false
  | On s ->
      Codec.W.bool w true;
      Codec.W.i64 w (Rng.state s.rng);
      let c = s.c in
      Codec.W.int w c.delays;
      Codec.W.int w c.delay_cycles;
      Codec.W.int w c.fifo_drops;
      Codec.W.int w c.cache_invalidations;
      Codec.W.int w c.busies;
      Codec.W.int w c.body_corruptions;
      Codec.W.int w c.header_corruptions

let restore t r =
  let enabled = Codec.R.bool r in
  match (t, enabled) with
  | Off, false -> ()
  | On s, true ->
      Rng.set_state s.rng (Codec.R.i64 r);
      let delays = Codec.R.int r in
      let delay_cycles = Codec.R.int r in
      let fifo_drops = Codec.R.int r in
      let cache_invalidations = Codec.R.int r in
      let busies = Codec.R.int r in
      let body_corruptions = Codec.R.int r in
      let header_corruptions = Codec.R.int r in
      s.c <-
        {
          delays;
          delay_cycles;
          fifo_drops;
          cache_invalidations;
          busies;
          body_corruptions;
          header_corruptions;
        }
  | Off, true | On _, false ->
      raise
        (Codec.Error
           "fault-injector enablement differs between snapshot and machine")
