(** Deterministic, seeded fault injection for the simulated hardware.

    The injector perturbs the machine the way silicon-validation
    campaigns do, in two strictly separated classes:

    - {b delay-class} faults only move events in time: jittered memory
      completions, transient header-FIFO drops (the entry falls through
      to the memory path, exactly like a capacity overflow), header-cache
      invalidations, and spurious buffer-busy cycles. They must be
      {i metamorphic-safe}: any collection run under them still
      terminates and still passes verification, because the microprogram
      is specified to be correct under every interleaving.
    - {b corruption-class} faults flip one bit of a copied body or
      header word as it is written to tospace. They model the failures
      the verifier exists to catch: every injected corruption must be
      {i detected} (verification failure or structured simulator error),
      never silently absorbed.

    Every draw comes from a private {!Hsgc_util.Rng} stream seeded by the
    plan, so a campaign point is exactly reproducible from its spec. A
    disabled injector ({!disabled}) costs one branch per hook and draws
    nothing — simulation behavior with faults off is bit-identical to a
    build without the hooks. *)

(** Fault plan: per-event probabilities (clamped to [0, 0.95]) plus the
    RNG seed. All-zero probabilities make an enabled injector that never
    fires (but still draws — use {!disabled} for the true off state). *)
type spec = {
  seed : int;
  delay_prob : float;  (** extra completion latency, per accepted transaction *)
  delay_max : int;  (** extra cycles drawn uniformly from [1, delay_max] *)
  fifo_drop_prob : float;  (** transient header-FIFO drop, per push *)
  cache_invalidate_prob : float;
      (** header-cache line invalidation, per cache hit *)
  busy_prob : float;  (** spurious buffer-busy, per acceptance attempt *)
  corrupt_body_prob : float;  (** single-bit flip, per copied body word *)
  corrupt_header_prob : float;  (** single-bit flip, per blackened header *)
}

val default_spec : spec
(** Seed 0, every probability 0. *)

val delay_class : ?seed:int -> intensity:float -> unit -> spec
(** All four delay-class mechanisms firing with probability [intensity]
    (extra latency up to 32 cycles). *)

val corruption_class : ?seed:int -> intensity:float -> unit -> spec
(** Body-word and header-word bit flips with probability [intensity];
    no delay-class perturbation, so any verification failure is
    attributable to the corruption. *)

val pp_class : Format.formatter -> [ `Delay | `Corruption ] -> unit

val of_class : [ `Delay | `Corruption ] -> ?seed:int -> intensity:float -> unit -> spec

type t

val disabled : t
(** The zero-cost off state: every hook returns its neutral value
    without drawing. *)

val create : spec -> t

val enabled : t -> bool

(** {2 Hooks}

    Each hook is called by the subsystem it perturbs at the moment the
    corresponding event could fire. On a disabled injector all hooks are
    neutral ([0], [false], identity). *)

val extra_delay : t -> int
(** Extra completion cycles for the transaction being accepted
    (0 = no fault). Called by {!Hsgc_memsim.Memsys} on acceptance. *)

val drop_push : t -> bool
(** Drop this header-FIFO push (the later read falls through to the
    memory path). Called by {!Hsgc_memsim.Header_fifo.push}. *)

val invalidate_cache : t -> bool
(** Invalidate the header-cache line being hit (the access replays as a
    miss). Called by {!Hsgc_memsim.Memsys} on a cache hit. *)

val spurious_busy : t -> bool
(** Reject this acceptance attempt as if the memory interface were busy;
    the port buffer stays in its retry loop. Called by
    {!Hsgc_memsim.Port}. *)

val retry_draws : t -> bool
(** True when per-cycle acceptance retries consume randomness (i.e.
    [busy_prob > 0]). The event-driven scheduler must not sleep over or
    fast-forward past a waiting port's retry cycles in that case — each
    retry draws from the fault stream, so skipping one would diverge
    from naive stepping. *)

val corrupt_body : t -> int -> int
(** [corrupt_body t w] — the word actually written to the tospace copy:
    [w], or [w] with one bit flipped when the fault fires. *)

val corrupt_header : t -> int -> int
(** Same for a header word being blackened; the flipped bit is confined
    to the decoded fields (state/π/δ) so the corruption is always
    semantically meaningful. *)

(** {2 Accounting} *)

type counts = {
  delays : int;
  delay_cycles : int;  (** total extra cycles injected *)
  fifo_drops : int;
  cache_invalidations : int;
  busies : int;
  body_corruptions : int;
  header_corruptions : int;
}

val counts : t -> counts
val total : t -> int
(** All injected faults, both classes. *)

val corruptions : t -> int
(** Corruption-class faults only — the detection-coverage denominator. *)

val pp_counts : Format.formatter -> counts -> unit

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the RNG stream position and fault counts, so a
    resumed run replays the exact fault sequence. [restore] raises
    {!Hsgc_util.Codec.Error} when snapshot and machine disagree about
    whether injection is enabled. *)
