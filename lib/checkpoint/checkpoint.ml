(* Versioned, sectioned, CRC-guarded snapshot container.

   Layout (all integers 64-bit little-endian via Hsgc_util.Codec):

     magic            "HSGC-CKPT\n" (10 raw bytes)
     version          int
     fingerprint      string        (config/build identity, writer-chosen)
     section count    int
     per section:     name string, crc32 int, payload string

   Every section carries its own CRC-32 (IEEE), so a single flipped bit
   anywhere in a payload is detected and attributed to its section; the
   header fields are covered by structural validation (bad magic,
   version, lengths). Files are written atomically: payload to a
   temporary file in the destination directory, fsync, rename — a crash
   mid-write can leave a stale temp file but never a torn snapshot. *)

module Codec = Hsgc_util.Codec

let magic = "HSGC-CKPT\n"
let version = 1

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- CRC-32 (IEEE 802.3, reflected) --------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- writing -------------------------------------------------------- *)

type writer = {
  fingerprint : string;
  mutable sections : (string * string) list;  (* reversed *)
}

let writer ~fingerprint = { fingerprint; sections = [] }

let add_section w name payload =
  if List.mem_assoc name w.sections then
    invalid_arg (Printf.sprintf "Checkpoint.add_section: duplicate %S" name);
  w.sections <- (name, payload) :: w.sections

let to_string w =
  let tail = Codec.W.create () in
  Codec.W.int tail version;
  Codec.W.string tail w.fingerprint;
  let sections = List.rev w.sections in
  Codec.W.int tail (List.length sections);
  List.iter
    (fun (name, payload) ->
      Codec.W.string tail name;
      Codec.W.int tail (crc32 payload);
      Codec.W.string tail payload)
    sections;
  magic ^ Codec.W.contents tail

let write w ~path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".ckpt-" ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let data = to_string w in
      let n = String.length data in
      let written = Unix.write_substring fd data 0 n in
      if written <> n then failwith "Checkpoint.write: short write";
      Unix.fsync fd);
  Sys.rename tmp path

(* --- reading -------------------------------------------------------- *)

type snapshot = {
  s_fingerprint : string;
  s_sections : (string * string) list;  (* in file order, CRC-verified *)
}

let fingerprint s = s.s_fingerprint
let section_names s = List.map fst s.s_sections

let section s name =
  match List.assoc_opt name s.s_sections with
  | Some payload -> payload
  | None -> corrupt "missing section %S" name

let of_string data =
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    corrupt "bad magic: not a checkpoint file";
  let r = Codec.R.of_string (String.sub data mlen (String.length data - mlen)) in
  let parse () =
    let v = Codec.R.int r in
    if v <> version then corrupt "snapshot version %d, expected %d" v version;
    let fp = Codec.R.string r in
    let n = Codec.R.int r in
    if n < 0 || n > 4096 then corrupt "implausible section count %d" n;
    let sections =
      List.init n (fun _ ->
          let name = Codec.R.string r in
          let crc = Codec.R.int r in
          let payload = Codec.R.string r in
          let actual = crc32 payload in
          if actual <> crc then
            corrupt "section %S CRC mismatch (stored %08x, computed %08x)"
              name crc actual;
          (name, payload))
    in
    if not (Codec.R.eof r) then
      corrupt "trailing garbage after last section";
    { s_fingerprint = fp; s_sections = sections }
  in
  match parse () with
  | s -> s
  | exception Codec.Error msg -> corrupt "malformed container: %s" msg

let load path =
  let data =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> corrupt "cannot read %s: %s" path msg
  in
  of_string data

(* Byte ranges of each section payload within the file — for the
   snapshot-integrity mutation tests, which flip one byte inside every
   section and assert its CRC catches the flip. *)
let payload_ranges path =
  let s = load path in
  (* Recompute offsets by re-walking the layout; load already verified
     structure, so the arithmetic below cannot go out of bounds. *)
  let pos = ref (String.length magic) in
  pos := !pos + 8 (* version *) + 8 + String.length s.s_fingerprint;
  pos := !pos + 8 (* section count *);
  List.map
    (fun (name, payload) ->
      pos := !pos + 8 + String.length name + 8 (* crc *) + 8 (* length *);
      let off = !pos in
      pos := !pos + String.length payload;
      (name, off, String.length payload))
    s.s_sections
