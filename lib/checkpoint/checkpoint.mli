(** Versioned, sectioned, CRC-guarded snapshot container.

    A checkpoint file is a magic string, a format version, a
    writer-chosen fingerprint (config/build identity), and a list of
    named sections, each carrying a CRC-32 of its payload. Files are
    written atomically (temp file in the destination directory + fsync
    + rename), so a crash mid-write never leaves a torn snapshot behind
    — at worst a stale [.ckpt-*.tmp] file.

    Loading verifies the magic, version, structural well-formedness and
    {e every} section CRC eagerly; any deviation — including a single
    flipped bit anywhere in a payload — raises {!Corrupt} naming what
    failed. Payload encoding/decoding is {!Hsgc_util.Codec}'s job; this
    module only moves opaque section strings. *)

exception Corrupt of string

val version : int

val crc32 : string -> int
(** CRC-32 (IEEE) of a string — exposed for tests. *)

(** {2 Writing} *)

type writer

val writer : fingerprint:string -> writer

val add_section : writer -> string -> string -> unit
(** [add_section w name payload]. Section names must be unique. *)

val to_string : writer -> string
(** The serialized container (exposed for tests). *)

val write : writer -> path:string -> unit
(** Atomic write: temp file beside [path], fsync, rename. *)

(** {2 Reading} *)

type snapshot

val load : string -> snapshot
(** Read and fully verify a snapshot file. Raises {!Corrupt} on any
    integrity or format violation (unreadable file included). *)

val of_string : string -> snapshot
(** Same, from bytes already in memory. *)

val fingerprint : snapshot -> string
val section_names : snapshot -> string list

val section : snapshot -> string -> string
(** Payload of a named section; raises {!Corrupt} when absent. *)

val payload_ranges : string -> (string * int * int) list
(** [(name, byte_offset, byte_length)] of every section payload within
    the file — for mutation tests that flip one byte per section and
    assert the CRC catches it. *)
