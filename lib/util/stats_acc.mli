(** Streaming statistics accumulators.

    Used by the experiment harness to aggregate per-GC-cycle measurements
    (cycle counts, stall counts, queue depths) without storing every
    sample. Mean and variance use Welford's online algorithm, which is
    numerically stable for long runs. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val add_int : t -> int -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** Smallest sample; +∞ if empty. *)

val max_value : t -> float
(** Largest sample; -∞ if empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both
    sample streams (Chan et al. parallel combination). *)

val pp : Format.formatter -> t -> unit
(** Render as [n=… mean=… sd=… min=… max=…]. *)
