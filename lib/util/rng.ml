type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Raw state accessors for checkpoint/restore: the generator is pure
   state, so capturing and reinstating the 64-bit word replays the
   stream exactly. *)
let state t = t.state
let set_state t s = t.state <- s

(* SplitMix64 finalizer: xor-shift / multiply mix of the advancing
   counter. Constants from the reference implementation. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Take the low 62 bits to get a non-negative OCaml int, then reduce.
     Modulo bias is negligible for the bounds used here (≤ 2^40). *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  raw mod bound

let float t bound =
  (* 53 uniform bits, scaled. *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int raw /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else begin
    let u = float t 1.0 in
    (* Inverse CDF: floor (ln u / ln (1-p)); clamp u away from 0. *)
    let u = if u <= 0.0 then min_float else u in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))
  end

let zipf t ~n ~s =
  assert (n > 0);
  if n = 1 then 0
  else begin
    (* Harmonic-sum inversion: draw u in [0, H_{n,s}) and find the first
       rank whose cumulative weight exceeds u. Linear scan is fine: the
       distribution is heavily weighted toward small ranks, so the
       expected scan length is O(1) for s ≥ 1. *)
    let h = ref 0.0 in
    for k = 1 to n do
      h := !h +. (1.0 /. Float.pow (float_of_int k) s)
    done;
    let u = float t !h in
    let rec find k acc =
      if k > n then n - 1
      else
        let acc = acc +. (1.0 /. Float.pow (float_of_int k) s) in
        if u < acc then k - 1 else find (k + 1) acc
    in
    find 1 0.0
  end
