(** ASCII rendering of tables and figures for the reproduction harness.

    The paper's evaluation artifacts are two tables and two line charts.
    The bench harness prints them as aligned text tables and as ASCII
    charts (speedup vs. core count), so that `dune exec bench/main.exe`
    regenerates every artifact on a terminal. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] is a column-aligned table with a separator rule
    under the header. All rows must have the same arity as the header. *)

val print : header:string list -> rows:string list list -> unit
(** [render] to stdout. *)

val pct : float -> string
(** Format a ratio in [0,1] as a percentage with two decimals, e.g.
    ["98.58 %"] — the paper's Table I style. *)

val fixed : int -> float -> string
(** [fixed d x] formats [x] with [d] decimals. *)

val count_with_pct : total:int -> int -> string
(** Table II cell style: ["75023 (1.58 %)"]. *)

(** Line chart over a shared x-axis, one series per label. *)
module Chart : sig
  type series = { label : string; points : (float * float) list }

  val render :
    ?width:int ->
    ?height:int ->
    title:string ->
    x_label:string ->
    y_label:string ->
    series list ->
    string
  (** ASCII scatter/line chart. Each series is drawn with a distinct mark
      character; a legend maps marks to labels. The y-range spans all
      series and always includes 0. *)
end
