let render ~header ~rows =
  let all = header :: rows in
  let arity = List.length header in
  List.iter (fun r -> assert (List.length r = arity)) rows;
  let widths = Array.make arity 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        (* First column left-aligned (names), the rest right-aligned
           (numbers), matching the paper's table style. *)
        let w = widths.(i) in
        let pad = w - String.length cell in
        if i = 0 then begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end
        else begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end)
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule_width = Array.fold_left ( + ) 0 widths + (2 * (arity - 1)) in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~header ~rows = print_string (render ~header ~rows)

let pct r = Printf.sprintf "%.2f %%" (100.0 *. r)

let fixed d x = Printf.sprintf "%.*f" d x

let count_with_pct ~total n =
  let r = if total = 0 then 0.0 else float_of_int n /. float_of_int total in
  Printf.sprintf "%d (%.2f %%)" n (100.0 *. r)

module Chart = struct
  type series = { label : string; points : (float * float) list }

  let marks = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&'; '$'; '~' |]

  let render ?(width = 60) ?(height = 20) ~title ~x_label ~y_label series =
    let all_points = List.concat_map (fun s -> s.points) series in
    if all_points = [] then title ^ "\n(no data)\n"
    else begin
      let xs = List.map fst all_points and ys = List.map snd all_points in
      let xmin = List.fold_left Float.min infinity xs in
      let xmax = List.fold_left Float.max neg_infinity xs in
      let ymin = Float.min 0.0 (List.fold_left Float.min infinity ys) in
      let ymax = List.fold_left Float.max neg_infinity ys in
      let ymax = if ymax <= ymin then ymin +. 1.0 else ymax in
      let xspan = if xmax <= xmin then 1.0 else xmax -. xmin in
      let grid = Array.make_matrix height width ' ' in
      let plot mark (x, y) =
        let cx =
          int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1) +. 0.5)
        in
        let cy =
          int_of_float
            ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1) +. 0.5)
        in
        let cx = max 0 (min (width - 1) cx) in
        let cy = max 0 (min (height - 1) cy) in
        (* Row 0 of the grid is the top of the chart. *)
        grid.(height - 1 - cy).(cx) <- mark
      in
      List.iteri
        (fun i s ->
          let mark = marks.(i mod Array.length marks) in
          List.iter (plot mark) s.points)
        series;
      let buf = Buffer.create 2048 in
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Printf.sprintf "%s (max %.2f)\n" y_label ymax);
      Array.iteri
        (fun row line ->
          let y_here =
            ymax -. (float_of_int row /. float_of_int (height - 1) *. (ymax -. ymin))
          in
          Buffer.add_string buf (Printf.sprintf "%8.2f |" y_here);
          Buffer.add_string buf (String.init width (fun c -> line.(c)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (String.make 9 ' ');
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      let left = Printf.sprintf "%.2f" xmin and right = Printf.sprintf "%.2f" xmax in
      let gap = max 1 (width - String.length left - String.length right) in
      Buffer.add_string buf
        (Printf.sprintf "%10s%s%s%s  (%s)\n" "" left (String.make gap ' ') right x_label);
      Buffer.add_string buf "legend: ";
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_char buf marks.(i mod Array.length marks);
          Buffer.add_char buf '=';
          Buffer.add_string buf s.label)
        series;
      Buffer.add_char buf '\n';
      Buffer.contents buf
    end
end
