(** Deterministic, splittable pseudo-random number generator.

    The simulator and the workload generators must be fully deterministic:
    a given seed always produces the same object graph and hence the same
    cycle counts. The stdlib [Random] module is avoided because its state
    is global and its algorithm may change between compiler releases.
    This is a SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014):
    64-bit state, one mix per draw, cheap [split] for independent
    substreams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an arbitrary integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** Raw generator state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Reinstate a captured state; the stream replays exactly from it. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator; use it to give substreams to subcomponents so that adding
    draws in one component does not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] draws from a geometric distribution with success
    probability [p] (support 0, 1, 2, ...; mean [(1-p)/p]).
    [p] must be in (0, 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [\[0, n)] from a Zipf distribution with
    exponent [s] (via inverse-CDF on a precomputed table is avoided; this
    uses rejection sampling suitable for repeated draws with small [n],
    and a harmonic-sum inversion otherwise). Used to model hot shared
    objects (a few objects referenced by many). *)
