(** Flat binary codec for checkpoint payloads.

    Fixed-width little-endian integers with length-prefixed strings and
    arrays. Used by every stateful component to encode its mutable state
    into a checkpoint section ({!Hsgc_checkpoint.Checkpoint}) and to
    restore it in place. The writer is append-only over a [Buffer]; the
    reader is a cursor over an immutable payload and raises {!Error} on
    any malformed or truncated read — integrity beyond well-formedness
    (bit flips on disk) is caught earlier by the container's per-section
    CRCs. *)

exception Error of string

module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val int : t -> int -> unit
  val i64 : t -> int64 -> unit
  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val int_array : t -> int array -> unit
  val bool_array : t -> bool array -> unit
end

module R : sig
  type t

  val of_string : string -> t
  val remaining : t -> int
  val eof : t -> bool
  val int : t -> int
  val i64 : t -> int64
  val bool : t -> bool
  val float : t -> float
  val string : t -> string
  val int_array : t -> int array

  val int_array_into : t -> int array -> what:string -> unit
  (** Read an array into an existing destination; raises {!Error} when
      the encoded length differs from the destination's — a snapshot for
      a differently-shaped machine. *)

  val bool_array_into : t -> bool array -> what:string -> unit
end
