(* Flat binary codec for checkpoint payloads.

   Fixed-width little-endian integers, length-prefixed strings and
   arrays — no varints, no compression. The format favors auditability
   over size: every field of the machine state maps to a fixed byte
   range, so a section's byte image is a deterministic function of the
   machine and byte-level comparisons between snapshots are meaningful.
   Integrity is the container's job (per-section CRCs in
   [Hsgc_checkpoint.Checkpoint]); the reader here only bounds-checks,
   and every malformed read raises [Error]. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let contents = Buffer.contents
  let i64 w v = Buffer.add_int64_le w v
  let int w v = i64 w (Int64.of_int v)
  let bool w b = int w (if b then 1 else 0)
  let float w f = i64 w (Int64.bits_of_float f)

  let string w s =
    int w (String.length s);
    Buffer.add_string w s

  let int_array w a =
    int w (Array.length a);
    Array.iter (fun v -> int w v) a

  let bool_array w a =
    int w (Array.length a);
    Array.iter (fun v -> bool w v) a
end

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let remaining r = String.length r.data - r.pos
  let eof r = remaining r = 0

  let i64 r =
    if remaining r < 8 then fail "codec: truncated read at byte %d" r.pos;
    let v = String.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    v

  let int r = Int64.to_int (i64 r)

  let bool r =
    match int r with
    | 0 -> false
    | 1 -> true
    | v -> fail "codec: invalid bool %d at byte %d" v r.pos

  let float r = Int64.float_of_bits (i64 r)

  let string r =
    let n = int r in
    if n < 0 || n > remaining r then
      fail "codec: invalid string length %d at byte %d" n r.pos;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let int_array r =
    let n = int r in
    if n < 0 || n * 8 > remaining r then
      fail "codec: invalid array length %d at byte %d" n r.pos;
    Array.init n (fun _ -> int r)

  (* Restore into an existing array of known size — the common case for
     machine state, where the destination was sized by the config and a
     length mismatch means the snapshot belongs to a different machine. *)
  let int_array_into r dst ~what =
    let n = int r in
    if n <> Array.length dst then
      fail "codec: %s length %d does not match machine (%d)" what n
        (Array.length dst);
    for i = 0 to n - 1 do
      dst.(i) <- int r
    done

  let bool_array_into r dst ~what =
    let n = int r in
    if n <> Array.length dst then
      fail "codec: %s length %d does not match machine (%d)" what n
        (Array.length dst);
    for i = 0 to n - 1 do
      dst.(i) <- bool r
    done
end
