type t = {
  cas : int;
  fence : int;
  lock_pair : int;
  local_op : int;
  steal : int;
}

let default = { cas = 30; fence = 50; lock_pair = 80; local_op = 2; steal = 120 }

let free_hardware = { cas = 0; fence = 0; lock_pair = 1; local_op = 1; steal = 1 }

let scaled t f =
  let s x = int_of_float (Float.round (float_of_int x *. f)) in
  {
    cas = s t.cas;
    fence = s t.fence;
    lock_pair = s t.lock_pair;
    local_op = s t.local_op;
    steal = s t.steal;
  }
