module Plan = Hsgc_objgraph.Plan
module Header = Hsgc_heap.Header

type scheme =
  | Fine_grained_software
  | Chunked of int
  | Work_packets of int
  | Work_stealing
  | Task_pushing
  | Hardware_fine_grained

let scheme_name = function
  | Fine_grained_software -> "sw-object"
  | Chunked n -> Printf.sprintf "sw-chunk-%d" n
  | Work_packets n -> Printf.sprintf "sw-packet-%d" n
  | Work_stealing -> "sw-steal"
  | Task_pushing -> "sw-push"
  | Hardware_fine_grained -> "hw-object"

let all_schemes =
  [
    Fine_grained_software;
    Chunked 32;
    Work_packets 16;
    Work_stealing;
    Task_pushing;
    Hardware_fine_grained;
  ]

type result = {
  scheme : scheme;
  workers : int;
  total_cycles : int;
  busy_cycles : int;
  sync_cycles : int;
  idle_cycles : int;
  pool_ops : int;
  steals : int;
  objects : int;
}

(* Task availability is tracked on the simulation kernel's event wheel:
   a time-keyed priority queue shared with the cycle-stepped engines. *)
module Wheel = Hsgc_sim.Wheel

(* Per-scheme knobs derived from the cost model. *)
type distribution =
  | Shared_pool  (* one central structure, exclusive access *)
  | Stealing  (* per-worker deques, idle workers raid the fullest *)
  | Pushing
      (* Wu & Li: a single-writer/single-reader queue per worker pair;
         producers scatter discoveries round-robin, consumers poll only
         their own inboxes — no exclusive structure at all *)

type knobs = {
  distribution : distribution;
  unit_size : int;  (* tasks exchanged per shared-pool operation *)
  pool_op_cost : int;  (* one exclusive access to the shared pool *)
  claim_cost : int;  (* atomically claiming one child object *)
  local_cost : int;  (* worker-local queue operation *)
  push_free : bool;
      (* hardware scheme: publishing a gray object is a side effect of
         the evacuation itself (the worklist is the tospace region), so
         pushes cost nothing and need no pool access *)
}

let knobs_of costs = function
  | Fine_grained_software ->
    {
      unit_size = 1;
      pool_op_cost = costs.Cost_model.lock_pair;
      claim_cost = costs.Cost_model.cas;
      local_cost = 0;
      distribution = Shared_pool;
      push_free = false;
    }
  | Chunked n ->
    {
      unit_size = max 1 n;
      pool_op_cost = costs.Cost_model.lock_pair;
      claim_cost = costs.Cost_model.cas;
      local_cost = costs.Cost_model.local_op;
      distribution = Shared_pool;
      push_free = false;
    }
  | Work_packets n ->
    {
      unit_size = max 1 n;
      (* get and put are distinct pool visits in the packet scheme *)
      pool_op_cost = costs.Cost_model.lock_pair + costs.Cost_model.fence;
      claim_cost = costs.Cost_model.cas;
      local_cost = costs.Cost_model.local_op;
      distribution = Shared_pool;
      push_free = false;
    }
  | Work_stealing ->
    {
      unit_size = 1;
      pool_op_cost = costs.Cost_model.steal;
      claim_cost = costs.Cost_model.cas;
      local_cost = costs.Cost_model.local_op;
      distribution = Stealing;
      push_free = false;
    }
  | Task_pushing ->
    {
      unit_size = 1;
      (* an SPSC enqueue is a couple of plain stores plus a lightweight
         publication fence — no atomic read-modify-write *)
      pool_op_cost = 2 * costs.Cost_model.local_op;
      claim_cost = costs.Cost_model.cas;
      local_cost = costs.Cost_model.local_op;
      distribution = Pushing;
      push_free = false;
    }
  | Hardware_fine_grained ->
    {
      unit_size = 1;
      pool_op_cost = 1;
      claim_cost = 0;
      local_cost = 0;
      distribution = Shared_pool;
      push_free = true;
    }

(* Productive work to scan one object: a pickup overhead plus one cycle
   per body word copied plus a translation effort per pointer slot. *)
let scan_work plan id =
  let pi = Plan.pi_of plan id in
  4 + pi + Plan.delta_of plan id + (2 * pi)

type worker = {
  mutable clock : int;
  mutable local : (int * int) list;  (* (available_at, task), newest first *)
  mutable local_n : int;
  mutable out : int list;  (* chunked/packet: discovered, not yet flushed *)
  mutable out_n : int;
  mutable busy : int;
  mutable sync : int;
  mutable idle : int;
}

let simulate ?(costs = Cost_model.default) ~plan ~workers scheme =
  if workers < 1 then invalid_arg "Engine.simulate: workers";
  let k = knobs_of costs scheme in
  let n = Plan.n_objects plan in
  let claimed = Array.make (max n 1) false in
  let remaining = ref 0 in
  let pool = Wheel.create () in
  let pool_free = ref 0 in
  let pool_ops = ref 0 in
  let steals = ref 0 in
  let ws =
    Array.init workers (fun _ ->
        {
          clock = 0;
          local = [];
          local_n = 0;
          out = [];
          out_n = 0;
          busy = 0;
          sync = 0;
          idle = 0;
        })
  in
  let victim_free = Array.make workers 0 in
  let inboxes = Array.init workers (fun _ -> Wheel.create ()) in
  let push_rr = ref 0 in
  (* Claim the roots and seed the pool (or the deques, for stealing). *)
  let seed = ref 0 in
  Array.iter
    (fun r ->
      if r >= 0 && not claimed.(r) then begin
        claimed.(r) <- true;
        incr remaining;
        (match k.distribution with
        | Stealing ->
          let w = ws.(!seed mod workers) in
          w.local <- (0, r) :: w.local;
          w.local_n <- w.local_n + 1;
          incr seed
        | Pushing ->
          Wheel.push inboxes.(!seed mod workers) ~time:0 r;
          incr seed
        | Shared_pool -> Wheel.push pool ~time:0 r)
      end)
    (Plan.roots plan);
  let flush_out w t =
    (* Publish the buffered discoveries, one pool operation per unit of
       [k.unit_size] tasks (object-granularity schemes pay one op per
       object). Called only when [w] is the earliest worker, so pool
       operations are serialized in time order. *)
    let t' = ref t in
    while w.out_n > 0 do
      let start = max !t' !pool_free in
      let fin = start + k.pool_op_cost in
      pool_free := fin;
      incr pool_ops;
      w.sync <- w.sync + (fin - !t');
      let taken = ref 0 in
      while w.out_n > 0 && !taken < k.unit_size do
        (match w.out with
        | task :: rest ->
          Wheel.push pool ~time:fin task;
          w.out <- rest;
          w.out_n <- w.out_n - 1
        | [] -> assert false);
        incr taken
      done;
      t' := fin
    done;
    !t'
  in
  let process w =
    match w.local with
    | [] -> invalid_arg "process: no local task"
    | (avail, id) :: rest ->
      w.local <- rest;
      w.local_n <- w.local_n - 1;
      (* A stolen or handed-over task cannot be scanned before the scan
         that discovered it published it. *)
      if avail > w.clock then begin
        w.idle <- w.idle + (avail - w.clock);
        w.clock <- avail
      end;
      let t0 = w.clock in
      let work = ref (scan_work plan id) in
      let discovered = ref [] in
      for slot = 0 to Plan.pi_of plan id - 1 do
        let c = Plan.child_of plan id slot in
        if c >= 0 && not claimed.(c) then begin
          claimed.(c) <- true;
          incr remaining;
          work := !work + k.claim_cost;
          discovered := c :: !discovered
        end
      done;
      let t_end = t0 + !work in
      w.busy <- w.busy + scan_work plan id;
      w.sync <- w.sync + (!work - scan_work plan id);
      w.clock <- t_end;
      decr remaining;
      (* Publish the discovered children. Stealing publishes into the
         local deque immediately; shared-pool schemes buffer them and
         publish on the worker's next scheduling turn so pool operations
         stay in time order across workers. *)
      (match k.distribution with
      | Stealing ->
        List.iter
          (fun c ->
            w.clock <- w.clock + k.local_cost;
            w.busy <- w.busy + k.local_cost;
            w.local <- (w.clock, c) :: w.local;
            w.local_n <- w.local_n + 1)
          !discovered
      | Pushing ->
        (* Scatter the discoveries round-robin over the per-pair SPSC
           queues (keeping one for ourselves each round). The producer
           pays the enqueue; the consumer polls for free. *)
        List.iter
          (fun c ->
            w.clock <- w.clock + k.pool_op_cost;
            w.sync <- w.sync + k.pool_op_cost;
            let target = !push_rr mod workers in
            incr push_rr;
            Wheel.push inboxes.(target) ~time:w.clock c)
          !discovered
      | Shared_pool ->
        if k.push_free then
          List.iter (fun c -> Wheel.push pool ~time:w.clock c) !discovered
        else
          List.iter
            (fun c ->
              w.clock <- w.clock + k.local_cost;
              w.busy <- w.busy + k.local_cost;
              w.out <- c :: w.out;
              w.out_n <- w.out_n + 1)
            !discovered)
  in
  let try_acquire_shared w =
    (* Returns true if the worker obtained at least one task. *)
    let access = max w.clock !pool_free in
    match Wheel.min_time pool with
    | Some avail when avail <= access ->
      let start = max access avail in
      let fin = start + k.pool_op_cost in
      pool_free := fin;
      incr pool_ops;
      w.sync <- w.sync + (fin - w.clock);
      let taken = ref 0 in
      while
        !taken < k.unit_size
        && match Wheel.min_time pool with Some t -> t <= start | None -> false
      do
        let avail, task = Wheel.pop_exn pool in
        w.local <- (avail, task) :: w.local;
        w.local_n <- w.local_n + 1;
        incr taken
      done;
      w.clock <- fin;
      true
    | Some avail ->
      (* Work exists but only in the future: idle until it lands. *)
      w.idle <- w.idle + (avail - w.clock);
      w.clock <- avail;
      false
    | None -> false
  in
  let try_poll_inbox wi w =
    let inbox = inboxes.(wi) in
    match Wheel.min_time inbox with
    | Some avail when avail <= w.clock ->
      let _, task = Wheel.pop_exn inbox in
      w.clock <- w.clock + k.local_cost;
      w.local <- (avail, task) :: w.local;
      w.local_n <- w.local_n + 1;
      true
    | Some avail ->
      w.idle <- w.idle + (avail - w.clock);
      w.clock <- avail;
      false
    | None -> false
  in
  let try_steal w =
    let best = ref (-1) in
    Array.iteri
      (fun i v ->
        if v != w && v.local_n > 0 then
          if !best < 0 || v.local_n > ws.(!best).local_n then best := i)
      ws;
    if !best < 0 then false
    else begin
      let vi = !best in
      let v = ws.(vi) in
      let start = max w.clock victim_free.(vi) in
      let fin = start + k.pool_op_cost in
      victim_free.(vi) <- fin;
      incr steals;
      w.sync <- w.sync + (fin - w.clock);
      w.clock <- fin;
      (* Take half the victim's queue (from the back, as stealers do). *)
      let take = max 1 (v.local_n / 2) in
      let keep = v.local_n - take in
      let rec split i acc = function
        | rest when i = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (i - 1) (x :: acc) rest
      in
      let kept, stolen = split keep [] v.local in
      v.local <- kept;
      v.local_n <- keep;
      w.local <- stolen @ w.local;
      w.local_n <- w.local_n + List.length stolen;
      w.local_n > 0
    end
  in
  (* Main loop: schedule the earliest worker. *)
  let active i =
    let v = ws.(i) in
    v.local_n > 0 || v.out_n > 0 || Wheel.size inboxes.(i) > 0
  in
  while !remaining > 0 do
    (* earliest worker that can possibly act *)
    let wi = ref 0 in
    Array.iteri (fun i w -> if w.clock < ws.(!wi).clock then wi := i) ws;
    let w = ws.(!wi) in
    if w.out_n > 0 && (w.out_n >= k.unit_size || Wheel.size pool = 0) then
      w.clock <- flush_out w w.clock
    else if w.local_n > 0 then process w
    else if w.out_n > 0 then w.clock <- flush_out w w.clock
    else begin
      let got =
        match k.distribution with
        | Stealing -> try_steal w
        | Pushing -> try_poll_inbox !wi w
        | Shared_pool -> try_acquire_shared w
      in
      (* A successful acquisition is followed by processing one task in
         the same step — otherwise a stolen task can be re-stolen forever
         by the other idle workers without anyone ever scanning it. *)
      if got && w.local_n > 0 then process w
      else if not got then begin
        (* Nothing obtainable now. Wait for the next event: a future
           pool entry or another active worker's progress. *)
        let next = ref max_int in
        (match Wheel.min_time pool with Some t -> next := t | None -> ());
        (match Wheel.min_time inboxes.(!wi) with
        | Some t -> next := min !next t
        | None -> ());
        Array.iteri
          (fun i v -> if i <> !wi && active i then next := min !next (v.clock + 1))
          ws;
        if !next = max_int then
          (* No work anywhere, yet remaining > 0 — impossible unless the
             graph was inconsistent. *)
          failwith "Engine.simulate: starvation with work remaining"
        else begin
          let target = max !next (w.clock + 1) in
          w.idle <- w.idle + (target - w.clock);
          w.clock <- target
        end
      end
    end
  done;
  let total = Array.fold_left (fun acc w -> max acc w.clock) 0 ws in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 ws in
  let objects =
    Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 claimed
  in
  {
    scheme;
    workers;
    total_cycles = total;
    busy_cycles = sum (fun w -> w.busy);
    sync_cycles = sum (fun w -> w.sync);
    idle_cycles = sum (fun w -> w.idle);
    pool_ops = !pool_ops;
    steals = !steals;
    objects;
  }

let speedup base r = float_of_int base.total_cycles /. float_of_int r.total_cycles
