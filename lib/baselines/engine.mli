(** Trace-driven simulation of the software parallel-collection schemes
    the paper surveys in Section III, plus the hardware-supported scheme
    as an idealized reference — all over the same workload {!Plan}s the
    coprocessor simulator uses.

    The engine models what matters for the paper's argument: {i who pays
    how much synchronization, at which granularity, and how well the work
    balances}. Each live object is a task whose processing costs its copy
    work plus a per-child claim; schemes differ in how tasks reach
    workers (one shared list at object granularity, shared chunks, work
    packets, per-worker deques with stealing) and in what each access to
    the shared structures costs under the {!Cost_model}. Memory timing is
    deliberately abstracted away (the coprocessor simulator covers it);
    this engine isolates the synchronization-and-balance dimension. *)

module Plan = Hsgc_objgraph.Plan

type scheme =
  | Fine_grained_software
      (** the paper's algorithm, naively on commodity hardware: one
          shared worklist accessed object-by-object under a lock *)
  | Chunked of int
      (** Imai & Tick: the pool exchanges chunks of [n] objects *)
  | Work_packets of int
      (** Ossia et al.: get/put packets of [n] references *)
  | Work_stealing
      (** Flood et al. / Endo et al.: per-worker deques, idle workers
          steal half a victim's queue *)
  | Task_pushing
      (** Wu & Li: one single-writer/single-reader queue per worker pair;
          producers scatter discoveries round-robin at plain-store cost,
          consumers poll only their own inboxes *)
  | Hardware_fine_grained
      (** the paper's coprocessor: object granularity with free
          synchronization (structural serialization still applies) *)

val scheme_name : scheme -> string
val all_schemes : scheme list
(** A representative instance of each family. *)

type result = {
  scheme : scheme;
  workers : int;
  total_cycles : int;  (** finish time of the last worker *)
  busy_cycles : int;  (** productive copy/translate work, all workers *)
  sync_cycles : int;  (** synchronization cost + waiting on shared structures *)
  idle_cycles : int;  (** waiting for work to exist *)
  pool_ops : int;
  steals : int;
  objects : int;
}

val simulate :
  ?costs:Cost_model.t -> plan:Plan.t -> workers:int -> scheme -> result
(** Deterministic simulation of one collection of [plan]'s live graph. *)

val speedup : result -> result -> float
(** [speedup base r] = base time / r time. *)
