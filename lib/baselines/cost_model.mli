(** Synchronization cost model for commodity shared-memory machines.

    The paper's Section III argues that object-level work distribution is
    prohibitively expensive on standard platforms because every pool
    access and every object-graph access must be protected by
    synchronization whose cost — atomic read-modify-write plus the memory
    fences and coherence traffic it implies — is tens of cycles. This
    module parameterizes those costs so the baseline simulations in
    {!Engine} can replay the argument quantitatively.

    The default numbers are representative of the multi-socket SMPs of
    the paper's era (and are not far off modern parts once cross-core
    coherence misses are counted): an uncontended CAS with its implied
    ordering ≈ 30 cycles, a full fence ≈ 50, a lock/unlock pair ≈ 80. *)

type t = {
  cas : int;  (** atomic compare-and-swap, uncontended, incl. ordering *)
  fence : int;  (** full memory barrier *)
  lock_pair : int;  (** acquire + release of a contended-capable mutex *)
  local_op : int;  (** push/pop on a worker-local structure *)
  steal : int;  (** one steal attempt on a remote deque *)
}

val default : t

val free_hardware : t
(** The hardware-supported counterpart: synchronization is free (the
    paper's coprocessor acquires uncontended locks in zero cycles);
    structural serialization is still enforced by the engine. *)

val scaled : t -> float -> t
(** Scale every cost (sensitivity analysis). *)
