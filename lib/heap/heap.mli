(** The object-based heap: two semispaces over a flat word-addressed
    memory, plus the root set.

    This mirrors the paper's object-based memory model (Section V-B/V-D):
    memory is an array of words; an object is a two-word header followed
    by a pointer area of π words and a data area of δ words; pointers and
    non-pointer data are strictly separated, so pointerhood is positional
    and known without tags. Address 0 is reserved as the null pointer.

    The heap stores {i contents} only. Access {i timing} (latencies, port
    buffers, the header FIFO) is modeled separately by [Hsgc_memsim]; the
    collector cores read and write contents here at the moment an access
    is initiated, which is consistent with what the hardware guarantees
    through its locking protocol and comparator array. *)

type t = {
  mem : int array;
  mutable space_a : Semispace.t;
  mutable space_b : Semispace.t;
  mutable a_is_current : bool;
      (** when true, space A is the allocation space (fromspace at GC time) *)
  mutable roots : int array;  (** addresses of root objects (0 = empty slot) *)
}

val null : int
(** The null pointer (address 0, never a valid object address). *)

val create : semispace_words:int -> t
(** A heap with two semispaces of [semispace_words] words each. *)

val from_space : t -> Semispace.t
(** The current allocation space — fromspace during a collection. *)

val to_space : t -> Semispace.t

val flip : t -> unit
(** Swap the roles of the two spaces and reset the new tospace's [free]
    pointer, as at the start of a collection cycle. *)

val read : t -> int -> int
(** Raw word read. *)

val write : t -> int -> int -> unit
(** Raw word write. *)

(** {2 Object accessors}

    [obj] is always the address of the object's header word 0. *)

val header0 : t -> int -> int
val header1 : t -> int -> int
val set_header0 : t -> int -> int -> unit
val set_header1 : t -> int -> int -> unit

val pointer_addr : int -> int -> int
(** [pointer_addr obj i] — address of pointer slot [i]. The caller must
    ensure [i < π]. *)

val data_addr : int -> pi:int -> int -> int
(** [data_addr obj ~pi i] — address of data slot [i]. *)

val get_pointer : t -> int -> int -> int
val set_pointer : t -> int -> int -> int -> unit
(** [set_pointer t obj i child]. *)

val get_data : t -> int -> int -> int
(** [get_data t obj i] reads data slot [i] (π is read from the header). *)

val set_data : t -> int -> int -> int -> unit

val obj_size : t -> int -> int
(** Footprint in words, from the object's header. *)

val obj_pi : t -> int -> int
val obj_delta : t -> int -> int
val obj_state : t -> int -> Header.state

(** {2 Allocation} *)

val alloc : t -> pi:int -> delta:int -> int option
(** Allocate an object in the current space, write a [White] header with
    the given areas, zero the body, and return its address; [None] when
    the space cannot fit it (time to collect). *)

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
(** Checkpoint the complete heap state: memory image, both semispaces,
    orientation, roots. *)

val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Overwrite this heap in place from an encoded image. The heap must
    have the same geometry (semispace size) as the encoded one; raises
    {!Hsgc_util.Codec.Error} otherwise. *)

(** {2 Roots} *)

val set_roots : t -> int array -> unit
val add_root : t -> int -> unit
val root_count : t -> int

(** {2 Traversal} *)

val iter_objects : t -> Semispace.t -> (int -> unit) -> unit
(** Visit every allocated object in a space in address order. Only valid
    when the space is a wall-to-wall sequence of well-formed objects
    (the allocation space between collections, or tospace after one). *)

val reachable : t -> (int, int) Hashtbl.t
(** Addresses of all objects reachable from the roots in the current
    space, mapped to their discovery index (preorder). *)

val live_words : t -> int
(** Total footprint of reachable objects. *)
