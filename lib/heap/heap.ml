type t = {
  mem : int array;
  mutable space_a : Semispace.t;
  mutable space_b : Semispace.t;
  mutable a_is_current : bool;
  mutable roots : int array;
}

let null = 0

let create ~semispace_words =
  if semispace_words <= 0 then invalid_arg "Heap.create";
  (* Word 0 is reserved so that address 0 can serve as null. *)
  let space_a = Semispace.create ~base:1 ~words:semispace_words in
  let space_b = Semispace.create ~base:(1 + semispace_words) ~words:semispace_words in
  {
    mem = Array.make (1 + (2 * semispace_words)) 0;
    space_a;
    space_b;
    a_is_current = true;
    roots = [||];
  }

let from_space t = if t.a_is_current then t.space_a else t.space_b
let to_space t = if t.a_is_current then t.space_b else t.space_a

let flip t =
  t.a_is_current <- not t.a_is_current;
  Semispace.reset (to_space t)

let read t addr = t.mem.(addr)
let write t addr v = t.mem.(addr) <- v

let header0 t obj = t.mem.(obj)
let header1 t obj = t.mem.(obj + 1)
let set_header0 t obj v = t.mem.(obj) <- v
let set_header1 t obj v = t.mem.(obj + 1) <- v

let pointer_addr obj i = obj + Header.header_words + i
let data_addr obj ~pi i = obj + Header.header_words + pi + i

let get_pointer t obj i = t.mem.(pointer_addr obj i)
let set_pointer t obj i child = t.mem.(pointer_addr obj i) <- child

let obj_pi t obj = Header.pi (header0 t obj)
let obj_delta t obj = Header.delta (header0 t obj)
let obj_size t obj = Header.size (header0 t obj)
let obj_state t obj = Header.state (header0 t obj)

let get_data t obj i = t.mem.(data_addr obj ~pi:(obj_pi t obj) i)
let set_data t obj i v = t.mem.(data_addr obj ~pi:(obj_pi t obj) i) <- v

let alloc t ~pi ~delta =
  let size = Header.size_of ~pi ~delta in
  match Semispace.bump (from_space t) size with
  | None -> None
  | Some obj ->
    t.mem.(obj) <- Header.encode ~state:White ~pi ~delta;
    Array.fill t.mem (obj + 1) (size - 1) 0;
    Some obj

(* Checkpoint codec: the full memory image, both space bump pointers,
   orientation, and the root set. Restore overwrites an existing heap of
   identical geometry in place (the memory array is reused). *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int_array w t.mem;
  Semispace.encode t.space_a w;
  Semispace.encode t.space_b w;
  Codec.W.bool w t.a_is_current;
  Codec.W.int_array w t.roots

let restore t r =
  Codec.R.int_array_into r t.mem ~what:"heap memory";
  Semispace.restore t.space_a r;
  Semispace.restore t.space_b r;
  t.a_is_current <- Codec.R.bool r;
  t.roots <- Codec.R.int_array r

let set_roots t roots = t.roots <- roots
let add_root t obj = t.roots <- Array.append t.roots [| obj |]
let root_count t = Array.length t.roots

let iter_objects t space f =
  let rec go addr =
    if addr < space.Semispace.free then begin
      let size = obj_size t addr in
      f addr;
      go (addr + size)
    end
  in
  go space.Semispace.base

let reachable t =
  let seen = Hashtbl.create 1024 in
  let next_index = ref 0 in
  let stack = ref [] in
  let visit obj =
    if obj <> null && not (Hashtbl.mem seen obj) then begin
      Hashtbl.add seen obj !next_index;
      incr next_index;
      stack := obj :: !stack
    end
  in
  Array.iter visit t.roots;
  let rec drain () =
    match !stack with
    | [] -> ()
    | obj :: rest ->
      stack := rest;
      let pi = obj_pi t obj in
      for i = 0 to pi - 1 do
        visit (get_pointer t obj i)
      done;
      drain ()
  in
  drain ();
  seen

let live_words t =
  let seen = reachable t in
  Hashtbl.fold (fun obj _ acc -> acc + obj_size t obj) seen 0
