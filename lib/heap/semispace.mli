(** One semispace: a contiguous word range with a bump allocator.

    Cheney-style collection divides the heap into two semispaces; objects
    are allocated (and evacuated) by advancing a [free] pointer from the
    bottom of the space. *)

type t = {
  base : int;  (** first word address belonging to the space *)
  limit : int;  (** one past the last word address *)
  mutable free : int;  (** next unallocated word; [base <= free <= limit] *)
}

val create : base:int -> words:int -> t
(** An empty space of [words] words starting at [base]. *)

val words : t -> int
(** Capacity in words. *)

val used : t -> int
(** Words currently allocated ([free - base]). *)

val available : t -> int

val contains : t -> int -> bool
(** [contains t addr] — does [addr] fall inside the space's range? *)

val reset : t -> unit
(** Rewind [free] to [base] (the space becomes empty; contents stale). *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
(** Checkpoint the space ([base]/[limit] for validation, [free] as
    state). *)

val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Reinstate [free]; raises {!Hsgc_util.Codec.Error} if the encoded
    geometry differs from this space's. *)

val bump : t -> int -> int option
(** [bump t n] allocates [n] words and returns the base address of the
    allocation, or [None] if fewer than [n] words remain. *)
