(** Two-word object headers (paper Fig. 3 / Fig. 4).

    Every object starts with a two-word header. Word 0 packs the object's
    tricolor state and the lengths of its two body areas: the pointer area
    (π words) and the data area (δ words). Word 1 holds, depending on the
    object's role in the current collection cycle:

    - in fromspace, once the object has been evacuated ({i grayed}): the
      forwarding pointer to the tospace copy;
    - in tospace, while the copy is gray: the backlink to the fromspace
      original (the body has not been copied yet);
    - otherwise: unused (zero).

    The packing must round-trip exactly; a qcheck property in the test
    suite checks [decode (encode h) = h] over the full supported range. *)

type state =
  | White  (** not yet visited by the collector *)
  | Gray  (** evacuated but not yet scanned (tospace), or evacuated original (fromspace) *)
  | Black  (** fully scanned and copied *)

val equal_state : state -> state -> bool
val pp_state : Format.formatter -> state -> unit

val max_area : int
(** Maximum supported value of π and of δ (20 bits each). *)

val encode : state:state -> pi:int -> delta:int -> int
(** Pack word 0. Raises [Invalid_argument] if π or δ exceed [max_area]. *)

val state : int -> state
(** Tricolor state of a word-0 value. *)

val pi : int -> int
(** Pointer-area length of a word-0 value. *)

val delta : int -> int
(** Data-area length of a word-0 value. *)

val with_state : int -> state -> int
(** [with_state w0 s] is [w0] with the state field replaced. *)

val header_words : int
(** Number of header words per object (2). *)

val size_of : pi:int -> delta:int -> int
(** Total object footprint in words: [header_words + pi + delta]. *)

val size : int -> int
(** Footprint computed from a word-0 value. *)
