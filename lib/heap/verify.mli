(** Heap verification: canonical snapshots and post-collection checks.

    A collection is correct iff the object graph reachable from the roots
    after the cycle is isomorphic to the one before it, all live objects
    were copied exactly once, and the new space is contiguously compacted.
    The snapshot is a canonical (BFS-ordered) serialization of the
    reachable subgraph, so isomorphism reduces to structural equality. *)

type obj_desc = {
  pi : int;
  delta : int;
  children : int array;
      (** canonical id per pointer slot; [-1] encodes a null pointer *)
  data : int array;  (** the δ data words *)
}

type snapshot = {
  objects : obj_desc array;  (** indexed by canonical id (BFS discovery order) *)
  root_ids : int array;  (** canonical id per root slot; [-1] for null roots *)
}

val snapshot : Heap.t -> snapshot
(** Canonical serialization of the graph reachable from the heap's roots
    (in the current space). *)

val equal_snapshot : snapshot -> snapshot -> bool

val pp_snapshot : Format.formatter -> snapshot -> unit

type failure =
  | Graph_mismatch of string
  | Not_compacted of string
  | Bad_state of { obj : int; state : Header.state }
  | Undecodable_header of { obj : int; word : int }
      (** the header carries the invalid state tag 3 — only possible via
          corruption; surfaced as a failure rather than an exception so
          fault campaigns can count it as a detection *)
  | Dangling_pointer of { obj : int; slot : int; target : int }
  | Misaligned_pointer of { obj : int; slot : int; target : int }
      (** the pointer lands inside the space but not on an object start
          (e.g. a corrupted low bit sliding into a neighbour's body) *)

val pp_failure : Format.formatter -> failure -> unit

val check_space : Heap.t -> (unit, failure) result
(** The wall-to-wall structural half of {!check_collection}: the current
    space parses as a contiguous sequence of Black objects ending at
    [free], with every non-null pointer targeting an object start of the
    space. Useful on its own when the graph changed during collection
    (concurrent mode), making a whole-snapshot comparison inapplicable.
    Defensive against arbitrarily corrupted words: it returns [Error]
    rather than raising, and {!check_collection} only takes its snapshot
    after this check passes, so the BFS never reads a misparsed frame. *)

val check_collection : pre:snapshot -> Heap.t -> (unit, failure) result
(** [check_collection ~pre heap] validates the heap {i after} a collection
    cycle (the copies live in the now-current space): graph isomorphic to
    [pre], space wall-to-wall well-formed Black objects, no pointer into
    the other (from-) space, total live words preserved. *)
