type obj_desc = {
  pi : int;
  delta : int;
  children : int array;
  data : int array;
}

type snapshot = { objects : obj_desc array; root_ids : int array }

let snapshot heap =
  let ids = Hashtbl.create 1024 in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let id_of obj =
    if obj = Heap.null then -1
    else
      match Hashtbl.find_opt ids obj with
      | Some id -> id
      | None ->
        let id = !count in
        incr count;
        Hashtbl.add ids obj id;
        order := obj :: !order;
        Queue.add obj queue;
        id
  in
  let root_ids = Array.map id_of heap.Heap.roots in
  (* BFS so that canonical ids depend only on graph shape and root order,
     not on heap addresses. *)
  let descs = ref [] in
  while not (Queue.is_empty queue) do
    let obj = Queue.pop queue in
    let pi = Heap.obj_pi heap obj in
    let delta = Heap.obj_delta heap obj in
    let children = Array.init pi (fun i -> id_of (Heap.get_pointer heap obj i)) in
    let data = Array.init delta (fun i -> Heap.get_data heap obj i) in
    descs := { pi; delta; children; data } :: !descs
  done;
  { objects = Array.of_list (List.rev !descs); root_ids }

let equal_obj_desc a b =
  a.pi = b.pi && a.delta = b.delta && a.children = b.children && a.data = b.data

let equal_snapshot a b =
  a.root_ids = b.root_ids
  && Array.length a.objects = Array.length b.objects
  && Array.for_all2 equal_obj_desc a.objects b.objects

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>roots: %a@,"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (Array.to_list s.root_ids);
  Array.iteri
    (fun id d ->
      Format.fprintf ppf "#%d pi=%d delta=%d children=[%a]@," id d.pi d.delta
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           Format.pp_print_int)
        (Array.to_list d.children))
    s.objects;
  Format.fprintf ppf "@]"

type failure =
  | Graph_mismatch of string
  | Not_compacted of string
  | Bad_state of { obj : int; state : Header.state }
  | Dangling_pointer of { obj : int; slot : int; target : int }

let pp_failure ppf = function
  | Graph_mismatch msg -> Format.fprintf ppf "graph mismatch: %s" msg
  | Not_compacted msg -> Format.fprintf ppf "not compacted: %s" msg
  | Bad_state { obj; state } ->
    Format.fprintf ppf "object %d has state %a (expected Black)" obj
      Header.pp_state state
  | Dangling_pointer { obj; slot; target } ->
    Format.fprintf ppf "object %d slot %d points to %d outside the new space"
      obj slot target

let check_space heap =
  let space = Heap.from_space heap in
  let exception Fail of failure in
  try
    (* Wall-to-wall scan: the space must parse as a contiguous sequence
       of Black objects ending exactly at [free], with all pointers
       inside the space (or null). *)
    let addr = ref space.Semispace.base in
    while !addr < space.Semispace.free do
      let obj = !addr in
      let w0 = Heap.header0 heap obj in
      (match Header.state w0 with
      | Black -> ()
      | (White | Gray) as state -> raise (Fail (Bad_state { obj; state })));
      let size = Header.size w0 in
      if size < Header.header_words || obj + size > space.Semispace.free then
        raise
          (Fail
             (Not_compacted
                (Printf.sprintf "object %d of size %d overruns free=%d" obj size
                   space.Semispace.free)));
      let pi = Header.pi w0 in
      for slot = 0 to pi - 1 do
        let target = Heap.get_pointer heap obj slot in
        if target <> Heap.null && not (Semispace.contains space target) then
          raise (Fail (Dangling_pointer { obj; slot; target }))
      done;
      addr := obj + size
    done;
    if !addr <> space.Semispace.free then
      raise
        (Fail
           (Not_compacted
              (Printf.sprintf "scan ended at %d but free=%d" !addr
                 space.Semispace.free)));
    Ok ()
  with Fail f -> Error f

let check_collection ~pre heap =
  let space = Heap.from_space heap in
  let exception Fail of failure in
  try
    (match check_space heap with Ok () -> () | Error f -> raise (Fail f));
    (* 2. Graph isomorphism with the pre-collection snapshot. *)
    let post = snapshot heap in
    if not (equal_snapshot pre post) then begin
      let detail =
        if Array.length pre.objects <> Array.length post.objects then
          Printf.sprintf "object count %d -> %d" (Array.length pre.objects)
            (Array.length post.objects)
        else "same object count but shape or data differs"
      in
      raise (Fail (Graph_mismatch detail))
    end;
    (* 3. All live words accounted for: copies exactly fill [base, free).
       (Redundant with 1+2 but cheap and catches double-copies.) *)
    let live =
      Array.fold_left
        (fun acc d -> acc + Header.size_of ~pi:d.pi ~delta:d.delta)
        0 pre.objects
    in
    if live <> Semispace.used space then
      raise
        (Fail
           (Not_compacted
              (Printf.sprintf "live words %d but space used %d" live
                 (Semispace.used space))));
    Ok ()
  with Fail f -> Error f
