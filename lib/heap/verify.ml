type obj_desc = {
  pi : int;
  delta : int;
  children : int array;
  data : int array;
}

type snapshot = { objects : obj_desc array; root_ids : int array }

let snapshot heap =
  let ids = Hashtbl.create 1024 in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let id_of obj =
    if obj = Heap.null then -1
    else
      match Hashtbl.find_opt ids obj with
      | Some id -> id
      | None ->
        let id = !count in
        incr count;
        Hashtbl.add ids obj id;
        order := obj :: !order;
        Queue.add obj queue;
        id
  in
  let root_ids = Array.map id_of heap.Heap.roots in
  (* BFS so that canonical ids depend only on graph shape and root order,
     not on heap addresses. *)
  let descs = ref [] in
  while not (Queue.is_empty queue) do
    let obj = Queue.pop queue in
    let pi = Heap.obj_pi heap obj in
    let delta = Heap.obj_delta heap obj in
    let children = Array.init pi (fun i -> id_of (Heap.get_pointer heap obj i)) in
    let data = Array.init delta (fun i -> Heap.get_data heap obj i) in
    descs := { pi; delta; children; data } :: !descs
  done;
  { objects = Array.of_list (List.rev !descs); root_ids }

let equal_obj_desc a b =
  a.pi = b.pi && a.delta = b.delta && a.children = b.children && a.data = b.data

let equal_snapshot a b =
  a.root_ids = b.root_ids
  && Array.length a.objects = Array.length b.objects
  && Array.for_all2 equal_obj_desc a.objects b.objects

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>roots: %a@,"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (Array.to_list s.root_ids);
  Array.iteri
    (fun id d ->
      Format.fprintf ppf "#%d pi=%d delta=%d children=[%a]@," id d.pi d.delta
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           Format.pp_print_int)
        (Array.to_list d.children))
    s.objects;
  Format.fprintf ppf "@]"

type failure =
  | Graph_mismatch of string
  | Not_compacted of string
  | Bad_state of { obj : int; state : Header.state }
  | Undecodable_header of { obj : int; word : int }
  | Dangling_pointer of { obj : int; slot : int; target : int }
  | Misaligned_pointer of { obj : int; slot : int; target : int }

let pp_failure ppf = function
  | Graph_mismatch msg -> Format.fprintf ppf "graph mismatch: %s" msg
  | Not_compacted msg -> Format.fprintf ppf "not compacted: %s" msg
  | Bad_state { obj; state } ->
    Format.fprintf ppf "object %d has state %a (expected Black)" obj
      Header.pp_state state
  | Undecodable_header { obj; word } ->
    Format.fprintf ppf "object %d has undecodable header word %#x" obj word
  | Dangling_pointer { obj; slot; target } ->
    Format.fprintf ppf "object %d slot %d points to %d outside the new space"
      obj slot target
  | Misaligned_pointer { obj; slot; target } ->
    Format.fprintf ppf
      "object %d slot %d points to %d, which is not an object start" obj slot
      target

let check_space heap =
  let space = Heap.from_space heap in
  let exception Fail of failure in
  try
    (* Pass 1 — wall-to-wall parse: the space must decode as a contiguous
       sequence of Black objects ending exactly at [free]. The state tag
       is inspected raw first: a corrupted header may carry the invalid
       tag 3, which must surface as a failure, not an exception from the
       decoder. Object starts are collected for pass 2. *)
    let starts = Hashtbl.create 1024 in
    let addr = ref space.Semispace.base in
    while !addr < space.Semispace.free do
      let obj = !addr in
      let w0 = Heap.header0 heap obj in
      if w0 land 3 = 3 then raise (Fail (Undecodable_header { obj; word = w0 }));
      (match Header.state w0 with
      | Black -> ()
      | (White | Gray) as state -> raise (Fail (Bad_state { obj; state })));
      let size = Header.size w0 in
      if size < Header.header_words || obj + size > space.Semispace.free then
        raise
          (Fail
             (Not_compacted
                (Printf.sprintf "object %d of size %d overruns free=%d" obj size
                   space.Semispace.free)));
      Hashtbl.replace starts obj ();
      addr := obj + size
    done;
    if !addr <> space.Semispace.free then
      raise
        (Fail
           (Not_compacted
              (Printf.sprintf "scan ended at %d but free=%d" !addr
                 space.Semispace.free)));
    (* Pass 2 — pointer discipline: every non-null pointer must land on
       an object start of this space. (The weaker [contains] check would
       let a corrupted low bit slide into a neighbour's body and go
       unnoticed here; it would also let the snapshot BFS read from a
       misparsed "object".) Runs only on a successfully parsed space, so
       pi is trustworthy. *)
    Hashtbl.iter
      (fun obj () ->
        let pi = Header.pi (Heap.header0 heap obj) in
        for slot = 0 to pi - 1 do
          let target = Heap.get_pointer heap obj slot in
          if target <> Heap.null then
            if not (Semispace.contains space target) then
              raise (Fail (Dangling_pointer { obj; slot; target }))
            else if not (Hashtbl.mem starts target) then
              raise (Fail (Misaligned_pointer { obj; slot; target }))
        done)
      starts;
    Ok ()
  with Fail f -> Error f

let check_collection ~pre heap =
  let space = Heap.from_space heap in
  let exception Fail of failure in
  try
    (match check_space heap with Ok () -> () | Error f -> raise (Fail f));
    (* 2. Graph isomorphism with the pre-collection snapshot. *)
    let post = snapshot heap in
    if not (equal_snapshot pre post) then begin
      let detail =
        if Array.length pre.objects <> Array.length post.objects then
          Printf.sprintf "object count %d -> %d" (Array.length pre.objects)
            (Array.length post.objects)
        else "same object count but shape or data differs"
      in
      raise (Fail (Graph_mismatch detail))
    end;
    (* 3. All live words accounted for: copies exactly fill [base, free).
       (Redundant with 1+2 but cheap and catches double-copies.) *)
    let live =
      Array.fold_left
        (fun acc d -> acc + Header.size_of ~pi:d.pi ~delta:d.delta)
        0 pre.objects
    in
    if live <> Semispace.used space then
      raise
        (Fail
           (Not_compacted
              (Printf.sprintf "live words %d but space used %d" live
                 (Semispace.used space))));
    Ok ()
  with Fail f -> Error f
