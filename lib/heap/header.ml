type state = White | Gray | Black

let equal_state a b =
  match (a, b) with
  | White, White | Gray, Gray | Black, Black -> true
  | (White | Gray | Black), _ -> false

let pp_state ppf = function
  | White -> Format.pp_print_string ppf "White"
  | Gray -> Format.pp_print_string ppf "Gray"
  | Black -> Format.pp_print_string ppf "Black"

(* Word-0 layout: bits 0-1 state, bits 2-21 pi, bits 22-41 delta. *)
let area_bits = 20
let max_area = (1 lsl area_bits) - 1
let pi_shift = 2
let delta_shift = 2 + area_bits
let area_mask = max_area

let state_to_int = function White -> 0 | Gray -> 1 | Black -> 2
let state_of_int = function
  | 0 -> White
  | 1 -> Gray
  | 2 -> Black
  | n -> invalid_arg (Printf.sprintf "Header.state: bad tag %d" n)

let encode ~state ~pi ~delta =
  if pi < 0 || pi > max_area then invalid_arg "Header.encode: pi out of range";
  if delta < 0 || delta > max_area then
    invalid_arg "Header.encode: delta out of range";
  state_to_int state lor (pi lsl pi_shift) lor (delta lsl delta_shift)

let state w0 = state_of_int (w0 land 3)
let pi w0 = (w0 lsr pi_shift) land area_mask
let delta w0 = (w0 lsr delta_shift) land area_mask
let with_state w0 s = w0 land lnot 3 lor state_to_int s

let header_words = 2
let size_of ~pi ~delta = header_words + pi + delta
let size w0 = size_of ~pi:(pi w0) ~delta:(delta w0)
