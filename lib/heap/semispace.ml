type t = { base : int; limit : int; mutable free : int }

let create ~base ~words =
  if base < 0 || words < 0 then invalid_arg "Semispace.create";
  { base; limit = base + words; free = base }

let words t = t.limit - t.base
let used t = t.free - t.base
let available t = t.limit - t.free
let contains t addr = addr >= t.base && addr < t.limit
let reset t = t.free <- t.base

let bump t n =
  if n < 0 then invalid_arg "Semispace.bump";
  if t.free + n > t.limit then None
  else begin
    let addr = t.free in
    t.free <- t.free + n;
    Some addr
  end
