type t = { base : int; limit : int; mutable free : int }

let create ~base ~words =
  if base < 0 || words < 0 then invalid_arg "Semispace.create";
  { base; limit = base + words; free = base }

let words t = t.limit - t.base
let used t = t.free - t.base
let available t = t.limit - t.free
let contains t addr = addr >= t.base && addr < t.limit
let reset t = t.free <- t.base

(* Checkpoint codec: [base]/[limit] are geometry fixed at creation, so
   they are encoded for validation only — restoring into a space with a
   different geometry is a snapshot/machine mismatch. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int w t.base;
  Codec.W.int w t.limit;
  Codec.W.int w t.free

let restore t r =
  let base = Codec.R.int r in
  let limit = Codec.R.int r in
  let free = Codec.R.int r in
  if base <> t.base || limit <> t.limit then
    raise
      (Codec.Error
         (Printf.sprintf
            "semispace geometry [%d,%d) does not match machine [%d,%d)" base
            limit t.base t.limit));
  if free < base || free > limit then
    raise (Codec.Error (Printf.sprintf "semispace free %d out of range" free));
  t.free <- free

let bump t n =
  if n < 0 then invalid_arg "Semispace.bump";
  if t.free + n > t.limit then None
  else begin
    let addr = t.free in
    t.free <- t.free + n;
    Some addr
  end
