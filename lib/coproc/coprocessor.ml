module H = Hsgc_heap.Heap
module Hdr = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace
module SB = Hsgc_hwsync.Sync_block
module Mem = Hsgc_memsim.Memsys
module Port = Hsgc_memsim.Port
module Fifo = Hsgc_memsim.Header_fifo
module Kernel = Hsgc_sim.Kernel
module Wake_queue = Hsgc_sim.Wake_queue
module Injector = Hsgc_fault.Injector
module Hooks = Hsgc_sanitizer.Hooks
module Diag = Hsgc_sanitizer.Diag
module San = Hsgc_sanitizer.Sanitizer
module Obs = Hsgc_obs.Tracer
module Prof = Hsgc_obs.Profiler

(* Hot-loop status probes. [Port] and [Sync_block] expose their records
   precisely so that the per-cycle loop can poll status with direct
   field loads: without flambda, [port_idle] and friends are real
   cross-module calls, and the machine makes several of them per core
   per cycle. These same-module wrappers are small enough for the
   closure backend to inline. *)
let port_idle (p : Port.t) = p.Port.st = Port.st_idle
let port_ready (p : Port.t) = p.Port.st = Port.st_ready

type config = {
  n_cores : int;
  mem : Mem.config;
  max_cycles : int;
  scan_unit : int option;
      (* paper Section VII future work: when [Some u], an object whose
         body exceeds [u] words is handed out in [u]-word pieces so that
         several cores can copy one large object concurrently. [None]
         (the default) is the published object-granularity design. *)
  skip : bool;
      (* idle-cycle skipping: event-driven per-core sleeps plus
         fast-forward over globally skippable cycles. All reported
         statistics stay bit-identical; only wall time changes. *)
  faults : Injector.spec option;
      (* fault-injection plan; each simulator instance builds a private
         injector from it, so sweep points stay domain-safe and exactly
         reproducible. [None] = no injector at all (bit-identical to a
         build without the hooks). *)
  cycle_budget : int option;
      (* watchdog: hard bound on total simulated cycles; exceeding it
         raises [Stall_diagnosis] with a machine dump (unlike
         [max_cycles], which indicates simulator divergence). *)
  stall_window : int;
      (* watchdog: executed cycles without any global progress (no
         buffer transition, scan/free frozen) before declaring a stall. *)
  sanitize : San.mode;
      (* machine sanitizer: [Off] (default) attaches nothing — hook
         call sites reduce to one load-and-branch; [Check] records
         findings into [gc_stats]; [Strict] raises [Diag.Violation] on
         the first finding. *)
  compiled : bool;
      (* the compiled stepping engine: configuration-specialized fast
         paths plus batched retirement on top of the event-driven
         skipper. Requires [skip], [sanitize = Off] and
         [scan_unit = None] (validated by [start]); with a fault plan,
         tracer or profiler attached the machine silently falls back to
         the general engine. All statistics stay bit-identical to
         naive; only the wall clock and the executed/skipped split
         move. *)
}

let default_stall_window = 1_000_000

let default_config =
  {
    n_cores = 8;
    mem = Mem.default_config;
    max_cycles = 2_000_000_000;
    scan_unit = None;
    skip = true;
    faults = None;
    cycle_budget = None;
    stall_window = default_stall_window;
    sanitize = San.Off;
    compiled = false;
  }

let config ?(mem = Mem.default_config) ?scan_unit ?(skip = true) ?faults
    ?cycle_budget ?(stall_window = default_stall_window) ?(sanitize = San.Off)
    ?(compiled = false) ~n_cores () =
  {
    default_config with
    n_cores;
    mem;
    scan_unit;
    skip;
    faults;
    cycle_budget;
    stall_window;
    sanitize;
    compiled;
  }

exception Heap_overflow
exception Simulation_diverged of string

(* ------------------------------------------------------------------ *)
(* Banked-machine attachment (the [Banked] driver's half of the
   machine-variant contract; see docs/PARALLEL.md).

   A machine started with a [remote] record is one *bank* of the banked
   machine: it owns the fromspace home range [rm_lo, rm_hi) and runs a
   private sync block, memory lane and header FIFO. Pointer slots whose
   child lies outside the home range are *not* chased (no header lock,
   no evacuation): the stale fromspace address is stored verbatim and
   the slot is recorded in the bank's outbox, which the driver drains
   at every superstep barrier and routes through the global FIFO
   arbitration step to the child's home bank. Local termination is
   suppressed until the driver observes global quiescence and sets
   [rm_allow_finish]. *)
(* ------------------------------------------------------------------ *)

type remote = {
  rm_bank : int;
  rm_lo : int;  (* home fromspace range [rm_lo, rm_hi) *)
  rm_hi : int;
  mutable rm_allow_finish : bool;
      (* the scan-lock termination probe is a no-op until the driver
         grants it: a bank's worklist can be refilled from outside at
         any barrier, so only the driver can observe termination *)
  (* Outbox of bank-crossing pointer slots, as two parallel flat arrays
     (live prefix [0, rm_n)): the tospace slot address that received
     the stale pointer, and the foreign fromspace child it names. The
     driver drains and resets it at each barrier. *)
  mutable rm_slots : int array;
  mutable rm_children : int array;
  mutable rm_n : int;
  mutable rm_requests : int;  (* total pushes over the run *)
}

let remote_create ~bank ~lo ~hi =
  if lo > hi then invalid_arg "Coprocessor.remote_create: lo > hi";
  {
    rm_bank = bank;
    rm_lo = lo;
    rm_hi = hi;
    rm_allow_finish = false;
    rm_slots = Array.make 16 0;
    rm_children = Array.make 16 0;
    rm_n = 0;
    rm_requests = 0;
  }

(* Dense machines share one inert sentinel: its home range is the whole
   address space (the foreign test [v < rm_lo || v >= rm_hi] is never
   true) and termination is always allowed, so the dense hot path pays
   two integer compares and no option branch. Nothing ever mutates it. *)
let remote_disabled =
  {
    rm_bank = -1;
    rm_lo = min_int;
    rm_hi = max_int;
    rm_allow_finish = true;
    rm_slots = [||];
    rm_children = [||];
    rm_n = 0;
    rm_requests = 0;
  }

let remote_push r ~slot ~child =
  let n = r.rm_n in
  if n = Array.length r.rm_slots then begin
    let cap = if n = 0 then 16 else 2 * n in
    let grow a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 n;
      b
    in
    r.rm_slots <- grow r.rm_slots;
    r.rm_children <- grow r.rm_children
  end;
  r.rm_slots.(n) <- slot;
  r.rm_children.(n) <- child;
  r.rm_n <- n + 1;
  r.rm_requests <- r.rm_requests + 1

(* Stall diagnosis: everything a deadlock post-mortem needs, captured at
   the moment the watchdog tripped. *)

type core_dump = {
  core_id : int;
  microstate : string;
  busy : bool;
  header_lock : int option;
  ports : (string * string) list;  (* buffer name, Port.describe *)
}

type diagnosis = {
  trip : Kernel.Watchdog.trip;
  at_cycle : int;
  d_scan : int;
  d_free : int;
  scan_lock : int option;
  free_lock : int option;
  fifo_depth : int;
  pending_header_stores : int;
  worklist_nonempty : bool;
  core_dumps : core_dump list;
}

exception Stall_diagnosis of diagnosis

let pp_owner ppf = function
  | None -> Format.pp_print_string ppf "free"
  | Some c -> Format.fprintf ppf "held by core %d" c

let pp_diagnosis ppf d =
  Format.fprintf ppf "@[<v>stall at cycle %d: %a@," d.at_cycle
    Kernel.Watchdog.pp_trip d.trip;
  Format.fprintf ppf "scan=%d free=%d (worklist %s)@," d.d_scan d.d_free
    (if d.worklist_nonempty then "nonempty" else "empty");
  Format.fprintf ppf "scan lock: %a   free lock: %a@," pp_owner d.scan_lock
    pp_owner d.free_lock;
  Format.fprintf ppf "header FIFO depth: %d   pending header stores: %d@,"
    d.fifo_depth d.pending_header_stores;
  List.iter
    (fun c ->
      Format.fprintf ppf "core %d: %-17s %s%s@," c.core_id c.microstate
        (if c.busy then "[busy] " else "")
        (match c.header_lock with
        | None -> ""
        | Some a -> Printf.sprintf "[header lock @%d] " a);
      List.iter
        (fun (name, st) ->
          if st <> "idle" then Format.fprintf ppf "  %s: %s@," name st)
        c.ports)
    d.core_dumps;
  Format.fprintf ppf "@]"

let () =
  Printexc.register_printer (function
    | Stall_diagnosis d -> Some (Format.asprintf "%a" pp_diagnosis d)
    | _ -> None)

type gc_stats = {
  total_cycles : int;
  executed_cycles : int;
  skipped_cycles : int;
  wall_seconds : float;
  root_cycles : int;
  empty_worklist_cycles : int;
  per_core : Counters.t array;
  live_objects : int;
  live_words : int;
  fifo_hits : int;
  fifo_misses : int;
  fifo_overflows : int;
  mem_loads : int;
  mem_stores : int;
  mem_rejected_bandwidth : int;
  mem_rejected_order : int;
  header_cache_hits : int;
  header_cache_misses : int;
  faults_injected : int;
  corruptions_injected : int;
  sanitizer_findings : Diag.t list;
      (* kept (deduplicated, capped) sanitizer findings; [] when the
         sanitizer was off or silent *)
  sanitizer_total : int;
      (* all sanitizer findings including deduplicated repeats *)
}

let stalls_total stats =
  Array.fold_left Counters.add (Counters.create ()) stats.per_core

let stalls_mean_per_core stats =
  let n = Array.length stats.per_core in
  Counters.scale (stalls_total stats) (1.0 /. float_of_int n)

(* Where the evacuation sub-machine returns once both header stores of the
   freshly grayed object have been issued. *)
type return_point = Ret_slot | Ret_root

type state =
  | Init  (* core 0: initialize scan and free *)
  | Root_next  (* core 0: evacuate the next root slot *)
  | Root_header_wait
  | Start_barrier
  | Try_lock_scan
  | Scan_header_wait  (* scan lock held, gray header load in flight *)
  | Body_issue_load
  | Body_wait
  | Lock_child
  | Child_header_wait
  | Lock_free
  | Evac_store_fwd
  | Evac_store_gray
  | Store_slot
  | Piece_done  (* sub-object mode: retire one piece of a split frame *)
  | Blacken
  | Flush
  | End_barrier
  | Halt

type core = {
  id : int;
  mutable state : state;
  (* register file *)
  mutable obj_to : int;  (* tospace frame of the object being scanned *)
  mutable obj_from : int;  (* its fromspace original (via backlink) *)
  mutable h0 : int;  (* header word 0 of the object being scanned *)
  mutable slot : int;  (* body word index within the object *)
  mutable slot_limit : int;  (* exclusive end of this work item *)
  mutable whole : bool;  (* item covers the whole object (usual case) *)
  mutable child : int;  (* pointer value under translation *)
  mutable child_h0 : int;
  mutable value : int;  (* word about to be stored into the copy *)
  mutable evac_new : int;  (* frame claimed for an evacuation *)
  mutable root_idx : int;
  mutable ret : return_point;
  (* the four memory buffers *)
  hl : Port.t;
  hs : Port.t;
  bl : Port.t;
  bs : Port.t;
  counters : Counters.t;
  (* Stall latch for bulk crediting during whole-machine idle-cycle
     skips: the cycle number of the most recent stall and its category.
     A core whose latch carries the just-executed cycle would stall
     identically in every skipped replay of it. *)
  mutable stall_cycle : int;
  mutable stall_kind : Counters.stall;
  (* Event-driven scheduling: the earliest cycle at which this core must
     be stepped again. Awake cores carry [cycle + 1] (with skipping off,
     0 — always stepped); a sleeping core carries the wake time it armed
     in the wake queue; a halted core carries [max_int]. *)
  mutable wake : int;
  (* Scan-lock spin parking (compiled engine only): while this core's
     bit is set in [parked_mask], the first spin cycle not yet credited
     to its scan-lock stall counter. The stalls are bulk-credited when
     the holder's release wakes the core ([wake_parked]). *)
  mutable park_cycle : int;
}

type t = {
  cfg : config;
  (* The compiled engine is actually used (not just requested): no
     fault plan, no tracer, no profiler. Determined once at [start];
     a per-[step] trace still falls back dynamically. *)
  compiled_hot : bool;
  (* Deferred watchdog progress observation of the compiled exclusive
     interpreter: the cycle of the latest progressed cycle not yet
     reported to the watchdog, or -1. Always flushed (-1) outside
     [step], so snapshots never see a pending deferral. *)
  mutable wd_defer : int;
  (* Cores parked on the contended scan lock (compiled engine only), as
     a bit per core id. A parked core is indistinguishable from the
     per-cycle engines' spinner except in host work: its failed
     [try_lock] retries read nothing another agent can change while the
     lock stays held, so they are replayed in bulk — the stall credit
     happens at the release that wakes it. Always empty outside the
     compiled fast path ([unpark_all] flushes on any fallback), so the
     general engine and snapshots never observe a parked core. *)
  mutable parked_mask : int;
  (* Compiled-engine scratch (no per-cycle allocation): ids of the cores
     due this cycle, and ids of the cores left awake for the next cycle
     (wake = now + 1 after stepping). The awake list bounds the quiet
     fast-forward scan and the bulk skip credit to the cores that can
     actually act, instead of rescanning the whole array. *)
  due_ids : int array;
  awake_ids : int array;
  heap : H.t;
  sb : SB.t;
  mem : Mem.t;
  fifo : Fifo.t;
  (* Banked-machine attachment; [remote_disabled] (physically shared)
     for the paper's dense machine. *)
  remote : remote;
  (* One hook record shared by the SB, the memory system, every port
     and the microprogram call sites below. Always present — even with
     the sanitizer off it carries the current cycle, so structured
     protocol diagnostics get cycle context in plain runs too. *)
  hooks : Hooks.t;
  san : San.t;
  mutable san_seen : int;  (* findings already annotated into the trace *)
  (* Observability: the event/span tracer and the stall-attribution
     profiler. Both default to shared never-enabled instances, so in
     plain runs every instrumentation site reduces to one
     load-and-branch (the Hooks discipline). *)
  obs : Obs.t;
  prof : Prof.t;
  cores : core array;
  tospace_limit : int;
  clock : Kernel.t;
  faults : Injector.t;
  watchdog : Kernel.Watchdog.t;
  (* Transition counter shared with every memory buffer: zeroed at the
     top of each cycle, bumped by any buffer status change and by the
     few core transitions that touch no buffer and no shared register
     ([mark] below). A cycle that ends with it still at zero — and with
     scan/free unmoved — was a pure replay and is skippable. *)
  events : int ref;
  (* Wake queue for event-driven stepping: sleeping cores arm their wake
     time here; re-arms supersede lazily (no heap deletion). *)
  wakeq : Wake_queue.t;
  mutable n_halted : int;
  mutable finished : bool;  (* termination detected, broadcast to all cores *)
  mutable saw_empty : bool;  (* set during the current cycle *)
  mutable parallel_phase : bool;
  mutable parallel_start : int;
  mutable empty_cycles : int;
  (* Sub-object mode: the frame currently being handed out in pieces.
     All four registers are guarded by the scan lock. *)
  mutable cur_frame : int;  (* 0 = none *)
  mutable cur_h0 : int;
  mutable cur_from : int;
  mutable cur_next_slot : int;
  (* Outstanding pieces per split frame, indexed by [frame -
     pieces_base] (the tospace base): a flat array instead of a hash
     table keeps the piece-retire path allocation-free. Only allocated
     at heap size in sub-object mode. *)
  pieces : int array;
  pieces_base : int;
}

type sim = t

let now t = t.clock.Kernel.now

let make_core ~events ~faults ~hooks ~obs id =
  {
    id;
    state = (if id = 0 then Init else Start_barrier);
    obj_to = 0;
    obj_from = 0;
    h0 = 0;
    slot = 0;
    slot_limit = 0;
    whole = true;
    child = 0;
    child_h0 = 0;
    value = 0;
    evac_new = 0;
    root_idx = 0;
    ret = Ret_slot;
    hl = Port.create ~events ~faults ~hooks ~obs ~owner:id Port.Header_load;
    hs = Port.create ~events ~faults ~hooks ~obs ~owner:id Port.Header_store;
    bl = Port.create ~events ~faults ~hooks ~obs ~owner:id Port.Body_load;
    bs = Port.create ~events ~faults ~hooks ~obs ~owner:id Port.Body_store;
    counters = Counters.create ();
    stall_cycle = -1;
    stall_kind = Counters.Scan_lock;
    wake = 0;
    park_cycle = 0;
  }

let issue_exn port mem ~now ~addr =
  if not (Port.issue port mem ~now ~addr) then
    failwith "coprocessor: issued into a busy buffer (microprogram bug)"

let stall t core kind =
  (* [Counters.bump] inlined (a stalled core runs this every cycle; the
     cross-module call was measurable in dense legs). *)
  let c = core.counters in
  (match kind with
  | Counters.Scan_lock -> c.Counters.scan_lock <- c.Counters.scan_lock + 1
  | Counters.Free_lock -> c.Counters.free_lock <- c.Counters.free_lock + 1
  | Counters.Header_lock ->
    c.Counters.header_lock <- c.Counters.header_lock + 1
  | Counters.Body_load -> c.Counters.body_load <- c.Counters.body_load + 1
  | Counters.Body_store -> c.Counters.body_store <- c.Counters.body_store + 1
  | Counters.Header_load ->
    c.Counters.header_load <- c.Counters.header_load + 1
  | Counters.Header_store ->
    c.Counters.header_store <- c.Counters.header_store + 1);
  core.stall_cycle <- t.clock.Kernel.now;
  core.stall_kind <- kind

(* A core transition that touches no memory buffer and no shared
   register still disqualifies the cycle from skipping. *)
let mark t = incr t.events

(* Write one body word into the tospace copy and advance the slot loop.
   Issues the body store and, when another slot remains, the next body
   load in the same cycle (the cores can initiate several memory
   operations per cycle). *)
let store_and_advance t core v =
  if t.hooks.Hooks.on then
    t.hooks.Hooks.word_written ~core:core.id ~base:core.obj_to
      ~addr:(core.obj_to + Hdr.header_words + core.slot);
  (* Corruption-class fault: flip one bit of the word as written to the
     tospace copy. Control flow below uses the clean [v] (and the copy
     is never re-read during a stop-the-world cycle), so the collection
     still terminates — only the verifier can notice, which is exactly
     the detection-coverage question the harness measures. *)
  t.heap.H.mem.(core.obj_to + Hdr.header_words + core.slot) <-
    Injector.corrupt_body t.faults v;
  issue_exn core.bs t.mem ~now:(now t) ~addr:(core.obj_to + Hdr.header_words + core.slot);
  core.counters.words_copied <- core.counters.words_copied + 1;
  core.slot <- core.slot + 1;
  if core.slot >= core.slot_limit then
    core.state <- (if core.whole then Blacken else Piece_done)
  else if port_idle core.bl then begin
    issue_exn core.bl t.mem ~now:(now t)
      ~addr:(core.obj_from + Hdr.header_words + core.slot);
    core.state <- Body_wait
  end
  else core.state <- Body_issue_load

(* Take the gray object whose frame sits at [scan]: record its registers,
   advance [scan] past it, release the scan lock and raise the busy bit.
   The caller has already obtained the frame's header (FIFO or memory).
   In sub-object mode a large object is only partially taken: [scan]
   advances by one piece and the frame's registers stay latched in the
   synchronization block for the next grabber. *)
let rec begin_object t core ~frame =
  (* The grab is the handoff point of the protocol: the scan-lock holder
     takes over the frame the evacuator produced. Claiming the header
     words before reading them starts a fresh lockset epoch, so the
     evacuator's earlier (free-claim-protected) header writes never
     falsely intersect with the grabber's scan-locked reads — this is
     the same-cycle release→acquire handoff the sanitizer must accept. *)
  if t.hooks.Hooks.on then begin
    t.hooks.Hooks.range_claimed ~core:core.id ~lo:frame
      ~hi:(frame + Hdr.header_words);
    t.hooks.Hooks.word_read ~core:core.id ~base:frame ~addr:frame
  end;
  let h0 = t.heap.H.mem.(frame) in
  if Hdr.state h0 = Black then begin
    (* A frame allocated black by the main processor during a concurrent
       cycle: nothing to scan, step over it. *)
    SB.advance_scan t.sb ~core:core.id (Hdr.size h0);
    SB.unlock_scan t.sb ~core:core.id;
    core.state <- Try_lock_scan
  end
  else begin_gray_object t core ~frame ~h0

and begin_gray_object t core ~frame ~h0 =
  let body = Hdr.pi h0 + Hdr.delta h0 in
  let split_over =
    match t.cfg.scan_unit with
    | Some u when body > u -> Some u
    | Some _ | None -> None
  in
  core.h0 <- h0;
  core.obj_to <- frame;
  if t.hooks.Hooks.on then
    t.hooks.Hooks.word_read ~core:core.id ~base:frame ~addr:(frame + 1);
  core.obj_from <- t.heap.H.mem.(frame + 1);
  core.slot <- 0;
  (match split_over with
  | None ->
    core.slot_limit <- body;
    core.whole <- true;
    (* Scan-latency histogram: grab-to-blacken, whole objects only
       (pieces of a split frame have no single owner interval). *)
    if t.obs.Obs.on then Obs.object_begun t.obs ~core:core.id;
    SB.advance_scan t.sb ~core:core.id (Hdr.size h0);
    if t.hooks.Hooks.on then begin
      (* The whole work item: the tospace copy under construction and
         the fromspace body it is copied from. *)
      t.hooks.Hooks.range_claimed ~core:core.id ~lo:frame
        ~hi:(frame + Hdr.size h0);
      t.hooks.Hooks.range_claimed ~core:core.id
        ~lo:(core.obj_from + Hdr.header_words)
        ~hi:(core.obj_from + Hdr.size h0)
    end
  | Some u ->
    core.slot_limit <- u;
    core.whole <- false;
    t.cur_frame <- frame;
    t.cur_h0 <- h0;
    t.cur_from <- core.obj_from;
    t.cur_next_slot <- u;
    t.pieces.(frame - t.pieces_base) <- ((body - 1) / u) + 1;
    (* the first piece carries the two header words *)
    SB.advance_scan t.sb ~core:core.id (Hdr.header_words + u);
    if t.hooks.Hooks.on then begin
      t.hooks.Hooks.range_claimed ~core:core.id ~lo:frame
        ~hi:(frame + Hdr.header_words + u);
      t.hooks.Hooks.range_claimed ~core:core.id
        ~lo:(core.obj_from + Hdr.header_words)
        ~hi:(core.obj_from + Hdr.header_words + u)
    end);
  SB.unlock_scan t.sb ~core:core.id;
  SB.set_busy t.sb ~core:core.id true;
  core.counters.objects_scanned <- core.counters.objects_scanned + 1;
  if body = 0 then core.state <- Blacken else core.state <- Body_issue_load

(* Hand out the next piece of the frame latched in [cur_frame]; the
   caller holds the scan lock. Costs one cycle and no header access. *)
let begin_piece t core =
  let u = Option.get t.cfg.scan_unit in
  let body = Hdr.pi t.cur_h0 + Hdr.delta t.cur_h0 in
  let start = t.cur_next_slot in
  let stop = min body (start + u) in
  core.h0 <- t.cur_h0;
  core.obj_to <- t.cur_frame;
  core.obj_from <- t.cur_from;
  core.slot <- start;
  core.slot_limit <- stop;
  core.whole <- false;
  SB.advance_scan t.sb ~core:core.id (stop - start);
  if t.hooks.Hooks.on then begin
    t.hooks.Hooks.range_claimed ~core:core.id
      ~lo:(core.obj_to + Hdr.header_words + start)
      ~hi:(core.obj_to + Hdr.header_words + stop);
    t.hooks.Hooks.range_claimed ~core:core.id
      ~lo:(core.obj_from + Hdr.header_words + start)
      ~hi:(core.obj_from + Hdr.header_words + stop)
  end;
  t.cur_next_slot <- stop;
  if stop = body then t.cur_frame <- 0;
  SB.unlock_scan t.sb ~core:core.id;
  SB.set_busy t.sb ~core:core.id true;
  core.state <- Body_issue_load

let step_init t core =
  let base = (H.to_space t.heap).Semispace.base in
  SB.set_scan t.sb base;
  SB.set_free t.sb base;
  core.root_idx <- 0;
  core.state <- Root_next;
  mark t

let step_root_next t core =
  let roots = t.heap.H.roots in
  if core.root_idx >= Array.length roots then begin
    core.state <- Start_barrier;
    mark t
  end
  else begin
    let r = roots.(core.root_idx) in
    if r = H.null then begin
      core.root_idx <- core.root_idx + 1;
      mark t
    end
    else begin
      (* Uncontended during the root phase, but the protocol is kept
         identical to the scanning loop. *)
      if not (SB.try_lock_header t.sb ~core:core.id ~addr:r) then stall t core Header_lock
      else if port_idle core.hl then begin
        issue_exn core.hl t.mem ~now:(now t) ~addr:r;
        core.state <- Root_header_wait
      end
      else begin
        SB.unlock_header t.sb ~core:core.id;
        stall t core Header_load
      end
    end
  end

let step_root_header_wait t core =
  if not (port_ready core.hl) then stall t core Header_load
  else begin
    Port.consume core.hl;
    let r = t.heap.H.roots.(core.root_idx) in
    if t.hooks.Hooks.on then
      t.hooks.Hooks.word_read ~core:core.id ~base:r ~addr:r;
    let w0 = t.heap.H.mem.(r) in
    match Hdr.state w0 with
    | White | Black ->
      (* Black here is a survivor of the previous cycle: only Gray means
         "evacuated in this cycle", so states never need resetting
         between cycles. *)
      core.child <- r;
      core.child_h0 <- w0;
      core.ret <- Ret_root;
      core.state <- Lock_free
    | Gray ->
      (* Another root slot already evacuated this object: follow the
         forwarding pointer installed in its header. *)
      if t.hooks.Hooks.on then
        t.hooks.Hooks.word_read ~core:core.id ~base:r ~addr:(r + 1);
      t.heap.H.roots.(core.root_idx) <- t.heap.H.mem.(r + 1);
      SB.unlock_header t.sb ~core:core.id;
      core.root_idx <- core.root_idx + 1;
      core.state <- Root_next
  end

let step_start_barrier t core =
  if SB.barrier_arrive t.sb ~core:core.id then begin
    if not t.parallel_phase then begin
      t.parallel_phase <- true;
      t.parallel_start <- now t
    end;
    core.state <- Try_lock_scan;
    mark t
  end

let step_try_lock_scan t core =
  if t.finished then begin
    core.state <- Flush;
    mark t
  end
  else if
    (* Fast-fail: a lock visibly held by another core loses without the
       cross-module call (contended spins run this every cycle). Owner =
       self still goes through [SB.try_lock_scan] so the re-entry
       protocol check fires. *)
    (let o = t.sb.SB.scan_owner in
     o >= 0 && o <> core.id)
    || not (SB.try_lock_scan t.sb ~core:core.id)
  then begin
    stall t core Scan_lock;
    if t.sb.SB.scan = t.sb.SB.free then t.saw_empty <- true
  end
  else if t.sb.SB.scan = t.sb.SB.free then begin
    t.saw_empty <- true;
    (* Termination: the worklist is empty and no core is scanning an
       object (its evacuations could refill the worklist). Checked while
       holding the scan lock, so no evacuation can race with it. A bank
       of the banked machine must additionally hold the driver's grant
       ([rm_allow_finish]): its worklist can be refilled from another
       bank at any superstep barrier. *)
    if t.remote.rm_allow_finish && SB.none_busy_except t.sb ~core:core.id
    then begin
      t.finished <- true;
      SB.unlock_scan t.sb ~core:core.id;
      core.state <- Flush;
      mark t
    end
    else
      (* The probe failed: the lock is released with nothing changed, so
         the cycle replays identically — deliberately no [mark]. *)
      SB.unlock_scan t.sb ~core:core.id
  end
  else if t.cur_frame <> 0 then begin_piece t core
  else begin
    let frame = t.sb.SB.scan in
    if Fifo.try_pop t.fifo frame then begin_object t core ~frame
    else begin
      issue_exn core.hl t.mem ~now:(now t) ~addr:frame;
      core.state <- Scan_header_wait
    end
  end

let step_scan_header_wait t core =
  if port_ready core.hl then begin
    Port.consume core.hl;
    begin_object t core ~frame:(t.sb.SB.scan)
  end
  else stall t core Header_load

let step_body_issue_load t core =
  if port_idle core.bl then begin
    issue_exn core.bl t.mem ~now:(now t)
      ~addr:(core.obj_from + Hdr.header_words + core.slot);
    core.state <- Body_wait
  end
  else stall t core Body_load

let step_body_wait t core =
  if not (port_ready core.bl) then stall t core Body_load
  else begin
    if t.hooks.Hooks.on then
      t.hooks.Hooks.word_read ~core:core.id ~base:core.obj_from
        ~addr:(core.obj_from + Hdr.header_words + core.slot);
    let v = t.heap.H.mem.(core.obj_from + Hdr.header_words + core.slot) in
    if
      core.slot < Hdr.pi core.h0
      && v <> H.null
      && v >= t.remote.rm_lo
      && v < t.remote.rm_hi
    then begin
      Port.consume core.bl;
      core.child <- v;
      core.state <- Lock_child
    end
    else if port_idle core.bs then begin
      (* Data word (or null pointer): copied verbatim. Store of this word
         and load of the next are initiated in the same cycle. A
         bank-crossing pointer (banked machine only) takes this path
         too — stored stale and recorded in the outbox, to be patched by
         the driver's FIFO arbitration step at a superstep barrier. *)
      Port.consume core.bl;
      if core.slot < Hdr.pi core.h0 && v <> H.null then
        remote_push t.remote
          ~slot:(core.obj_to + Hdr.header_words + core.slot)
          ~child:v;
      store_and_advance t core v
    end
    else stall t core Body_store
  end

let step_lock_child t core =
  if not (SB.try_lock_header t.sb ~core:core.id ~addr:core.child) then
    stall t core Header_lock
  else begin
    (* Acquisition is free in the uncontended case: the header load is
       initiated in the same cycle. *)
    issue_exn core.hl t.mem ~now:(now t) ~addr:core.child;
    core.state <- Child_header_wait
  end

let step_child_header_wait t core =
  if not (port_ready core.hl) then stall t core Header_load
  else begin
    Port.consume core.hl;
    if t.hooks.Hooks.on then
      t.hooks.Hooks.word_read ~core:core.id ~base:core.child ~addr:core.child;
    let w0 = t.heap.H.mem.(core.child) in
    match Hdr.state w0 with
    | White | Black ->
      (* Not yet evacuated in this cycle (Black = survivor of the
         previous cycle). *)
      core.child_h0 <- w0;
      core.ret <- Ret_slot;
      core.state <- Lock_free
    | Gray ->
      (* Already evacuated: take the forwarding pointer. *)
      if t.hooks.Hooks.on then
        t.hooks.Hooks.word_read ~core:core.id ~base:core.child
          ~addr:(core.child + 1);
      core.value <- t.heap.H.mem.(core.child + 1);
      SB.unlock_header t.sb ~core:core.id;
      core.state <- Store_slot
  end

let step_lock_free t core =
  if
    (let o = t.sb.SB.free_owner in
     o >= 0 && o <> core.id)
    || not (SB.try_lock_free t.sb ~core:core.id)
  then stall t core Free_lock
  else begin
    (* One-cycle critical section: the lock only guards the read-increment
       of the free register. The header stores happen outside it; the
       comparator array orders any subsequent load behind them. *)
    let size = Hdr.size core.child_h0 in
    let addr = SB.claim_free t.sb ~core:core.id size in
    if t.sb.SB.free > t.tospace_limit then raise Heap_overflow;
    (* The gray tospace header is captured into the on-chip FIFO before
       [free] is incremented becomes visible (the paper installs the
       backlink inside the free critical section for exactly this
       ordering), so a frame below [free] always has its FIFO entry — a
       grabber never takes the slow memory path unless the FIFO
       overflowed. The header's memory store is issued afterwards
       (Evac_store_gray) and only models timing. *)
    if t.hooks.Hooks.on then begin
      (* [claim_free] granted this core ownership of the fresh frame's
         header words (reported through the SB hook), so these stores
         carry the owner protection. *)
      t.hooks.Hooks.word_written ~core:core.id ~base:addr ~addr;
      t.hooks.Hooks.word_written ~core:core.id ~base:addr ~addr:(addr + 1)
    end;
    H.set_header0 t.heap addr
      (Hdr.encode ~state:Gray ~pi:(Hdr.pi core.child_h0)
         ~delta:(Hdr.delta core.child_h0));
    H.set_header1 t.heap addr core.child;
    ignore (Fifo.push t.fifo addr);
    SB.unlock_free t.sb ~core:core.id;
    core.evac_new <- addr;
    core.counters.objects_evacuated <- core.counters.objects_evacuated + 1;
    core.state <- Evac_store_fwd
  end

let step_evac_store_fwd t core =
  if not (port_idle core.hs) then stall t core Header_store
  else begin
    (* Gray the fromspace original: mark + forwarding pointer. *)
    if t.hooks.Hooks.on then begin
      t.hooks.Hooks.word_written ~core:core.id ~base:core.child
        ~addr:core.child;
      t.hooks.Hooks.word_written ~core:core.id ~base:core.child
        ~addr:(core.child + 1);
      t.hooks.Hooks.forward_installed ~core:core.id ~from_:core.child
        ~to_:core.evac_new
    end;
    H.set_header0 t.heap core.child (Hdr.with_state core.child_h0 Gray);
    H.set_header1 t.heap core.child core.evac_new;
    issue_exn core.hs t.mem ~now:(now t) ~addr:core.child;
    core.state <- Evac_store_gray
  end

let step_evac_store_gray t core =
  if not (port_idle core.hs) then stall t core Header_store
  else begin
    (* Gray tospace frame store: contents were captured at claim time;
       this transaction carries the timing (and arms the comparator array
       for readers that missed the FIFO). *)
    issue_exn core.hs t.mem ~now:(now t) ~addr:core.evac_new;
    SB.unlock_header t.sb ~core:core.id;
    match core.ret with
    | Ret_slot ->
      core.value <- core.evac_new;
      core.state <- Store_slot
    | Ret_root ->
      t.heap.H.roots.(core.root_idx) <- core.evac_new;
      core.root_idx <- core.root_idx + 1;
      core.state <- Root_next
  end

let step_store_slot t core =
  if port_idle core.bs then store_and_advance t core core.value
  else stall t core Body_store

let step_piece_done t core =
  (* Retire one piece: the outstanding-piece count of the frame is
     decremented under the frame's header lock (the hardware keeps it in
     the header word); the last piece blackens the object. *)
  if not (SB.try_lock_header t.sb ~core:core.id ~addr:core.obj_to) then
    stall t core Header_lock
  else begin
    let idx = core.obj_to - t.pieces_base in
    let left = t.pieces.(idx) in
    if left = 0 then failwith "coprocessor: piece accounting lost (bug)";
    t.pieces.(idx) <- left - 1;
    (* The retirer of the last piece blackens the header; it takes over
       the frame's header words here, while still holding the header
       lock (piece bodies were claimed piecewise at grab time). *)
    if left = 1 && t.hooks.Hooks.on then
      t.hooks.Hooks.range_claimed ~core:core.id ~lo:core.obj_to
        ~hi:(core.obj_to + Hdr.header_words);
    SB.unlock_header t.sb ~core:core.id;
    mark t;
    if left = 1 then core.state <- Blacken
    else begin
      SB.set_busy t.sb ~core:core.id false;
      core.state <- Try_lock_scan
    end
  end

let step_blacken t core =
  if not (port_idle core.hs) then stall t core Header_store
  else begin
    if t.hooks.Hooks.on then begin
      t.hooks.Hooks.word_written ~core:core.id ~base:core.obj_to
        ~addr:core.obj_to;
      t.hooks.Hooks.word_written ~core:core.id ~base:core.obj_to
        ~addr:(core.obj_to + 1)
    end;
    (* Corruption-class fault: the blackened header is behind [scan] and
       never re-read during this cycle, so a flipped state/π/δ bit is
       invisible to the machine — the wall-to-wall verification parse
       must catch it. *)
    H.set_header0 t.heap core.obj_to
      (Injector.corrupt_header t.faults
         (Hdr.encode ~state:Black ~pi:(Hdr.pi core.h0)
            ~delta:(Hdr.delta core.h0)));
    H.set_header1 t.heap core.obj_to 0;
    issue_exn core.hs t.mem ~now:(now t) ~addr:core.obj_to;
    SB.set_busy t.sb ~core:core.id false;
    if t.obs.Obs.on && core.whole then Obs.object_done t.obs ~core:core.id;
    if t.hooks.Hooks.on && core.whole then begin
      (* The finished work item: ownership of the copy and of the
         consumed fromspace body ends here. *)
      t.hooks.Hooks.range_released ~core:core.id ~lo:core.obj_to
        ~hi:(core.obj_to + Hdr.size core.h0);
      if core.obj_from <> 0 then
        t.hooks.Hooks.range_released ~core:core.id
          ~lo:(core.obj_from + Hdr.header_words)
          ~hi:(core.obj_from + Hdr.size core.h0)
    end;
    core.state <- Try_lock_scan
  end

let step_flush t core =
  if
    port_idle core.hl && port_idle core.hs && port_idle core.bl
    && port_idle core.bs
  then begin
    core.state <- End_barrier;
    mark t
  end

let step_end_barrier t core =
  if SB.barrier_arrive t.sb ~core:core.id then begin
    SB.assert_no_locks t.sb ~core:core.id;
    core.state <- Halt;
    core.wake <- max_int;
    t.n_halted <- t.n_halted + 1;
    (* A halted core leaves the stepping paths; the profiler pads the
       rest of the collection as idle at [close] time. *)
    if t.prof.Prof.on then
      Prof.note_halt t.prof ~core:core.id ~cycle:(now t);
    mark t
  end

(* One-character activity code per core for the signal trace. *)
let state_code = function
  | Init -> 'I'
  | Root_next | Root_header_wait -> 'R'
  | Start_barrier | End_barrier -> 'B'
  | Try_lock_scan -> '.'
  | Scan_header_wait -> 's'
  | Body_issue_load | Body_wait | Store_slot -> 'c'
  | Lock_child -> 'l'
  | Child_header_wait -> 'h'
  | Lock_free | Evac_store_fwd | Evac_store_gray -> 'e'
  | Piece_done -> 'p'
  | Blacken -> 'k'
  | Flush -> 'f'
  | Halt -> ' '

let state_name = function
  | Init -> "init"
  | Root_next -> "root-next"
  | Root_header_wait -> "root-header-wait"
  | Start_barrier -> "start-barrier"
  | Try_lock_scan -> "try-lock-scan"
  | Scan_header_wait -> "scan-header-wait"
  | Body_issue_load -> "body-issue-load"
  | Body_wait -> "body-wait"
  | Lock_child -> "lock-child"
  | Child_header_wait -> "child-header-wait"
  | Lock_free -> "lock-free"
  | Evac_store_fwd -> "evac-store-fwd"
  | Evac_store_gray -> "evac-store-gray"
  | Store_slot -> "store-slot"
  | Piece_done -> "piece-done"
  | Blacken -> "blacken"
  | Flush -> "flush"
  | End_barrier -> "end-barrier"
  | Halt -> "halt"

(* --- observability classification --------------------------------- *)

(* Stall ids in [Counters.all_stalls] order — shared by the tracer's
   stall-span events and the profiler's buckets 1..7. *)
let stall_index = function
  | Counters.Scan_lock -> 0
  | Counters.Free_lock -> 1
  | Counters.Header_lock -> 2
  | Counters.Body_load -> 3
  | Counters.Body_store -> 4
  | Counters.Header_load -> 5
  | Counters.Header_store -> 6

(* Profiler attribution for a cycle without a stall latch, keyed on the
   core's post-step state. Wait-only states — seeking work, barrier
   waits, buffer draining, halted — are idle; everything else made
   forward progress. The same function classifies stepped cycles and
   their skipped replays, so the attribution is bit-identical under
   naive and event-driven stepping. *)
let prof_bucket_of_state = function
  | Try_lock_scan | Start_barrier | End_barrier | Flush | Halt ->
    Prof.bucket_idle
  | Init | Root_next | Root_header_wait | Scan_header_wait | Body_issue_load
  | Body_wait | Lock_child | Child_header_wait | Lock_free | Evac_store_fwd
  | Evac_store_gray | Store_slot | Piece_done | Blacken -> Prof.bucket_busy

(* Microprogram states folded to the tracer's algorithm-level phases. *)
let phase_of_state = function
  | Init -> Obs.phase_init
  | Root_next | Root_header_wait -> Obs.phase_roots
  | Start_barrier | End_barrier -> Obs.phase_barrier
  | Try_lock_scan | Scan_header_wait -> Obs.phase_scan
  | Body_issue_load | Body_wait | Lock_child | Child_header_wait | Lock_free
  | Evac_store_fwd | Evac_store_gray | Store_slot | Piece_done | Blacken ->
    Obs.phase_copy
  | Flush -> Obs.phase_flush
  | Halt -> Obs.phase_halt

let step_core t core =
  (match core.state with
  | Init -> step_init t core
  | Root_next -> step_root_next t core
  | Root_header_wait -> step_root_header_wait t core
  | Start_barrier -> step_start_barrier t core
  | Try_lock_scan -> step_try_lock_scan t core
  | Scan_header_wait -> step_scan_header_wait t core
  | Body_issue_load -> step_body_issue_load t core
  | Body_wait -> step_body_wait t core
  | Lock_child -> step_lock_child t core
  | Child_header_wait -> step_child_header_wait t core
  | Lock_free -> step_lock_free t core
  | Evac_store_fwd -> step_evac_store_fwd t core
  | Evac_store_gray -> step_evac_store_gray t core
  | Store_slot -> step_store_slot t core
  | Piece_done -> step_piece_done t core
  | Blacken -> step_blacken t core
  | Flush -> step_flush t core
  | End_barrier -> step_end_barrier t core
  | Halt -> ());
  if t.sb.SB.busy.(core.id) then
    core.counters.busy_cycles <- core.counters.busy_cycles + 1

let all_halted t = t.n_halted = Array.length t.cores

let start ?(obs = Obs.disabled) ?(prof = Prof.disabled) ?remote cfg heap =
  if cfg.n_cores < 1 then invalid_arg "Coprocessor.start: n_cores must be >= 1";
  if obs.Obs.on && Obs.n_cores obs < cfg.n_cores then
    invalid_arg "Coprocessor.start: tracer sized for fewer cores";
  if prof.Prof.on && Prof.n_cores prof < cfg.n_cores then
    invalid_arg "Coprocessor.start: profiler sized for fewer cores";
  (match remote with
  | None -> ()
  | Some _ ->
    (* A bank of the banked machine: the compiled engine's specialized
       body loop knows nothing of home ranges, and sub-object pieces
       would split one object's slots across arbitration rounds. *)
    if cfg.compiled then
      invalid_arg
        "Coprocessor.start: a banked-machine bank cannot use the compiled \
         engine";
    if cfg.scan_unit <> None then
      invalid_arg
        "Coprocessor.start: a banked-machine bank does not support \
         sub-object scanning (scan_unit)");
  if cfg.compiled then begin
    (* The compiled engine is a specialization of the event-driven
       skipper; configurations it cannot specialize are rejected here
       (fault plans, tracers and profilers merely fall back to the
       general engine instead — they are run-mode toggles, not machine
       semantics). *)
    if not cfg.skip then
      invalid_arg
        "Coprocessor.start: the compiled engine requires idle-cycle \
         skipping (skip = true)";
    if cfg.sanitize <> San.Off then
      invalid_arg
        "Coprocessor.start: the compiled engine cannot attach the sanitizer";
    if cfg.scan_unit <> None then
      invalid_arg
        "Coprocessor.start: the compiled engine does not support \
         sub-object scanning (scan_unit)"
  end;
  let faults =
    match cfg.faults with
    | None -> Injector.disabled
    | Some spec -> Injector.create spec
  in
  let hooks = Hooks.create () in
  let san =
    San.create ~mode:cfg.sanitize ~mem_words:(Array.length heap.H.mem)
      ~n_cores:cfg.n_cores ~header_words:Hdr.header_words hooks
  in
  let mem =
    Mem.create ~faults ~hooks ~obs
      ?lane:(match remote with None -> None | Some r -> Some r.rm_bank)
      cfg.mem
  in
  let events = ref 0 in
  let to_space = H.to_space heap in
  let pieces_base = to_space.Semispace.base in
  let pieces =
    match cfg.scan_unit with
    | None -> [||]
    | Some _ ->
      Array.make (max 1 (to_space.Semispace.limit - pieces_base)) 0
  in
  {
    cfg;
    compiled_hot =
      cfg.compiled && cfg.faults = None && (not obs.Obs.on)
      && (not prof.Prof.on)
      (* The parked-core set is one bit per core in an OCaml int. *)
      && cfg.n_cores <= 62;
    wd_defer = -1;
    parked_mask = 0;
    due_ids = Array.make cfg.n_cores 0;
    awake_ids = Array.make cfg.n_cores 0;
    heap;
    sb =
      SB.create ~hooks ~obs
        ?bank:(match remote with None -> None | Some r -> Some r.rm_bank)
        ~n_cores:cfg.n_cores ();
    mem;
    fifo = Mem.fifo mem;
    remote = (match remote with None -> remote_disabled | Some r -> r);
    hooks;
    san;
    san_seen = 0;
    obs;
    prof;
    cores = Array.init cfg.n_cores (make_core ~events ~faults ~hooks ~obs);
    tospace_limit = to_space.Semispace.limit;
    clock = Kernel.create ~skip:cfg.skip ~obs ();
    faults;
    watchdog =
      Kernel.Watchdog.create ?budget:cfg.cycle_budget
        ~window:(max 1 cfg.stall_window) ();
    events;
    wakeq = Wake_queue.create ~n:cfg.n_cores;
    n_halted = 0;
    finished = false;
    saw_empty = false;
    parallel_phase = false;
    parallel_start = 0;
    empty_cycles = 0;
    cur_frame = 0;
    cur_h0 = 0;
    cur_from = 0;
    cur_next_slot = 0;
    pieces;
    pieces_base;
  }

let halted = all_halted
let roots_done t = t.parallel_phase
let executed_cycles t = Kernel.executed_cycles t.clock
let skipped_cycles t = Kernel.skipped_cycles t.clock

let pieces_outstanding t = Array.fold_left ( + ) 0 t.pieces

(* Bank-parking probe for the banked driver: the machine can make no
   transition until something external (an arbitration-step evacuation
   into its worklist, or the termination grant) changes its inputs.
   Every core spins in [Try_lock_scan] on an empty worklist with all
   four buffers drained, no lock is held and no busy bit set — so not
   stepping it is observationally equivalent to stepping it, except
   that its clock does not advance (per-bank cycle counts are active
   cycles). A pure read. *)
let quiescent t =
  t.parallel_phase
  && (not t.finished)
  && t.sb.SB.scan = t.sb.SB.free
  && t.sb.SB.busy_count = 0
  && t.sb.SB.scan_owner < 0
  && t.sb.SB.free_owner < 0
  && t.sb.SB.hdr_locked_count = 0
  && t.cur_frame = 0
  &&
  let n = Array.length t.cores in
  let rec all i =
    i >= n
    ||
    let c = t.cores.(i) in
    c.state = Try_lock_scan
    && port_idle c.hl && port_idle c.hs && port_idle c.bl && port_idle c.bs
    && all (i + 1)
  in
  all 0

(* ------------------------------------------------------------------ *)
(* Event-driven core scheduling.

   A core may go to sleep when its next transition depends only on its
   own four memory buffers: every cycle until the earliest buffer event
   would replay identically (same stall, same rejected retries, no
   shared-state reads that another agent could change). States that
   poll shared state — locks, the barrier, the scan/free registers —
   must stay awake: the sync block is combinational and publishes no
   wake ([SB.next_wake] = None), so the enabling event (another core
   releasing a lock) has no schedulable time.

   The wake time is the minimum over all four buffers' wake_after, not
   just the state's guard buffer: the core must be awake at every cycle
   where one of its buffers transitions, because those transitions bump
   the shared [events] counter and define global quiescence.

   Sleeping is gated on [cfg.skip]: with skipping off every core is
   stepped every cycle (pure naive stepping, the parity reference). *)
(* ------------------------------------------------------------------ *)

(* What the core's step would do on each replayed cycle of a sleep span,
   given its post-step state with all buffer statuses frozen. Encoded as
   an int to keep the hot path allocation-free:
   -1 = it would act (the core must not sleep);
    0 = it waits without recording a stall (Flush);
   >0 = the stall category recorded once per replayed cycle. *)
let rp_no_sleep = -1
let rp_quiet_wait = 0
let rp_header_load = 1
let rp_body_load = 2
let rp_body_store = 3
let rp_header_store = 4

let stall_of_rp = function
  | 1 -> Counters.Header_load
  | 2 -> Counters.Body_load
  | 3 -> Counters.Body_store
  | _ -> Counters.Header_store

let replay_of t c =
  match c.state with
  | Root_header_wait | Scan_header_wait | Child_header_wait ->
    if port_ready c.hl then rp_no_sleep else rp_header_load
  | Body_issue_load ->
    if port_idle c.bl then rp_no_sleep else rp_body_load
  | Body_wait ->
    if not (port_ready c.bl) then rp_body_load
    else
      (* The loaded word is in the (frozen) fromspace body: a home
         pointer slot transitions to Lock_child, while a data word — or
         a bank-crossing pointer, stored stale like one — either stores
         immediately (bs idle) or stalls on the store buffer. *)
      let v = t.heap.H.mem.(c.obj_from + Hdr.header_words + c.slot) in
      if
        c.slot < Hdr.pi c.h0
        && v <> H.null
        && v >= t.remote.rm_lo
        && v < t.remote.rm_hi
      then rp_no_sleep
      else if port_idle c.bs then rp_no_sleep
      else rp_body_store
  | Store_slot -> if port_idle c.bs then rp_no_sleep else rp_body_store
  | Evac_store_fwd | Evac_store_gray | Blacken ->
    if port_idle c.hs then rp_no_sleep else rp_header_store
  | Flush ->
    if
      port_idle c.hl && port_idle c.hs && port_idle c.bl
      && port_idle c.bs
    then rp_no_sleep
    else rp_quiet_wait
  | Init | Root_next | Start_barrier | Try_lock_scan | Lock_child
  | Lock_free | Piece_done | End_barrier | Halt -> rp_no_sleep

(* Int-specialized [min]/[max]: the polymorphic [Stdlib.min] is a real
   call into the generic comparison on the sleep/jump hot paths. *)
let[@inline] imin (a : int) (b : int) = if a <= b then a else b
let[@inline] imax (a : int) (b : int) = if a >= b then a else b

let port_wake c mem ~now =
  let w = Port.wake_after c.hl mem ~now in
  let w = imin w (Port.wake_after c.hs mem ~now) in
  let w = imin w (Port.wake_after c.bl mem ~now) in
  imin w (Port.wake_after c.bs mem ~now)

(* The sleep span is bounded by the *guard* buffer's event — the one
   the replayed stall waits on — not by the earliest event on any of
   the four buffers. A non-guard buffer whose transfer completes
   mid-sleep merely flips its own status, which the waking core derives
   identically from [done_at] later; nothing it enables is read before
   the wake. The exception is a [Waiting] buffer: its per-cycle
   acceptance retries touch shared state (bandwidth budget, ordering
   counters, fault stream), so any waiting buffer forces the core to
   stay awake ({!Port.retry_wake}) — except the deterministic
   order-held header-load wait, which the guard's own {!Port.wake_after}
   already schedules at the blocking store's commit. *)
let guard_wake c guard mem ~now =
  let w = Port.wake_after guard mem ~now in
  (* [Port.retry_wake] inlined: a non-guard buffer only forces the core
     awake when it is [Waiting] (its acceptance retries touch shared
     state); direct status reads, same as the tick loop. *)
  let w =
    if c.hl != guard && c.hl.Port.st = Port.st_waiting then imin w (now + 1)
    else w
  in
  let w =
    if c.hs != guard && c.hs.Port.st = Port.st_waiting then imin w (now + 1)
    else w
  in
  let w =
    if c.bl != guard && c.bl.Port.st = Port.st_waiting then imin w (now + 1)
    else w
  in
  if c.bs != guard && c.bs.Port.st = Port.st_waiting then imin w (now + 1)
  else w

(* Flush waits for all four buffers to drain: with nothing waiting (and
   so nothing retrying), the state cannot transition before the *last*
   in-flight transfer completes. *)
let port_polls (p : Port.t) =
  let st = p.Port.st in
  st = Port.st_waiting || st = Port.st_ready

let in_flight_done (p : Port.t) =
  if p.Port.st = Port.st_in_flight then p.Port.done_at else min_int

let flush_wake c ~now =
  if port_polls c.hl || port_polls c.hs || port_polls c.bl || port_polls c.bs
  then now + 1
  else
    let w = in_flight_done c.hl in
    let w = imax w (in_flight_done c.hs) in
    let w = imax w (in_flight_done c.bl) in
    imax w (in_flight_done c.bs)

(* Decide whether the just-stepped core can sleep, and credit the
   statistics its replayed cycles would have accumulated: the replay
   stall once per cycle, busy cycles while its busy bit is set, and one
   comparator rejection per cycle for an order-held header load. The
   wake cycle itself is stepped normally, so the span excludes it. *)
let maybe_sleep t c ~now =
  match c.state with
  | Halt -> ()  (* wake already pinned at max_int *)
  | _ -> begin
    let rp = replay_of t c in
    if rp = rp_no_sleep then c.wake <- now + 1
    else begin
      let w =
        if rp = rp_quiet_wait then flush_wake c ~now
        else
          let guard =
            if rp = rp_header_load then c.hl
            else if rp = rp_body_load then c.bl
            else if rp = rp_body_store then c.bs
            else c.hs
          in
          guard_wake c guard t.mem ~now
      in
      if w > now + 1 && w < max_int then begin
        c.wake <- w;
        Wake_queue.arm t.wakeq ~id:c.id ~time:w;
        let span = w - now - 1 in
        if rp > 0 then Counters.bump_n c.counters (stall_of_rp rp) span;
        (* The slept cycles replay the same stall (or the quiet Flush
           wait); attribute and trace them exactly as naive stepping
           would have, one bulk credit instead of per-cycle bumps. *)
        if t.prof.Prof.on then
          Prof.add t.prof ~core:c.id
            ~bucket:
              (if rp > 0 then 1 + stall_index (stall_of_rp rp)
               else Prof.bucket_idle)
            span;
        if t.obs.Obs.on && rp > 0 then
          Obs.stall_run t.obs ~core:c.id
            ~kind:(stall_index (stall_of_rp rp))
            ~cycle:(now + 1) ~span;
        if t.sb.SB.busy.(c.id) then
          c.counters.busy_cycles <- c.counters.busy_cycles + span;
        if Port.order_held c.hl t.mem then Mem.add_rejected_order t.mem span
      end
      else c.wake <- now + 1
    end
  end

(* Earliest future cycle at which any memory buffer can change status —
   the wake-up that bounds a whole-machine fast-forward. Sleeping cores
   are covered by the wake queue (their armed wake is the min of their
   buffer wakes, frozen for the duration of the sleep); awake cores'
   buffers are scanned directly. [max_int] means nothing is pending (a
   would-be deadlock spins cycle by cycle, exactly as naive stepping
   would, until the watchdog trips). Bails as soon as some buffer can
   wake next cycle (no skip possible then). *)
let next_wake_global t ~now =
  let best = ref (Wake_queue.next_after t.wakeq ~now) in
  let limit = now + 1 in
  let cores = t.cores in
  let n = Array.length cores in
  let i = ref 0 in
  while !i < n && !best > limit do
    let c = Array.unsafe_get cores !i in
    if c.wake <= limit then begin
      let w = port_wake c t.mem ~now in
      if w < !best then best := w
    end;
    incr i
  done;
  !best

(* A cycle was quiescent iff the shared transition counter never moved —
   no buffer status change, no marked core transition — and the shared
   scan/free registers held still. A lock acquired and released within
   the cycle (e.g. the termination probe under the scan lock) is
   deliberately invisible: it leaves no state behind and replays
   identically. *)
let cycle_was_quiet t ~scan0 ~free0 =
  !(t.events) = 0 && t.sb.SB.scan = scan0 && t.sb.SB.free = free0

(* Credit the statistics that [span] identical replays of the
   just-executed cycle would have accumulated for the cores that are
   still awake: each stalled core bumps its stall category once per
   cycle, set busy bits accrue busy cycles, an idle worklist accrues
   empty cycles, and every comparator-held header load is rejected once
   more each cycle. Sleeping cores were already credited through their
   whole sleep span when they went to sleep — and the fast-forward
   target never passes their wake, so there is no double count. *)
let credit_skipped t ~cycle ~span ~empty_delta =
  let cores = t.cores in
  let limit = cycle + 1 in
  for i = 0 to Array.length cores - 1 do
    let c = Array.unsafe_get cores i in
    if c.wake <= limit then begin
      if c.stall_cycle = cycle then begin
        Counters.bump_n c.counters c.stall_kind span;
        if t.obs.Obs.on then
          Obs.stall_run t.obs ~core:c.id
            ~kind:(stall_index c.stall_kind)
            ~cycle:limit ~span
      end;
      (* Profiler: the skipped cycles replay the just-executed one, so
         each awake core repeats the bucket it was attributed there. *)
      if t.prof.Prof.on then
        Prof.add t.prof ~core:c.id
          ~bucket:
            (if c.stall_cycle = cycle then 1 + stall_index c.stall_kind
             else prof_bucket_of_state c.state)
          span;
      if t.sb.SB.busy.(c.id) then
        c.counters.busy_cycles <- c.counters.busy_cycles + span;
      if Port.order_held c.hl t.mem then Mem.add_rejected_order t.mem span
    end
  done;
  t.empty_cycles <- t.empty_cycles + (span * empty_delta)

(* Compiled-engine variants of the two whole-array jump scans, bounded
   to the awake list the fused cycle just built ([t.awake_ids], cores
   whose wake is [now + 1]). The sets coincide: after a fused cycle no
   core's wake is <= [now], sleeping cores (wake > now + 1) are covered
   by the wake queue and were bulk-credited when they slept, and a jump
   only happens when every queued wake is past [now + 1]. Tracer and
   profiler branches are dropped — the compiled fast path requires both
   detached. *)
let next_wake_awake t ~now ~count =
  let best = ref (Wake_queue.next_after t.wakeq ~now) in
  let ids = t.awake_ids and cores = t.cores in
  let limit = now + 1 in
  let i = ref 0 in
  while !i < count && !best > limit do
    let c = Array.unsafe_get cores (Array.unsafe_get ids !i) in
    let w = port_wake c t.mem ~now in
    if w < !best then best := w;
    incr i
  done;
  !best

let credit_awake t ~cycle ~span ~empty_delta ~count =
  let ids = t.awake_ids and cores = t.cores in
  for i = 0 to count - 1 do
    let c = Array.unsafe_get cores (Array.unsafe_get ids i) in
    if c.stall_cycle = cycle then Counters.bump_n c.counters c.stall_kind span;
    if t.sb.SB.busy.(c.id) then
      c.counters.busy_cycles <- c.counters.busy_cycles + span;
    if Port.order_held c.hl t.mem then Mem.add_rejected_order t.mem span
  done;
  t.empty_cycles <- t.empty_cycles + (span * empty_delta)

let diagnose t trip =
  {
    trip;
    at_cycle = now t;
    d_scan = t.sb.SB.scan;
    d_free = t.sb.SB.free;
    scan_lock = SB.scan_lock_owner t.sb;
    free_lock = SB.free_lock_owner t.sb;
    fifo_depth = Fifo.length t.fifo;
    pending_header_stores = Mem.pending_store_count t.mem;
    worklist_nonempty = t.sb.SB.scan <> t.sb.SB.free;
    core_dumps =
      Array.to_list
        (Array.map
           (fun c ->
             {
               core_id = c.id;
               microstate = state_name c.state;
               busy = t.sb.SB.busy.(c.id);
               header_lock = SB.header_lock_of t.sb ~core:c.id;
               ports =
                 [
                   ("hl", Port.describe c.hl);
                   ("hs", Port.describe c.hs);
                   ("bl", Port.describe c.bl);
                   ("bs", Port.describe c.bs);
                 ];
             })
           t.cores);
  }

(* The core's published wake under the event-driven contract: [Some w] =
   it next acts (or observes a buffer event) at cycle [w], never later
   than the first cycle where one of its enabled events fires; [None] =
   no self-scheduled event (halted, or every buffer idle while the core
   waits on another agent). Poll-states publish [now + 1]. *)
let core_next_wake t ~core =
  let c = t.cores.(core) in
  if c.state = Halt then None
  else
    let now = now t in
    if replay_of t c = rp_no_sleep then Some (now + 1)
    else
      let w = port_wake c t.mem ~now in
      if w = max_int then None else Some w

(* BSP superstep scheduling support ({!Bsp}). Which partitions own a
   core that is due at the current cycle, and the earliest cycle any
   core outside one partition can next act. Both are pure reads of the
   per-core wake fields maintained by [maybe_sleep]: a due core has
   [wake <= now], a sleeping core's armed wake is frozen until it is
   stepped again, and a halted core is pinned at [max_int]. *)

let n_cores t = Array.length t.cores
let skip_enabled t = t.cfg.skip

let awake_partition_mask t ~owner =
  let n0 = now t in
  let cores = t.cores in
  let m = ref 0 in
  for i = 0 to Array.length cores - 1 do
    let c = Array.unsafe_get cores i in
    if c.wake <= n0 then m := !m lor (1 lsl Array.unsafe_get owner i)
  done;
  !m

let min_wake_outside t ~owner ~partition =
  let cores = t.cores in
  let w = ref max_int in
  for i = 0 to Array.length cores - 1 do
    if Array.unsafe_get owner i <> partition then begin
      let c = Array.unsafe_get cores i in
      if c.wake < !w then w := c.wake
    end
  done;
  !w

let step_general ?trace ?horizon t =
  let n0 = now t in
  Mem.begin_cycle t.mem ~now:n0;
  (* Stamp the shared hook record so diagnostics and sanitizer findings
     raised anywhere this cycle carry the cycle number. *)
  t.hooks.Hooks.cycle <- n0;
  if t.obs.Obs.on then t.obs.Obs.cycle <- n0;
  let scan0 = t.sb.SB.scan and free0 = t.sb.SB.free in
  t.events := 0;
  let cores = t.cores in
  let n = Array.length cores in
  (* Static prioritization: buffers retry, then cores execute, both in
     core-index order — the lowest index wins simultaneous claims, and a
     lock released by an earlier core is acquirable by a later core in
     the same cycle. Sleeping cores are skipped entirely: none of their
     buffers can transition before their wake, and their rejected
     retries were bulk-credited when they went to sleep. *)
  for i = 0 to n - 1 do
    let c = Array.unsafe_get cores i in
    if c.wake <= n0 then begin
      (* [Port.tick] is a no-op unless the buffer is retrying acceptance
         or an in-flight transfer just completed; checking status here
         with direct field reads keeps the by-far-most-common idle case
         free of the cross-module call. *)
      let p = c.hl in
      let st = p.Port.st in
      if st = Port.st_waiting || (st = Port.st_in_flight && p.Port.done_at <= n0)
      then Port.tick p t.mem ~now:n0;
      let p = c.hs in
      let st = p.Port.st in
      if st = Port.st_waiting || (st = Port.st_in_flight && p.Port.done_at <= n0)
      then Port.tick p t.mem ~now:n0;
      let p = c.bl in
      let st = p.Port.st in
      if st = Port.st_waiting || (st = Port.st_in_flight && p.Port.done_at <= n0)
      then Port.tick p t.mem ~now:n0;
      let p = c.bs in
      let st = p.Port.st in
      if st = Port.st_waiting || (st = Port.st_in_flight && p.Port.done_at <= n0)
      then Port.tick p t.mem ~now:n0
    end
  done;
  t.saw_empty <- false;
  let awake_next = ref 0 in
  let skip = t.cfg.skip in
  for i = 0 to n - 1 do
    let c = Array.unsafe_get cores i in
    if c.wake <= n0 then begin
      step_core t c;
      (* Attribute this executed cycle: the stall latch carrying [n0]
         identifies the stall category (it was counted exactly once by
         [stall]); otherwise the post-step state says busy or idle. *)
      if t.prof.Prof.on then
        Prof.add t.prof ~core:c.id
          ~bucket:
            (if c.stall_cycle = n0 then 1 + stall_index c.stall_kind
             else prof_bucket_of_state c.state)
          1;
      if t.obs.Obs.on then begin
        if c.stall_cycle = n0 then
          Obs.stall_run t.obs ~core:c.id
            ~kind:(stall_index c.stall_kind)
            ~cycle:n0 ~span:1;
        Obs.set_phase t.obs ~core:c.id
          ~phase:(phase_of_state c.state)
          ~cycle:n0
      end;
      if skip then begin
        maybe_sleep t c ~now:n0;
        if c.wake = n0 + 1 then incr awake_next
      end
    end
  done;
  if t.obs.Obs.on && Obs.sample_due t.obs ~cycle:n0 then
    Obs.sample t.obs ~cycle:n0
      ~backlog:(t.sb.SB.free - t.sb.SB.scan)
      ~fifo_depth:(Fifo.length t.fifo);
  let empty_delta =
    if t.parallel_phase && (not t.finished) && t.saw_empty then 1 else 0
  in
  t.empty_cycles <- t.empty_cycles + empty_delta;
  (match trace with
  | Some tr ->
    if Trace.due tr ~cycle:n0 then begin
      let activity =
        String.init t.cfg.n_cores (fun i -> state_code t.cores.(i).state)
      in
      Trace.record tr ~cycle:n0 ~scan:(t.sb.SB.scan) ~free:(t.sb.SB.free)
        ~fifo_depth:(Fifo.length t.fifo) ~activity
    end;
    if t.hooks.Hooks.on then begin
      let fs = San.findings t.san in
      let n = List.length fs in
      if n > t.san_seen then begin
        List.iteri
          (fun i d ->
            if i >= t.san_seen then
              Trace.annotate tr ~cycle:n0 (Diag.to_string d))
          fs;
        t.san_seen <- n
      end
    end
  | None -> ());
  Kernel.tick t.clock;
  let quiet = cycle_was_quiet t ~scan0 ~free0 in
  let halted_all = all_halted t in
  if not halted_all then begin
    (* Watchdog: a quiet cycle made no global progress. The no-progress
       window counts executed cycles only — skipped spans always end at
       a wake-up that produces a transition, so they cannot mask a
       deadlock (a true deadlock has no wake-up and spins cycle by
       cycle, exactly what the window measures). *)
    match
      Kernel.Watchdog.observe t.watchdog ~now:n0 ~progressed:(not quiet)
    with
    | Some trip -> raise (Stall_diagnosis (diagnose t trip))
    | None -> ()
  end;
  (* Whole-machine fast-forward (disabled while tracing: a trace wants
     to sample the quiet cycles too). Two triggers: a quiescent cycle
     (the classic idle-cycle skip, bounded by every buffer wake), or —
     new with event-driven stepping — every core asleep on a memory
     response, in which case nothing can happen before the earliest
     armed wake even though this cycle itself made progress. *)
  if skip && Option.is_none trace && not halted_all then
    if quiet then begin
      let wake = next_wake_global t ~now:n0 in
      if wake < max_int then begin
        let target = min (Wake_queue.bound ~horizon wake) (t.cfg.max_cycles + 1) in
        if target > n0 + 1 then begin
          (* The skipped cycles are quiescent, so the counter samples a
             naive stepper would take in them carry today's (frozen)
             signal values — emit them before jumping so the event
             stream stays stepping-invariant. *)
          if t.obs.Obs.on then
            Obs.catch_up_samples t.obs ~target
              ~backlog:(t.sb.SB.free - t.sb.SB.scan)
              ~fifo_depth:(Fifo.length t.fifo);
          let span = Kernel.fast_forward t.clock ~target in
          credit_skipped t ~cycle:n0 ~span ~empty_delta
        end
      end
    end
    else if !awake_next = 0 then begin
      let wake = Wake_queue.next_after t.wakeq ~now:n0 in
      if wake < max_int then begin
        let target = min (Wake_queue.bound ~horizon wake) (t.cfg.max_cycles + 1) in
        if target > n0 + 1 then begin
          (* No awake core means no stall latch, no busy bit moving, no
             worklist probe in the skipped span: sleeping cores were
             credited when they went to sleep, so there is nothing to
             credit here. Counter samples still need catching up — the
             signals are frozen while everyone sleeps. *)
          if t.obs.Obs.on then
            Obs.catch_up_samples t.obs ~target
              ~backlog:(t.sb.SB.free - t.sb.SB.scan)
              ~fifo_depth:(Fifo.length t.fifo);
          ignore (Kernel.fast_forward t.clock ~target)
        end
      end
    end

(* ------------------------------------------------------------------ *)
(* The compiled stepping engine (ROADMAP item 2).

   A third engine alongside naive ([skip = false]) and the event-driven
   skipper: the same microprogram, specialized at instantiation time for
   the configuration the benchmarks and long parallel runs actually use
   — no sanitizer, no fault plan, no tracer or profiler, whole-object
   scanning. Under those guards (checked once, in [start]) the per-cycle
   work compiles down to straight-line code:

   - the Hooks/Tracer/Sanitizer/Injector branches disappear: the guards
     hold by construction, so the fast paths below touch none of them;
   - memory transactions whose completion cycle is already determined
     retire in batches: with exactly one core awake the interpreter
     runs it alone to the next foreign wake-up, and the body-copy
     inner loop ([data_run_macro]) retires whole runs of data words in
     closed form — a strict generalization of idle-skipping, advancing
     the clock straight to the next semantic decision point;
   - port status words, the sync-block shadow counts and the comparator
     presence mask are probed as flat ints with precomputed masks.

   The contract is the skipper's: every reported statistic is
   bit-identical to naive stepping; only wall time and the
   executed/skipped split move. Whenever a guard fails — a per-step
   trace requested, an instrumented or fault-injected run — the machine
   falls back to the general engine above. *)
(* ------------------------------------------------------------------ *)

(* Buffer retry/completion for one core, fast paths inlined. Body-class
   transactions never touch the header cache, the comparator array or
   the FIFO, so their acceptance is exactly the bandwidth check;
   header-class buffers keep the general [Port.tick] on any path that
   could consult shared structures. Order (hl, hs, bl, bs) matches the
   general tick loop — acceptance order defines the bandwidth and
   ordering counters. *)
let tick_ports_compiled t c ~now =
  let m = t.mem in
  let bw = m.Mem.config.Mem.bandwidth in
  let p = c.hl in
  (let st = p.Port.st in
   if st = Port.st_waiting then begin
     (* Fast-reject only when provably pure: budget exhausted, no header
        cache configured, and the comparator presence mask clears the
        address (no pending store, hence no ordering rejection). *)
     if
       m.Mem.accepted_this_cycle >= bw
       && m.Mem.config.Mem.header_cache_entries = 0
       && m.Mem.ps_mask land (1 lsl (p.Port.addr land 31)) = 0
     then m.Mem.rejected_bandwidth <- m.Mem.rejected_bandwidth + 1
     else Port.tick p m ~now
   end
   else if st = Port.st_in_flight && p.Port.done_at <= now then begin
     p.Port.st <- Port.st_ready;
     incr t.events
   end);
  let p = c.hs in
  (let st = p.Port.st in
   if st = Port.st_waiting then begin
     if m.Mem.accepted_this_cycle >= bw then
       m.Mem.rejected_bandwidth <- m.Mem.rejected_bandwidth + 1
     else Port.tick p m ~now
   end
   else if st = Port.st_in_flight && p.Port.done_at <= now then begin
     p.Port.st <- Port.st_idle;
     incr t.events
   end);
  let p = c.bl in
  (let st = p.Port.st in
   if st = Port.st_waiting then begin
     if m.Mem.accepted_this_cycle >= bw then
       m.Mem.rejected_bandwidth <- m.Mem.rejected_bandwidth + 1
     else begin
       m.Mem.accepted_this_cycle <- m.Mem.accepted_this_cycle + 1;
       m.Mem.loads <- m.Mem.loads + 1;
       p.Port.st <- Port.st_in_flight;
       p.Port.done_at <- now + m.Mem.config.Mem.body_load_latency;
       incr t.events
     end
   end
   else if st = Port.st_in_flight && p.Port.done_at <= now then begin
     p.Port.st <- Port.st_ready;
     incr t.events
   end);
  let p = c.bs in
  let st = p.Port.st in
  if st = Port.st_waiting then begin
    if m.Mem.accepted_this_cycle >= bw then
      m.Mem.rejected_bandwidth <- m.Mem.rejected_bandwidth + 1
    else begin
      m.Mem.accepted_this_cycle <- m.Mem.accepted_this_cycle + 1;
      m.Mem.stores <- m.Mem.stores + 1;
      p.Port.st <- Port.st_in_flight;
      p.Port.done_at <- now + m.Mem.config.Mem.store_latency;
      incr t.events
    end
  end
  else if st = Port.st_in_flight && p.Port.done_at <= now then begin
    p.Port.st <- Port.st_idle;
    incr t.events
  end

(* --- Scan-lock spin parking -------------------------------------------

   The dominant multi-core cost is cores spinning on the scan lock while
   the holder waits out a header-load miss (the lock is held across
   cycles only in [Scan_header_wait]). A spinning core's cycle is a pure
   replay: the failed [try_lock] reads only the owner word, the stall
   bump and (when the worklist is empty) the [saw_empty] probe — and the
   worklist cannot be empty while the lock is held across cycles,
   because the held frame sits at [scan < free]. So the compiled engine
   parks such spinners ([wake = max_int], bit in [parked_mask]) and
   replays their spins in bulk when the release wakes them.

   Release ordering mirrors per-cycle stepping: cores step in index
   order, so when core [j] releases during its step at cycle [y], a
   parked core [i > j] re-spins (or acquires) at [y] — it is woken due
   at [y], and the phase-2 loop reaches it after [j] — while [i < j]
   already had its (failed) turn at [y] and wakes at [y + 1]. Either
   way the uncounted spin span is [wake - park_cycle]. *)

(* Park the just-stepped core if its cycle was a scan-lock spin against
   a lock held by another core and no buffer is retrying acceptance
   (waiting buffers touch the shared bandwidth budget every cycle, so
   they pin the core awake exactly as in [guard_wake]). In-flight
   buffers are fine: their completion flip is derived from [done_at]
   when the core next steps. *)
let try_park t c ~now =
  (match c.state with Try_lock_scan -> true | _ -> false)
  && c.stall_cycle = now
  && (let o = t.sb.SB.scan_owner in
      o >= 0 && o <> c.id)
  && c.hl.Port.st <> Port.st_waiting
  && c.hs.Port.st <> Port.st_waiting
  && c.bl.Port.st <> Port.st_waiting
  && c.bs.Port.st <> Port.st_waiting
  && begin
       c.wake <- max_int;
       c.park_cycle <- now + 1;
       t.parked_mask <- t.parked_mask lor (1 lsl c.id);
       true
     end

(* The scan lock was observed free right after core [after] stepped at
   cycle [now]: wake every parked core, crediting the spin stalls its
   per-cycle replays would have counted. Cores waking at [now + 1] are
   appended to [t.awake_ids] starting at [count]; returns the new count
   (callers keep the awake list complete so the no-awake fast-forward
   cannot jump over a woken spinner). Cores with id > [after] wake due
   at [now] itself — the caller must still give them their turn this
   cycle, in index order. *)
let wake_parked t ~now ~after ~count =
  let m = t.parked_mask in
  t.parked_mask <- 0;
  let cores = t.cores in
  let n = Array.length cores in
  let count = ref count in
  for i = 0 to n - 1 do
    if m land (1 lsl i) <> 0 then begin
      let c = Array.unsafe_get cores i in
      let wake = if i > after then now else now + 1 in
      let span = wake - c.park_cycle in
      if span > 0 then begin
        let k = c.counters in
        k.Counters.scan_lock <- k.Counters.scan_lock + span;
        (* The busy bit is owned by the core itself, so it is frozen for
           the whole parked span (spinners are between objects — the
           check is defensive, mirroring the sleep credit). *)
        if t.sb.SB.busy.(c.id) then
          k.Counters.busy_cycles <- k.Counters.busy_cycles + span
      end;
      c.wake <- wake;
      if wake = now + 1 then begin
        Array.unsafe_set t.awake_ids !count i;
        incr count
      end
    end
  done;
  !count

(* Flush parked cores before anything outside the compiled fast path
   can observe them: credit the spins up to (excluding) the current
   cycle and leave each core due now, exactly the state the per-cycle
   engines would show between cycles. Used on fallback to the general
   engine and before snapshotting. *)
let unpark_all t =
  if t.parked_mask <> 0 then begin
    let now = t.clock.Kernel.now in
    let m = t.parked_mask in
    t.parked_mask <- 0;
    let cores = t.cores in
    for i = 0 to Array.length cores - 1 do
      if m land (1 lsl i) <> 0 then begin
        let c = Array.unsafe_get cores i in
        let span = now - c.park_cycle in
        if span > 0 then begin
          let k = c.counters in
          k.Counters.scan_lock <- k.Counters.scan_lock + span;
          if t.sb.SB.busy.(c.id) then
            k.Counters.busy_cycles <- k.Counters.busy_cycles + span
        end;
        c.wake <- now
      end
    done
  end

(* One core step with the port-guard stall paths inlined (counter bump
   plus stall latch, exactly [stall]); action paths reuse the general
   microprogram step functions, whose hook/tracer sites are off by the
   engine guards. Includes [step_core]'s trailing busy-cycle bump. *)
let step_core_compiled t c ~now =
  (match c.state with
  | Body_wait ->
    if c.bl.Port.st <> Port.st_ready then begin
      let k = c.counters in
      k.Counters.body_load <- k.Counters.body_load + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Body_load
    end
    else step_body_wait t c
  | Try_lock_scan -> step_try_lock_scan t c
  | Body_issue_load ->
    if c.bl.Port.st <> Port.st_idle then begin
      let k = c.counters in
      k.Counters.body_load <- k.Counters.body_load + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Body_load
    end
    else step_body_issue_load t c
  | Store_slot ->
    if c.bs.Port.st <> Port.st_idle then begin
      let k = c.counters in
      k.Counters.body_store <- k.Counters.body_store + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Body_store
    end
    else step_store_slot t c
  (* The header-wait and header-store families get one arm each so the
     dispatch stays a single jump table — [c.state = X] on the variant
     would be a generic-equality call under classic ocamlopt. *)
  | Scan_header_wait ->
    if c.hl.Port.st <> Port.st_ready then begin
      let k = c.counters in
      k.Counters.header_load <- k.Counters.header_load + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Header_load
    end
    else step_scan_header_wait t c
  | Child_header_wait ->
    if c.hl.Port.st <> Port.st_ready then begin
      let k = c.counters in
      k.Counters.header_load <- k.Counters.header_load + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Header_load
    end
    else step_child_header_wait t c
  | Root_header_wait ->
    if c.hl.Port.st <> Port.st_ready then begin
      let k = c.counters in
      k.Counters.header_load <- k.Counters.header_load + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Header_load
    end
    else step_root_header_wait t c
  | Evac_store_fwd ->
    if c.hs.Port.st <> Port.st_idle then begin
      let k = c.counters in
      k.Counters.header_store <- k.Counters.header_store + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Header_store
    end
    else step_evac_store_fwd t c
  | Evac_store_gray ->
    if c.hs.Port.st <> Port.st_idle then begin
      let k = c.counters in
      k.Counters.header_store <- k.Counters.header_store + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Header_store
    end
    else step_evac_store_gray t c
  | Blacken ->
    if c.hs.Port.st <> Port.st_idle then begin
      let k = c.counters in
      k.Counters.header_store <- k.Counters.header_store + 1;
      c.stall_cycle <- now;
      c.stall_kind <- Counters.Header_store
    end
    else step_blacken t c
  | Lock_child -> step_lock_child t c
  | Lock_free -> step_lock_free t c
  | Start_barrier -> step_start_barrier t c
  | End_barrier -> step_end_barrier t c
  | Flush -> step_flush t c
  | Piece_done -> step_piece_done t c
  | Root_next -> step_root_next t c
  | Init -> step_init t c
  | Halt -> ());
  if t.sb.SB.busy.(c.id) then
    c.counters.busy_cycles <- c.counters.busy_cycles + 1

(* Closed-form retirement of a data-word copy run — the paper's inner
   loop: consume the loaded word, store it and issue the next load in
   one cycle, then stall [L-1] cycles on the body-load buffer until the
   next word arrives ([L] = body load latency). Entered at a word cycle:
   the core in [Body_wait], the body-load buffer just flipped ready, the
   other three buffers idle, every other core asleep past [limit].

   Per full word the naive engine books: one executed copy cycle (busy,
   one store + one load accepted — bandwidth >= 2 guarantees both) and
   [L-1] body-load stall cycles (busy). The macro books those totals
   directly ([Kernel.retire] advances the clock in one call), performs
   the same word-at-a-time heap copy, and leaves the port registers
   exactly as the per-cycle engines would at the exit cycle. A pointer
   slot, the end of the work item, or [limit] ends the run; the clock
   stops just after the last processed word cycle, with [c.wake] due so
   the per-cycle loop resumes seamlessly. *)
(* Close out a data run: book the totals the per-cycle engines would
   have accumulated over the run's [exec] word cycles and [gaps]
   replayed stall cycles, advance the clock in one call, and leave the
   core due at the exit cycle. [w] is the run's last executed word
   cycle. The watchdog is handled by the caller ([exclusive_loop]
   records the run as one deferred progress observation at [w]; the
   state that leaves — quiet = 0, last progress = [w] — matches
   per-cycle stepping, and [limit] never exceeds the cycle budget, so
   the deferral cannot mask a budget trip). *)
let data_run_finish t c ~w ~slot ~words ~gaps ~exec ~next_loads =
  c.slot <- slot;
  let k = c.counters in
  k.Counters.words_copied <- k.Counters.words_copied + words;
  k.Counters.body_load <- k.Counters.body_load + gaps;
  (* Word cycles and their replayed gaps are all busy: [Body_wait]
     implies the busy bit is set for the whole run. *)
  k.Counters.busy_cycles <- k.Counters.busy_cycles + exec + gaps;
  let m = t.mem in
  m.Mem.loads <- m.Mem.loads + next_loads;
  m.Mem.stores <- m.Mem.stores + words;
  Kernel.retire t.clock ~executed:exec ~skipped:gaps;
  c.wake <- w + 1

(* The run loop proper, as explicit tail recursion over plain ints: a
   [while] with [ref] accumulators would box them (classic ocamlopt
   only unboxes non-escaping references, and the hot-path allocation
   gate on the compiled engine is two orders tighter than the general
   one). [w] is the word cycle being executed, [slot] the slot it
   consumes, [words]/[gaps] the data words copied and stall cycles
   replayed so far. Unsafe accesses are in bounds by construction: the
   microprogram has already validated [obj_from]/[obj_to] frames when
   it entered the copy loop, and the compiled engine never runs with a
   fault plan. *)
let rec data_run_go t c ~fromb ~tob ~pi ~slot_limit ~lat_l ~lat_s ~limit w
    slot words gaps =
  let heap = t.heap.H.mem in
  let v = Array.unsafe_get heap (fromb + slot) in
  if slot < pi && v <> H.null then begin
    (* Pointer slot: this word cycle consumes it and turns to the
       child ([step_body_wait]'s first arm). Every copied word issued
       a next load ([next_loads = words]). *)
    c.bl.Port.st <- Port.st_idle;
    c.child <- v;
    c.state <- Lock_child;
    data_run_finish t c ~w ~slot ~words ~gaps ~exec:(words + 1)
      ~next_loads:words
  end
  else begin
    Array.unsafe_set heap (tob + slot) v;
    let slot = slot + 1 and words = words + 1 in
    if slot >= slot_limit then begin
      (* Work item complete: the last word's store is in flight, and
         that word issued no further load ([next_loads = words - 1]). *)
      c.bl.Port.st <- Port.st_idle;
      c.bs.Port.st <- Port.st_in_flight;
      c.bs.Port.addr <- tob + slot - 1;
      c.bs.Port.done_at <- w + lat_s;
      c.bs.Port.issued_at <- w;
      c.state <- (if c.whole then Blacken else Piece_done);
      data_run_finish t c ~w ~slot ~words ~gaps ~exec:words
        ~next_loads:(words - 1)
    end
    else if w + lat_l >= limit then begin
      (* The next word completes at or past [limit]: leave both
         transactions in flight for the per-cycle loop. *)
      c.bl.Port.st <- Port.st_in_flight;
      c.bl.Port.addr <- fromb + slot;
      c.bl.Port.done_at <- w + lat_l;
      c.bl.Port.issued_at <- w;
      c.bs.Port.st <- Port.st_in_flight;
      c.bs.Port.addr <- tob + slot - 1;
      c.bs.Port.done_at <- w + lat_s;
      c.bs.Port.issued_at <- w;
      c.state <- Body_wait;
      data_run_finish t c ~w ~slot ~words ~gaps ~exec:words ~next_loads:words
    end
    else
      data_run_go t c ~fromb ~tob ~pi ~slot_limit ~lat_l ~lat_s ~limit
        (w + lat_l) slot words
        (gaps + (lat_l - 1))
  end

let data_run_macro t c ~limit =
  let cfgm = t.mem.Mem.config in
  data_run_go t c
    ~fromb:(c.obj_from + Hdr.header_words)
    ~tob:(c.obj_to + Hdr.header_words)
    ~pi:(Hdr.pi c.h0) ~slot_limit:c.slot_limit
    ~lat_l:cfgm.Mem.body_load_latency ~lat_s:cfgm.Mem.store_latency ~limit
    t.clock.Kernel.now c.slot 0 0

(* Exclusive-core interpreter: every other core is asleep until at
   least [limit], and a sleeping core's wake is frozen (nothing the
   running core does can reschedule it), so the segment needs no
   whole-machine scans — one core ticks, steps and sleeps, and global
   jumps reduce to its own wake arithmetic. The per-cycle machinery of
   the general engine is specialized away:

   - sleeps credit their replay statistics inline and advance the clock
     directly to [min wake limit] (the whole machine is asleep, so the
     queue-mediated all-asleep jump collapses to one assignment);
   - the wake queue is not touched per sleep — the single exit arm
     below restores the queue invariant the fused path relies on;
   - watchdog observations of progressed cycles are deferred and
     flushed in one call (at the next quiet cycle or segment exit),
     which leaves bit-identical watchdog state because consecutive
     progress observations are idempotent up to the last one, and
     [limit] never exceeds the cycle budget.

   Exits once the clock reaches [limit] or the core's own wake passes
   the current cycle (the caller re-evaluates the machine shape). *)
(* Flush the deferred watchdog progress observation (see [t.wd_defer]).
   Consecutive progress observations are idempotent up to the last one,
   so reporting only the latest leaves bit-identical watchdog state;
   deferral cannot mask a budget trip because every deferred cycle is
   below [limit], which is capped at the cycle budget. *)
let wd_flush t =
  if t.wd_defer >= 0 then begin
    let n = t.wd_defer in
    t.wd_defer <- -1;
    match Kernel.Watchdog.observe t.watchdog ~now:n ~progressed:true with
    | Some trip -> raise (Stall_diagnosis (diagnose t trip))
    | None -> ()
  end

(* One exclusive cycle, tail-recursively (top-level recursion with plain
   arguments: a [while] over [ref] state would box the refs and a local
   flush closure would allocate per segment — the compiled engine's
   allocation gate forbids both). *)
let rec exclusive_loop ?horizon t c ~limit ~macro_ok =
  let clock = t.clock in
  let n0 = clock.Kernel.now in
  if n0 >= limit || c.wake > n0 then ()
  else begin
    t.mem.Mem.cycle <- n0;
    t.mem.Mem.accepted_this_cycle <- 0;
    t.hooks.Hooks.cycle <- n0;
    let scan0 = t.sb.SB.scan and free0 = t.sb.SB.free in
    t.events := 0;
    tick_ports_compiled t c ~now:n0;
    if
      macro_ok
      && (match c.state with Body_wait -> true | _ -> false)
      && c.bl.Port.st = Port.st_ready
      && c.hl.Port.st = Port.st_idle
      && c.hs.Port.st = Port.st_idle
      && c.bs.Port.st = Port.st_idle
    then begin
      data_run_macro t c ~limit;
      (* The run's last executed cycle subsumes any older pending
         progress observation. *)
      t.wd_defer <- c.wake - 1;
      exclusive_loop ?horizon t c ~limit ~macro_ok
    end
    else begin
      t.saw_empty <- false;
      step_core_compiled t c ~now:n0;
      (* Executed cycle: inline [Kernel.tick]. *)
      clock.Kernel.now <- n0 + 1;
      clock.Kernel.executed <- clock.Kernel.executed + 1;
      let empty_delta =
        if t.parallel_phase && (not t.finished) && t.saw_empty then 1 else 0
      in
      t.empty_cycles <- t.empty_cycles + empty_delta;
      if (match c.state with Halt -> true | _ -> false) then begin
        (* Wake already pinned at max_int by the halt transition; the
           general engine skips the watchdog when everyone halted, and a
           lone halt is a progressed cycle (events moved). The pinned
           wake ends the recursion at the next check. *)
        if not (all_halted t) then t.wd_defer <- n0
      end
      else if try_park t c ~now:n0 then begin
        (* Parked on a lock held by a sleeping foreign core: the wake at
           [max_int] ends the segment at the next recursion check, and
           the dispatcher's no-awake fast-forward jumps to the holder.
           The spin cycle still gets its watchdog observation. *)
        if !(t.events) = 0 && t.sb.SB.scan = scan0 && t.sb.SB.free = free0
        then begin
          wd_flush t;
          match
            Kernel.Watchdog.observe t.watchdog ~now:n0 ~progressed:false
          with
          | Some trip -> raise (Stall_diagnosis (diagnose t trip))
          | None -> ()
        end
        else t.wd_defer <- n0
      end
      else begin
        (* Inline [maybe_sleep]: same replay decision, but the credit
           skips the profiler/tracer branches (off by engine guard) and
           the clock jumps in place of the queue round-trip. *)
        let rp = replay_of t c in
        let w =
          if rp = rp_no_sleep then n0 + 1
          else if rp = rp_quiet_wait then flush_wake c ~now:n0
          else
            let guard =
              if rp = rp_header_load then c.hl
              else if rp = rp_body_load then c.bl
              else if rp = rp_body_store then c.bs
              else c.hs
            in
            guard_wake c guard t.mem ~now:n0
        in
        let slept = w > n0 + 1 && w < max_int in
        if slept then begin
          c.wake <- w;
          let span = w - n0 - 1 in
          if rp > 0 then Counters.bump_n c.counters (stall_of_rp rp) span;
          if t.sb.SB.busy.(c.id) then
            c.counters.busy_cycles <- c.counters.busy_cycles + span;
          if Port.order_held c.hl t.mem then Mem.add_rejected_order t.mem span;
          (* Whole machine asleep until [min w limit]: jump there
             directly ([limit] is already capped by the horizon, the
             divergence bound and the cycle budget). *)
          let target = if w < limit then w else limit in
          if target > n0 + 1 then begin
            clock.Kernel.skipped <- clock.Kernel.skipped + (target - n0 - 1);
            clock.Kernel.now <- target
          end
        end
        else c.wake <- n0 + 1;
        if !(t.events) = 0 && t.sb.SB.scan = scan0 && t.sb.SB.free = free0
        then begin
          (* Quiet cycle: flush deferred progress first so the
             no-progress window counts from the right cycle. *)
          wd_flush t;
          (match
             Kernel.Watchdog.observe t.watchdog ~now:n0 ~progressed:false
           with
          | Some trip -> raise (Stall_diagnosis (diagnose t trip))
          | None -> ());
          if not slept then begin
            (* Quiet spin (e.g. a poll-state replay): same global
               fast-forward as the general engine, but [c] is the only
               awake core, so the whole-machine scan collapses to its
               own buffer arithmetic and the bulk credit touches it
               alone (foreign sleepers wake past [limit] >= target). *)
            let wake =
              imin (Wake_queue.next_after t.wakeq ~now:n0)
                (port_wake c t.mem ~now:n0)
            in
            if wake < max_int then begin
              let target =
                imin (Wake_queue.bound ~horizon wake) (t.cfg.max_cycles + 1)
              in
              if target > n0 + 1 then begin
                let span = Kernel.fast_forward clock ~target in
                if c.stall_cycle = n0 then
                  Counters.bump_n c.counters c.stall_kind span;
                if t.sb.SB.busy.(c.id) then
                  c.counters.busy_cycles <- c.counters.busy_cycles + span;
                if Port.order_held c.hl t.mem then
                  Mem.add_rejected_order t.mem span;
                t.empty_cycles <- t.empty_cycles + (span * empty_delta)
              end
            end
          end
        end
        else t.wd_defer <- n0
      end;
      exclusive_loop ?horizon t c ~limit ~macro_ok
    end
  end

let step_exclusive ?horizon t c ~limit =
  (* Macro preconditions that are configuration-static: the same-cycle
     store + next-load pair always fits the bandwidth, and the store
     buffer has always drained by the next word cycle. *)
  let cfgm = t.mem.Mem.config in
  let macro_ok =
    cfgm.Mem.bandwidth >= 2
    && cfgm.Mem.store_latency <= cfgm.Mem.body_load_latency
  in
  exclusive_loop ?horizon t c ~limit ~macro_ok;
  wd_flush t;
  (* Restore the queue invariant for the general/fused paths: a sleeping
     core's wake must be armed (stale earlier entries are filtered by
     [next_after]'s strictly-future check). *)
  if c.wake > t.clock.Kernel.now && c.wake < max_int then
    Wake_queue.arm t.wakeq ~id:c.id ~time:c.wake

(* One fused cycle: the general [step] body with the tracer, profiler
   and trace branches compiled out and the buffer/stall fast paths
   inlined. The two-phase structure — every due buffer retries before
   any core executes, both in core-index order — is preserved exactly;
   acceptance order defines the bandwidth and ordering counters.

   Both phases walk [t.due_ids] (the [d] cores the dispatcher found due,
   in index order) instead of rescanning the core array: a due core's
   wake cannot change before its own phase-2 turn (only its own step or
   a parked-core wake mutates it, and due cores are never parked). The
   one exception is a scan-lock release waking a *parked* core due this
   same cycle (id past the releaser): the walk then falls back to a raw
   index scan for the rest of the cycle, which hands both the woken
   spinners and the remaining due cores their turns in index order —
   exactly the per-cycle arbitration. *)
let step_cycle_compiled ?horizon t ~n0 ~d =
  let m = t.mem in
  m.Mem.cycle <- n0;
  m.Mem.accepted_this_cycle <- 0;
  t.hooks.Hooks.cycle <- n0;
  let scan0 = t.sb.SB.scan and free0 = t.sb.SB.free in
  t.events := 0;
  let cores = t.cores in
  let due = t.due_ids in
  for k = 0 to d - 1 do
    tick_ports_compiled t
      (Array.unsafe_get cores (Array.unsafe_get due k))
      ~now:n0
  done;
  t.saw_empty <- false;
  let awake_next = ref 0 in
  let raw_from = ref (-1) in
  let k = ref 0 in
  while !raw_from < 0 && !k < d do
    let c = Array.unsafe_get cores (Array.unsafe_get due !k) in
    incr k;
    step_core_compiled t c ~now:n0;
    if not (try_park t c ~now:n0) then begin
      maybe_sleep t c ~now:n0;
      if c.wake = n0 + 1 then begin
        Array.unsafe_set t.awake_ids !awake_next c.id;
        incr awake_next
      end
    end;
    (* Any step may have released the scan lock (a grab releases it
       within the same step); parked spinners re-enter the arbitration
       at exactly the cycle per-cycle stepping would let them. *)
    if t.parked_mask <> 0 && t.sb.SB.scan_owner < 0 then begin
      let woke_due = t.parked_mask lsr (c.id + 1) <> 0 in
      awake_next := wake_parked t ~now:n0 ~after:c.id ~count:!awake_next;
      if woke_due then raw_from := c.id + 1
    end
  done;
  if !raw_from >= 0 then begin
    (* A release woke parked spinners due this cycle: finish with the
       raw scan (nested releases further down re-enter it naturally). *)
    for i = !raw_from to Array.length cores - 1 do
      let c = Array.unsafe_get cores i in
      if c.wake <= n0 then begin
        step_core_compiled t c ~now:n0;
        if not (try_park t c ~now:n0) then begin
          maybe_sleep t c ~now:n0;
          if c.wake = n0 + 1 then begin
            Array.unsafe_set t.awake_ids !awake_next c.id;
            incr awake_next
          end
        end;
        if t.parked_mask <> 0 && t.sb.SB.scan_owner < 0 then
          awake_next := wake_parked t ~now:n0 ~after:i ~count:!awake_next
      end
    done
  end;
  let empty_delta =
    if t.parallel_phase && (not t.finished) && t.saw_empty then 1 else 0
  in
  t.empty_cycles <- t.empty_cycles + empty_delta;
  Kernel.tick t.clock;
  let quiet = cycle_was_quiet t ~scan0 ~free0 in
  if not (all_halted t) then begin
    (match
       Kernel.Watchdog.observe t.watchdog ~now:n0 ~progressed:(not quiet)
     with
    | Some trip -> raise (Stall_diagnosis (diagnose t trip))
    | None -> ());
    if quiet then begin
      let wake = next_wake_awake t ~now:n0 ~count:!awake_next in
      if wake < max_int then begin
        let target =
          imin (Wake_queue.bound ~horizon wake) (t.cfg.max_cycles + 1)
        in
        if target > n0 + 1 then begin
          let span = Kernel.fast_forward t.clock ~target in
          credit_awake t ~cycle:n0 ~span ~empty_delta ~count:!awake_next
        end
      end
    end
    else if !awake_next = 0 then begin
      let wake = Wake_queue.next_after t.wakeq ~now:n0 in
      if wake < max_int then begin
        let target =
          imin (Wake_queue.bound ~horizon wake) (t.cfg.max_cycles + 1)
        in
        if target > n0 + 1 then ignore (Kernel.fast_forward t.clock ~target)
      end
    end
  end

let step_compiled ?horizon t =
  let n0 = t.clock.Kernel.now in
  if n0 > t.cfg.max_cycles then
    raise
      (Simulation_diverged
         (Printf.sprintf "exceeded %d cycles (scan=%d free=%d)" t.cfg.max_cycles
            (t.sb.SB.scan) (t.sb.SB.free)));
  let cores = t.cores in
  let n = Array.length cores in
  let due = t.due_ids in
  let d = ref 0 in
  for i = 0 to n - 1 do
    if (Array.unsafe_get cores i).wake <= n0 then begin
      Array.unsafe_set due !d i;
      incr d
    end
  done;
  if !d = 1 && t.parked_mask = 0 then begin
    (* Exactly one core due and nobody parked: run it alone up to the
       earliest foreign wake (capped by the resume horizon, the
       divergence bound and the cycle budget, so batched segments never
       overshoot a boundary the per-cycle engines observe). Parked cores
       are excluded because a release inside the segment would have to
       hand them a same-cycle turn; the fused loop handles that. *)
    let only = Array.unsafe_get due 0 in
    let limit = ref (t.cfg.max_cycles + 1) in
    (match horizon with Some h -> if h < !limit then limit := h | None -> ());
    (match t.cfg.cycle_budget with
    | Some b -> if b < !limit then limit := b
    | None -> ());
    for i = 0 to n - 1 do
      if i <> only then begin
        let w = (Array.unsafe_get cores i).wake in
        if w < !limit then limit := w
      end
    done;
    if !limit > n0 + 1 then
      step_exclusive ?horizon t (Array.unsafe_get cores only) ~limit:!limit
    else step_cycle_compiled ?horizon t ~n0 ~d:1
  end
  else step_cycle_compiled ?horizon t ~n0 ~d:!d

let step ?trace ?horizon t =
  match trace with
  | None when t.compiled_hot -> step_compiled ?horizon t
  | _ ->
    (* Falling out of the compiled fast path (e.g. a per-step trace
       attached mid-run): the general engine has no notion of parked
       cores, so flush them back to due spinners first. *)
    if t.parked_mask <> 0 then unpark_all t;
    let n0 = now t in
    if n0 > t.cfg.max_cycles then
      raise
        (Simulation_diverged
           (Printf.sprintf "exceeded %d cycles (scan=%d free=%d)"
              t.cfg.max_cycles (t.sb.SB.scan) (t.sb.SB.free)));
    step_general ?trace ?horizon t

let finalize t =
  if not (all_halted t) then invalid_arg "Coprocessor.finalize: not halted";
  (* The sanitizer observes the stop-the-world collection only: detach
     before the mutator (concurrent mode, inter-cycle allocation) drives
     the same machine. *)
  San.detach t.san;
  if t.prof.Prof.on then Prof.close t.prof ~total:(now t);
  if t.obs.Obs.on then Obs.finish t.obs ~cycle:(now t);
  (* Commit the free register into the heap and swap the spaces. *)
  (H.to_space t.heap).Semispace.free <- t.sb.SB.free;
  H.flip t.heap;
  let live_objects =
    Array.fold_left (fun acc c -> acc + c.counters.objects_evacuated) 0 t.cores
  in
  {
    total_cycles = now t;
    executed_cycles = Kernel.executed_cycles t.clock;
    skipped_cycles = Kernel.skipped_cycles t.clock;
    wall_seconds = Kernel.wall_seconds t.clock;
    root_cycles = t.parallel_start;
    empty_worklist_cycles = t.empty_cycles;
    per_core = Array.map (fun c -> c.counters) t.cores;
    live_objects;
    live_words = Semispace.used (H.from_space t.heap);
    fifo_hits = Fifo.hits t.fifo;
    fifo_misses = Fifo.misses t.fifo;
    fifo_overflows = Fifo.overflows t.fifo;
    mem_loads = Mem.loads t.mem;
    mem_stores = Mem.stores t.mem;
    mem_rejected_bandwidth = Mem.rejected_bandwidth t.mem;
    mem_rejected_order = Mem.rejected_order t.mem;
    header_cache_hits = Mem.header_cache_hits t.mem;
    header_cache_misses = Mem.header_cache_misses t.mem;
    faults_injected = Injector.total t.faults;
    corruptions_injected = Injector.corruptions t.faults;
    sanitizer_findings = San.findings t.san;
    sanitizer_total = San.total t.san;
  }

let sanitizer_findings t = San.findings t.san
let sanitizer_total t = San.total t.san

let collect ?trace ?obs ?prof cfg heap =
  let t = start ?obs ?prof cfg heap in
  while not (all_halted t) do
    step ?trace t
  done;
  finalize t

(* ------------------------------------------------------------------ *)
(* Main-processor hooks for concurrent collection (paper Section VII:
   "allow the multicore coprocessor to run concurrently to the main
   processor"). Called between cycles, so within-cycle atomicity of the
   simulation makes the register manipulations safe; lock conflicts with
   the cores surface as [`Wait]. *)
(* ------------------------------------------------------------------ *)

let mutator_evacuate t addr =
  let w0 = H.header0 t.heap addr in
  match Hdr.state w0 with
  | Gray ->
    (* already evacuated: the read barrier just follows the forwarding
       pointer *)
    `Done (H.header1 t.heap addr, 2)
  | White | Black ->
    if SB.free_lock_owner t.sb <> None || SB.header_locked_by_any t.sb ~addr
    then `Wait
    else begin
      let size = Hdr.size w0 in
      let naddr = t.sb.SB.free in
      if naddr + size > t.tospace_limit then raise Heap_overflow;
      (* This interface is modeled hardware (the read barrier's
         evacuation port; the banked machine's FIFO arbitration step)
         acting between cycles — not a core, so the lockset protocol's
         register-poke rule does not apply to its free claim. The FIFO
         push below stays hooked: the shadow queue must see every
         buffered frame. *)
      let hooks = t.sb.SB.hooks in
      let hooks_were_on = hooks.Hsgc_sanitizer.Hooks.on in
      hooks.Hsgc_sanitizer.Hooks.on <- false;
      SB.set_free t.sb (naddr + size);
      hooks.Hsgc_sanitizer.Hooks.on <- hooks_were_on;
      H.set_header0 t.heap addr (Hdr.with_state w0 Gray);
      H.set_header1 t.heap addr naddr;
      H.set_header0 t.heap naddr
        (Hdr.encode ~state:Gray ~pi:(Hdr.pi w0) ~delta:(Hdr.delta w0));
      H.set_header1 t.heap naddr addr;
      ignore (Fifo.push t.fifo naddr);
      (* a read-barrier evacuation costs the main processor roughly what
         it costs a GC core: a header read, the free claim, two header
         stores *)
      `Done (naddr, 6)
    end

let mutator_alloc t ~pi ~delta =
  if SB.free_lock_owner t.sb <> None then `Wait
  else begin
    let size = Hdr.size_of ~pi ~delta in
    let naddr = t.sb.SB.free in
    if naddr + size > t.tospace_limit then raise Heap_overflow;
    SB.set_free t.sb (naddr + size);
    (* Allocated black: the scan loop skips it (its contents are already
       tospace-only by the allocation-invariant). *)
    H.set_header0 t.heap naddr (Hdr.encode ~state:Black ~pi ~delta);
    H.set_header1 t.heap naddr 0;
    for i = 0 to size - Hdr.header_words - 1 do
      H.write t.heap (naddr + Hdr.header_words + i) 0
    done;
    ignore (Fifo.push t.fifo naddr);
    `Done (naddr, 3 + size)
  end

(* ------------------------------------------------------------------ *)
(* Checkpoint/restore: the complete machine state as a sectioned,
   CRC-guarded snapshot. One section per subsystem, so an integrity
   mutation test can flip a byte in each and watch the matching CRC
   catch it. Restore overwrites a freshly [start]ed machine of the same
   configuration in place. *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  module Codec = Hsgc_util.Codec
  module Ckpt = Hsgc_checkpoint.Checkpoint

  (* Microprogram states, numbered in declaration order. The numeric
     code is a checkpoint artifact only — nothing else depends on it. *)
  let state_to_int = function
    | Init -> 0
    | Root_next -> 1
    | Root_header_wait -> 2
    | Start_barrier -> 3
    | Try_lock_scan -> 4
    | Scan_header_wait -> 5
    | Body_issue_load -> 6
    | Body_wait -> 7
    | Lock_child -> 8
    | Child_header_wait -> 9
    | Lock_free -> 10
    | Evac_store_fwd -> 11
    | Evac_store_gray -> 12
    | Store_slot -> 13
    | Piece_done -> 14
    | Blacken -> 15
    | Flush -> 16
    | End_barrier -> 17
    | Halt -> 18

  let state_of_int = function
    | 0 -> Init
    | 1 -> Root_next
    | 2 -> Root_header_wait
    | 3 -> Start_barrier
    | 4 -> Try_lock_scan
    | 5 -> Scan_header_wait
    | 6 -> Body_issue_load
    | 7 -> Body_wait
    | 8 -> Lock_child
    | 9 -> Child_header_wait
    | 10 -> Lock_free
    | 11 -> Evac_store_fwd
    | 12 -> Evac_store_gray
    | 13 -> Store_slot
    | 14 -> Piece_done
    | 15 -> Blacken
    | 16 -> Flush
    | 17 -> End_barrier
    | 18 -> Halt
    | n -> raise (Codec.Error (Printf.sprintf "unknown core state %d" n))

  let stall_of_int i =
    match List.nth_opt Counters.all_stalls i with
    | Some s -> s
    | None -> raise (Codec.Error (Printf.sprintf "unknown stall kind %d" i))

  (* --- config section ---------------------------------------------- *)
  (* The full configuration the machine was started under, so a resume
     can reconstruct it and a restore onto a mismatched machine fails
     with a structured error instead of corrupting state. *)

  let encode_config (cfg : config) w =
    Codec.W.int w cfg.n_cores;
    Codec.W.int w cfg.max_cycles;
    Codec.W.int w cfg.mem.Mem.header_load_latency;
    Codec.W.int w cfg.mem.Mem.body_load_latency;
    Codec.W.int w cfg.mem.Mem.store_latency;
    Codec.W.int w cfg.mem.Mem.bandwidth;
    Codec.W.int w cfg.mem.Mem.fifo_capacity;
    Codec.W.int w cfg.mem.Mem.header_cache_entries;
    (match cfg.scan_unit with
    | None -> Codec.W.bool w false
    | Some u ->
      Codec.W.bool w true;
      Codec.W.int w u);
    Codec.W.bool w cfg.skip;
    (match cfg.faults with
    | None -> Codec.W.bool w false
    | Some s ->
      Codec.W.bool w true;
      Codec.W.int w s.Injector.seed;
      Codec.W.float w s.Injector.delay_prob;
      Codec.W.int w s.Injector.delay_max;
      Codec.W.float w s.Injector.fifo_drop_prob;
      Codec.W.float w s.Injector.cache_invalidate_prob;
      Codec.W.float w s.Injector.busy_prob;
      Codec.W.float w s.Injector.corrupt_body_prob;
      Codec.W.float w s.Injector.corrupt_header_prob);
    (match cfg.cycle_budget with
    | None -> Codec.W.bool w false
    | Some b ->
      Codec.W.bool w true;
      Codec.W.int w b);
    Codec.W.int w cfg.stall_window;
    Codec.W.bool w cfg.compiled

  let decode_config r =
    let n_cores = Codec.R.int r in
    let max_cycles = Codec.R.int r in
    let header_load_latency = Codec.R.int r in
    let body_load_latency = Codec.R.int r in
    let store_latency = Codec.R.int r in
    let bandwidth = Codec.R.int r in
    let fifo_capacity = Codec.R.int r in
    let header_cache_entries = Codec.R.int r in
    let scan_unit = if Codec.R.bool r then Some (Codec.R.int r) else None in
    let skip = Codec.R.bool r in
    let faults =
      if Codec.R.bool r then begin
        let seed = Codec.R.int r in
        let delay_prob = Codec.R.float r in
        let delay_max = Codec.R.int r in
        let fifo_drop_prob = Codec.R.float r in
        let cache_invalidate_prob = Codec.R.float r in
        let busy_prob = Codec.R.float r in
        let corrupt_body_prob = Codec.R.float r in
        let corrupt_header_prob = Codec.R.float r in
        Some
          {
            Injector.seed;
            delay_prob;
            delay_max;
            fifo_drop_prob;
            cache_invalidate_prob;
            busy_prob;
            corrupt_body_prob;
            corrupt_header_prob;
          }
      end
      else None
    in
    let cycle_budget = if Codec.R.bool r then Some (Codec.R.int r) else None in
    let stall_window = Codec.R.int r in
    let compiled = Codec.R.bool r in
    {
      n_cores;
      mem =
        {
          Mem.header_load_latency;
          body_load_latency;
          store_latency;
          bandwidth;
          fifo_capacity;
          header_cache_entries;
        };
      max_cycles;
      scan_unit;
      skip;
      faults;
      cycle_budget;
      stall_window;
      sanitize = San.Off;
      compiled;
    }

  (* --- core register files ------------------------------------------ *)

  let encode_core c w =
    Codec.W.int w (state_to_int c.state);
    Codec.W.int w c.obj_to;
    Codec.W.int w c.obj_from;
    Codec.W.int w c.h0;
    Codec.W.int w c.slot;
    Codec.W.int w c.slot_limit;
    Codec.W.bool w c.whole;
    Codec.W.int w c.child;
    Codec.W.int w c.child_h0;
    Codec.W.int w c.value;
    Codec.W.int w c.evac_new;
    Codec.W.int w c.root_idx;
    Codec.W.int w (match c.ret with Ret_slot -> 0 | Ret_root -> 1);
    Codec.W.int w c.stall_cycle;
    Codec.W.int w (stall_index c.stall_kind);
    Codec.W.int w c.wake

  let restore_core c r =
    c.state <- state_of_int (Codec.R.int r);
    c.obj_to <- Codec.R.int r;
    c.obj_from <- Codec.R.int r;
    c.h0 <- Codec.R.int r;
    c.slot <- Codec.R.int r;
    c.slot_limit <- Codec.R.int r;
    c.whole <- Codec.R.bool r;
    c.child <- Codec.R.int r;
    c.child_h0 <- Codec.R.int r;
    c.value <- Codec.R.int r;
    c.evac_new <- Codec.R.int r;
    c.root_idx <- Codec.R.int r;
    (c.ret <-
       (match Codec.R.int r with
       | 0 -> Ret_slot
       | 1 -> Ret_root
       | n -> raise (Codec.Error (Printf.sprintf "unknown return point %d" n))));
    c.stall_cycle <- Codec.R.int r;
    c.stall_kind <- stall_of_int (Codec.R.int r);
    c.wake <- Codec.R.int r

  (* --- simulator-level scheduling state ----------------------------- *)

  let encode_sched t w =
    Kernel.encode t.clock w;
    Kernel.watchdog_encode t.watchdog w;
    Codec.W.int w t.hooks.Hooks.cycle;
    Codec.W.int w !(t.events);
    Codec.W.int w t.n_halted;
    Codec.W.bool w t.finished;
    Codec.W.bool w t.saw_empty;
    Codec.W.bool w t.parallel_phase;
    Codec.W.int w t.parallel_start;
    Codec.W.int w t.empty_cycles;
    Codec.W.int w t.cur_frame;
    Codec.W.int w t.cur_h0;
    Codec.W.int w t.cur_from;
    Codec.W.int w t.cur_next_slot;
    Codec.W.int_array w t.pieces

  let restore_sched t r =
    Kernel.restore t.clock r;
    Kernel.watchdog_restore t.watchdog r;
    t.hooks.Hooks.cycle <- Codec.R.int r;
    t.events := Codec.R.int r;
    t.n_halted <- Codec.R.int r;
    t.finished <- Codec.R.bool r;
    t.saw_empty <- Codec.R.bool r;
    t.parallel_phase <- Codec.R.bool r;
    t.parallel_start <- Codec.R.int r;
    t.empty_cycles <- Codec.R.int r;
    t.cur_frame <- Codec.R.int r;
    t.cur_h0 <- Codec.R.int r;
    t.cur_from <- Codec.R.int r;
    t.cur_next_slot <- Codec.R.int r;
    Codec.R.int_array_into r t.pieces ~what:"piece table"

  (* --- the snapshot ------------------------------------------------- *)

  let sec f =
    let w = Codec.W.create () in
    f w;
    Codec.W.contents w

  let save t ~fingerprint =
    if t.cfg.sanitize <> San.Off then
      invalid_arg
        "Coprocessor.Snapshot.save: sanitizer state is not checkpointable";
    if t.remote != remote_disabled then
      (* A bank's outbox, home range and termination grant live in the
         driver, not the config the restore path reconstructs from. *)
      invalid_arg
        "Coprocessor.Snapshot.save: banked-machine banks are not \
         snapshottable";
    (* Parked spinners are a compiled-engine scheduling artifact: flush
       them to plain due cores so the snapshot is engine-independent
       (the credited stalls are exactly the per-cycle ones). *)
    unpark_all t;
    let wtr = Ckpt.writer ~fingerprint in
    Ckpt.add_section wtr "config" (sec (encode_config t.cfg));
    Ckpt.add_section wtr "heap" (sec (H.encode t.heap));
    Ckpt.add_section wtr "memsys" (sec (Mem.encode t.mem));
    Ckpt.add_section wtr "fifo" (sec (Fifo.encode t.fifo));
    Ckpt.add_section wtr "ports"
      (sec (fun w ->
           Array.iter
             (fun c ->
               Port.encode c.hl w;
               Port.encode c.hs w;
               Port.encode c.bl w;
               Port.encode c.bs w)
             t.cores));
    Ckpt.add_section wtr "sync" (sec (SB.encode t.sb));
    Ckpt.add_section wtr "cores"
      (sec (fun w -> Array.iter (fun c -> encode_core c w) t.cores));
    Ckpt.add_section wtr "counters"
      (sec (fun w -> Array.iter (fun c -> Counters.encode c.counters w) t.cores));
    Ckpt.add_section wtr "kernel" (sec (encode_sched t));
    Ckpt.add_section wtr "rng" (sec (Injector.encode t.faults));
    Ckpt.add_section wtr "obs"
      (sec (fun w ->
           Obs.encode t.obs w;
           Prof.encode t.prof w));
    wtr

  let config snap =
    let r = Codec.R.of_string (Ckpt.section snap "config") in
    try
      let cfg = decode_config r in
      if not (Codec.R.eof r) then
        raise (Ckpt.Corrupt "section \"config\": trailing bytes");
      cfg
    with Codec.Error m ->
      raise (Ckpt.Corrupt (Printf.sprintf "section \"config\": %s" m))

  let restore t snap =
    if t.cfg.sanitize <> San.Off then
      invalid_arg
        "Coprocessor.Snapshot.restore: sanitizer state is not checkpointable";
    let with_sec name f =
      let r = Codec.R.of_string (Ckpt.section snap name) in
      (try f r
       with Codec.Error m ->
         raise (Ckpt.Corrupt (Printf.sprintf "section %S: %s" name m)));
      if not (Codec.R.eof r) then
        raise (Ckpt.Corrupt (Printf.sprintf "section %S: trailing bytes" name))
    in
    with_sec "config" (fun r ->
        let enc = decode_config r in
        if enc <> { t.cfg with sanitize = San.Off } then
          raise (Codec.Error "snapshot taken under a different configuration"));
    with_sec "heap" (H.restore t.heap);
    with_sec "memsys" (Mem.restore t.mem);
    with_sec "fifo" (Fifo.restore t.fifo);
    with_sec "ports" (fun r ->
        Array.iter
          (fun c ->
            Port.restore c.hl r;
            Port.restore c.hs r;
            Port.restore c.bl r;
            Port.restore c.bs r)
          t.cores);
    with_sec "sync" (SB.restore t.sb);
    with_sec "cores" (fun r -> Array.iter (fun c -> restore_core c r) t.cores);
    with_sec "counters" (fun r ->
        Array.iter (fun c -> Counters.restore c.counters r) t.cores);
    with_sec "kernel" (restore_sched t);
    with_sec "rng" (Injector.restore t.faults);
    with_sec "obs" (fun r ->
        Obs.restore t.obs r;
        Prof.restore t.prof r);
    (* Rebuild the wake queue from the restored per-core wake times: a
       strictly-future wake is re-armed (the armed array is the queue's
       source of truth; stale entries are pruned lazily), everything
       else — awake, due, or halted — is disarmed, matching what the
       queue would answer in the original process. *)
    let now = t.clock.Kernel.now in
    Array.iter
      (fun c ->
        if c.wake > now && c.wake < max_int then
          Wake_queue.arm t.wakeq ~id:c.id ~time:c.wake
        else Wake_queue.disarm t.wakeq ~id:c.id)
      t.cores
end
