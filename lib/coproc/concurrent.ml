module H = Hsgc_heap.Heap
module Hdr = Hsgc_heap.Header
module Rng = Hsgc_util.Rng

type config = {
  gc : Coprocessor.config;
  mutator_period : int;
  alloc_percent : int;
  registers : int;
  seed : int;
}

let default_config ?(n_cores = 8) () =
  {
    gc = Coprocessor.config ~n_cores ();
    mutator_period = 4;
    alloc_percent = 30;
    registers = 16;
    seed = 42;
  }

type stats = {
  gc : Coprocessor.gc_stats;
  pause_cycles : int;
  barrier_evacuations : int;
  mutator_reads : int;
  mutator_allocs : int;
  mutator_busy_cycles : int;
  mutator_wait_cycles : int;
  new_objects : (int * int array * int array) list;
}

(* One mutator operation; returns the main-processor cost, or None when a
   lock conflict forces a retry on a later cycle. *)
type mutator = {
  rng : Rng.t;
  regs : int array;
  heap : H.t;
  sim : Coprocessor.sim;
  mutable evacs : int;
  mutable reads : int;
  mutable allocs : int;
  mutable rev_new : (int * int array * int array) list;
}

let pick_register m =
  (* a non-null register, if any *)
  let n = Array.length m.regs in
  let start = Rng.int m.rng n in
  let rec go i =
    if i = n then None
    else
      let r = m.regs.((start + i) mod n) in
      if r <> H.null then Some r else go (i + 1)
  in
  go 0

let do_read m =
  match pick_register m with
  | None -> Some 1
  | Some obj ->
    let w0 = H.header0 m.heap obj in
    let pi = Hdr.pi w0 in
    if pi = 0 then Some 1
    else begin
      let slot = Rng.int m.rng pi in
      match Hdr.state w0 with
      | Black ->
        (* fully copied (or allocated black): the tospace body is valid
           and holds tospace references only *)
        let v = H.get_pointer m.heap obj slot in
        m.reads <- m.reads + 1;
        if v <> H.null then m.regs.(Rng.int m.rng (Array.length m.regs)) <- v;
        Some 2
      | Gray ->
        (* body not copied yet: read through the backlink; a fromspace
           value must be evacuated before the mutator may hold it *)
        let orig = H.header1 m.heap obj in
        let v = H.read m.heap (orig + Hdr.header_words + slot) in
        if v = H.null then begin
          m.reads <- m.reads + 1;
          Some 3
        end
        else begin
          match Coprocessor.mutator_evacuate m.sim v with
          | `Done (taddr, cost) ->
            m.reads <- m.reads + 1;
            m.evacs <- m.evacs + 1;
            m.regs.(Rng.int m.rng (Array.length m.regs)) <- taddr;
            Some (3 + cost)
          | `Wait -> None
        end
      | White ->
        failwith "Concurrent: mutator held a fromspace reference (bug)"
    end

let do_alloc m =
  let pi = Rng.int m.rng 4 in
  let delta = Rng.int m.rng 6 in
  match Coprocessor.mutator_alloc m.sim ~pi ~delta with
  | `Wait -> None
  | `Done (addr, cost) ->
    m.allocs <- m.allocs + 1;
    let children =
      Array.init pi (fun slot ->
          let v =
            if Rng.bool m.rng then
              match pick_register m with Some r -> r | None -> H.null
            else H.null
          in
          H.set_pointer m.heap addr slot v;
          v)
    in
    let data =
      Array.init delta (fun i ->
          let v = 0x2ACE0000 lor ((addr + i) land 0xFFFF) in
          H.set_data m.heap addr i v;
          v)
    in
    m.rev_new <- (addr, children, data) :: m.rev_new;
    m.regs.(Rng.int m.rng (Array.length m.regs)) <- addr;
    Some (cost + 2)

let collect ?trace cfg heap =
  if cfg.mutator_period < 1 then invalid_arg "Concurrent.collect: period";
  if cfg.registers < 1 then invalid_arg "Concurrent.collect: registers";
  let sim = Coprocessor.start cfg.gc heap in
  (* Stop-the-world prefix: the root phase. *)
  while (not (Coprocessor.roots_done sim)) && not (Coprocessor.halted sim) do
    Coprocessor.step ?trace sim
  done;
  let pause_cycles = Coprocessor.now sim in
  let m =
    {
      rng = Rng.create cfg.seed;
      regs =
        Array.init cfg.registers (fun i ->
            let roots = heap.H.roots in
            if Array.length roots = 0 then H.null
            else roots.(i mod Array.length roots));
      heap;
      sim;
      evacs = 0;
      reads = 0;
      allocs = 0;
      rev_new = [];
    }
  in
  let busy = ref 0 and wait = ref 0 in
  let next_op = ref pause_cycles in
  while not (Coprocessor.halted sim) do
    if Coprocessor.now sim >= !next_op then begin
      let op =
        if Rng.int m.rng 100 < cfg.alloc_percent then do_alloc m else do_read m
      in
      match op with
      | Some cost ->
        busy := !busy + cost;
        next_op := Coprocessor.now sim + max cfg.mutator_period cost
      | None ->
        (* lock conflict: the main processor retries next cycle *)
        incr wait;
        next_op := Coprocessor.now sim + 1
    end;
    (* The mutator is an event the coprocessor's idle-cycle skipping
       cannot see: cap any fast-forward at the next operation's cycle so
       mutator operations land on exactly the same cycle numbers as under
       naive stepping. *)
    Coprocessor.step ?trace ~horizon:!next_op sim
  done;
  let gc = Coprocessor.finalize sim in
  (* The register file keeps its objects alive into the next cycle. *)
  Array.iter (fun r -> if r <> H.null then H.add_root heap r) m.regs;
  {
    gc;
    pause_cycles;
    barrier_evacuations = m.evacs;
    mutator_reads = m.reads;
    mutator_allocs = m.allocs;
    mutator_busy_cycles = !busy;
    mutator_wait_cycles = !wait;
    new_objects = List.rev m.rev_new;
  }

let check_new_objects heap stats =
  let check_one (addr, children, data) =
    let w0 = H.header0 heap addr in
    if not (Hdr.equal_state (Hdr.state w0) Black) then
      Error (Printf.sprintf "new object %d is not black" addr)
    else if Hdr.pi w0 <> Array.length children then
      Error (Printf.sprintf "new object %d: pi mismatch" addr)
    else if Hdr.delta w0 <> Array.length data then
      Error (Printf.sprintf "new object %d: delta mismatch" addr)
    else begin
      let bad = ref None in
      Array.iteri
        (fun slot expected ->
          if H.get_pointer heap addr slot <> expected then
            bad := Some (Printf.sprintf "new object %d: pointer slot %d" addr slot))
        children;
      Array.iteri
        (fun i expected ->
          if H.get_data heap addr i <> expected then
            bad := Some (Printf.sprintf "new object %d: data word %d" addr i))
        data;
      match !bad with None -> Ok () | Some msg -> Error msg
    end
  in
  List.fold_left
    (fun acc obj -> match acc with Error _ -> acc | Ok () -> check_one obj)
    (Ok ()) stats.new_objects
