(* The banked variant machine: per-bank sync blocks and memory lanes,
   concurrent superstep stepping, FIFO arbitration at barriers, and the
   differential (banked-vs-dense) semantic-equivalence harness. See
   banked.mli and docs/PARALLEL.md for the machine definition and the
   equivalence contract. *)

module H = Hsgc_heap.Heap
module Hdr = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace
module Verify = Hsgc_heap.Verify
module Partition = Hsgc_sim.Partition
module Pool = Hsgc_sim.Domain_pool.Pool
module C = Coprocessor

let default_quantum = 512

type stats = {
  banks : int;
  lanes : int;
  quantum : int;
  supersteps : int;
  arb_rounds : int;
  remote_requests : int;
  remote_hits : int;
  arb_evacuations : int;
  root_routes : int;
  requeues : int;
  arb_cycles : int;
  root_cycles : int;
  stitch_cycles : int;
  parked_steps : int;
  fixups_applied : int;
  bank_cycles : int array;
  max_bank_cycles : int;
  per_bank : C.gc_stats array;
}

(* One bank of the machine: a complete private coprocessor over a view
   of the real heap. The view's fromspace is the bank's home range
   (fully occupied), its tospace the bank's evacuation slice; both
   share the real heap's memory array, and the ranges of distinct banks
   are disjoint, so concurrent bank stepping touches disjoint words. *)
type bank = {
  id : int;
  f_lo : int;  (* home fromspace range [f_lo, f_hi) *)
  f_hi : int;
  t_lo : int;  (* tospace slice base (old, pre-stitch coordinates) *)
  view : H.t;
  remote : C.remote;
  sim : C.sim;
}

(* --- bank construction ---------------------------------------------- *)

(* Cut the occupied fromspace into [banks] contiguous chunks of
   near-equal word counts, on object boundaries: boundary [b] is the
   first object start at least [b/banks] of the way through the
   occupied region. Returns [banks + 1] fenceposts. *)
let cut_home_ranges heap ~banks =
  let frm = H.from_space heap in
  let base = frm.Semispace.base and free = frm.Semispace.free in
  let occ = free - base in
  let bounds = Array.make (banks + 1) free in
  bounds.(0) <- base;
  let next = ref 1 in
  let a = ref base in
  while !a < free do
    while !next < banks && (!a - base) * banks >= !next * occ do
      bounds.(!next) <- !a;
      incr next
    done;
    a := !a + Hdr.size heap.H.mem.(!a)
  done;
  (* Chunks past the last object collapse to the empty range. *)
  while !next < banks do
    bounds.(!next) <- free;
    incr next
  done;
  bounds

let make_banks cfg heap ~banks =
  let bounds = cut_home_ranges heap ~banks in
  let tos = H.to_space heap in
  let cores_per_bank = cfg.C.n_cores / banks in
  let t_lo = ref tos.Semispace.base in
  Array.init banks (fun b ->
      let f_lo = bounds.(b) and f_hi = bounds.(b + 1) in
      let words = f_hi - f_lo in
      let fs = Semispace.create ~base:f_lo ~words in
      fs.Semispace.free <- f_hi;
      let slice_base = !t_lo in
      t_lo := !t_lo + words;
      let view =
        {
          H.mem = heap.H.mem;
          space_a = fs;
          space_b = Semispace.create ~base:slice_base ~words;
          a_is_current = true;
          roots = [||];
        }
      in
      let remote = C.remote_create ~bank:b ~lo:f_lo ~hi:f_hi in
      let cfg_b = { cfg with C.n_cores = cores_per_bank } in
      { id = b; f_lo; f_hi; t_lo = slice_base; view; remote;
        sim = C.start ~remote cfg_b view })

(* Home-bank lookup: largest bank whose home range starts at or below
   the address. Addresses are object starts inside the occupied
   fromspace, so the result's range always contains them. *)
let home_of bks addr =
  let lo = ref 0 and hi = ref (Array.length bks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if bks.(mid).f_lo <= addr then lo := mid else hi := mid - 1
  done;
  bks.(!lo)

(* --- the superstep driver ------------------------------------------- *)

exception Arbitration_deadlock

type driver = {
  bks : bank array;
  heap : H.t;
  pool : Pool.t;
  quantum : int;
  (* requests awaiting a retry after a [`Wait] (home bank held a
     conflicting lock mid-evacuation): (slot, child) pairs, processed
     ahead of freshly drained outboxes, in arrival order *)
  mutable pending : (int * int) list;
  mutable supersteps : int;
  mutable arb_rounds : int;
  mutable remote_hits : int;
  mutable arb_evacuations : int;
  mutable root_routes : int;
  mutable requeues : int;
  mutable arb_cycles : int;
  mutable root_cycles : int;
  mutable parked_steps : int;
  mutable fixups_applied : int;
}

(* Route one evacuation request through the global FIFO arbitration
   step: ensure the child has a tospace copy in its home bank and
   return its (old-coordinate) address, or [None] when the home bank
   holds a conflicting lock and the request must retry next barrier.
   [mutator_evacuate] is the coprocessor's between-cycles evacuation
   contract: it claims the bank's free register, grays both headers and
   pushes the bank's header FIFO — exactly the work the arbitration
   hardware would do, charged to the serial interface. *)
let route d ~child =
  let was_gray = H.obj_state d.heap child = Hdr.Gray in
  match C.mutator_evacuate (home_of d.bks child).sim child with
  | `Done (naddr, cost) ->
    d.arb_cycles <- d.arb_cycles + cost;
    if was_gray then d.remote_hits <- d.remote_hits + 1
    else d.arb_evacuations <- d.arb_evacuations + 1;
    Some naddr
  | `Wait -> None

(* Evacuate the root set through each root's home bank (arbitration
   round 0). Runs right after every bank has passed its start barrier;
   no bank holds any lock, so no [`Wait] is possible. *)
let route_roots d =
  let cycles0 = d.arb_cycles in
  Array.iteri
    (fun i r ->
      if r <> H.null then begin
        match route d ~child:r with
        | Some naddr ->
          d.heap.H.roots.(i) <- naddr;
          d.root_routes <- d.root_routes + 1
        | None -> raise Arbitration_deadlock
      end)
    d.heap.H.roots;
  d.root_cycles <- d.arb_cycles - cycles0

(* Drain every bank's outbox and resolve the accumulated requests in
   deterministic order: retries first, then fresh requests in bank
   order (within a bank, in push order). Every resolved request patches
   the stale slot (one modeled cycle). *)
let arbitrate d =
  let fresh = ref [] in
  Array.iter
    (fun b ->
      let r = b.remote in
      for i = 0 to r.C.rm_n - 1 do
        fresh := (r.C.rm_slots.(i), r.C.rm_children.(i)) :: !fresh
      done;
      r.C.rm_n <- 0)
    d.bks;
  let requests = d.pending @ List.rev !fresh in
  d.pending <- [];
  if requests <> [] then begin
    d.arb_rounds <- d.arb_rounds + 1;
    let resolved = ref 0 in
    List.iter
      (fun (slot, child) ->
        match route d ~child with
        | Some naddr ->
          d.heap.H.mem.(slot) <- naddr;
          d.arb_cycles <- d.arb_cycles + 1;
          d.fixups_applied <- d.fixups_applied + 1;
          incr resolved
        | None ->
          d.pending <- (slot, child) :: d.pending;
          d.requeues <- d.requeues + 1;
          d.arb_cycles <- d.arb_cycles + 1)
      requests;
    d.pending <- List.rev d.pending;
    (* Every [`Wait] names a lock some core holds mid-evacuation, so a
       round in which nothing resolved while every bank is quiescent
       (lock-free) cannot happen; guard against it anyway rather than
       spinning forever on a driver bug. *)
    if
      !resolved = 0
      && Array.for_all (fun b -> C.quiescent b.sim) d.bks
    then raise Arbitration_deadlock
  end

(* One parallel quantum: every non-quiescent bank advances by up to
   [quantum] step calls (each call is one cycle, or a fast-forward over
   a skippable span) on its round-robin pool lane. Quiescent banks are
   parked — not stepped at all — until arbitration refills their
   worklist. Bank state is touched only by its own lane during the
   quantum and only by the leader between quanta; the pool's mutex
   hand-off orders both directions. *)
let quantum_step d =
  let lanes = Pool.lanes d.pool in
  let todo = Array.map (fun b -> not (C.quiescent b.sim)) d.bks in
  Array.iteri
    (fun _ t -> if not t then d.parked_steps <- d.parked_steps + 1)
    todo;
  if Array.exists (fun t -> t) todo then
    Pool.run d.pool (fun lane ->
        Array.iter
          (fun b ->
            if b.id mod lanes = lane && todo.(b.id) then begin
              let steps = ref 0 in
              while
                !steps < d.quantum
                && (not (C.halted b.sim))
                && not (C.quiescent b.sim)
              do
                C.step b.sim;
                incr steps
              done
            end)
          d.bks)

let all_quiescent d = Array.for_all (fun b -> C.quiescent b.sim) d.bks

(* --- the final stitch ----------------------------------------------- *)

(* Close the inter-bank tospace gaps: slide each bank's evacuated block
   down (ascending bank order, so a destination never overlaps a
   not-yet-moved source), then rewrite every pointer — they carry
   old-slice coordinates — by its home slice's offset. Returns the
   compacted region's end and the modeled serial cost. *)
let stitch d ~live =
  let heap = d.heap in
  let tos_base = (H.to_space heap).Semispace.base in
  let n = Array.length d.bks in
  let old_lo = Array.map (fun b -> b.t_lo) d.bks in
  let new_lo = Array.make n 0 in
  let cum = ref tos_base in
  Array.iteri
    (fun b bk ->
      ignore bk;
      new_lo.(b) <- !cum;
      cum := !cum + live.(b))
    d.bks;
  let cycles = ref 0 in
  let moved = ref false in
  for b = 0 to n - 1 do
    if new_lo.(b) < old_lo.(b) && live.(b) > 0 then begin
      Array.blit heap.H.mem old_lo.(b) heap.H.mem new_lo.(b) live.(b);
      cycles := !cycles + live.(b);
      moved := true
    end
  done;
  if not !moved then (!cum, 0)
  else begin
  (* Translate an old-slice tospace address to its post-stitch home. *)
  let translate p =
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if old_lo.(mid) <= p then lo := mid else hi := mid - 1
    done;
    p - old_lo.(!lo) + new_lo.(!lo)
  in
  let a = ref tos_base in
  while !a < !cum do
    let h0 = heap.H.mem.(!a) in
    let pi = Hdr.pi h0 in
    for i = 0 to pi - 1 do
      let slot = !a + Hdr.header_words + i in
      let p = heap.H.mem.(slot) in
      if p <> H.null then begin
        heap.H.mem.(slot) <- translate p;
        incr cycles
      end
    done;
    a := !a + Hdr.size h0
  done;
  Array.iteri
    (fun i r ->
      if r <> H.null then begin
        heap.H.roots.(i) <- translate r;
        incr cycles
      end)
    heap.H.roots;
  (!cum, !cycles)
  end

(* --- aggregation ----------------------------------------------------- *)

let aggregate d ~per_bank ~wall ~stitch_cycles ~live_words =
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per_bank in
  let bank_cycles = Array.map (fun (s : C.gc_stats) -> s.C.total_cycles) per_bank in
  let max_bank_cycles = Array.fold_left max 0 bank_cycles in
  let findings =
    Array.fold_left
      (fun acc (s : C.gc_stats) -> acc @ s.C.sanitizer_findings)
      [] per_bank
  in
  let keep n xs =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    take n xs
  in
  let agg =
    {
      C.total_cycles = max_bank_cycles + d.arb_cycles + stitch_cycles;
      executed_cycles = sum (fun s -> s.C.executed_cycles);
      skipped_cycles = sum (fun s -> s.C.skipped_cycles);
      wall_seconds = wall;
      root_cycles = d.root_cycles;
      empty_worklist_cycles = sum (fun s -> s.C.empty_worklist_cycles);
      per_core =
        Array.concat
          (Array.to_list (Array.map (fun (s : C.gc_stats) -> s.C.per_core) per_bank));
      live_objects = sum (fun s -> s.C.live_objects) + d.arb_evacuations;
      live_words;
      fifo_hits = sum (fun s -> s.C.fifo_hits);
      fifo_misses = sum (fun s -> s.C.fifo_misses);
      fifo_overflows = sum (fun s -> s.C.fifo_overflows);
      mem_loads = sum (fun s -> s.C.mem_loads);
      mem_stores = sum (fun s -> s.C.mem_stores);
      mem_rejected_bandwidth = sum (fun s -> s.C.mem_rejected_bandwidth);
      mem_rejected_order = sum (fun s -> s.C.mem_rejected_order);
      header_cache_hits = sum (fun s -> s.C.header_cache_hits);
      header_cache_misses = sum (fun s -> s.C.header_cache_misses);
      faults_injected = sum (fun s -> s.C.faults_injected);
      corruptions_injected = sum (fun s -> s.C.corruptions_injected);
      sanitizer_findings = keep 64 findings;
      sanitizer_total = sum (fun s -> s.C.sanitizer_total);
    }
  in
  let remote_requests =
    Array.fold_left (fun acc b -> acc + b.remote.C.rm_requests) 0 d.bks
  in
  ( agg,
    {
      banks = Array.length d.bks;
      lanes = Pool.lanes d.pool;
      quantum = d.quantum;
      supersteps = d.supersteps;
      arb_rounds = d.arb_rounds;
      remote_requests;
      remote_hits = d.remote_hits;
      arb_evacuations = d.arb_evacuations;
      root_routes = d.root_routes;
      requeues = d.requeues;
      arb_cycles = d.arb_cycles;
      root_cycles = d.root_cycles;
      stitch_cycles;
      parked_steps = d.parked_steps;
      fixups_applied = d.fixups_applied;
      bank_cycles;
      max_bank_cycles;
      per_bank;
    } )

(* --- the run --------------------------------------------------------- *)

let validate_config cfg ~banks =
  (match Partition.validate_banked ~n_cores:cfg.C.n_cores ~n_partitions:banks
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Banked.collect: " ^ msg));
  if cfg.C.compiled then
    invalid_arg "Banked.collect: the compiled engine has no banked variant";
  if cfg.C.scan_unit <> None then
    invalid_arg "Banked.collect: sub-object scanning has no banked variant"

let collect ?(lanes = 0) ?(quantum = default_quantum) ~banks cfg heap =
  validate_config cfg ~banks;
  if quantum < 1 then invalid_arg "Banked.collect: quantum must be >= 1";
  let wall_start = Monotonic_clock.now () in
  let lanes =
    if lanes <= 0 then Hsgc_sim.Domain_pool.resolve_jobs ~limit:banks 0
    else min lanes banks
  in
  Pool.with_pool ~lanes (fun pool ->
      let bks = make_banks cfg heap ~banks in
      let d =
        {
          bks;
          heap;
          pool;
          quantum;
          pending = [];
          supersteps = 0;
          arb_rounds = 0;
          remote_hits = 0;
          arb_evacuations = 0;
          root_routes = 0;
          requeues = 0;
          arb_cycles = 0;
          root_cycles = 0;
          parked_steps = 0;
          fixups_applied = 0;
        }
      in
      (* Bootstrap: run each bank to its start barrier (empty root
         phase), so scan/free are initialized and evacuations can be
         accepted. *)
      Array.iter
        (fun b ->
          while not (C.roots_done b.sim) do
            C.step b.sim
          done)
        bks;
      route_roots d;
      (* Supersteps until global quiescence with no request in flight. *)
      while not (all_quiescent d && d.pending = []) do
        d.supersteps <- d.supersteps + 1;
        quantum_step d;
        arbitrate d
      done;
      (* Grant termination and run every bank down to its end barrier. *)
      Array.iter (fun b -> b.remote.C.rm_allow_finish <- true) bks;
      Pool.run pool (fun lane ->
          Array.iter
            (fun b ->
              if b.id mod lanes = lane then
                while not (C.halted b.sim) do
                  C.step b.sim
                done)
            bks);
      let per_bank = Array.map (fun b -> C.finalize b.sim) bks in
      let live = Array.map (fun (s : C.gc_stats) -> s.C.live_words) per_bank in
      let free, stitch_cycles = stitch d ~live in
      let tos = H.to_space heap in
      tos.Semispace.free <- free;
      H.flip heap;
      let live_words = Semispace.used (H.from_space heap) in
      let wall =
        Int64.to_float (Int64.sub (Monotonic_clock.now ()) wall_start)
        *. 1e-9
      in
      aggregate d ~per_bank ~wall ~stitch_cycles ~live_words)

(* --- the differential harness ---------------------------------------- *)

let sum_counters (g : C.gc_stats) f =
  Array.fold_left (fun acc c -> acc + f c) 0 g.C.per_core

let objects_scanned g = sum_counters g (fun c -> c.Counters.objects_scanned)
let words_copied g = sum_counters g (fun c -> c.Counters.words_copied)

type equivalence = {
  eq_verify : (unit, Verify.failure) result;
  eq_snapshot : bool;
  eq_live_objects : bool;
  eq_live_words : bool;
  eq_objects_scanned : bool;
  eq_words_copied : bool;
  eq_arbitration : bool;
}

let equivalent e =
  (match e.eq_verify with Ok () -> true | Error _ -> false)
  && e.eq_snapshot && e.eq_live_objects && e.eq_live_words
  && e.eq_objects_scanned && e.eq_words_copied && e.eq_arbitration

let pp_equivalence ppf e =
  let b name v = Format.fprintf ppf " %s=%s" name (if v then "ok" else "FAIL") in
  Format.fprintf ppf "equivalence:";
  (match e.eq_verify with
  | Ok () -> b "verify" true
  | Error f -> Format.fprintf ppf " verify=FAIL(%a)" Verify.pp_failure f);
  b "snapshot" e.eq_snapshot;
  b "live-objects" e.eq_live_objects;
  b "live-words" e.eq_live_words;
  b "objects-scanned" e.eq_objects_scanned;
  b "words-copied" e.eq_words_copied;
  b "arbitration" e.eq_arbitration

type comparison = {
  c_dense : C.gc_stats;
  c_banked : C.gc_stats;
  c_bstats : stats;
  c_equiv : equivalence;
}

let check_equivalence ~pre ~dense ~banked ~bstats ~dense_heap ~banked_heap =
  let verify = Verify.check_collection ~pre banked_heap in
  let snap_ok =
    match verify with
    | Error _ -> false
    | Ok () ->
      Verify.equal_snapshot (Verify.snapshot dense_heap)
        (Verify.snapshot banked_heap)
  in
  {
    eq_verify = verify;
    eq_snapshot = snap_ok;
    eq_live_objects = dense.C.live_objects = banked.C.live_objects;
    eq_live_words = dense.C.live_words = banked.C.live_words;
    eq_objects_scanned = objects_scanned dense = objects_scanned banked;
    eq_words_copied = words_copied dense = words_copied banked;
    eq_arbitration =
      bstats.remote_requests = bstats.fixups_applied
      && bstats.remote_hits + bstats.arb_evacuations
         = bstats.fixups_applied + bstats.root_routes;
  }

let differential ?lanes ?quantum ~banks cfg build =
  let dense_heap = build () in
  let banked_heap = build () in
  let pre = Verify.snapshot banked_heap in
  let c_dense = C.collect { cfg with C.compiled = false } dense_heap in
  let c_banked, c_bstats = collect ?lanes ?quantum ~banks cfg banked_heap in
  let c_equiv =
    check_equivalence ~pre ~dense:c_dense ~banked:c_banked ~bstats:c_bstats
      ~dense_heap ~banked_heap
  in
  { c_dense; c_banked; c_bstats; c_equiv }

let pp_stats ppf s =
  Format.fprintf ppf
    "banked machine: %d banks x %d cores, %d lanes, quantum %d@\n\
     supersteps %d (parked bank-slots %d), arbitration rounds %d@\n\
     remote requests %d (hits %d, evacuations %d, requeues %d), roots routed \
     %d@\n\
     serial cycles: arbitration %d (roots %d) + stitch %d; max bank cycles %d"
    s.banks
    (match Array.length s.per_bank with
    | 0 -> 0
    | _ -> Array.length s.per_bank.(0).C.per_core)
    s.lanes s.quantum s.supersteps s.parked_steps s.arb_rounds s.remote_requests
    s.remote_hits s.arb_evacuations s.requeues s.root_routes s.arb_cycles
    s.root_cycles s.stitch_cycles s.max_bank_cycles
