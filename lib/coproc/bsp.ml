module Partition = Hsgc_sim.Partition
module Pool = Hsgc_sim.Domain_pool.Pool
module Mailbox = Hsgc_sim.Mailbox

type span_report = {
  sr_partition : int;
  sr_start : int;
  sr_end : int;
  sr_steps : int;
  sr_on_worker : bool;
}

type stats = {
  supersteps : int;
  contended_steps : int;
  exclusive_spans : int;
  exclusive_cycles : int;
  handoffs : int;
}

type t = {
  sim : Coprocessor.sim;
  plan : Partition.t;
  pool : Pool.t option;
  reports : span_report Mailbox.t;
  handoff_min : int;
  mutable supersteps : int;
  mutable contended_steps : int;
  mutable exclusive_spans : int;
  mutable exclusive_cycles : int;
  mutable handoffs : int;
}

let default_handoff_min = 64

let start ?obs ?prof ?pool ?(handoff_min = default_handoff_min) ~plan cfg heap =
  if Partition.n_cores plan <> cfg.Coprocessor.n_cores then
    invalid_arg
      (Printf.sprintf "Bsp.start: plan is for %d cores but config has %d"
         (Partition.n_cores plan) cfg.Coprocessor.n_cores);
  {
    sim = Coprocessor.start ?obs ?prof cfg heap;
    plan;
    pool;
    reports = Mailbox.create ~producers:(Partition.n_partitions plan);
    handoff_min = max 2 handoff_min;
    supersteps = 0;
    contended_steps = 0;
    exclusive_spans = 0;
    exclusive_cycles = 0;
    handoffs = 0;
  }

let sim t = t.sim
let plan t = t.plan

let stats t =
  {
    supersteps = t.supersteps;
    contended_steps = t.contended_steps;
    exclusive_spans = t.exclusive_spans;
    exclusive_cycles = t.exclusive_cycles;
    handoffs = t.handoffs;
  }

let lowest_bit_index m =
  let rec go i m = if m land 1 = 1 then i else go (i + 1) (m lsr 1) in
  go 0 m

(* Run one exclusive span on behalf of partition [p]: the sequential
   kernel's own [step], horizon-capped at the first cycle a core outside
   [p] can act. The horizon never shortens a fast-forward the sequential
   kernel would have taken — the outside cores' armed wakes already
   bound [step]'s fast-forward targets — so the span replays exactly
   the cycles sequential stepping would execute, wherever it runs. The
   report is published through the partition's single-writer mailbox
   slot and merged at the barrier. *)
let run_span t ?trace ~partition ~horizon ~on_worker () =
  let sim = t.sim in
  let sr_start = Coprocessor.now sim in
  let steps = ref 0 in
  while (not (Coprocessor.halted sim)) && Coprocessor.now sim < horizon do
    Coprocessor.step ?trace ~horizon sim;
    incr steps
  done;
  Mailbox.post t.reports ~producer:partition
    {
      sr_partition = partition;
      sr_start;
      sr_end = Coprocessor.now sim;
      sr_steps = !steps;
      sr_on_worker = on_worker;
    }

(* Barrier-time merge: drain the span reports in ascending partition
   order and fold them into the scheduler statistics. Deterministic by
   construction — the drain order is fixed and, with the exclusive-span
   schedule, at most one slot is ever full. *)
let merge_reports t =
  Mailbox.drain t.reports (fun _p r ->
      t.exclusive_spans <- t.exclusive_spans + 1;
      t.exclusive_cycles <- t.exclusive_cycles + (r.sr_end - r.sr_start);
      if r.sr_on_worker then t.handoffs <- t.handoffs + 1)

let superstep ?trace t =
  let sim = t.sim in
  t.supersteps <- t.supersteps + 1;
  let owner = Partition.owner t.plan in
  let mask = Coprocessor.awake_partition_mask sim ~owner in
  if mask <> 0 && mask land (mask - 1) = 0 then begin
    let p = lowest_bit_index mask in
    let horizon = Coprocessor.min_wake_outside sim ~owner ~partition:p in
    let start_cycle = Coprocessor.now sim in
    if horizon <= start_cycle + 1 then begin
      (* The exclusive window is a single cycle: step it in place. *)
      t.contended_steps <- t.contended_steps + 1;
      Coprocessor.step ?trace sim
    end
    else begin
      let body ~on_worker () =
        run_span t ?trace ~partition:p ~horizon ~on_worker ()
      in
      (match t.pool with
      | Some pool
        when p > 0 && p < Pool.lanes pool
             && horizon - start_cycle >= t.handoff_min ->
        Pool.run_on pool ~lane:p (body ~on_worker:true)
      | Some _ | None -> body ~on_worker:false ());
      merge_reports t
    end
  end
  else begin
    (* Zero or several partitions are due this cycle: cross-partition
       interfaces (sync block, FIFO, memory bus) may carry traffic, so
       the leader steps the whole machine for one cycle — the
       conservative contended superstep. *)
    t.contended_steps <- t.contended_steps + 1;
    Coprocessor.step ?trace sim
  end

let run ?trace t =
  while not (Coprocessor.halted t.sim) do
    superstep ?trace t
  done

let finalize t = Coprocessor.finalize t.sim

let collect ?trace ?obs ?prof ?pool ?handoff_min ~plan cfg heap =
  let t = start ?obs ?prof ?pool ?handoff_min ~plan cfg heap in
  run ?trace t;
  let gc = finalize t in
  (gc, stats t)

let collect_par ?trace ?obs ?prof ?handoff_min ~partitions cfg heap =
  let plan =
    Partition.plan ~n_cores:cfg.Coprocessor.n_cores ~n_partitions:partitions
  in
  if partitions <= 1 then collect ?trace ?obs ?prof ?handoff_min ~plan cfg heap
  else
    Pool.with_pool ~lanes:partitions (fun pool ->
        collect ?trace ?obs ?prof ~pool ?handoff_min ~plan cfg heap)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "supersteps %d (contended %d, exclusive spans %d covering %d cycles, \
     handoffs %d)"
    s.supersteps s.contended_steps s.exclusive_spans s.exclusive_cycles
    s.handoffs
