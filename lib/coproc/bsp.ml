module Partition = Hsgc_sim.Partition
module Pool = Hsgc_sim.Domain_pool.Pool
module Mailbox = Hsgc_sim.Mailbox

type span_report = {
  sr_partition : int;
  sr_start : int;
  sr_end : int;
  sr_steps : int;
  sr_on_worker : bool;
}

type stats = {
  supersteps : int;
  contended_steps : int;
  exclusive_spans : int;
  exclusive_cycles : int;
  handoffs : int;
  retries : int;
  degraded : string option;
}

type t = {
  sim : Coprocessor.sim;
  plan : Partition.t;
  pool : Pool.t option;
  reports : span_report Mailbox.t;
  handoff_min : int;
  span_timeout_s : float option;
  fail_hook : (int -> unit) option;
  mutable supersteps : int;
  mutable contended_steps : int;
  mutable exclusive_spans : int;
  mutable exclusive_cycles : int;
  mutable handoffs : int;
  mutable retries : int;
  mutable degraded : string option;
}

let default_handoff_min = 64

(* Wrap an already-running machine (a freshly [Coprocessor.start]ed one,
   or one just restored from a checkpoint) in the BSP scheduler. *)
let of_sim ?pool ?(handoff_min = default_handoff_min) ?span_timeout_s ?fail_hook
    ~plan sim =
  if Partition.n_cores plan <> Coprocessor.n_cores sim then
    invalid_arg
      (Printf.sprintf "Bsp.of_sim: plan is for %d cores but machine has %d"
         (Partition.n_cores plan) (Coprocessor.n_cores sim));
  (match span_timeout_s with
  | Some s when s <= 0.0 -> invalid_arg "Bsp: span_timeout_s must be > 0"
  | _ -> ());
  {
    sim;
    plan;
    pool;
    reports = Mailbox.create ~producers:(Partition.n_partitions plan);
    handoff_min = max 2 handoff_min;
    span_timeout_s;
    fail_hook;
    supersteps = 0;
    contended_steps = 0;
    exclusive_spans = 0;
    exclusive_cycles = 0;
    handoffs = 0;
    retries = 0;
    degraded = None;
  }

let start ?obs ?prof ?pool ?handoff_min ?span_timeout_s ?fail_hook ~plan cfg
    heap =
  if Partition.n_cores plan <> cfg.Coprocessor.n_cores then
    invalid_arg
      (Printf.sprintf "Bsp.start: plan is for %d cores but config has %d"
         (Partition.n_cores plan) cfg.Coprocessor.n_cores);
  of_sim ?pool ?handoff_min ?span_timeout_s ?fail_hook ~plan
    (Coprocessor.start ?obs ?prof cfg heap)

let sim t = t.sim
let plan t = t.plan

let stats t =
  {
    supersteps = t.supersteps;
    contended_steps = t.contended_steps;
    exclusive_spans = t.exclusive_spans;
    exclusive_cycles = t.exclusive_cycles;
    handoffs = t.handoffs;
    retries = t.retries;
    degraded = t.degraded;
  }

let lowest_bit_index m =
  let rec go i m = if m land 1 = 1 then i else go (i + 1) (m lsr 1) in
  go 0 m

(* Run one exclusive span on behalf of partition [p]: the sequential
   kernel's own [step], horizon-capped at the first cycle a core outside
   [p] can act. The horizon never shortens a fast-forward the sequential
   kernel would have taken — the outside cores' armed wakes already
   bound [step]'s fast-forward targets — so the span replays exactly
   the cycles sequential stepping would execute, wherever it runs. The
   report is published through the partition's single-writer mailbox
   slot and merged at the barrier. *)
let run_span t ?trace ~partition ~horizon ~on_worker () =
  let sim = t.sim in
  let sr_start = Coprocessor.now sim in
  let steps = ref 0 in
  while (not (Coprocessor.halted sim)) && Coprocessor.now sim < horizon do
    Coprocessor.step ?trace ~horizon sim;
    incr steps
  done;
  Mailbox.post t.reports ~producer:partition
    {
      sr_partition = partition;
      sr_start;
      sr_end = Coprocessor.now sim;
      sr_steps = !steps;
      sr_on_worker = on_worker;
    }

(* Barrier-time merge: drain the span reports in ascending partition
   order and fold them into the scheduler statistics. Deterministic by
   construction — the drain order is fixed and, with the exclusive-span
   schedule, at most one slot is ever full. *)
let merge_reports t =
  Mailbox.drain t.reports (fun _p r ->
      t.exclusive_spans <- t.exclusive_spans + 1;
      t.exclusive_cycles <- t.exclusive_cycles + (r.sr_end - r.sr_start);
      if r.sr_on_worker then t.handoffs <- t.handoffs + 1)

(* Exceptions that carry the run's *result* — a structured diagnosis,
   a modeled overflow, a sanitizer finding. These always propagate:
   supervision exists to absorb scheduling failures, not to mask what
   the machine itself reported. *)
let semantic_exn = function
  | Coprocessor.Stall_diagnosis _ | Coprocessor.Heap_overflow
  | Coprocessor.Simulation_diverged _
  | Hsgc_sanitizer.Diag.Violation _ ->
    true
  | _ -> false

let degrade t reason = if t.degraded = None then t.degraded <- Some reason

(* Supervised span dispatch. The [entered] atomic is a claim on the
   machine: the worker takes it immediately before stepping, and a
   leader that decides to retry takes it instead — whichever side wins
   the compare-and-set is the only one that will ever touch the
   simulator for this span, so a retry is provably safe (the machine
   is exactly as the barrier left it) and an abandoned worker that
   later wakes up finds the claim gone and does nothing. *)
let dispatch_supervised t pool ?trace ~partition ~horizon () =
  let entered = Atomic.make false in
  let body () =
    (match t.fail_hook with Some h -> h partition | None -> ());
    if Atomic.compare_and_set entered false true then
      run_span t ?trace ~partition ~horizon ~on_worker:true ()
  in
  let retry_on_leader reason =
    if Atomic.compare_and_set entered false true then begin
      t.retries <- t.retries + 1;
      degrade t reason;
      run_span t ?trace ~partition ~horizon ~on_worker:false ();
      true
    end
    else false
  in
  Pool.post pool ~lane:partition body;
  match t.span_timeout_s with
  | None -> (
    match Pool.wait pool ~lane:partition with
    | () -> ()
    | exception e ->
      if semantic_exn e then raise e
      else if
        not
          (retry_on_leader
             (Printf.sprintf "worker for partition %d failed: %s" partition
                (Printexc.to_string e)))
      then
        (* The worker had already entered the span when it failed, so
           the machine's state is suspect — nothing to do but report. *)
        raise e)
  | Some timeout_s -> (
    match Pool.try_wait pool ~lane:partition ~timeout_s with
    | `Done -> ()
    | `Failed e ->
      if semantic_exn e then raise e
      else if
        not
          (retry_on_leader
             (Printf.sprintf "worker for partition %d failed: %s" partition
                (Printexc.to_string e)))
      then raise e
    | `Timed_out ->
      if
        retry_on_leader
          (Printf.sprintf "worker for partition %d timed out after %gs"
             partition timeout_s)
      then () (* lane is poisoned; future spans run on the leader *)
      else begin
        (* The worker claimed the span before the deadline, so it is
           mid-flight against the shared machine and a leader retry
           would race it. Spans terminate by construction (bounded by
           [horizon]); grant one more timeout window for it to land
           before declaring the machine lost. *)
        match Pool.try_wait pool ~lane:partition ~timeout_s with
        | `Done ->
          degrade t
            (Printf.sprintf "worker for partition %d exceeded its %gs span \
                             timeout" partition timeout_s)
        | `Failed e -> raise e
        | `Timed_out ->
          failwith
            (Printf.sprintf
               "Bsp: partition %d span still running after %gs; machine state \
                unrecoverable" partition (2.0 *. timeout_s))
      end)

let superstep ?trace ?horizon t =
  let sim = t.sim in
  t.supersteps <- t.supersteps + 1;
  let owner = Partition.owner t.plan in
  let mask = Coprocessor.awake_partition_mask sim ~owner in
  if mask <> 0 && mask land (mask - 1) = 0 then begin
    let p = lowest_bit_index mask in
    let span_horizon = Coprocessor.min_wake_outside sim ~owner ~partition:p in
    (* An external cap (a checkpoint boundary, a chaos stop point) only
       shortens the exclusive window — it never changes what the cycles
       inside it compute, so the bit-identity argument is unaffected. *)
    let span_horizon =
      match horizon with None -> span_horizon | Some h -> min span_horizon h
    in
    let start_cycle = Coprocessor.now sim in
    if span_horizon <= start_cycle + 1 then begin
      (* The exclusive window is a single cycle: step it in place. *)
      t.contended_steps <- t.contended_steps + 1;
      Coprocessor.step ?trace ?horizon sim
    end
    else begin
      (match t.pool with
      | Some pool
        when p > 0 && p < Pool.lanes pool
             && t.degraded = None
             && (not (Pool.poisoned pool ~lane:p))
             && span_horizon - start_cycle >= t.handoff_min ->
        dispatch_supervised t pool ?trace ~partition:p ~horizon:span_horizon ()
      | Some _ | None ->
        run_span t ?trace ~partition:p ~horizon:span_horizon ~on_worker:false ());
      merge_reports t
    end
  end
  else begin
    (* Zero or several partitions are due this cycle: cross-partition
       interfaces (sync block, FIFO, memory bus) may carry traffic, so
       the leader steps the whole machine for one cycle — the
       conservative contended superstep. *)
    t.contended_steps <- t.contended_steps + 1;
    Coprocessor.step ?trace ?horizon sim
  end

let run ?trace t =
  while not (Coprocessor.halted t.sim) do
    superstep ?trace t
  done

let finalize t = Coprocessor.finalize t.sim

let collect ?trace ?obs ?prof ?pool ?handoff_min ?span_timeout_s ?fail_hook
    ~plan cfg heap =
  let t =
    start ?obs ?prof ?pool ?handoff_min ?span_timeout_s ?fail_hook ~plan cfg
      heap
  in
  run ?trace t;
  let gc = finalize t in
  (gc, stats t)

let collect_par ?trace ?obs ?prof ?handoff_min ?span_timeout_s ?fail_hook
    ~partitions cfg heap =
  let plan =
    Partition.plan ~n_cores:cfg.Coprocessor.n_cores ~n_partitions:partitions
  in
  if partitions <= 1 then
    collect ?trace ?obs ?prof ?handoff_min ?span_timeout_s ?fail_hook ~plan cfg
      heap
  else
    Pool.with_pool ~lanes:partitions (fun pool ->
        collect ?trace ?obs ?prof ~pool ?handoff_min ?span_timeout_s ?fail_hook
          ~plan cfg heap)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "supersteps %d (contended %d, exclusive spans %d covering %d cycles, \
     handoffs %d)"
    s.supersteps s.contended_steps s.exclusive_spans s.exclusive_cycles
    s.handoffs;
  if s.retries > 0 then Format.fprintf ppf " [%d span retries]" s.retries;
  match s.degraded with
  | None -> ()
  | Some reason -> Format.fprintf ppf " [degraded to leader-only: %s]" reason
