(** Performance counters, mirroring the paper's FPGA monitoring framework.

    The stall categories are exactly the columns of the paper's Table II.
    Every simulated cycle, a core either makes progress or is stalled on
    exactly one resource; stalled cycles increment the corresponding
    counter. *)

type stall =
  | Scan_lock
  | Free_lock
  | Header_lock
  | Body_load
  | Body_store
  | Header_load
  | Header_store

val all_stalls : stall list
(** In the paper's column order. *)

val stall_name : stall -> string

type t = {
  mutable scan_lock : int;
  mutable free_lock : int;
  mutable header_lock : int;
  mutable body_load : int;
  mutable body_store : int;
  mutable header_load : int;
  mutable header_store : int;
  mutable objects_scanned : int;
  mutable objects_evacuated : int;
  mutable words_copied : int;
  mutable busy_cycles : int;  (** cycles spent inside the scanning loop *)
}

val create : unit -> t
val get : t -> stall -> int
val bump : t -> stall -> unit

val bump_n : t -> stall -> int -> unit
(** [bump_n t s n] adds [n] at once — used by the simulation kernel to
    credit a fast-forwarded span of identical stalled cycles in bulk. *)

val total_stalls : t -> int
val add : t -> t -> t
(** Component-wise sum (for aggregating across cores or cycles). *)

val scale : t -> float -> t
(** Component-wise scaling, rounding to nearest (for means). *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate all accumulators. *)
