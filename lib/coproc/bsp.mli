(** Partitioned BSP driver for the coprocessor — bit-identical to
    sequential stepping by construction.

    The machine is split by a static {!Hsgc_sim.Partition} plan into
    per-domain partitions of cores (and their memory ports). The run
    proceeds in {e supersteps} behind a deterministic barrier:

    - the leader reads the awake-partition mask (a pure inspection of
      the per-core wake times maintained by the event-driven kernel);
    - if several partitions own due cores, the cross-partition
      interfaces — sync block, header FIFO, shared memory bus, all
      reachable from every core on any cycle — may carry traffic, so
      the leader steps the whole machine one cycle ({e contended}
      superstep);
    - if exactly one partition owns every due core, every other core is
      asleep with a frozen armed wake, so until the earliest outside
      wake [E] the machine's behavior is confined to that partition:
      the scheduler runs the span [now .. E) as one unit — on the
      partition's own pool lane when the span is long enough to pay for
      the hand-off — using the sequential kernel's [step ~horizon:E].
      The span's report is published through the partition's
      single-writer {!Hsgc_sim.Mailbox} slot and merged at the barrier
      in ascending partition order.

    Because the horizon [E] is itself one of the armed wakes bounding
    [step]'s fast-forward targets, the cap never changes a target: the
    BSP schedule replays {e exactly} the sequential kernel's step
    sequence — same cycles executed, same cycles skipped, same event
    stream — merely choosing which domain executes each span. Cycle
    counts, every counter, verify results, tracer digests and profiler
    identities are therefore bit-identical to {!Coprocessor.collect} at
    any partition count, pool size, or hand-off threshold (see
    docs/PARALLEL.md for the argument and its proof obligations).

    With [config.skip = false] (naive stepping, forced by [--profile]
    and [--no-skip]) every core is due every cycle, so every superstep
    is contended and the schedule degenerates to leader-only stepping;
    the observation layers then see the machine exactly as before.

    This driver sits at one end of a two-point design space. Because
    the dense machine's cross-partition interfaces are reachable from
    every core on any cycle, bit-identity forces serialization whenever
    two partitions are simultaneously awake — parallelism here is
    opportunistic, harvested only from naturally exclusive spans. The
    {!Banked} machine takes the opposite trade: it {e changes} the
    machine (private per-bank sync blocks and memory lanes, cross-bank
    traffic only through a barrier-drained FIFO arbitration step) so
    banks step concurrently {e every} superstep, and replaces
    bit-identity with an explicitly checked semantic-equivalence
    contract ({!Banked.differential}). *)

type t

(** Scheduler statistics (scheduling only — machine statistics are in
    {!Coprocessor.gc_stats} and are stepping-invariant). *)
type stats = {
  supersteps : int;  (** barrier decisions taken *)
  contended_steps : int;
      (** supersteps stepped in place: several partitions due, or a
          one-cycle exclusive window *)
  exclusive_spans : int;  (** multi-cycle single-partition spans *)
  exclusive_cycles : int;  (** simulated cycles covered by those spans *)
  handoffs : int;  (** spans executed on a worker lane *)
  retries : int;  (** spans re-run on the leader after a worker failure *)
  degraded : string option;
      (** [Some reason] — supervision demoted the run to leader-only
          stepping (worker exception or span timeout). The run still
          completes with bit-identical results; the caller should
          surface the reason as a warning. *)
}

val default_handoff_min : int
(** Minimum span length (simulated cycles) worth dispatching to a
    worker lane; shorter exclusive spans run on the leader. *)

val start :
  ?obs:Hsgc_obs.Tracer.t ->
  ?prof:Hsgc_obs.Profiler.t ->
  ?pool:Hsgc_sim.Domain_pool.Pool.t ->
  ?handoff_min:int ->
  ?span_timeout_s:float ->
  ?fail_hook:(int -> unit) ->
  plan:Hsgc_sim.Partition.t ->
  Coprocessor.config ->
  Hsgc_heap.Heap.t ->
  t
(** Set up a partitioned run. The plan's core count must match the
    config. Without [pool] every span runs on the leader (pure
    scheduling, no parallel dispatch); with one, partition [p]'s spans
    run on lane [p] when long enough ([handoff_min], floor 2).

    {b Supervision.} Dispatched spans are supervised: a worker-lane
    exception that is not the machine's own result (everything except
    [Stall_diagnosis], [Heap_overflow], [Simulation_diverged] and the
    sanitizer's [Diag.Violation]) causes the span to be retried once on
    the leader — provably safe, because an atomic claim on the machine
    guarantees the failed worker never started stepping it — after
    which the run is permanently {e degraded} to leader-only stepping
    and completes with bit-identical results ([stats.degraded] carries
    the reason; no exception escapes). [span_timeout_s] additionally
    bounds each span's wall-clock time: a timed-out lane is poisoned
    ({!Hsgc_sim.Domain_pool.Pool.try_wait}) and the run degrades the
    same way. [fail_hook] is test instrumentation — it runs on the
    worker lane before the span claims the machine, so a hook that
    raises (or hangs) exercises exactly the retry-safe window. *)

val of_sim :
  ?pool:Hsgc_sim.Domain_pool.Pool.t ->
  ?handoff_min:int ->
  ?span_timeout_s:float ->
  ?fail_hook:(int -> unit) ->
  plan:Hsgc_sim.Partition.t ->
  Coprocessor.sim ->
  t
(** Wrap an already-running machine in the scheduler — the resume path:
    a sim restored from a checkpoint continues under BSP stepping
    exactly as a fresh one. Same parameters and supervision as
    {!start}. *)

val superstep : ?trace:Trace.t -> ?horizon:int -> t -> unit
(** One barrier decision: a contended whole-machine step, or one
    exclusive span. [horizon] caps every step and exclusive span at the
    given cycle (checkpoint boundaries, external stop points); like the
    kernel's own [?horizon] it can only split fast-forwards, never
    change what the machine computes, so all statistics other than the
    executed/skipped split are unaffected. *)

val run : ?trace:Trace.t -> t -> unit
(** Supersteps to completion. *)

val finalize : t -> Coprocessor.gc_stats
val sim : t -> Coprocessor.sim
val plan : t -> Hsgc_sim.Partition.t
val stats : t -> stats

val collect :
  ?trace:Trace.t ->
  ?obs:Hsgc_obs.Tracer.t ->
  ?prof:Hsgc_obs.Profiler.t ->
  ?pool:Hsgc_sim.Domain_pool.Pool.t ->
  ?handoff_min:int ->
  ?span_timeout_s:float ->
  ?fail_hook:(int -> unit) ->
  plan:Hsgc_sim.Partition.t ->
  Coprocessor.config ->
  Hsgc_heap.Heap.t ->
  Coprocessor.gc_stats * stats
(** [start] + [run] + [finalize]. *)

val collect_par :
  ?trace:Trace.t ->
  ?obs:Hsgc_obs.Tracer.t ->
  ?prof:Hsgc_obs.Profiler.t ->
  ?handoff_min:int ->
  ?span_timeout_s:float ->
  ?fail_hook:(int -> unit) ->
  partitions:int ->
  Coprocessor.config ->
  Hsgc_heap.Heap.t ->
  Coprocessor.gc_stats * stats
(** Self-contained entry point: plan [partitions] partitions over the
    config's cores, own a pool of that many lanes for the duration
    (none when [partitions <= 1]), collect. Raises [Invalid_argument]
    (via {!Hsgc_sim.Partition.plan}) when the partition count is
    invalid for the core count. *)

val pp_stats : Format.formatter -> stats -> unit
