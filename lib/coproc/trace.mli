(** Signal tracing — the simulator's stand-in for the paper's FPGA
    monitoring framework ("trace up to 32 internal signals in each clock
    cycle ... analyzed offline").

    When a trace is attached to {!Coprocessor.collect}, the coprocessor
    records, every [interval] cycles: the [scan] and [free] registers,
    the gray backlog ([free - scan], in words), the header-FIFO depth,
    and a one-character activity code per core:

    {v
    I init     R roots    B barrier   . looking for work
    s scan-header wait    c copying body        l locking child header
    h child-header wait   e evacuating          k blackening
    p retiring a piece    f flushing buffers    (space) halted
    v}

    [timeline] renders the samples as an ASCII Gantt chart (one row per
    core, time left to right) with a gray-backlog sparkline — the
    quickest way to {i see} why a workload does or does not scale.
    [to_csv] dumps everything for offline analysis, like the paper's
    measurement PC. *)

type sample = {
  cycle : int;
  scan : int;
  free : int;
  backlog_words : int;
  fifo_depth : int;
  core_activity : string;  (** one code character per core *)
}

type t

val create : ?interval:int -> ?capacity:int -> unit -> t
(** A trace sampling every [interval] cycles (default 64), keeping at
    most [capacity] samples (default 100_000; beyond it the interval is
    doubled and existing samples thinned, so long runs stay bounded). *)

val interval : t -> int
val length : t -> int

val due : t -> cycle:int -> bool
(** Whether a sample is due at [cycle] — lets the caller skip building
    the activity string on off-interval cycles. *)

val record :
  t -> cycle:int -> scan:int -> free:int -> fifo_depth:int -> activity:string -> unit
(** Called by the coprocessor; [cycle] must be non-decreasing. Samples
    arriving between interval points are ignored. *)

val samples : t -> sample list
(** In chronological order. *)

val annotate : t -> cycle:int -> string -> unit
(** Attach an out-of-band note (e.g. a sanitizer finding) at [cycle]. *)

val notes : t -> (int * string) list
(** Annotations in chronological order. *)

val timeline : ?width:int -> t -> string
(** ASCII rendering: a backlog sparkline plus one activity row per core. *)

val to_csv : t -> string
(** Header line plus one line per sample. *)
