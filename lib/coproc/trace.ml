type sample = {
  cycle : int;
  scan : int;
  free : int;
  backlog_words : int;
  fifo_depth : int;
  core_activity : string;
}

type t = {
  mutable interval : int;
  capacity : int;
  mutable rev_samples : sample list;
  mutable n : int;
  mutable next_due : int;
}

let create ?(interval = 64) ?(capacity = 100_000) () =
  if interval < 1 || capacity < 2 then invalid_arg "Trace.create";
  { interval; capacity; rev_samples = []; n = 0; next_due = 0 }

let interval t = t.interval
let length t = t.n

(* Keep every second sample; called when capacity is hit. *)
let thin t =
  let keep = ref [] and odd = ref false in
  List.iter
    (fun s ->
      if !odd then keep := s :: !keep;
      odd := not !odd)
    t.rev_samples;
  t.rev_samples <- List.rev !keep;
  t.n <- List.length t.rev_samples;
  t.interval <- t.interval * 2

let due t ~cycle = cycle >= t.next_due

let record t ~cycle ~scan ~free ~fifo_depth ~activity =
  if cycle >= t.next_due then begin
    t.rev_samples <-
      {
        cycle;
        scan;
        free;
        backlog_words = free - scan;
        fifo_depth;
        core_activity = activity;
      }
      :: t.rev_samples;
    t.n <- t.n + 1;
    t.next_due <- cycle + t.interval;
    if t.n >= t.capacity then thin t
  end

let samples t = List.rev t.rev_samples

let timeline ?(width = 100) t =
  match samples t with
  | [] -> "(no samples)\n"
  | all ->
    let arr = Array.of_list all in
    let n = Array.length arr in
    let cores = String.length arr.(0).core_activity in
    let width = min width n in
    let pick col = arr.(col * (n - 1) / max 1 (width - 1)) in
    let buf = Buffer.create ((cores + 4) * (width + 16)) in
    let first = arr.(0).cycle and last = arr.(n - 1).cycle in
    Buffer.add_string buf
      (Printf.sprintf "cycles %d..%d, %d samples every %d cycles\n" first last n
         t.interval);
    (* Backlog sparkline. *)
    let max_backlog =
      Array.fold_left (fun acc s -> max acc s.backlog_words) 1 arr
    in
    let spark = " .:-=+*#%@" in
    Buffer.add_string buf (Printf.sprintf "%7s " "backlog");
    for col = 0 to width - 1 do
      let s = pick col in
      let lvl =
        s.backlog_words * (String.length spark - 1) / max 1 max_backlog
      in
      Buffer.add_char buf spark.[lvl]
    done;
    Buffer.add_string buf (Printf.sprintf "  (max %d words)\n" max_backlog);
    for core = 0 to cores - 1 do
      Buffer.add_string buf (Printf.sprintf "core %-2d " core);
      for col = 0 to width - 1 do
        Buffer.add_char buf (pick col).core_activity.[core]
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf
      "legend: .=seeking work  c=copying  l/h=child header  e=evacuating\n\
      \        s=scan-header wait  k=blacken  p=piece retire  B=barrier  \
       f=flush\n";
    Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "cycle,scan,free,backlog_words,fifo_depth,core_activity\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%s\n" s.cycle s.scan s.free
           s.backlog_words s.fifo_depth s.core_activity))
    (samples t);
  Buffer.contents buf
