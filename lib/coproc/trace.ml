type sample = {
  cycle : int;
  scan : int;
  free : int;
  backlog_words : int;
  fifo_depth : int;
  core_activity : string;
}

(* Samples live in preallocated parallel arrays (one int array per
   numeric signal, one string array for the activity codes): recording a
   sample on the hot path writes four ints and one already-built string,
   allocating nothing. The [sample] record view is materialized only on
   demand ([samples]/[get]). *)
type t = {
  mutable interval : int;
  capacity : int;
  cycles : int array;
  scans : int array;
  frees : int array;
  fifos : int array;
  activities : string array;
  mutable n : int;
  mutable next_due : int;
  (* Out-of-band annotations (sanitizer findings, at most a handful per
     run): newest first, rendered chronologically by [notes]. *)
  mutable notes_rev : (int * string) list;
}

let create ?(interval = 64) ?(capacity = 100_000) () =
  if interval < 1 || capacity < 2 then invalid_arg "Trace.create";
  {
    interval;
    capacity;
    cycles = Array.make capacity 0;
    scans = Array.make capacity 0;
    frees = Array.make capacity 0;
    fifos = Array.make capacity 0;
    activities = Array.make capacity "";
    n = 0;
    next_due = 0;
    notes_rev = [];
  }

let annotate t ~cycle note = t.notes_rev <- (cycle, note) :: t.notes_rev

(* Chronological as documented even if annotations arrive out of order
   (stable, so same-cycle notes keep their insertion order). *)
let notes t =
  List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev t.notes_rev)

let interval t = t.interval
let length t = t.n

(* Keep every second sample (in-place compaction) and double the
   sampling interval; called when capacity is hit. *)
let thin t =
  let start = t.n land 1 in
  let kept = ref 0 in
  let src = ref start in
  while !src < t.n do
    let d = !kept and s = !src in
    t.cycles.(d) <- t.cycles.(s);
    t.scans.(d) <- t.scans.(s);
    t.frees.(d) <- t.frees.(s);
    t.fifos.(d) <- t.fifos.(s);
    t.activities.(d) <- t.activities.(s);
    incr kept;
    src := s + 2
  done;
  t.n <- !kept;
  t.interval <- t.interval * 2

let due t ~cycle = cycle >= t.next_due

let record t ~cycle ~scan ~free ~fifo_depth ~activity =
  if cycle >= t.next_due then begin
    let i = t.n in
    t.cycles.(i) <- cycle;
    t.scans.(i) <- scan;
    t.frees.(i) <- free;
    t.fifos.(i) <- fifo_depth;
    t.activities.(i) <- activity;
    t.n <- i + 1;
    t.next_due <- cycle + t.interval;
    if t.n >= t.capacity then thin t
  end

let get t i =
  {
    cycle = t.cycles.(i);
    scan = t.scans.(i);
    free = t.frees.(i);
    backlog_words = t.frees.(i) - t.scans.(i);
    fifo_depth = t.fifos.(i);
    core_activity = t.activities.(i);
  }

let samples t = List.init t.n (get t)

let timeline ?(width = 100) t =
  if t.n = 0 then "(no samples)\n"
  else begin
    let n = t.n in
    let cores = String.length t.activities.(0) in
    let width = min width n in
    let pick col = col * (n - 1) / max 1 (width - 1) in
    let buf = Buffer.create ((cores + 4) * (width + 16)) in
    let first = t.cycles.(0) and last = t.cycles.(n - 1) in
    Buffer.add_string buf
      (Printf.sprintf "cycles %d..%d, %d samples every %d cycles\n" first last n
         t.interval);
    (* Backlog sparkline. *)
    let max_backlog = ref 1 in
    for i = 0 to n - 1 do
      max_backlog := max !max_backlog (t.frees.(i) - t.scans.(i))
    done;
    let max_backlog = !max_backlog in
    let spark = " .:-=+*#%@" in
    Buffer.add_string buf (Printf.sprintf "%7s " "backlog");
    for col = 0 to width - 1 do
      let i = pick col in
      let backlog = t.frees.(i) - t.scans.(i) in
      let lvl = backlog * (String.length spark - 1) / max 1 max_backlog in
      Buffer.add_char buf spark.[lvl]
    done;
    Buffer.add_string buf (Printf.sprintf "  (max %d words)\n" max_backlog);
    for core = 0 to cores - 1 do
      Buffer.add_string buf (Printf.sprintf "core %-2d " core);
      for col = 0 to width - 1 do
        Buffer.add_char buf t.activities.(pick col).[core]
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf
      "legend: .=seeking work  c=copying  l/h=child header  e=evacuating\n\
      \        s=scan-header wait  k=blacken  p=piece retire  B=barrier  \
       f=flush\n";
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "cycle,scan,free,backlog_words,fifo_depth,core_activity\n";
  for i = 0 to t.n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d,%d,%d,%d,%d,%s\n" t.cycles.(i) t.scans.(i)
         t.frees.(i)
         (t.frees.(i) - t.scans.(i))
         t.fifos.(i) t.activities.(i))
  done;
  Buffer.contents buf
