(** The multi-core garbage collection coprocessor (paper Sections IV–V).

    [collect] runs one complete stop-the-world collection cycle of the
    fine-grained parallel Cheney algorithm at clock-cycle granularity:

    - core 0 initializes [scan] and [free] and evacuates the root set;
    - a hardware barrier releases all cores into the scanning loop;
    - every core repeatedly: locks [scan], takes the gray object at
      [scan] (header via the on-chip FIFO when possible), advances [scan]
      past it, releases the lock, and copies the object's body from the
      fromspace original (found through the backlink), translating each
      pointer-area word by locking the child's header and either following
      the forwarding pointer or evacuating the child (claiming tospace
      through the [free] register, one-cycle critical section);
    - termination: the holder of the scan lock observes [scan = free]
      with every busy bit clear;
    - all cores flush their memory buffers and meet an end barrier.

    Work is distributed strictly object-by-object through the single
    shared worklist (the gray region between [scan] and [free]); the only
    synchronization costs are the cycle-level stalls that the counters
    record. *)

type config = {
  n_cores : int;
  mem : Hsgc_memsim.Memsys.config;
  max_cycles : int;
      (** safety bound; [collect] raises [Simulation_diverged] beyond it *)
  scan_unit : int option;
      (** paper Section VII future work: when [Some u], an object whose
          body exceeds [u] words is handed out in [u]-word pieces, so
          several cores copy one large object concurrently ("distribute
          work at the granularity of cache lines"). [scan] advances
          piece-wise through the frame; the frame's header stays latched
          in the synchronization block between pieces, so non-initial
          pieces cost one cycle and no header access; the last piece to
          retire blackens the object (an outstanding-piece count kept
          under the frame's header lock). [None] (the default) is the
          published object-granularity design. *)
  skip : bool;
      (** event-driven scheduling and idle-cycle skipping
          ({!Hsgc_sim.Kernel}, {!Hsgc_sim.Wake_queue}): a core whose next
          transition depends only on its own four memory buffers goes to
          sleep until the earliest buffer event, arming its wake in the
          kernel's wake queue, and is not stepped in between; a cycle
          that turns out globally quiescent — or that leaves {i every}
          core asleep on a memory response — fast-forwards the clock to
          the earliest wake-up. Per-cycle statistics (stall breakdowns,
          busy/empty cycles, ordering rejections) are credited in bulk
          for the slept or skipped spans, so every reported number is
          bit-identical to naive stepping; only wall-clock time changes.
          Default [true]; [false] is the pure poll-every-core-every-cycle
          parity reference ([--no-skip] in the CLI). Tracing temporarily
          disables the whole-machine jumps so quiet cycles are sampled
          too. *)
  faults : Hsgc_fault.Injector.spec option;
      (** fault-injection plan ({!Hsgc_fault.Injector}). Each simulator
          instance builds a private injector from the spec, so
          domain-parallel sweep points are independent and every point
          is exactly reproducible. [None] (the default) means no
          injector: behavior is bit-identical to a build without the
          hooks. *)
  cycle_budget : int option;
      (** watchdog: hard bound on total simulated cycles. Exceeding it
          raises {!Stall_diagnosis} with a full machine dump. Distinct
          from [max_cycles], whose overrun signals simulator
          divergence. [None] (the default) = unbounded. *)
  stall_window : int;
      (** watchdog: consecutive {i executed} cycles without any global
          progress (no buffer transition, no marked core transition,
          scan/free frozen) before raising {!Stall_diagnosis}. Always
          on; the default (1,000,000) is far beyond any legitimate
          wait, which is bounded by memory latencies. *)
  sanitize : Hsgc_sanitizer.Sanitizer.mode;
      (** machine sanitizer ({!Hsgc_sanitizer.Sanitizer}): an
          Eraser-style lockset checker plus protocol linter observing
          every simulated heap word access, lock transition, FIFO
          operation and barrier pass through a shared hook record.
          [Off] (the default) attaches nothing — each hook site reduces
          to one load-and-branch; [Check] records findings into
          {!gc_stats}; [Strict] raises {!Hsgc_sanitizer.Diag.Violation}
          at the first finding. The sanitizer observes the
          stop-the-world collection (it is detached at [finalize];
          concurrent-mode mutator activity is out of scope). *)
  compiled : bool;
      (** the compiled stepping engine: the same microprogram,
          specialized at instantiation time for the plain-run
          configuration. Hook/tracer/sanitizer/injector branches are
          resolved away, buffer retries and stall paths are inlined on
          flat status ints, and transactions whose completion cycle is
          already determined retire in batches (an exclusive awake core
          runs alone to the next foreign wake-up; the body-copy inner
          loop retires whole data-word runs in closed form) — a strict
          generalization of idle-cycle skipping, with the same
          contract: every reported statistic is bit-identical to naive
          stepping, only wall time and the executed/skipped split
          move. Requires [skip = true], [sanitize = Off] and
          [scan_unit = None] ([start] raises [Invalid_argument]
          otherwise); a fault plan, tracer, profiler or per-step trace
          falls back to the general engine. Default [false]. *)
}

val default_config : config
(** 8 cores, default memory model, generous cycle bound, no sub-object
    splitting. *)

val config :
  ?mem:Hsgc_memsim.Memsys.config ->
  ?scan_unit:int ->
  ?skip:bool ->
  ?faults:Hsgc_fault.Injector.spec ->
  ?cycle_budget:int ->
  ?stall_window:int ->
  ?sanitize:Hsgc_sanitizer.Sanitizer.mode ->
  ?compiled:bool ->
  n_cores:int ->
  unit ->
  config

exception Heap_overflow
(** Tospace could not hold the live data. *)

(** {2 Banked-machine attachment}

    A machine {!start}ed with a [remote] record becomes one {e bank} of
    the banked variant machine ({!Banked}): it owns the fromspace home
    range [[rm_lo, rm_hi)], runs its private sync block, memory lane
    and header FIFO, and interacts with the other banks only through
    the driver. Pointer slots naming a child outside the home range are
    stored stale (like data words — no header lock, no evacuation) and
    recorded in the bank's outbox; the driver drains the outbox at
    every superstep barrier and routes each request through the global
    FIFO arbitration step to the child's home bank. The scan-lock
    termination probe is suppressed until the driver, having observed
    global quiescence, sets [rm_allow_finish].

    The record is exposed for the driver (it drains [rm_slots]/
    [rm_children] and resets [rm_n] at barriers); microprogram code
    only ever appends. Not snapshottable; incompatible with the
    compiled engine and sub-object scanning (checked by {!start}). *)
type remote = {
  rm_bank : int;
  rm_lo : int;
  rm_hi : int;
  mutable rm_allow_finish : bool;
  mutable rm_slots : int array;  (** outbox: stale tospace slot addresses *)
  mutable rm_children : int array;  (** parallel: foreign fromspace children *)
  mutable rm_n : int;  (** live outbox prefix length *)
  mutable rm_requests : int;  (** total outbox pushes over the run *)
}

val remote_create : bank:int -> lo:int -> hi:int -> remote
(** A fresh bank attachment with an empty outbox and the termination
    grant withheld. *)

exception Simulation_diverged of string
(** The cycle bound was exceeded — indicates a simulator bug; the
    algorithm itself is deadlock-free by lock ordering. *)

(** {2 Stall diagnosis}

    The watchdog ({!Hsgc_sim.Kernel.Watchdog}) turns what used to be an
    infinite [collect] hang into a structured exception carrying a full
    machine dump, captured at the cycle the watchdog tripped. *)

type core_dump = {
  core_id : int;
  microstate : string;  (** microprogram state, e.g. ["try-lock-scan"] *)
  busy : bool;  (** the core's ScanState busy bit *)
  header_lock : int option;  (** address in its header-lock register *)
  ports : (string * string) list;
      (** the four memory buffers ([hl]/[hs]/[bl]/[bs]) and their
          {!Hsgc_memsim.Port.describe} status *)
}

type diagnosis = {
  trip : Hsgc_sim.Kernel.Watchdog.trip;
  at_cycle : int;
  d_scan : int;
  d_free : int;
  scan_lock : int option;  (** owning core, if held *)
  free_lock : int option;
  fifo_depth : int;
  pending_header_stores : int;  (** comparator-array occupancy *)
  worklist_nonempty : bool;  (** [scan <> free] at trip time *)
  core_dumps : core_dump list;
}

exception Stall_diagnosis of diagnosis

val pp_diagnosis : Format.formatter -> diagnosis -> unit
(** Multi-line human-readable rendering of the dump (also registered as
    the exception printer). *)

(** Result of one collection cycle. *)
type gc_stats = {
  total_cycles : int;
  executed_cycles : int;  (** cycles actually stepped by the kernel *)
  skipped_cycles : int;
      (** quiescent cycles fast-forwarded over;
          [total_cycles = executed_cycles + skipped_cycles] *)
  wall_seconds : float;
      (** host wall-clock time from [start] to [finalize] — with
          [total_cycles] this gives the simulator's throughput in
          simulated cycles per second *)
  root_cycles : int;  (** cycles spent before the start barrier opened *)
  empty_worklist_cycles : int;
      (** cycles in which at least one core was looking for work while
          [scan = free] — no gray object was available for processing
          (the paper's Table I metric) *)
  per_core : Counters.t array;
  live_objects : int;
  live_words : int;
  fifo_hits : int;
  fifo_misses : int;
  fifo_overflows : int;
  mem_loads : int;
  mem_stores : int;
  mem_rejected_bandwidth : int;
  mem_rejected_order : int;
  header_cache_hits : int;
  header_cache_misses : int;
  faults_injected : int;
      (** all faults the injector fired this run (both classes) *)
  corruptions_injected : int;
      (** corruption-class faults only — the denominator of the
          verifier's detection-coverage figure *)
  sanitizer_findings : Hsgc_sanitizer.Diag.t list;
      (** kept (deduplicated, capped at 64) sanitizer findings, oldest
          first; [[]] when the sanitizer was off or silent *)
  sanitizer_total : int;
      (** every sanitizer finding including deduplicated repeats *)
}

val stalls_total : gc_stats -> Counters.t
(** Sum of the per-core counters. *)

val stalls_mean_per_core : gc_stats -> Counters.t
(** Mean per core — the form the paper's Table II reports. *)

val collect :
  ?trace:Trace.t ->
  ?obs:Hsgc_obs.Tracer.t ->
  ?prof:Hsgc_obs.Profiler.t ->
  config -> Hsgc_heap.Heap.t -> gc_stats
(** Run one collection cycle: evacuate everything reachable from the
    heap's roots into the other semispace, update the roots, flip the
    heap. Raises {!Heap_overflow} if the live data does not fit. An
    attached {!Trace} samples the internal signals while the cycle
    runs.

    [obs] attaches an event/span tracer ({!Hsgc_obs.Tracer}): per-core
    phase spans, merged stall runs, FIFO overflow episodes, gray
    backlog / FIFO depth samples, plus lock hold-time, per-object
    scan-latency and memory-latency histograms. With a fixed seed and
    configuration the event stream is byte-identical run to run, and —
    kernel skip spans aside — identical under naive and event-driven
    stepping.

    [prof] attaches a stall-attribution profiler
    ({!Hsgc_obs.Profiler}): every simulated cycle of every core is
    attributed to exactly one of busy / the seven stall categories /
    idle, so per-core bucket sums equal [total_cycles] and the stall
    columns equal the {!Counters} totals. Both must be enabled
    ([enable]) and sized for at least [n_cores] to record anything. *)

(** {2 Cycle-stepped interface}

    [collect] is [start] + [step] to completion + [finalize]. The
    stepped form lets a driver interleave other agents with the
    coprocessor — {!Concurrent} uses it to run the main processor
    {i during} the collection (the paper's announced next step). *)

type sim

val start :
  ?obs:Hsgc_obs.Tracer.t ->
  ?prof:Hsgc_obs.Profiler.t ->
  ?remote:remote ->
  config -> Hsgc_heap.Heap.t -> sim
(** Set up a collection without running it. [obs]/[prof] as in
    {!collect}; when enabled they must be sized for at least
    [config.n_cores] (checked here). [remote] makes the machine one
    bank of the banked machine (see {!remote}); the heap passed is then
    the bank's view — its fromspace is the home range and its tospace
    the bank's slice — sharing the memory array with the real heap. *)

val step : ?trace:Trace.t -> ?horizon:int -> sim -> unit
(** Advance the coprocessor by one clock cycle — or, when the cycle turns
    out quiescent and skipping is enabled, by as many cycles as it takes
    to reach the next wake-up (statistics credited in bulk, bit-identical
    to naive stepping). [horizon] caps any fast-forward at the given
    cycle: a concurrent driver passes the time of its next mutator
    operation so the coprocessor never jumps past an external event. *)

val halted : sim -> bool
(** All cores have passed the end barrier. *)

val finalize : sim -> gc_stats
(** Commit [free], flip the heap, report. Only valid once [halted]. *)

val now : sim -> int
(** Current clock cycle. *)

val executed_cycles : sim -> int
val skipped_cycles : sim -> int
(** Kernel accounting so far (see {!gc_stats}). *)

val roots_done : sim -> bool
(** The root phase has completed and the start barrier has opened — in
    concurrent mode, the point at which the main processor resumes. *)

val core_next_wake : sim -> core:int -> int option
(** The core's published wake time under the event-driven contract:
    [Some w] — the core next acts, or observes one of its memory
    buffers change status, at cycle [w]; the kernel need not step it
    before then, and [w] never overshoots the first cycle at which one
    of the core's enabled events fires. A core that would act on the
    very next cycle (every poll-state: locks, barrier, scan/free reads)
    publishes [Some (now + 1)]. [None] — the core has no self-scheduled
    event: it is halted, or all four buffers are idle while it waits on
    another agent. Exposed for property tests of the no-overshoot
    contract. *)

val n_cores : sim -> int
(** Core count of the running machine ([config.n_cores]). *)

val skip_enabled : sim -> bool
(** Whether event-driven scheduling is on ([config.skip]); with it off
    every core is due every cycle, so a BSP schedule degenerates to
    leader-only stepping ({!Bsp}). *)

val awake_partition_mask : sim -> owner:int array -> int
(** One bit per partition ([owner.(core) = partition], from a
    {!Hsgc_sim.Partition} plan): bit [p] is set iff some core owned by
    [p] is due at the current cycle ([wake <= now]). Halted cores are
    never due. A pure read — calling it does not advance or perturb the
    machine. *)

val min_wake_outside : sim -> owner:int array -> partition:int -> int
(** Earliest wake time over every core {e not} owned by [partition] —
    [max_int] when all of them have halted (or the partition owns every
    core). While those cores sleep their armed wakes are frozen, so
    until this cycle the machine's due set is confined to [partition]:
    the exclusive-span horizon of the BSP scheduler ({!Bsp}). *)

val sanitizer_findings : sim -> Hsgc_sanitizer.Diag.t list
(** Kept sanitizer findings so far (mid-run peek; the final list is in
    {!gc_stats}). *)

val sanitizer_total : sim -> int

val quiescent : sim -> bool
(** The machine cannot transition until an external agent changes its
    inputs: past the start barrier, every core spinning in the
    scan-lock loop on an empty worklist with all four buffers drained,
    no lock held, no busy bit set, termination not yet detected. The
    banked driver parks such a bank (skips stepping it) until an
    arbitration-step evacuation refills its worklist or the
    termination grant arrives — observationally equivalent to stepping
    it, except the bank's clock does not advance. A pure read. *)

val pieces_outstanding : sim -> int
(** Sub-object mode: total outstanding (handed-out, not yet retired)
    pieces across all split frames — 0 except mid-collection, and 0
    again once halted (the accounting closes). Always 0 when
    [scan_unit] is [None]. *)

(** {2 Main-processor hooks for concurrent collection}

    Both hooks must be called {i between} [step]s. They return [`Wait]
    when a GC core currently holds a conflicting lock — the main
    processor retries on a later cycle (a real stall). Costs returned
    with [`Done] are in main-processor cycles. *)

val mutator_evacuate : sim -> int -> [ `Done of int * int | `Wait ]
(** Read-barrier evacuation: ensure the fromspace object at the given
    address has a tospace copy and return [`Done (tospace_addr, cost)].
    Raises {!Heap_overflow} if tospace is exhausted. *)

val mutator_alloc : sim -> pi:int -> delta:int -> [ `Done of int * int | `Wait ]
(** Allocate a new object {i black} in tospace (its body must only ever
    receive tospace references); the scanning cores step over it.
    Returns [`Done (addr, cost)]. *)

(** {2 Checkpointing}

    A snapshot captures the complete mutable state of a running machine
    — heap image, memory-system transactions, ports, header FIFO, sync
    block, core register files, counters, clock/watchdog/scheduler
    state, fault-injector RNG, tracer and profiler accumulators — as
    named, CRC-guarded sections. Taking one is only meaningful between
    [step]s (any cycle boundary); restoring one onto a freshly
    {!start}ed machine of the same configuration resumes the run
    bit-identically. Incompatible with the sanitizer (its interned
    lockset state is process-local): [save]/[restore] reject machines
    started with [sanitize <> Off]. Also incompatible with
    banked-machine banks (their outbox and termination grant live in
    the {!Banked} driver, outside the config): [save] rejects machines
    started with [?remote]. *)

module Snapshot : sig
  val save : sim -> fingerprint:string -> Hsgc_checkpoint.Checkpoint.writer
  (** Serialize the machine into a checkpoint writer (one section per
      subsystem). The caller may add its own sections (driver metadata)
      before {!Hsgc_checkpoint.Checkpoint.write}. *)

  val config : Hsgc_checkpoint.Checkpoint.snapshot -> config
  (** The configuration the snapshotted machine was started under
      (sanitizer [Off] by construction). Raises
      {!Hsgc_checkpoint.Checkpoint.Corrupt} on a malformed section. *)

  val restore : sim -> Hsgc_checkpoint.Checkpoint.snapshot -> unit
  (** Overwrite a freshly started machine's state in place from a
      snapshot. The machine must have been {!start}ed with the
      snapshot's {!config} and the same heap geometry (use {!config}
      and rebuild the workload heap deterministically); any mismatch or
      malformed section raises {!Hsgc_checkpoint.Checkpoint.Corrupt}. *)
end
