type stall =
  | Scan_lock
  | Free_lock
  | Header_lock
  | Body_load
  | Body_store
  | Header_load
  | Header_store

let all_stalls =
  [ Scan_lock; Free_lock; Header_lock; Body_load; Body_store; Header_load; Header_store ]

let stall_name = function
  | Scan_lock -> "Scan-lock stall"
  | Free_lock -> "Free-lock stall"
  | Header_lock -> "Header-lock stall"
  | Body_load -> "Body load stall"
  | Body_store -> "Body store stall"
  | Header_load -> "Header load stall"
  | Header_store -> "Header store stall"

type t = {
  mutable scan_lock : int;
  mutable free_lock : int;
  mutable header_lock : int;
  mutable body_load : int;
  mutable body_store : int;
  mutable header_load : int;
  mutable header_store : int;
  mutable objects_scanned : int;
  mutable objects_evacuated : int;
  mutable words_copied : int;
  mutable busy_cycles : int;
}

let create () =
  {
    scan_lock = 0;
    free_lock = 0;
    header_lock = 0;
    body_load = 0;
    body_store = 0;
    header_load = 0;
    header_store = 0;
    objects_scanned = 0;
    objects_evacuated = 0;
    words_copied = 0;
    busy_cycles = 0;
  }

let get t = function
  | Scan_lock -> t.scan_lock
  | Free_lock -> t.free_lock
  | Header_lock -> t.header_lock
  | Body_load -> t.body_load
  | Body_store -> t.body_store
  | Header_load -> t.header_load
  | Header_store -> t.header_store

let bump t = function
  | Scan_lock -> t.scan_lock <- t.scan_lock + 1
  | Free_lock -> t.free_lock <- t.free_lock + 1
  | Header_lock -> t.header_lock <- t.header_lock + 1
  | Body_load -> t.body_load <- t.body_load + 1
  | Body_store -> t.body_store <- t.body_store + 1
  | Header_load -> t.header_load <- t.header_load + 1
  | Header_store -> t.header_store <- t.header_store + 1

let bump_n t k n =
  match k with
  | Scan_lock -> t.scan_lock <- t.scan_lock + n
  | Free_lock -> t.free_lock <- t.free_lock + n
  | Header_lock -> t.header_lock <- t.header_lock + n
  | Body_load -> t.body_load <- t.body_load + n
  | Body_store -> t.body_store <- t.body_store + n
  | Header_load -> t.header_load <- t.header_load + n
  | Header_store -> t.header_store <- t.header_store + n

let total_stalls t =
  List.fold_left (fun acc s -> acc + get t s) 0 all_stalls

let add a b =
  {
    scan_lock = a.scan_lock + b.scan_lock;
    free_lock = a.free_lock + b.free_lock;
    header_lock = a.header_lock + b.header_lock;
    body_load = a.body_load + b.body_load;
    body_store = a.body_store + b.body_store;
    header_load = a.header_load + b.header_load;
    header_store = a.header_store + b.header_store;
    objects_scanned = a.objects_scanned + b.objects_scanned;
    objects_evacuated = a.objects_evacuated + b.objects_evacuated;
    words_copied = a.words_copied + b.words_copied;
    busy_cycles = a.busy_cycles + b.busy_cycles;
  }

let scale t f =
  let s x = int_of_float (Float.round (float_of_int x *. f)) in
  {
    scan_lock = s t.scan_lock;
    free_lock = s t.free_lock;
    header_lock = s t.header_lock;
    body_load = s t.body_load;
    body_store = s t.body_store;
    header_load = s t.header_load;
    header_store = s t.header_store;
    objects_scanned = s t.objects_scanned;
    objects_evacuated = s t.objects_evacuated;
    words_copied = s t.words_copied;
    busy_cycles = s t.busy_cycles;
  }

(* Checkpoint codec: all eleven accumulators. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int w t.scan_lock;
  Codec.W.int w t.free_lock;
  Codec.W.int w t.header_lock;
  Codec.W.int w t.body_load;
  Codec.W.int w t.body_store;
  Codec.W.int w t.header_load;
  Codec.W.int w t.header_store;
  Codec.W.int w t.objects_scanned;
  Codec.W.int w t.objects_evacuated;
  Codec.W.int w t.words_copied;
  Codec.W.int w t.busy_cycles

let restore t r =
  t.scan_lock <- Codec.R.int r;
  t.free_lock <- Codec.R.int r;
  t.header_lock <- Codec.R.int r;
  t.body_load <- Codec.R.int r;
  t.body_store <- Codec.R.int r;
  t.header_load <- Codec.R.int r;
  t.header_store <- Codec.R.int r;
  t.objects_scanned <- Codec.R.int r;
  t.objects_evacuated <- Codec.R.int r;
  t.words_copied <- Codec.R.int r;
  t.busy_cycles <- Codec.R.int r
