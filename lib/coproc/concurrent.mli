(** Concurrent collection — the paper's announced next step ("we intend
    to allow the multi-core coprocessor to run concurrently to the main
    processor", Section V-B / VII), built on the cycle-stepped simulator.

    The protocol is Baker-style, adapted to the backlink design:

    - the main processor is stopped only for the {b root phase} (core 1
      evacuates the root set) — that is the entire pause;
    - after the start barrier the mutator resumes and runs interleaved
      with the collecting cores, holding {i tospace references only};
    - a {b read barrier} covers field loads: reading a pointer field of a
      gray object goes through the backlink to the fromspace original,
      and a fromspace value is evacuated on the spot before the mutator
      ever sees it (paying the barrier cost, or waiting out a GC core
      that holds the object's header lock);
    - {b allocation during collection is black}, straight from the
      [free] register: a new object's fields only ever receive tospace
      references, so the scanning cores simply step over its frame;
    - termination is unchanged: a register can only refer to a gray
      object while that object's frame lies between [scan] and [free],
      so once the cores detect termination no fromspace reference is
      reachable by the mutator.

    The mutator itself is a synthetic workload: every [mutator_period]
    coprocessor cycles it performs one operation — a field read (through
    the barrier) or an allocation wired to previously-read values —
    over a register file seeded from the evacuated roots. *)

type config = {
  gc : Coprocessor.config;
  mutator_period : int;  (** coprocessor cycles between mutator operations *)
  alloc_percent : int;  (** share of operations that allocate; rest read *)
  registers : int;  (** mutator register-file size *)
  seed : int;
}

val default_config : ?n_cores:int -> unit -> config
(** 8 GC cores, one mutator operation every 4 cycles, 30 % allocations,
    16 registers. *)

type stats = {
  gc : Coprocessor.gc_stats;
  pause_cycles : int;
      (** cycles the main processor was stopped — the root phase only *)
  barrier_evacuations : int;  (** objects evacuated by the read barrier *)
  mutator_reads : int;
  mutator_allocs : int;
  mutator_busy_cycles : int;  (** main-processor cycles spent on operations *)
  mutator_wait_cycles : int;
      (** operations delayed because a GC core held a conflicting lock *)
  new_objects : (int * int array * int array) list;
      (** (address, pointer fields, data words) of every object the
          mutator allocated during the cycle, as written *)
}

val collect : ?trace:Trace.t -> config -> Hsgc_heap.Heap.t -> stats
(** One concurrent collection cycle. On return the heap is flipped as
    usual and the mutator's register contents have been appended to the
    root set (objects allocated during the cycle stay live). *)

val check_new_objects : Hsgc_heap.Heap.t -> stats -> (unit, string) result
(** Validate that every object allocated during the cycle survived with
    exactly the contents the mutator wrote (headers, data words, and
    pointer fields). *)
