(** The banked variant machine and its differential-parity harness.

    The paper's machine (the {e dense} machine, {!Coprocessor}) gives
    every core one shared synchronization block and one shared memory
    bus: every lock probe and every memory initiation arbitrates
    globally, every cycle. The {e banked} machine explored here trades
    that away: the cores are split into [banks] equal groups, each bank
    owning a {e private} synchronization block (its own scan/free/lock
    registers over its {e home range} — a contiguous, object-aligned
    chunk of the occupied fromspace) and a {e private} memory
    arbitration lane with the full per-cycle bandwidth. Banks step
    {e concurrently} (real domains, {!Hsgc_sim.Domain_pool.Pool}), and
    the only cross-bank interface is the header FIFO: a bank that
    discovers a pointer into a foreign home range does not touch the
    foreign bank's registers — it stores the stale pointer and posts a
    {e remote request} (slot, child) to its outbox. At every superstep
    barrier a serial arbitration step drains the outboxes in
    deterministic order and routes each request through the child's
    home bank ({!Coprocessor.mutator_evacuate} — exactly the gray-push
    protocol the hardware FIFO interface performs), patching the stale
    slot with the forwarding address.

    Each bank evacuates into a private tospace slice sized like its
    home range (so per-bank overflow is impossible); a final serial
    {e stitch} slides the slices together, rewrites every pointer by
    its slice offset and flips the heap, leaving the exact compacted
    tospace layout a collector is expected to produce.

    This machine is deliberately {b not} cycle-identical to the dense
    machine — private banks see no cross-bank contention, and the
    arbitration/stitch steps are modeled serially. What it {e must}
    preserve is the collection {e semantics}, and that contract is
    checked by a first-class harness ({!differential}) rather than
    assumed:

    - the post-collection heap passes {!Hsgc_heap.Verify.check_collection}
      against the pre-collection reachability snapshot;
    - the banked post-heap snapshot equals the dense post-heap snapshot
      ({!Hsgc_heap.Verify.equal_snapshot}: same live set, same
      reachable-object structure);
    - conserved counters match the dense run: [live_objects],
      [live_words], total objects scanned, total words copied;
    - internal arbitration identities hold: every remote request is
      resolved by exactly one slot fixup, and every routed child is
      either a hit on an already-forwarded object or one arbiter
      evacuation.

    Determinism: a superstep gives every non-quiescent bank a fixed
    number of step calls ([quantum]); a bank's evolution depends only
    on its own state and its inbox at the superstep start, and the
    barrier drains outboxes in bank order — so every statistic and the
    final heap are byte-identical for any lane count and across
    repeated runs. *)

val default_quantum : int
(** Step calls per bank per superstep when the caller does not choose
    ([512]). Smaller quanta tighten arbitration latency; larger quanta
    amortize barrier overhead. Any value ≥ 1 yields the same final
    heap; only cycle accounting of the arbitration interleave shifts. *)

(** Per-run statistics of the banked driver, alongside the aggregate
    {!Coprocessor.gc_stats}. *)
type stats = {
  banks : int;
  lanes : int;  (** domains that stepped the banks (≤ banks) *)
  quantum : int;
  supersteps : int;
  arb_rounds : int;  (** barriers that processed ≥ 1 request *)
  remote_requests : int;
      (** bank-crossing pointers diverted to the arbitration interface *)
  remote_hits : int;
      (** routed children already forwarded (cheap FIFO hit) *)
  arb_evacuations : int;
      (** evacuations performed by the arbitration step itself (the
          routed child was still white in its home bank) *)
  root_routes : int;  (** root slots routed in arbitration round 0 *)
  requeues : int;
      (** [`Wait] retries: the home bank held a conflicting lock
          mid-evacuation when the request was routed *)
  arb_cycles : int;
      (** modeled serial cost of all arbitration work (evacuation
          costs, slot fixups, requeues, root routing) *)
  root_cycles : int;  (** the root-routing share of [arb_cycles] *)
  stitch_cycles : int;
      (** modeled serial cost of the final stitch: words slid plus
          pointers and roots rewritten *)
  parked_steps : int;
      (** bank-superstep slots skipped because the bank was quiescent
          (empty worklist, no locks, ports idle) *)
  fixups_applied : int;  (** stale slots patched; equals [remote_requests] *)
  bank_cycles : int array;  (** per-bank simulated clock at halt *)
  max_bank_cycles : int;
      (** the critical path: the aggregate [total_cycles] is
          [max_bank_cycles + arb_cycles + stitch_cycles] *)
  per_bank : Coprocessor.gc_stats array;
}

val collect :
  ?lanes:int ->
  ?quantum:int ->
  banks:int ->
  Coprocessor.config ->
  Hsgc_heap.Heap.t ->
  Coprocessor.gc_stats * stats
(** Run one full collection on the banked machine: cut home ranges,
    start one bank machine per [banks] with [n_cores / banks] cores
    each, route the roots, superstep to global quiescence, stitch and
    flip. The aggregate [gc_stats] counts the whole machine (counter
    sums over banks plus the arbitration step's evacuations;
    [total_cycles] is the modeled critical path).

    [lanes] (default: auto, clamped to [banks]) is the host-domain
    count; it changes wall-clock time only, never a statistic or the
    heap. Raises [Invalid_argument] when [banks] fails
    {!Hsgc_sim.Partition.validate_banked} against [config.n_cores],
    when [quantum < 1], or when the config requests the compiled
    engine or sub-object scanning (neither has a banked variant).
    Raises {!Coprocessor.Heap_overflow} as the dense machine would. *)

(** {2 The differential harness} *)

(** Outcome of the semantic-equivalence check, one field per clause of
    the contract (see the module preamble). *)
type equivalence = {
  eq_verify : (unit, Hsgc_heap.Verify.failure) result;
      (** banked post-heap vs pre-collection snapshot *)
  eq_snapshot : bool;  (** banked post-heap = dense post-heap *)
  eq_live_objects : bool;
  eq_live_words : bool;
  eq_objects_scanned : bool;
  eq_words_copied : bool;
  eq_arbitration : bool;  (** internal request/fixup/route identities *)
}

val equivalent : equivalence -> bool
(** All clauses hold. *)

val pp_equivalence : Format.formatter -> equivalence -> unit

type comparison = {
  c_dense : Coprocessor.gc_stats;
  c_banked : Coprocessor.gc_stats;
  c_bstats : stats;
  c_equiv : equivalence;
}

val differential :
  ?lanes:int ->
  ?quantum:int ->
  banks:int ->
  Coprocessor.config ->
  (unit -> Hsgc_heap.Heap.t) ->
  comparison
(** Build two identical heaps with the thunk, collect one on the dense
    machine and one on the banked machine (same config, modulo the
    banking), and check the full equivalence contract. The thunk must
    be deterministic (build from a fixed seed). *)

val pp_stats : Format.formatter -> stats -> unit
