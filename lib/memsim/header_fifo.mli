(** The on-chip header FIFO (paper Section V-D, last paragraph).

    Gray tospace headers are read by the scanning cores in exactly the
    order they were written by the evacuating cores, so the coprocessor
    buffers them in an on-chip FIFO: as long as the number of gray objects
    does not exceed its capacity, advancing [scan] needs no memory access
    for the header read. On overflow the entry is simply not buffered and
    the later read falls through to memory (this is what makes the paper's
    {i cup} benchmark lose time inside the scan-lock critical section).

    The FIFO stores only the frame address: header {i contents} live in the
    heap; timing is what this module models. *)

type t

val create :
  ?faults:Hsgc_fault.Injector.t ->
  ?hooks:Hsgc_sanitizer.Hooks.t ->
  ?obs:Hsgc_obs.Tracer.t ->
  capacity:int -> unit -> t
(** [faults] (default disabled) may drop individual pushes — the
    transient-fault analogue of a capacity overflow, and just as safe:
    the dropped entry's later read falls through to the memory path.
    [hooks] (default nop) reports buffered pushes and popped entries to
    an attached sanitizer, which mirrors the queue and checks that pops
    arrive in push order. Pushing the null (or a negative) frame address
    raises {!Hsgc_sanitizer.Diag.Violation} with cycle context.
    [obs] (default {!Hsgc_obs.Tracer.disabled}) records overflow
    episodes — streaks of unbuffered pushes — as trace span events. *)

val capacity : t -> int
val length : t -> int

val push : t -> int -> bool
(** [push t addr] appends the gray frame address; [false] (and a recorded
    overflow) if the FIFO is full. *)

val try_pop : t -> int -> bool
(** [try_pop t addr] — if the front entry is [addr], pop it and return
    [true] (FIFO hit: the header read costs no memory access). Otherwise
    [false]: the entry was dropped at push time, the read must go to
    memory. Reads arrive in write order, so a present entry is always at
    the front when requested. *)

val overflows : t -> int
(** Number of pushes rejected so far. *)

val hits : t -> int
val misses : t -> int

val fault_drops : t -> int
(** Pushes dropped by the fault injector (counted separately from
    genuine capacity overflows). *)

val next_wake : t -> int option
(** Always [None]: the FIFO is purely reactive — entries are pushed and
    popped by core actions within the acting core's cycle, so it never
    has a self-scheduled future event under the event-driven kernel's
    contract. *)

val clear : t -> unit
(** Empty the FIFO (between collection cycles); counters are kept. *)

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the ring contents, cursors and counters.
    [restore] raises {!Hsgc_util.Codec.Error} on a capacity mismatch. *)
