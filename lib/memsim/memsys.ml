module Injector = Hsgc_fault.Injector

type config = {
  header_load_latency : int;
  body_load_latency : int;
  store_latency : int;
  bandwidth : int;
  fifo_capacity : int;
  header_cache_entries : int;
}

let default_config =
  {
    header_load_latency = 6;
    body_load_latency = 2;
    store_latency = 1;
    bandwidth = 8;
    fifo_capacity = 32768;
    header_cache_entries = 0;
  }

let with_header_cache c entries =
  if entries < 0 then invalid_arg "Memsys.with_header_cache";
  { c with header_cache_entries = entries }

let with_extra_latency c n =
  {
    c with
    header_load_latency = c.header_load_latency + n;
    body_load_latency = c.body_load_latency + n;
    store_latency = c.store_latency + n;
  }

let validate_config c =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if c.header_load_latency < 1 then
    err "header_load_latency must be >= 1 (got %d)" c.header_load_latency
  else if c.body_load_latency < 1 then
    err "body_load_latency must be >= 1 (got %d)" c.body_load_latency
  else if c.store_latency < 1 then
    err "store_latency must be >= 1 (got %d)" c.store_latency
  else if c.bandwidth < 1 then err "bandwidth must be >= 1 (got %d)" c.bandwidth
  else if c.fifo_capacity < 1 then
    err "fifo_capacity must be >= 1 (got %d)" c.fifo_capacity
  else if c.header_cache_entries < 0 then
    err "header_cache_entries must be >= 0 (got %d)" c.header_cache_entries
  else Ok ()

type t = {
  config : config;
  fifo : Header_fifo.t;
  faults : Injector.t;
  (* Direct-mapped header cache: slot i holds the address cached there
     (0 = empty). Contents live in the heap; only presence is modeled. *)
  header_cache : int array;
  (* Comparator array: header-store addresses still in flight, mapped to
     their commit cycle. Entries are purged lazily. *)
  pending_header_stores : (int, int) Hashtbl.t;
  mutable accepted_this_cycle : int;
  mutable cycle : int;
  mutable loads : int;
  mutable stores : int;
  mutable rejected_bandwidth : int;
  mutable rejected_order : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  (* Next cycle at which committed comparator entries are swept out.
     Purging is otherwise lazy (on lookup), so a workload that stores
     headers to many distinct addresses would grow the table without
     bound. *)
  mutable next_sweep : int;
}

let sweep_period = 1024

let create ?(faults = Injector.disabled) config =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Memsys.create: " ^ msg));
  {
    config;
    fifo = Header_fifo.create ~faults ~capacity:config.fifo_capacity ();
    faults;
    header_cache = Array.make (max 1 config.header_cache_entries) 0;
    pending_header_stores = Hashtbl.create 64;
    accepted_this_cycle = 0;
    cycle = 0;
    loads = 0;
    stores = 0;
    rejected_bandwidth = 0;
    rejected_order = 0;
    cache_hits = 0;
    cache_misses = 0;
    next_sweep = 0;
  }

let fifo t = t.fifo

let begin_cycle t ~now =
  t.cycle <- now;
  t.accepted_this_cycle <- 0;
  if now >= t.next_sweep then begin
    (* Committed entries can never hold a load again; dropping them is
       invisible to the ordering logic and bounds the table size. *)
    Hashtbl.filter_map_inplace
      (fun _ commit -> if commit <= now then None else Some commit)
      t.pending_header_stores;
    t.next_sweep <- now + sweep_period
  end

let store_commit_time t ~addr =
  match Hashtbl.find_opt t.pending_header_stores addr with
  | Some commit when commit > t.cycle -> Some commit
  | Some _ | None -> None

let pending_store_count t = Hashtbl.length t.pending_header_stores

let store_pending t addr =
  match Hashtbl.find_opt t.pending_header_stores addr with
  | None -> false
  | Some commit ->
    if commit > t.cycle then true
    else begin
      Hashtbl.remove t.pending_header_stores addr;
      false
    end

let bandwidth_ok t =
  if t.accepted_this_cycle < t.config.bandwidth then true
  else begin
    t.rejected_bandwidth <- t.rejected_bandwidth + 1;
    false
  end

let cache_slot t addr = addr mod Array.length t.header_cache

let cache_lookup t addr =
  t.config.header_cache_entries > 0 && t.header_cache.(cache_slot t addr) = addr

let cache_fill t addr =
  if t.config.header_cache_entries > 0 then
    t.header_cache.(cache_slot t addr) <- addr

let try_accept_load t ~now ~header ~addr =
  assert (now = t.cycle);
  let cache_hit =
    header && cache_lookup t addr
    && begin
         if Injector.invalidate_cache t.faults then begin
           (* Transient fault: the line is lost and the access replays
              as an ordinary miss (comparator hold, bandwidth, refill). *)
           t.header_cache.(cache_slot t addr) <- 0;
           false
         end
         else true
       end
  in
  if cache_hit then begin
    (* Cache hit: on-chip, no bandwidth, no comparator hold (stores
       update the cache at initiation, so the cached value is current). *)
    t.cache_hits <- t.cache_hits + 1;
    Some (now + 1)
  end
  else if header && store_pending t addr then begin
    t.rejected_order <- t.rejected_order + 1;
    None
  end
  else if not (bandwidth_ok t) then None
  else begin
    t.accepted_this_cycle <- t.accepted_this_cycle + 1;
    t.loads <- t.loads + 1;
    let latency =
      if header then begin
        if t.config.header_cache_entries > 0 then begin
          t.cache_misses <- t.cache_misses + 1;
          cache_fill t addr
        end;
        t.config.header_load_latency
      end
      else t.config.body_load_latency
    in
    Some (now + latency + Injector.extra_delay t.faults)
  end

let try_accept_store t ~now ~header ~addr =
  assert (now = t.cycle);
  if not (bandwidth_ok t) then None
  else begin
    t.accepted_this_cycle <- t.accepted_this_cycle + 1;
    t.stores <- t.stores + 1;
    let commit = now + t.config.store_latency + Injector.extra_delay t.faults in
    if header then begin
      cache_fill t addr;
      (* Keep the later commit if a store to this address is already
         pending (cannot happen under the locking protocol, but the model
         stays safe without it). *)
      let commit =
        match Hashtbl.find_opt t.pending_header_stores addr with
        | Some c when c > commit -> c
        | _ -> commit
      in
      Hashtbl.replace t.pending_header_stores addr commit
    end;
    Some commit
  end

let add_rejected_order t n = t.rejected_order <- t.rejected_order + n

let loads t = t.loads
let stores t = t.stores
let rejected_bandwidth t = t.rejected_bandwidth
let rejected_order t = t.rejected_order

let header_cache_hits t = t.cache_hits
let header_cache_misses t = t.cache_misses

let reset_stats t =
  t.loads <- 0;
  t.stores <- 0;
  t.rejected_bandwidth <- 0;
  t.rejected_order <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0

let reset t =
  reset_stats t;
  Hashtbl.reset t.pending_header_stores;
  Array.fill t.header_cache 0 (Array.length t.header_cache) 0;
  Header_fifo.clear t.fifo;
  t.accepted_this_cycle <- 0;
  t.cycle <- 0;
  t.next_sweep <- 0
