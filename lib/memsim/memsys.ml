module Injector = Hsgc_fault.Injector

type config = {
  header_load_latency : int;
  body_load_latency : int;
  store_latency : int;
  bandwidth : int;
  fifo_capacity : int;
  header_cache_entries : int;
}

let default_config =
  {
    header_load_latency = 6;
    body_load_latency = 2;
    store_latency = 1;
    bandwidth = 8;
    fifo_capacity = 32768;
    header_cache_entries = 0;
  }

let with_header_cache c entries =
  if entries < 0 then invalid_arg "Memsys.with_header_cache";
  { c with header_cache_entries = entries }

let with_extra_latency c n =
  {
    c with
    header_load_latency = c.header_load_latency + n;
    body_load_latency = c.body_load_latency + n;
    store_latency = c.store_latency + n;
  }

let validate_config c =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if c.header_load_latency < 1 then
    err "header_load_latency must be >= 1 (got %d)" c.header_load_latency
  else if c.body_load_latency < 1 then
    err "body_load_latency must be >= 1 (got %d)" c.body_load_latency
  else if c.store_latency < 1 then
    err "store_latency must be >= 1 (got %d)" c.store_latency
  else if c.bandwidth < 1 then err "bandwidth must be >= 1 (got %d)" c.bandwidth
  else if c.fifo_capacity < 1 then
    err "fifo_capacity must be >= 1 (got %d)" c.fifo_capacity
  else if c.header_cache_entries < 0 then
    err "header_cache_entries must be >= 0 (got %d)" c.header_cache_entries
  else Ok ()

type t = {
  config : config;
  fifo : Header_fifo.t;
  faults : Injector.t;
  hooks : Hsgc_sanitizer.Hooks.t;
  lane : int; (* -1 = the dense machine's single shared bus *)
  (* Direct-mapped header cache: slot i holds the address cached there
     (0 = empty). Contents live in the heap; only presence is modeled. *)
  header_cache : int array;
  (* Comparator array: header-store addresses still in flight, paired
     with their commit cycles, in two flat parallel arrays. The live
     prefix is [0, ps_n); committed entries are compacted away on the
     next insertion, so the arrays stay at the store high-water mark
     and the hot path never touches a hash table. *)
  mutable ps_addr : int array;
  mutable ps_commit : int array;
  mutable ps_n : int;
  (* Address-hash presence mask over the comparator array: bit
     [addr land 31] is set for every live entry (conservatively — bits
     of committed entries linger until the next compaction). A clear
     bit proves no pending store to [addr], so the order probes that
     run on every header-load acceptance and every order-held wake
     computation skip the array scan entirely. *)
  mutable ps_mask : int;
  mutable accepted_this_cycle : int;
  mutable cycle : int;
  mutable loads : int;
  mutable stores : int;
  mutable rejected_bandwidth : int;
  mutable rejected_order : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create ?(faults = Injector.disabled) ?hooks
    ?(obs = Hsgc_obs.Tracer.disabled) ?(lane = -1) config =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Memsys.create: " ^ msg));
  let hooks =
    match hooks with Some h -> h | None -> Hsgc_sanitizer.Hooks.create ()
  in
  {
    config;
    fifo =
      Header_fifo.create ~faults ~hooks ~obs ~capacity:config.fifo_capacity ();
    faults;
    hooks;
    lane;
    header_cache = Array.make (max 1 config.header_cache_entries) 0;
    ps_addr = Array.make 64 0;
    ps_commit = Array.make 64 0;
    ps_n = 0;
    ps_mask = 0;
    accepted_this_cycle = 0;
    cycle = 0;
    loads = 0;
    stores = 0;
    rejected_bandwidth = 0;
    rejected_order = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let fifo t = t.fifo
let lane t = t.lane

let begin_cycle t ~now =
  t.cycle <- now;
  t.accepted_this_cycle <- 0

(* Commit cycle of a still-pending header store to [addr], or max_int.
   Committed entries may linger in the array until the next insertion
   compacts them out; the [commit > cycle] guard makes them invisible. *)
let commit_after t ~addr =
  (* A [let rec go] scan here would heap-allocate its closure on every
     call — and this runs once per cycle per port waiting on an
     order-held header load — so the loop is written with unboxed
     refs instead. The mask probe in front skips the scan whenever no
     pending store can hash to [addr]'s bucket. *)
  if t.ps_mask land (1 lsl (addr land 31)) = 0 then max_int
  else begin
    let n = t.ps_n in
    let i = ref 0 and commit = ref max_int in
    while !commit = max_int && !i < n do
      if t.ps_addr.(!i) = addr && t.ps_commit.(!i) > t.cycle then
        commit := t.ps_commit.(!i);
      incr i
    done;
    !commit
  end

let store_commit_time t ~addr =
  let c = commit_after t ~addr in
  if c = max_int then None else Some c

let pending_store_count t =
  let n = ref 0 in
  for i = 0 to t.ps_n - 1 do
    if t.ps_commit.(i) > t.cycle then incr n
  done;
  !n

let store_pending t addr = commit_after t ~addr <> max_int

(* Record a header store in the comparator array. One pass compacts out
   committed entries and finds an existing live entry for [addr] (kept
   with the later commit); the append slot is whatever the compaction
   freed, so the arrays only grow to the high-water mark of
   simultaneously in-flight header stores. *)
let record_header_store t ~addr ~commit =
  let j = ref 0 and found = ref (-1) in
  let mask = ref (1 lsl (addr land 31)) in
  for i = 0 to t.ps_n - 1 do
    let c = t.ps_commit.(i) in
    if c > t.cycle then begin
      t.ps_addr.(!j) <- t.ps_addr.(i);
      t.ps_commit.(!j) <- c;
      if t.ps_addr.(!j) = addr then found := !j;
      mask := !mask lor (1 lsl (t.ps_addr.(!j) land 31));
      incr j
    end
  done;
  t.ps_n <- !j;
  (* Compaction visited every live entry, so this is the exact mask. *)
  t.ps_mask <- !mask;
  if !found >= 0 then begin
    (* Keep the later commit if a store to this address is already
       pending (cannot happen under the locking protocol, but the model
       stays safe without it). *)
    if commit > t.ps_commit.(!found) then t.ps_commit.(!found) <- commit
  end
  else begin
    if t.ps_n = Array.length t.ps_addr then begin
      let cap = 2 * t.ps_n in
      let addrs = Array.make cap 0 and commits = Array.make cap 0 in
      Array.blit t.ps_addr 0 addrs 0 t.ps_n;
      Array.blit t.ps_commit 0 commits 0 t.ps_n;
      t.ps_addr <- addrs;
      t.ps_commit <- commits
    end;
    t.ps_addr.(t.ps_n) <- addr;
    t.ps_commit.(t.ps_n) <- commit;
    t.ps_n <- t.ps_n + 1
  end

let next_wake t ~now =
  let best = ref max_int in
  for i = 0 to t.ps_n - 1 do
    let c = t.ps_commit.(i) in
    if c > now && c < !best then best := c
  done;
  if !best = max_int then None else Some !best

let bandwidth_ok t =
  if t.accepted_this_cycle < t.config.bandwidth then true
  else begin
    t.rejected_bandwidth <- t.rejected_bandwidth + 1;
    false
  end

let cache_slot t addr = addr mod Array.length t.header_cache

let cache_lookup t addr =
  t.config.header_cache_entries > 0 && t.header_cache.(cache_slot t addr) = addr

let cache_fill t addr =
  if t.config.header_cache_entries > 0 then
    t.header_cache.(cache_slot t addr) <- addr

(* Sentinel-returning acceptance fast paths: [-1] = rejected this cycle.
   The option-returning [try_accept_*] wrappers below exist for callers
   that prefer the typed interface; the per-cycle port retry loop uses
   these to stay allocation-free. *)

let clock_check t ~now ~what =
  if now <> t.cycle then
    Hsgc_sanitizer.Diag.fail ~cycle:t.cycle
      Hsgc_sanitizer.Diag.Mem_protocol
      (Printf.sprintf
         "%s offered at cycle %d but begin_cycle was last called at %d" what
         now t.cycle)

let accept_load t ~now ~header ~addr =
  clock_check t ~now ~what:"load";
  let cache_hit =
    header && cache_lookup t addr
    && begin
         if Injector.invalidate_cache t.faults then begin
           (* Transient fault: the line is lost and the access replays
              as an ordinary miss (comparator hold, bandwidth, refill). *)
           t.header_cache.(cache_slot t addr) <- 0;
           false
         end
         else true
       end
  in
  if cache_hit then begin
    (* Cache hit: on-chip, no bandwidth, no comparator hold (stores
       update the cache at initiation, so the cached value is current). *)
    t.cache_hits <- t.cache_hits + 1;
    now + 1
  end
  else if header && store_pending t addr then begin
    t.rejected_order <- t.rejected_order + 1;
    -1
  end
  else if not (bandwidth_ok t) then -1
  else begin
    t.accepted_this_cycle <- t.accepted_this_cycle + 1;
    t.loads <- t.loads + 1;
    let latency =
      if header then begin
        if t.config.header_cache_entries > 0 then begin
          t.cache_misses <- t.cache_misses + 1;
          cache_fill t addr
        end;
        t.config.header_load_latency
      end
      else t.config.body_load_latency
    in
    now + latency + Injector.extra_delay t.faults
  end

let accept_store t ~now ~header ~addr =
  clock_check t ~now ~what:"store";
  if not (bandwidth_ok t) then -1
  else begin
    t.accepted_this_cycle <- t.accepted_this_cycle + 1;
    t.stores <- t.stores + 1;
    let commit = now + t.config.store_latency + Injector.extra_delay t.faults in
    if header then begin
      cache_fill t addr;
      record_header_store t ~addr ~commit;
      (* The comparator may already have held a later commit for this
         address; report the one that actually orders future loads. *)
      commit_after t ~addr
    end
    else commit
  end

let try_accept_load t ~now ~header ~addr =
  let c = accept_load t ~now ~header ~addr in
  if c < 0 then None else Some c

let try_accept_store t ~now ~header ~addr =
  let c = accept_store t ~now ~header ~addr in
  if c < 0 then None else Some c

let add_rejected_order t n = t.rejected_order <- t.rejected_order + n

let loads t = t.loads
let stores t = t.stores
let rejected_bandwidth t = t.rejected_bandwidth
let rejected_order t = t.rejected_order

let header_cache_hits t = t.cache_hits
let header_cache_misses t = t.cache_misses

let reset_stats t =
  t.loads <- 0;
  t.stores <- 0;
  t.rejected_bandwidth <- 0;
  t.rejected_order <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0

let reset t =
  reset_stats t;
  t.ps_n <- 0;
  t.ps_mask <- 0;
  Array.fill t.header_cache 0 (Array.length t.header_cache) 0;
  Header_fifo.clear t.fifo;
  t.accepted_this_cycle <- 0;
  t.cycle <- 0

(* Checkpoint codec: comparator array (live prefix only — committed
   entries past [ps_n] are garbage by construction), per-cycle
   acceptance state, the header cache, and the access counters. The
   FIFO is a separately-owned component and is checkpointed as its own
   section by the simulator. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int w t.ps_n;
  for i = 0 to t.ps_n - 1 do
    Codec.W.int w t.ps_addr.(i);
    Codec.W.int w t.ps_commit.(i)
  done;
  Codec.W.int w t.accepted_this_cycle;
  Codec.W.int w t.cycle;
  Codec.W.int_array w t.header_cache;
  Codec.W.int w t.loads;
  Codec.W.int w t.stores;
  Codec.W.int w t.rejected_bandwidth;
  Codec.W.int w t.rejected_order;
  Codec.W.int w t.cache_hits;
  Codec.W.int w t.cache_misses

let restore t r =
  let n = Codec.R.int r in
  if n < 0 then raise (Codec.Error "negative comparator-array occupancy");
  if n > Array.length t.ps_addr then begin
    t.ps_addr <- Array.make n 0;
    t.ps_commit <- Array.make n 0
  end;
  t.ps_mask <- 0;
  for i = 0 to n - 1 do
    t.ps_addr.(i) <- Codec.R.int r;
    t.ps_commit.(i) <- Codec.R.int r;
    t.ps_mask <- t.ps_mask lor (1 lsl (t.ps_addr.(i) land 31))
  done;
  t.ps_n <- n;
  t.accepted_this_cycle <- Codec.R.int r;
  t.cycle <- Codec.R.int r;
  Codec.R.int_array_into r t.header_cache ~what:"header cache";
  t.loads <- Codec.R.int r;
  t.stores <- Codec.R.int r;
  t.rejected_bandwidth <- Codec.R.int r;
  t.rejected_order <- Codec.R.int r;
  t.cache_hits <- Codec.R.int r;
  t.cache_misses <- Codec.R.int r
