(** The memory interface and access scheduler (paper Section V-D).

    A split-transaction pipelined memory: it accepts up to [bandwidth] new
    transactions per clock cycle; a load completes [load_latency] cycles
    after acceptance, a store [store_latency] cycles after. Transactions
    are initiated from the per-core port buffers ({!Port}); a rejected
    initiation is retried on subsequent cycles.

    Ordering rules, straight from the paper:
    - body accesses need no ordering (each body word is written once and
      read once, by a single core);
    - header loads are held back while a header store to the same address
      is pending (the "comparator array");
    - write-after-write ordering needs no hardware because the locking
      protocol guarantees a single writer per header.

    The scheduler also owns the header FIFO: gray-header stores push their
    frame address; the scan loop's header reads consult the FIFO first. *)

type config = {
  header_load_latency : int;
      (** cycles from acceptance to data available; headers show no
          spatial locality, so they pay a full random access *)
  body_load_latency : int;
      (** body reads are sequential (open-row hits), hence faster *)
  store_latency : int;  (** cycles from acceptance to commit (posted) *)
  bandwidth : int;  (** transactions accepted per cycle *)
  fifo_capacity : int;  (** header FIFO entries *)
  header_cache_entries : int;
      (** paper Section VII future work: an on-chip direct-mapped cache
          for header accesses. 0 (the default, matching the published
          prototype) disables it. Header stores update the cache at
          initiation, so a cached header is always current and a hit
          bypasses both the memory latency and the comparator-array
          hold. *)
}

val default_config : config
(** Prototype-like: fast memory relative to the 25 MHz cores (header
    loads 6 cycles, body loads 2, stores 1, bandwidth 8/cycle, FIFO
    32768). *)

val with_extra_latency : config -> int -> config
(** [with_extra_latency c n] adds [n] cycles to every access — the
    paper's Figure 6 experiment uses [n = 20]. *)

val with_header_cache : config -> int -> config
(** Enable the future-work header cache with the given entry count. *)

val validate_config : config -> (unit, string) result
(** Reject configurations the model cannot simulate: any latency below 1,
    [bandwidth < 1], [fifo_capacity < 1], negative
    [header_cache_entries]. The error is a human-readable message
    suitable for a command-line diagnostic. *)

(* The record is exposed for the same reason as {!Port.t} and
   {!Hsgc_hwsync.Sync_block.t}: without flambda every accessor is a real
   cross-module call, and the stepping engines probe the per-cycle
   acceptance budget and the comparator mask several times per simulated
   cycle. Read the fields freely; mutate only through the operations
   below, which maintain the counters and the ordering model. *)
type t = {
  config : config;
  fifo : Header_fifo.t;
  faults : Hsgc_fault.Injector.t;
  hooks : Hsgc_sanitizer.Hooks.t;
  lane : int;
      (** which private memory-arbitration lane this scheduler is, in a
          banked machine ({!Hsgc_coproc.Banked}): each bank's cores
          arbitrate a lane of their own (full [bandwidth] per cycle,
          invisible to other banks). [-1] (the default) is the paper's
          dense machine — one bus shared by every core. A label only:
          it stamps reports; the scheduling model is unchanged. *)
  header_cache : int array;  (** slot -> cached address (0 = empty) *)
  mutable ps_addr : int array;
      (** comparator array: pending header-store addresses, live prefix
          [0, ps_n) *)
  mutable ps_commit : int array;  (** their commit cycles, parallel *)
  mutable ps_n : int;
  mutable ps_mask : int;
      (** presence mask over [ps_addr land 31]: a clear bit proves no
          pending store hashes there, skipping the scan *)
  mutable accepted_this_cycle : int;
  mutable cycle : int;
  mutable loads : int;
  mutable stores : int;
  mutable rejected_bandwidth : int;
  mutable rejected_order : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

val create :
  ?faults:Hsgc_fault.Injector.t -> ?hooks:Hsgc_sanitizer.Hooks.t ->
  ?obs:Hsgc_obs.Tracer.t ->
  ?lane:int ->
  config -> t
(** Raises [Invalid_argument] when {!validate_config} rejects the
    config. [faults] (default disabled) injects delay-class
    perturbations: extra completion latency on accepted transactions,
    header-cache line invalidations, and header-FIFO push drops (the
    injector is shared with the FIFO created here). [hooks] (default
    nop) is shared with the header FIFO created here; an acceptance
    offered outside the [begin_cycle] contract raises
    {!Hsgc_sanitizer.Diag.Violation} instead of a bare assertion.
    [obs] (default disabled) is handed to the header FIFO for
    overflow-episode tracing. *)

val fifo : t -> Header_fifo.t
val lane : t -> int

val begin_cycle : t -> now:int -> unit
(** Reset the per-cycle acceptance budget. Must be called once per
    simulated cycle (or once per fast-forward target cycle) before any
    acceptance attempt. *)

val try_accept_load : t -> now:int -> header:bool -> addr:int -> int option
(** Attempt to start a load; [Some c] is the completion cycle. [None] when
    the cycle's bandwidth is exhausted or (for header loads) a header
    store to [addr] is still pending. *)

val try_accept_store : t -> now:int -> header:bool -> addr:int -> int option
(** Attempt to start a store; [Some c] is the commit cycle. Header stores
    are tracked for the comparator array until they commit. *)

val accept_load : t -> now:int -> header:bool -> addr:int -> int
(** Sentinel variant of {!try_accept_load} for the per-cycle hot path:
    the completion cycle, or [-1] when rejected. Allocation-free. *)

val accept_store : t -> now:int -> header:bool -> addr:int -> int
(** Sentinel variant of {!try_accept_store}: the commit cycle, or [-1]
    when rejected. Allocation-free. *)

val store_commit_time : t -> addr:int -> int option
(** Commit cycle of a still-pending header store to [addr], if any.
    A pure peek: used to compute the wake-up time of an order-held
    header load. *)

val commit_after : t -> addr:int -> int
(** Sentinel variant of {!store_commit_time}: the commit cycle, or
    [max_int] when no store to [addr] is pending. Allocation-free. *)

val pending_store_count : t -> int
(** Number of still-pending (uncommitted) entries in the comparator
    array. Committed entries are compacted away on the next header-store
    insertion and are never visible here. Exposed for the table-growth
    regression test. *)

val next_wake : t -> now:int -> int option
(** Earliest pending header-store commit strictly after [now], if any —
    the memory system's self-scheduled event for the event-driven
    kernel. Loads in flight are tracked by the issuing {!Port}, not
    here. *)

val add_rejected_order : t -> int -> unit
(** Bulk-credit [n] comparator-array rejections. The idle-cycle-skipping
    kernel uses this to account the rejections that naive stepping would
    have recorded once per skipped cycle for each order-held load. *)

(** {2 Statistics} *)

val loads : t -> int
val stores : t -> int
val rejected_bandwidth : t -> int
(** Initiations rejected because the cycle's budget was exhausted. *)

val rejected_order : t -> int
(** Header loads held by the comparator array. *)

val header_cache_hits : t -> int
val header_cache_misses : t -> int

val reset_stats : t -> unit
(** Zero the counters only. Cached headers, pending comparator entries and
    the header FIFO are left as-is. *)

val reset : t -> unit
(** Full reset for reuse across independent runs: [reset_stats] plus the
    header cache, the comparator array, the per-cycle acceptance budget,
    the internal clock and the header FIFO. *)

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the comparator array, per-cycle acceptance
    state, header cache and access counters. The header FIFO is owned
    separately and has its own section. *)
