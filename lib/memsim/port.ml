type kind = Header_load | Header_store | Body_load | Body_store

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Header_load -> "header-load"
    | Header_store -> "header-store"
    | Body_load -> "body-load"
    | Body_store -> "body-store")

let is_load = function
  | Header_load | Body_load -> true
  | Header_store | Body_store -> false

let is_header = function
  | Header_load | Header_store -> true
  | Body_load | Body_store -> false

(* Status lives in three unboxed fields rather than a variant: the
   machine accepts a transaction roughly every other cycle per busy
   core, and an [In_flight {addr; done_at}] block per acceptance was a
   measurable share of the hot loop's minor allocation. [st] encodes
   the constructor; [addr]/[done_at] are only meaningful in the states
   noted. *)
let st_idle = 0
let st_waiting = 1 (* addr: deposited, not yet accepted *)
let st_in_flight = 2 (* addr, done_at *)
let st_ready = 3 (* loads only: data arrived, awaiting consumption *)

(* [events] is a transition counter shared with the owning simulator (and
   typically with every other buffer of the machine): any status change
   bumps it. The simulation kernel zeroes it at the start of each cycle;
   a cycle that ends with it still at zero had no buffer activity — one
   of the requirements for idle-cycle skipping. *)
type t = {
  kind : kind;
  mutable st : int;
  mutable addr : int;
  mutable done_at : int;
  mutable issued_at : int; (* deposit cycle of the transfer in [addr] *)
  events : int ref;
  faults : Hsgc_fault.Injector.t;
  hooks : Hsgc_sanitizer.Hooks.t;
  obs : Hsgc_obs.Tracer.t;
  owner : int; (* owning core index, -1 when anonymous *)
}

(* Latency-histogram kind ids, resolved once at creation. *)
let obs_kind = function
  | Header_load -> Hsgc_obs.Tracer.mem_header_load
  | Header_store -> Hsgc_obs.Tracer.mem_header_store
  | Body_load -> Hsgc_obs.Tracer.mem_body_load
  | Body_store -> Hsgc_obs.Tracer.mem_body_store

let create ?events ?(faults = Hsgc_fault.Injector.disabled) ?hooks
    ?(obs = Hsgc_obs.Tracer.disabled) ?(owner = -1) kind =
  let hooks =
    match hooks with Some h -> h | None -> Hsgc_sanitizer.Hooks.create ()
  in
  {
    kind;
    st = st_idle;
    addr = 0;
    done_at = 0;
    issued_at = 0;
    events = (match events with Some e -> e | None -> ref 0);
    faults;
    hooks;
    obs;
    owner;
  }

let misuse t detail =
  Hsgc_sanitizer.Diag.fail
    ~cycle:t.hooks.Hsgc_sanitizer.Hooks.cycle
    ~core:t.owner ~addr:t.addr Hsgc_sanitizer.Diag.Port_protocol
    (Format.asprintf "%a buffer %s" pp_kind t.kind detail)

let kind t = t.kind
let is_idle t = t.st = st_idle

let try_accept t mem ~now ~addr =
  (* A spurious-busy fault rejects the attempt before it reaches the
     memory interface — the buffer stays in its normal retry loop, so
     the perturbation is pure timing. *)
  let done_at =
    if Hsgc_fault.Injector.spurious_busy t.faults then -1
    else if is_load t.kind then
      Memsys.accept_load mem ~now ~header:(is_header t.kind) ~addr
    else Memsys.accept_store mem ~now ~header:(is_header t.kind) ~addr
  in
  if done_at >= 0 then begin
    t.st <- st_in_flight;
    t.addr <- addr;
    t.done_at <- done_at;
    incr t.events
  end
  else begin
    t.st <- st_waiting;
    t.addr <- addr
  end

let issue t mem ~now ~addr =
  if t.st = st_idle then begin
    (* Idle -> Waiting is a transition too, even when memory rejects. *)
    incr t.events;
    t.issued_at <- now;
    try_accept t mem ~now ~addr;
    true
  end
  else false

let issue_immediate t =
  if not (is_load t.kind) then
    misuse t "issue_immediate on a store buffer";
  if t.st = st_idle then begin
    t.st <- st_ready;
    incr t.events
  end
  else misuse t "issue_immediate while busy"

let tick t mem ~now =
  let st = t.st in
  if st = st_waiting then try_accept t mem ~now ~addr:t.addr
  else if st = st_in_flight && t.done_at <= now then begin
    t.st <- (if is_load t.kind then st_ready else st_idle);
    (* Memory-wait observation: deposit-to-completion, measured against
       [done_at] rather than [now] so the value is identical whether the
       owning core observed the completion promptly (naive stepping) or
       after waking from an event-driven sleep. *)
    if t.obs.Hsgc_obs.Tracer.on then
      Hsgc_obs.Tracer.mem_done t.obs ~kind:(obs_kind t.kind)
        ~latency:(t.done_at - t.issued_at);
    incr t.events
  end

let load_ready t = t.st = st_ready

let consume t =
  if t.st = st_ready then begin
    t.st <- st_idle;
    incr t.events
  end
  else misuse t "consumed with no data ready"

let wake_after t mem ~now =
  let st = t.st in
  if st = st_idle || st = st_ready then max_int
  else if st = st_in_flight then
    if t.done_at > now + 1 then t.done_at else now + 1
  else if
    t.kind = Header_load && not (Hsgc_fault.Injector.retry_draws t.faults)
  then begin
    (* An order-held header load sleeps until the blocking store
       commits; anything else might be accepted as soon as next cycle's
       bandwidth budget opens. When spurious-busy faults are armed,
       every retry cycle draws from the fault stream, so even the
       order-held wait must replay cycle by cycle. *)
    let commit = Memsys.commit_after mem ~addr:t.addr in
    if commit = max_int then now + 1 else commit
  end
  else now + 1

let retry_wake t ~now = if t.st = st_waiting then now + 1 else max_int

let polls t = t.st = st_waiting || t.st = st_ready

let in_flight_done t = if t.st = st_in_flight then t.done_at else min_int

let order_held t mem =
  t.st = st_waiting && t.kind = Header_load
  && Memsys.commit_after mem ~addr:t.addr <> max_int

let next_wake t mem ~now =
  let w = wake_after t mem ~now in
  if w = max_int then None else Some w

let busy_addr t = if t.st = st_idle || t.st = st_ready then None else Some t.addr

let describe t =
  if t.st = st_idle then "idle"
  else if t.st = st_ready then "ready"
  else if t.st = st_waiting then Printf.sprintf "waiting addr=%d" t.addr
  else Printf.sprintf "in-flight addr=%d done@%d" t.addr t.done_at

(* Checkpoint codec: the four status fields are the port's entire
   mutable state; [events]/[faults]/[hooks]/[obs] are wiring owned by
   the simulator and restored at its level. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int w t.st;
  Codec.W.int w t.addr;
  Codec.W.int w t.done_at;
  Codec.W.int w t.issued_at

let restore t r =
  let st = Codec.R.int r in
  if st < st_idle || st > st_ready then
    raise (Codec.Error (Printf.sprintf "port status %d out of range" st));
  t.st <- st;
  t.addr <- Codec.R.int r;
  t.done_at <- Codec.R.int r;
  t.issued_at <- Codec.R.int r
