type kind = Header_load | Header_store | Body_load | Body_store

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Header_load -> "header-load"
    | Header_store -> "header-store"
    | Body_load -> "body-load"
    | Body_store -> "body-store")

let is_load = function
  | Header_load | Body_load -> true
  | Header_store | Body_store -> false

let is_header = function
  | Header_load | Header_store -> true
  | Body_load | Body_store -> false

type status =
  | Idle
  | Waiting of int  (* deposited with this address, not yet accepted *)
  | In_flight of { addr : int; done_at : int }
  | Ready  (* loads only: data arrived, awaiting consumption *)

type t = { kind : kind; mutable status : status }

let create kind = { kind; status = Idle }

let kind t = t.kind

let is_idle t = match t.status with Idle -> true | Waiting _ | In_flight _ | Ready -> false

let try_accept t mem ~now ~addr =
  let accepted =
    if is_load t.kind then Memsys.try_accept_load mem ~now ~header:(is_header t.kind) ~addr
    else Memsys.try_accept_store mem ~now ~header:(is_header t.kind) ~addr
  in
  match accepted with
  | Some done_at -> t.status <- In_flight { addr; done_at }
  | None -> t.status <- Waiting addr

let issue t mem ~now ~addr =
  match t.status with
  | Idle ->
    try_accept t mem ~now ~addr;
    true
  | Waiting _ | In_flight _ | Ready -> false

let issue_immediate t =
  assert (is_load t.kind);
  match t.status with
  | Idle -> t.status <- Ready
  | Waiting _ | In_flight _ | Ready -> invalid_arg "Port.issue_immediate: busy"

let tick t mem ~now =
  match t.status with
  | Idle | Ready -> ()
  | Waiting addr -> try_accept t mem ~now ~addr
  | In_flight { addr = _; done_at } ->
    if done_at <= now then t.status <- (if is_load t.kind then Ready else Idle)

let load_ready t = match t.status with Ready -> true | Idle | Waiting _ | In_flight _ -> false

let consume t =
  match t.status with
  | Ready -> t.status <- Idle
  | Idle | Waiting _ | In_flight _ -> invalid_arg "Port.consume: no data ready"

let busy_addr t =
  match t.status with
  | Idle | Ready -> None
  | Waiting addr -> Some addr
  | In_flight { addr; _ } -> Some addr
