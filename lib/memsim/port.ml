type kind = Header_load | Header_store | Body_load | Body_store

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Header_load -> "header-load"
    | Header_store -> "header-store"
    | Body_load -> "body-load"
    | Body_store -> "body-store")

let is_load = function
  | Header_load | Body_load -> true
  | Header_store | Body_store -> false

let is_header = function
  | Header_load | Header_store -> true
  | Body_load | Body_store -> false

type status =
  | Idle
  | Waiting of int  (* deposited with this address, not yet accepted *)
  | In_flight of { addr : int; done_at : int }
  | Ready  (* loads only: data arrived, awaiting consumption *)

(* [events] is a transition counter shared with the owning simulator (and
   typically with every other buffer of the machine): any status change
   bumps it. The simulation kernel zeroes it at the start of each cycle;
   a cycle that ends with it still at zero had no buffer activity — one
   of the requirements for idle-cycle skipping. *)
type t = {
  kind : kind;
  mutable status : status;
  events : int ref;
  faults : Hsgc_fault.Injector.t;
}

let create ?events ?(faults = Hsgc_fault.Injector.disabled) kind =
  {
    kind;
    status = Idle;
    events = (match events with Some e -> e | None -> ref 0);
    faults;
  }

let kind t = t.kind

let is_idle t = match t.status with Idle -> true | Waiting _ | In_flight _ | Ready -> false

let try_accept t mem ~now ~addr =
  let accepted =
    (* A spurious-busy fault rejects the attempt before it reaches the
       memory interface — the buffer stays in its normal retry loop, so
       the perturbation is pure timing. *)
    if Hsgc_fault.Injector.spurious_busy t.faults then None
    else if is_load t.kind then
      Memsys.try_accept_load mem ~now ~header:(is_header t.kind) ~addr
    else Memsys.try_accept_store mem ~now ~header:(is_header t.kind) ~addr
  in
  match accepted with
  | Some done_at ->
    t.status <- In_flight { addr; done_at };
    incr t.events
  | None -> t.status <- Waiting addr

let issue t mem ~now ~addr =
  match t.status with
  | Idle ->
    (* Idle -> Waiting is a transition too, even when memory rejects. *)
    incr t.events;
    try_accept t mem ~now ~addr;
    true
  | Waiting _ | In_flight _ | Ready -> false

let issue_immediate t =
  assert (is_load t.kind);
  match t.status with
  | Idle ->
    t.status <- Ready;
    incr t.events
  | Waiting _ | In_flight _ | Ready -> invalid_arg "Port.issue_immediate: busy"

let tick t mem ~now =
  match t.status with
  | Idle | Ready -> ()
  | Waiting addr -> try_accept t mem ~now ~addr
  | In_flight { addr = _; done_at } ->
    if done_at <= now then begin
      t.status <- (if is_load t.kind then Ready else Idle);
      incr t.events
    end

let load_ready t = match t.status with Ready -> true | Idle | Waiting _ | In_flight _ -> false

let consume t =
  match t.status with
  | Ready ->
    t.status <- Idle;
    incr t.events
  | Idle | Waiting _ | In_flight _ -> invalid_arg "Port.consume: no data ready"

let wake_after t mem ~now =
  match t.status with
  | Idle | Ready -> max_int
  | In_flight { done_at; _ } -> if done_at > now + 1 then done_at else now + 1
  | Waiting addr ->
    if t.kind = Header_load then
      (* An order-held header load sleeps until the blocking store
         commits; anything else might be accepted as soon as next cycle's
         bandwidth budget opens. *)
      (match Memsys.store_commit_time mem ~addr with
      | Some commit -> commit
      | None -> now + 1)
    else now + 1

let order_held t mem =
  match t.status with
  | Waiting addr when t.kind = Header_load -> (
    match Memsys.store_commit_time mem ~addr with Some _ -> true | None -> false)
  | _ -> false

let busy_addr t =
  match t.status with
  | Idle | Ready -> None
  | Waiting addr -> Some addr
  | In_flight { addr; _ } -> Some addr

let describe t =
  match t.status with
  | Idle -> "idle"
  | Ready -> "ready"
  | Waiting addr -> Printf.sprintf "waiting addr=%d" addr
  | In_flight { addr; done_at } ->
    Printf.sprintf "in-flight addr=%d done@%d" addr done_at
