(** A per-core memory buffer (paper Section V-D).

    Each coprocessor core owns four single-entry buffers: header load,
    header store, body load, body store. A core initiates a transfer by
    depositing it in a buffer and continues executing; it only stalls when
    it re-uses a store buffer whose previous store has not completed, or
    consumes a load buffer whose data has not arrived. The buffer retries
    memory acceptance on its own every cycle (split transactions). *)

type kind = Header_load | Header_store | Body_load | Body_store

val pp_kind : Format.formatter -> kind -> unit
val is_load : kind -> bool
val is_header : kind -> bool

(** Status encoding. The machine polls every buffer every cycle, and
    without flambda an accessor like [val st : t -> int] is a real
    cross-module call on that path — so the status fields are exposed
    for direct reads. [st] encodes the state; [addr] and [done_at] are
    only meaningful in the states noted. Treat every field as read-only
    outside this module: all transitions go through {!issue}, {!tick},
    {!consume} and friends, which keep the shared [events] transition
    counter honest. *)

val st_idle : int
(** Empty; a new transfer may be deposited. *)

val st_waiting : int
(** Deposited ([addr]) but not yet accepted by memory; retried by
    {!tick} every cycle. *)

val st_in_flight : int
(** Accepted; completes at [done_at]. *)

val st_ready : int
(** Loads only: data arrived, awaiting {!consume}. *)

type t = {
  kind : kind;
  mutable st : int;
  mutable addr : int;
  mutable done_at : int;
  mutable issued_at : int;
      (** deposit cycle of the transfer currently in [addr] — the start
          of the memory-wait interval the tracer's latency histograms
          measure *)
  events : int ref;
  faults : Hsgc_fault.Injector.t;
  hooks : Hsgc_sanitizer.Hooks.t;
  obs : Hsgc_obs.Tracer.t;
  owner : int;  (** owning core index, [-1] when anonymous *)
}

val create :
  ?events:int ref ->
  ?faults:Hsgc_fault.Injector.t ->
  ?hooks:Hsgc_sanitizer.Hooks.t ->
  ?obs:Hsgc_obs.Tracer.t ->
  ?owner:int ->
  kind -> t
(** [events], when given, is a transition counter shared with the owning
    simulator: every status change of this buffer increments it. The
    simulator zeroes it at the top of each cycle; a cycle that leaves it
    at zero had no buffer activity anywhere — one of the requirements
    for idle-cycle skipping. Defaults to a private counter.

    [faults] (default disabled) may reject individual memory-acceptance
    attempts as spuriously busy; the buffer stays in its ordinary retry
    loop, so the perturbation is timing-only.

    [hooks] and [owner] give buffer-protocol diagnostics their context:
    misuse ({!issue_immediate} on a busy or store buffer, {!consume}
    with no data) raises {!Hsgc_sanitizer.Diag.Violation} carrying the
    owning core and the cycle stamped in the shared hook record.

    [obs] (default {!Hsgc_obs.Tracer.disabled}) receives a
    deposit-to-completion latency observation per finished transfer,
    into the latency histogram matching this buffer's kind. *)

val kind : t -> kind

val is_idle : t -> bool
(** A new transfer may be deposited. For a load buffer this also requires
    that the previous result has been consumed. *)

val issue : t -> Memsys.t -> now:int -> addr:int -> bool
(** Deposit a transfer. Returns [false] (nothing happens) when the buffer
    is occupied — the caller stalls. Acceptance by memory is attempted
    immediately and retried by [tick] on later cycles. *)

val issue_immediate : t -> unit
(** Loads only: mark the buffer [Ready] without any memory transaction —
    used for header-FIFO hits, which bypass memory entirely. The buffer
    must be idle. *)

val tick : t -> Memsys.t -> now:int -> unit
(** Advance the buffer one cycle: retry memory acceptance, mark completed
    loads ready, release completed stores. Call once per cycle, in core
    priority order, before stepping the cores. *)

val load_ready : t -> bool
(** Data has arrived and can be consumed this cycle. *)

val consume : t -> unit
(** Consume a ready load result, freeing the buffer. *)

val busy_addr : t -> int option
(** Address of the in-progress transfer, if any (for tracing). *)

val describe : t -> string
(** One-line human-readable status ("idle", "waiting addr=…",
    "in-flight addr=… done@…", "ready") for stall-diagnosis dumps. *)

(** {2 Idle-cycle skipping support}

    The simulation kernel fast-forwards over quiescent cycles. A cycle
    is quiescent only if no buffer changed status during it — recorded
    by the shared [events] counter (a deposit, an acceptance, a load
    completion/consumption or a store release bumps it; a [Waiting]
    buffer whose retry was rejected again does {e not}). The kernel then
    needs each sleeping buffer's earliest possible wake-up
    ({!wake_after}) and, for exact statistics, which buffers are
    comparator-held header loads ({!order_held}) — those accrue one
    ordering rejection per skipped cycle. *)

val wake_after : t -> Memsys.t -> now:int -> int
(** Earliest future cycle at which this buffer can change status, or
    [max_int] when it is idle/ready (nothing pending). An in-flight
    transfer wakes at its completion cycle; a header load held by a
    pending header store wakes when that store commits; any other
    waiting buffer may be accepted next cycle, so the estimate is
    conservative ([now + 1]) and prevents skipping. When spurious-busy
    faults are armed ({!Hsgc_fault.Injector.retry_draws}), waiting
    buffers always report [now + 1]: each acceptance retry draws from
    the fault stream, so no retry cycle may be skipped. Runs on the
    kernel's skip path every quiescent cycle, hence the unboxed
    sentinel convention. *)

val next_wake : t -> Memsys.t -> now:int -> int option
(** {!wake_after} under the event-driven kernel's [next_wake] contract:
    [None] means the buffer has no self-scheduled event (idle or ready —
    it only changes state when the owning core acts on it). The
    published wake never overshoots an enabled event; it may be
    conservative (early). *)

val retry_wake : t -> now:int -> int
(** [now + 1] when the buffer is [Waiting] (its per-cycle acceptance
    retries touch shared state — the bandwidth budget, the ordering
    counters, possibly the fault stream — so its owning core must stay
    awake to replay them), [max_int] otherwise. A core sleeping on one
    buffer must take the minimum with the other three buffers'
    [retry_wake]; their {e in-flight} completions, by contrast, only
    flip local status and may be slept through. *)

val polls : t -> bool
(** The buffer is in a polled state ([Waiting] or [Ready]) whose next
    transition is not schedulable from [done_at] alone. *)

val in_flight_done : t -> int
(** Completion cycle of an in-flight transfer, [min_int] otherwise —
    lets the flush state compute the {e latest} completion across its
    buffers with a plain [max]. *)

val order_held : t -> Memsys.t -> bool
(** The buffer is a header load currently held by the comparator array
    (a header store to the same address is still pending). *)

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
(** Checkpoint the buffer's status fields (state, address, completion
    and deposit cycles). *)

val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Reinstate encoded status fields in place. *)
