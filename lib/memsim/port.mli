(** A per-core memory buffer (paper Section V-D).

    Each coprocessor core owns four single-entry buffers: header load,
    header store, body load, body store. A core initiates a transfer by
    depositing it in a buffer and continues executing; it only stalls when
    it re-uses a store buffer whose previous store has not completed, or
    consumes a load buffer whose data has not arrived. The buffer retries
    memory acceptance on its own every cycle (split transactions). *)

type kind = Header_load | Header_store | Body_load | Body_store

val pp_kind : Format.formatter -> kind -> unit
val is_load : kind -> bool
val is_header : kind -> bool

type t

val create : kind -> t

val kind : t -> kind

val is_idle : t -> bool
(** A new transfer may be deposited. For a load buffer this also requires
    that the previous result has been consumed. *)

val issue : t -> Memsys.t -> now:int -> addr:int -> bool
(** Deposit a transfer. Returns [false] (nothing happens) when the buffer
    is occupied — the caller stalls. Acceptance by memory is attempted
    immediately and retried by [tick] on later cycles. *)

val issue_immediate : t -> unit
(** Loads only: mark the buffer [Ready] without any memory transaction —
    used for header-FIFO hits, which bypass memory entirely. The buffer
    must be idle. *)

val tick : t -> Memsys.t -> now:int -> unit
(** Advance the buffer one cycle: retry memory acceptance, mark completed
    loads ready, release completed stores. Call once per cycle, in core
    priority order, before stepping the cores. *)

val load_ready : t -> bool
(** Data has arrived and can be consumed this cycle. *)

val consume : t -> unit
(** Consume a ready load result, freeing the buffer. *)

val busy_addr : t -> int option
(** Address of the in-progress transfer, if any (for tracing). *)
