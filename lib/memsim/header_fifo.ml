module Injector = Hsgc_fault.Injector
module Diag = Hsgc_sanitizer.Diag
module Hooks = Hsgc_sanitizer.Hooks

type t = {
  capacity : int;
  buf : int array; (* ring buffer of frame addresses *)
  faults : Injector.t;
  hooks : Hooks.t;
  obs : Hsgc_obs.Tracer.t;
  mutable head : int; (* index of front entry *)
  mutable len : int;
  mutable overflows : int;
  mutable hits : int;
  mutable misses : int;
  mutable drops : int;
}

let create ?(faults = Injector.disabled) ?hooks
    ?(obs = Hsgc_obs.Tracer.disabled) ~capacity () =
  if capacity <= 0 then invalid_arg "Header_fifo.create";
  let hooks = match hooks with Some h -> h | None -> Hooks.create () in
  {
    capacity;
    buf = Array.make capacity 0;
    faults;
    hooks;
    obs;
    head = 0;
    len = 0;
    overflows = 0;
    hits = 0;
    misses = 0;
    drops = 0;
  }

let capacity t = t.capacity
let length t = t.len

let push t addr =
  (* Sanitizer protocol lint: the machine never pushes the null header
     (address 0); standalone uses of the FIFO may buffer any key. *)
  if t.hooks.Hooks.on && addr <= 0 then
    Diag.fail ~cycle:t.hooks.Hooks.cycle ~addr Diag.Fifo_order
      "null/negative frame address pushed to the header FIFO";
  let buffered =
    if Injector.drop_push t.faults then begin
      (* Transient fault: the entry is simply not buffered, exactly like a
         capacity overflow — the later read falls through to memory. *)
      t.drops <- t.drops + 1;
      false
    end
    else if t.len >= t.capacity then begin
      t.overflows <- t.overflows + 1;
      false
    end
    else begin
      t.buf.((t.head + t.len) mod t.capacity) <- addr;
      t.len <- t.len + 1;
      true
    end
  in
  if t.hooks.Hooks.on then t.hooks.Hooks.fifo_pushed ~addr ~buffered;
  (* Overflow-episode tracking: a streak of unbuffered pushes (capacity
     overflow or fault drop) opens an episode; the next buffered push
     closes it as one span event. *)
  if t.obs.Hsgc_obs.Tracer.on then
    Hsgc_obs.Tracer.fifo_push t.obs ~buffered;
  buffered

let try_pop t addr =
  if t.len > 0 && t.buf.(t.head) = addr then begin
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1;
    t.hits <- t.hits + 1;
    if t.hooks.Hooks.on then t.hooks.Hooks.fifo_popped ~addr;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

(* Purely reactive: entries appear on gray-header stores and leave on
   scan-loop reads, both core actions within the acting core's cycle.
   The FIFO never schedules its own future event. *)
let next_wake (_ : t) : int option = None

let overflows t = t.overflows
let hits t = t.hits
let misses t = t.misses
let fault_drops t = t.drops

let clear t =
  t.head <- 0;
  t.len <- 0

(* Checkpoint codec: ring contents plus cursors and counters. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.int_array w t.buf;
  Codec.W.int w t.head;
  Codec.W.int w t.len;
  Codec.W.int w t.overflows;
  Codec.W.int w t.hits;
  Codec.W.int w t.misses;
  Codec.W.int w t.drops

let restore t r =
  Codec.R.int_array_into r t.buf ~what:"header FIFO ring";
  t.head <- Codec.R.int r;
  t.len <- Codec.R.int r;
  if t.head < 0 || t.head >= t.capacity || t.len < 0 || t.len > t.capacity
  then raise (Codec.Error "header FIFO cursors out of range");
  t.overflows <- Codec.R.int r;
  t.hits <- Codec.R.int r;
  t.misses <- Codec.R.int r;
  t.drops <- Codec.R.int r
