(** Observation hooks the machine fires into the sanitizer.

    One shared record is threaded through [Sync_block], [Memsys],
    [Port], [Header_fifo] and [Coprocessor].  When no sanitizer is
    attached every field is a nop closure and [on] is [false]; hot call
    sites guard with [if hooks.on then ...] so the disabled cost is a
    single load-and-branch.  [cycle] is stamped by the coprocessor at
    the top of every simulated cycle so diagnostics and findings carry
    the cycle even from modules that do not track time themselves. *)

(** Lock identifiers used by [lock_acquired] / [lock_released]. *)
val scan_lock : int
val header_lock : int
val free_lock : int

type t = {
  mutable on : bool;
  mutable cycle : int;
  (* sync block *)
  mutable lock_acquired : lock:int -> core:int -> addr:int -> unit;
      (** [addr] is the header address for the header lock, [-1] otherwise *)
  mutable lock_released : lock:int -> core:int -> addr:int -> unit;
  mutable scan_advanced : core:int -> scan_was:int -> scan_now:int -> free:int -> unit;
  mutable free_claimed : core:int -> addr:int -> size:int -> unit;
  mutable reg_set : scan:bool -> value:int -> unit;
      (** direct register write via [set_scan]/[set_free] (setup only) *)
  mutable barrier_passed : core:int -> unit;
  (* header FIFO *)
  mutable fifo_pushed : addr:int -> buffered:bool -> unit;
  mutable fifo_popped : addr:int -> unit;
  (* heap word traffic (contents-level, at initiation) *)
  mutable word_read : core:int -> base:int -> addr:int -> unit;
      (** [base] is the object frame the access belongs to *)
  mutable word_written : core:int -> base:int -> addr:int -> unit;
  mutable range_claimed : core:int -> lo:int -> hi:int -> unit;
      (** core took ownership of words [lo, hi) (object grab / free claim) *)
  mutable range_released : core:int -> lo:int -> hi:int -> unit;
  mutable forward_installed : core:int -> from_:int -> to_:int -> unit;
}

val create : unit -> t
(** Fresh record, all nops, [on = false], [cycle = -1]. *)
