type check =
  | Lock_order
  | Lock_state
  | Null_header
  | Scan_protocol
  | Free_protocol
  | Register_poke
  | Lockset_race
  | Unprotected_header
  | Unprotected_payload
  | Forward_once
  | Forward_unlocked
  | Fifo_order
  | Barrier_skew
  | Locks_at_barrier
  | Mem_protocol
  | Port_protocol

type t = {
  cycle : int;
  core : int;
  check : check;
  addr : int;
  locks : string;
  detail : string;
}

exception Violation of t

let check_name = function
  | Lock_order -> "lock-order"
  | Lock_state -> "lock-state"
  | Null_header -> "null-header"
  | Scan_protocol -> "scan-protocol"
  | Free_protocol -> "free-protocol"
  | Register_poke -> "register-poke"
  | Lockset_race -> "lockset-race"
  | Unprotected_header -> "unprotected-header"
  | Unprotected_payload -> "unprotected-payload"
  | Forward_once -> "forward-once"
  | Forward_unlocked -> "forward-unlocked"
  | Fifo_order -> "fifo-order"
  | Barrier_skew -> "barrier-skew"
  | Locks_at_barrier -> "locks-at-barrier"
  | Mem_protocol -> "mem-protocol"
  | Port_protocol -> "port-protocol"

let make ?(cycle = -1) ?(core = -1) ?(addr = -1) ?(locks = "{}") check detail =
  { cycle; core; check; addr; locks; detail }

let fail ?cycle ?core ?addr ?locks check detail =
  raise (Violation (make ?cycle ?core ?addr ?locks check detail))

let pp ppf d =
  Format.fprintf ppf "[%s]" (check_name d.check);
  if d.cycle >= 0 then Format.fprintf ppf " cycle=%d" d.cycle;
  if d.core >= 0 then Format.fprintf ppf " core=%d" d.core;
  if d.addr >= 0 then Format.fprintf ppf " addr=%d" d.addr;
  if d.locks <> "{}" then Format.fprintf ppf " held=%s" d.locks;
  Format.fprintf ppf ": %s" d.detail

let to_string d = Format.asprintf "%a" pp d

let () =
  Printexc.register_printer (function
    | Violation d -> Some ("Sanitizer violation " ^ to_string d)
    | _ -> None)
