type mode = Off | Check | Strict

(* Per-word shadow state, one byte per heap word:
   bit 7: accessed at least once this collection
   bit 6: shared (touched by more than one core)
   bits 0-2: candidate protection set (intersection over accesses) *)
let st_accessed = 0x80
let st_shared = 0x40

(* Protection classes a single access can hold. *)
let p_scan = 1   (* scan lock held and word is a header word of the
                    object the scan register points at *)
let p_header = 2 (* header lock of the word's object frame held *)
let p_owner = 4  (* word inside a range the core has claimed *)
let p_mask = p_scan lor p_header lor p_owner

let no_core = 0xff

type t = {
  sm : mode;
  hooks : Hooks.t;
  n_cores : int;
  header_words : int;
  (* word shadows *)
  state : Bytes.t;
  last_core : Bytes.t;
  owner : Bytes.t;
  fwd : Bytes.t;
  (* sync-block mirror *)
  mutable scan_holder : int;  (* -1 = free *)
  mutable free_holder : int;
  header_addr : int array;    (* per core; 0 = none *)
  mutable scan_reg : int;
  mutable free_reg : int;
  (* barrier mirror *)
  passes : int array;
  mutable any_barrier : bool;
  (* header-FIFO mirror *)
  fifo_shadow : int Queue.t;
  (* findings *)
  seen : (string, unit) Hashtbl.t;
  mutable kept : Diag.t list;  (* newest first *)
  mutable n_kept : int;
  mutable n_total : int;
}

let max_kept = 64

let mode t = t.sm
let findings t = List.rev t.kept
let total t = t.n_total
let is_silent t = t.n_total = 0

let mode_to_string = function
  | Off -> "off"
  | Check -> "check"
  | Strict -> "strict"

let mode_of_string = function
  | "off" -> Some Off
  | "check" | "on" -> Some Check
  | "strict" -> Some Strict
  | _ -> None

let locks_of t core =
  let b = Buffer.create 16 in
  Buffer.add_char b '{';
  let sep () = if Buffer.length b > 1 then Buffer.add_char b ',' in
  if t.scan_holder = core then (sep (); Buffer.add_string b "scan");
  if core >= 0 && core < t.n_cores && t.header_addr.(core) <> 0 then begin
    sep ();
    Buffer.add_string b (Printf.sprintf "hdr:%d" t.header_addr.(core))
  end;
  if t.free_holder = core then (sep (); Buffer.add_string b "free");
  Buffer.add_char b '}';
  Buffer.contents b

let report t ~core ~addr check detail =
  t.n_total <- t.n_total + 1;
  let key = Printf.sprintf "%s/%d/%d" (Diag.check_name check) core addr in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    let d =
      Diag.make ~cycle:t.hooks.Hooks.cycle ~core ~addr ~locks:(locks_of t core)
        check detail
    in
    if t.n_kept < max_kept then begin
      t.kept <- d :: t.kept;
      t.n_kept <- t.n_kept + 1
    end;
    if t.sm = Strict then raise (Diag.Violation d)
  end

let in_range t addr = addr >= 0 && addr < Bytes.length t.state

(* Protection the accessing core holds over [addr] (inside object
   frame [base]) right now. *)
let protection t ~core ~base ~addr =
  let p = ref 0 in
  if in_range t addr && Char.code (Bytes.unsafe_get t.owner addr) = core then
    p := !p lor p_owner;
  (* base = 0 is the null frame: an empty header-lock register (0) must
     not read as "holding the lock on frame 0". *)
  if base <> 0 && core >= 0 && core < t.n_cores && t.header_addr.(core) = base
  then p := !p lor p_header;
  let is_header_word = addr - base < t.header_words in
  if is_header_word && t.scan_holder = core && base = t.scan_reg then
    p := !p lor p_scan;
  !p

let access t ~core ~base ~addr ~write =
  if not (in_range t addr) then
    report t ~core ~addr Diag.Mem_protocol
      (Printf.sprintf "%s outside simulated memory"
         (if write then "store" else "load"))
  else begin
    let held = protection t ~core ~base ~addr in
    let is_header_word = addr - base < t.header_words in
    if held = 0 then
      report t ~core ~addr
        (if is_header_word then Diag.Unprotected_header
         else Diag.Unprotected_payload)
        (Printf.sprintf "%s of %s word (frame %d) with no lock or claim"
           (if write then "store" else "load")
           (if is_header_word then "header" else "payload")
           base)
    else begin
      let st = Char.code (Bytes.unsafe_get t.state addr) in
      let lc = Char.code (Bytes.unsafe_get t.last_core addr) in
      let st' =
        if st land st_accessed = 0 then st_accessed lor (held land p_mask)
        else begin
          let shared =
            st land st_shared <> 0 || (lc <> no_core && lc <> core)
          in
          let cand = st land p_mask land held in
          st_accessed lor (if shared then st_shared else 0) lor cand
        end
      in
      Bytes.unsafe_set t.state addr (Char.unsafe_chr st');
      Bytes.unsafe_set t.last_core addr (Char.unsafe_chr (core land 0xff));
      if st' land st_shared <> 0 && st' land p_mask = 0 then
        report t ~core ~addr Diag.Lockset_race
          (Printf.sprintf
             "candidate lockset of shared %s word (frame %d) emptied on %s"
             (if is_header_word then "header" else "payload")
             base
             (if write then "store" else "load"))
    end
  end

let claim t ~core ~lo ~hi =
  let lo = max lo 0 and hi = min hi (Bytes.length t.state) in
  if lo < hi then begin
    (* Ownership transfer: the new owner starts a fresh epoch on these
       words, so accesses by the previous owner (e.g. the evacuator
       that wrote the gray header we are about to scan) cannot falsely
       intersect with ours.  This is how the same-cycle release→acquire
       handoff stays silent. *)
    Bytes.fill t.state lo (hi - lo) '\000';
    Bytes.fill t.last_core lo (hi - lo) (Char.chr no_core);
    Bytes.fill t.owner lo (hi - lo) (Char.unsafe_chr (core land 0xff))
  end

let release t ~core ~lo ~hi =
  let lo = max lo 0 and hi = min hi (Bytes.length t.owner) in
  for a = lo to hi - 1 do
    if Char.code (Bytes.unsafe_get t.owner a) = core then
      Bytes.unsafe_set t.owner a (Char.chr no_core)
  done

let on_lock_acquired t ~lock ~core ~addr =
  if lock = Hooks.scan_lock then begin
    if t.scan_holder = core then
      report t ~core ~addr:(-1) Diag.Lock_state "scan lock re-entry"
    else if t.scan_holder >= 0 then
      report t ~core ~addr:(-1) Diag.Lock_state
        (Printf.sprintf "scan lock granted while core %d holds it"
           t.scan_holder);
    if t.header_addr.(core) <> 0 then
      report t ~core ~addr:t.header_addr.(core) Diag.Lock_order
        "scan lock acquired while holding a header lock";
    if t.free_holder = core then
      report t ~core ~addr:(-1) Diag.Lock_order
        "scan lock acquired while holding the free lock";
    t.scan_holder <- core
  end
  else if lock = Hooks.header_lock then begin
    if addr = 0 then
      report t ~core ~addr Diag.Null_header "header lock on the null address";
    if t.header_addr.(core) <> 0 then
      report t ~core ~addr Diag.Lock_state
        (Printf.sprintf "header lock re-entry (already holds %d)"
           t.header_addr.(core));
    if t.free_holder = core then
      report t ~core ~addr Diag.Lock_order
        "header lock acquired while holding the free lock";
    t.header_addr.(core) <- addr
  end
  else begin
    if t.free_holder = core then
      report t ~core ~addr:(-1) Diag.Lock_state "free lock re-entry"
    else if t.free_holder >= 0 then
      report t ~core ~addr:(-1) Diag.Lock_state
        (Printf.sprintf "free lock granted while core %d holds it"
           t.free_holder);
    t.free_holder <- core
  end

let on_lock_released t ~lock ~core ~addr =
  if lock = Hooks.scan_lock then begin
    if t.scan_holder <> core then
      report t ~core ~addr:(-1) Diag.Lock_state "scan unlock by non-holder"
    else t.scan_holder <- -1
  end
  else if lock = Hooks.header_lock then begin
    if t.header_addr.(core) <> addr || addr = 0 then
      report t ~core ~addr Diag.Lock_state "header unlock without the lock"
    else t.header_addr.(core) <- 0
  end
  else begin
    if t.free_holder <> core then
      report t ~core ~addr:(-1) Diag.Lock_state "free unlock by non-holder"
    else t.free_holder <- -1
  end

let on_scan_advanced t ~core ~scan_was ~scan_now ~free =
  if t.scan_holder <> core then
    report t ~core ~addr:scan_was Diag.Scan_protocol
      "scan advanced without holding the scan lock";
  if scan_now < scan_was then
    report t ~core ~addr:scan_now Diag.Scan_protocol
      (Printf.sprintf "scan moved backwards (%d -> %d)" scan_was scan_now);
  if scan_now > free then
    report t ~core ~addr:scan_now Diag.Scan_protocol
      (Printf.sprintf "scan advanced past free (%d > %d)" scan_now free);
  t.scan_reg <- scan_now

let on_free_claimed t ~core ~addr ~size =
  if t.free_holder <> core then
    report t ~core ~addr Diag.Free_protocol
      "free claimed without holding the free lock";
  if addr < t.free_reg then
    report t ~core ~addr Diag.Free_protocol
      (Printf.sprintf "free moved backwards (%d < %d)" addr t.free_reg);
  if size <= 0 then
    report t ~core ~addr Diag.Free_protocol
      (Printf.sprintf "free claim of %d words" size);
  t.free_reg <- max t.free_reg (addr + size);
  (* The claimer owns the fresh frame's header words: it writes the
     gray header there before any other core can see the object. *)
  claim t ~core ~lo:addr ~hi:(addr + t.header_words)

let on_reg_set t ~scan ~value =
  if t.any_barrier then
    report t ~core:(-1) ~addr:value Diag.Register_poke
      (Printf.sprintf "%s register rewritten mid-collection"
         (if scan then "scan" else "free"));
  if scan then t.scan_reg <- value else t.free_reg <- value

let on_barrier_passed t ~core =
  if t.scan_holder = core || t.free_holder = core || t.header_addr.(core) <> 0
  then
    report t ~core ~addr:(-1) Diag.Locks_at_barrier
      "core passed a barrier while holding locks";
  t.passes.(core) <- t.passes.(core) + 1;
  t.any_barrier <- true;
  let min_pass = Array.fold_left min max_int t.passes in
  if t.passes.(core) > min_pass + 1 then
    report t ~core ~addr:(-1) Diag.Barrier_skew
      (Printf.sprintf "core passed barrier round %d while another is at %d"
         t.passes.(core) min_pass)

let on_fifo_pushed t ~addr ~buffered =
  if addr <= 0 then
    report t ~core:(-1) ~addr Diag.Fifo_order
      "null/negative header address pushed to the FIFO";
  (* A dropped push (overflow or injected fault) never becomes visible
     to poppers, so it does not enter the shadow queue. *)
  if buffered && addr > 0 then Queue.push addr t.fifo_shadow

let on_fifo_popped t ~addr =
  match Queue.peek_opt t.fifo_shadow with
  | None ->
      report t ~core:(-1) ~addr Diag.Fifo_order
        "FIFO pop with no outstanding push"
  | Some expect ->
      if expect <> addr then
        report t ~core:(-1) ~addr Diag.Fifo_order
          (Printf.sprintf "FIFO popped %d but %d was pushed first" addr expect)
      else ignore (Queue.pop t.fifo_shadow)

let on_forward_installed t ~core ~from_ ~to_ =
  if t.header_addr.(core) <> from_ then
    report t ~core ~addr:from_ Diag.Forward_unlocked
      "forwarding installed without holding the object's header lock";
  if in_range t from_ then begin
    if Bytes.get t.fwd from_ <> '\000' then
      report t ~core ~addr:from_ Diag.Forward_once
        (Printf.sprintf "second forwarding install (object %d -> %d)" from_
           to_);
    Bytes.set t.fwd from_ '\001'
  end

let create ~mode:sm ~mem_words ~n_cores ~header_words hooks =
  if n_cores > 250 then invalid_arg "Sanitizer.create: too many cores";
  if mem_words < 0 then invalid_arg "Sanitizer.create: negative memory size";
  let t =
    {
      sm;
      hooks;
      n_cores;
      header_words;
      state = Bytes.make mem_words '\000';
      last_core = Bytes.make mem_words (Char.chr no_core);
      owner = Bytes.make mem_words (Char.chr no_core);
      fwd = Bytes.make mem_words '\000';
      scan_holder = -1;
      free_holder = -1;
      header_addr = Array.make (max n_cores 1) 0;
      scan_reg = 0;
      free_reg = 0;
      passes = Array.make (max n_cores 1) 0;
      any_barrier = false;
      fifo_shadow = Queue.create ();
      seen = Hashtbl.create 31;
      kept = [];
      n_kept = 0;
      n_total = 0;
    }
  in
  if sm <> Off then begin
    hooks.Hooks.lock_acquired <- (fun ~lock ~core ~addr ->
        on_lock_acquired t ~lock ~core ~addr);
    hooks.Hooks.lock_released <- (fun ~lock ~core ~addr ->
        on_lock_released t ~lock ~core ~addr);
    hooks.Hooks.scan_advanced <- (fun ~core ~scan_was ~scan_now ~free ->
        on_scan_advanced t ~core ~scan_was ~scan_now ~free);
    hooks.Hooks.free_claimed <- (fun ~core ~addr ~size ->
        on_free_claimed t ~core ~addr ~size);
    hooks.Hooks.reg_set <- (fun ~scan ~value -> on_reg_set t ~scan ~value);
    hooks.Hooks.barrier_passed <- (fun ~core -> on_barrier_passed t ~core);
    hooks.Hooks.fifo_pushed <- (fun ~addr ~buffered ->
        on_fifo_pushed t ~addr ~buffered);
    hooks.Hooks.fifo_popped <- (fun ~addr -> on_fifo_popped t ~addr);
    hooks.Hooks.word_read <- (fun ~core ~base ~addr ->
        access t ~core ~base ~addr ~write:false);
    hooks.Hooks.word_written <- (fun ~core ~base ~addr ->
        access t ~core ~base ~addr ~write:true);
    hooks.Hooks.range_claimed <- (fun ~core ~lo ~hi -> claim t ~core ~lo ~hi);
    hooks.Hooks.range_released <- (fun ~core ~lo ~hi ->
        release t ~core ~lo ~hi);
    hooks.Hooks.forward_installed <- (fun ~core ~from_ ~to_ ->
        on_forward_installed t ~core ~from_ ~to_);
    hooks.Hooks.on <- true
  end;
  t

let detach t = t.hooks.Hooks.on <- false
