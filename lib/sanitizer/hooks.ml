let scan_lock = 0
let header_lock = 1
let free_lock = 2

type t = {
  mutable on : bool;
  mutable cycle : int;
  mutable lock_acquired : lock:int -> core:int -> addr:int -> unit;
  mutable lock_released : lock:int -> core:int -> addr:int -> unit;
  mutable scan_advanced : core:int -> scan_was:int -> scan_now:int -> free:int -> unit;
  mutable free_claimed : core:int -> addr:int -> size:int -> unit;
  mutable reg_set : scan:bool -> value:int -> unit;
  mutable barrier_passed : core:int -> unit;
  mutable fifo_pushed : addr:int -> buffered:bool -> unit;
  mutable fifo_popped : addr:int -> unit;
  mutable word_read : core:int -> base:int -> addr:int -> unit;
  mutable word_written : core:int -> base:int -> addr:int -> unit;
  mutable range_claimed : core:int -> lo:int -> hi:int -> unit;
  mutable range_released : core:int -> lo:int -> hi:int -> unit;
  mutable forward_installed : core:int -> from_:int -> to_:int -> unit;
}

let nop3 ~lock:_ ~core:_ ~addr:_ = ()

let create () =
  {
    on = false;
    cycle = -1;
    lock_acquired = nop3;
    lock_released = nop3;
    scan_advanced = (fun ~core:_ ~scan_was:_ ~scan_now:_ ~free:_ -> ());
    free_claimed = (fun ~core:_ ~addr:_ ~size:_ -> ());
    reg_set = (fun ~scan:_ ~value:_ -> ());
    barrier_passed = (fun ~core:_ -> ());
    fifo_pushed = (fun ~addr:_ ~buffered:_ -> ());
    fifo_popped = (fun ~addr:_ -> ());
    word_read = (fun ~core:_ ~base:_ ~addr:_ -> ());
    word_written = (fun ~core:_ ~base:_ ~addr:_ -> ());
    range_claimed = (fun ~core:_ ~lo:_ ~hi:_ -> ());
    range_released = (fun ~core:_ ~lo:_ ~hi:_ -> ());
    forward_installed = (fun ~core:_ ~from_:_ ~to_:_ -> ());
  }
