(** The machine sanitizer: an Eraser-style lockset checker plus a
    protocol linter over the simulated coprocessor, driven entirely by
    {!Hooks} events.

    The lockset checker shadows every heap word with a protection
    candidate set.  A word may be protected by (a) the scan lock while
    it is a header word of the object at [scan], (b) the header lock of
    its object frame, or (c) range ownership — the exclusive claim a
    core takes on an object's words when it grabs the object from the
    worklist or claims fresh tospace.  The paper's same-cycle
    release→acquire handoff (static priority, Section IV) is modeled by
    treating the grab itself as an ownership-transfer point: a range
    claim resets the claimed words to virgin state, so the previous
    owner's accesses never falsely intersect with the new owner's.

    The protocol linter mirrors the sync block registers and enforces:
    lock order [scan < header < free], scan/free monotonicity and
    [scan <= free], at-most-one forwarding install per object (under
    the header lock), header-FIFO pops in push order, no scan advance
    without the scan lock, barrier arrival completeness, and no
    register pokes after collection has started.

    Findings are deduplicated per (check, core, address) and capped;
    [Strict] mode raises {!Diag.Violation} on the first finding. *)

type mode = Off | Check | Strict

type t

val create :
  mode:mode -> mem_words:int -> n_cores:int -> header_words:int ->
  Hooks.t -> t
(** Installs the observer closures into the hook record and flips
    [hooks.on] when [mode <> Off].  At most 250 cores. *)

val detach : t -> unit
(** Uninstall: flips [hooks.on] off so later (non-collection) machine
    activity is not observed. *)

val mode : t -> mode

val findings : t -> Diag.t list
(** Kept findings, oldest first (capped at 64, deduplicated). *)

val total : t -> int
(** All findings, including deduplicated repeats. *)

val is_silent : t -> bool

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
