(** Structured diagnostics for machine-protocol violations.

    Every invariant the sanitizer (and the machine's own guard rails)
    can trip produces a [t]: which check fired, at which simulated
    cycle, on which core, at which address, with the held lockset
    rendered for context.  [Violation] replaces the bare
    [Assert_failure] / [Invalid_argument] aborts the sync block and
    header FIFO used to raise, so plain runs and [--sanitize] runs both
    get cycle/core context. *)

type check =
  | Lock_order        (** acquisition violating scan < header < free *)
  | Lock_state        (** re-entry, unlock by non-owner, lock leak *)
  | Null_header       (** header lock requested on the null address *)
  | Scan_protocol     (** scan advanced without the lock, or past free *)
  | Free_protocol     (** free claimed without the lock, or non-monotone *)
  | Register_poke     (** scan/free register rewritten mid-collection *)
  | Lockset_race      (** Eraser: candidate lockset of a shared word emptied *)
  | Unprotected_header  (** header word touched with no protection at all *)
  | Unprotected_payload (** payload word touched outside claimed ranges *)
  | Forward_once      (** forwarding pointer installed twice for one object *)
  | Forward_unlocked  (** forwarding installed without the header lock *)
  | Fifo_order        (** header FIFO popped out of push order / bad address *)
  | Barrier_skew      (** a core passed a barrier round ahead of the others *)
  | Locks_at_barrier  (** locks still held on barrier arrival *)
  | Mem_protocol      (** memory system driven outside begin_cycle contract *)
  | Port_protocol     (** port issued/consumed in an illegal state *)

type t = {
  cycle : int;   (** simulated cycle, [-1] when unknown *)
  core : int;    (** core index, [-1] when not core-specific *)
  check : check;
  addr : int;    (** word address, [-1] when not address-specific *)
  locks : string;  (** rendered held lockset, e.g. ["{scan,hdr:12}"] *)
  detail : string;
}

exception Violation of t

val check_name : check -> string

val fail :
  ?cycle:int -> ?core:int -> ?addr:int -> ?locks:string ->
  check -> string -> 'a
(** [fail check detail] raises {!Violation}. *)

val make :
  ?cycle:int -> ?core:int -> ?addr:int -> ?locks:string ->
  check -> string -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
