(** Chrome trace-event JSON exporter.

    Renders a {!Tracer} event stream as the JSON-object trace form
    ([{"traceEvents": [...]}]) loadable in Perfetto
    ({:https://ui.perfetto.dev}) and chrome://tracing. One track per
    core for phase spans, one per core for stall runs, plus kernel
    fast-forward and header-FIFO tracks and counter tracks for the
    gray backlog and FIFO depth. Timestamps are simulated cycles. *)

val to_string : Tracer.t -> string
val to_channel : out_channel -> Tracer.t -> unit
