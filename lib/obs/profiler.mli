(** Stall-attribution profiler — the machine-checked form of the
    paper's Table II.

    Each simulated cycle of each core lands in exactly one of nine
    buckets: busy, the seven stall categories (Table II column order:
    scan-lock, free-lock, header-lock, body-load, body-store,
    header-load, header-store), or idle. The attribution is fed by the
    same code paths that maintain the per-core stall counters, so two
    identities hold by construction and are enforced by tests:
    per-core bucket sums equal total simulated cycles, and the stall
    columns equal the [Counters] stall totals exactly. *)

type t = {
  mutable on : bool;
  n_cores : int;
  buckets : int array;
  halt_at : int array;
}

val n_buckets : int
val bucket_busy : int
val bucket_idle : int

val bucket_name : int -> string
(** Buckets 1..7 carry the stall-category names. *)

val create : n_cores:int -> unit -> t

val disabled : t
(** Shared never-enabled default (never mutated while off). *)

val enable : t -> unit
val n_cores : t -> int

val add : t -> core:int -> bucket:int -> int -> unit
(** Credit [n] cycles. Callers gate on [t.on]. *)

val note_halt : t -> core:int -> cycle:int -> unit
(** Record the cycle on which the core halted. *)

val close : t -> total:int -> unit
(** Pad each halted core's account with idle cycles up to [total]
    (exclusive of the final tick). Idempotent. *)

val get : t -> core:int -> bucket:int -> int
val row_sum : t -> core:int -> int
val column : t -> bucket:int -> int

val total_stall_cycles : t -> int
(** Sum of the seven stall columns across all cores. *)

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the attribution matrix and halt marks; restore
    validates the core count. *)
