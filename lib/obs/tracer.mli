(** Event/span tracer: the observability backbone.

    Follows the sanitizer's Hooks discipline: the record is always
    present, [on] defaults to [false], and every call site gates on a
    direct load of {!field-on} — one load-and-branch when tracing is
    off. Events are typed spans over simulated cycles, recorded into a
    bounded ring of parallel int arrays (keep-oldest, drop-and-count on
    overflow). With a fixed seed and configuration the event stream is
    byte-identical run to run. *)

type t = {
  mutable on : bool;
  mutable cycle : int;
      (** stamped by the owning simulator at the top of each executed
          cycle (only while [on]); components timestamp against it *)
  capacity : int;
  ev_cycle : int array;
  ev_code : int array;
  ev_core : int array;
  ev_a : int array;
  ev_b : int array;
  mutable len : int;
  mutable dropped : int;
  n_cores : int;
  cur_phase : int array;
  phase_start : int array;
  run_kind : int array;
  run_start : int array;
  run_len : int array;
  mutable ovf_start : int;
  mutable ovf_count : int;
  interval : int;
  mutable next_sample : int;
  mutable scan_acquired : int;
  mutable free_acquired : int;
  header_acquired : int array;
  object_start : int array;
  metrics : Metrics.t;
  hist_hold_scan : Metrics.hist;
  hist_hold_header : Metrics.hist;
  hist_hold_free : Metrics.hist;
  hist_object_latency : Metrics.hist;
  hist_mem : Metrics.hist array;
  ctr_events : Metrics.counter;
  ctr_dropped : Metrics.counter;
}

(** {2 Event codes} — each recorded event is [(cycle, code, core, a, b)];
    [core] is [-1] for machine-global events. *)

val ev_phase : int
(** per-core phase span: [a] = phase id, [b] = duration in cycles *)

val ev_stall : int
(** per-core stall run (consecutive same-kind stall cycles merged):
    [a] = stall id in Table II column order, [b] = duration *)

val ev_sample : int
(** counter sample: [a] = gray backlog (free − scan) in words,
    [b] = header FIFO depth *)

val ev_fifo_overflow : int
(** FIFO overflow episode (streak of unbuffered pushes): [a] = dropped
    pushes, [b] = duration *)

val ev_skip : int
(** kernel fast-forward: [b] = skipped span. A stepping artifact, not
    machine behavior — excluded from {!digest} by default. *)

(** {2 Phase / stall / lock / memory-kind ids} *)

val phase_init : int
val phase_roots : int
val phase_barrier : int
val phase_scan : int
val phase_copy : int
val phase_flush : int
val phase_halt : int
val phase_name : int -> string

val stall_name : int -> string
(** Stall ids 0..6 follow [Hsgc_coproc.Counters.all_stalls] order:
    scan-lock, free-lock, header-lock, body-load, body-store,
    header-load, header-store. *)

val lock_scan : int
val lock_header : int
val lock_free : int

val mem_header_load : int
val mem_header_store : int
val mem_body_load : int
val mem_body_store : int

(** {2 Lifecycle} *)

val create : ?capacity:int -> ?interval:int -> n_cores:int -> unit -> t
(** [capacity] bounds the event ring (default 262144 events);
    [interval] is the counter-sampling period in cycles (default 256). *)

val default_capacity : int

val disabled : t
(** A shared never-enabled instance for components created without
    observability. Never mutated (all writes gate on [on]), so it is
    safe to share across domains. *)

val enable : t -> unit

(** {2 Recording} — callers must check [t.on] before calling; all
    timestamps not passed explicitly come from [t.cycle]. *)

val set_phase : t -> core:int -> phase:int -> cycle:int -> unit
(** Declare the core's current phase; a change closes the previous
    phase span. *)

val stall_run : t -> core:int -> kind:int -> cycle:int -> span:int -> unit
(** Account [span] stall cycles of [kind] starting at [cycle];
    contiguous same-kind runs merge into a single span event. *)

val sample_due : t -> cycle:int -> bool
val sample : t -> cycle:int -> backlog:int -> fifo_depth:int -> unit

val catch_up_samples :
  t -> target:int -> backlog:int -> fifo_depth:int -> unit
(** Emit the counter samples a naive stepper would have produced inside
    a fast-forwarded span ending at [target] (exclusive): one per
    elapsed sampling grid point, carrying the frozen signal values.
    Keeps the event stream identical across stepping strategies. *)

val fifo_push : t -> buffered:bool -> unit
val lock_acquired : t -> lock:int -> core:int -> unit
val lock_released : t -> lock:int -> core:int -> unit
val object_begun : t -> core:int -> unit
val object_done : t -> core:int -> unit
val mem_done : t -> kind:int -> latency:int -> unit
val skip_span : t -> cycle:int -> span:int -> unit

val finish : t -> cycle:int -> unit
(** Close every open span (phases, stall runs, overflow episode) at
    [cycle] and fold ring statistics into the metrics registry. *)

(** {2 Reading} *)

val length : t -> int
val dropped : t -> int
val n_cores : t -> int
val metrics : t -> Metrics.t

val iter :
  t ->
  (cycle:int -> code:int -> core:int -> a:int -> b:int -> unit) ->
  unit

val serialize : ?include_skips:bool -> t -> string
(** One event per line, ["cycle code core a b"], in canonical order
    (sorted by the full event tuple — ring order is span-closure order,
    which depends on the stepping strategy). Kernel skip spans are
    excluded unless [include_skips] (they too are a stepping artifact,
    not machine behavior). *)

val digest : ?include_skips:bool -> t -> string
(** Hex MD5 of {!serialize} — the golden-trace fingerprint. *)

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate the event ring, open-span registers, sampling
    cursor and metrics. Restore validates that the tracer was created
    with the same capacity / core count / sampling interval and the
    same on/off state as the snapshotted one. *)
