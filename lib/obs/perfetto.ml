(* Chrome trace-event JSON exporter.

   Produces the JSON-object form ({"traceEvents": [...]}) loadable in
   Perfetto and chrome://tracing. Timestamps are simulated cycles used
   directly as microseconds — the absolute unit is meaningless for a
   simulator, only the cycle-accurate relative layout matters.

   Track layout (all under pid 0):
   - tid 2c     : "core c"        — phase spans (X events);
   - tid 2c + 1 : "core c waits"  — stall runs (X events);
   - tid 2n     : "kernel"        — fast-forward spans;
   - tid 2n + 1 : "header FIFO"   — overflow episodes;
   - counter tracks ("C" events): gray backlog and FIFO depth. *)

let add_meta buf ~tid ~name ~sort =
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"%s"}},{"name":"thread_sort_index","ph":"M","pid":0,"tid":%d,"args":{"sort_index":%d}},|}
       tid name tid sort)

let add_span buf ~tid ~name ~cat ~ts ~dur ~args =
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"%s","cat":"%s","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d%s},|}
       name cat tid ts dur
       (match args with "" -> "" | a -> Printf.sprintf {|,"args":{%s}|} a))

let add_counter buf ~name ~ts ~key ~value =
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"%s","ph":"C","pid":0,"ts":%d,"args":{"%s":%d}},|}
       name ts key value)

let to_buffer (t : Tracer.t) =
  let n = Tracer.n_cores t in
  let buf = Buffer.create (4096 + (Tracer.length t * 96)) in
  Buffer.add_string buf {|{"displayTimeUnit":"ms","traceEvents":[|};
  Buffer.add_string buf
    {|{"name":"process_name","ph":"M","pid":0,"args":{"name":"gc coprocessor"}},|};
  for core = 0 to n - 1 do
    add_meta buf ~tid:(2 * core)
      ~name:(Printf.sprintf "core %d" core)
      ~sort:(2 * core);
    add_meta buf
      ~tid:((2 * core) + 1)
      ~name:(Printf.sprintf "core %d waits" core)
      ~sort:((2 * core) + 1)
  done;
  add_meta buf ~tid:(2 * n) ~name:"kernel" ~sort:(2 * n);
  add_meta buf ~tid:((2 * n) + 1) ~name:"header FIFO" ~sort:((2 * n) + 1);
  Tracer.iter t (fun ~cycle ~code ~core ~a ~b ->
      if code = Tracer.ev_phase then
        add_span buf ~tid:(2 * core) ~name:(Tracer.phase_name a) ~cat:"phase"
          ~ts:cycle ~dur:b ~args:""
      else if code = Tracer.ev_stall then
        add_span buf
          ~tid:((2 * core) + 1)
          ~name:(Tracer.stall_name a) ~cat:"stall" ~ts:cycle ~dur:b ~args:""
      else if code = Tracer.ev_sample then begin
        add_counter buf ~name:"gray backlog" ~ts:cycle ~key:"words" ~value:a;
        add_counter buf ~name:"FIFO depth" ~ts:cycle ~key:"entries" ~value:b
      end
      else if code = Tracer.ev_fifo_overflow then
        add_span buf
          ~tid:((2 * n) + 1)
          ~name:"overflow" ~cat:"fifo" ~ts:cycle ~dur:b
          ~args:(Printf.sprintf {|"dropped_pushes":%d|} a)
      else if code = Tracer.ev_skip then
        add_span buf ~tid:(2 * n) ~name:"fast-forward" ~cat:"kernel" ~ts:cycle
          ~dur:b ~args:"");
  (* Every emitter above leaves a trailing comma; terminate the array
     with a metadata event so the JSON stays valid even with no data. *)
  Buffer.add_string buf
    {|{"name":"trace_done","ph":"M","pid":0,"args":{}}]}|};
  Buffer.add_char buf '\n';
  buf

let to_string t = Buffer.contents (to_buffer t)
let to_channel oc t = Buffer.output_buffer oc (to_buffer t)
