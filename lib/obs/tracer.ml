(* Event/span tracer: the observability backbone.

   Follows the sanitizer's Hooks discipline: the record is always
   present, [on] defaults to [false], and every call site is gated on a
   direct [t.on] load — one load-and-branch when the tracer is off, so
   attaching the machinery costs nothing measurable in plain runs.

   Events live in a bounded ring of five parallel int arrays (no
   per-event allocation). When the ring fills, later events are counted
   in [dropped] and discarded — keep-oldest, so a truncated trace is
   still a chronological prefix of span *closures*. All timestamps are
   simulated cycles: with a fixed seed and configuration the event
   stream is byte-identical run to run, which is what makes the golden
   trace corpus possible. *)

(* Event codes. Each event is (cycle, code, core, a, b); [core] is -1
   for machine-global events. *)
let ev_phase = 1 (* per-core phase span: a = phase id, b = duration *)
let ev_stall = 2 (* per-core stall run:  a = stall id, b = duration *)
let ev_sample = 3 (* counter sample: a = gray backlog words, b = FIFO depth *)
let ev_fifo_overflow = 4 (* overflow episode: a = dropped pushes, b = duration *)
let ev_skip = 5 (* kernel fast-forward: b = skipped span *)

(* Per-core phases (the microprogram states folded to the paper's
   algorithm-level structure). *)
let phase_init = 0
let phase_roots = 1
let phase_barrier = 2
let phase_scan = 3
let phase_copy = 4
let phase_flush = 5
let phase_halt = 6

let phase_name = function
  | 0 -> "init"
  | 1 -> "roots"
  | 2 -> "barrier"
  | 3 -> "scan"
  | 4 -> "copy"
  | 5 -> "flush"
  | _ -> "halt"

(* Stall ids, in the paper's Table II column order (matching
   [Hsgc_coproc.Counters.all_stalls]). *)
let stall_names =
  [|
    "scan-lock"; "free-lock"; "header-lock"; "body-load"; "body-store";
    "header-load"; "header-store";
  |]

let stall_name k =
  if k >= 0 && k < Array.length stall_names then stall_names.(k) else "?"

(* Lock ids for hold-time accounting (same numbering as the sanitizer's
   hook constants, so call sites can share them). *)
let lock_scan = 0
let lock_header = 1
let lock_free = 2

(* Memory-transaction kinds for latency histograms. *)
let mem_header_load = 0
let mem_header_store = 1
let mem_body_load = 2
let mem_body_store = 3

type t = {
  mutable on : bool;
  mutable cycle : int;  (* stamped by the owning simulator each cycle *)
  capacity : int;
  ev_cycle : int array;
  ev_code : int array;
  ev_core : int array;
  ev_a : int array;
  ev_b : int array;
  mutable len : int;
  mutable dropped : int;
  n_cores : int;
  (* per-core phase tracking: the open phase and its start cycle *)
  cur_phase : int array;  (* -1 = none yet *)
  phase_start : int array;
  (* per-core stall-run merging: consecutive same-kind stall cycles
     collapse into one span event *)
  run_kind : int array;  (* -1 = no open run *)
  run_start : int array;
  run_len : int array;
  (* FIFO overflow episode (a streak of unbuffered pushes) *)
  mutable ovf_start : int;  (* -1 = no open episode *)
  mutable ovf_count : int;
  (* counter sampling *)
  interval : int;
  mutable next_sample : int;
  (* lock-acquisition stamps for hold-time histograms: scan and free are
     single-owner machine-global, header locks are per core *)
  mutable scan_acquired : int;
  mutable free_acquired : int;
  header_acquired : int array;
  (* per-core whole-object scan start, for the scan-latency histogram *)
  object_start : int array;
  metrics : Metrics.t;
  hist_hold_scan : Metrics.hist;
  hist_hold_header : Metrics.hist;
  hist_hold_free : Metrics.hist;
  hist_object_latency : Metrics.hist;
  hist_mem : Metrics.hist array;  (* indexed by mem_* kind *)
  ctr_events : Metrics.counter;
  ctr_dropped : Metrics.counter;
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) ?(interval = 256) ~n_cores () =
  if capacity < 0 then invalid_arg "Tracer.create: capacity";
  if interval < 1 then invalid_arg "Tracer.create: interval";
  if n_cores < 0 then invalid_arg "Tracer.create: n_cores";
  let metrics = Metrics.create () in
  {
    on = false;
    cycle = 0;
    capacity;
    ev_cycle = Array.make (max 1 capacity) 0;
    ev_code = Array.make (max 1 capacity) 0;
    ev_core = Array.make (max 1 capacity) 0;
    ev_a = Array.make (max 1 capacity) 0;
    ev_b = Array.make (max 1 capacity) 0;
    len = 0;
    dropped = 0;
    n_cores;
    cur_phase = Array.make (max 1 n_cores) (-1);
    phase_start = Array.make (max 1 n_cores) 0;
    run_kind = Array.make (max 1 n_cores) (-1);
    run_start = Array.make (max 1 n_cores) 0;
    run_len = Array.make (max 1 n_cores) 0;
    ovf_start = -1;
    ovf_count = 0;
    interval;
    next_sample = 0;
    scan_acquired = 0;
    free_acquired = 0;
    header_acquired = Array.make (max 1 n_cores) 0;
    object_start = Array.make (max 1 n_cores) 0;
    metrics;
    hist_hold_scan = Metrics.hist metrics "scan-lock hold cycles";
    hist_hold_header = Metrics.hist metrics "header-lock hold cycles";
    hist_hold_free = Metrics.hist metrics "free-lock hold cycles";
    hist_object_latency = Metrics.hist metrics "per-object scan latency";
    hist_mem =
      [|
        Metrics.hist metrics "header-load latency";
        Metrics.hist metrics "header-store latency";
        Metrics.hist metrics "body-load latency";
        Metrics.hist metrics "body-store latency";
      |];
    ctr_events = Metrics.counter metrics "trace events kept";
    ctr_dropped = Metrics.counter metrics "trace events dropped";
  }

(* A single never-enabled instance usable as the default for components
   created without observability. It is never written (every mutation
   site is gated on [on]), so sharing it across domains is safe. *)
let disabled = create ~capacity:0 ~n_cores:0 ()

let enable t = t.on <- true
let metrics t = t.metrics
let length t = t.len
let dropped t = t.dropped
let n_cores t = t.n_cores

let emit t ~cycle ~code ~core ~a ~b =
  if t.len < t.capacity then begin
    let i = t.len in
    t.ev_cycle.(i) <- cycle;
    t.ev_code.(i) <- code;
    t.ev_core.(i) <- core;
    t.ev_a.(i) <- a;
    t.ev_b.(i) <- b;
    t.len <- i + 1
  end
  else t.dropped <- t.dropped + 1

(* --- per-core phases ------------------------------------------------ *)

let set_phase t ~core ~phase ~cycle =
  let p = t.cur_phase.(core) in
  if p <> phase then begin
    if p >= 0 then
      emit t ~cycle:t.phase_start.(core) ~code:ev_phase ~core ~a:p
        ~b:(cycle - t.phase_start.(core));
    t.cur_phase.(core) <- phase;
    t.phase_start.(core) <- cycle
  end

(* --- per-core stall runs -------------------------------------------- *)

let stall_run t ~core ~kind ~cycle ~span =
  if t.run_kind.(core) = kind && t.run_start.(core) + t.run_len.(core) = cycle
  then t.run_len.(core) <- t.run_len.(core) + span
  else begin
    if t.run_kind.(core) >= 0 then
      emit t ~cycle:t.run_start.(core) ~code:ev_stall ~core
        ~a:t.run_kind.(core) ~b:t.run_len.(core);
    t.run_kind.(core) <- kind;
    t.run_start.(core) <- cycle;
    t.run_len.(core) <- span
  end

(* --- counter samples ------------------------------------------------ *)

let sample_due t ~cycle = cycle >= t.next_sample

let sample t ~cycle ~backlog ~fifo_depth =
  emit t ~cycle ~code:ev_sample ~core:(-1) ~a:backlog ~b:fifo_depth;
  t.next_sample <- cycle + t.interval

(* Samples inside a fast-forwarded span. The skipped cycles are
   quiescent — the machine signals are frozen at their current values —
   so naive stepping would have emitted one sample at each elapsed grid
   point carrying exactly these values. Emitting them here, stamped at
   the grid points themselves, keeps the event stream byte-identical
   across stepping strategies. *)
let catch_up_samples t ~target ~backlog ~fifo_depth =
  while t.next_sample < target do
    emit t ~cycle:t.next_sample ~code:ev_sample ~core:(-1) ~a:backlog
      ~b:fifo_depth;
    t.next_sample <- t.next_sample + t.interval
  done

(* --- FIFO overflow episodes ----------------------------------------- *)

let fifo_push t ~buffered =
  if buffered then begin
    if t.ovf_start >= 0 then begin
      emit t ~cycle:t.ovf_start ~code:ev_fifo_overflow ~core:(-1)
        ~a:t.ovf_count ~b:(t.cycle - t.ovf_start);
      t.ovf_start <- -1;
      t.ovf_count <- 0
    end
  end
  else begin
    if t.ovf_start < 0 then t.ovf_start <- t.cycle;
    t.ovf_count <- t.ovf_count + 1
  end

(* --- lock hold times ------------------------------------------------ *)

let lock_acquired t ~lock ~core =
  if lock = lock_scan then t.scan_acquired <- t.cycle
  else if lock = lock_free then t.free_acquired <- t.cycle
  else t.header_acquired.(core) <- t.cycle

let lock_released t ~lock ~core =
  if lock = lock_scan then
    Metrics.observe t.hist_hold_scan (t.cycle - t.scan_acquired)
  else if lock = lock_free then
    Metrics.observe t.hist_hold_free (t.cycle - t.free_acquired)
  else
    Metrics.observe t.hist_hold_header (t.cycle - t.header_acquired.(core))

(* --- per-object scan latency ---------------------------------------- *)

let object_begun t ~core = t.object_start.(core) <- t.cycle

let object_done t ~core =
  Metrics.observe t.hist_object_latency (t.cycle - t.object_start.(core))

(* --- memory-transaction latency ------------------------------------- *)

let mem_done t ~kind ~latency = Metrics.observe t.hist_mem.(kind) latency

(* --- kernel fast-forward spans -------------------------------------- *)

let skip_span t ~cycle ~span =
  emit t ~cycle ~code:ev_skip ~core:(-1) ~a:0 ~b:span

(* --- finalization --------------------------------------------------- *)

let finish t ~cycle =
  for core = 0 to t.n_cores - 1 do
    if t.run_kind.(core) >= 0 then begin
      emit t ~cycle:t.run_start.(core) ~code:ev_stall ~core
        ~a:t.run_kind.(core) ~b:t.run_len.(core);
      t.run_kind.(core) <- -1
    end;
    if t.cur_phase.(core) >= 0 then begin
      emit t ~cycle:t.phase_start.(core) ~code:ev_phase ~core
        ~a:t.cur_phase.(core)
        ~b:(cycle - t.phase_start.(core));
      t.cur_phase.(core) <- -1
    end
  done;
  if t.ovf_start >= 0 then begin
    emit t ~cycle:t.ovf_start ~code:ev_fifo_overflow ~core:(-1)
      ~a:t.ovf_count ~b:(t.cycle - t.ovf_start);
    t.ovf_start <- -1;
    t.ovf_count <- 0
  end;
  Metrics.bump t.ctr_events t.len;
  Metrics.bump t.ctr_dropped t.dropped

let iter t f =
  for i = 0 to t.len - 1 do
    f ~cycle:t.ev_cycle.(i) ~code:t.ev_code.(i) ~core:t.ev_core.(i)
      ~a:t.ev_a.(i) ~b:t.ev_b.(i)
  done

(* Canonical textual serialization of the event stream. Two
   normalizations make the digest a property of the machine rather than
   of this run's stepping strategy: kernel skip spans (absent under
   naive stepping) are excluded by default, and events are sorted by
   their full tuple — the ring holds span-closure order, and a sleeping
   core's runs are bulk-credited earlier than naive stepping would close
   them, so raw ring order differs between strategies even when the
   event multiset is identical. *)
let serialize ?(include_skips = false) t =
  let idx = Array.init t.len (fun i -> i) in
  let cmp i j =
    let c = compare t.ev_cycle.(i) t.ev_cycle.(j) in
    if c <> 0 then c
    else
      let c = compare t.ev_code.(i) t.ev_code.(j) in
      if c <> 0 then c
      else
        let c = compare t.ev_core.(i) t.ev_core.(j) in
        if c <> 0 then c
        else
          let c = compare t.ev_a.(i) t.ev_a.(j) in
          if c <> 0 then c else compare t.ev_b.(i) t.ev_b.(j)
  in
  Array.sort cmp idx;
  let b = Buffer.create (64 + (t.len * 16)) in
  Array.iter
    (fun i ->
      let code = t.ev_code.(i) in
      if include_skips || code <> ev_skip then begin
        Buffer.add_string b (string_of_int t.ev_cycle.(i));
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int code);
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int t.ev_core.(i));
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int t.ev_a.(i));
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int t.ev_b.(i));
        Buffer.add_char b '\n'
      end)
    idx;
  Buffer.contents b

let digest ?include_skips t =
  Digest.to_hex (Digest.string (serialize ?include_skips t))

(* Checkpoint codec: the event ring (kept prefix only), every open-span
   tracking register, the sampling cursor, and the metrics registry.
   Restore targets a tracer created with the same capacity / interval /
   core count — the constructor parameters are validated, not restored.
   The shared [disabled] singleton round-trips as a single flag. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.bool w t.on;
  Codec.W.int w t.capacity;
  Codec.W.int w t.n_cores;
  Codec.W.int w t.interval;
  if t.on then begin
    Codec.W.int w t.cycle;
    Codec.W.int w t.len;
    Codec.W.int w t.dropped;
    for i = 0 to t.len - 1 do
      Codec.W.int w t.ev_cycle.(i);
      Codec.W.int w t.ev_code.(i);
      Codec.W.int w t.ev_core.(i);
      Codec.W.int w t.ev_a.(i);
      Codec.W.int w t.ev_b.(i)
    done;
    Codec.W.int_array w t.cur_phase;
    Codec.W.int_array w t.phase_start;
    Codec.W.int_array w t.run_kind;
    Codec.W.int_array w t.run_start;
    Codec.W.int_array w t.run_len;
    Codec.W.int w t.ovf_start;
    Codec.W.int w t.ovf_count;
    Codec.W.int w t.next_sample;
    Codec.W.int w t.scan_acquired;
    Codec.W.int w t.free_acquired;
    Codec.W.int_array w t.header_acquired;
    Codec.W.int_array w t.object_start;
    Metrics.encode t.metrics w
  end

let restore t r =
  let on = Codec.R.bool r in
  let capacity = Codec.R.int r in
  let n_cores = Codec.R.int r in
  let interval = Codec.R.int r in
  if on && not t.on then
    raise (Codec.Error "snapshot has tracing on, machine does not");
  if (not on) && t.on then
    raise (Codec.Error "snapshot has tracing off, machine does not");
  if on then begin
    if capacity <> t.capacity || n_cores <> t.n_cores || interval <> t.interval
    then
      raise
        (Codec.Error
           (Printf.sprintf
              "tracer shape (capacity %d, cores %d, interval %d) does not \
               match machine (%d, %d, %d)"
              capacity n_cores interval t.capacity t.n_cores t.interval));
    t.cycle <- Codec.R.int r;
    let len = Codec.R.int r in
    if len < 0 || len > t.capacity then
      raise (Codec.Error "tracer event count out of range");
    t.len <- len;
    t.dropped <- Codec.R.int r;
    for i = 0 to len - 1 do
      t.ev_cycle.(i) <- Codec.R.int r;
      t.ev_code.(i) <- Codec.R.int r;
      t.ev_core.(i) <- Codec.R.int r;
      t.ev_a.(i) <- Codec.R.int r;
      t.ev_b.(i) <- Codec.R.int r
    done;
    Codec.R.int_array_into r t.cur_phase ~what:"tracer open phases";
    Codec.R.int_array_into r t.phase_start ~what:"tracer phase starts";
    Codec.R.int_array_into r t.run_kind ~what:"tracer run kinds";
    Codec.R.int_array_into r t.run_start ~what:"tracer run starts";
    Codec.R.int_array_into r t.run_len ~what:"tracer run lengths";
    t.ovf_start <- Codec.R.int r;
    t.ovf_count <- Codec.R.int r;
    t.next_sample <- Codec.R.int r;
    t.scan_acquired <- Codec.R.int r;
    t.free_acquired <- Codec.R.int r;
    Codec.R.int_array_into r t.header_acquired ~what:"tracer lock stamps";
    Codec.R.int_array_into r t.object_start ~what:"tracer object starts";
    Metrics.restore t.metrics r
  end
