(* Metrics registry: named counters and log2-bucketed cycle histograms.

   Everything is integer arithmetic over simulated cycles, so a metric's
   final state is a pure function of the simulated machine — no host
   clocks, no floats on the observation path. Observation is O(1) and
   allocation-free; hot call sites hold the [hist]/[counter] record
   directly rather than looking it up by name. *)

let hist_buckets = 32

type hist = {
  h_name : string;
  buckets : int array;  (* buckets.(b) counts values v with bits(v) = b *)
  mutable count : int;
  mutable sum : int;
  mutable max_value : int;
}

type counter = { c_name : string; mutable value : int }

type t = {
  mutable hists : hist list;  (* newest first; [all_hists] reverses *)
  mutable counters : counter list;
}

let create () = { hists = []; counters = [] }

let hist t name =
  let h =
    {
      h_name = name;
      buckets = Array.make hist_buckets 0;
      count = 0;
      sum = 0;
      max_value = 0;
    }
  in
  t.hists <- h :: t.hists;
  h

let counter t name =
  let c = { c_name = name; value = 0 } in
  t.counters <- c :: t.counters;
  c

let bump c n = c.value <- c.value + n

(* Bucket index = number of significant bits: 0 -> 0, 1 -> 1, 2..3 -> 2,
   4..7 -> 3, ... so bucket [b > 0] spans [2^(b-1), 2^b - 1]. *)
let bucket_of_value v =
  let v = if v < 0 then 0 else v in
  let b = ref 0 in
  let x = ref v in
  while !x <> 0 do
    incr b;
    x := !x lsr 1
  done;
  if !b > hist_buckets - 1 then hist_buckets - 1 else !b

let observe h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of_value v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v > h.max_value then h.max_value <- v

let hist_name h = h.h_name
let hist_count h = h.count
let hist_sum h = h.sum
let hist_max h = h.max_value

let hist_mean h =
  if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

(* Upper bound of the bucket holding the p-th percentile observation
   (0 < p <= 100): conservative, but monotone and deterministic. *)
let hist_percentile h p =
  if h.count = 0 then 0
  else begin
    let rank = ((h.count * p) + 99) / 100 in
    let seen = ref 0 and result = ref h.max_value and found = ref false in
    for b = 0 to hist_buckets - 1 do
      if not !found then begin
        seen := !seen + h.buckets.(b);
        if !seen >= rank then begin
          found := true;
          result := (if b = 0 then 0 else (1 lsl b) - 1)
        end
      end
    done;
    if !result > h.max_value then h.max_value else !result
  end

let counter_name c = c.c_name
let counter_value c = c.value
let all_hists t = List.rev t.hists
let all_counters t = List.rev t.counters

(* Checkpoint codec: every histogram and counter in registration order.
   Restore targets a registry built by the same component constructors,
   so names are validated as a cheap shape check. *)
module Codec = Hsgc_util.Codec

let encode t w =
  let hists = all_hists t and counters = all_counters t in
  Codec.W.int w (List.length hists);
  List.iter
    (fun h ->
      Codec.W.string w h.h_name;
      Codec.W.int_array w h.buckets;
      Codec.W.int w h.count;
      Codec.W.int w h.sum;
      Codec.W.int w h.max_value)
    hists;
  Codec.W.int w (List.length counters);
  List.iter
    (fun c ->
      Codec.W.string w c.c_name;
      Codec.W.int w c.value)
    counters

let restore t r =
  let hists = all_hists t and counters = all_counters t in
  let nh = Codec.R.int r in
  if nh <> List.length hists then
    raise (Codec.Error "metrics registry: histogram count mismatch");
  List.iter
    (fun h ->
      let name = Codec.R.string r in
      if name <> h.h_name then
        raise
          (Codec.Error
             (Printf.sprintf "metrics registry: histogram %S, expected %S"
                name h.h_name));
      Codec.R.int_array_into r h.buckets ~what:"histogram buckets";
      h.count <- Codec.R.int r;
      h.sum <- Codec.R.int r;
      h.max_value <- Codec.R.int r)
    hists;
  let nc = Codec.R.int r in
  if nc <> List.length counters then
    raise (Codec.Error "metrics registry: counter count mismatch");
  List.iter
    (fun c ->
      let name = Codec.R.string r in
      if name <> c.c_name then
        raise
          (Codec.Error
             (Printf.sprintf "metrics registry: counter %S, expected %S" name
                c.c_name));
      c.value <- Codec.R.int r)
    counters
