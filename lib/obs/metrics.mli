(** Metrics registry: named counters plus log2-bucketed histograms over
    simulated-cycle values.

    Observations are O(1), allocation-free and purely integral, so a
    metric's final state is a deterministic function of the simulated
    machine. Hot call sites hold the [hist]/[counter] handle directly;
    the registry only exists so reports can enumerate everything that
    was registered. *)

type hist
type counter
type t

val create : unit -> t

val hist : t -> string -> hist
(** Register (and return a direct handle to) a named histogram. *)

val counter : t -> string -> counter

val bump : counter -> int -> unit
val observe : hist -> int -> unit
(** Record one value (clamped at 0). Bucket [b > 0] spans
    [2^(b-1) .. 2^b - 1]; bucket 0 holds exact zeros. *)

val hist_name : hist -> string
val hist_count : hist -> int
val hist_sum : hist -> int
val hist_max : hist -> int
val hist_mean : hist -> float

val hist_percentile : hist -> int -> int
(** Upper bound of the bucket containing the p-th percentile
    observation — conservative, monotone, deterministic. *)

val counter_name : counter -> string
val counter_value : counter -> int

val all_hists : t -> hist list
(** In registration order. *)

val all_counters : t -> counter list

val hist_buckets : int

(** {2 Checkpointing} *)

val encode : t -> Hsgc_util.Codec.W.t -> unit
val restore : t -> Hsgc_util.Codec.R.t -> unit
(** Checkpoint/reinstate every histogram and counter, in registration
    order; names are validated on restore as a shape check. *)
