(* Stall-attribution profiler: the machine-checked form of the paper's
   Table II.

   Every simulated cycle of every core is attributed to exactly one of
   nine buckets — busy, the seven stall categories (in Table II column
   order), or idle. The owning simulator credits stepped cycles one at
   a time and slept/skipped spans in bulk, mirroring exactly the paths
   that feed the per-core stall counters; a post-halt pad closes each
   core's account at finalization. The resulting invariants are what
   the test suite checks:

   - per-core bucket sums equal total simulated cycles;
   - the seven stall columns equal the independently-maintained
     [Counters] stall totals, bucket for bucket. *)

let n_buckets = 9
let bucket_busy = 0
let bucket_idle = 8

(* Buckets 1..7 are the stall categories, same order as
   [Hsgc_coproc.Counters.all_stalls]. *)
let bucket_names =
  [|
    "busy"; "scan-lock"; "free-lock"; "header-lock"; "body-load";
    "body-store"; "header-load"; "header-store"; "idle";
  |]

let bucket_name b = bucket_names.(b)

type t = {
  mutable on : bool;
  n_cores : int;
  buckets : int array;  (* n_cores * n_buckets, row-major by core *)
  halt_at : int array;  (* cycle the core halted on; -1 = not yet *)
}

let create ~n_cores () =
  if n_cores < 0 then invalid_arg "Profiler.create";
  {
    on = false;
    n_cores;
    buckets = Array.make (max 1 (n_cores * n_buckets)) 0;
    halt_at = Array.make (max 1 n_cores) (-1);
  }

(* Shared never-enabled default; never mutated while off, hence
   domain-safe to share. *)
let disabled = create ~n_cores:0 ()

let enable t = t.on <- true
let n_cores t = t.n_cores

let add t ~core ~bucket n =
  let i = (core * n_buckets) + bucket in
  t.buckets.(i) <- t.buckets.(i) + n

let note_halt t ~core ~cycle = t.halt_at.(core) <- cycle

(* A halted core contributes nothing through the stepping paths; pad the
   cycles between its halt and the end of the collection as idle so each
   row closes to [total]. Idempotent: the pad consumes the halt mark. *)
let close t ~total =
  for core = 0 to t.n_cores - 1 do
    let h = t.halt_at.(core) in
    if h >= 0 && total - 1 > h then add t ~core ~bucket:bucket_idle (total - 1 - h);
    t.halt_at.(core) <- -1
  done

let get t ~core ~bucket = t.buckets.((core * n_buckets) + bucket)

let row_sum t ~core =
  let s = ref 0 in
  for b = 0 to n_buckets - 1 do
    s := !s + get t ~core ~bucket:b
  done;
  !s

let column t ~bucket =
  let s = ref 0 in
  for core = 0 to t.n_cores - 1 do
    s := !s + get t ~core ~bucket
  done;
  !s

let total_stall_cycles t =
  let s = ref 0 in
  for b = 1 to 7 do
    s := !s + column t ~bucket:b
  done;
  !s

(* Checkpoint codec: attribution matrix and per-core halt marks. *)
module Codec = Hsgc_util.Codec

let encode t w =
  Codec.W.bool w t.on;
  Codec.W.int w t.n_cores;
  Codec.W.int_array w t.buckets;
  Codec.W.int_array w t.halt_at

let restore t r =
  let on = Codec.R.bool r in
  let n = Codec.R.int r in
  if n <> t.n_cores then
    raise
      (Codec.Error
         (Printf.sprintf "profiler is for %d cores, machine has %d" n
            t.n_cores));
  t.on <- on;
  Codec.R.int_array_into r t.buckets ~what:"profiler buckets";
  Codec.R.int_array_into r t.halt_at ~what:"profiler halt marks"
