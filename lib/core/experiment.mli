(** The experiment runner: builds workload heaps, runs collections on the
    simulated coprocessor, and aggregates the measurements the paper's
    evaluation section reports. *)

module Workloads = Hsgc_objgraph.Workloads
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Memsys = Hsgc_memsim.Memsys

exception Verification_failed of string
(** Raised (with the failure description) when [verify] is requested and
    the post-collection heap fails {!Hsgc_heap.Verify.check_collection}. *)

exception Sanitizer_failed of string
(** Raised (with the rendered findings) when [sanitize] is [Check] or
    [Strict] and the machine sanitizer flagged at least one violation
    during a collection. Distinct from {!Verification_failed}: the
    verifier checks the {i result} heap, the sanitizer checks the
    {i protocol} that produced it. *)

(** Aggregated result of collecting one workload at one configuration,
    averaged over the seeds. *)
type measurement = {
  workload : string;
  n_cores : int;
  cycles : float;  (** mean collection duration in clock cycles *)
  empty_frac : float;
      (** mean fraction of cycles with the worklist empty (Table I) *)
  stalls_mean_core : Counters.t;
      (** stall cycles, mean per core (Table II style) *)
  root_cycles : float;
  live_objects : float;
  live_words : float;
  fifo_overflows : float;
  fifo_hits : float;
  mem_rejected_bandwidth : float;
  skipped_cycles : float;
      (** mean simulated cycles fast-forwarded by idle-cycle skipping; a
          simulation quantity, bit-identical across hosts *)
  wall_s : float;
      (** total host wall-clock seconds over the seeds — an observability
          figure that varies run to run; exclude it from any determinism
          comparison *)
}

val measure :
  ?verify:bool ->
  ?scale:float ->
  ?seeds:int array ->
  ?mem:Memsys.config ->
  ?skip:bool ->
  ?sanitize:Hsgc_sanitizer.Sanitizer.mode ->
  workload:Workloads.t ->
  n_cores:int ->
  unit ->
  measurement
(** Build the workload at each seed (default [[|42|]]), collect once on a
    fresh coprocessor, average. [verify] (default false) additionally
    checks graph isomorphism against a pre-collection snapshot and the
    compaction invariants. [skip] (default true) enables the kernel's
    idle-cycle skipping — simulation results are bit-identical either
    way; only [wall_s] changes. [sanitize] (default [Off]) attaches the
    machine sanitizer to every collection; any finding raises
    {!Sanitizer_failed}. *)

val sweep :
  ?verify:bool ->
  ?scale:float ->
  ?seeds:int array ->
  ?mem:Memsys.config ->
  ?skip:bool ->
  ?sanitize:Hsgc_sanitizer.Sanitizer.mode ->
  ?cores:int list ->
  ?jobs:int ->
  Workloads.t ->
  measurement list
(** [measure] at each core count (default [[1; 2; 4; 8; 16]]). With
    [jobs > 1] the sweep points run on that many domains in parallel
    (each point owns its simulator, so points are independent); [jobs
    <= 0] means auto ({!Hsgc_sim.Domain_pool.recommended_jobs}, clamped
    to the leg count). Results keep input order and are byte-identical
    at every [jobs] level. *)

val speedups : measurement list -> (int * float) list
(** Collection-time speedup of each point relative to the measurement
    with the fewest cores (the paper's Figure 5/6 y-axis). *)

val default_cores : int list
val default_jobs : int
