module Table = Hsgc_util.Table
module Counters = Hsgc_coproc.Counters
module Coprocessor = Hsgc_coproc.Coprocessor
module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify

type sweep_data = (string * Experiment.measurement list) list

let run_sweeps ?verify ?scale ?seeds ?mem ?skip ?sanitize ?cores
    ?(jobs = Experiment.default_jobs) () =
  let core_list =
    match cores with Some c -> c | None -> Experiment.default_cores
  in
  (* Flatten the workload x cores grid into one task list so the domain
     pool can balance across both axes, then regroup in workload order.
     Each task runs its own simulator; ordering, and therefore every
     rendered artifact, is independent of [jobs]. *)
  let tasks =
    List.concat_map
      (fun w -> List.map (fun n_cores -> (w, n_cores)) core_list)
      Workloads.all
  in
  let results =
    Hsgc_sim.Domain_pool.map_list ~jobs
      (fun (w, n_cores) ->
        Experiment.measure ?verify ?scale ?seeds ?mem ?skip ?sanitize
          ~workload:w ~n_cores ())
      tasks
  in
  let per_workload = List.length core_list in
  let rec regroup ws results =
    match ws with
    | [] -> []
    | w :: ws' ->
      let rec take n acc rest =
        if n = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> invalid_arg "Report.run_sweeps: result count mismatch"
          | x :: rest' -> take (n - 1) (x :: acc) rest'
      in
      let points, rest = take per_workload [] results in
      (w.Workloads.name, points) :: regroup ws' rest
  in
  regroup Workloads.all results

let kernel_summary data =
  let header =
    [
      "Workload";
      "sim cycles";
      "skipped";
      "skipped %";
      "wall s";
      "Mcycles/s";
    ]
  in
  let fmt_row name ~cycles ~skipped ~wall =
    let pct = if cycles > 0.0 then 100.0 *. skipped /. cycles else 0.0 in
    let rate = if wall > 0.0 then cycles /. wall /. 1e6 else 0.0 in
    [
      name;
      Printf.sprintf "%.0f" cycles;
      Printf.sprintf "%.0f" skipped;
      Printf.sprintf "%.1f%%" pct;
      Printf.sprintf "%.3f" wall;
      Printf.sprintf "%.2f" rate;
    ]
  in
  let totals = ref (0.0, 0.0, 0.0) in
  let rows =
    List.map
      (fun (name, points) ->
        let cycles, skipped, wall =
          List.fold_left
            (fun (c, s, w) p ->
              ( c +. p.Experiment.cycles,
                s +. p.Experiment.skipped_cycles,
                w +. p.Experiment.wall_s ))
            (0.0, 0.0, 0.0) points
        in
        let tc, ts, tw = !totals in
        totals := (tc +. cycles, ts +. skipped, tw +. wall);
        fmt_row name ~cycles ~skipped ~wall)
      data
  in
  let tc, ts, tw = !totals in
  let rows = rows @ [ fmt_row "TOTAL" ~cycles:tc ~skipped:ts ~wall:tw ] in
  "Kernel throughput (simulated cycles per wall-clock second; skipped =\n\
   quiescent cycles fast-forwarded by the kernel, summed over the sweep)\n"
  ^ Table.render ~header ~rows

let speedup_chart ~title data =
  let series =
    List.map
      (fun (name, points) ->
        {
          Table.Chart.label = name;
          points =
            List.map
              (fun (n, s) -> (float_of_int n, s))
              (Experiment.speedups points);
        })
      data
  in
  Table.Chart.render ~title ~x_label:"GC cores" ~y_label:"speedup" series

let speedup_table data =
  let cores =
    match data with
    | (_, points) :: _ -> List.map (fun p -> p.Experiment.n_cores) points
    | [] -> []
  in
  let header =
    "Application" :: List.map (fun c -> Printf.sprintf "%d cores" c) cores
  in
  let rows =
    List.map
      (fun (name, points) ->
        name
        :: List.map (fun (_, s) -> Table.fixed 2 s) (Experiment.speedups points))
      data
  in
  Table.render ~header ~rows

let figure5 data =
  speedup_chart ~title:"Figure 5. Scaling behavior (GC speedup vs. cores)" data
  ^ "\n" ^ speedup_table data

let figure6 data =
  speedup_chart
    ~title:
      "Figure 6. Scaling behavior (more realistic memory latency: +20 cycles)"
    data
  ^ "\n" ^ speedup_table data

let table1 data =
  let cores =
    match data with
    | (_, points) :: _ -> List.map (fun p -> p.Experiment.n_cores) points
    | [] -> []
  in
  let header =
    "Application" :: List.map (fun c -> Printf.sprintf "%d cores" c) cores
  in
  let rows =
    List.map
      (fun (name, points) ->
        name :: List.map (fun p -> Table.pct p.Experiment.empty_frac) points)
      data
  in
  "Table I. Fraction of clock cycles during which work list is empty\n"
  ^ Table.render ~header ~rows

let table2 ?(n_cores = 16) data =
  let header =
    "Application" :: "Total"
    :: List.map Counters.stall_name Counters.all_stalls
  in
  let rows =
    List.filter_map
      (fun (name, points) ->
        match
          List.find_opt (fun p -> p.Experiment.n_cores = n_cores) points
        with
        | None -> None
        | Some p ->
          let total = int_of_float p.Experiment.cycles in
          let stall s =
            Table.count_with_pct ~total (Counters.get p.Experiment.stalls_mean_core s)
          in
          Some
            (name :: string_of_int total :: List.map stall Counters.all_stalls))
      data
  in
  Printf.sprintf "Table II. Clock cycle distribution (for %d cores, mean per core)\n"
    n_cores
  ^ Table.render ~header ~rows

let fifo_summary data =
  let header =
    [ "Application"; "FIFO hits"; "FIFO overflows"; "Live objects" ]
  in
  let rows =
    List.filter_map
      (fun (name, points) ->
        match points with
        | [] -> None
        | p :: _ ->
          Some
            [
              name;
              Printf.sprintf "%.0f" p.Experiment.fifo_hits;
              Printf.sprintf "%.0f" p.Experiment.fifo_overflows;
              Printf.sprintf "%.0f" p.Experiment.live_objects;
            ])
      data
  in
  "Header-FIFO behavior (extension; mechanism behind cup's scan-lock stalls)\n"
  ^ Table.render ~header ~rows

let heap_size_invariance ?(scale = 1.0) ?(seed = 42) () =
  let module Plan = Hsgc_objgraph.Plan in
  let w = Option.get (Workloads.find "db") in
  let rows =
    List.map
      (fun factor ->
        let plan = w.Workloads.build ~scale ~seed in
        let heap = Plan.materialize ~heap_factor:factor plan in
        let s = Coprocessor.collect (Coprocessor.config ~n_cores:8 ()) heap in
        [
          Printf.sprintf "%.1fx" factor;
          string_of_int s.Coprocessor.total_cycles;
          string_of_int s.Coprocessor.live_objects;
        ])
      [ 1.2; 2.0; 4.0; 8.0 ]
  in
  "Heap-size invariance (paper Section VI-B: heap size has little to no\n\
   influence): db at 8 cores, semispace sized as a multiple of the live data.\n"
  ^ Table.render ~header:[ "heap factor"; "GC cycles"; "live objects" ] ~rows

let baselines ?(scale = 0.2) ?(seed = 7) () =
  let module Engine = Hsgc_baselines.Engine in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "E5. Software parallel-GC schemes (paper Section III) vs hardware\n\
     support. Speedup over the same scheme at 1 worker; sync = share of\n\
     worker time spent synchronizing (cost model: CAS 30, fence 50, lock\n\
     pair 80 cycles).\n\n";
  let workers = [ 1; 4; 8; 16 ] in
  List.iter
    (fun wname ->
      let w = Option.get (Workloads.find wname) in
      let plan = w.Workloads.build ~scale ~seed in
      Buffer.add_string buf (Printf.sprintf "workload %s\n" wname);
      let header =
        "scheme"
        :: List.concat_map (fun p -> [ Printf.sprintf "%dw" p; "sync" ]) workers
      in
      let rows =
        List.map
          (fun scheme ->
            let base = Engine.simulate ~plan ~workers:1 scheme in
            Engine.scheme_name scheme
            :: List.concat_map
                 (fun p ->
                   let r = Engine.simulate ~plan ~workers:p scheme in
                   [
                     Printf.sprintf "%.2fx" (Engine.speedup base r);
                     Table.pct
                       (float_of_int r.Engine.sync_cycles
                       /. float_of_int (r.Engine.total_cycles * p));
                   ])
                 workers)
          Engine.all_schemes
      in
      Buffer.add_string buf (Table.render ~header ~rows);
      Buffer.add_char buf '\n')
    [ "search"; "db"; "javac" ];
  Buffer.contents buf

let future_work ?(scale = 1.0) ?(seed = 42) () =
  let module Memsys = Hsgc_memsim.Memsys in
  let module Plan = Hsgc_objgraph.Plan in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "E7. Section VII future work, implemented as ablations.\n\n\
     (1) Sub-object (cache-line granularity) work units. Three large\n\
     arrays: object granularity caps the speedup at the object count;\n\
     32-word pieces spread each array over all cores until bandwidth\n\
     binds.\n\n";
  let arrays_plan () =
    let p = Plan.create () in
    let hub = Plan.obj p ~pi:3 ~delta:0 in
    let words = max 64 (int_of_float (3000.0 *. scale)) in
    for i = 0 to 2 do
      let arr = Plan.obj p ~pi:0 ~delta:words in
      Plan.link p ~parent:hub ~slot:i ~child:arr
    done;
    Plan.add_root p hub;
    p
  in
  let cycles ~scan_unit n_cores =
    let heap = Plan.materialize (arrays_plan ()) in
    let cfg = Coprocessor.config ?scan_unit ~n_cores () in
    (Coprocessor.collect cfg heap).Coprocessor.total_cycles
  in
  let cores = [ 1; 2; 4; 8; 16 ] in
  let header =
    "configuration" :: List.map (fun c -> Printf.sprintf "%d cores" c) cores
  in
  let row name scan_unit =
    let base = cycles ~scan_unit 1 in
    name
    :: List.map
         (fun c ->
           Printf.sprintf "%.2fx"
             (float_of_int base /. float_of_int (cycles ~scan_unit c)))
         cores
  in
  Buffer.add_string buf
    (Table.render ~header
       ~rows:[ row "object granularity" None; row "32-word pieces" (Some 32) ]);
  Buffer.add_string buf
    "\n(2) On-chip header cache: javac at 16 cores — cached symbol headers\n\
     shorten both the header-load stalls and the header-lock hold time.\n\n";
  let run_javac mem =
    let heap =
      Workloads.build_heap ~scale:(0.5 *. scale) ~seed Workloads.javac
    in
    Coprocessor.collect (Coprocessor.config ~mem ~n_cores:16 ()) heap
  in
  let describe name (s : Coprocessor.gc_stats) =
    let mean = Coprocessor.stalls_mean_per_core s in
    [
      name;
      string_of_int s.Coprocessor.total_cycles;
      Table.count_with_pct ~total:s.Coprocessor.total_cycles
        (Counters.get mean Counters.Header_lock);
      Table.count_with_pct ~total:s.Coprocessor.total_cycles
        (Counters.get mean Counters.Header_load);
      string_of_int s.Coprocessor.header_cache_hits;
    ]
  in
  Buffer.add_string buf
    (Table.render
       ~header:
         [
           "configuration"; "cycles"; "header-lock stall"; "header load stall";
           "cache hits";
         ]
       ~rows:
         [
           describe "no cache (published design)" (run_javac Memsys.default_config);
           describe "4096-entry cache"
             (run_javac (Memsys.with_header_cache Memsys.default_config 4096));
         ]);
  Buffer.contents buf

let concurrent_pauses ?(scale = 0.5) ?(seed = 42) () =
  let module Concurrent = Hsgc_coproc.Concurrent in
  let module Heap = Hsgc_heap.Heap in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "E8. Concurrent collection (paper Sections V-B/VII next step): the\n\
     main processor stops only for the root phase, then runs one\n\
     operation every 4 cycles while the cores collect. Every run is\n\
     verified.\n\n";
  let rows =
    List.map
      (fun wname ->
        let w = Option.get (Workloads.find wname) in
        let heap = Workloads.build_heap ~scale ~seed w in
        let stw = Coprocessor.collect (Coprocessor.config ~n_cores:8 ()) heap in
        let heap = Workloads.build_heap ~scale ~seed w in
        let orig_roots = Array.length heap.Heap.roots in
        let pre = Verify.snapshot heap in
        let stats = Concurrent.collect (Concurrent.default_config ()) heap in
        let all = heap.Heap.roots in
        Heap.set_roots heap (Array.sub all 0 orig_roots);
        let iso = Verify.equal_snapshot pre (Verify.snapshot heap) in
        Heap.set_roots heap all;
        if
          not
            (iso
            && Verify.check_space heap = Ok ()
            && Concurrent.check_new_objects heap stats = Ok ())
        then failwith ("concurrent verification failed for " ^ wname);
        [
          wname;
          string_of_int stw.Coprocessor.total_cycles;
          string_of_int stats.Concurrent.pause_cycles;
          string_of_int stats.Concurrent.barrier_evacuations;
          string_of_int
            (stats.Concurrent.mutator_reads + stats.Concurrent.mutator_allocs);
        ])
      [ "db"; "javac"; "javacc"; "search" ]
  in
  Buffer.add_string buf
    (Table.render
       ~header:
         [ "workload"; "STW pause"; "conc. pause"; "barrier evacs"; "mutator ops" ]
       ~rows);
  Buffer.contents buf

let profile_table ~total prof =
  let module Prof = Hsgc_obs.Profiler in
  let n = Prof.n_cores prof in
  let bucket_ids = List.init Prof.n_buckets (fun b -> b) in
  let header =
    ("core" :: List.map Prof.bucket_name bucket_ids) @ [ "total" ]
  in
  let rows =
    List.init n (fun c ->
        (string_of_int c
        :: List.map
             (fun b -> string_of_int (Prof.get prof ~core:c ~bucket:b))
             bucket_ids)
        @ [ string_of_int (Prof.row_sum prof ~core:c) ])
  in
  let agg = total * n in
  let all_row =
    ("ALL"
    :: List.map
         (fun b -> Table.count_with_pct ~total:agg (Prof.column prof ~bucket:b))
         bucket_ids)
    @ [ string_of_int agg ]
  in
  Printf.sprintf
    "Stall attribution (cycles; every core x cycle lands in exactly one\n\
     bucket, so each row sums to the %d simulated cycles)\n"
    total
  ^ Table.render ~header ~rows:(rows @ [ all_row ])

let metrics_summary m =
  let module M = Hsgc_obs.Metrics in
  let hist_rows =
    List.filter_map
      (fun h ->
        if M.hist_count h = 0 then None
        else
          Some
            [
              M.hist_name h;
              string_of_int (M.hist_count h);
              Table.fixed 1 (M.hist_mean h);
              string_of_int (M.hist_percentile h 50);
              string_of_int (M.hist_percentile h 90);
              string_of_int (M.hist_percentile h 99);
              string_of_int (M.hist_max h);
            ])
      (M.all_hists m)
  in
  let counter_rows =
    List.map
      (fun c -> [ M.counter_name c; string_of_int (M.counter_value c) ])
      (M.all_counters m)
  in
  "Cycle metrics (log2-bucketed histograms; percentiles are bucket upper\n\
   bounds, conservative and deterministic)\n"
  ^ Table.render
      ~header:[ "metric"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
      ~rows:hist_rows
  ^ "\n"
  ^ Table.render ~header:[ "counter"; "value" ] ~rows:counter_rows

let stall_diagnosis d =
  Format.asprintf
    "The simulator tripped its watchdog and aborted the collection.\n\
     The dump below is the complete machine state at the trip point;\n\
     start from the lock owners and the non-idle ports.\n\n%a"
    Coprocessor.pp_diagnosis d

let sanitizer_findings ~total findings =
  let buf = Buffer.create 1024 in
  let kept = List.length findings in
  Buffer.add_string buf
    (Printf.sprintf
       "The machine sanitizer flagged %d violation%s (%d kept after \
        deduplication).\n\
        Each line gives the cycle, the reporting core, the word address \
        involved\n\
        and the lockset the core held at the access.\n\n"
       total
       (if total = 1 then "" else "s")
       kept);
  List.iter
    (fun d ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (Hsgc_sanitizer.Diag.to_string d);
      Buffer.add_char buf '\n')
    findings;
  Buffer.contents buf
