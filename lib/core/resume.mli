(** Deterministic checkpoint/restore driver — crash-safe long runs.

    Steps a collection (sequentially or under the BSP scheduler) with
    every step horizon-capped at the next checkpoint boundary, writes an
    atomic CRC-guarded snapshot ({!Hsgc_checkpoint.Checkpoint}) exactly
    at each boundary, and reconstructs a machine from any such snapshot
    so the run continues bit-identically.

    The horizon cap can only split the kernel's fast-forwards, so the
    executed/skipped split is the {e only} statistic checkpointing
    perturbs: total cycles, every per-core counter, verify results and
    tracer digests of a resumed run equal the uninterrupted run's —
    the equivalence the interrupt-chaos campaign gates on. With
    checkpointing off the driver is byte-for-byte the plain stepping
    loop (zero cost). Incompatible with [--sanitize] (the sanitizer's
    interned state is process-local; {!Hsgc_coproc.Coprocessor.Snapshot}
    rejects it). *)

val fingerprint : unit -> string
(** Digest (hex) of the running executable — the compatibility key
    embedded in checkpoints and repro journals. Memoized. *)

(** What a snapshot needs beyond machine state to become a running
    collection again: how to rebuild the pre-collection heap and which
    observability instruments to re-attach. *)
type meta = {
  workload : string;
  scale : float;
  seed : int;
  partitions : int;  (** writer's BSP partition count (informational) *)
  obs_on : bool;
  obs_capacity : int;
  obs_interval : int;
  prof_on : bool;
}

val save :
  ?fingerprint:string -> Hsgc_coproc.Coprocessor.sim -> meta -> path:string ->
  unit
(** Snapshot the machine ({!Hsgc_coproc.Coprocessor.Snapshot.save}), add
    the [meta] section, write atomically. Only valid between steps. *)

type resumed = {
  sim : Hsgc_coproc.Coprocessor.sim;
  meta : meta;
  cfg : Hsgc_coproc.Coprocessor.config;
  heap : Hsgc_heap.Heap.t;
  pre : Hsgc_heap.Verify.snapshot;
      (** pre-collection verification baseline, rebuilt from the
          workload — identical to the uninterrupted run's *)
  obs : Hsgc_obs.Tracer.t option;
  prof : Hsgc_obs.Profiler.t option;
}

val resume : ?fingerprint:string -> path:string -> unit -> resumed
(** Load and fully verify a snapshot, refuse one written by a different
    binary (or pass [fingerprint] to override the key), rebuild the
    workload heap deterministically, restore the machine mid-collection.
    Raises {!Hsgc_checkpoint.Checkpoint.Corrupt} on any integrity,
    format, or compatibility violation. *)

val checkpoint_path : dir:string -> cycle:int -> string
(** [dir/ckpt-<cycle>.ckpt] (cycle zero-padded so lexicographic order is
    cycle order). *)

val latest : dir:string -> string option
(** Newest periodic checkpoint in [dir] ([None] when there is none; the
    post-mortem snapshot is never auto-resumed). *)

val postmortem_name : string
(** File name of the watchdog post-mortem snapshot ([postmortem.ckpt]). *)

type outcome =
  | Finished of Hsgc_coproc.Coprocessor.gc_stats * Hsgc_coproc.Bsp.stats option
      (** ran to completion ([finalize]d); BSP stats when [partitions > 1] *)
  | Stopped of { at_cycle : int; checkpoint : string option }
      (** [should_stop]/[stop_at] ended the run early; [checkpoint] is
          the final snapshot written (when checkpointing is on) *)

val drive :
  ?every:int ->
  ?dir:string ->
  ?stop_at:int ->
  ?should_stop:(unit -> bool) ->
  ?span_timeout_s:float ->
  ?fail_hook:(int -> unit) ->
  partitions:int ->
  meta:meta ->
  Hsgc_coproc.Coprocessor.sim ->
  outcome
(** Run the machine to completion. [every]/[dir] enable periodic
    checkpoints at every multiple of [every] simulated cycles (boundary
    exact: steps are horizon-capped so [now] lands on the boundary).
    [should_stop] is polled between steps (signal handlers set a flag);
    [stop_at] is the chaos campaign's deterministic in-process kill.
    Both end the run with a final checkpoint and [Stopped].
    [partitions > 1] drives the machine through {!Hsgc_coproc.Bsp} with
    worker supervision ([span_timeout_s]/[fail_hook] as in
    {!Hsgc_coproc.Bsp.start}). If the watchdog trips, a post-mortem
    snapshot is written to [dir] before [Stall_diagnosis] propagates. *)
