(** Reference implementation: Cheney's sequential copying collector
    (paper Section II).

    This is a direct software transcription of the classic algorithm —
    the whole object (header and body) is copied at evacuation time and
    tospace is scanned with a simple cursor — deliberately {i not} the
    backlink scheme the coprocessor uses. Independent implementation,
    identical specification: both must produce isomorphic tospace graphs,
    which the test suite checks on random heaps. It is also the
    single-core performance baseline in spirit; the paper's 1-core
    coprocessor configuration "performs like the original sequential
    implementation" because uncontended synchronization is free. *)

type stats = { live_objects : int; live_words : int }

exception Heap_overflow

val collect : Hsgc_heap.Heap.t -> stats
(** Evacuate everything reachable from the roots into the other
    semispace, update the roots, flip the heap. *)
