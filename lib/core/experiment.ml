module Workloads = Hsgc_objgraph.Workloads
module Plan = Hsgc_objgraph.Plan
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Memsys = Hsgc_memsim.Memsys
module Verify = Hsgc_heap.Verify

exception Verification_failed of string
exception Sanitizer_failed of string

type measurement = {
  workload : string;
  n_cores : int;
  cycles : float;
  empty_frac : float;
  stalls_mean_core : Counters.t;
  root_cycles : float;
  live_objects : float;
  live_words : float;
  fifo_overflows : float;
  fifo_hits : float;
  mem_rejected_bandwidth : float;
  skipped_cycles : float;
  wall_s : float;
}

let default_cores = [ 1; 2; 4; 8; 16 ]
let default_jobs = 1

let check_sanitizer stats =
  match stats.Coprocessor.sanitizer_findings with
  | [] -> stats
  | findings ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "%d sanitizer violation%s:"
         stats.Coprocessor.sanitizer_total
         (if stats.Coprocessor.sanitizer_total = 1 then "" else "s"));
    List.iter
      (fun d ->
        Buffer.add_string buf "\n  ";
        Buffer.add_string buf (Hsgc_sanitizer.Diag.to_string d))
      findings;
    raise (Sanitizer_failed (Buffer.contents buf))

let collect_once ~verify ~cfg heap =
  let stats =
    if verify then begin
      let pre = Verify.snapshot heap in
      let stats = Coprocessor.collect cfg heap in
      (match Verify.check_collection ~pre heap with
      | Ok () -> ()
      | Error failure ->
        raise
          (Verification_failed (Format.asprintf "%a" Verify.pp_failure failure)));
      stats
    end
    else Coprocessor.collect cfg heap
  in
  check_sanitizer stats

let measure ?(verify = false) ?(scale = 1.0) ?(seeds = [| 42 |])
    ?(mem = Memsys.default_config) ?(skip = true)
    ?(sanitize = Hsgc_sanitizer.Sanitizer.Off) ~workload ~n_cores () =
  if Array.length seeds = 0 then invalid_arg "Experiment.measure: no seeds";
  let cfg = Coprocessor.config ~mem ~skip ~sanitize ~n_cores () in
  let n = float_of_int (Array.length seeds) in
  let acc_cycles = ref 0.0
  and acc_empty = ref 0.0
  and acc_root = ref 0.0
  and acc_objects = ref 0.0
  and acc_words = ref 0.0
  and acc_overflow = ref 0.0
  and acc_hits = ref 0.0
  and acc_rejected = ref 0.0
  and acc_skipped = ref 0.0
  and acc_wall = ref 0.0
  and acc_stalls = ref (Counters.create ()) in
  Array.iter
    (fun seed ->
      let heap = Workloads.build_heap ~scale ~seed workload in
      let stats = collect_once ~verify ~cfg heap in
      acc_cycles := !acc_cycles +. float_of_int stats.Coprocessor.total_cycles;
      acc_empty :=
        !acc_empty
        +. float_of_int stats.Coprocessor.empty_worklist_cycles
           /. float_of_int (max 1 stats.Coprocessor.total_cycles);
      acc_root := !acc_root +. float_of_int stats.Coprocessor.root_cycles;
      acc_objects := !acc_objects +. float_of_int stats.Coprocessor.live_objects;
      acc_words := !acc_words +. float_of_int stats.Coprocessor.live_words;
      acc_overflow := !acc_overflow +. float_of_int stats.Coprocessor.fifo_overflows;
      acc_hits := !acc_hits +. float_of_int stats.Coprocessor.fifo_hits;
      acc_rejected :=
        !acc_rejected +. float_of_int stats.Coprocessor.mem_rejected_bandwidth;
      acc_skipped := !acc_skipped +. float_of_int stats.Coprocessor.skipped_cycles;
      acc_wall := !acc_wall +. stats.Coprocessor.wall_seconds;
      acc_stalls :=
        Counters.add !acc_stalls (Coprocessor.stalls_mean_per_core stats))
    seeds;
  {
    workload = workload.Workloads.name;
    n_cores;
    cycles = !acc_cycles /. n;
    empty_frac = !acc_empty /. n;
    stalls_mean_core = Counters.scale !acc_stalls (1.0 /. n);
    root_cycles = !acc_root /. n;
    live_objects = !acc_objects /. n;
    live_words = !acc_words /. n;
    fifo_overflows = !acc_overflow /. n;
    fifo_hits = !acc_hits /. n;
    mem_rejected_bandwidth = !acc_rejected /. n;
    skipped_cycles = !acc_skipped /. n;
    wall_s = !acc_wall;
  }

let sweep ?verify ?scale ?seeds ?mem ?skip ?sanitize ?(cores = default_cores)
    ?(jobs = default_jobs) workload =
  let jobs = Hsgc_sim.Domain_pool.resolve_jobs ~limit:(List.length cores) jobs in
  Hsgc_sim.Domain_pool.map_list ~jobs
    (fun n_cores ->
      measure ?verify ?scale ?seeds ?mem ?skip ?sanitize ~workload ~n_cores ())
    cores

let speedups points =
  match points with
  | [] -> []
  | _ ->
    let base =
      List.fold_left (fun acc p -> if p.n_cores < acc.n_cores then p else acc)
        (List.hd points) points
    in
    List.map (fun p -> (p.n_cores, base.cycles /. p.cycles)) points
