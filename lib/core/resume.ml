(* Deterministic checkpoint/restore driver.

   One driver behind both the CLI's crash-safe runs and the chaos
   campaign's interrupt legs: it steps a machine — sequentially or
   under the BSP scheduler — with every step horizon-capped at the next
   checkpoint boundary, writes a snapshot exactly at each boundary, and
   can reconstruct the machine from any such snapshot.

   The invariants this module is built on (argued in
   docs/ROBUSTNESS.md):

   - a checkpoint is taken only between [step]s / [superstep]s, i.e. at
     a cycle boundary, where the machine's mutable state is closed
     under the Snapshot codec;
   - the horizon cap can only split the kernel's fast-forwards, so the
     executed/skipped split is the sole statistic that checkpointing
     perturbs — total cycles, every counter, verify results and trace
     digests are invariant (the interrupt campaign gates on exactly
     these);
   - a resumed run rebuilds the workload heap from (name, scale, seed),
     so the pre-collection verification snapshot of the uninterrupted
     run is reproducible after a crash. *)

module Workloads = Hsgc_objgraph.Workloads
module Coprocessor = Hsgc_coproc.Coprocessor
module Bsp = Hsgc_coproc.Bsp
module Partition = Hsgc_sim.Partition
module Pool = Hsgc_sim.Domain_pool.Pool
module Verify = Hsgc_heap.Verify
module Tracer = Hsgc_obs.Tracer
module Profiler = Hsgc_obs.Profiler
module Checkpoint = Hsgc_checkpoint.Checkpoint
module Codec = Hsgc_util.Codec

(* --- binary fingerprint ------------------------------------------- *)

(* The journal/checkpoint compatibility key: a digest of the running
   executable. Two builds that disagree anywhere cannot exchange
   snapshots or resume each other's artifact journals — versioned
   state formats age badly; refusing is the robust default. *)
let fingerprint =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some f -> f
    | None ->
      let f =
        match Digest.file Sys.executable_name with
        | d -> Digest.to_hex d
        | exception _ ->
          (* No readable executable (e.g. utop): fall back to a stable
             tag so library users can still round-trip in-process. *)
          "no-executable"
      in
      memo := Some f;
      f

(* --- run metadata ------------------------------------------------- *)

type meta = {
  workload : string;
  scale : float;
  seed : int;
  partitions : int;  (* informational: the writer's BSP partition count *)
  obs_on : bool;
  obs_capacity : int;
  obs_interval : int;
  prof_on : bool;
}

let encode_meta m =
  let w = Codec.W.create () in
  Codec.W.string w m.workload;
  Codec.W.float w m.scale;
  Codec.W.int w m.seed;
  Codec.W.int w m.partitions;
  Codec.W.bool w m.obs_on;
  Codec.W.int w m.obs_capacity;
  Codec.W.int w m.obs_interval;
  Codec.W.bool w m.prof_on;
  Codec.W.contents w

let decode_meta payload =
  let r = Codec.R.of_string payload in
  try
    let workload = Codec.R.string r in
    let scale = Codec.R.float r in
    let seed = Codec.R.int r in
    let partitions = Codec.R.int r in
    let obs_on = Codec.R.bool r in
    let obs_capacity = Codec.R.int r in
    let obs_interval = Codec.R.int r in
    let prof_on = Codec.R.bool r in
    if not (Codec.R.eof r) then
      raise (Checkpoint.Corrupt "section \"meta\": trailing bytes");
    {
      workload;
      scale;
      seed;
      partitions;
      obs_on;
      obs_capacity;
      obs_interval;
      prof_on;
    }
  with Codec.Error m ->
    raise (Checkpoint.Corrupt (Printf.sprintf "section \"meta\": %s" m))

(* --- snapshot files ----------------------------------------------- *)

let save ?fingerprint:fp sim meta ~path =
  let fp = match fp with Some f -> f | None -> fingerprint () in
  let wtr = Coprocessor.Snapshot.save sim ~fingerprint:fp in
  Checkpoint.add_section wtr "meta" (encode_meta meta);
  Checkpoint.write wtr ~path

let checkpoint_name cycle = Printf.sprintf "ckpt-%012d.ckpt" cycle

let checkpoint_path ~dir ~cycle = Filename.concat dir (checkpoint_name cycle)

let latest ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | entries ->
    (* The zero-padded cycle number makes lexicographic order the cycle
       order; the post-mortem snapshot is never auto-resumed. *)
    Array.sort compare entries;
    let best = ref None in
    Array.iter
      (fun e ->
        if
          String.length e > 5
          && String.sub e 0 5 = "ckpt-"
          && Filename.check_suffix e ".ckpt"
        then best := Some (Filename.concat dir e))
      entries;
    !best

type resumed = {
  sim : Coprocessor.sim;
  meta : meta;
  cfg : Coprocessor.config;
  heap : Hsgc_heap.Heap.t;
  pre : Verify.snapshot;
  obs : Tracer.t option;
  prof : Profiler.t option;
}

let resume ?fingerprint:fp ~path () =
  let fp = match fp with Some f -> f | None -> fingerprint () in
  let snap = Checkpoint.load path in
  let sfp = Checkpoint.fingerprint snap in
  if sfp <> fp then
    raise
      (Checkpoint.Corrupt
         (Printf.sprintf
            "snapshot was written by a different build (fingerprint %s, this \
             binary is %s)"
            sfp fp));
  let meta = decode_meta (Checkpoint.section snap "meta") in
  let cfg = Coprocessor.Snapshot.config snap in
  let w =
    match Workloads.find meta.workload with
    | Some w -> w
    | None ->
      raise
        (Checkpoint.Corrupt
           (Printf.sprintf "snapshot is for unknown workload %S" meta.workload))
  in
  (* Same (workload, scale, seed) => bit-identical pre-collection heap,
     so the verification baseline survives the crash. The restore then
     overwrites the heap's contents with the mid-collection image. *)
  let heap = Workloads.build_heap ~scale:meta.scale ~seed:meta.seed w in
  let pre = Verify.snapshot heap in
  let obs =
    if meta.obs_on then begin
      let o =
        Tracer.create ~capacity:meta.obs_capacity ~interval:meta.obs_interval
          ~n_cores:cfg.Coprocessor.n_cores ()
      in
      Tracer.enable o;
      Some o
    end
    else None
  in
  let prof =
    if meta.prof_on then begin
      let p = Profiler.create ~n_cores:cfg.Coprocessor.n_cores () in
      Profiler.enable p;
      Some p
    end
    else None
  in
  let sim = Coprocessor.start ?obs ?prof cfg heap in
  Coprocessor.Snapshot.restore sim snap;
  { sim; meta; cfg; heap; pre; obs; prof }

(* --- the checkpointing driver ------------------------------------- *)

type outcome =
  | Finished of Coprocessor.gc_stats * Bsp.stats option
  | Stopped of { at_cycle : int; checkpoint : string option }

let postmortem_name = "postmortem.ckpt"

(* Step the machine to completion, horizon-capping every step at the
   next checkpoint boundary (a multiple of [every]) and at [stop_at].
   The cap can only split fast-forwards — with checkpointing off both
   caps are [max_int] and the loop is byte-for-byte the plain run. *)
let drive ?every ?dir ?stop_at ?(should_stop = fun () -> false) ?span_timeout_s
    ?fail_hook ~partitions ~meta sim =
  (match every with
  | Some e when e <= 0 -> invalid_arg "Resume.drive: every must be > 0"
  | _ -> ());
  if every <> None && dir = None then
    invalid_arg "Resume.drive: checkpointing needs a directory";
  let save_to name =
    match dir with
    | None -> None
    | Some d ->
      let path = Filename.concat d name in
      save sim meta ~path;
      Some path
  in
  let next_due now =
    match every with None -> max_int | Some e -> ((now / e) + 1) * e
  in
  let stop_bound = match stop_at with None -> max_int | Some s -> s in
  let loop step_once finish =
    let rec go due =
      if Coprocessor.halted sim then finish ()
      else if should_stop () || Coprocessor.now sim >= stop_bound then begin
        let cycle = Coprocessor.now sim in
        let checkpoint =
          if every = None then None else save_to (checkpoint_name cycle)
        in
        Stopped { at_cycle = cycle; checkpoint }
      end
      else begin
        let h = min due stop_bound in
        (if h = max_int then step_once ?horizon:None ()
         else step_once ?horizon:(Some h) ());
        if Coprocessor.now sim >= due then begin
          ignore (save_to (checkpoint_name (Coprocessor.now sim)));
          go (next_due (Coprocessor.now sim))
        end
        else go due
      end
    in
    try go (next_due (Coprocessor.now sim))
    with Coprocessor.Stall_diagnosis _ as e ->
      (* The watchdog tripped at a cycle boundary: preserve the machine
         for offline inspection next to the structured diagnosis. *)
      ignore (try save_to postmortem_name with _ -> None);
      raise e
  in
  if partitions <= 1 then
    loop
      (fun ?horizon () -> Coprocessor.step ?horizon sim)
      (fun () -> Finished (Coprocessor.finalize sim, None))
  else begin
    let plan =
      Partition.plan ~n_cores:(Coprocessor.n_cores sim) ~n_partitions:partitions
    in
    Pool.with_pool ~lanes:partitions (fun pool ->
        let b = Bsp.of_sim ~pool ?span_timeout_s ?fail_hook ~plan sim in
        loop
          (fun ?horizon () -> Bsp.superstep ?horizon b)
          (fun () ->
            let gc = Bsp.finalize b in
            Finished (gc, Some (Bsp.stats b))))
  end
