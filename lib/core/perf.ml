(* Stepping-throughput benchmark for the simulation kernel.

   [BENCH_kernel.json] (the repro harness) times whole sweep legs —
   workload generation, collection, and artifact rendering together.
   This suite isolates the quantity the event-driven kernel actually
   optimizes: simulated cycles per second of *stepping* time. Every
   heap is prebuilt outside the timed region and the per-leg wall time
   is [Coprocessor.wall_seconds], which the kernel measures from
   [start] to [finalize] on a monotonic clock — collection only, no
   generation, no rendering, no table formatting.

   Alongside throughput the suite records the two portable health
   metrics the CI perf-smoke job checks (absolute Mcycles/s depends on
   the host; these do not):

   - [skipped_frac] — the fraction of simulated cycles the kernel
     fast-forwarded over. Deterministic for a given scale/seed, so a
     drop means the scheduler lost skipping ability, not a slow host.

   - [words_per_cycle] — minor-heap words allocated per executed cycle
     during a skip-enabled collection ([Gc.minor_words] around the
     collect). The hot loop is allocation-free in steady state, so this
     amortizes the fixed setup cost (core records, counters) over the
     run and must stay near zero. *)

module Workloads = Hsgc_objgraph.Workloads
module Coprocessor = Hsgc_coproc.Coprocessor
module Memsys = Hsgc_memsim.Memsys
module Counters = Hsgc_coproc.Counters
module Verify = Hsgc_heap.Verify

(* One (workload, core-count) grid point, collected four times from
   identical prebuilt heaps: naive stepping, event-driven skipping,
   skipping with the machine sanitizer attached, and the compiled
   engine. Simulation statistics of the four runs are equal by the
   kernel's equivalence invariant, the sanitizer's observe-only
   contract, and the compiled engine's parity contract (all asserted
   here — for compiled down to every per-core counter and the verified
   post-heap); only wall and the executed/skipped split differ. *)
type leg = {
  workload : string;
  n_cores : int;
  cycles : int; (* simulated = executed + skipped *)
  executed : int;
  skipped : int;
  naive_wall_s : float; (* sim-only, skip disabled *)
  skip_wall_s : float; (* sim-only, skip enabled *)
  san_wall_s : float; (* sim-only, skip enabled, sanitizer attached *)
  compiled_wall_s : float; (* sim-only, compiled engine *)
  minor_words : float; (* minor allocation of the skip run *)
  compiled_executed : int; (* the compiled run's executed share *)
  compiled_loop_words : float;
      (* minor allocation of the compiled run's stepping loop alone
         (start/finalize setup excluded) — the quantity the compiled
         allocation gate bounds *)
}

type aggregate = {
  sim_cycles : int;
  skipped_cycles : int;
  skipped_frac : float;
  naive_s : float;
  skip_s : float;
  naive_mcycles_per_s : float;
  skip_mcycles_per_s : float;
  skip_speedup : float;
  words_per_cycle : float; (* minor words per *executed* cycle, skip runs *)
  sanitize_s : float;
  sanitizer_overhead : float;
      (* sanitizer-on wall over sanitizer-off wall, minus one — the
         fractional throughput cost of attaching the checker *)
  compiled_s : float;
  compiled_mcycles_per_s : float;
  compiled_speedup_vs_skip : float;
      (* skip wall over compiled wall — both engines simulate the same
         cycle count in the same process, so the ratio is
         host-independent even though each wall is not *)
  compiled_words_per_cycle : float;
      (* minor words per executed cycle inside the compiled stepping
         loop alone — must be ~0: the compiled engine's hot path is
         required to be allocation-free, with no setup amortization
         excuse *)
}

(* One fully instrumented collection (tracer + profiler enabled) next to
   an identical plain run: the digest and profile fractions are
   deterministic simulation statistics; the overhead ratio is the
   tracer-ON cost (tracer-OFF cost is what the main legs gate — they all
   run against the shared disabled instruments). *)
type obs_probe = {
  obs_workload : string;
  obs_cores : int;
  obs_cycles : int;
  obs_events : int; (* events kept in the tracer ring *)
  obs_dropped : int;
  trace_digest : string; (* golden-trace fingerprint of the event stream *)
  profile_busy_frac : float;
  profile_stall_frac : float;
  profile_idle_frac : float; (* the three sum to 1 by the closure identity *)
  obs_wall_s : float;
  obs_overhead : float; (* instrumented wall over plain wall, minus one *)
}

(* The partitioned BSP kernel on a single run: sequential skip stepping
   against Bsp.collect_par at several partition counts, plus one BSP run
   with the sanitizer attached. Cycle equality across every leg and zero
   sanitizer findings are runtime assertions (host-independent — the
   --check gate's substance); the wall-clock speedup is recorded for
   humans but never gated, because the exclusive-span schedule only
   overlaps work the machine's dense interface set allows (and a
   single-CPU runner overlaps nothing — see docs/PARALLEL.md). The
   superstep-schedule statistics are deterministic simulation
   quantities, so the exclusive fraction is gated against the
   baseline. *)
type par_probe = {
  par_workload : string;
  par_cores : int;
  par_cycles : int;
  par_points : (int * float) list;  (* partition count, wall seconds *)
  par_seq_wall_s : float;  (* sequential skip stepping, same machine *)
  par_speedup : float;  (* seq wall over the best partitioned wall *)
  par_supersteps : int;  (* at the highest partition count *)
  par_handoffs : int;
  par_exclusive_frac : float;
      (* fraction of simulated cycles covered by exclusive spans at the
         highest partition count — deterministic, gated *)
}

(* The banked variant machine on a single run: the dense machine against
   Banked.collect at several bank counts. Semantic equivalence at every
   point and sanitizer silence are runtime assertions (raising
   Perf_regression — the host-independent acceptance bars); the two wall
   ratios are recorded always but gated only on hosts with enough
   domains to make a wall claim meaningful (a single-CPU runner overlaps
   nothing). The modeled-cycle ratio and the remote-request fraction are
   deterministic simulation statistics, gated against the baseline. *)
type banked_probe = {
  bk_workload : string;
  bk_cores : int;
  bk_dense_cycles : int;
  bk_dense_wall_s : float;
  bk_points : (int * int * float) list;  (* banks, modeled cycles, wall s *)
  bk_speedup : float;  (* dense wall over the best banked wall *)
  bk_self_speedup : float;  (* banked 1-lane wall over auto-lane wall *)
  bk_host_lanes : int;  (* recommended domain count at measurement *)
  bk_modeled_ratio : float;  (* dense cycles / banked cycles, max banks *)
  bk_remote_frac : float;  (* remote requests per live object, max banks *)
  bk_supersteps : int;
}

type suite = {
  scale : float;
  seed : int;
  base : aggregate;
  base_legs : leg list;
  latency_extra : int;
  latency : aggregate;
  obs : obs_probe;
  par : par_probe;
  banked : banked_probe;
}

let default_cores = [ 1; 2; 4; 8; 16 ]

(* Steady-state hot-loop allocation budget, in minor words per executed
   cycle. The whole-collection measurement includes start/finalize
   setup, so the bound is a small constant rather than exactly zero;
   a regression that allocates per cycle (one boxed status record per
   port acceptance, say) lands orders of magnitude above it. Measured
   headroom at scale 0.5: ~0.015 words/cycle, all of it setup. *)
let words_per_cycle_budget = 0.02

(* The compiled engine's allocation budget is far tighter because its
   measurement is fairer: the stepping loop is bracketed by
   [Gc.minor_words] on its own, with [start]/[finalize] setup excluded.
   The loop is required to be allocation-free — the budget is nonzero
   only to absorb [caml_minor_words] rounding and the odd word a
   competing thread of the test runner might charge us. *)
let compiled_words_per_cycle_budget = 0.005

(* Hard floors for the compiled/skip throughput ratio (see [check]).
   The design target is 3x; the honest measured aggregate on this grid
   is far lower (the wall sum is dominated by the dense many-core legs,
   where per-cycle work is real and batching windows are short — the
   single-core and latency-bound legs, where batching pays, reach
   2-5.5x; see docs/PERFORMANCE.md). The floors gate the measured win
   with headroom for scheduler noise, not the aspiration: measured
   base aggregate 1.0-1.3x (noisy wall sum), latency-bound 1.14-1.17x
   (stable). *)
let compiled_speedup_floor_base = 0.85
let compiled_speedup_floor_latency = 1.05

exception Perf_regression of string

(* The compiled engine's parity contract, checked stat by stat: every
   reported simulation statistic must be bit-identical to the naive
   reference — only wall time and the executed/skipped split may
   differ. A single aggregate that happens to match can hide two
   compensating errors; comparing each counter names the first one that
   diverged. *)
let assert_compiled_parity ~workload ~n_cores ~(naive : Coprocessor.gc_stats)
    ~(compiled : Coprocessor.gc_stats) =
  let chk what a b =
    if a <> b then
      raise
        (Perf_regression
           (Printf.sprintf
              "%s/%d cores: compiled engine diverged from naive on %s (%d vs \
               %d)"
              workload n_cores what a b))
  in
  chk "total_cycles" compiled.total_cycles naive.total_cycles;
  chk "root_cycles" compiled.root_cycles naive.root_cycles;
  chk "empty_worklist_cycles" compiled.empty_worklist_cycles
    naive.empty_worklist_cycles;
  chk "live_objects" compiled.live_objects naive.live_objects;
  chk "live_words" compiled.live_words naive.live_words;
  chk "fifo_hits" compiled.fifo_hits naive.fifo_hits;
  chk "fifo_misses" compiled.fifo_misses naive.fifo_misses;
  chk "fifo_overflows" compiled.fifo_overflows naive.fifo_overflows;
  chk "mem_loads" compiled.mem_loads naive.mem_loads;
  chk "mem_stores" compiled.mem_stores naive.mem_stores;
  chk "mem_rejected_bandwidth" compiled.mem_rejected_bandwidth
    naive.mem_rejected_bandwidth;
  chk "mem_rejected_order" compiled.mem_rejected_order
    naive.mem_rejected_order;
  chk "header_cache_hits" compiled.header_cache_hits naive.header_cache_hits;
  chk "header_cache_misses" compiled.header_cache_misses
    naive.header_cache_misses;
  (* Counters.t is a record of ints, so structural equality compares all
     eleven stall/work counters of every core at once. *)
  if compiled.per_core <> naive.per_core then
    raise
      (Perf_regression
         (Printf.sprintf
            "%s/%d cores: compiled engine diverged from naive on the \
             per-core counters"
            workload n_cores))

let run_leg ~scale ~seed ~mem ~workload ~n_cores =
  let naive_heap = Workloads.build_heap ~scale ~seed workload in
  let skip_heap = Workloads.build_heap ~scale ~seed workload in
  let san_heap = Workloads.build_heap ~scale ~seed workload in
  let compiled_heap = Workloads.build_heap ~scale ~seed workload in
  (* Canonical reachable-graph snapshot before any collection runs (the
     four heaps are built identically, so one snapshot serves). The
     BFS allocates heavily; collect its scratch — and the previous
     leg's verification garbage — before the timed region so snapshot
     debris does not tax the timed walls with GC work. *)
  let pre = Verify.snapshot compiled_heap in
  Gc.full_major ();
  let naive =
    Coprocessor.collect
      (Coprocessor.config ~mem ~skip:false ~n_cores ())
      naive_heap
  in
  let w0 = Gc.minor_words () in
  let skip =
    Coprocessor.collect (Coprocessor.config ~mem ~skip:true ~n_cores ()) skip_heap
  in
  let minor_words = Gc.minor_words () -. w0 in
  let san =
    Coprocessor.collect
      (Coprocessor.config ~mem ~skip:true
         ~sanitize:Hsgc_sanitizer.Sanitizer.Check ~n_cores ())
      san_heap
  in
  (* The compiled leg runs through the stepped interface so the
     allocation measurement can bracket the stepping loop alone:
     [start]/[finalize] legitimately allocate (core records, counters,
     the stats record), but the loop itself must not. *)
  let sim =
    Coprocessor.start (Coprocessor.config ~mem ~compiled:true ~n_cores ())
      compiled_heap
  in
  let lw0 = Gc.minor_words () in
  while not (Coprocessor.halted sim) do
    Coprocessor.step sim
  done;
  let compiled_loop_words = Gc.minor_words () -. lw0 in
  let compiled = Coprocessor.finalize sim in
  assert_compiled_parity ~workload:workload.Workloads.name ~n_cores ~naive
    ~compiled;
  (* Semantic verification on top of statistic parity: the compiled
     run's post-heap is a correct collection of the pre-graph, and is
     canonically identical to the naive run's post-heap. *)
  (match Verify.check_collection ~pre compiled_heap with
  | Ok () -> ()
  | Error f ->
    raise
      (Perf_regression
         (Printf.sprintf "%s/%d cores: compiled engine post-heap failed \
                          verification: %s"
            workload.Workloads.name n_cores
            (Format.asprintf "%a" Verify.pp_failure f))));
  if
    not
      (Verify.equal_snapshot (Verify.snapshot naive_heap)
         (Verify.snapshot compiled_heap))
  then
    raise
      (Perf_regression
         (Printf.sprintf
            "%s/%d cores: compiled engine post-heap differs from naive \
             post-heap"
            workload.Workloads.name n_cores));
  if naive.Coprocessor.total_cycles <> skip.Coprocessor.total_cycles then
    raise
      (Perf_regression
         (Printf.sprintf
            "%s/%d cores: skip run took %d cycles, naive %d — kernel \
             equivalence broken"
            workload.Workloads.name n_cores skip.Coprocessor.total_cycles
            naive.Coprocessor.total_cycles));
  if san.Coprocessor.total_cycles <> skip.Coprocessor.total_cycles then
    raise
      (Perf_regression
         (Printf.sprintf
            "%s/%d cores: sanitizer run took %d cycles, plain %d — the \
             sanitizer perturbed the simulation"
            workload.Workloads.name n_cores san.Coprocessor.total_cycles
            skip.Coprocessor.total_cycles));
  if san.Coprocessor.sanitizer_total > 0 then
    raise
      (Perf_regression
         (Printf.sprintf
            "%s/%d cores: sanitizer flagged %d violation(s) on a default \
             configuration"
            workload.Workloads.name n_cores san.Coprocessor.sanitizer_total));
  {
    workload = workload.Workloads.name;
    n_cores;
    cycles = skip.Coprocessor.total_cycles;
    executed = skip.Coprocessor.executed_cycles;
    skipped = skip.Coprocessor.skipped_cycles;
    naive_wall_s = naive.Coprocessor.wall_seconds;
    skip_wall_s = skip.Coprocessor.wall_seconds;
    san_wall_s = san.Coprocessor.wall_seconds;
    compiled_wall_s = compiled.Coprocessor.wall_seconds;
    minor_words;
    compiled_executed = compiled.Coprocessor.executed_cycles;
    compiled_loop_words;
  }

let aggregate legs =
  let sum f = List.fold_left (fun acc l -> acc + f l) 0 legs in
  let sumf f = List.fold_left (fun acc l -> acc +. f l) 0.0 legs in
  let cycles = sum (fun l -> l.cycles) in
  let executed = sum (fun l -> l.executed) in
  let skipped = sum (fun l -> l.skipped) in
  let naive_s = sumf (fun l -> l.naive_wall_s) in
  let skip_s = sumf (fun l -> l.skip_wall_s) in
  let san_s = sumf (fun l -> l.san_wall_s) in
  let compiled_s = sumf (fun l -> l.compiled_wall_s) in
  let words = sumf (fun l -> l.minor_words) in
  let compiled_executed = sum (fun l -> l.compiled_executed) in
  let compiled_words = sumf (fun l -> l.compiled_loop_words) in
  let rate wall = if wall > 0.0 then float_of_int cycles /. wall /. 1e6 else 0.0 in
  {
    sim_cycles = cycles;
    skipped_cycles = skipped;
    skipped_frac =
      (if cycles > 0 then float_of_int skipped /. float_of_int cycles else 0.0);
    naive_s;
    skip_s;
    naive_mcycles_per_s = rate naive_s;
    skip_mcycles_per_s = rate skip_s;
    skip_speedup = naive_s /. Float.max 1e-9 skip_s;
    words_per_cycle =
      (if executed > 0 then words /. float_of_int executed else 0.0);
    sanitize_s = san_s;
    sanitizer_overhead = (san_s /. Float.max 1e-9 skip_s) -. 1.0;
    compiled_s;
    compiled_mcycles_per_s = rate compiled_s;
    compiled_speedup_vs_skip = skip_s /. Float.max 1e-9 compiled_s;
    compiled_words_per_cycle =
      (if compiled_executed > 0 then
         compiled_words /. float_of_int compiled_executed
       else 0.0);
  }

let grid ~scale ~seed ~mem ~cores ~progress =
  List.concat_map
    (fun workload ->
      List.map
        (fun n_cores ->
          let leg = run_leg ~scale ~seed ~mem ~workload ~n_cores in
          progress leg;
          leg)
        cores)
    Workloads.all

let run_obs_probe ~scale ~seed =
  let module Tracer = Hsgc_obs.Tracer in
  let module Prof = Hsgc_obs.Profiler in
  let workload = Option.get (Workloads.find "cup") in
  let n_cores = 8 in
  let plain_heap = Workloads.build_heap ~scale ~seed workload in
  let instr_heap = Workloads.build_heap ~scale ~seed workload in
  let plain =
    Coprocessor.collect (Coprocessor.config ~n_cores ()) plain_heap
  in
  let obs = Tracer.create ~n_cores () in
  Tracer.enable obs;
  let prof = Prof.create ~n_cores () in
  Prof.enable prof;
  let instr =
    Coprocessor.collect ~obs ~prof (Coprocessor.config ~n_cores ()) instr_heap
  in
  if instr.Coprocessor.total_cycles <> plain.Coprocessor.total_cycles then
    raise
      (Perf_regression
         (Printf.sprintf
            "observability probe: instrumented run took %d cycles, plain %d \
             — the tracer perturbed the simulation"
            instr.Coprocessor.total_cycles plain.Coprocessor.total_cycles));
  let total = instr.Coprocessor.total_cycles in
  for c = 0 to n_cores - 1 do
    let s = Prof.row_sum prof ~core:c in
    if s <> total then
      raise
        (Perf_regression
           (Printf.sprintf
              "observability probe: core %d attribution sums to %d cycles, \
               expected %d — the profile no longer closes"
              c s total))
  done;
  let agg = float_of_int (total * n_cores) in
  let busy =
    float_of_int (Prof.column prof ~bucket:Prof.bucket_busy) /. agg
  in
  let idle =
    float_of_int (Prof.column prof ~bucket:Prof.bucket_idle) /. agg
  in
  let stall = float_of_int (Prof.total_stall_cycles prof) /. agg in
  {
    obs_workload = workload.Workloads.name;
    obs_cores = n_cores;
    obs_cycles = total;
    obs_events = Tracer.length obs;
    obs_dropped = Tracer.dropped obs;
    trace_digest = Tracer.digest obs;
    profile_busy_frac = busy;
    profile_stall_frac = stall;
    profile_idle_frac = idle;
    obs_wall_s = instr.Coprocessor.wall_seconds;
    obs_overhead =
      (instr.Coprocessor.wall_seconds
      /. Float.max 1e-9 plain.Coprocessor.wall_seconds)
      -. 1.0;
  }

let run_par_probe ~scale ~seed ~latency_extra =
  let module Bsp = Hsgc_coproc.Bsp in
  let workload = Option.get (Workloads.find "db") in
  let n_cores = 16 in
  (* The latency-bound memory: long in-flight spans are where single
     partitions hold the machine exclusively, so this is the
     configuration the superstep scheduler is measured on. *)
  let mem = Memsys.with_extra_latency Memsys.default_config latency_extra in
  let cfg ?sanitize () = Coprocessor.config ~mem ?sanitize ~n_cores () in
  let seq =
    Coprocessor.collect (cfg ()) (Workloads.build_heap ~scale ~seed workload)
  in
  let partition_counts = [ 2; 4; 8 ] in
  (* A low handoff threshold so the probe exercises the worker-dispatch
     path (cross-domain span execution), not just leader-inline spans —
     the dispatch cost is part of what the recorded walls measure. *)
  let handoff_min = 8 in
  let runs =
    List.map
      (fun partitions ->
        let stats, b =
          Bsp.collect_par ~handoff_min ~partitions (cfg ())
            (Workloads.build_heap ~scale ~seed workload)
        in
        if stats.Coprocessor.total_cycles <> seq.Coprocessor.total_cycles then
          raise
            (Perf_regression
               (Printf.sprintf
                  "par probe: %d partitions took %d cycles, sequential %d — \
                   BSP equivalence broken"
                  partitions stats.Coprocessor.total_cycles
                  seq.Coprocessor.total_cycles));
        (partitions, stats, b))
      partition_counts
  in
  let max_partitions = List.length partition_counts - 1 in
  let _, _, (bmax : Bsp.stats) = List.nth runs max_partitions in
  let san, _ =
    Bsp.collect_par ~handoff_min
      ~partitions:(List.nth partition_counts max_partitions)
      (cfg ~sanitize:Hsgc_sanitizer.Sanitizer.Check ())
      (Workloads.build_heap ~scale ~seed workload)
  in
  if san.Coprocessor.total_cycles <> seq.Coprocessor.total_cycles then
    raise
      (Perf_regression
         (Printf.sprintf
            "par probe: sanitized BSP run took %d cycles, sequential %d"
            san.Coprocessor.total_cycles seq.Coprocessor.total_cycles));
  if san.Coprocessor.sanitizer_total > 0 then
    raise
      (Perf_regression
         (Printf.sprintf
            "par probe: sanitizer flagged %d violation(s) under the BSP \
             schedule"
            san.Coprocessor.sanitizer_total));
  let best_wall =
    List.fold_left
      (fun acc (_, s, _) -> Float.min acc s.Coprocessor.wall_seconds)
      infinity runs
  in
  {
    par_workload = workload.Workloads.name;
    par_cores = n_cores;
    par_cycles = seq.Coprocessor.total_cycles;
    par_points =
      List.map (fun (p, s, _) -> (p, s.Coprocessor.wall_seconds)) runs;
    par_seq_wall_s = seq.Coprocessor.wall_seconds;
    par_speedup = seq.Coprocessor.wall_seconds /. Float.max 1e-9 best_wall;
    par_supersteps = bmax.Bsp.supersteps;
    par_handoffs = bmax.Bsp.handoffs;
    par_exclusive_frac =
      (if seq.Coprocessor.total_cycles > 0 then
         float_of_int bmax.Bsp.exclusive_cycles
         /. float_of_int seq.Coprocessor.total_cycles
       else 0.0);
  }

let run_banked_probe ~scale ~seed =
  let module Banked = Hsgc_coproc.Banked in
  let workload = Option.get (Workloads.find "db") in
  let n_cores = 16 in
  let build () = Workloads.build_heap ~scale ~seed workload in
  let cfg ?sanitize () = Coprocessor.config ?sanitize ~n_cores () in
  let bank_counts = [ 2; 4; 8 ] in
  let max_banks = List.nth bank_counts (List.length bank_counts - 1) in
  (* Every bench point runs the full differential harness: the banked
     machine's results count only if the equivalence contract holds. *)
  let runs =
    List.map
      (fun banks ->
        let r = Banked.differential ~banks (cfg ()) build in
        if not (Banked.equivalent r.Banked.c_equiv) then
          raise
            (Perf_regression
               (Format.asprintf
                  "banked probe: %d banks violate the equivalence contract: \
                   %a"
                  banks Banked.pp_equivalence r.Banked.c_equiv));
        (banks, r))
      bank_counts
  in
  let _, r0 = List.hd runs in
  let dense = r0.Banked.c_dense in
  let _, rmax = List.nth runs (List.length runs - 1) in
  let smax = rmax.Banked.c_bstats in
  (* Sanitized banked leg: the private-bank protocol must be silent. *)
  let san, _ =
    Banked.collect ~banks:max_banks
      (cfg ~sanitize:Hsgc_sanitizer.Sanitizer.Check ())
      (build ())
  in
  if san.Coprocessor.sanitizer_total > 0 then
    raise
      (Perf_regression
         (Printf.sprintf
            "banked probe: sanitizer flagged %d violation(s) on the banked \
             machine"
            san.Coprocessor.sanitizer_total));
  (* The concurrency self-measure: same banked machine, one lane vs the
     host's recommended lanes. Byte-identical statistics either way
     (asserted cheaply via live counts); only the walls differ. The
     legs are interleaved, each preceded by a full major collection,
     and scored as min-of-3: this probe runs at the end of the whole
     bench suite, where a major-GC slice landing inside one ~25ms leg
     otherwise records pure allocator noise as a 5-10x "ratio". *)
  let measure lanes =
    Gc.full_major ();
    let s, _ = Banked.collect ~lanes ~banks:max_banks (cfg ()) (build ()) in
    s
  in
  let one_wall = ref infinity and auto_wall = ref infinity in
  let one_last = ref None and auto_last = ref None in
  for _ = 1 to 3 do
    let s1 = measure 1 in
    one_wall := Float.min !one_wall s1.Coprocessor.wall_seconds;
    one_last := Some s1;
    let s0 = measure 0 in
    auto_wall := Float.min !auto_wall s0.Coprocessor.wall_seconds;
    auto_last := Some s0
  done;
  let one_lane = Option.get !one_last in
  let auto_lane = Option.get !auto_last in
  let one_wall = !one_wall and auto_wall = !auto_wall in
  if one_lane.Coprocessor.live_objects <> auto_lane.Coprocessor.live_objects
  then
    raise
      (Perf_regression
         "banked probe: lane count changed the live-object count");
  let best_wall =
    List.fold_left
      (fun acc (_, r) ->
        Float.min acc r.Banked.c_banked.Coprocessor.wall_seconds)
      infinity runs
  in
  {
    bk_workload = workload.Workloads.name;
    bk_cores = n_cores;
    bk_dense_cycles = dense.Coprocessor.total_cycles;
    bk_dense_wall_s = dense.Coprocessor.wall_seconds;
    bk_points =
      List.map
        (fun (banks, r) ->
          ( banks,
            r.Banked.c_banked.Coprocessor.total_cycles,
            r.Banked.c_banked.Coprocessor.wall_seconds ))
        runs;
    bk_speedup =
      dense.Coprocessor.wall_seconds /. Float.max 1e-9 best_wall;
    bk_self_speedup = one_wall /. Float.max 1e-9 auto_wall;
    bk_host_lanes = Hsgc_sim.Domain_pool.recommended_jobs ();
    bk_modeled_ratio =
      float_of_int dense.Coprocessor.total_cycles
      /. Float.max 1.0
           (float_of_int auto_lane.Coprocessor.total_cycles);
    bk_remote_frac =
      (if auto_lane.Coprocessor.live_objects > 0 then
         float_of_int smax.Banked.remote_requests
         /. float_of_int auto_lane.Coprocessor.live_objects
       else 0.0);
    bk_supersteps = smax.Banked.supersteps;
  }

let run ?(scale = 0.5) ?(seed = 42) ?(cores = default_cores)
    ?(latency_extra = 20) ?(progress = fun _ -> ()) () =
  let base_legs =
    grid ~scale ~seed ~mem:Memsys.default_config ~cores ~progress
  in
  let lat_legs =
    grid ~scale ~seed
      ~mem:(Memsys.with_extra_latency Memsys.default_config latency_extra)
      ~cores ~progress
  in
  let base = aggregate base_legs in
  if base.words_per_cycle > words_per_cycle_budget then
    raise
      (Perf_regression
         (Printf.sprintf
            "hot loop allocates %.4f minor words per executed cycle (budget \
             %.2f) — steady state is no longer allocation-free"
            base.words_per_cycle words_per_cycle_budget));
  if base.compiled_words_per_cycle > compiled_words_per_cycle_budget then
    raise
      (Perf_regression
         (Printf.sprintf
            "compiled stepping loop allocates %.5f minor words per executed \
             cycle (budget %.3f) — the compiled hot path must be \
             allocation-free"
            base.compiled_words_per_cycle compiled_words_per_cycle_budget));
  {
    scale;
    seed;
    base;
    base_legs;
    latency_extra;
    latency = aggregate lat_legs;
    obs = run_obs_probe ~scale ~seed;
    par = run_par_probe ~scale ~seed ~latency_extra;
    banked = run_banked_probe ~scale ~seed;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let json_of_aggregate ~indent a =
  let pad = String.make indent ' ' in
  String.concat ""
    [
      Printf.sprintf "%s\"sim_cycles\": %d,\n" pad a.sim_cycles;
      Printf.sprintf "%s\"skipped_cycles\": %d,\n" pad a.skipped_cycles;
      Printf.sprintf "%s\"skipped_frac\": %.4f,\n" pad a.skipped_frac;
      Printf.sprintf "%s\"naive_wall_s\": %.4f,\n" pad a.naive_s;
      Printf.sprintf "%s\"skip_wall_s\": %.4f,\n" pad a.skip_s;
      Printf.sprintf "%s\"naive_mcycles_per_s\": %.2f,\n" pad
        a.naive_mcycles_per_s;
      Printf.sprintf "%s\"skip_mcycles_per_s\": %.2f,\n" pad a.skip_mcycles_per_s;
      Printf.sprintf "%s\"skip_speedup\": %.2f,\n" pad a.skip_speedup;
      Printf.sprintf "%s\"words_per_cycle\": %.5f,\n" pad a.words_per_cycle;
      Printf.sprintf "%s\"sanitize_wall_s\": %.4f,\n" pad a.sanitize_s;
      Printf.sprintf "%s\"sanitizer_overhead\": %.4f,\n" pad a.sanitizer_overhead;
      Printf.sprintf "%s\"compiled_wall_s\": %.4f,\n" pad a.compiled_s;
      Printf.sprintf "%s\"compiled_mcycles_per_s\": %.2f,\n" pad
        a.compiled_mcycles_per_s;
      Printf.sprintf "%s\"compiled_speedup_vs_skip\": %.2f,\n" pad
        a.compiled_speedup_vs_skip;
      Printf.sprintf "%s\"compiled_words_per_cycle\": %.5f" pad
        a.compiled_words_per_cycle;
    ]

let to_json suite =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"benchmark\": \"hsgc stepping throughput (prebuilt heaps, sim-only \
     wall)\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %g,\n" suite.scale);
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" suite.seed);
  Buffer.add_string buf (json_of_aggregate ~indent:2 suite.base);
  Buffer.add_string buf
    ",\n\
    \  \"note\": \"base skip_speedup near (or slightly below) 1.0 is \
     expected: at default memory latency the aggregate skipped_frac is \
     only ~0.27, so the wake-queue bookkeeping roughly cancels the \
     skipped cycles. The kernel's payoff is gated where skipping pays \
     — latency_bound.skip_speedup must be >= 1.0 (hard) and within \
     tolerance of the baseline.\",\n";
  Buffer.add_string buf "  \"legs\": [\n";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"cores\": %d, \"cycles\": %d, \
            \"skipped_frac\": %.4f, \"skip_mcycles_per_s\": %.2f, \
            \"compiled_wall_s\": %.4f, \"compiled_mcycles_per_s\": %.2f}"
           l.workload l.n_cores l.cycles
           (if l.cycles > 0 then
              float_of_int l.skipped /. float_of_int l.cycles
            else 0.0)
           (if l.skip_wall_s > 0.0 then
              float_of_int l.cycles /. l.skip_wall_s /. 1e6
            else 0.0)
           l.compiled_wall_s
           (if l.compiled_wall_s > 0.0 then
              float_of_int l.cycles /. l.compiled_wall_s /. 1e6
            else 0.0)))
    suite.base_legs;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"latency_bound\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"extra_latency\": %d,\n" suite.latency_extra);
  Buffer.add_string buf (json_of_aggregate ~indent:4 suite.latency);
  Buffer.add_string buf "\n  },\n";
  let o = suite.obs in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"observability\": {\n\
       \    \"workload\": \"%s\",\n\
       \    \"cores\": %d,\n\
       \    \"cycles\": %d,\n\
       \    \"obs_events\": %d,\n\
       \    \"obs_dropped\": %d,\n\
       \    \"trace_digest\": \"%s\",\n\
       \    \"profile_busy_frac\": %.4f,\n\
       \    \"profile_stall_frac\": %.4f,\n\
       \    \"profile_idle_frac\": %.4f,\n\
       \    \"obs_wall_s\": %.4f,\n\
       \    \"obs_overhead\": %.4f\n\
       \  }\n"
       o.obs_workload o.obs_cores o.obs_cycles o.obs_events o.obs_dropped
       o.trace_digest o.profile_busy_frac o.profile_stall_frac
       o.profile_idle_frac o.obs_wall_s o.obs_overhead);
  Buffer.add_string buf ",\n";
  let p = suite.par in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"parallel\": {\n\
       \    \"workload\": \"%s\",\n\
       \    \"cores\": %d,\n\
       \    \"cycles\": %d,\n\
       \    \"seq_wall_s\": %.4f,\n\
       \    \"points\": [%s],\n\
       \    \"par_speedup\": %.2f,\n\
       \    \"par_supersteps\": %d,\n\
       \    \"par_handoffs\": %d,\n\
       \    \"par_exclusive_frac\": %.4f\n\
       \  }\n"
       p.par_workload p.par_cores p.par_cycles p.par_seq_wall_s
       (String.concat ", "
          (List.map
             (fun (parts, wall) ->
               Printf.sprintf "{\"partitions\": %d, \"wall_s\": %.4f}" parts
                 wall)
             p.par_points))
       p.par_speedup p.par_supersteps p.par_handoffs p.par_exclusive_frac);
  Buffer.add_string buf ",\n";
  let k = suite.banked in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"banked\": {\n\
       \    \"workload\": \"%s\",\n\
       \    \"cores\": %d,\n\
       \    \"dense_cycles\": %d,\n\
       \    \"dense_wall_s\": %.4f,\n\
       \    \"points\": [%s],\n\
       \    \"banked_speedup\": %.2f,\n\
       \    \"banked_self_speedup\": %.2f,\n\
       \    \"banked_host_lanes\": %d,\n\
       \    \"banked_modeled_ratio\": %.4f,\n\
       \    \"banked_remote_frac\": %.4f,\n\
       \    \"banked_supersteps\": %d\n\
       \  }\n"
       k.bk_workload k.bk_cores k.bk_dense_cycles k.bk_dense_wall_s
       (String.concat ", "
          (List.map
             (fun (banks, cycles, wall) ->
               Printf.sprintf
                 "{\"banks\": %d, \"cycles\": %d, \"wall_s\": %.4f}" banks
                 cycles wall)
             k.bk_points))
       k.bk_speedup k.bk_self_speedup k.bk_host_lanes k.bk_modeled_ratio
       k.bk_remote_frac k.bk_supersteps);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let summary suite =
  let a = suite.base and l = suite.latency in
  String.concat "\n"
    [
      Printf.sprintf
        "base     : %.2f Mcycles/s skip (naive %.2f, speedup %.2fx), %.1f%% \
         skipped, %.5f minor words/cycle, sanitizer +%.1f%%"
        a.skip_mcycles_per_s a.naive_mcycles_per_s a.skip_speedup
        (100.0 *. a.skipped_frac)
        a.words_per_cycle
        (100.0 *. a.sanitizer_overhead);
      Printf.sprintf
        "compiled : %.2f Mcycles/s (%.2fx over skip), %.5f loop minor \
         words/cycle"
        a.compiled_mcycles_per_s a.compiled_speedup_vs_skip
        a.compiled_words_per_cycle;
      Printf.sprintf
        "latency+%d: %.2f Mcycles/s skip (naive %.2f, speedup %.2fx), %.1f%% \
         skipped; compiled %.2f Mcycles/s (%.2fx over skip)"
        suite.latency_extra l.skip_mcycles_per_s l.naive_mcycles_per_s
        l.skip_speedup
        (100.0 *. l.skipped_frac)
        l.compiled_mcycles_per_s l.compiled_speedup_vs_skip;
      Printf.sprintf
        "obs probe: %s/%d cores, %d events (%d dropped), busy/stall/idle \
         %.1f/%.1f/%.1f%%, tracer-on +%.1f%%"
        suite.obs.obs_workload suite.obs.obs_cores suite.obs.obs_events
        suite.obs.obs_dropped
        (100.0 *. suite.obs.profile_busy_frac)
        (100.0 *. suite.obs.profile_stall_frac)
        (100.0 *. suite.obs.profile_idle_frac)
        (100.0 *. suite.obs.obs_overhead);
      Printf.sprintf
        "par probe: %s/%d cores, best %.2fx over sequential, %d supersteps \
         (%d handoffs), %.1f%% cycles in exclusive spans"
        suite.par.par_workload suite.par.par_cores suite.par.par_speedup
        suite.par.par_supersteps suite.par.par_handoffs
        (100.0 *. suite.par.par_exclusive_frac);
      Printf.sprintf
        "banked   : %s/%d cores, %.2fx wall over dense (self %.2fx at %d \
         host lanes), modeled ratio %.2f, %.3f remote req/object, %d \
         supersteps"
        suite.banked.bk_workload suite.banked.bk_cores
        suite.banked.bk_speedup suite.banked.bk_self_speedup
        suite.banked.bk_host_lanes suite.banked.bk_modeled_ratio
        suite.banked.bk_remote_frac suite.banked.bk_supersteps;
    ]

(* ------------------------------------------------------------------ *)
(* Baseline comparison (CI perf smoke)                                 *)
(* ------------------------------------------------------------------ *)

(* Minimal pull-what-we-need JSON field reader: the baseline file is
   machine-written by [to_json] above, so a full parser would be dead
   weight. Finds the *first* occurrence of ["field": number] — all the
   checked fields live in the top-level (base) section, which precedes
   the legs and the latency block. *)
let substring_index text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i =
    if i + nl > tl then None
    else if String.sub text i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let field_of_json text name =
  let needle = Printf.sprintf "\"%s\":" name in
  match substring_index text needle with
  | None -> None
  | Some i ->
    let start = i + String.length needle in
    let len = String.length text in
    let stop = ref start in
    while
      !stop < len
      &&
      match text.[!stop] with
      | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
      | _ -> false
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub text start (!stop - start)))

(* The regression gate compares only host-independent metrics: the
   skipping fractions are deterministic simulation statistics, the
   allocation rate is a property of the compiled hot loop, and the
   speedup ratios divide two walls measured on the same machine in the
   same process. Absolute Mcycles/s is recorded for humans but never
   gated — CI runners and dev laptops differ by integer factors. *)
let check ~baseline suite =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let get name =
    match field_of_json baseline name with
    | Some v -> v
    | None ->
      err "baseline is missing field %S" name;
      nan
  in
  let frac0 = get "skipped_frac" in
  let words0 = get "words_per_cycle" in
  let lat_speedup0 =
    (* The first skip_speedup occurrence is the base aggregate; the
       latency-bound one lives after its block marker. *)
    match substring_index baseline "\"latency_bound\"" with
    | None ->
      err "baseline is missing the latency_bound block";
      nan
    | Some i -> (
      match
        field_of_json
          (String.sub baseline i (String.length baseline - i))
          "skip_speedup"
      with
      | Some v -> v
      | None ->
        err "baseline latency_bound block has no skip_speedup";
        nan)
  in
  let tol = 0.20 in
  (if Float.is_nan frac0 then ()
   else if suite.base.skipped_frac < frac0 *. (1.0 -. tol) then
     err "base skipped_frac regressed: %.4f vs baseline %.4f"
       suite.base.skipped_frac frac0);
  (if Float.is_nan words0 then ()
   else
     let budget = Float.max (words0 *. (1.0 +. tol)) words_per_cycle_budget in
     if suite.base.words_per_cycle > budget then
       err "words_per_cycle regressed: %.5f vs baseline %.5f (budget %.5f)"
         suite.base.words_per_cycle words0 budget);
  (if Float.is_nan lat_speedup0 then ()
   else if suite.latency.skip_speedup < lat_speedup0 *. (1.0 -. tol) then
     err "latency-bound skip speedup regressed: %.2fx vs baseline %.2fx"
       suite.latency.skip_speedup lat_speedup0);
  (* Hard bar, independent of the baseline: with +20-cycle memory
     latency the event-driven kernel must actually win. Below 1.0x the
     wake-queue bookkeeping outweighs the skipped cycles even where
     skipping pays most — the fast path is broken, not merely slower.
     No absolute bar at base latency: there skipped_frac is only ~0.27
     and the aggregate legitimately hovers around 1.0x (see the "note"
     field of BENCH_sim.json). *)
  if suite.latency.skip_speedup < 1.0 then
    err
      "latency-bound skip speedup is %.2fx (< 1.00x): event-driven stepping \
       must beat naive stepping when memory-bound"
      suite.latency.skip_speedup;
  (* Compiled-engine throughput, gated as the ratio over the skip engine:
     both walls come from the same process on the same host simulating
     the same cycles, so the ratio is host-independent — a hard floor
     travels between CI runners and laptops where absolute Mcycles/s
     cannot. Gated against both the absolute floor and the recorded
     baseline (only-if-recorded, so pre-compiled baselines skip it). *)
  if suite.base.compiled_speedup_vs_skip < compiled_speedup_floor_base then
    err
      "base compiled/skip speedup is %.2fx (floor %.2fx): the compiled \
       engine fell behind event-driven skipping"
      suite.base.compiled_speedup_vs_skip compiled_speedup_floor_base;
  if suite.latency.compiled_speedup_vs_skip < compiled_speedup_floor_latency
  then
    err
      "latency-bound compiled/skip speedup is %.2fx (floor %.2fx): batched \
       retirement must win where skipping pays"
      suite.latency.compiled_speedup_vs_skip compiled_speedup_floor_latency;
  (match field_of_json baseline "compiled_speedup_vs_skip" with
  | None -> ()
  | Some s0 ->
    if suite.base.compiled_speedup_vs_skip < s0 *. (1.0 -. tol) then
      err "base compiled/skip speedup regressed: %.2fx vs baseline %.2fx"
        suite.base.compiled_speedup_vs_skip s0);
  (* Sanitizer-on overhead: gated only against baselines that record it
     (pre-sanitizer baselines simply skip the check). Although a ratio
     of two same-host wall times, it swings tens of points between runs
     on a loaded shared runner, so the budget is deliberately wide —
     25 points of absolute slack or 2x relative, whichever is larger.
     It exists to catch a sanitizer that turns pathologically expensive
     (a hook on the per-cycle path, shadow state gone quadratic), not
     to police scheduler noise. *)
  (match field_of_json baseline "sanitizer_overhead" with
  | None -> ()
  | Some ov0 ->
    let budget = Float.max (ov0 +. 0.25) (ov0 *. 2.0) in
    if suite.base.sanitizer_overhead > budget then
      err "sanitizer-on overhead regressed: %.1f%% vs baseline %.1f%%"
        (100.0 *. suite.base.sanitizer_overhead)
        (100.0 *. ov0));
  (* Tracer-ON overhead of the observability probe, same wide budget and
     same only-if-recorded rule as the sanitizer gate. Tracer-OFF cost
     needs no gate of its own: every main leg runs against the shared
     disabled instruments, so a hook that grew expensive while off shows
     up directly in the gated throughput metrics above. *)
  (match field_of_json baseline "obs_overhead" with
  | None -> ()
  | Some ov0 ->
    let budget = Float.max (ov0 +. 0.25) (ov0 *. 2.0) in
    if suite.obs.obs_overhead > budget then
      err "tracer-on overhead regressed: %.1f%% vs baseline %.1f%%"
        (100.0 *. suite.obs.obs_overhead)
        (100.0 *. ov0));
  (* Parallel-kernel probe: the cycle-equality and zero-findings bars are
     asserted at runtime inside [run_par_probe] (any violation raises
     [Perf_regression] before a suite even exists), so the only gated
     field here is the exclusive-span fraction — a deterministic
     scheduling statistic of the BSP kernel, bit-identical across hosts.
     A drop means the partitioner or the wake accounting got worse at
     finding exclusively-awake windows. Speedup is recorded, never
     gated: it is a wall-clock ratio and the CI runner may have a single
     hardware thread. Only-if-recorded, like the overhead gates. *)
  (match field_of_json baseline "par_exclusive_frac" with
  | None -> ()
  | Some frac0 ->
    if suite.par.par_exclusive_frac < frac0 *. (1.0 -. tol) then
      err "parallel exclusive-span fraction regressed: %.4f vs baseline %.4f"
        suite.par.par_exclusive_frac frac0);
  (* Banked-machine probe: the equivalence contract and sanitizer
     silence are asserted at runtime inside [run_banked_probe], so the
     gated fields here are the two deterministic statistics of the
     banked machine. The modeled-cycle ratio (dense/banked) dropping
     means the arbitration or stitch steps got more expensive per
     object; the remote-request fraction rising means the home-range
     cut started splitting more edges. Both only-if-recorded. *)
  (match field_of_json baseline "banked_modeled_ratio" with
  | None -> ()
  | Some r0 ->
    if suite.banked.bk_modeled_ratio < r0 *. (1.0 -. tol) then
      err "banked modeled-cycle ratio regressed: %.3f vs baseline %.3f"
        suite.banked.bk_modeled_ratio r0);
  (match field_of_json baseline "banked_remote_frac" with
  | None -> ()
  | Some f0 ->
    if suite.banked.bk_remote_frac > (f0 *. (1.0 +. tol)) +. 0.02 then
      err "banked remote-request fraction regressed: %.4f vs baseline %.4f"
        suite.banked.bk_remote_frac f0);
  (* Wall-clock concurrency bar for the banked machine, conditional on
     the host: the 1-lane/auto-lane ratio at the deepest banking is a
     same-process pair of walls, but it can only exceed 1.0 where the
     domain pool actually gets parallel hardware. On single-thread
     runners (recommended_jobs < 4) the gate stays dormant and the
     ratio is informational — gating it there would test the host, not
     the code. The floor is deliberately modest: 8 banks on >= 4 lanes
     must buy at least 1.3x over the same machine serialized. *)
  if suite.banked.bk_host_lanes >= 4 && suite.banked.bk_self_speedup < 1.3
  then
    err
      "banked self-speedup is %.2fx at %d host lanes (floor 1.30x): the \
       lane pool is not buying concurrency"
      suite.banked.bk_self_speedup suite.banked.bk_host_lanes;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
