module Workloads = Hsgc_objgraph.Workloads
module Coprocessor = Hsgc_coproc.Coprocessor
module Verify = Hsgc_heap.Verify
module Injector = Hsgc_fault.Injector
module Domain_pool = Hsgc_sim.Domain_pool
module Table = Hsgc_util.Table

type klass = [ `Delay | `Corruption ]

type point = {
  klass : klass;
  intensity : float;
  workload : string;
  n_cores : int;
  seed : int;
}

type classification =
  | Clean
  | Detected of string
  | Silent of int
  | Hung of string

type point_result = {
  point : point;
  attempt : int;
  terminated : bool;
  classification : classification;
  faults : int;
  corruptions : int;
  cycles : int;
  baseline_cycles : int;
}

type summary = {
  results : point_result list;
  delay_points : int;
  delay_terminated : int;
  delay_clean : int;
  corruption_points : int;
  corruption_armed : int;
  corruption_detected : int;
  corruption_silent : int;
  mean_delay_overhead : float;
}

let default_intensities = function
  | `Delay -> [ 0.02; 0.1; 0.3 ]
  | `Corruption -> [ 0.002; 0.01; 0.05 ]

let default_matrix ?workloads ?(cores = [ 8 ])
    ?(intensities = default_intensities) ?(seed = 42) () =
  let names =
    match workloads with
    | Some ws -> ws
    | None -> List.map (fun w -> w.Workloads.name) Workloads.all
  in
  List.concat_map
    (fun klass ->
      List.concat_map
        (fun intensity ->
          List.concat_map
            (fun workload ->
              List.map
                (fun n_cores -> { klass; intensity; workload; n_cores; seed })
                cores)
            names)
        (intensities klass))
    [ `Delay; `Corruption ]

let find_workload name =
  match Workloads.find name with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Chaos: unknown workload %S" name)

(* The injector seed must differ from the workload seed (independent
   streams), vary across the matrix (so equal-seed points explore
   different fault patterns), and move deterministically on retry. *)
let injector_seed p ~attempt =
  (p.seed * 1_000_003)
  + (int_of_float (p.intensity *. 1_000_000.0) * 97)
  + (p.n_cores * 13)
  + (match p.klass with `Delay -> 0 | `Corruption -> 1)
  + (attempt * 7919)

let oracle_snapshot ~scale ~seed w =
  let heap = Workloads.build_heap ~scale ~seed w in
  ignore (Cheney_seq.collect heap);
  Verify.snapshot heap

let run_point ?(scale = 1.0) ?(attempt = 0) p =
  let w = find_workload p.workload in
  (* Fault-free reference: collection length for the overhead figure and
     the cycle budget of the faulted run. *)
  let baseline_cycles =
    let heap = Workloads.build_heap ~scale ~seed:p.seed w in
    (Coprocessor.collect (Coprocessor.config ~n_cores:p.n_cores ()) heap)
      .Coprocessor.total_cycles
  in
  (* Generous but finite: delay faults at the clamped maximum intensity
     slow acceptance by at most ~20x (p <= 0.95) plus bounded extra
     latency, so 50x + slack means a budget trip is a genuine hang. *)
  let budget = (50 * baseline_cycles) + 1_000_000 in
  let spec =
    Injector.of_class p.klass
      ~seed:(injector_seed p ~attempt)
      ~intensity:p.intensity ()
  in
  let cfg =
    Coprocessor.config ~faults:spec ~cycle_budget:budget ~n_cores:p.n_cores ()
  in
  let heap = Workloads.build_heap ~scale ~seed:p.seed w in
  let pre = Verify.snapshot heap in
  let finish ~terminated ~classification ~faults ~corruptions ~cycles =
    {
      point = p;
      attempt;
      terminated;
      classification;
      faults;
      corruptions;
      cycles;
      baseline_cycles;
    }
  in
  match Coprocessor.collect cfg heap with
  | stats ->
    let faults = stats.Coprocessor.faults_injected in
    let corruptions = stats.Coprocessor.corruptions_injected in
    let cycles = stats.Coprocessor.total_cycles in
    let verdict = Verify.check_collection ~pre heap in
    let classification =
      match (p.klass, verdict) with
      | `Corruption, Error f ->
        Detected (Format.asprintf "%a" Verify.pp_failure f)
      | `Corruption, Ok () ->
        if corruptions = 0 then Clean else Silent corruptions
      | `Delay, Error f ->
        (* A delay-class fault changed the result graph: a metamorphic
           violation, reported like a hang (it is a microprogram bug). *)
        Hung (Format.asprintf "verification: %a" Verify.pp_failure f)
      | `Delay, Ok () ->
        (* Oracle cross-check: the faulted run must match the sequential
           Cheney collector on the same initial heap. *)
        if
          Verify.equal_snapshot (Verify.snapshot heap)
            (oracle_snapshot ~scale ~seed:p.seed w)
        then Clean
        else Hung "oracle mismatch: coprocessor result differs from Cheney"
    in
    finish ~terminated:true ~classification ~faults ~corruptions ~cycles
  | exception Coprocessor.Stall_diagnosis d ->
    let reason = Format.asprintf "%a" Coprocessor.pp_diagnosis d in
    let classification =
      match p.klass with
      | `Delay -> Hung reason
      | `Corruption -> Detected reason
    in
    finish ~terminated:false ~classification ~faults:0 ~corruptions:0 ~cycles:0
  | exception Coprocessor.Heap_overflow ->
    let classification =
      match p.klass with
      | `Delay -> Hung "heap overflow"
      | `Corruption -> Detected "heap overflow"
    in
    finish ~terminated:false ~classification ~faults:0 ~corruptions:0 ~cycles:0
  | exception Coprocessor.Simulation_diverged msg ->
    let classification =
      match p.klass with
      | `Delay -> Hung ("diverged: " ^ msg)
      | `Corruption -> Detected ("diverged: " ^ msg)
    in
    finish ~terminated:false ~classification ~faults:0 ~corruptions:0 ~cycles:0

let summarize results =
  let delay, corruption =
    List.partition (fun r -> r.point.klass = `Delay) results
  in
  let terminated = List.filter (fun r -> r.terminated) delay in
  let clean = List.filter (fun r -> r.classification = Clean) delay in
  let armed = List.filter (fun r -> r.corruptions > 0) corruption in
  let detected =
    List.filter
      (fun r -> match r.classification with Detected _ -> true | _ -> false)
      corruption
  in
  let silent =
    List.filter
      (fun r -> match r.classification with Silent _ -> true | _ -> false)
      corruption
  in
  let overheads =
    List.filter_map
      (fun r ->
        if r.terminated && r.baseline_cycles > 0 then
          Some
            ((float_of_int r.cycles /. float_of_int r.baseline_cycles) -. 1.0)
        else None)
      delay
  in
  {
    results;
    delay_points = List.length delay;
    delay_terminated = List.length terminated;
    delay_clean = List.length clean;
    corruption_points = List.length corruption;
    corruption_armed = List.length armed;
    corruption_detected = List.length detected;
    corruption_silent = List.length silent;
    mean_delay_overhead =
      (match overheads with
      | [] -> 0.0
      | _ ->
        List.fold_left ( +. ) 0.0 overheads
        /. float_of_int (List.length overheads));
  }

let run ?scale ?(jobs = 1) ?(on_error = Domain_pool.Skip) points =
  let jobs = Domain_pool.resolve_jobs ~limit:(List.length points) jobs in
  let outcomes =
    Domain_pool.map_list_policy ~on_error ~jobs
      (fun ~attempt p -> run_point ?scale ~attempt p)
      points
  in
  (* A point that kept failing even under the policy still must not sink
     the campaign: it becomes a synthetic Hung result. *)
  let results =
    List.map2
      (fun p -> function
        | Domain_pool.Done r -> r
        | Domain_pool.Failed { attempts; error } ->
          {
            point = p;
            attempt = attempts - 1;
            terminated = false;
            classification = Hung ("harness: " ^ Printexc.to_string error);
            faults = 0;
            corruptions = 0;
            cycles = 0;
            baseline_cycles = 0;
          })
      points outcomes
  in
  summarize results

let klass_name = function `Delay -> "delay" | `Corruption -> "corruption"

let classification_label = function
  | Clean -> "clean"
  | Detected _ -> "detected"
  | Silent n -> Printf.sprintf "SILENT(%d)" n
  | Hung _ -> "HUNG"

let rate num den =
  if den = 0 then "n/a" else Table.pct (float_of_int num /. float_of_int den)

let render s =
  let header =
    [
      "class"; "intensity"; "workload"; "cores"; "outcome"; "faults";
      "corruptions"; "cycles"; "overhead";
    ]
  in
  let rows =
    List.map
      (fun r ->
        [
          klass_name r.point.klass;
          Printf.sprintf "%g" r.point.intensity;
          r.point.workload;
          string_of_int r.point.n_cores;
          classification_label r.classification;
          string_of_int r.faults;
          string_of_int r.corruptions;
          (if r.terminated then string_of_int r.cycles else "-");
          (if r.terminated && r.baseline_cycles > 0 then
             Printf.sprintf "%+.1f%%"
               (100.0
               *. ((float_of_int r.cycles /. float_of_int r.baseline_cycles)
                  -. 1.0))
           else "-");
        ])
      s.results
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Chaos campaign (fault class x intensity x workload). Delay-class\n\
     faults only move events in time: every run must terminate and verify\n\
     (vs. snapshot isomorphism and the Cheney oracle). Corruption-class\n\
     faults flip copied bits: every armed run must be detected.\n\n";
  Buffer.add_string buf (Table.render ~header ~rows);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf "delay:      %d points, termination %s, clean verification %s\n"
       s.delay_points
       (rate s.delay_terminated s.delay_points)
       (rate s.delay_clean s.delay_points));
  Buffer.add_string buf
    (Printf.sprintf
       "corruption: %d points (%d armed), detection %s, silent passes %d\n"
       s.corruption_points s.corruption_armed
       (rate s.corruption_detected s.corruption_armed)
       s.corruption_silent);
  Buffer.add_string buf
    (Printf.sprintf "delay overhead: %+.1f%% mean collection-cycle cost\n"
       (100.0 *. s.mean_delay_overhead));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json s =
  let point_json r =
    Printf.sprintf
      {|    {"class": "%s", "intensity": %g, "workload": "%s", "cores": %d, "seed": %d, "attempt": %d, "terminated": %b, "outcome": "%s", "faults": %d, "corruptions": %d, "cycles": %d, "baseline_cycles": %d}|}
      (klass_name r.point.klass) r.point.intensity
      (json_escape r.point.workload)
      r.point.n_cores r.point.seed r.attempt r.terminated
      (json_escape (classification_label r.classification))
      r.faults r.corruptions r.cycles r.baseline_cycles
  in
  Printf.sprintf
    {|{
  "benchmark": "hsgc chaos campaign",
  "delay_points": %d,
  "delay_terminated": %d,
  "delay_clean": %d,
  "termination_rate": %.4f,
  "clean_verification_rate": %.4f,
  "corruption_points": %d,
  "corruption_armed": %d,
  "corruption_detected": %d,
  "corruption_silent": %d,
  "detection_rate": %.4f,
  "mean_delay_overhead": %.4f,
  "points": [
%s
  ]
}
|}
    s.delay_points s.delay_terminated s.delay_clean
    (if s.delay_points = 0 then 1.0
     else float_of_int s.delay_terminated /. float_of_int s.delay_points)
    (if s.delay_points = 0 then 1.0
     else float_of_int s.delay_clean /. float_of_int s.delay_points)
    s.corruption_points s.corruption_armed s.corruption_detected
    s.corruption_silent
    (if s.corruption_armed = 0 then 1.0
     else
       float_of_int s.corruption_detected /. float_of_int s.corruption_armed)
    s.mean_delay_overhead
    (String.concat ",\n" (List.map point_json s.results))
